#pragma once
/// \file dag.hpp
/// Directed acyclic graph used as the skeleton of Bayesian networks and as
/// the immediate-upstream view of workflows. Nodes are dense indices
/// 0..size()-1; labels are optional strings for display/DOT export.

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace kertbn::graph {

/// Mutable DAG with acyclicity enforced on edge insertion.
class Dag {
 public:
  Dag() = default;
  /// Creates \p n isolated nodes labeled "v0".."v{n-1}".
  explicit Dag(std::size_t n);

  /// Adds a node and returns its index.
  std::size_t add_node(std::string label = {});

  std::size_t size() const { return parents_.size(); }
  std::size_t edge_count() const;

  const std::string& label(std::size_t v) const;
  void set_label(std::size_t v, std::string label);
  /// Index of the node carrying \p label, if any.
  std::optional<std::size_t> find_label(const std::string& label) const;

  /// Adds edge from -> to. Returns false (and leaves the graph unchanged)
  /// if the edge already exists or would create a cycle.
  bool add_edge(std::size_t from, std::size_t to);

  /// Removes an edge if present; returns whether it was present.
  bool remove_edge(std::size_t from, std::size_t to);

  bool has_edge(std::size_t from, std::size_t to) const;

  /// Parents of \p v in insertion order.
  std::span<const std::size_t> parents(std::size_t v) const;
  /// Children of \p v in insertion order.
  std::span<const std::size_t> children(std::size_t v) const;

  std::size_t in_degree(std::size_t v) const { return parents(v).size(); }
  std::size_t out_degree(std::size_t v) const { return children(v).size(); }

  /// Nodes with no parents.
  std::vector<std::size_t> roots() const;
  /// Nodes with no children.
  std::vector<std::size_t> leaves() const;

  /// A topological order (parents before children).
  std::vector<std::size_t> topological_order() const;

  /// All ancestors of \p v (excluding v).
  std::vector<std::size_t> ancestors(std::size_t v) const;
  /// All descendants of \p v (excluding v).
  std::vector<std::size_t> descendants(std::size_t v) const;

  /// True if a directed path from -> to exists (including from == to).
  bool reachable(std::size_t from, std::size_t to) const;

  /// Structural equality: same size and identical edge sets.
  bool same_structure(const Dag& other) const;

  /// Number of edges present in exactly one of the two graphs
  /// (structural Hamming distance ignoring labels).
  std::size_t edge_difference(const Dag& other) const;

  /// Graphviz DOT rendering.
  std::string to_dot(const std::string& graph_name = "dag") const;

 private:
  std::vector<std::vector<std::size_t>> parents_;
  std::vector<std::vector<std::size_t>> children_;
  std::vector<std::string> labels_;
};

}  // namespace kertbn::graph
