#include "graph/dag.hpp"

#include <algorithm>
#include <queue>
#include <sstream>

#include "common/contract.hpp"

namespace kertbn::graph {

Dag::Dag(std::size_t n) {
  parents_.resize(n);
  children_.resize(n);
  labels_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    labels_[i] = "v" + std::to_string(i);
  }
}

std::size_t Dag::add_node(std::string label) {
  parents_.emplace_back();
  children_.emplace_back();
  if (label.empty()) label = "v" + std::to_string(labels_.size());
  labels_.push_back(std::move(label));
  return labels_.size() - 1;
}

std::size_t Dag::edge_count() const {
  std::size_t n = 0;
  for (const auto& p : parents_) n += p.size();
  return n;
}

const std::string& Dag::label(std::size_t v) const {
  KERTBN_EXPECTS(v < labels_.size());
  return labels_[v];
}

void Dag::set_label(std::size_t v, std::string label) {
  KERTBN_EXPECTS(v < labels_.size());
  labels_[v] = std::move(label);
}

std::optional<std::size_t> Dag::find_label(const std::string& label) const {
  for (std::size_t v = 0; v < labels_.size(); ++v) {
    if (labels_[v] == label) return v;
  }
  return std::nullopt;
}

bool Dag::add_edge(std::size_t from, std::size_t to) {
  KERTBN_EXPECTS(from < size() && to < size());
  if (from == to) return false;
  if (has_edge(from, to)) return false;
  // Adding from->to creates a cycle iff `from` is reachable from `to`.
  if (reachable(to, from)) return false;
  parents_[to].push_back(from);
  children_[from].push_back(to);
  return true;
}

bool Dag::remove_edge(std::size_t from, std::size_t to) {
  KERTBN_EXPECTS(from < size() && to < size());
  auto& p = parents_[to];
  auto it = std::find(p.begin(), p.end(), from);
  if (it == p.end()) return false;
  p.erase(it);
  auto& c = children_[from];
  c.erase(std::find(c.begin(), c.end(), to));
  return true;
}

bool Dag::has_edge(std::size_t from, std::size_t to) const {
  KERTBN_EXPECTS(from < size() && to < size());
  const auto& p = parents_[to];
  return std::find(p.begin(), p.end(), from) != p.end();
}

std::span<const std::size_t> Dag::parents(std::size_t v) const {
  KERTBN_EXPECTS(v < size());
  return parents_[v];
}

std::span<const std::size_t> Dag::children(std::size_t v) const {
  KERTBN_EXPECTS(v < size());
  return children_[v];
}

std::vector<std::size_t> Dag::roots() const {
  std::vector<std::size_t> out;
  for (std::size_t v = 0; v < size(); ++v) {
    if (parents_[v].empty()) out.push_back(v);
  }
  return out;
}

std::vector<std::size_t> Dag::leaves() const {
  std::vector<std::size_t> out;
  for (std::size_t v = 0; v < size(); ++v) {
    if (children_[v].empty()) out.push_back(v);
  }
  return out;
}

std::vector<std::size_t> Dag::topological_order() const {
  std::vector<std::size_t> indeg(size());
  for (std::size_t v = 0; v < size(); ++v) indeg[v] = parents_[v].size();
  // Min-index queue gives a deterministic order.
  std::priority_queue<std::size_t, std::vector<std::size_t>,
                      std::greater<>> ready;
  for (std::size_t v = 0; v < size(); ++v) {
    if (indeg[v] == 0) ready.push(v);
  }
  std::vector<std::size_t> order;
  order.reserve(size());
  while (!ready.empty()) {
    const std::size_t v = ready.top();
    ready.pop();
    order.push_back(v);
    for (std::size_t c : children_[v]) {
      if (--indeg[c] == 0) ready.push(c);
    }
  }
  KERTBN_ENSURES(order.size() == size());
  return order;
}

namespace {

void collect_reachable(const std::vector<std::vector<std::size_t>>& adj,
                       std::size_t start, std::vector<bool>& seen) {
  std::vector<std::size_t> stack{start};
  while (!stack.empty()) {
    const std::size_t v = stack.back();
    stack.pop_back();
    for (std::size_t w : adj[v]) {
      if (!seen[w]) {
        seen[w] = true;
        stack.push_back(w);
      }
    }
  }
}

}  // namespace

std::vector<std::size_t> Dag::ancestors(std::size_t v) const {
  KERTBN_EXPECTS(v < size());
  std::vector<bool> seen(size(), false);
  collect_reachable(parents_, v, seen);
  std::vector<std::size_t> out;
  for (std::size_t w = 0; w < size(); ++w) {
    if (seen[w] && w != v) out.push_back(w);
  }
  return out;
}

std::vector<std::size_t> Dag::descendants(std::size_t v) const {
  KERTBN_EXPECTS(v < size());
  std::vector<bool> seen(size(), false);
  collect_reachable(children_, v, seen);
  std::vector<std::size_t> out;
  for (std::size_t w = 0; w < size(); ++w) {
    if (seen[w] && w != v) out.push_back(w);
  }
  return out;
}

bool Dag::reachable(std::size_t from, std::size_t to) const {
  KERTBN_EXPECTS(from < size() && to < size());
  if (from == to) return true;
  std::vector<bool> seen(size(), false);
  collect_reachable(children_, from, seen);
  return seen[to];
}

bool Dag::same_structure(const Dag& other) const {
  return size() == other.size() && edge_difference(other) == 0;
}

std::size_t Dag::edge_difference(const Dag& other) const {
  KERTBN_EXPECTS(size() == other.size());
  std::size_t diff = 0;
  for (std::size_t v = 0; v < size(); ++v) {
    for (std::size_t p : parents_[v]) {
      if (!other.has_edge(p, v)) ++diff;
    }
    for (std::size_t p : other.parents_[v]) {
      if (!has_edge(p, v)) ++diff;
    }
  }
  return diff;
}

std::string Dag::to_dot(const std::string& graph_name) const {
  std::ostringstream out;
  out << "digraph " << graph_name << " {\n";
  for (std::size_t v = 0; v < size(); ++v) {
    out << "  n" << v << " [label=\"" << labels_[v] << "\"];\n";
  }
  for (std::size_t v = 0; v < size(); ++v) {
    for (std::size_t c : children_[v]) {
      out << "  n" << v << " -> n" << c << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace kertbn::graph
