#pragma once
/// \file applications.hpp
/// The Section 5 applications built on KERT-BN inference:
///   * dComp — compensates for missing data: the posterior distribution of
///     an unobservable service's elapsed time given the observable services'
///     measurement means (Section 5.1, Figure 6).
///   * pAccel — projects the end-to-end response-time distribution after a
///     hypothetical local acceleration of one service (Section 5.2,
///     Figure 7).
///   * Relative threshold-violation probability error ε (Equation 5,
///     Figure 8).

#include <optional>

#include "bn/discrete_inference.hpp"
#include "bn/gaussian_inference.hpp"
#include "bn/network.hpp"
#include "bn/sampling_inference.hpp"
#include "kert/discretize.hpp"

namespace kertbn::core {

/// A univariate distribution summary in natural units (seconds).
struct DistributionSummary {
  double mean = 0.0;
  double stddev = 0.0;
  /// Discrete support (bin centers, seconds) with matching masses; empty
  /// for continuous summaries.
  std::vector<double> support;
  std::vector<double> probs;

  /// P(value > threshold). Discrete summaries sum bin masses; continuous
  /// ones use the Gaussian tail of (mean, stddev).
  double exceedance(double threshold) const;
};

/// True when every CPD of \p net is linear-Gaussian (exact conditioning
/// applies); false when the net holds e.g. a deterministic max CPD.
bool all_linear_gaussian(const bn::BayesianNetwork& net);

/// Discrete state distribution -> summary in seconds via bin centers (or
/// state indices when \p column is null). Shared by dComp/pAccel and the
/// QueryEngine serving path.
DistributionSummary summarize_discrete_posterior(
    const std::vector<double>& dist, const ColumnDiscretizer* column);

// ---------------------------------------------------------------- dComp --

struct DCompResult {
  DistributionSummary prior;      ///< Marginal of the target before data.
  DistributionSummary posterior;  ///< After conditioning on observations.
};

/// Continuous dComp: posterior of \p target given observed measurement
/// means. Uses exact Gaussian conditioning when possible, likelihood
/// weighting otherwise.
DCompResult dcomp_continuous(const bn::BayesianNetwork& net,
                             std::size_t target,
                             const bn::ContinuousEvidence& observed_means,
                             Rng& rng, std::size_t samples = 20000);

/// Discrete dComp via exact variable elimination. When \p discretizer is
/// supplied, means/supports are reported in seconds via bin centers;
/// otherwise in state-index units.
DCompResult dcomp_discrete(const bn::BayesianNetwork& net, std::size_t target,
                           const bn::DiscreteEvidence& observed_states,
                           const DatasetDiscretizer* discretizer = nullptr,
                           std::size_t target_column = 0);

// --------------------------------------------------------------- pAccel --

struct PAccelResult {
  DistributionSummary prior_response;      ///< D before the action.
  DistributionSummary projected_response;  ///< D | Z = accelerated value.
};

/// Continuous pAccel: projects D given service \p service pinned at
/// \p accelerated_value (e.g. 0.9 × its current mean).
PAccelResult paccel_continuous(const bn::BayesianNetwork& net,
                               std::size_t service, double accelerated_value,
                               Rng& rng, std::size_t samples = 20000);

/// Discrete pAccel via variable elimination; \p accelerated_state is the
/// bin of the accelerated elapsed time.
PAccelResult paccel_discrete(const bn::BayesianNetwork& net,
                             std::size_t service,
                             std::size_t accelerated_state,
                             const DatasetDiscretizer* discretizer = nullptr);

/// Interventional pAccel: projects D under do(service = value) — graph
/// surgery instead of conditioning. On models where services share latent
/// load (resource sharing), conditioning on a fast service also selects
/// light-load regimes and overstates the end-to-end benefit; the
/// do-operator answers the actual "what if we allocate resources" question.
PAccelResult paccel_continuous_do(const bn::BayesianNetwork& net,
                                  std::size_t service,
                                  double accelerated_value, Rng& rng,
                                  std::size_t samples = 20000);

/// Mechanism-change pAccel: models "allocate resources so the service's
/// own demand shrinks to \p factor of today's" as a *parametric*
/// intervention — the service's linear-Gaussian CPD keeps its dependence
/// on upstream/co-hosted parents but its intercept and noise scale by
/// \p factor. Unlike pinning a constant (hard do()), the service keeps
/// responding to load, which is what a faster replica actually does.
/// Requires the service node to carry a LinearGaussianCpd.
PAccelResult paccel_continuous_mechanism(const bn::BayesianNetwork& net,
                                         std::size_t service, double factor,
                                         Rng& rng,
                                         std::size_t samples = 20000);

// ----------------------------------------------- threshold violations ε --

/// Relative threshold-violation probability error (Equation 5):
/// |P_bn − P_real| / P_real. Contract-fails if P_real <= 0.
double relative_violation_error(double p_bn, double p_real);

}  // namespace kertbn::core
