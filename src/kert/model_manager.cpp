#include "kert/model_manager.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/contract.hpp"
#include "kert/serialize.hpp"
#include "obs/span.hpp"
#include "overload/governor.hpp"

namespace kertbn::core {

namespace {

/// Telemetry handles for the reconstruction loop (resolved once).
struct ReconstructMetrics {
  obs::Counter& count;
  obs::Counter& incremental_hits;
  obs::Counter& full_recounts;
  obs::Counter& discretizer_refits;
  obs::Counter& rows_touched;

  static ReconstructMetrics& get() {
    static ReconstructMetrics m{
        obs::MetricsRegistry::instance().counter("kert.reconstruct.count"),
        obs::MetricsRegistry::instance().counter(
            "kert.reconstruct.incremental_hits"),
        obs::MetricsRegistry::instance().counter(
            "kert.reconstruct.full_recounts"),
        obs::MetricsRegistry::instance().counter(
            "kert.reconstruct.discretizer_refits"),
        obs::MetricsRegistry::instance().counter("kert.rows_touched")};
    return m;
  }
};

/// Telemetry for the guard / health layer.
struct HealthMetrics {
  obs::Counter& transitions;
  obs::Counter& failures;
  obs::Counter& stale_skips;
  obs::Counter& missed_deadlines;
  obs::Counter& deferred;
  obs::Counter& aborted;
  obs::Gauge& state;

  static HealthMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static HealthMetrics m{reg.counter("kert.health.transitions"),
                           reg.counter("kert.reconstruct.failures"),
                           reg.counter("kert.reconstruct.stale_skips"),
                           reg.counter("kert.reconstruct.missed_deadlines"),
                           reg.counter("kert.reconstruct.deferred"),
                           reg.counter("kert.reconstruct.aborted"),
                           reg.gauge("kert.health.state")};
    return m;
  }
};

}  // namespace

const char* to_string(ModelHealth health) {
  switch (health) {
    case ModelHealth::kNone:
      return "none";
    case ModelHealth::kFresh:
      return "fresh";
    case ModelHealth::kStale:
      return "stale";
    case ModelHealth::kFallback:
      return "fallback";
    case ModelHealth::kDegraded:
      return "degraded";
  }
  return "unknown";
}

ModelManager::ModelManager(wf::Workflow workflow, wf::ResourceSharing sharing,
                           Config config)
    : workflow_(std::move(workflow)),
      sharing_(std::move(sharing)),
      config_(std::move(config)),
      next_due_(config_.schedule.t_con()) {
  KERTBN_EXPECTS(config_.bins == 0 || config_.bins >= 2);
  // Thread the cancellation flag into the learn options every construct_*
  // call receives, so cancellation reaches the per-node fit loop without
  // each call site knowing about it.
  if (config_.cancel != nullptr && config_.learn.cancel == nullptr) {
    config_.learn.cancel = config_.cancel;
  }
}

std::optional<Reconstruction> ModelManager::maybe_reconstruct(
    double now, const bn::Dataset& window) {
  if (now < next_due_) return std::nullopt;
  if (window.rows() == 0) {
    // Seed semantics: the deadline stays pending until data exists. The
    // guard additionally counts the miss (once per deadline) and marks a
    // serving model stale — an autonomic controller must see that its
    // model now describes the past.
    if (config_.guard && last_missed_due_ != next_due_) {
      last_missed_due_ = next_due_;
      if (obs::enabled()) HealthMetrics::get().missed_deadlines.add(1);
      if (model_.has_value()) {
        set_health(now, ModelHealth::kStale, "empty window at deadline");
      }
    }
    return std::nullopt;
  }
  if (config_.guard && model_.has_value() && window_unchanged(window)) {
    // No data arrived since the last build — rebuilding would reproduce
    // the same model from the same rows. Skip the work, surface staleness.
    ++stale_skips_;
    if (obs::enabled()) HealthMetrics::get().stale_skips.add(1);
    set_health(now, ModelHealth::kStale, "window unchanged since last build");
    while (next_due_ <= now) next_due_ += config_.schedule.t_con();
    return std::nullopt;
  }
  // Budgeted scheduling (DESIGN §12): a rebuild is the cheapest work to
  // lose under pressure — the last-known-good model keeps serving. The
  // governor refuses the reconstruction class outright past `throttled`
  // and meters it by token below; either way the deadline defers, never
  // blocks. (The cancellation flag is deliberately not consulted here:
  // deferral is the governor's decision, cancellation aborts builds —
  // including one whose flag was raised before the first node fit.)
  if (config_.guard && config_.governor != nullptr &&
      !config_.governor->admit(ov::WorkClass::kReconstruction, now)) {
    ++deferred_reconstructions_;
    if (obs::enabled()) HealthMetrics::get().deferred.add(1);
    if (model_.has_value()) {
      set_health(now, ModelHealth::kStale,
                 "reconstruction deferred under overload");
    }
    while (next_due_ <= now) next_due_ += config_.schedule.t_con();
    return std::nullopt;
  }
  std::optional<Reconstruction> rec;
  if (config_.guard) {
    rec = try_reconstruct(now, window);
  } else {
    rec = reconstruct(now, window);
  }
  // Schedule the next deadline on the T_CON grid strictly after `now`.
  while (next_due_ <= now) next_due_ += config_.schedule.t_con();
  return rec;
}

void ModelManager::observe_row(std::span<const double> row) {
  if (!config_.incremental) return;
  if (!stats_) stats_.emplace(make_stats());
  stats_->observe(row);
  ++rows_since_reconstruct_;
  if (obs::enabled()) {
    static obs::Counter& observed =
        obs::MetricsRegistry::instance().counter("kert.rows_observed");
    observed.add(1);
  }
}

void ModelManager::update_workflow(wf::Workflow workflow) {
  KERTBN_EXPECTS(workflow.service_count() == workflow_.service_count() &&
                 "drifted workflow must keep the same service set");
  workflow_ = std::move(workflow);
  // The D-CPT integrates the old f(X): rebuild it at the next deadline.
  d_cpt_cache_.reset();
  ++discretizer_version_;
  // Incremental residual partials captured the old expression; a fresh
  // stats object reseeds from raw rows on the next reconstruction.
  stats_.reset();
  rows_since_reconstruct_ = 0;
  // Forget the unchanged-window snapshot: identical data must still
  // trigger a rebuild because the knowledge itself changed.
  last_build_rows_ = 0;
  last_build_window_.clear();
}

WindowStats ModelManager::make_stats() const {
  WindowStats::Config cfg;
  const std::size_t n = workflow_.service_count();
  cfg.cols = n + 1;
  cfg.rows_per_segment = config_.schedule.alpha_model;
  cfg.max_rows = config_.schedule.points_per_window();
  if (config_.bins == 0) {
    // Leak-residual moments per segment drive the incremental-path leak
    // calibration (continuous mode only).
    cfg.residual = [expr = workflow_.response_time_expr(),
                    n](std::span<const double> row) {
      return row[n] - expr->evaluate(row.first(n));
    };
  }
  return WindowStats(std::move(cfg));
}

bool ModelManager::range_exceeded() const {
  const std::size_t cols = workflow_.service_count() + 1;
  for (std::size_t c = 0; c < cols; ++c) {
    const ColumnDiscretizer& col = discretizer_->column(c);
    const double lo = col.data_min();
    const double hi = col.data_max();
    const double span = std::max(hi - lo, 1e-12);
    const double margin = config_.discretizer_range_tolerance * span;
    if (stats_->col_min(c) < lo - margin ||
        stats_->col_max(c) > hi + margin) {
      return true;
    }
  }
  return false;
}

Reconstruction ModelManager::reconstruct(double now,
                                         const bn::Dataset& window) {
  KERTBN_EXPECTS(window.rows() > 0);
  KERTBN_EXPECTS(window.cols() == workflow_.service_count() + 1);
  KERTBN_SPAN_VAR(span, "kert.reconstruct");
  ThreadPool* pool = config_.executor ? config_.executor->pool() : nullptr;

  // The cached partials are usable only when they provably cover this
  // exact window; the discrete variant additionally requires the previous
  // discretizer to still be valid for the retained data. Anything else
  // falls back to a full recount (which also reseeds the statistics).
  const bool incremental_hit =
      config_.incremental && config_.learning == LearningMode::kCentralized &&
      stats_.has_value() && stats_->aligned(window) &&
      (config_.bins == 0 ||
       (discretizer_.has_value() && !range_exceeded()));

  Reconstruction rec = incremental_hit ? reconstruct_incremental(window, pool)
                                       : reconstruct_full(window, pool);
  ++version_;
  rec.at = now;
  rec.version = version_;
  rec.window_rows = window.rows();
  rows_since_reconstruct_ = 0;
  history_.push_back(rec);

  set_health(now, ModelHealth::kFresh, "reconstructed");
  remember_window(window);
  if (!publish_suspended_) publish_current(now);

  span.tag("at", now);
  span.tag("version", static_cast<std::uint64_t>(rec.version));
  span.tag("window_rows", static_cast<std::uint64_t>(rec.window_rows));
  span.tag("rows_touched", static_cast<std::uint64_t>(rec.rows_touched));
  span.tag("incremental", rec.incremental);
  span.tag("discretizer_refit", rec.discretizer_refit);
  span.tag("health", to_string(health_));
  if (obs::enabled()) {
    ReconstructMetrics& m = ReconstructMetrics::get();
    m.count.add(1);
    (rec.incremental ? m.incremental_hits : m.full_recounts).add(1);
    if (rec.discretizer_refit) m.discretizer_refits.add(1);
    m.rows_touched.add(rec.rows_touched);
  }
  return rec;
}

Reconstruction ModelManager::reconstruct_full(const bn::Dataset& window,
                                              ThreadPool* pool) {
  Reconstruction rec;
  rec.rows_touched = window.rows();

  // Reseed the statistics layer from the window so the next
  // reconstruction can go incremental again.
  if (config_.incremental && (!stats_ || !stats_->aligned(window))) {
    stats_.emplace(make_stats());
    for (std::size_t r = 0; r < window.rows(); ++r) {
      stats_->observe(window.row(r));
    }
  }

  KertResult result = [&] {
    if (config_.bins == 0) {
      discretizer_.reset();
      return construct_kert_continuous(workflow_, sharing_, window,
                                       config_.learning, config_.leak_sigma,
                                       config_.learn, pool);
    }
    discretizer_.emplace(window, config_.bins);
    ++discretizer_version_;
    d_cpt_cache_.reset();
    rec.discretizer_refit = true;
    const bn::Dataset discrete = discretizer_->discretize(window);
    return construct_kert_discrete(workflow_, sharing_, *discretizer_,
                                   discrete, config_.learning,
                                   config_.leak_l, config_.learn, pool);
  }();

  model_ = std::move(result.net);
  rec.report = result.report;
  return rec;
}

Reconstruction ModelManager::reconstruct_incremental(
    const bn::Dataset& window, ThreadPool* pool) {
  Reconstruction rec;
  rec.incremental = true;

  KertResult result = [&] {
    if (config_.bins == 0) {
      discretizer_.reset();
      const WindowStats::ResidualMoments rm = stats_->combined_residuals();
      const double sigma =
          config_.leak_sigma > 0.0
              ? config_.leak_sigma
              : leak_sigma_from_residual_moments(rm.sum, rm.sum_sq, rm.rows);
      // The sealed segments were scanned once, at seal time; only the rows
      // that arrived since the previous rebuild are new work.
      rec.rows_touched = std::min(rows_since_reconstruct_, window.rows());
      return construct_kert_continuous_from_stats(
          workflow_, sharing_, stats_->combined_gram(), window.rows(), sigma,
          config_.learn, pool);
    }
    // Discretizer unchanged: the deterministic response CPT is a pure
    // function of its edges, so materialize it once and reuse.
    if (!d_cpt_cache_) {
      d_cpt_cache_ =
          make_deterministic_cpt(workflow_, *discretizer_, config_.leak_l);
    }
    const std::vector<CountLayout> layouts =
        kert_discrete_count_layouts(workflow_, sharing_, config_.bins);
    WindowStats::CountResult counts =
        stats_->counts(layouts, *discretizer_, discretizer_version_);
    rec.rows_touched = counts.rows_scanned;
    return construct_kert_discrete_from_counts(
        workflow_, sharing_, *discretizer_, counts.node_counts,
        config_.leak_l, config_.learn, pool, &*d_cpt_cache_);
  }();

  model_ = std::move(result.net);
  rec.report = result.report;
  return rec;
}

std::optional<Reconstruction> ModelManager::try_reconstruct(
    double now, const bn::Dataset& window) {
  if (const char* reason = validate_window(window)) {
    note_failure(now, reason);
    return std::nullopt;
  }

  // Stash the last-known-good serving state. The codebase is contract-based
  // (no exceptions), so only failures the fit reports by value — a built
  // model with non-finite output — are recoverable here; everything the
  // fit would abort on must be ruled out by validate_window above.
  std::optional<bn::BayesianNetwork> saved_model = model_;
  std::optional<DatasetDiscretizer> saved_discretizer = discretizer_;
  std::optional<bn::TabularCpd> saved_d_cpt = d_cpt_cache_;
  const std::size_t saved_version = version_;
  const std::size_t saved_discretizer_version = discretizer_version_;
  const ModelHealth saved_health = health_;
  const std::size_t saved_transitions = health_history_.size();
  const std::size_t saved_build_rows = last_build_rows_;
  std::vector<double> saved_build_window = last_build_window_;

  // Publication is deferred past post-validation: a query reader must
  // never acquire a snapshot of a model that is about to be rolled back.
  publish_suspended_ = true;
  Reconstruction rec = reconstruct(now, window);
  publish_suspended_ = false;
  // Cancellation is checked before the finite-output probe: an aborted
  // learn leaves the network partially refit (possibly with nodes missing
  // CPDs), which must never be probed, published, or served.
  const bool aborted = config_.cancel != nullptr &&
                       config_.cancel->load(std::memory_order_relaxed);
  if (!aborted && model_output_finite(window)) {
    publish_current(now);
    return rec;
  }

  // Either the build was aborted under overload, or the fit went through
  // but produced a model that cannot serve (NaN CPD parameters from a
  // degenerate window). Restore the last-known-good state: the bad build
  // never happened, except in the ledger.
  model_ = std::move(saved_model);
  discretizer_ = std::move(saved_discretizer);
  d_cpt_cache_ = std::move(saved_d_cpt);
  version_ = saved_version;
  discretizer_version_ = saved_discretizer_version;
  history_.pop_back();
  health_ = saved_health;
  health_history_.resize(saved_transitions);
  last_build_rows_ = saved_build_rows;
  last_build_window_ = std::move(saved_build_window);
  // The incremental statistics may have been reseeded from the bad window;
  // drop them so the next rebuild recounts from scratch.
  stats_.reset();
  if (aborted) {
    ++aborted_reconstructions_;
    if (obs::enabled()) HealthMetrics::get().aborted.add(1);
    if (model_.has_value()) {
      // An abort is a scheduling decision, not a model failure: the
      // last-known-good model serves, merely stale — never fallback or
      // degraded.
      set_health(now, ModelHealth::kStale,
                 "reconstruction aborted under overload");
    } else {
      note_failure(now, "reconstruction aborted under overload");
    }
    return std::nullopt;
  }
  note_failure(now, "built model produced non-finite output");
  return std::nullopt;
}

const char* ModelManager::validate_window(const bn::Dataset& window) const {
  if (window.rows() < config_.min_window_rows) {
    return "window below minimum rows";
  }
  if (window.cols() != workflow_.service_count() + 1) {
    return "window has wrong column count";
  }
  for (std::size_t r = 0; r < window.rows(); ++r) {
    for (double v : window.row(r)) {
      if (!std::isfinite(v)) return "non-finite value in window";
    }
  }
  return nullptr;
}

bool ModelManager::model_output_finite(const bn::Dataset& window) const {
  if (!model_.has_value()) return false;
  // Probe with the window's most recent row: every CPD parameter on the
  // row's path enters the density, so NaN/Inf parameters surface as a
  // non-finite log-likelihood. (Smoothing and leak terms keep legitimate
  // likelihoods finite.)
  bn::Dataset probe(window.column_names());
  probe.add_row(window.row(window.rows() - 1));
  if (discretizer_.has_value()) {
    const bn::Dataset discrete = discretizer_->discretize(probe);
    return std::isfinite(model_->log_likelihood(discrete));
  }
  return std::isfinite(model_->log_likelihood(probe));
}

void ModelManager::set_health(double now, ModelHealth to, const char* reason) {
  if (health_ == to) return;
  health_history_.push_back(HealthTransition{now, health_, to, reason});
  health_ = to;
  if (obs::enabled()) {
    HealthMetrics& m = HealthMetrics::get();
    m.transitions.add(1);
    m.state.set(static_cast<double>(static_cast<int>(to)));
  }
}

void ModelManager::note_failure(double now, const char* reason) {
  ++failed_reconstructions_;
  last_failure_reason_ = reason;
  if (obs::enabled()) HealthMetrics::get().failures.add(1);
  set_health(now,
             model_.has_value() ? ModelHealth::kFallback
                                : ModelHealth::kDegraded,
             reason);
}

void ModelManager::note_drift(double now, const std::string& reason) {
  ++drift_notices_;
  last_drift_reason_ = reason;
  // Identical window data must still rebuild: the world moved even if the
  // retained rows happen to match the last build byte for byte.
  last_build_rows_ = 0;
  last_build_window_.clear();
  if (obs::enabled()) {
    static obs::Counter& notices =
        obs::MetricsRegistry::instance().counter("kert.drift.notices");
    notices.add(1);
  }
  if (health_ == ModelHealth::kFresh) {
    set_health(now, ModelHealth::kStale, reason.c_str());
  }
}

void ModelManager::publish_current(double now) {
  if (!config_.publish_snapshots) return;
  KERTBN_ASSERT(model_.has_value());
  snapshot_slot_->publish(
      make_model_snapshot(version_, now, *model_, discretizer_));
  if (obs::enabled()) {
    static obs::Counter& published =
        obs::MetricsRegistry::instance().counter(
            "kert.query.snapshots_published");
    published.add(1);
  }
}

void ModelManager::remember_window(const bn::Dataset& window) {
  last_build_rows_ = window.rows();
  last_build_window_.clear();
  last_build_window_.reserve(window.rows() * window.cols());
  for (std::size_t r = 0; r < window.rows(); ++r) {
    const auto row = window.row(r);
    last_build_window_.insert(last_build_window_.end(), row.begin(),
                              row.end());
  }
}

bool ModelManager::window_unchanged(const bn::Dataset& window) const {
  if (last_build_rows_ == 0 || window.rows() != last_build_rows_) {
    return false;
  }
  std::size_t i = 0;
  for (std::size_t r = 0; r < window.rows(); ++r) {
    for (double v : window.row(r)) {
      if (v != last_build_window_[i++]) return false;
    }
  }
  return i == last_build_window_.size();
}

const bn::BayesianNetwork& ModelManager::model() const {
  KERTBN_EXPECTS(model_.has_value());
  return *model_;
}

std::string ModelManager::export_model_text() const {
  if (!model_.has_value()) return {};
  std::ostringstream out;
  if (discretizer_.has_value()) {
    save_kert_discrete(out, workflow_, sharing_, *discretizer_,
                       config_.leak_l, *model_);
  } else {
    save_kert_continuous(out, workflow_, sharing_, *model_);
  }
  return out.str();
}

ManagerCheckpoint ModelManager::export_checkpoint() const {
  return ManagerCheckpoint{next_due_, version_, export_model_text()};
}

bool ModelManager::restore_from_checkpoint(const ManagerCheckpoint& ckpt,
                                           double now) {
  next_due_ = ckpt.next_due;
  version_ = ckpt.version;
  // Cached incremental state described the dead process's window; drop it
  // so the next rebuild recounts from the replayed window. Bumping the
  // discretizer version invalidates any count partials keyed to it.
  stats_.reset();
  rows_since_reconstruct_ = 0;
  d_cpt_cache_.reset();
  ++discretizer_version_;
  last_build_rows_ = 0;
  last_build_window_.clear();
  last_missed_due_ = -1.0;
  if (ckpt.model_text.empty()) return true;

  LoadResult loaded = try_load_from_string(ckpt.model_text);
  const bool compatible =
      loaded.has_value() &&
      loaded->workflow.service_count() == workflow_.service_count() &&
      loaded->bins == config_.bins;
  if (!compatible) {
    if (obs::enabled()) {
      static obs::Counter& rejected =
          obs::MetricsRegistry::instance().counter(
              "kert.durable.checkpoint_model_rejected");
      rejected.add(1);
    }
    note_failure(now, "checkpointed model rejected on restore");
    return false;
  }
  model_ = std::move(loaded->net);
  discretizer_ = std::move(loaded->discretizer);
  set_health(now, ModelHealth::kStale, "recovered from checkpoint");
  publish_current(now);
  return true;
}

}  // namespace kertbn::core
