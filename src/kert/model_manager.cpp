#include "kert/model_manager.hpp"

#include "common/contract.hpp"

namespace kertbn::core {

ModelManager::ModelManager(wf::Workflow workflow, wf::ResourceSharing sharing,
                           Config config)
    : workflow_(std::move(workflow)),
      sharing_(std::move(sharing)),
      config_(std::move(config)),
      next_due_(config_.schedule.t_con()) {
  KERTBN_EXPECTS(config_.bins == 0 || config_.bins >= 2);
}

std::optional<Reconstruction> ModelManager::maybe_reconstruct(
    double now, const bn::Dataset& window) {
  if (now < next_due_ || window.rows() == 0) return std::nullopt;
  Reconstruction rec = reconstruct(now, window);
  // Schedule the next deadline on the T_CON grid strictly after `now`.
  while (next_due_ <= now) next_due_ += config_.schedule.t_con();
  return rec;
}

Reconstruction ModelManager::reconstruct(double now,
                                         const bn::Dataset& window) {
  KERTBN_EXPECTS(window.rows() > 0);
  KERTBN_EXPECTS(window.cols() == workflow_.service_count() + 1);

  KertResult result = [&] {
    if (config_.bins == 0) {
      discretizer_.reset();
      return construct_kert_continuous(workflow_, sharing_, window,
                                       config_.learning, config_.leak_sigma,
                                       config_.learn);
    }
    discretizer_.emplace(window, config_.bins);
    const bn::Dataset discrete = discretizer_->discretize(window);
    return construct_kert_discrete(workflow_, sharing_, *discretizer_,
                                   discrete, config_.learning,
                                   config_.leak_l, config_.learn);
  }();

  model_ = std::move(result.net);
  ++version_;
  Reconstruction rec;
  rec.at = now;
  rec.version = version_;
  rec.window_rows = window.rows();
  rec.report = result.report;
  history_.push_back(rec);
  return rec;
}

const bn::BayesianNetwork& ModelManager::model() const {
  KERTBN_EXPECTS(model_.has_value());
  return *model_;
}

}  // namespace kertbn::core
