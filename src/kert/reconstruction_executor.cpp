#include "kert/reconstruction_executor.hpp"

#include "obs/metrics.hpp"

namespace kertbn::core {

ReconstructionExecutor::ReconstructionExecutor(Mode mode, std::size_t threads)
    : mode_(mode) {
  if (mode_ == Mode::kParallel) {
    pool_ = std::make_unique<ThreadPool>(threads);
  }
  obs::MetricsRegistry::instance()
      .gauge("executor.threads")
      .set(static_cast<double>(this->threads()));
}

bn::ParameterLearnReport ReconstructionExecutor::learn(
    bn::BayesianNetwork& net, const bn::Dataset& data,
    const bn::ParameterLearnOptions& opts) const {
  if (cancel_ != nullptr && opts.cancel == nullptr) {
    bn::ParameterLearnOptions with_cancel = opts;
    with_cancel.cancel = cancel_;
    return bn::learn_parameters(net, data, with_cancel, pool());
  }
  return bn::learn_parameters(net, data, opts, pool());
}

}  // namespace kertbn::core
