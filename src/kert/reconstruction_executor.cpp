#include "kert/reconstruction_executor.hpp"

namespace kertbn::core {

ReconstructionExecutor::ReconstructionExecutor(Mode mode, std::size_t threads)
    : mode_(mode) {
  if (mode_ == Mode::kParallel) {
    pool_ = std::make_unique<ThreadPool>(threads);
  }
}

bn::ParameterLearnReport ReconstructionExecutor::learn(
    bn::BayesianNetwork& net, const bn::Dataset& data,
    const bn::ParameterLearnOptions& opts) const {
  return bn::learn_parameters(net, data, opts, pool());
}

}  // namespace kertbn::core
