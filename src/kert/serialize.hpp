#pragma once
/// \file serialize.hpp
/// Persistence for constructed KERT-BN models. A saved model carries the
/// *knowledge* (workflow tree, resource-sharing groups, leak setting,
/// discretizer for discrete models) plus the *learned* CPD parameters; on
/// load the knowledge-given response CPD is rebuilt from the workflow, so
/// the file never needs to encode executable functions.
///
/// The format is line-oriented UTF-8 text (17-significant-digit doubles:
/// save/load round-trips are exact). Intended uses: shipping a model from
/// the management server to autonomic components, snapshotting model
/// history, and offline analysis.

#include <iosfwd>
#include <optional>
#include <string>

#include "bn/network.hpp"
#include "common/contract.hpp"
#include "kert/discretize.hpp"
#include "workflow/resource.hpp"
#include "workflow/workflow.hpp"

namespace kertbn::core {

/// A persisted model: knowledge plus learned parameters.
struct SavedModel {
  wf::Workflow workflow;
  wf::ResourceSharing sharing;
  /// 0 = continuous model; >= 2 = discrete with this many bins.
  std::size_t bins = 0;
  /// Present iff the model is discrete.
  std::optional<DatasetDiscretizer> discretizer;
  /// Leak: sigma (continuous) or l (discrete).
  double leak = 0.0;
  bn::BayesianNetwork net;
};

/// Serializes a continuous KERT-BN (as built by construct_kert_continuous
/// or its metric/resource variants; the response node must carry a
/// DeterministicCpd).
void save_kert_continuous(std::ostream& out, const wf::Workflow& workflow,
                          const wf::ResourceSharing& sharing,
                          const bn::BayesianNetwork& net);

/// Serializes a discrete KERT-BN together with its discretizer. \p leak_l
/// is recorded for provenance; the response CPT itself is stored verbatim.
void save_kert_discrete(std::ostream& out, const wf::Workflow& workflow,
                        const wf::ResourceSharing& sharing,
                        const DatasetDiscretizer& discretizer, double leak_l,
                        const bn::BayesianNetwork& net);

/// Loads either flavor. Contract-fails on malformed input.
SavedModel load_kert_model(std::istream& in);

/// Why a model failed to load (try_load_kert_model).
struct LoadError {
  std::string message;
};

/// std::expected-style result of a fallible model load (the codebase
/// targets C++20, so this is a hand-rolled stand-in). Either holds a
/// SavedModel or a LoadError — never aborts on malformed input, which is
/// what lets a corrupt checkpoint degrade into "no model recovered"
/// instead of taking the recovering server down.
class LoadResult {
 public:
  LoadResult(SavedModel model) : model_(std::move(model)) {}
  LoadResult(LoadError error) : error_(std::move(error)) {}

  bool has_value() const { return model_.has_value(); }
  explicit operator bool() const { return has_value(); }

  SavedModel& value() {
    KERTBN_EXPECTS(model_.has_value());
    return *model_;
  }
  const SavedModel& value() const {
    KERTBN_EXPECTS(model_.has_value());
    return *model_;
  }
  SavedModel& operator*() { return value(); }
  const SavedModel& operator*() const { return value(); }
  SavedModel* operator->() { return &value(); }
  const SavedModel* operator->() const { return &value(); }

  /// Empty message when the load succeeded.
  const LoadError& error() const { return error_; }

 private:
  std::optional<SavedModel> model_;
  LoadError error_;
};

/// Fallible load of either flavor: every malformed-input case the aborting
/// loader treats as a contract violation (bad magic, truncated stream,
/// inconsistent counts, invalid CPD parameters, unparsable workflow tree)
/// is returned as a LoadError instead.
LoadResult try_load_kert_model(std::istream& in);
LoadResult try_load_from_string(const std::string& text);

/// Convenience string round-trips.
std::string save_to_string(const wf::Workflow& workflow,
                           const wf::ResourceSharing& sharing,
                           const bn::BayesianNetwork& net);
SavedModel load_from_string(const std::string& text);

/// Serializes an arbitrary fully-parameterized network — e.g. a learned
/// NRT-BN — without any knowledge blocks: variables, structure, and every
/// CPD. Linear-Gaussian and tabular CPDs only (a deterministic CPD cannot
/// be persisted without its workflow; use save_kert_continuous for those).
void save_network(std::ostream& out, const bn::BayesianNetwork& net);

/// Loads a network written by save_network. Contract-fails on malformed
/// input. Round-trips are exact (17-significant-digit doubles).
bn::BayesianNetwork load_network(std::istream& in);

/// Convenience string round-trips for save_network/load_network.
std::string network_to_string(const bn::BayesianNetwork& net);
bn::BayesianNetwork network_from_string(const std::string& text);

}  // namespace kertbn::core
