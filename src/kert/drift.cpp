#include "kert/drift.hpp"

#include <algorithm>

namespace kertbn::core {

bool DriftDetector::add(double score) {
  ++n_;
  mean_ += (score - mean_) / static_cast<double>(n_);
  // Page-Hinkley for a decrease: accumulate (x_t - mean_t + delta); a
  // sustained drop drives the cumulative sum down away from its running
  // maximum.
  cumulative_ += score - mean_ + opts_.delta;
  max_cumulative_ = std::max(max_cumulative_, cumulative_);
  if (max_cumulative_ - cumulative_ > opts_.lambda) {
    drifted_ = true;
  }
  return drifted_;
}

void DriftDetector::reset() {
  n_ = 0;
  mean_ = 0.0;
  cumulative_ = 0.0;
  max_cumulative_ = 0.0;
  drifted_ = false;
}

}  // namespace kertbn::core
