#include "kert/window_stats.hpp"

#include <algorithm>
#include <limits>

#include "common/contract.hpp"

namespace kertbn::core {

std::size_t CountLayout::table_size() const {
  std::size_t configs = 1;
  for (std::size_t c : parent_cards) configs *= c;
  return configs * child_card;
}

WindowStats::WindowStats(Config config) : config_(std::move(config)) {
  KERTBN_EXPECTS(config_.cols >= 1);
  KERTBN_EXPECTS(config_.rows_per_segment >= 1);
  KERTBN_EXPECTS(config_.max_rows >= config_.rows_per_segment);
}

void WindowStats::observe(std::span<const double> row) {
  KERTBN_EXPECTS(row.size() == config_.cols);
  if (segments_.empty() || segments_.back().sealed) {
    segments_.emplace_back();
    segments_.back().raw.reserve(config_.rows_per_segment * config_.cols);
  }
  Segment& back = segments_.back();
  back.raw.insert(back.raw.end(), row.begin(), row.end());
  if (back.rows(config_.cols) == config_.rows_per_segment) seal_back();
  // Evict whole sealed segments from the front once the retained span
  // exceeds the window capacity. Mid-segment the retained rows may cover
  // slightly less than the window; at every segment boundary (where
  // reconstructions happen) coverage matches the window exactly.
  while (retained_rows() > config_.max_rows && segments_.front().sealed) {
    segments_.pop_front();
  }
}

void WindowStats::reset() { segments_.clear(); }

std::size_t WindowStats::retained_rows() const {
  std::size_t rows = 0;
  for (const Segment& s : segments_) rows += s.rows(config_.cols);
  return rows;
}

std::size_t WindowStats::segments() const { return segments_.size(); }

bool WindowStats::aligned(const bn::Dataset& window) const {
  if (window.rows() == 0 || window.cols() != config_.cols) return false;
  if (retained_rows() != window.rows()) return false;
  const auto row_matches = [&](std::span<const double> a,
                               std::span<const double> b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  };
  const Segment& front = segments_.front();
  const Segment& back = segments_.back();
  const std::span<const double> first(front.raw.data(), config_.cols);
  const std::span<const double> last(
      back.raw.data() + back.raw.size() - config_.cols, config_.cols);
  return row_matches(first, window.row(0)) &&
         row_matches(last, window.row(window.rows() - 1));
}

void WindowStats::seal_back() {
  Segment& seg = segments_.back();
  seg.gram = la::Matrix(config_.cols + 1, config_.cols + 1);
  accumulate_moments(seg, seg.gram, seg.resid_sum, seg.resid_sum_sq, seg.min,
                     seg.max);
  seg.sealed = true;
}

void WindowStats::accumulate_moments(const Segment& seg, la::Matrix& gram,
                                     double& resid_sum, double& resid_sum_sq,
                                     std::vector<double>& min,
                                     std::vector<double>& max) const {
  const std::size_t cols = config_.cols;
  const std::size_t rows = seg.rows(cols);
  min.assign(cols, std::numeric_limits<double>::infinity());
  max.assign(cols, -std::numeric_limits<double>::infinity());
  std::vector<double> aug(cols + 1);
  aug[0] = 1.0;
  for (std::size_t r = 0; r < rows; ++r) {
    const std::span<const double> row(seg.raw.data() + r * cols, cols);
    for (std::size_t c = 0; c < cols; ++c) {
      aug[c + 1] = row[c];
      min[c] = std::min(min[c], row[c]);
      max[c] = std::max(max[c], row[c]);
    }
    // Upper triangle only; mirrored below (the Gram matrix is symmetric).
    for (std::size_t i = 0; i <= cols; ++i) {
      for (std::size_t j = i; j <= cols; ++j) {
        gram(i, j) += aug[i] * aug[j];
      }
    }
    if (config_.residual) {
      const double e = config_.residual(row);
      resid_sum += e;
      resid_sum_sq += e * e;
    }
  }
  for (std::size_t i = 0; i <= cols; ++i) {
    for (std::size_t j = 0; j < i; ++j) gram(i, j) = gram(j, i);
  }
}

la::Matrix WindowStats::combined_gram() const {
  la::Matrix total(config_.cols + 1, config_.cols + 1);
  for (const Segment& seg : segments_) {
    if (seg.sealed) {
      total += seg.gram;
      continue;
    }
    la::Matrix gram(config_.cols + 1, config_.cols + 1);
    double rs = 0.0, rss = 0.0;
    std::vector<double> mn, mx;
    accumulate_moments(seg, gram, rs, rss, mn, mx);
    total += gram;
  }
  return total;
}

WindowStats::ResidualMoments WindowStats::combined_residuals() const {
  ResidualMoments m;
  if (!config_.residual) return m;
  for (const Segment& seg : segments_) {
    if (seg.sealed) {
      m.sum += seg.resid_sum;
      m.sum_sq += seg.resid_sum_sq;
    } else {
      la::Matrix gram(config_.cols + 1, config_.cols + 1);
      double rs = 0.0, rss = 0.0;
      std::vector<double> mn, mx;
      accumulate_moments(seg, gram, rs, rss, mn, mx);
      m.sum += rs;
      m.sum_sq += rss;
    }
    m.rows += seg.rows(config_.cols);
  }
  return m;
}

double WindowStats::col_min(std::size_t c) const {
  KERTBN_EXPECTS(c < config_.cols);
  KERTBN_EXPECTS(!segments_.empty());
  double lo = std::numeric_limits<double>::infinity();
  for (const Segment& seg : segments_) {
    if (seg.sealed) {
      lo = std::min(lo, seg.min[c]);
    } else {
      const std::size_t rows = seg.rows(config_.cols);
      for (std::size_t r = 0; r < rows; ++r) {
        lo = std::min(lo, seg.raw[r * config_.cols + c]);
      }
    }
  }
  return lo;
}

double WindowStats::col_max(std::size_t c) const {
  KERTBN_EXPECTS(c < config_.cols);
  KERTBN_EXPECTS(!segments_.empty());
  double hi = -std::numeric_limits<double>::infinity();
  for (const Segment& seg : segments_) {
    if (seg.sealed) {
      hi = std::max(hi, seg.max[c]);
    } else {
      const std::size_t rows = seg.rows(config_.cols);
      for (std::size_t r = 0; r < rows; ++r) {
        hi = std::max(hi, seg.raw[r * config_.cols + c]);
      }
    }
  }
  return hi;
}

std::vector<std::vector<double>> WindowStats::count_segment(
    const Segment& seg, std::span<const CountLayout> layouts,
    const DatasetDiscretizer& disc) const {
  const std::size_t cols = config_.cols;
  std::vector<std::vector<double>> tables(layouts.size());
  for (std::size_t l = 0; l < layouts.size(); ++l) {
    tables[l].assign(layouts[l].table_size(), 0.0);
  }
  const std::size_t rows = seg.rows(cols);
  std::vector<std::size_t> states(cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      states[c] = disc.column(c).bin_of(seg.raw[r * cols + c]);
    }
    for (std::size_t l = 0; l < layouts.size(); ++l) {
      const CountLayout& lay = layouts[l];
      std::size_t cfg = 0;
      for (std::size_t i = 0; i < lay.parent_cols.size(); ++i) {
        cfg = cfg * lay.parent_cards[i] + states[lay.parent_cols[i]];
      }
      tables[l][cfg * lay.child_card + states[lay.child_col]] += 1.0;
    }
  }
  return tables;
}

WindowStats::CountResult WindowStats::counts(
    std::span<const CountLayout> layouts, const DatasetDiscretizer& disc,
    std::size_t discretizer_version) {
  KERTBN_EXPECTS(disc.columns() == config_.cols);
  CountResult result;
  result.node_counts.resize(layouts.size());
  for (std::size_t l = 0; l < layouts.size(); ++l) {
    result.node_counts[l].assign(layouts[l].table_size(), 0.0);
  }
  for (Segment& seg : segments_) {
    const std::vector<std::vector<double>>* tables = nullptr;
    std::vector<std::vector<double>> fresh;
    if (seg.sealed && seg.counts_valid &&
        seg.counts_version == discretizer_version &&
        seg.counts.size() == layouts.size()) {
      tables = &seg.counts;
    } else {
      fresh = count_segment(seg, layouts, disc);
      result.rows_scanned += seg.rows(config_.cols);
      if (seg.sealed) {
        seg.counts = std::move(fresh);
        seg.counts_version = discretizer_version;
        seg.counts_valid = true;
        tables = &seg.counts;
      } else {
        tables = &fresh;
      }
    }
    for (std::size_t l = 0; l < layouts.size(); ++l) {
      KERTBN_ASSERT((*tables)[l].size() == result.node_counts[l].size());
      for (std::size_t i = 0; i < (*tables)[l].size(); ++i) {
        result.node_counts[l][i] += (*tables)[l][i];
      }
    }
  }
  return result;
}

}  // namespace kertbn::core
