#pragma once
/// \file nrt_builder.hpp
/// NRT-BN: the Naive Response Time Bayesian Network baseline (Section 4) —
/// learned purely from data, with K2 structure search over all n+1 variables
/// followed by full parameter learning. Section 5.3 additionally re-runs K2
/// with random orderings until the construction deadline; the restart count
/// reproduces that optimization.

#include "bn/learning.hpp"
#include "bn/network.hpp"
#include "bn/structure_learning.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace kertbn::core {

struct NrtOptions {
  bn::K2Options k2;
  /// Number of random K2 orderings to try (1 = single random ordering).
  std::size_t restarts = 1;
  bn::ParameterLearnOptions learn;
};

struct NrtConstructionReport {
  double structure_seconds = 0.0;  ///< K2 search time (all restarts).
  double parameter_seconds = 0.0;  ///< Full parameter-learning time.
  double total_seconds = 0.0;
  double structure_score = 0.0;    ///< Best K2 score found.
};

struct NrtResult {
  bn::BayesianNetwork net;
  NrtConstructionReport report;
};

/// Learns an NRT-BN from scratch. \p vars describes every column of
/// \p train (services then D); kinds select the score (K2 for discrete,
/// Gaussian BIC for continuous) and the CPD family. When \p pool is
/// non-null both the K2 restarts and the per-node parameter fits run
/// concurrently on it; results are identical to the serial path.
NrtResult construct_nrt(const bn::Dataset& train,
                        std::span<const bn::Variable> vars, Rng& rng,
                        const NrtOptions& opts = {},
                        ThreadPool* pool = nullptr);

/// A learning-free NRT-BN with the classic naive-Bayes structure (D is the
/// sole parent of every service node). The paper considers and dismisses
/// this variant; it is kept as an ablation baseline.
NrtResult construct_naive_bayes(const bn::Dataset& train,
                                std::span<const bn::Variable> vars,
                                std::size_t class_node,
                                const bn::ParameterLearnOptions& learn = {});

}  // namespace kertbn::core
