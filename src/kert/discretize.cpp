#include "kert/discretize.hpp"

#include <algorithm>

#include "common/contract.hpp"
#include "common/stats.hpp"

namespace kertbn::core {

ColumnDiscretizer::ColumnDiscretizer(std::span<const double> values,
                                     std::size_t bins) {
  KERTBN_EXPECTS(bins >= 2);
  KERTBN_EXPECTS(!values.empty());
  data_min_ = values.front();
  data_max_ = values.front();
  for (double v : values) {
    data_min_ = std::min(data_min_, v);
    data_max_ = std::max(data_max_, v);
  }
  edges_.reserve(bins - 1);
  for (std::size_t b = 1; b < bins; ++b) {
    const double q = static_cast<double>(b) / static_cast<double>(bins);
    double edge = quantile(values, q);
    // Ties between quantiles would create empty bins; nudge edges strictly
    // upward so every state remains reachable.
    if (!edges_.empty() && edge <= edges_.back()) {
      edge = edges_.back() + 1e-9;
    }
    edges_.push_back(edge);
  }

  // Bin centers: median of in-bin values, falling back to edge midpoints.
  centers_.assign(bins, 0.0);
  std::vector<std::vector<double>> buckets(bins);
  for (double v : values) buckets[bin_of(v)].push_back(v);
  for (std::size_t b = 0; b < bins; ++b) {
    if (!buckets[b].empty()) {
      centers_[b] = quantile(buckets[b], 0.5);
    } else if (b == 0) {
      centers_[b] = edges_.front();
    } else if (b == bins - 1) {
      centers_[b] = edges_.back();
    } else {
      centers_[b] = 0.5 * (edges_[b - 1] + edges_[b]);
    }
  }
}

ColumnDiscretizer ColumnDiscretizer::from_parts(std::vector<double> edges,
                                                std::vector<double> centers,
                                                double data_min,
                                                double data_max) {
  KERTBN_EXPECTS(centers.size() >= 2);
  KERTBN_EXPECTS(edges.size() == centers.size() - 1);
  for (std::size_t i = 1; i < edges.size(); ++i) {
    KERTBN_EXPECTS(edges[i] > edges[i - 1]);
  }
  KERTBN_EXPECTS(data_max >= data_min);
  ColumnDiscretizer disc;
  disc.edges_ = std::move(edges);
  disc.centers_ = std::move(centers);
  disc.data_min_ = data_min;
  disc.data_max_ = data_max;
  return disc;
}

std::size_t ColumnDiscretizer::bin_of(double value) const {
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), value);
  return static_cast<std::size_t>(it - edges_.begin());
}

double ColumnDiscretizer::center_of(std::size_t state) const {
  KERTBN_EXPECTS(state < centers_.size());
  return centers_[state];
}

std::pair<double, double> ColumnDiscretizer::interval_of(
    std::size_t state) const {
  KERTBN_EXPECTS(state < centers_.size());
  const double lo = state == 0 ? data_min_ : edges_[state - 1];
  const double hi =
      state == centers_.size() - 1 ? data_max_ : edges_[state];
  return {lo, std::max(hi, lo)};
}

double ColumnDiscretizer::exceedance(std::span<const double> state_probs,
                                     double threshold) const {
  KERTBN_EXPECTS(state_probs.size() == centers_.size());
  double p = 0.0;
  for (std::size_t b = 0; b < state_probs.size(); ++b) {
    const auto [lo, hi] = interval_of(b);
    if (threshold <= lo) {
      p += state_probs[b];
    } else if (threshold < hi) {
      // Uniform within-bin spread: the fraction of the interval above h.
      p += state_probs[b] * (hi - threshold) / (hi - lo);
    }
  }
  return p;
}

DatasetDiscretizer::DatasetDiscretizer(const bn::Dataset& data,
                                       std::size_t bins)
    : bins_(bins) {
  KERTBN_EXPECTS(data.rows() > 0);
  columns_.reserve(data.cols());
  for (std::size_t c = 0; c < data.cols(); ++c) {
    const auto col = data.column(c);
    columns_.emplace_back(col, bins);
  }
}

DatasetDiscretizer::DatasetDiscretizer(std::vector<ColumnDiscretizer> columns)
    : bins_(columns.empty() ? 0 : columns.front().bins()),
      columns_(std::move(columns)) {
  KERTBN_EXPECTS(!columns_.empty());
  for (const auto& c : columns_) {
    KERTBN_EXPECTS(c.bins() == bins_);
  }
}

DatasetDiscretizer DatasetDiscretizer::from_columns(
    std::vector<ColumnDiscretizer> columns) {
  return DatasetDiscretizer(std::move(columns));
}

const ColumnDiscretizer& DatasetDiscretizer::column(std::size_t c) const {
  KERTBN_EXPECTS(c < columns_.size());
  return columns_[c];
}

bn::Dataset DatasetDiscretizer::discretize(const bn::Dataset& data) const {
  KERTBN_EXPECTS(data.cols() == columns_.size());
  bn::Dataset out(data.column_names());
  std::vector<double> row(data.cols());
  for (std::size_t r = 0; r < data.rows(); ++r) {
    for (std::size_t c = 0; c < data.cols(); ++c) {
      row[c] = static_cast<double>(columns_[c].bin_of(data.value(r, c)));
    }
    out.add_row(row);
  }
  return out;
}

}  // namespace kertbn::core
