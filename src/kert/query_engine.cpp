#include "kert/query_engine.hpp"

#include <chrono>
#include <future>

#include <algorithm>

#include "bn/relevance.hpp"
#include "common/contract.hpp"
#include "common/cpu_features.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "overload/governor.hpp"

namespace kertbn::core {

namespace {

/// Telemetry handles for the serving path (resolved once).
struct QueryMetrics {
  obs::Counter& queries;
  obs::Counter& batches;
  obs::Counter& pruned_routes;
  obs::Counter& tree_routes;
  obs::Counter& deadline_exceeded;
  obs::Counter& shed;
  obs::Counter& plan_hits;
  obs::Counter& plan_misses;
  obs::Gauge& simd_tier;
  obs::Histogram& latency_ns;
  obs::Histogram& batch_size;

  static QueryMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static QueryMetrics m{reg.counter("kert.query.count"),
                          reg.counter("kert.query.batches"),
                          reg.counter("kert.query.pruned_routes"),
                          reg.counter("kert.query.tree_routes"),
                          reg.counter("kert.query.deadline_exceeded"),
                          reg.counter("kert.query.shed"),
                          reg.counter("kert.query.plan_hits"),
                          reg.counter("kert.query.plan_misses"),
                          reg.gauge("kert.query.simd_tier"),
                          reg.histogram("kert.query.latency_ns"),
                          reg.histogram("kert.query.batch_size")};
    return m;
  }
};

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool discrete_tabular(const bn::BayesianNetwork& net) {
  if (!net.is_complete()) return false;
  for (std::size_t v = 0; v < net.size(); ++v) {
    if (!net.variable(v).is_discrete()) return false;
    if (net.cpd(v).kind() != bn::CpdKind::kTabular) return false;
  }
  return true;
}

}  // namespace

const char* to_string(QueryStatus status) {
  switch (status) {
    case QueryStatus::kOk:
      return "ok";
    case QueryStatus::kDeadlineExceeded:
      return "deadline_exceeded";
    case QueryStatus::kShed:
      return "shed";
  }
  return "unknown";
}

std::shared_ptr<const ModelSnapshot> make_model_snapshot(
    std::size_t version, double built_at, const bn::BayesianNetwork& net,
    const std::optional<DatasetDiscretizer>& discretizer) {
  KERTBN_SPAN_VAR(span, "kert.snapshot.build");
  auto snapshot = std::make_shared<ModelSnapshot>();
  snapshot->version = version;
  snapshot->built_at = built_at;
  snapshot->net = net;  // deep copy: the snapshot owns its model
  snapshot->discretizer = discretizer;
  if (discrete_tabular(snapshot->net)) {
    // The tree references the snapshot's own copy and is warmed here, so
    // no-evidence reads on the shared snapshot are mutation-free.
    auto tree = std::make_unique<bn::JunctionTree>(snapshot->net);
    tree->warm();
    snapshot->prior_tree = std::move(tree);
  }
  span.tag("version", static_cast<std::uint64_t>(version));
  span.tag("tree", snapshot->has_tree());
  return snapshot;
}

QueryEngine::QueryEngine(Config config) : config_(config) {
  KERTBN_EXPECTS(config_.slot != nullptr);
  KERTBN_EXPECTS(config_.prune_threshold >= 0.0);
}

void QueryEngine::adopt(Worker& w,
                        const std::shared_ptr<const ModelSnapshot>& snapshot) {
  if (w.snapshot == snapshot) return;  // tree (and its caches) stay warm
  w.snapshot = snapshot;
  w.tree.reset();
  if (snapshot->has_tree()) {
    // Copying the warm tree clones the cached no-evidence calibration, so
    // the worker starts with every plan and message already in place.
    w.tree.emplace(*snapshot->prior_tree);
    w.tree->set_incremental(config_.incremental_recalibration);
    // The copy carries the source tree's plan-cache counters; rebase the
    // harvest watermarks so the next batch reports only this worker's work.
    w.plan_hits_seen = w.tree->plan_hits();
    w.plan_misses_seen = w.tree->plan_misses();
  }
}

QueryAnswer QueryEngine::answer(Worker& w, const Query& q) {
  const ModelSnapshot& snap = *w.snapshot;
  KERTBN_EXPECTS(w.tree.has_value());
  bn::JunctionTree& tree = *w.tree;

  QueryAnswer out;
  out.snapshot_version = snap.version;

  if (q.kind == QueryKind::kEvidenceProbability) {
    tree.calibrate_sorted(q.evidence);
    out.evidence_probability = tree.evidence_probability();
    return out;
  }

  KERTBN_EXPECTS(q.target < snap.net.size());
  const ColumnDiscretizer* column =
      snap.discretizer.has_value() && q.target < snap.discretizer->columns()
          ? &snap.discretizer->column(q.target)
          : nullptr;

  if (q.kind == QueryKind::kWhatIf) {
    // Baseline from the shared warm prior tree: a const, mutation-free
    // no-evidence read.
    out.baseline = summarize_discrete_posterior(
        snap.prior_tree->posterior(q.target), column);
    tree.calibrate_sorted(q.evidence);
    out.posterior = tree.posterior(q.target);
    out.summary = summarize_discrete_posterior(out.posterior, column);
    return out;
  }

  // kPosterior / kExceedance: route between the calibrated tree and pruned
  // variable elimination on the relevant subnetwork.
  bool pruned = false;
  if (config_.prune && !q.evidence.empty()) {
    std::vector<std::size_t> evidence_nodes;
    evidence_nodes.reserve(q.evidence.size());
    for (const auto& [v, _] : q.evidence) evidence_nodes.push_back(v);
    const std::size_t relevant =
        bn::relevant_node_count(snap.net, q.target, evidence_nodes);
    pruned = static_cast<double>(relevant) <=
             config_.prune_threshold * static_cast<double>(snap.net.size());
  }
  if (pruned) {
    out.route = QueryRoute::kPrunedElimination;
    out.posterior = bn::pruned_posterior_sorted(snap.net, q.target, q.evidence);
    pruned_routes_.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) QueryMetrics::get().pruned_routes.add(1);
  } else {
    out.route = QueryRoute::kCalibratedTree;
    tree.calibrate_sorted(q.evidence);
    out.posterior = tree.posterior(q.target);
    if (obs::enabled()) QueryMetrics::get().tree_routes.add(1);
  }
  out.summary = summarize_discrete_posterior(out.posterior, column);
  if (q.kind == QueryKind::kExceedance) {
    out.exceedance = out.summary.exceedance(q.threshold);
  }
  return out;
}

std::vector<QueryAnswer> QueryEngine::post(const QueryBatch& batch) {
  KERTBN_SPAN_VAR(span, "kert.query.batch");
  span.tag("queries", static_cast<std::uint64_t>(batch.size()));
  const std::shared_ptr<const ModelSnapshot> snapshot =
      config_.slot->acquire();
  KERTBN_EXPECTS(snapshot != nullptr &&
                 "QueryEngine::post requires a published snapshot");
  KERTBN_EXPECTS(snapshot->has_tree() &&
                 "QueryEngine serves discrete (tabular) snapshots");
  last_version_ = snapshot->version;

  const std::size_t n = batch.size();
  std::vector<QueryAnswer> answers(n);
  const auto clock = [this]() -> std::uint64_t {
    return config_.clock ? config_.clock() : now_ns();
  };

  // Overload shedding is decided per batch, before any inference work:
  // at kShedding batch-class queries are refused outright; at kEmergency
  // interactive queries additionally pay a query token each. A shed
  // answer carries the snapshot version but no posterior.
  std::vector<std::uint8_t> runnable(n, 1);
  std::size_t shed_now = 0;
  if (config_.governor != nullptr) {
    const ov::PressureLevel level = config_.governor->level();
    if (level >= ov::PressureLevel::kShedding) {
      for (std::size_t i = 0; i < n; ++i) {
        bool shed = batch[i].query_class == QueryClass::kBatch;
        if (!shed && level == ov::PressureLevel::kEmergency) {
          shed = !config_.governor->admit(
              ov::WorkClass::kQuery,
              static_cast<double>(clock()) * 1e-9);
        }
        if (shed) {
          answers[i].status = QueryStatus::kShed;
          answers[i].snapshot_version = snapshot->version;
          runnable[i] = 0;
          ++shed_now;
        }
      }
    }
  }
  if (shed_now > 0) {
    shed_queries_.fetch_add(shed_now, std::memory_order_relaxed);
    if (obs::enabled()) QueryMetrics::get().shed.add(shed_now);
  }

  // Execution order: interactive before batch (stable within each class),
  // so a deadline expiring mid-batch costs the low-priority work first.
  std::vector<std::size_t> order;
  order.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (runnable[i] && batch[i].query_class == QueryClass::kInteractive) {
      order.push_back(i);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (runnable[i] && batch[i].query_class == QueryClass::kBatch) {
      order.push_back(i);
    }
  }
  const std::size_t live = order.size();

  const std::size_t fanout =
      (config_.pool != nullptr && live > 1)
          ? std::min(config_.pool->size(), live)
          : std::size_t{1};
  if (workers_.size() < fanout) workers_.resize(fanout);
  for (std::size_t k = 0; k < fanout; ++k) adopt(workers_[k], snapshot);

  const bool timed = obs::enabled();
  std::atomic<std::size_t> expired{0};
  auto run_stripe = [&](std::size_t k) {
    Worker& w = workers_[k];
    for (std::size_t j = k; j < live; j += fanout) {
      const std::size_t i = order[j];
      const Query& q = batch[i];
      // Deadline check at the stripe boundary, before any work: an
      // expired query returns immediately instead of occupying the
      // worker, and never carries a (partially calibrated) posterior.
      if (q.deadline_ns != 0 && clock() >= q.deadline_ns) {
        answers[i].status = QueryStatus::kDeadlineExceeded;
        answers[i].snapshot_version = snapshot->version;
        expired.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      const std::uint64_t t0 = timed ? now_ns() : 0;
      answers[i] = answer(w, q);
      if (timed) QueryMetrics::get().latency_ns.record(now_ns() - t0);
    }
  };
  if (fanout > 1) {
    std::vector<std::future<void>> done;
    done.reserve(fanout);
    for (std::size_t k = 0; k < fanout; ++k) {
      done.push_back(config_.pool->submit([&run_stripe, k] { run_stripe(k); }));
    }
    for (auto& f : done) f.get();
  } else if (live > 0) {
    run_stripe(0);
  }

  const std::size_t n_expired = expired.load(std::memory_order_relaxed);
  if (n_expired > 0) {
    deadline_exceeded_.fetch_add(n_expired, std::memory_order_relaxed);
    if (obs::enabled()) {
      QueryMetrics::get().deadline_exceeded.add(n_expired);
    }
  }

  queries_served_ += n;
  ++batches_served_;
  if (obs::enabled()) {
    QueryMetrics& m = QueryMetrics::get();
    m.queries.add(n);
    m.batches.add(1);
    m.batch_size.record(n);
    // Harvest per-worker plan-cache deltas so the serving tier's cache
    // posture (and the active kernel dispatch tier) is visible in
    // production telemetry.
    std::size_t dh = 0;
    std::size_t dm = 0;
    for (Worker& w : workers_) {
      if (!w.tree.has_value()) continue;
      dh += w.tree->plan_hits() - w.plan_hits_seen;
      dm += w.tree->plan_misses() - w.plan_misses_seen;
      w.plan_hits_seen = w.tree->plan_hits();
      w.plan_misses_seen = w.tree->plan_misses();
    }
    if (dh > 0) m.plan_hits.add(dh);
    if (dm > 0) m.plan_misses.add(dm);
    m.simd_tier.set(static_cast<double>(
        static_cast<int>(kertbn::simd::active_tier())));
  }
  return answers;
}

}  // namespace kertbn::core
