#include "kert/query_engine.hpp"

#include <chrono>
#include <future>

#include "bn/relevance.hpp"
#include "common/contract.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace kertbn::core {

namespace {

/// Telemetry handles for the serving path (resolved once).
struct QueryMetrics {
  obs::Counter& queries;
  obs::Counter& batches;
  obs::Counter& pruned_routes;
  obs::Counter& tree_routes;
  obs::Histogram& latency_ns;
  obs::Histogram& batch_size;

  static QueryMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static QueryMetrics m{reg.counter("kert.query.count"),
                          reg.counter("kert.query.batches"),
                          reg.counter("kert.query.pruned_routes"),
                          reg.counter("kert.query.tree_routes"),
                          reg.histogram("kert.query.latency_ns"),
                          reg.histogram("kert.query.batch_size")};
    return m;
  }
};

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool discrete_tabular(const bn::BayesianNetwork& net) {
  if (!net.is_complete()) return false;
  for (std::size_t v = 0; v < net.size(); ++v) {
    if (!net.variable(v).is_discrete()) return false;
    if (net.cpd(v).kind() != bn::CpdKind::kTabular) return false;
  }
  return true;
}

}  // namespace

std::shared_ptr<const ModelSnapshot> make_model_snapshot(
    std::size_t version, double built_at, const bn::BayesianNetwork& net,
    const std::optional<DatasetDiscretizer>& discretizer) {
  KERTBN_SPAN_VAR(span, "kert.snapshot.build");
  auto snapshot = std::make_shared<ModelSnapshot>();
  snapshot->version = version;
  snapshot->built_at = built_at;
  snapshot->net = net;  // deep copy: the snapshot owns its model
  snapshot->discretizer = discretizer;
  if (discrete_tabular(snapshot->net)) {
    // The tree references the snapshot's own copy and is warmed here, so
    // no-evidence reads on the shared snapshot are mutation-free.
    auto tree = std::make_unique<bn::JunctionTree>(snapshot->net);
    tree->warm();
    snapshot->prior_tree = std::move(tree);
  }
  span.tag("version", static_cast<std::uint64_t>(version));
  span.tag("tree", snapshot->has_tree());
  return snapshot;
}

QueryEngine::QueryEngine(Config config) : config_(config) {
  KERTBN_EXPECTS(config_.slot != nullptr);
  KERTBN_EXPECTS(config_.prune_threshold >= 0.0);
}

void QueryEngine::adopt(Worker& w,
                        const std::shared_ptr<const ModelSnapshot>& snapshot) {
  if (w.snapshot == snapshot) return;  // tree (and its caches) stay warm
  w.snapshot = snapshot;
  w.tree.reset();
  if (snapshot->has_tree()) {
    // Copying the warm tree clones the cached no-evidence calibration, so
    // the worker starts with every plan and message already in place.
    w.tree.emplace(*snapshot->prior_tree);
    w.tree->set_incremental(config_.incremental_recalibration);
  }
}

QueryAnswer QueryEngine::answer(Worker& w, const Query& q) {
  const ModelSnapshot& snap = *w.snapshot;
  KERTBN_EXPECTS(w.tree.has_value());
  bn::JunctionTree& tree = *w.tree;

  QueryAnswer out;
  out.snapshot_version = snap.version;

  if (q.kind == QueryKind::kEvidenceProbability) {
    tree.calibrate_sorted(q.evidence);
    out.evidence_probability = tree.evidence_probability();
    return out;
  }

  KERTBN_EXPECTS(q.target < snap.net.size());
  const ColumnDiscretizer* column =
      snap.discretizer.has_value() && q.target < snap.discretizer->columns()
          ? &snap.discretizer->column(q.target)
          : nullptr;

  if (q.kind == QueryKind::kWhatIf) {
    // Baseline from the shared warm prior tree: a const, mutation-free
    // no-evidence read.
    out.baseline = summarize_discrete_posterior(
        snap.prior_tree->posterior(q.target), column);
    tree.calibrate_sorted(q.evidence);
    out.posterior = tree.posterior(q.target);
    out.summary = summarize_discrete_posterior(out.posterior, column);
    return out;
  }

  // kPosterior / kExceedance: route between the calibrated tree and pruned
  // variable elimination on the relevant subnetwork.
  bool pruned = false;
  if (config_.prune && !q.evidence.empty()) {
    std::vector<std::size_t> evidence_nodes;
    evidence_nodes.reserve(q.evidence.size());
    for (const auto& [v, _] : q.evidence) evidence_nodes.push_back(v);
    const std::size_t relevant =
        bn::relevant_node_count(snap.net, q.target, evidence_nodes);
    pruned = static_cast<double>(relevant) <=
             config_.prune_threshold * static_cast<double>(snap.net.size());
  }
  if (pruned) {
    out.route = QueryRoute::kPrunedElimination;
    out.posterior = bn::pruned_posterior_sorted(snap.net, q.target, q.evidence);
    pruned_routes_.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) QueryMetrics::get().pruned_routes.add(1);
  } else {
    out.route = QueryRoute::kCalibratedTree;
    tree.calibrate_sorted(q.evidence);
    out.posterior = tree.posterior(q.target);
    if (obs::enabled()) QueryMetrics::get().tree_routes.add(1);
  }
  out.summary = summarize_discrete_posterior(out.posterior, column);
  if (q.kind == QueryKind::kExceedance) {
    out.exceedance = out.summary.exceedance(q.threshold);
  }
  return out;
}

std::vector<QueryAnswer> QueryEngine::post(const QueryBatch& batch) {
  KERTBN_SPAN_VAR(span, "kert.query.batch");
  span.tag("queries", static_cast<std::uint64_t>(batch.size()));
  const std::shared_ptr<const ModelSnapshot> snapshot =
      config_.slot->acquire();
  KERTBN_EXPECTS(snapshot != nullptr &&
                 "QueryEngine::post requires a published snapshot");
  KERTBN_EXPECTS(snapshot->has_tree() &&
                 "QueryEngine serves discrete (tabular) snapshots");
  last_version_ = snapshot->version;

  const std::size_t n = batch.size();
  const std::size_t fanout =
      (config_.pool != nullptr && n > 1)
          ? std::min(config_.pool->size(), n)
          : std::size_t{1};
  if (workers_.size() < fanout) workers_.resize(fanout);
  for (std::size_t k = 0; k < fanout; ++k) adopt(workers_[k], snapshot);

  std::vector<QueryAnswer> answers(n);
  const bool timed = obs::enabled();
  auto run_stripe = [&](std::size_t k) {
    Worker& w = workers_[k];
    for (std::size_t i = k; i < n; i += fanout) {
      const std::uint64_t t0 = timed ? now_ns() : 0;
      answers[i] = answer(w, batch[i]);
      if (timed) QueryMetrics::get().latency_ns.record(now_ns() - t0);
    }
  };
  if (fanout > 1) {
    std::vector<std::future<void>> done;
    done.reserve(fanout);
    for (std::size_t k = 0; k < fanout; ++k) {
      done.push_back(config_.pool->submit([&run_stripe, k] { run_stripe(k); }));
    }
    for (auto& f : done) f.get();
  } else if (n > 0) {
    run_stripe(0);
  }

  queries_served_ += n;
  ++batches_served_;
  if (obs::enabled()) {
    QueryMetrics& m = QueryMetrics::get();
    m.queries.add(n);
    m.batches.add(1);
    m.batch_size.record(n);
  }
  return answers;
}

}  // namespace kertbn::core
