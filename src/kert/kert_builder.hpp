#pragma once
/// \file kert_builder.hpp
/// KERT-BN construction (Section 3): the knowledge-enhanced response-time
/// Bayesian network. Structure comes from workflow + resource-sharing
/// knowledge (no structure learning); the response-time node's CPD is the
/// deterministic workflow function with a leak (Equation 4); the remaining
/// service CPDs are learned from data — centrally or decentralized.

#include <optional>

#include "bn/deterministic_cpd.hpp"
#include "bn/learning.hpp"
#include "bn/network.hpp"
#include "common/thread_pool.hpp"
#include "decentral/decentralized_learner.hpp"
#include "kert/discretize.hpp"
#include "kert/window_stats.hpp"
#include "workflow/resource.hpp"
#include "workflow/workflow.hpp"

namespace kertbn::core {

/// Node layout shared by every network this library builds: service node i
/// is BN node i, and the response-time node D is node n (last).
inline std::size_t response_node(std::size_t n_services) {
  return n_services;
}

struct KertStructureOptions {
  /// Add dependency edges between services sharing a resource (the second
  /// knowledge channel of Section 3.2).
  bool use_resource_sharing = true;
};

/// Builds the knowledge-given DAG: workflow upstream edges between service
/// nodes, resource-sharing edges between co-hosted services (oriented from
/// lower to higher node index, skipped if they would cycle), and edges from
/// every service node into D.
graph::Dag build_kert_structure(const wf::Workflow& workflow,
                                const wf::ResourceSharing& sharing,
                                const KertStructureOptions& opts = {});

/// Packages the workflow-derived deterministic response-time function as a
/// continuous CPD with the given leak noise (Equation 4 with l -> sigma).
bn::DeterministicFn make_response_fn(const wf::Workflow& workflow);

/// Calibrates the leak noise scale from training data: the standard
/// deviation of the residual D - f(X) over the window (floored at
/// \p min_sigma). One pass over the data — the deterministic function
/// itself still comes from knowledge, only the measurement-noise scale of
/// Equation 4 is read off the monitors.
double calibrate_leak_sigma(const wf::Workflow& workflow,
                            const bn::Dataset& train,
                            double min_sigma = 1e-6);

/// Same calibration fed from pre-accumulated residual moments (Σe, Σe²
/// over \p rows residuals) instead of a data pass — the WindowStats route.
/// Uses the identical formula as calibrate_leak_sigma, so results agree to
/// floating-point reassociation error.
double leak_sigma_from_residual_moments(double sum, double sum_sq,
                                        std::size_t rows,
                                        double min_sigma = 1e-6);

/// Materializes Equation 4 as a CPT for the discrete variant. For each
/// parent bin configuration the deterministic function is integrated over
/// the configuration's bin intervals (\p samples_per_config quasi-random
/// evaluations of f — knowledge + bin geometry only, no response data) and
/// the resulting D-bin frequencies carry mass (1 - leak_l); leak_l spreads
/// uniformly. samples_per_config = 1 evaluates f at the bin centers only
/// (the naive variant; loses within-bin spread and miscalibrates tails).
bn::TabularCpd make_deterministic_cpt(const wf::Workflow& workflow,
                                      const DatasetDiscretizer& discretizer,
                                      double leak_l,
                                      std::size_t samples_per_config = 64);

/// Continuous KERT-BN skeleton: X nodes continuous, D carries the
/// deterministic CPD, service CPDs left to the learner.
bn::BayesianNetwork build_kert_skeleton_continuous(
    const wf::Workflow& workflow, const wf::ResourceSharing& sharing,
    double leak_sigma = 1e-3, const KertStructureOptions& opts = {});

/// Discrete KERT-BN skeleton: X and D discrete with the discretizer's bin
/// count, D carries the materialized deterministic CPT.
bn::BayesianNetwork build_kert_skeleton_discrete(
    const wf::Workflow& workflow, const wf::ResourceSharing& sharing,
    const DatasetDiscretizer& discretizer, double leak_l = 0.02,
    const KertStructureOptions& opts = {});

/// How the service CPDs are learned.
enum class LearningMode { kCentralized, kDecentralized };

/// Timing breakdown of one KERT-BN construction.
struct KertConstructionReport {
  double structure_seconds = 0.0;  ///< Knowledge-to-DAG translation time.
  double parameter_seconds = 0.0;  ///< Elapsed parameter-learning time.
  /// Per-node CPD fit times (decentralized mode: the concurrent per-agent
  /// times whose max is the protocol's completion time).
  std::vector<double> per_node_seconds;
  double decentralized_seconds = 0.0;
  double centralized_equivalent_seconds = 0.0;
  double total_seconds = 0.0;
};

/// End-to-end construction of a continuous KERT-BN from a training window.
/// Dataset columns: services in order, then D. \p leak_sigma <= 0 (the
/// default) auto-calibrates the leak scale from the training residuals.
struct KertResult {
  bn::BayesianNetwork net;
  KertConstructionReport report;
};
KertResult construct_kert_continuous(
    const wf::Workflow& workflow, const wf::ResourceSharing& sharing,
    const bn::Dataset& train, LearningMode mode = LearningMode::kCentralized,
    double leak_sigma = 0.0, const bn::ParameterLearnOptions& learn = {},
    ThreadPool* pool = nullptr);

/// End-to-end construction of a discrete KERT-BN. \p train must already be
/// discretized with \p discretizer.
KertResult construct_kert_discrete(
    const wf::Workflow& workflow, const wf::ResourceSharing& sharing,
    const DatasetDiscretizer& discretizer, const bn::Dataset& train,
    LearningMode mode = LearningMode::kCentralized, double leak_l = 0.02,
    const bn::ParameterLearnOptions& learn = {}, ThreadPool* pool = nullptr);

/// Continuous KERT-BN from cached window statistics: \p gram is the
/// combined augmented Gram matrix over the window's \p rows rows (see
/// WindowStats::combined_gram) and \p leak_sigma the already-calibrated
/// leak scale (use leak_sigma_from_residual_moments). Service CPDs are
/// solved from the moments — through the same normal-equation solver the
/// full-recount path uses — without touching a single raw row; with a
/// pool the per-node solves run concurrently.
KertResult construct_kert_continuous_from_stats(
    const wf::Workflow& workflow, const wf::ResourceSharing& sharing,
    const la::Matrix& gram, std::size_t rows, double leak_sigma,
    const bn::ParameterLearnOptions& learn = {}, ThreadPool* pool = nullptr);

/// Count-table layouts for every learnable (service) node of the discrete
/// KERT-BN over the knowledge structure: layouts[v] describes node v with
/// its knowledge-given parents, all cardinalities \p bins. Feed these to
/// WindowStats::counts and the resulting tables to
/// construct_kert_discrete_from_counts.
std::vector<CountLayout> kert_discrete_count_layouts(
    const wf::Workflow& workflow, const wf::ResourceSharing& sharing,
    std::size_t bins, const KertStructureOptions& opts = {});

/// Discrete KERT-BN from cached per-node count tables (one per service
/// node, laid out per kert_discrete_count_layouts). Counts are exact, so
/// the CPTs are bit-identical to a full recount under the same
/// discretizer. \p cached_d_cpt optionally reuses a previously
/// materialized deterministic response CPT (valid as long as the
/// discretizer's edges are unchanged) — skipping the bins^n integration
/// that dominates discrete construction time.
KertResult construct_kert_discrete_from_counts(
    const wf::Workflow& workflow, const wf::ResourceSharing& sharing,
    const DatasetDiscretizer& discretizer,
    std::span<const std::vector<double>> node_counts, double leak_l = 0.02,
    const bn::ParameterLearnOptions& learn = {}, ThreadPool* pool = nullptr,
    const bn::TabularCpd* cached_d_cpt = nullptr);

/// Continuous KERT-BN for an arbitrary transaction metric (Section 3.3:
/// "the CPD format given by Equation 4 ... also applies to other
/// transaction-oriented performance metrics such as timeout request
/// count, only with a different mapping from the workflow to f").
/// \p metric_expr is the workflow-derived aggregate — e.g.
/// workflow.count_expr() for timeout counts (D = Σ X_i). Dataset layout is
/// unchanged: services then D.
KertResult construct_kert_for_metric(
    const wf::Workflow& workflow, const wf::ResourceSharing& sharing,
    const wf::Expr::Ptr& metric_expr, const bn::Dataset& train,
    LearningMode mode = LearningMode::kCentralized, double leak_sigma = 0.0,
    const bn::ParameterLearnOptions& learn = {}, ThreadPool* pool = nullptr);

/// Continuous KERT-BN with explicit resource-utilization nodes — the
/// literal Section 3.2 reading: "resource sharing may be represented by
/// services forming the parents to a KERT-BN node embodying the resource
/// they share". Node layout: services 0..n-1, one node per resource group
/// n..n+m-1 (parents: the group's services), then D (parents: the
/// services). Dataset columns must match generate_with_resources().
/// Resource CPDs are learned like service CPDs; dComp can then infer an
/// unmonitored resource's utilization from service elapsed times.
KertResult construct_kert_with_resources(
    const wf::Workflow& workflow, const wf::ResourceSharing& sharing,
    const bn::Dataset& train, LearningMode mode = LearningMode::kCentralized,
    double leak_sigma = 0.0, const bn::ParameterLearnOptions& learn = {},
    ThreadPool* pool = nullptr);

}  // namespace kertbn::core
