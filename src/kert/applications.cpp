#include "kert/applications.hpp"

#include <cmath>

#include "bn/intervention.hpp"
#include "bn/linear_gaussian_cpd.hpp"
#include "common/contract.hpp"
#include "common/stats.hpp"

namespace kertbn::core {

double DistributionSummary::exceedance(double threshold) const {
  if (!support.empty()) {
    double p = 0.0;
    for (std::size_t i = 0; i < support.size(); ++i) {
      if (support[i] > threshold) p += probs[i];
    }
    return p;
  }
  const double sd = std::max(stddev, 1e-9);
  return 1.0 - gaussian_cdf(threshold, mean, sd);
}

bool all_linear_gaussian(const bn::BayesianNetwork& net) {
  for (std::size_t v = 0; v < net.size(); ++v) {
    if (!net.has_cpd(v)) return false;
    if (net.cpd(v).kind() != bn::CpdKind::kLinearGaussian) return false;
  }
  return true;
}

namespace {

DistributionSummary summarize_samples(std::span<const double> xs) {
  DistributionSummary s;
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  return s;
}

DistributionSummary summarize_weighted(const bn::WeightedSamples& ws) {
  DistributionSummary s;
  s.mean = ws.mean();
  s.stddev = std::sqrt(ws.variance());
  return s;
}

}  // namespace

DistributionSummary summarize_discrete_posterior(
    const std::vector<double>& dist, const ColumnDiscretizer* column) {
  DistributionSummary s;
  s.probs = dist;
  s.support.resize(dist.size());
  for (std::size_t i = 0; i < dist.size(); ++i) {
    s.support[i] =
        column ? column->center_of(i) : static_cast<double>(i);
  }
  double m = 0.0;
  for (std::size_t i = 0; i < dist.size(); ++i) m += s.support[i] * dist[i];
  double var = 0.0;
  for (std::size_t i = 0; i < dist.size(); ++i) {
    const double d = s.support[i] - m;
    var += d * d * dist[i];
  }
  s.mean = m;
  s.stddev = std::sqrt(var);
  return s;
}

namespace {

DistributionSummary continuous_marginal(const bn::BayesianNetwork& net,
                                        std::size_t node, Rng& rng,
                                        std::size_t samples) {
  if (all_linear_gaussian(net)) {
    const bn::GaussianDistribution joint = bn::joint_gaussian(net);
    DistributionSummary s;
    s.mean = joint.mean_of(node);
    s.stddev = std::sqrt(std::max(joint.variance_of(node), 0.0));
    return s;
  }
  return summarize_samples(bn::forward_marginal(net, node, samples, rng));
}

DistributionSummary continuous_posterior(
    const bn::BayesianNetwork& net, std::size_t node,
    const bn::ContinuousEvidence& evidence, Rng& rng, std::size_t samples) {
  if (evidence.empty()) return continuous_marginal(net, node, rng, samples);
  if (all_linear_gaussian(net)) {
    const bn::ScalarPosterior post =
        bn::gaussian_posterior(net, node, evidence);
    DistributionSummary s;
    s.mean = post.mean;
    s.stddev = std::sqrt(std::max(post.variance, 0.0));
    return s;
  }
  return summarize_weighted(
      bn::likelihood_weighted_posterior(net, node, evidence, rng,
                                        {.samples = samples}));
}

}  // namespace

DCompResult dcomp_continuous(const bn::BayesianNetwork& net,
                             std::size_t target,
                             const bn::ContinuousEvidence& observed_means,
                             Rng& rng, std::size_t samples) {
  KERTBN_EXPECTS(!observed_means.contains(target));
  DCompResult out;
  out.prior = continuous_marginal(net, target, rng, samples);
  out.posterior =
      continuous_posterior(net, target, observed_means, rng, samples);
  return out;
}

DCompResult dcomp_discrete(const bn::BayesianNetwork& net, std::size_t target,
                           const bn::DiscreteEvidence& observed_states,
                           const DatasetDiscretizer* discretizer,
                           std::size_t target_column) {
  KERTBN_EXPECTS(!observed_states.contains(target));
  const bn::VariableElimination ve(net);
  const ColumnDiscretizer* column =
      discretizer ? &discretizer->column(target_column) : nullptr;
  DCompResult out;
  out.prior = summarize_discrete_posterior(ve.posterior(target, {}), column);
  out.posterior =
      summarize_discrete_posterior(ve.posterior(target, observed_states), column);
  return out;
}

PAccelResult paccel_continuous(const bn::BayesianNetwork& net,
                               std::size_t service, double accelerated_value,
                               Rng& rng, std::size_t samples) {
  const std::size_t d_node = net.size() - 1;
  KERTBN_EXPECTS(service != d_node);
  PAccelResult out;
  out.prior_response = continuous_marginal(net, d_node, rng, samples);
  out.projected_response = continuous_posterior(
      net, d_node, {{service, accelerated_value}}, rng, samples);
  return out;
}

PAccelResult paccel_continuous_do(const bn::BayesianNetwork& net,
                                  std::size_t service,
                                  double accelerated_value, Rng& rng,
                                  std::size_t samples) {
  const std::size_t d_node = net.size() - 1;
  KERTBN_EXPECTS(service != d_node);
  PAccelResult out;
  out.prior_response = continuous_marginal(net, d_node, rng, samples);
  const bn::BayesianNetwork mutilated =
      bn::do_intervention(net, service, accelerated_value);
  out.projected_response =
      continuous_marginal(mutilated, d_node, rng, samples);
  return out;
}

PAccelResult paccel_continuous_mechanism(const bn::BayesianNetwork& net,
                                         std::size_t service, double factor,
                                         Rng& rng, std::size_t samples) {
  const std::size_t d_node = net.size() - 1;
  KERTBN_EXPECTS(service != d_node);
  KERTBN_EXPECTS(factor > 0.0);
  KERTBN_EXPECTS(net.cpd(service).kind() == bn::CpdKind::kLinearGaussian);

  PAccelResult out;
  out.prior_response = continuous_marginal(net, d_node, rng, samples);

  bn::BayesianNetwork changed = net;
  const auto& lg =
      static_cast<const bn::LinearGaussianCpd&>(net.cpd(service));
  changed.set_cpd(service,
                  std::make_unique<bn::LinearGaussianCpd>(
                      lg.intercept() * factor, lg.weights(),
                      std::max(lg.sigma() * factor, 1e-9)));
  out.projected_response =
      continuous_marginal(changed, d_node, rng, samples);
  return out;
}

PAccelResult paccel_discrete(const bn::BayesianNetwork& net,
                             std::size_t service,
                             std::size_t accelerated_state,
                             const DatasetDiscretizer* discretizer) {
  const std::size_t d_node = net.size() - 1;
  KERTBN_EXPECTS(service != d_node);
  const bn::VariableElimination ve(net);
  const ColumnDiscretizer* column =
      discretizer ? &discretizer->column(d_node) : nullptr;
  PAccelResult out;
  out.prior_response = summarize_discrete_posterior(ve.posterior(d_node, {}), column);
  out.projected_response = summarize_discrete_posterior(
      ve.posterior(d_node, {{service, accelerated_state}}), column);
  return out;
}

double relative_violation_error(double p_bn, double p_real) {
  KERTBN_EXPECTS(p_real > 0.0);
  return std::abs(p_bn - p_real) / p_real;
}

}  // namespace kertbn::core
