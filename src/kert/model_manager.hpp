#pragma once
/// \file model_manager.hpp
/// The periodic model (re)construction scheme of Section 2: every
/// T_CON = α_model · T_DATA the current sliding window W = K · T_CON is
/// turned into a fresh KERT-BN, discarding the previous model entirely so
/// obsolete dynamics cannot linger ("the disperse of old data is often not
/// possible ... making a scheme purely based on reconstruction more
/// appropriate").

#include <atomic>
#include <memory>
#include <optional>
#include <string>

#include "kert/kert_builder.hpp"
#include "kert/query_engine.hpp"
#include "kert/reconstruction_executor.hpp"
#include "kert/window_stats.hpp"
#include "sosim/monitoring.hpp"

namespace kertbn::ov {
class PressureGovernor;
}  // namespace kertbn::ov

namespace kertbn::core {

/// Serving status of the managed model — the health signal an autonomic
/// controller watches. The state machine:
///
///   kNone ──first successful build──▶ kFresh
///   kFresh ─deadline with no new data─▶ kStale ─new data builds─▶ kFresh
///   kFresh/kStale ─failed rebuild attempt─▶ kFallback (last-known-good
///     keeps serving) ─successful rebuild─▶ kFresh
///   kNone ─failed attempt with nothing to fall back to─▶ kDegraded
enum class ModelHealth {
  kNone = 0,      ///< No model has been built yet.
  kFresh = 1,     ///< Serving a model built from current window data.
  kStale = 2,     ///< Deadline passed without new data; prior model serves.
  kFallback = 3,  ///< Last rebuild attempt failed; last-known-good serves.
  kDegraded = 4,  ///< Rebuild failed and there is no model to fall back to.
};

const char* to_string(ModelHealth health);

/// One health-state change, in order. With a fixed fault schedule this
/// history is deterministic — the reproducibility tests replay it.
struct HealthTransition {
  double at = 0.0;  ///< Simulated time of the change.
  ModelHealth from = ModelHealth::kNone;
  ModelHealth to = ModelHealth::kNone;
  std::string reason;
};

/// One completed reconstruction.
struct Reconstruction {
  double at = 0.0;  ///< Simulated time the model was (re)built.
  std::size_t version = 0;
  std::size_t window_rows = 0;
  /// Raw rows scanned for this rebuild: the whole window on a full
  /// recount, only the fresh rows on an incremental hit.
  std::size_t rows_touched = 0;
  /// Built from cached segment partials instead of a full recount.
  bool incremental = false;
  /// Discrete mode: the discretizer's bin edges were (re)fit, invalidating
  /// cached count partials.
  bool discretizer_refit = false;
  KertConstructionReport report;
};

/// What the durability layer persists of a ModelManager: enough to resume
/// the reconstruction schedule and keep serving the last-known-good model
/// after a process restart. The model travels as serialized text (the
/// kert/serialize format) so a checkpoint file stays self-contained.
struct ManagerCheckpoint {
  double next_due = 0.0;
  std::size_t version = 0;
  /// Serialized last-known-good model; empty when none had been built.
  std::string model_text;
};

/// Drives periodic KERT-BN reconstruction against a stream of monitoring
/// windows.
class ModelManager {
 public:
  struct Config {
    sim::ModelSchedule schedule;
    LearningMode learning = LearningMode::kCentralized;
    /// 0 = continuous model; >= 2 = discrete model with that many bins.
    std::size_t bins = 0;
    /// Continuous-mode leak noise; <= 0 auto-calibrates from the window.
    double leak_sigma = 0.0;
    double leak_l = 0.02;      ///< Discrete-mode leak probability.
    bn::ParameterLearnOptions learn;
    /// Execution policy for per-node fits; non-owning, nullptr = serial.
    const ReconstructionExecutor* executor = nullptr;
    /// Maintain windowed sufficient statistics (fed via observe_row) and
    /// reconstruct from K cached segment partials plus the fresh segment
    /// when they provably cover the window; falls back to a full recount
    /// otherwise (and, in discrete mode, whenever the bin edges shift).
    bool incremental = false;
    /// Discrete incremental mode: reuse the previous discretizer while the
    /// retained data stays inside its fitted range stretched by this
    /// fraction of the per-column span; refit — and recount — otherwise.
    double discretizer_range_tolerance = 0.05;
    /// Guard the scheduled rebuild path (maybe_reconstruct): validate the
    /// window before fitting and the model after, and on failure keep the
    /// last-known-good model serving instead of aborting. Disable for the
    /// seed's fail-fast behavior.
    bool guard = true;
    /// Guarded rebuilds need at least this many window rows; shorter
    /// windows fail the attempt (variance and Gram moments are meaningless
    /// below two observations).
    std::size_t min_window_rows = 2;
    /// Publish every successfully (re)built model as an immutable
    /// ModelSnapshot in snapshot_slot() — the lock-free hand-off the
    /// QueryEngine serves from. Guarded rebuilds publish only after the
    /// built model validates, so readers never observe a bad model.
    bool publish_snapshots = false;
    /// Overload control (DESIGN §12): when set, every scheduled rebuild
    /// must win a reconstruction token first. Past `throttled` the
    /// governor refuses the class outright, so the deadline is *deferred*
    /// — the last-known-good model keeps serving with health kStale —
    /// instead of competing with ingest and queries for CPU. Non-owning;
    /// requires config.guard.
    ov::PressureGovernor* governor = nullptr;
    /// Cooperative cancellation for in-flight rebuilds: when non-null and
    /// the pointee becomes true mid-build, the parameter learn stops
    /// between node fits and the manager rolls the partial build back to
    /// the last-known-good model (health kStale, never corrupt). Pass
    /// ov::CancellationToken::flag(); requires config.guard.
    const std::atomic<bool>* cancel = nullptr;
  };

  ModelManager(wf::Workflow workflow, wf::ResourceSharing sharing,
               Config config);

  const Config& config() const { return config_; }

  /// Next simulated time a reconstruction is due.
  double next_due() const { return next_due_; }

  /// If \p now has reached the next construction deadline and the window is
  /// non-empty, rebuilds the model from scratch and returns the record.
  ///
  /// With config().guard (the default) this is the degraded-mode entry
  /// point: an unchanged window skips the rebuild and marks the model
  /// stale; a window that fails validation — or a fit that produces a
  /// non-finite model — counts a failure and leaves the last-known-good
  /// model serving (health kFallback, or kDegraded when no model exists
  /// yet). Returns nullopt in every non-rebuilding case.
  std::optional<Reconstruction> maybe_reconstruct(double now,
                                                  const bn::Dataset& window);

  /// Unconditionally rebuilds from \p window (stamped at \p now).
  Reconstruction reconstruct(double now, const bn::Dataset& window);

  /// Feeds one window row (services then D) into the incremental
  /// statistics layer — wire this to ManagementServer::set_row_observer.
  /// No-op unless config().incremental.
  void observe_row(std::span<const double> row);

  /// Replaces the workflow knowledge (same service count required) when
  /// choice probabilities or structure drift. Every cache derived from the
  /// old knowledge is invalidated — the deterministic response CPT, the
  /// incremental residual statistics (their residual fn captured the old
  /// f(X)), and the unchanged-window memory — so the next deadline rebuilds
  /// with the new knowledge even if the data window has not changed.
  void update_workflow(wf::Workflow workflow);

  const wf::Workflow& workflow() const { return workflow_; }

  /// The incremental statistics layer (empty unless config().incremental
  /// and at least one row was observed or a reconstruction reseeded it).
  const std::optional<WindowStats>& window_stats() const { return stats_; }

  bool has_model() const { return model_.has_value(); }
  const bn::BayesianNetwork& model() const;
  /// Discretizer used by the current discrete model (empty in continuous
  /// mode).
  const std::optional<DatasetDiscretizer>& discretizer() const {
    return discretizer_;
  }
  std::size_t version() const { return version_; }
  const std::vector<Reconstruction>& history() const { return history_; }

  /// Snapshot exchange for concurrent query serving (populated only with
  /// config().publish_snapshots). Readers acquire() while reconstructions
  /// publish; neither side blocks.
  const SnapshotSlot& snapshot_slot() const { return *snapshot_slot_; }

  /// Current serving status (see ModelHealth).
  ModelHealth health() const { return health_; }
  /// Every health-state change so far, in order.
  const std::vector<HealthTransition>& health_history() const {
    return health_history_;
  }
  /// Guarded rebuild attempts that failed (window rejected or model
  /// invalid); each left the previous model serving.
  std::size_t failed_reconstructions() const {
    return failed_reconstructions_;
  }
  /// Deadlines skipped because the window held no new data.
  std::size_t stale_skips() const { return stale_skips_; }
  /// Deadlines deferred because the governor refused a reconstruction
  /// token (overload); the last-known-good model kept serving, stale.
  std::size_t deferred_reconstructions() const {
    return deferred_reconstructions_;
  }
  /// In-flight rebuilds aborted by the cancellation flag and rolled back
  /// to the last-known-good model.
  std::size_t aborted_reconstructions() const {
    return aborted_reconstructions_;
  }
  /// Reason of the most recent failed attempt ("" when none failed yet).
  const std::string& last_failure_reason() const {
    return last_failure_reason_;
  }

  /// Advisory from the model-quality layer (DESIGN §11): confirmed drift
  /// between the served model's predictions and live measurements. Marks a
  /// fresh model stale (its predictions no longer describe the present)
  /// and forgets the unchanged-window memory, so the next deadline
  /// rebuilds even when the window content is unchanged. Advisory only:
  /// no rebuild happens here — the reconstruction schedule stays in
  /// charge.
  void note_drift(double now, const std::string& reason);
  /// Confirmed-drift advisories received so far.
  std::size_t drift_notices() const { return drift_notices_; }
  /// Reason of the most recent drift advisory ("" when none arrived yet).
  const std::string& last_drift_reason() const { return last_drift_reason_; }

  /// Serializes the current model (continuous or discrete flavor) in the
  /// kert/serialize text format; "" when no model has been built yet.
  std::string export_model_text() const;

  /// Schedule + version + serialized model, for the durability layer.
  ManagerCheckpoint export_checkpoint() const;

  /// Restores schedule, version, and — when the checkpoint carries one —
  /// the last-known-good model from \p ckpt. The restored model serves
  /// with health kStale (it describes the pre-crash past, not the present)
  /// until the next successful rebuild. A corrupt or incompatible
  /// model_text is rejected by value: schedule and version are still
  /// restored, the model is not, and the method returns false — recovery
  /// must degrade, never abort.
  bool restore_from_checkpoint(const ManagerCheckpoint& ckpt, double now);

 private:
  /// Fresh WindowStats sized from the schedule (residual fn attached in
  /// continuous mode for leak calibration).
  WindowStats make_stats() const;
  /// Discrete mode: true when the retained data strays outside the current
  /// discretizer's fitted range (stretched by the configured tolerance).
  bool range_exceeded() const;

  Reconstruction reconstruct_full(const bn::Dataset& window,
                                  ThreadPool* pool);
  Reconstruction reconstruct_incremental(const bn::Dataset& window,
                                         ThreadPool* pool);

  /// Guarded rebuild: pre-validates the window, stashes the last-known-good
  /// model, rebuilds, post-validates, and restores on failure.
  std::optional<Reconstruction> try_reconstruct(double now,
                                                const bn::Dataset& window);
  /// Reason the window is unusable for a rebuild, or nullptr when fine.
  const char* validate_window(const bn::Dataset& window) const;
  /// True when the freshly built model yields finite output on the last
  /// window row (non-finite CPD parameters surface here).
  bool model_output_finite(const bn::Dataset& window) const;
  void set_health(double now, ModelHealth to, const char* reason);
  void note_failure(double now, const char* reason);
  /// Publishes the current model as a snapshot (no-op unless configured).
  void publish_current(double now);
  /// Full-content snapshot/compare of the last successfully built window —
  /// the staleness signal for unchanged-window deadlines.
  void remember_window(const bn::Dataset& window);
  bool window_unchanged(const bn::Dataset& window) const;

  wf::Workflow workflow_;
  wf::ResourceSharing sharing_;
  Config config_;
  double next_due_;
  std::size_t version_ = 0;
  std::optional<bn::BayesianNetwork> model_;
  std::optional<DatasetDiscretizer> discretizer_;
  std::vector<Reconstruction> history_;
  // Incremental-mode state.
  std::optional<WindowStats> stats_;
  std::size_t rows_since_reconstruct_ = 0;
  std::size_t discretizer_version_ = 0;
  /// Deterministic response CPT cached per discretizer version (rebuilding
  /// it costs bins^n integrations — the dominant discrete-mode cost).
  std::optional<bn::TabularCpd> d_cpt_cache_;
  // Health / guard state.
  ModelHealth health_ = ModelHealth::kNone;
  std::vector<HealthTransition> health_history_;
  std::size_t failed_reconstructions_ = 0;
  std::size_t stale_skips_ = 0;
  std::size_t deferred_reconstructions_ = 0;
  std::size_t aborted_reconstructions_ = 0;
  std::string last_failure_reason_;
  std::size_t drift_notices_ = 0;
  std::string last_drift_reason_;
  double last_missed_due_ = -1.0;  ///< Deadline already counted as missed.
  std::size_t last_build_rows_ = 0;
  std::vector<double> last_build_window_;  ///< Flattened row-major copy.
  // Snapshot publication state (heap-held: the slot's atomics pin its
  // address while keeping the manager movable).
  std::unique_ptr<SnapshotSlot> snapshot_slot_ =
      std::make_unique<SnapshotSlot>();
  /// Guarded rebuilds suspend the in-reconstruct publication until the
  /// built model passes validation.
  bool publish_suspended_ = false;
};

}  // namespace kertbn::core
