#pragma once
/// \file model_manager.hpp
/// The periodic model (re)construction scheme of Section 2: every
/// T_CON = α_model · T_DATA the current sliding window W = K · T_CON is
/// turned into a fresh KERT-BN, discarding the previous model entirely so
/// obsolete dynamics cannot linger ("the disperse of old data is often not
/// possible ... making a scheme purely based on reconstruction more
/// appropriate").

#include <optional>

#include "kert/kert_builder.hpp"
#include "kert/reconstruction_executor.hpp"
#include "kert/window_stats.hpp"
#include "sosim/monitoring.hpp"

namespace kertbn::core {

/// One completed reconstruction.
struct Reconstruction {
  double at = 0.0;  ///< Simulated time the model was (re)built.
  std::size_t version = 0;
  std::size_t window_rows = 0;
  /// Raw rows scanned for this rebuild: the whole window on a full
  /// recount, only the fresh rows on an incremental hit.
  std::size_t rows_touched = 0;
  /// Built from cached segment partials instead of a full recount.
  bool incremental = false;
  /// Discrete mode: the discretizer's bin edges were (re)fit, invalidating
  /// cached count partials.
  bool discretizer_refit = false;
  KertConstructionReport report;
};

/// Drives periodic KERT-BN reconstruction against a stream of monitoring
/// windows.
class ModelManager {
 public:
  struct Config {
    sim::ModelSchedule schedule;
    LearningMode learning = LearningMode::kCentralized;
    /// 0 = continuous model; >= 2 = discrete model with that many bins.
    std::size_t bins = 0;
    /// Continuous-mode leak noise; <= 0 auto-calibrates from the window.
    double leak_sigma = 0.0;
    double leak_l = 0.02;      ///< Discrete-mode leak probability.
    bn::ParameterLearnOptions learn;
    /// Execution policy for per-node fits; non-owning, nullptr = serial.
    const ReconstructionExecutor* executor = nullptr;
    /// Maintain windowed sufficient statistics (fed via observe_row) and
    /// reconstruct from K cached segment partials plus the fresh segment
    /// when they provably cover the window; falls back to a full recount
    /// otherwise (and, in discrete mode, whenever the bin edges shift).
    bool incremental = false;
    /// Discrete incremental mode: reuse the previous discretizer while the
    /// retained data stays inside its fitted range stretched by this
    /// fraction of the per-column span; refit — and recount — otherwise.
    double discretizer_range_tolerance = 0.05;
  };

  ModelManager(wf::Workflow workflow, wf::ResourceSharing sharing,
               Config config);

  const Config& config() const { return config_; }

  /// Next simulated time a reconstruction is due.
  double next_due() const { return next_due_; }

  /// If \p now has reached the next construction deadline and the window is
  /// non-empty, rebuilds the model from scratch and returns the record.
  std::optional<Reconstruction> maybe_reconstruct(double now,
                                                  const bn::Dataset& window);

  /// Unconditionally rebuilds from \p window (stamped at \p now).
  Reconstruction reconstruct(double now, const bn::Dataset& window);

  /// Feeds one window row (services then D) into the incremental
  /// statistics layer — wire this to ManagementServer::set_row_observer.
  /// No-op unless config().incremental.
  void observe_row(std::span<const double> row);

  /// The incremental statistics layer (empty unless config().incremental
  /// and at least one row was observed or a reconstruction reseeded it).
  const std::optional<WindowStats>& window_stats() const { return stats_; }

  bool has_model() const { return model_.has_value(); }
  const bn::BayesianNetwork& model() const;
  /// Discretizer used by the current discrete model (empty in continuous
  /// mode).
  const std::optional<DatasetDiscretizer>& discretizer() const {
    return discretizer_;
  }
  std::size_t version() const { return version_; }
  const std::vector<Reconstruction>& history() const { return history_; }

 private:
  /// Fresh WindowStats sized from the schedule (residual fn attached in
  /// continuous mode for leak calibration).
  WindowStats make_stats() const;
  /// Discrete mode: true when the retained data strays outside the current
  /// discretizer's fitted range (stretched by the configured tolerance).
  bool range_exceeded() const;

  Reconstruction reconstruct_full(const bn::Dataset& window,
                                  ThreadPool* pool);
  Reconstruction reconstruct_incremental(const bn::Dataset& window,
                                         ThreadPool* pool);

  wf::Workflow workflow_;
  wf::ResourceSharing sharing_;
  Config config_;
  double next_due_;
  std::size_t version_ = 0;
  std::optional<bn::BayesianNetwork> model_;
  std::optional<DatasetDiscretizer> discretizer_;
  std::vector<Reconstruction> history_;
  // Incremental-mode state.
  std::optional<WindowStats> stats_;
  std::size_t rows_since_reconstruct_ = 0;
  std::size_t discretizer_version_ = 0;
  /// Deterministic response CPT cached per discretizer version (rebuilding
  /// it costs bins^n integrations — the dominant discrete-mode cost).
  std::optional<bn::TabularCpd> d_cpt_cache_;
};

}  // namespace kertbn::core
