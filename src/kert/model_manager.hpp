#pragma once
/// \file model_manager.hpp
/// The periodic model (re)construction scheme of Section 2: every
/// T_CON = α_model · T_DATA the current sliding window W = K · T_CON is
/// turned into a fresh KERT-BN, discarding the previous model entirely so
/// obsolete dynamics cannot linger ("the disperse of old data is often not
/// possible ... making a scheme purely based on reconstruction more
/// appropriate").

#include <optional>

#include "kert/kert_builder.hpp"
#include "sosim/monitoring.hpp"

namespace kertbn::core {

/// One completed reconstruction.
struct Reconstruction {
  double at = 0.0;  ///< Simulated time the model was (re)built.
  std::size_t version = 0;
  std::size_t window_rows = 0;
  KertConstructionReport report;
};

/// Drives periodic KERT-BN reconstruction against a stream of monitoring
/// windows.
class ModelManager {
 public:
  struct Config {
    sim::ModelSchedule schedule;
    LearningMode learning = LearningMode::kCentralized;
    /// 0 = continuous model; >= 2 = discrete model with that many bins.
    std::size_t bins = 0;
    /// Continuous-mode leak noise; <= 0 auto-calibrates from the window.
    double leak_sigma = 0.0;
    double leak_l = 0.02;      ///< Discrete-mode leak probability.
    bn::ParameterLearnOptions learn;
  };

  ModelManager(wf::Workflow workflow, wf::ResourceSharing sharing,
               Config config);

  const Config& config() const { return config_; }

  /// Next simulated time a reconstruction is due.
  double next_due() const { return next_due_; }

  /// If \p now has reached the next construction deadline and the window is
  /// non-empty, rebuilds the model from scratch and returns the record.
  std::optional<Reconstruction> maybe_reconstruct(double now,
                                                  const bn::Dataset& window);

  /// Unconditionally rebuilds from \p window (stamped at \p now).
  Reconstruction reconstruct(double now, const bn::Dataset& window);

  bool has_model() const { return model_.has_value(); }
  const bn::BayesianNetwork& model() const;
  /// Discretizer used by the current discrete model (empty in continuous
  /// mode).
  const std::optional<DatasetDiscretizer>& discretizer() const {
    return discretizer_;
  }
  std::size_t version() const { return version_; }
  const std::vector<Reconstruction>& history() const { return history_; }

 private:
  wf::Workflow workflow_;
  wf::ResourceSharing sharing_;
  Config config_;
  double next_due_;
  std::size_t version_ = 0;
  std::optional<bn::BayesianNetwork> model_;
  std::optional<DatasetDiscretizer> discretizer_;
  std::vector<Reconstruction> history_;
};

}  // namespace kertbn::core
