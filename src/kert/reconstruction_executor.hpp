#pragma once
/// \file reconstruction_executor.hpp
/// Execution policy for periodic model reconstruction. The paper's Figure 5
/// argument — "all per-node computations run concurrently" — is a property
/// of the *learning decomposition*: every node's CPD fit depends only on its
/// own and its parents' columns. The executor turns that observation into
/// real wall-clock speedup on a single multi-core management server by
/// scheduling per-node fits (and K2 restarts for the NRT baseline) onto a
/// shared thread pool, while keeping results bit-identical to the serial
/// path (fits are staged, installation is serial).
///
/// One executor is typically created per management server and threaded
/// through ModelManager / construct_kert_* / construct_nrt; kSerial gives
/// the seed's single-threaded behavior for baselines and benchmarks.

#include <memory>

#include "bn/learning.hpp"
#include "common/thread_pool.hpp"

namespace kertbn::core {

/// Owns the (optional) worker pool reconstruction work is scheduled on.
class ReconstructionExecutor {
 public:
  enum class Mode {
    kSerial,    ///< Everything on the calling thread (seed behavior).
    kParallel,  ///< Per-node fits / K2 restarts run on a thread pool.
  };

  /// \p threads is the pool size in kParallel mode (0 = hardware
  /// concurrency); ignored in kSerial mode.
  explicit ReconstructionExecutor(Mode mode = Mode::kParallel,
                                  std::size_t threads = 0);

  Mode mode() const { return mode_; }
  bool parallel() const { return mode_ == Mode::kParallel; }
  /// Worker count (0 in serial mode).
  std::size_t threads() const { return pool_ ? pool_->size() : 0; }

  /// The pool per-node work should be submitted to — nullptr in serial
  /// mode, which every consumer treats as "run inline".
  ThreadPool* pool() const { return pool_.get(); }

  /// Installs a cooperative-cancellation flag (nullptr to clear). Every
  /// learn() run forwards it into bn::ParameterLearnOptions::cancel, so a
  /// governor can abort an in-flight rebuild between node fits. Callers
  /// pass ov::CancellationToken::flag(); lifetime must outlive the runs.
  void set_cancellation(const std::atomic<bool>* cancel) {
    cancel_ = cancel;
  }
  const std::atomic<bool>* cancellation() const { return cancel_; }

  /// Convenience: whole-network parameter learning under this policy.
  bn::ParameterLearnReport learn(bn::BayesianNetwork& net,
                                 const bn::Dataset& data,
                                 const bn::ParameterLearnOptions& opts = {}) const;

 private:
  Mode mode_;
  std::unique_ptr<ThreadPool> pool_;
  const std::atomic<bool>* cancel_ = nullptr;
};

}  // namespace kertbn::core
