#pragma once
/// \file drift.hpp
/// Drift detection for adaptive reconstruction. The paper's scheme rebuilds
/// on a fixed grid T_CON = α·T_DATA; its K metric is chosen from how often
/// "radical changes (e.g. resource allocation, failure recovery actions)"
/// happen. This extension closes that loop from the data side: a
/// Page-Hinkley change detector watches the current model's per-interval
/// score (e.g. mean response-time residual or per-row log-likelihood) and
/// raises an alarm when the environment has shifted, letting a ModelManager
/// reconstruct *early* instead of waiting out the grid.

#include <cstddef>

namespace kertbn::core {

/// Page-Hinkley test for a downward shift in a stream's mean (model score
/// streams drop when the model goes stale).
class DriftDetector {
 public:
  struct Options {
    /// Minimum magnitude of change considered real (score units).
    double delta = 0.05;
    /// Alarm threshold on the accumulated deviation statistic.
    double lambda = 1.0;
  };

  DriftDetector() = default;
  explicit DriftDetector(Options opts) : opts_(opts) {}

  /// Feeds one observation; returns true when the alarm fires. The
  /// detector keeps alarming until reset().
  bool add(double score);

  bool drifted() const { return drifted_; }
  std::size_t observations() const { return n_; }
  /// Current running mean of the stream.
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Current Page-Hinkley statistic (max cumulative downward deviation).
  double statistic() const { return max_cumulative_ - cumulative_; }

  /// Clears all state (call after reconstructing the model).
  void reset();

 private:
  Options opts_{};
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double cumulative_ = 0.0;
  double max_cumulative_ = 0.0;
  bool drifted_ = false;
};

}  // namespace kertbn::core
