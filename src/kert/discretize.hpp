#pragma once
/// \file discretize.hpp
/// Quantile discretization of elapsed-time data. Section 5 builds *discrete*
/// KERT-BNs ("there are comparatively many data points to work with"); each
/// continuous column is mapped to equal-frequency bins, and bin centers map
/// states back to seconds for reporting and for evaluating the deterministic
/// workflow function on binned parents.

#include <vector>

#include "bn/dataset.hpp"

namespace kertbn::core {

/// Per-column quantile binning.
class ColumnDiscretizer {
 public:
  /// Fits \p bins equal-frequency bins to the values (bins >= 2). Duplicate
  /// edges arising from ties are nudged apart.
  ColumnDiscretizer(std::span<const double> values, std::size_t bins);

  /// Rebuilds from persisted parts: \p edges ascending interior cut points
  /// (bins-1 of them), \p centers one per bin, plus the fitted data range.
  static ColumnDiscretizer from_parts(std::vector<double> edges,
                                      std::vector<double> centers,
                                      double data_min, double data_max);

  std::size_t bins() const { return centers_.size(); }
  /// State index of a raw value.
  std::size_t bin_of(double value) const;
  /// Representative (median-ish) value of a state.
  double center_of(std::size_t state) const;
  /// Interior cut points (bins-1 of them, ascending).
  const std::vector<double>& edges() const { return edges_; }
  /// Smallest / largest value seen when fitting (close the edge bins).
  double data_min() const { return data_min_; }
  double data_max() const { return data_max_; }
  /// Interval [lo, hi) covered by a state, using data_min/max for the
  /// open-ended edge bins.
  std::pair<double, double> interval_of(std::size_t state) const;

  /// P(value > threshold) for a state distribution over this column's
  /// bins, spreading each bin's mass uniformly across its interval —
  /// far smoother than counting whole bin centers.
  double exceedance(std::span<const double> state_probs,
                    double threshold) const;

 private:
  ColumnDiscretizer() = default;

  std::vector<double> edges_;    // interior edges, size bins-1
  std::vector<double> centers_;  // size bins
  double data_min_ = 0.0;
  double data_max_ = 0.0;
};

/// Whole-dataset discretizer: one ColumnDiscretizer per column.
class DatasetDiscretizer {
 public:
  /// Fits \p bins bins to every column of \p data.
  DatasetDiscretizer(const bn::Dataset& data, std::size_t bins);

  /// Rebuilds from persisted per-column discretizers (all must share the
  /// same bin count).
  static DatasetDiscretizer from_columns(
      std::vector<ColumnDiscretizer> columns);

  std::size_t bins() const { return bins_; }
  std::size_t columns() const { return columns_.size(); }
  const ColumnDiscretizer& column(std::size_t c) const;

  /// Maps a continuous dataset (same schema) to state indices.
  bn::Dataset discretize(const bn::Dataset& data) const;

 private:
  explicit DatasetDiscretizer(std::vector<ColumnDiscretizer> columns);

  std::size_t bins_;
  std::vector<ColumnDiscretizer> columns_;
};

}  // namespace kertbn::core
