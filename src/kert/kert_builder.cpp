#include "kert/kert_builder.hpp"

#include <algorithm>
#include <cmath>

#include "bn/deterministic_cpd.hpp"
#include "common/contract.hpp"
#include "common/stopwatch.hpp"
#include "obs/span.hpp"

namespace kertbn::core {

graph::Dag build_kert_structure(const wf::Workflow& workflow,
                                const wf::ResourceSharing& sharing,
                                const KertStructureOptions& opts) {
  const std::size_t n = workflow.service_count();
  graph::Dag dag(n + 1);
  for (std::size_t s = 0; s < n; ++s) {
    dag.set_label(s, workflow.service_names()[s]);
  }
  dag.set_label(n, "D");

  // Workflow knowledge: immediate-upstream edges.
  for (const auto& [a, b] : workflow.upstream_edges()) {
    dag.add_edge(a, b);
  }
  // Resource-sharing knowledge: co-hosted services depend on each other.
  // Oriented low->high index; add_edge refuses cycles, so combinations with
  // workflow edges stay consistent ("as few loops as possible").
  if (opts.use_resource_sharing) {
    for (const auto& [a, b] : sharing.sharing_pairs()) {
      if (!dag.has_edge(a, b) && !dag.has_edge(b, a)) {
        dag.add_edge(a, b);
      }
    }
  }
  // D depends on every service elapsed time.
  for (std::size_t s = 0; s < n; ++s) {
    const bool ok = dag.add_edge(s, n);
    KERTBN_ASSERT(ok);
  }
  return dag;
}

bn::DeterministicFn make_response_fn(const wf::Workflow& workflow) {
  const wf::Expr::Ptr expr = workflow.response_time_expr();
  const std::size_t n = workflow.service_count();

  // D's parents are the service nodes 0..n-1 in node order, so the parent
  // span is indexed exactly like the expression's service leaves.
  bn::DeterministicFn fn;
  fn.arity = n;
  fn.expression = expr->to_string(workflow.service_names());
  fn.fn = [expr](std::span<const double> parents) {
    return expr->evaluate(parents);
  };
  return fn;
}

bn::TabularCpd make_deterministic_cpt(const wf::Workflow& workflow,
                                      const DatasetDiscretizer& discretizer,
                                      double leak_l,
                                      std::size_t samples_per_config) {
  KERTBN_EXPECTS(leak_l >= 0.0 && leak_l < 1.0);
  KERTBN_EXPECTS(samples_per_config >= 1);
  const std::size_t n = workflow.service_count();
  KERTBN_EXPECTS(discretizer.columns() == n + 1);
  const std::size_t bins = discretizer.bins();
  const wf::Expr::Ptr expr = workflow.response_time_expr();

  std::size_t configs = 1;
  for (std::size_t i = 0; i < n; ++i) configs *= bins;

  std::vector<double> table(configs * bins, 0.0);
  std::vector<std::size_t> states(n, 0);
  std::vector<double> point(n, 0.0);
  const double off_mass = leak_l / static_cast<double>(bins);
  // Fixed seed: the CPT is a deterministic function of the knowledge
  // (workflow + bin geometry), reproducible across reconstructions.
  Rng rng(0x5EED5EED);

  for (std::size_t cfg = 0; cfg < configs; ++cfg) {
    double* row = table.data() + cfg * bins;
    const double hit_mass =
        (1.0 - leak_l) / static_cast<double>(samples_per_config);
    for (std::size_t k = 0; k < samples_per_config; ++k) {
      for (std::size_t i = 0; i < n; ++i) {
        if (samples_per_config == 1) {
          point[i] = discretizer.column(i).center_of(states[i]);
        } else {
          const auto [lo, hi] = discretizer.column(i).interval_of(states[i]);
          point[i] = rng.uniform(lo, std::max(hi, lo + 1e-12));
        }
      }
      row[discretizer.column(n).bin_of(expr->evaluate(point))] += hit_mass;
    }
    for (std::size_t s = 0; s < bins; ++s) row[s] += off_mass;
    // Advance mixed-radix parent counter (last parent fastest, matching
    // TabularCpd's config indexing).
    for (std::size_t i = n; i-- > 0;) {
      if (++states[i] < bins) break;
      states[i] = 0;
    }
  }
  return bn::TabularCpd(bins, std::vector<std::size_t>(n, bins),
                        std::move(table));
}

double calibrate_leak_sigma(const wf::Workflow& workflow,
                            const bn::Dataset& train, double min_sigma) {
  const std::size_t n = workflow.service_count();
  KERTBN_EXPECTS(train.cols() == n + 1);
  KERTBN_EXPECTS(train.rows() >= 1);
  const wf::Expr::Ptr expr = workflow.response_time_expr();
  // Residual moments of D - f(X) over the window.
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t r = 0; r < train.rows(); ++r) {
    const auto row = train.row(r);
    const double resid = row[n] - expr->evaluate(row.first(n));
    sum += resid;
    sum_sq += resid * resid;
  }
  return leak_sigma_from_residual_moments(sum, sum_sq, train.rows(),
                                          min_sigma);
}

double leak_sigma_from_residual_moments(double sum, double sum_sq,
                                        std::size_t rows, double min_sigma) {
  KERTBN_EXPECTS(rows >= 1);
  const double mean = sum / static_cast<double>(rows);
  const double var =
      std::max(sum_sq / static_cast<double>(rows) - mean * mean, 0.0);
  // The leak absorbs both spread and any systematic offset — a biased f
  // must not be scored as if it were exact.
  return std::max(std::sqrt(var + mean * mean), min_sigma);
}

namespace {

/// Shared skeleton assembly: nodes, knowledge edges, and the D CPD.
bn::BayesianNetwork assemble_skeleton(
    const wf::Workflow& workflow, const wf::ResourceSharing& sharing,
    const KertStructureOptions& opts, bool discrete, std::size_t bins,
    std::unique_ptr<bn::Cpd> d_cpd) {
  const std::size_t n = workflow.service_count();
  bn::BayesianNetwork net;
  for (std::size_t s = 0; s < n; ++s) {
    const auto& name = workflow.service_names()[s];
    net.add_node(discrete ? bn::Variable::discrete(name, bins)
                          : bn::Variable::continuous(name));
  }
  net.add_node(discrete ? bn::Variable::discrete("D", bins)
                        : bn::Variable::continuous("D"));

  const graph::Dag structure = build_kert_structure(workflow, sharing, opts);
  for (std::size_t v = 0; v < structure.size(); ++v) {
    for (std::size_t p : structure.parents(v)) {
      const bool ok = net.add_edge(p, v);
      KERTBN_ASSERT(ok);
    }
  }
  net.set_cpd(response_node(n), std::move(d_cpd));
  return net;
}

}  // namespace

bn::BayesianNetwork build_kert_skeleton_continuous(
    const wf::Workflow& workflow, const wf::ResourceSharing& sharing,
    double leak_sigma, const KertStructureOptions& opts) {
  auto d_cpd = std::make_unique<bn::DeterministicCpd>(
      make_response_fn(workflow), leak_sigma);
  return assemble_skeleton(workflow, sharing, opts, /*discrete=*/false, 0,
                           std::move(d_cpd));
}

bn::BayesianNetwork build_kert_skeleton_discrete(
    const wf::Workflow& workflow, const wf::ResourceSharing& sharing,
    const DatasetDiscretizer& discretizer, double leak_l,
    const KertStructureOptions& opts) {
  auto d_cpd = std::make_unique<bn::TabularCpd>(
      make_deterministic_cpt(workflow, discretizer, leak_l));
  return assemble_skeleton(workflow, sharing, opts, /*discrete=*/true,
                           discretizer.bins(), std::move(d_cpd));
}

namespace {

/// A cancelled learn legitimately leaves nodes unfitted; the caller
/// (ModelManager::try_reconstruct) discards the partial network instead of
/// publishing it. Completeness is only guaranteed for finished learns.
bool learn_cancelled(const bn::ParameterLearnOptions& learn) {
  return learn.cancel != nullptr &&
         learn.cancel->load(std::memory_order_relaxed);
}

KertResult finish_construction(bn::BayesianNetwork net,
                               double structure_seconds,
                               const bn::Dataset& train, LearningMode mode,
                               const bn::ParameterLearnOptions& learn,
                               ThreadPool* pool, Stopwatch& total) {
  KertResult result{std::move(net), {}};
  result.report.structure_seconds = structure_seconds;

  Stopwatch params;
  if (mode == LearningMode::kDecentralized) {
    const dec::DecentralizedReport rep =
        dec::learn_parameters_decentralized(result.net, train, learn, pool);
    result.report.per_node_seconds = rep.per_agent_seconds;
    result.report.decentralized_seconds = rep.decentralized_seconds;
    result.report.centralized_equivalent_seconds = rep.centralized_seconds;
  } else {
    // Centralized mode: one host does all fits — concurrently across nodes
    // when a pool is supplied (results are bit-identical either way).
    const bn::ParameterLearnReport rep =
        bn::learn_parameters(result.net, train, learn, pool);
    result.report.per_node_seconds = rep.per_node_seconds;
    result.report.decentralized_seconds = rep.max_node_seconds();
    result.report.centralized_equivalent_seconds = rep.sum_node_seconds();
  }
  result.report.parameter_seconds = params.seconds();
  result.report.total_seconds = total.seconds();
  KERTBN_ENSURES(learn_cancelled(learn) || result.net.is_complete());
  return result;
}

}  // namespace

KertResult construct_kert_continuous(const wf::Workflow& workflow,
                                     const wf::ResourceSharing& sharing,
                                     const bn::Dataset& train,
                                     LearningMode mode, double leak_sigma,
                                     const bn::ParameterLearnOptions& learn,
                                     ThreadPool* pool) {
  KERTBN_SPAN("kert.construct.continuous");
  Stopwatch total;
  Stopwatch structure;
  if (leak_sigma <= 0.0) {
    leak_sigma = calibrate_leak_sigma(workflow, train);
  }
  bn::BayesianNetwork net =
      build_kert_skeleton_continuous(workflow, sharing, leak_sigma);
  const double structure_seconds = structure.seconds();
  return finish_construction(std::move(net), structure_seconds, train, mode,
                             learn, pool, total);
}

namespace {

/// Leak calibration for an arbitrary metric expression: residual scale of
/// D - f(services) where services are the first \p n_services columns and
/// D is the last column.
double calibrate_leak_for_expr(const wf::Expr::Ptr& expr,
                               std::size_t n_services,
                               const bn::Dataset& train,
                               double min_sigma = 1e-6) {
  KERTBN_EXPECTS(train.rows() >= 1);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t r = 0; r < train.rows(); ++r) {
    const auto row = train.row(r);
    const double resid =
        row[train.cols() - 1] - expr->evaluate(row.first(n_services));
    sum += resid;
    sum_sq += resid * resid;
  }
  const double mean = sum / static_cast<double>(train.rows());
  const double var =
      std::max(sum_sq / static_cast<double>(train.rows()) - mean * mean, 0.0);
  return std::max(std::sqrt(var + mean * mean), min_sigma);
}

}  // namespace

KertResult construct_kert_for_metric(const wf::Workflow& workflow,
                                     const wf::ResourceSharing& sharing,
                                     const wf::Expr::Ptr& metric_expr,
                                     const bn::Dataset& train,
                                     LearningMode mode, double leak_sigma,
                                     const bn::ParameterLearnOptions& learn,
                                     ThreadPool* pool) {
  KERTBN_EXPECTS(metric_expr != nullptr);
  const std::size_t n = workflow.service_count();
  KERTBN_EXPECTS(train.cols() == n + 1);
  Stopwatch total;
  Stopwatch structure;
  if (leak_sigma <= 0.0) {
    leak_sigma = calibrate_leak_for_expr(metric_expr, n, train);
  }

  bn::BayesianNetwork net;
  for (std::size_t s = 0; s < n; ++s) {
    net.add_node(bn::Variable::continuous(workflow.service_names()[s]));
  }
  net.add_node(bn::Variable::continuous("D"));
  const graph::Dag dag = build_kert_structure(workflow, sharing);
  for (std::size_t v = 0; v < dag.size(); ++v) {
    for (std::size_t p : dag.parents(v)) {
      const bool ok = net.add_edge(p, v);
      KERTBN_ASSERT(ok);
    }
  }
  bn::DeterministicFn fn;
  fn.arity = n;
  fn.expression = metric_expr->to_string(workflow.service_names());
  fn.fn = [expr = metric_expr](std::span<const double> parents) {
    return expr->evaluate(parents);
  };
  net.set_cpd(response_node(n),
              std::make_unique<bn::DeterministicCpd>(std::move(fn),
                                                     leak_sigma));
  const double structure_seconds = structure.seconds();
  return finish_construction(std::move(net), structure_seconds, train, mode,
                             learn, pool, total);
}

KertResult construct_kert_with_resources(
    const wf::Workflow& workflow, const wf::ResourceSharing& sharing,
    const bn::Dataset& train, LearningMode mode, double leak_sigma,
    const bn::ParameterLearnOptions& learn, ThreadPool* pool) {
  const std::size_t n = workflow.service_count();
  const std::size_t m = sharing.groups.size();
  KERTBN_EXPECTS(train.cols() == n + m + 1);
  Stopwatch total;
  Stopwatch structure;

  const wf::Expr::Ptr expr = workflow.response_time_expr();
  if (leak_sigma <= 0.0) {
    leak_sigma = calibrate_leak_for_expr(expr, n, train);
  }

  bn::BayesianNetwork net;
  for (std::size_t s = 0; s < n; ++s) {
    net.add_node(bn::Variable::continuous(workflow.service_names()[s]));
  }
  for (const auto& group : sharing.groups) {
    net.add_node(bn::Variable::continuous(group.name));
  }
  const std::size_t d_node = net.add_node(bn::Variable::continuous("D"));

  // Workflow knowledge between services (resource correlation is carried
  // by the explicit resource nodes instead of X-X shortcut edges).
  for (const auto& [a, b] : workflow.upstream_edges()) {
    net.add_edge(a, b);
  }
  // Each group's services are the parents of its resource node (the
  // paper's formulation; observing the resource couples its services).
  for (std::size_t g = 0; g < m; ++g) {
    for (std::size_t s : sharing.groups[g].services) {
      KERTBN_EXPECTS(s < n);
      const bool ok = net.add_edge(s, n + g);
      KERTBN_ASSERT(ok);
    }
  }
  for (std::size_t s = 0; s < n; ++s) {
    const bool ok = net.add_edge(s, d_node);
    KERTBN_ASSERT(ok);
  }

  // D's parents are exactly the n service nodes (resource nodes have no
  // edge into D), so the deterministic function arity stays n.
  bn::DeterministicFn fn;
  fn.arity = n;
  fn.expression = expr->to_string(workflow.service_names());
  fn.fn = [expr](std::span<const double> parents) {
    return expr->evaluate(parents);
  };
  net.set_cpd(d_node, std::make_unique<bn::DeterministicCpd>(std::move(fn),
                                                             leak_sigma));
  const double structure_seconds = structure.seconds();
  return finish_construction(std::move(net), structure_seconds, train, mode,
                             learn, pool, total);
}

namespace {

/// One staged per-node fit from cached statistics.
struct StagedCpdFit {
  std::unique_ptr<bn::Cpd> cpd;
  double seconds = 0.0;
};

/// Stages per-node CPD fits (serially or on \p pool), installs them, and
/// fills the report's per-node timing fields the way bn::learn_parameters
/// does. \p fit_one must be safe to run concurrently against the const
/// network (it only reads structure and the cached statistics).
template <typename FitFn>
void install_staged_fits(bn::BayesianNetwork& net,
                         const std::vector<std::size_t>& nodes, FitFn fit_one,
                         ThreadPool* pool, KertConstructionReport& report) {
  report.per_node_seconds.assign(net.size(), 0.0);
  std::vector<StagedCpdFit> fits(nodes.size());
  if (pool == nullptr || nodes.size() < 2) {
    for (std::size_t i = 0; i < nodes.size(); ++i) fits[i] = fit_one(nodes[i]);
  } else {
    std::vector<std::future<StagedCpdFit>> futures;
    futures.reserve(nodes.size());
    for (std::size_t v : nodes) {
      futures.push_back(pool->submit([&fit_one, v] { return fit_one(v); }));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) fits[i] = futures[i].get();
  }
  double sum = 0.0;
  double max = 0.0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    report.per_node_seconds[nodes[i]] = fits[i].seconds;
    sum += fits[i].seconds;
    max = std::max(max, fits[i].seconds);
    net.set_cpd(nodes[i], std::move(fits[i].cpd));
  }
  report.decentralized_seconds = max;
  report.centralized_equivalent_seconds = sum;
}

}  // namespace

KertResult construct_kert_continuous_from_stats(
    const wf::Workflow& workflow, const wf::ResourceSharing& sharing,
    const la::Matrix& gram, std::size_t rows, double leak_sigma,
    const bn::ParameterLearnOptions& learn, ThreadPool* pool) {
  const std::size_t n = workflow.service_count();
  KERTBN_EXPECTS(rows >= 1);
  KERTBN_EXPECTS(gram.rows() == n + 2 && gram.cols() == n + 2);
  KERTBN_EXPECTS(leak_sigma > 0.0);
  KERTBN_SPAN("kert.construct.from_stats");
  Stopwatch total;
  Stopwatch structure;
  bn::BayesianNetwork net =
      build_kert_skeleton_continuous(workflow, sharing, leak_sigma);
  const double structure_seconds = structure.seconds();

  KertResult result{std::move(net), {}};
  result.report.structure_seconds = structure_seconds;
  Stopwatch params;
  std::vector<std::size_t> nodes;
  for (std::size_t v = 0; v < result.net.size(); ++v) {
    if (!result.net.has_cpd(v)) nodes.push_back(v);
  }
  const bn::BayesianNetwork& cnet = result.net;
  auto fit_one = [&cnet, &gram, rows, &learn](std::size_t v) {
    Stopwatch timer;
    const auto pars = cnet.dag().parents(v);
    const std::vector<std::size_t> parent_cols(pars.begin(), pars.end());
    auto cpd = std::make_unique<bn::LinearGaussianCpd>(
        bn::fit_linear_gaussian_from_moments(gram, rows, v, parent_cols,
                                             learn.min_sigma, learn.ridge));
    return StagedCpdFit{std::move(cpd), timer.seconds()};
  };
  install_staged_fits(result.net, nodes, fit_one, pool, result.report);
  result.report.parameter_seconds = params.seconds();
  result.report.total_seconds = total.seconds();
  KERTBN_ENSURES(learn_cancelled(learn) || result.net.is_complete());
  return result;
}

std::vector<CountLayout> kert_discrete_count_layouts(
    const wf::Workflow& workflow, const wf::ResourceSharing& sharing,
    std::size_t bins, const KertStructureOptions& opts) {
  KERTBN_EXPECTS(bins >= 2);
  const std::size_t n = workflow.service_count();
  const graph::Dag structure = build_kert_structure(workflow, sharing, opts);
  std::vector<CountLayout> layouts(n);
  for (std::size_t v = 0; v < n; ++v) {
    const auto pars = structure.parents(v);
    layouts[v].child_col = v;
    layouts[v].parent_cols.assign(pars.begin(), pars.end());
    layouts[v].child_card = bins;
    layouts[v].parent_cards.assign(pars.size(), bins);
  }
  return layouts;
}

KertResult construct_kert_discrete_from_counts(
    const wf::Workflow& workflow, const wf::ResourceSharing& sharing,
    const DatasetDiscretizer& discretizer,
    std::span<const std::vector<double>> node_counts, double leak_l,
    const bn::ParameterLearnOptions& learn, ThreadPool* pool,
    const bn::TabularCpd* cached_d_cpt) {
  const std::size_t n = workflow.service_count();
  KERTBN_EXPECTS(discretizer.columns() == n + 1);
  KERTBN_EXPECTS(node_counts.size() == n);
  const std::size_t bins = discretizer.bins();
  KERTBN_SPAN("kert.construct.from_counts");
  Stopwatch total;
  Stopwatch structure;
  auto d_cpd = cached_d_cpt
                   ? std::make_unique<bn::TabularCpd>(*cached_d_cpt)
                   : std::make_unique<bn::TabularCpd>(make_deterministic_cpt(
                         workflow, discretizer, leak_l));
  bn::BayesianNetwork net = assemble_skeleton(
      workflow, sharing, {}, /*discrete=*/true, bins, std::move(d_cpd));
  const double structure_seconds = structure.seconds();

  KertResult result{std::move(net), {}};
  result.report.structure_seconds = structure_seconds;
  Stopwatch params;
  std::vector<std::size_t> nodes;
  for (std::size_t v = 0; v < n; ++v) {
    if (!result.net.has_cpd(v)) nodes.push_back(v);
  }
  const bn::BayesianNetwork& cnet = result.net;
  auto fit_one = [&cnet, node_counts, bins, &learn](std::size_t v) {
    Stopwatch timer;
    const std::vector<std::size_t> parent_cards(cnet.dag().parents(v).size(),
                                                bins);
    auto cpd = std::make_unique<bn::TabularCpd>(bn::fit_tabular_cpd_from_counts(
        node_counts[v], bins, parent_cards, learn.dirichlet_alpha));
    return StagedCpdFit{std::move(cpd), timer.seconds()};
  };
  install_staged_fits(result.net, nodes, fit_one, pool, result.report);
  result.report.parameter_seconds = params.seconds();
  result.report.total_seconds = total.seconds();
  KERTBN_ENSURES(learn_cancelled(learn) || result.net.is_complete());
  return result;
}

KertResult construct_kert_discrete(const wf::Workflow& workflow,
                                   const wf::ResourceSharing& sharing,
                                   const DatasetDiscretizer& discretizer,
                                   const bn::Dataset& train,
                                   LearningMode mode, double leak_l,
                                   const bn::ParameterLearnOptions& learn,
                                   ThreadPool* pool) {
  KERTBN_SPAN("kert.construct.discrete");
  Stopwatch total;
  Stopwatch structure;
  bn::BayesianNetwork net =
      build_kert_skeleton_discrete(workflow, sharing, discretizer, leak_l);
  const double structure_seconds = structure.seconds();
  return finish_construction(std::move(net), structure_seconds, train, mode,
                             learn, pool, total);
}

}  // namespace kertbn::core
