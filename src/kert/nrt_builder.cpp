#include "kert/nrt_builder.hpp"

#include "common/contract.hpp"
#include "common/stopwatch.hpp"
#include "obs/span.hpp"

namespace kertbn::core {
namespace {

/// Materializes a structure-search result as an unparameterized network.
bn::BayesianNetwork network_from_structure(
    const bn::StructureResult& structure,
    std::span<const bn::Variable> vars) {
  bn::BayesianNetwork net;
  for (const auto& v : vars) net.add_node(v);
  for (std::size_t v = 0; v < structure.parents.size(); ++v) {
    for (std::size_t p : structure.parents[v]) {
      const bool ok = net.add_edge(p, v);
      KERTBN_ASSERT(ok);
    }
  }
  return net;
}

}  // namespace

NrtResult construct_nrt(const bn::Dataset& train,
                        std::span<const bn::Variable> vars, Rng& rng,
                        const NrtOptions& opts, ThreadPool* pool) {
  KERTBN_EXPECTS(train.cols() == vars.size());
  KERTBN_SPAN_VAR(span, "nrt.construct");
  span.tag("restarts", static_cast<std::uint64_t>(opts.restarts));
  span.tag("rows", static_cast<std::uint64_t>(train.rows()));
  Stopwatch total;
  NrtResult result;

  Stopwatch structure_timer;
  const bn::FamilyScoreFn score = bn::make_family_score(vars);
  const bn::StructureResult structure =
      bn::k2_random_restarts(train, vars, opts.restarts, rng, score,
                             opts.k2, pool);
  result.report.structure_seconds = structure_timer.seconds();
  result.report.structure_score = structure.score;

  result.net = network_from_structure(structure, vars);

  Stopwatch param_timer;
  bn::learn_parameters(result.net, train, opts.learn, pool);
  result.report.parameter_seconds = param_timer.seconds();
  result.report.total_seconds = total.seconds();
  KERTBN_ENSURES(result.net.is_complete());
  return result;
}

NrtResult construct_naive_bayes(const bn::Dataset& train,
                                std::span<const bn::Variable> vars,
                                std::size_t class_node,
                                const bn::ParameterLearnOptions& learn) {
  KERTBN_EXPECTS(class_node < vars.size());
  Stopwatch total;
  NrtResult result;
  for (const auto& v : vars) result.net.add_node(v);
  for (std::size_t v = 0; v < vars.size(); ++v) {
    if (v == class_node) continue;
    const bool ok = result.net.add_edge(class_node, v);
    KERTBN_ASSERT(ok);
  }
  Stopwatch param_timer;
  bn::learn_parameters(result.net, train, learn);
  result.report.parameter_seconds = param_timer.seconds();
  result.report.total_seconds = total.seconds();
  return result;
}

}  // namespace kertbn::core
