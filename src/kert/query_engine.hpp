#pragma once
/// \file query_engine.hpp
/// High-throughput query serving over published model snapshots.
///
/// The ROADMAP north star is an autonomic manager serving Section 5
/// queries (threshold violation ε, dComp posteriors, pAccel what-ifs) for
/// heavy traffic while ModelManager keeps rebuilding the model underneath.
/// Three pieces make that cheap and safe:
///
///   * ModelSnapshot — an immutable (network, discretizer, warm calibrated
///     junction tree) bundle. The tree is warmed at build time, so
///     no-evidence reads on it are mutation-free and sharable.
///   * SnapshotSlot — RCU-style publication: writers install an immutable
///     std::shared_ptr<const ModelSnapshot>, readers pick the newest one up
///     through a lock-free hazard-entry protocol. Readers never block; a
///     reader holds its snapshot alive for the duration of a batch
///     regardless of how many publications happen meanwhile.
///   * QueryEngine — answers batches of posterior / evidence-probability /
///     exceedance / what-if queries. Each pool worker gets its own copy of
///     the snapshot tree (calibration mutates per-worker state only) and
///     its own FactorWorkspace via that tree. Per query the engine routes
///     between the calibrated tree and pruned variable elimination
///     (relevant_subnetwork), whichever is cheaper.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "bn/factor_kernels.hpp"
#include "bn/junction_tree.hpp"
#include "bn/network.hpp"
#include "common/thread_pool.hpp"
#include "kert/applications.hpp"
#include "kert/discretize.hpp"

namespace kertbn::ov {
class PressureGovernor;
}  // namespace kertbn::ov

namespace kertbn::core {

/// Immutable serving bundle. `prior_tree` is present (and warm) only for
/// complete all-discrete tabular networks — the models the discrete query
/// path serves; continuous models publish without a tree.
struct ModelSnapshot {
  std::size_t version = 0;
  double built_at = 0.0;
  bn::BayesianNetwork net;  ///< Deep copy; the tree references this copy.
  std::optional<DatasetDiscretizer> discretizer;
  std::unique_ptr<const bn::JunctionTree> prior_tree;

  bool has_tree() const { return prior_tree != nullptr; }
};

/// Deep-copies \p net (and discretizer) into a snapshot; builds and warms
/// the junction tree when the network is complete, all-discrete, tabular.
std::shared_ptr<const ModelSnapshot> make_model_snapshot(
    std::size_t version, double built_at, const bn::BayesianNetwork& net,
    const std::optional<DatasetDiscretizer>& discretizer);

/// Lock-free single-slot snapshot exchange. Readers acquire() the newest
/// snapshot without ever blocking (a retry loop runs only when a
/// publication lands mid-read); publish() serializes publishers on a
/// mutex readers never touch. A reader's copy keeps its snapshot alive
/// however many publications happen meanwhile.
///
/// The implementation is a hazard-entry pool rather than
/// std::atomic<std::shared_ptr>: libstdc++'s lock-bit protocol inside the
/// latter is opaque to ThreadSanitizer (a minimal store/load pair already
/// reports a race), while every edge here is a plain std::atomic TSAN can
/// model. Protocol: readers pin an entry, then re-check it is still
/// current before copying its shared_ptr; publishers reuse only entries
/// that are neither current nor pinned. The seq_cst fences make a
/// reader's pin visible to any publisher whose entry-recycling check the
/// reader's re-check could otherwise miss.
class SnapshotSlot {
 public:
  SnapshotSlot() = default;
  SnapshotSlot(const SnapshotSlot&) = delete;
  SnapshotSlot& operator=(const SnapshotSlot&) = delete;

  /// Installs \p snapshot as the newest published model.
  void publish(std::shared_ptr<const ModelSnapshot> snapshot) {
    std::lock_guard<std::mutex> lock(publish_mu_);
    Entry* const cur = current_.load(std::memory_order_relaxed);
    Entry* slot = nullptr;
    for (;;) {
      for (Entry& e : entries_) {
        if (&e == cur) continue;
        if (e.pins.load(std::memory_order_seq_cst) == 0) {
          slot = &e;
          break;
        }
      }
      if (slot != nullptr) break;
      std::this_thread::yield();  // pins last ~one shared_ptr copy
    }
    // `slot` is not current and unpinned: no reader can still (or ever
    // again, until it becomes current) read its snap. Overwriting also
    // drops the pool's reference to a long-replaced snapshot, bounding
    // retention at kEntries versions.
    slot->snap = std::move(snapshot);
    current_.store(slot, std::memory_order_seq_cst);
    published_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Latest published snapshot (nullptr before the first publication).
  std::shared_ptr<const ModelSnapshot> acquire() const {
    for (;;) {
      Entry* const e = current_.load(std::memory_order_seq_cst);
      if (e == nullptr) return nullptr;
      e->pins.fetch_add(1, std::memory_order_seq_cst);
      if (current_.load(std::memory_order_seq_cst) == e) {
        std::shared_ptr<const ModelSnapshot> out = e->snap;
        e->pins.fetch_sub(1, std::memory_order_seq_cst);
        return out;
      }
      // A publication moved current_ away between the first load and the
      // pin — the entry may be recycled any moment. Unpin and retry.
      e->pins.fetch_sub(1, std::memory_order_seq_cst);
    }
  }

  bool has_snapshot() const { return acquire() != nullptr; }
  std::size_t published_count() const {
    return published_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::shared_ptr<const ModelSnapshot> snap;  ///< Guarded by the protocol.
    std::atomic<std::size_t> pins{0};           ///< Readers mid-copy.
  };
  /// The publisher needs one entry that is neither current nor pinned;
  /// with pins held only across a shared_ptr copy, a handful of entries
  /// makes the publish-side scan effectively wait-free too.
  static constexpr std::size_t kEntries = 8;

  std::array<Entry, kEntries> entries_{};
  std::atomic<Entry*> current_{nullptr};
  std::atomic<std::size_t> published_{0};
  std::mutex publish_mu_;  ///< Serializes publishers; readers never touch it.
};

enum class QueryKind {
  kPosterior = 0,            ///< P(target | evidence)
  kEvidenceProbability = 1,  ///< P(evidence)
  kExceedance = 2,           ///< P(target > threshold | evidence), seconds
  kWhatIf = 3,               ///< posterior + no-evidence baseline of target
};

enum class QueryRoute {
  kCalibratedTree = 0,      ///< Incremental junction-tree recalibration.
  kPrunedElimination = 1,   ///< VE on the relevant subnetwork.
};

/// Serving priority class. Interactive queries (an operator's pAccel /
/// threshold probe) outrank batch what-if sweeps: under pressure batch
/// work is shed first, and within a batch interactive queries execute
/// first so an expiring deadline costs the cheap work, not the urgent.
enum class QueryClass {
  kInteractive = 0,
  kBatch = 1,
};

/// Per-query outcome. Anything other than kOk carries an empty posterior:
/// a refused query never occupies a worker and never returns a partially
/// calibrated answer.
enum class QueryStatus {
  kOk = 0,
  kDeadlineExceeded = 1,  ///< Deadline passed before the query ran.
  kShed = 2,              ///< Refused by overload control before any work.
};

const char* to_string(QueryStatus status);

struct Query {
  QueryKind kind = QueryKind::kPosterior;
  /// Query node (== dataset column for KERT models). Ignored for
  /// kEvidenceProbability.
  std::size_t target = 0;
  /// Sorted (node, state) pairs; for kWhatIf this holds the hypothetical.
  bn::SortedEvidence evidence;
  /// kExceedance only, in the summary's units (seconds when the snapshot
  /// carries a discretizer).
  double threshold = 0.0;
  /// Serving priority (see QueryClass).
  QueryClass query_class = QueryClass::kInteractive;
  /// Absolute deadline against the engine's clock (Config::clock), in
  /// nanoseconds; 0 = no deadline. Checked at stripe boundaries before
  /// the query does any work — an expired query returns
  /// QueryStatus::kDeadlineExceeded instead of occupying the worker.
  std::uint64_t deadline_ns = 0;
};

struct QueryAnswer {
  QueryStatus status = QueryStatus::kOk;
  std::size_t snapshot_version = 0;
  QueryRoute route = QueryRoute::kCalibratedTree;
  /// Posterior states of `target` (empty for kEvidenceProbability).
  std::vector<double> posterior;
  /// Posterior in natural units (bin centers when a discretizer exists).
  DistributionSummary summary;
  /// kWhatIf only: the no-evidence marginal of `target` from the warm
  /// prior tree — the "before" of the what-if.
  DistributionSummary baseline;
  double exceedance = 0.0;            ///< kExceedance only.
  double evidence_probability = 1.0;  ///< kEvidenceProbability only.
};

using QueryBatch = std::vector<Query>;

/// Batched query server. Not itself thread-safe: use one engine per
/// serving thread (they can all share one SnapshotSlot and one ThreadPool;
/// per-worker trees are engine-local).
class QueryEngine {
 public:
  struct Config {
    /// Snapshot source (required, non-owning; must outlive the engine).
    const SnapshotSlot* slot = nullptr;
    /// Fan batches across this pool (non-owning; nullptr = serial).
    ThreadPool* pool = nullptr;
    /// Reuse the cached no-evidence calibration for clean subtrees
    /// (JunctionTree::set_incremental). Off = legacy full recalibration.
    bool incremental_recalibration = true;
    /// Route a posterior query through pruned variable elimination when
    /// the relevant subnetwork holds at most `prune_threshold` of the
    /// nodes.
    bool prune = true;
    double prune_threshold = 0.5;
    /// Overload control (non-owning, optional): at governor level
    /// kShedding or worse, batch-class queries are shed before any work;
    /// at kEmergency, interactive queries additionally pay a query token
    /// each (the bucket's default budget is generous — it bites only when
    /// configured to). Deadlines work with or without a governor.
    ov::PressureGovernor* governor = nullptr;
    /// Deadline clock in nanoseconds. Defaults to steady_clock; inject a
    /// deterministic source in tests. Also feeds the governor's query
    /// bucket (as seconds) when a governor is set.
    std::function<std::uint64_t()> clock;
  };

  explicit QueryEngine(Config config);

  /// Answers every query in \p batch against the newest published
  /// snapshot. Requires a published snapshot with a junction tree.
  std::vector<QueryAnswer> post(const QueryBatch& batch);

  std::size_t queries_served() const { return queries_served_; }
  std::size_t batches_served() const { return batches_served_; }
  /// Queries answered by pruned elimination instead of the tree.
  std::size_t pruned_routes() const { return pruned_routes_; }
  /// Queries that expired before running (QueryStatus::kDeadlineExceeded).
  std::size_t deadline_exceeded() const { return deadline_exceeded_; }
  /// Queries refused by overload control (QueryStatus::kShed).
  std::size_t shed_queries() const { return shed_queries_; }
  /// Version of the snapshot the last batch ran against.
  std::size_t last_snapshot_version() const { return last_version_; }

 private:
  struct Worker {
    std::shared_ptr<const ModelSnapshot> snapshot;
    /// Per-worker tree copy: calibration mutates only this worker's state.
    std::optional<bn::JunctionTree> tree;
    /// Plan-cache counter watermarks at the last metrics harvest, so each
    /// batch reports deltas (a warm tree copy arrives with nonzero counts).
    std::size_t plan_hits_seen = 0;
    std::size_t plan_misses_seen = 0;
  };

  /// Points \p w at \p snapshot, copying the warm tree on change.
  void adopt(Worker& w, const std::shared_ptr<const ModelSnapshot>& snapshot);
  QueryAnswer answer(Worker& w, const Query& q);

  Config config_;
  std::vector<Worker> workers_;
  std::size_t queries_served_ = 0;
  std::size_t batches_served_ = 0;
  std::atomic<std::size_t> pruned_routes_{0};
  std::atomic<std::size_t> deadline_exceeded_{0};
  std::atomic<std::size_t> shed_queries_{0};
  std::size_t last_version_ = 0;
};

}  // namespace kertbn::core
