#pragma once
/// \file window_stats.hpp
/// Windowed sufficient statistics for incremental model reconstruction.
///
/// Section 2's scheme rebuilds the model every T_CON from the sliding
/// window W = K · T_CON, recounting all K·α data points each time even
/// though K-1 of the K segments were already counted by the previous
/// reconstruction. WindowStats removes that redundancy: rows are observed
/// as they enter the window and grouped into T_CON segments of α rows;
/// each sealed segment caches its count/moment partials (an augmented Gram
/// matrix, leak-residual moments, per-column ranges, and — on demand —
/// per-node discrete count tables). A reconstruction then combines K
/// cached partials plus the one fresh segment instead of re-scanning the
/// whole window.
///
/// The layer is strictly an accelerator: whenever the cached statistics
/// cannot be proven to cover the exact window (missed rows, a direct
/// reconstruct() on foreign data) alignment fails and the caller falls
/// back to a full recount; whenever the discretizer's bin edges shift the
/// per-segment count caches are keyed out by version and recounted.

#include <cstddef>
#include <deque>
#include <functional>
#include <span>
#include <vector>

#include "bn/dataset.hpp"
#include "kert/discretize.hpp"
#include "linalg/matrix.hpp"

namespace kertbn::core {

/// Shape of one node's CPT count table, mirroring bn::fit_tabular_cpd's
/// layout exactly: config-major (parents in order, mixed-radix with the
/// last parent fastest), child-state minor.
struct CountLayout {
  std::size_t child_col = 0;
  std::vector<std::size_t> parent_cols;
  std::size_t child_card = 0;
  std::vector<std::size_t> parent_cards;

  /// Total table cells: child_card · Π parent_cards.
  std::size_t table_size() const;
};

/// Per-segment sufficient statistics over the sliding window.
class WindowStats {
 public:
  struct Config {
    /// Dataset width (services + 1 for D).
    std::size_t cols = 0;
    /// Rows per T_CON segment (α); segments seal at this size.
    std::size_t rows_per_segment = 0;
    /// Window capacity in rows (K·α); oldest sealed segments are evicted
    /// once retained rows exceed this.
    std::size_t max_rows = 0;
    /// Optional per-row leak residual D - f(X); when set, residual moments
    /// are accumulated per segment (continuous-mode leak calibration).
    std::function<double(std::span<const double>)> residual;
  };

  explicit WindowStats(Config config);

  std::size_t cols() const { return config_.cols; }
  std::size_t rows_per_segment() const { return config_.rows_per_segment; }
  std::size_t max_rows() const { return config_.max_rows; }

  /// Ingests one window row (services then D). Seals the open segment at
  /// rows_per_segment rows and evicts whole sealed segments from the front
  /// while more than max_rows are retained.
  void observe(std::span<const double> row);

  /// Drops everything (used when reseeding after an alignment miss).
  void reset();

  /// Rows currently covered by the retained segments.
  std::size_t retained_rows() const;
  /// Retained segment count (including a non-empty open segment).
  std::size_t segments() const;

  /// True when the retained statistics cover exactly \p window: same row
  /// count and matching first/last rows. Count equality alone suffices
  /// when both saw the same stream (front eviction in whole segments);
  /// the endpoint comparison additionally rejects reconstructions against
  /// foreign data of coincidentally equal size.
  bool aligned(const bn::Dataset& window) const;

  /// Combined augmented Gram matrix over all retained rows:
  /// (cols+1)×(cols+1) second moments of [1, x_0, ..., x_{cols-1}] —
  /// the input bn::fit_linear_gaussian_from_moments expects.
  la::Matrix combined_gram() const;

  struct ResidualMoments {
    double sum = 0.0;
    double sum_sq = 0.0;
    std::size_t rows = 0;
  };
  /// Combined leak-residual moments (rows == 0 when no residual fn).
  ResidualMoments combined_residuals() const;

  /// Smallest / largest retained value of column \p c (drift detection for
  /// discretizer reuse). Contract-fails when no rows are retained.
  double col_min(std::size_t c) const;
  double col_max(std::size_t c) const;

  struct CountResult {
    /// One count table per layout, combined over all retained rows.
    std::vector<std::vector<double>> node_counts;
    /// Raw rows actually scanned (cache misses); 0 on a full cache hit
    /// except for the open segment, which is always recounted.
    std::size_t rows_scanned = 0;
  };
  /// Discrete count tables for \p layouts over the retained rows, binned
  /// with \p disc. Sealed segments cache their tables keyed by
  /// \p discretizer_version — bump the version whenever the discretizer's
  /// edges shift and every segment recounts exactly once. Counts are exact
  /// integers carried in doubles, so combined tables are bit-identical to
  /// a full-window recount under the same discretizer.
  CountResult counts(std::span<const CountLayout> layouts,
                     const DatasetDiscretizer& disc,
                     std::size_t discretizer_version);

 private:
  struct Segment {
    std::vector<double> raw;  // row-major, rows * cols
    bool sealed = false;
    // Moment partials, computed once at seal time.
    la::Matrix gram;  // (cols+1)², empty until sealed
    double resid_sum = 0.0;
    double resid_sum_sq = 0.0;
    std::vector<double> min;  // per column, over the segment
    std::vector<double> max;
    // Discrete count cache (sealed segments only).
    std::size_t counts_version = 0;
    bool counts_valid = false;
    std::vector<std::vector<double>> counts;

    std::size_t rows(std::size_t cols) const { return raw.size() / cols; }
  };

  void seal_back();
  /// Moment partials of \p seg computed from its raw rows.
  void accumulate_moments(const Segment& seg, la::Matrix& gram,
                          double& resid_sum, double& resid_sum_sq,
                          std::vector<double>& min,
                          std::vector<double>& max) const;
  /// Count tables of \p seg's raw rows under \p disc.
  std::vector<std::vector<double>> count_segment(
      const Segment& seg, std::span<const CountLayout> layouts,
      const DatasetDiscretizer& disc) const;

  Config config_;
  std::deque<Segment> segments_;
};

}  // namespace kertbn::core
