#include "kert/serialize.hpp"

#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "bn/deterministic_cpd.hpp"
#include "bn/linear_gaussian_cpd.hpp"
#include "bn/tabular_cpd.hpp"
#include "common/contract.hpp"
#include "kert/kert_builder.hpp"
#include "workflow/serialize.hpp"

namespace kertbn::core {
namespace {

constexpr const char* kMagic = "kertbn-model";
constexpr int kVersion = 1;

void write_sharing(std::ostream& out, const wf::ResourceSharing& sharing) {
  out << "sharing " << sharing.groups.size() << '\n';
  for (const auto& g : sharing.groups) {
    out << "group " << g.name << ' ' << g.services.size();
    for (std::size_t s : g.services) out << ' ' << s;
    out << '\n';
  }
}

wf::ResourceSharing read_sharing(std::istream& in) {
  std::string keyword;
  std::size_t groups = 0;
  in >> keyword >> groups;
  KERTBN_EXPECTS(keyword == "sharing");
  wf::ResourceSharing sharing;
  for (std::size_t g = 0; g < groups; ++g) {
    wf::ResourceGroup group;
    std::size_t count = 0;
    in >> keyword >> group.name >> count;
    KERTBN_EXPECTS(keyword == "group");
    group.services.resize(count);
    for (std::size_t i = 0; i < count; ++i) in >> group.services[i];
    sharing.groups.push_back(std::move(group));
  }
  return sharing;
}

void write_learned_cpds(std::ostream& out, const bn::BayesianNetwork& net,
                        std::size_t response_node) {
  std::size_t count = 0;
  for (std::size_t v = 0; v < net.size(); ++v) {
    if (v != response_node) ++count;
  }
  out << "cpds " << count << '\n';
  for (std::size_t v = 0; v < net.size(); ++v) {
    if (v == response_node) continue;
    const bn::Cpd& cpd = net.cpd(v);
    if (cpd.kind() == bn::CpdKind::kLinearGaussian) {
      const auto& lg = static_cast<const bn::LinearGaussianCpd&>(cpd);
      out << "cpd " << v << " lingauss " << lg.intercept() << ' '
          << lg.weights().size();
      for (double w : lg.weights()) out << ' ' << w;
      out << ' ' << lg.sigma() << '\n';
    } else {
      KERTBN_EXPECTS(cpd.kind() == bn::CpdKind::kTabular);
      const auto& tab = static_cast<const bn::TabularCpd&>(cpd);
      out << "cpd " << v << " tabular " << tab.child_cardinality() << ' '
          << tab.parent_cardinalities().size();
      for (std::size_t c : tab.parent_cardinalities()) out << ' ' << c;
      out << ' ' << tab.config_count() * tab.child_cardinality();
      for (std::size_t cfg = 0; cfg < tab.config_count(); ++cfg) {
        for (std::size_t s = 0; s < tab.child_cardinality(); ++s) {
          out << ' ' << tab.probability(cfg, s);
        }
      }
      out << '\n';
    }
  }
}

std::unique_ptr<bn::Cpd> read_one_cpd(std::istream& in,
                                      std::size_t& node_out) {
  std::string keyword;
  std::string kind;
  in >> keyword >> node_out >> kind;
  KERTBN_EXPECTS(keyword == "cpd");
  if (kind == "lingauss") {
    double intercept = 0.0;
    std::size_t k = 0;
    in >> intercept >> k;
    std::vector<double> weights(k);
    for (double& w : weights) in >> w;
    double sigma = 0.0;
    in >> sigma;
    return std::make_unique<bn::LinearGaussianCpd>(intercept,
                                                   std::move(weights),
                                                   sigma);
  }
  KERTBN_EXPECTS(kind == "tabular");
  std::size_t card = 0;
  std::size_t np = 0;
  in >> card >> np;
  std::vector<std::size_t> pcards(np);
  for (auto& c : pcards) in >> c;
  std::size_t nvals = 0;
  in >> nvals;
  std::vector<double> values(nvals);
  for (double& v : values) in >> v;
  return std::make_unique<bn::TabularCpd>(
      bn::TabularCpd(card, std::move(pcards), std::move(values)));
}

void write_structure(std::ostream& out, const bn::BayesianNetwork& net) {
  out << "edges " << net.dag().edge_count() << '\n';
  for (std::size_t v = 0; v < net.size(); ++v) {
    for (std::size_t p : net.dag().parents(v)) {
      out << "edge " << p << ' ' << v << '\n';
    }
  }
}

}  // namespace

void save_kert_continuous(std::ostream& out, const wf::Workflow& workflow,
                          const wf::ResourceSharing& sharing,
                          const bn::BayesianNetwork& net) {
  const std::size_t d_node = net.size() - 1;
  KERTBN_EXPECTS(net.is_complete());
  KERTBN_EXPECTS(net.cpd(d_node).kind() == bn::CpdKind::kDeterministic);
  const auto& det = static_cast<const bn::DeterministicCpd&>(net.cpd(d_node));

  out << std::setprecision(17);
  out << kMagic << ' ' << kVersion << '\n';
  out << workflow_to_text(workflow);
  write_sharing(out, sharing);
  out << "kind continuous\n";
  out << "nodes " << net.size() << '\n';
  write_structure(out, net);
  out << "leak " << det.leak_sigma() << '\n';
  write_learned_cpds(out, net, d_node);
  out << "end\n";
}

void save_kert_discrete(std::ostream& out, const wf::Workflow& workflow,
                        const wf::ResourceSharing& sharing,
                        const DatasetDiscretizer& discretizer, double leak_l,
                        const bn::BayesianNetwork& net) {
  const std::size_t d_node = net.size() - 1;
  KERTBN_EXPECTS(net.is_complete());
  KERTBN_EXPECTS(net.cpd(d_node).kind() == bn::CpdKind::kTabular);

  out << std::setprecision(17);
  out << kMagic << ' ' << kVersion << '\n';
  out << workflow_to_text(workflow);
  write_sharing(out, sharing);
  out << "kind discrete " << discretizer.bins() << '\n';
  out << "discretizer " << discretizer.columns() << '\n';
  for (std::size_t c = 0; c < discretizer.columns(); ++c) {
    const auto& col = discretizer.column(c);
    out << "column " << c << ' ' << col.data_min() << ' ' << col.data_max()
        << ' ' << col.edges().size();
    for (double e : col.edges()) out << ' ' << e;
    out << ' ' << col.bins();
    for (std::size_t b = 0; b < col.bins(); ++b) {
      out << ' ' << col.center_of(b);
    }
    out << '\n';
  }
  out << "nodes " << net.size() << '\n';
  write_structure(out, net);
  out << "leak " << leak_l << '\n';
  // The response CPT is stored verbatim (rebuilding it from knowledge is
  // possible but would tie files to the CPT-integration sampling scheme).
  {
    const auto& tab =
        static_cast<const bn::TabularCpd&>(net.cpd(d_node));
    out << "response_cpt " << tab.child_cardinality() << ' '
        << tab.parent_cardinalities().size();
    for (std::size_t c : tab.parent_cardinalities()) out << ' ' << c;
    out << ' ' << tab.config_count() * tab.child_cardinality();
    for (std::size_t cfg = 0; cfg < tab.config_count(); ++cfg) {
      for (std::size_t s = 0; s < tab.child_cardinality(); ++s) {
        out << ' ' << tab.probability(cfg, s);
      }
    }
    out << '\n';
  }
  write_learned_cpds(out, net, d_node);
  out << "end\n";
}

SavedModel load_kert_model(std::istream& in) {
  std::string keyword;
  int version = 0;
  in >> keyword >> version;
  KERTBN_EXPECTS(keyword == kMagic);
  KERTBN_EXPECTS(version == kVersion);

  // Workflow block (re-serialize through the workflow reader).
  std::size_t n_services = 0;
  in >> keyword >> n_services;
  KERTBN_EXPECTS(keyword == "workflow");
  std::vector<std::string> names(n_services);
  for (std::size_t i = 0; i < n_services; ++i) {
    std::size_t idx = 0;
    in >> keyword >> idx >> names[idx];
    KERTBN_EXPECTS(keyword == "name");
  }
  in >> keyword;
  KERTBN_EXPECTS(keyword == "tree");
  std::string tree_line;
  std::getline(in, tree_line);
  wf::Workflow workflow(names, wf::node_from_text(tree_line));

  wf::ResourceSharing sharing = read_sharing(in);

  in >> keyword;
  KERTBN_EXPECTS(keyword == "kind");
  std::string kind;
  in >> kind;
  std::size_t bins = 0;
  std::optional<DatasetDiscretizer> discretizer;
  if (kind == "discrete") {
    in >> bins;
    std::size_t cols = 0;
    in >> keyword >> cols;
    KERTBN_EXPECTS(keyword == "discretizer");
    std::vector<ColumnDiscretizer> columns;
    columns.reserve(cols);
    for (std::size_t c = 0; c < cols; ++c) {
      std::size_t idx = 0;
      double lo = 0.0;
      double hi = 0.0;
      std::size_t n_edges = 0;
      in >> keyword >> idx >> lo >> hi >> n_edges;
      KERTBN_EXPECTS(keyword == "column" && idx == c);
      std::vector<double> edges(n_edges);
      for (double& e : edges) in >> e;
      std::size_t n_centers = 0;
      in >> n_centers;
      std::vector<double> centers(n_centers);
      for (double& x : centers) in >> x;
      columns.push_back(ColumnDiscretizer::from_parts(
          std::move(edges), std::move(centers), lo, hi));
    }
    discretizer = DatasetDiscretizer::from_columns(std::move(columns));
  } else {
    KERTBN_EXPECTS(kind == "continuous");
  }

  std::size_t n_nodes = 0;
  in >> keyword >> n_nodes;
  KERTBN_EXPECTS(keyword == "nodes");
  KERTBN_EXPECTS(n_nodes >= n_services + 1);

  // Rebuild the node set: services, optional extras (resource nodes), D.
  bn::BayesianNetwork net;
  for (std::size_t v = 0; v < n_nodes; ++v) {
    std::string node_name;
    if (v < n_services) {
      node_name = names[v];
    } else if (v + 1 == n_nodes) {
      node_name = "D";
    } else {
      // Resource nodes carry their group names in order.
      const std::size_t g = v - n_services;
      KERTBN_EXPECTS(g < sharing.groups.size());
      node_name = sharing.groups[g].name;
    }
    net.add_node(bins == 0
                     ? bn::Variable::continuous(node_name)
                     : bn::Variable::discrete(node_name, bins));
  }

  std::size_t n_edges = 0;
  in >> keyword >> n_edges;
  KERTBN_EXPECTS(keyword == "edges");
  for (std::size_t e = 0; e < n_edges; ++e) {
    std::size_t a = 0;
    std::size_t b = 0;
    in >> keyword >> a >> b;
    KERTBN_EXPECTS(keyword == "edge");
    const bool ok = net.add_edge(a, b);
    KERTBN_EXPECTS(ok);
  }

  double leak = 0.0;
  in >> keyword >> leak;
  KERTBN_EXPECTS(keyword == "leak");

  const std::size_t d_node = n_nodes - 1;
  if (bins == 0) {
    // Rebuild the deterministic response CPD from the workflow knowledge.
    net.set_cpd(d_node, std::make_unique<bn::DeterministicCpd>(
                            make_response_fn(workflow), leak));
  } else {
    std::string tag;
    in >> tag;
    KERTBN_EXPECTS(tag == "response_cpt");
    std::size_t card = 0;
    std::size_t np = 0;
    in >> card >> np;
    std::vector<std::size_t> pcards(np);
    for (auto& c : pcards) in >> c;
    std::size_t nvals = 0;
    in >> nvals;
    std::vector<double> values(nvals);
    for (double& v : values) in >> v;
    net.set_cpd(d_node, std::make_unique<bn::TabularCpd>(bn::TabularCpd(
                            card, std::move(pcards), std::move(values))));
  }

  std::size_t n_cpds = 0;
  in >> keyword >> n_cpds;
  KERTBN_EXPECTS(keyword == "cpds");
  for (std::size_t i = 0; i < n_cpds; ++i) {
    std::size_t node = 0;
    auto cpd = read_one_cpd(in, node);
    net.set_cpd(node, std::move(cpd));
  }
  in >> keyword;
  KERTBN_EXPECTS(keyword == "end");
  KERTBN_ENSURES(net.is_complete());

  SavedModel model{std::move(workflow), std::move(sharing), bins,
                   std::move(discretizer), leak, std::move(net)};
  return model;
}

std::string save_to_string(const wf::Workflow& workflow,
                           const wf::ResourceSharing& sharing,
                           const bn::BayesianNetwork& net) {
  std::ostringstream out;
  save_kert_continuous(out, workflow, sharing, net);
  return out.str();
}

SavedModel load_from_string(const std::string& text) {
  std::istringstream in(text);
  return load_kert_model(in);
}

namespace {

constexpr const char* kNetMagic = "kertbn-net";
constexpr int kNetVersion = 1;

/// Writes one learned CPD in the same line format write_learned_cpds uses.
void write_cpd_line(std::ostream& out, std::size_t v, const bn::Cpd& cpd) {
  if (cpd.kind() == bn::CpdKind::kLinearGaussian) {
    const auto& lg = static_cast<const bn::LinearGaussianCpd&>(cpd);
    out << "cpd " << v << " lingauss " << lg.intercept() << ' '
        << lg.weights().size();
    for (double w : lg.weights()) out << ' ' << w;
    out << ' ' << lg.sigma() << '\n';
    return;
  }
  KERTBN_EXPECTS(cpd.kind() == bn::CpdKind::kTabular);
  const auto& tab = static_cast<const bn::TabularCpd&>(cpd);
  out << "cpd " << v << " tabular " << tab.child_cardinality() << ' '
      << tab.parent_cardinalities().size();
  for (std::size_t c : tab.parent_cardinalities()) out << ' ' << c;
  out << ' ' << tab.config_count() * tab.child_cardinality();
  for (std::size_t cfg = 0; cfg < tab.config_count(); ++cfg) {
    for (std::size_t s = 0; s < tab.child_cardinality(); ++s) {
      out << ' ' << tab.probability(cfg, s);
    }
  }
  out << '\n';
}

}  // namespace

void save_network(std::ostream& out, const bn::BayesianNetwork& net) {
  KERTBN_EXPECTS(net.is_complete());
  out << std::setprecision(17);
  out << kNetMagic << ' ' << kNetVersion << '\n';
  out << "nodes " << net.size() << '\n';
  for (std::size_t v = 0; v < net.size(); ++v) {
    const bn::Variable& var = net.variable(v);
    // Names are whitespace-free throughout this library (service
    // identifiers); the line format relies on that.
    KERTBN_EXPECTS(var.name.find_first_of(" \t\n") == std::string::npos);
    if (var.is_discrete()) {
      out << "node " << v << " discrete " << var.cardinality << ' '
          << var.name << '\n';
    } else {
      out << "node " << v << " continuous " << var.name << '\n';
    }
  }
  write_structure(out, net);
  out << "cpds " << net.size() << '\n';
  for (std::size_t v = 0; v < net.size(); ++v) {
    write_cpd_line(out, v, net.cpd(v));
  }
  out << "end\n";
}

bn::BayesianNetwork load_network(std::istream& in) {
  std::string keyword;
  int version = 0;
  in >> keyword >> version;
  KERTBN_EXPECTS(keyword == kNetMagic);
  KERTBN_EXPECTS(version == kNetVersion);

  std::size_t n_nodes = 0;
  in >> keyword >> n_nodes;
  KERTBN_EXPECTS(keyword == "nodes");
  bn::BayesianNetwork net;
  for (std::size_t v = 0; v < n_nodes; ++v) {
    std::size_t idx = 0;
    std::string kind;
    in >> keyword >> idx >> kind;
    KERTBN_EXPECTS(keyword == "node" && idx == v);
    if (kind == "discrete") {
      std::size_t card = 0;
      std::string name;
      in >> card >> name;
      net.add_node(bn::Variable::discrete(std::move(name), card));
    } else {
      KERTBN_EXPECTS(kind == "continuous");
      std::string name;
      in >> name;
      net.add_node(bn::Variable::continuous(std::move(name)));
    }
  }

  std::size_t n_edges = 0;
  in >> keyword >> n_edges;
  KERTBN_EXPECTS(keyword == "edges");
  for (std::size_t e = 0; e < n_edges; ++e) {
    std::size_t a = 0;
    std::size_t b = 0;
    in >> keyword >> a >> b;
    KERTBN_EXPECTS(keyword == "edge");
    const bool ok = net.add_edge(a, b);
    KERTBN_EXPECTS(ok);
  }

  std::size_t n_cpds = 0;
  in >> keyword >> n_cpds;
  KERTBN_EXPECTS(keyword == "cpds");
  KERTBN_EXPECTS(n_cpds == n_nodes);
  for (std::size_t i = 0; i < n_cpds; ++i) {
    std::size_t node = 0;
    auto cpd = read_one_cpd(in, node);
    net.set_cpd(node, std::move(cpd));
  }
  in >> keyword;
  KERTBN_EXPECTS(keyword == "end");
  KERTBN_ENSURES(net.is_complete());
  return net;
}

std::string network_to_string(const bn::BayesianNetwork& net) {
  std::ostringstream out;
  save_network(out, net);
  return out.str();
}

bn::BayesianNetwork network_from_string(const std::string& text) {
  std::istringstream in(text);
  return load_network(in);
}

}  // namespace kertbn::core
