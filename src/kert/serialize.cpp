#include "kert/serialize.hpp"

#include <cmath>
#include <cstdio>
#include <iomanip>
#include <istream>
#include <memory>
#include <ostream>
#include <sstream>
#include <vector>

#include "bn/deterministic_cpd.hpp"
#include "bn/linear_gaussian_cpd.hpp"
#include "bn/tabular_cpd.hpp"
#include "common/contract.hpp"
#include "kert/kert_builder.hpp"
#include "workflow/serialize.hpp"

namespace kertbn::core {
namespace {

constexpr const char* kMagic = "kertbn-model";
constexpr int kVersion = 1;

void write_sharing(std::ostream& out, const wf::ResourceSharing& sharing) {
  out << "sharing " << sharing.groups.size() << '\n';
  for (const auto& g : sharing.groups) {
    out << "group " << g.name << ' ' << g.services.size();
    for (std::size_t s : g.services) out << ' ' << s;
    out << '\n';
  }
}

/// Collection-size sanity caps for the fallible loader: a corrupt count
/// field must produce a LoadError, not a multi-gigabyte allocation.
constexpr std::size_t kMaxCount = 100000;
constexpr std::size_t kMaxTableValues = 10'000'000;

void write_learned_cpds(std::ostream& out, const bn::BayesianNetwork& net,
                        std::size_t response_node) {
  std::size_t count = 0;
  for (std::size_t v = 0; v < net.size(); ++v) {
    if (v != response_node) ++count;
  }
  out << "cpds " << count << '\n';
  for (std::size_t v = 0; v < net.size(); ++v) {
    if (v == response_node) continue;
    const bn::Cpd& cpd = net.cpd(v);
    if (cpd.kind() == bn::CpdKind::kLinearGaussian) {
      const auto& lg = static_cast<const bn::LinearGaussianCpd&>(cpd);
      out << "cpd " << v << " lingauss " << lg.intercept() << ' '
          << lg.weights().size();
      for (double w : lg.weights()) out << ' ' << w;
      out << ' ' << lg.sigma() << '\n';
    } else {
      KERTBN_EXPECTS(cpd.kind() == bn::CpdKind::kTabular);
      const auto& tab = static_cast<const bn::TabularCpd&>(cpd);
      out << "cpd " << v << " tabular " << tab.child_cardinality() << ' '
          << tab.parent_cardinalities().size();
      for (std::size_t c : tab.parent_cardinalities()) out << ' ' << c;
      out << ' ' << tab.config_count() * tab.child_cardinality();
      for (std::size_t cfg = 0; cfg < tab.config_count(); ++cfg) {
        for (std::size_t s = 0; s < tab.child_cardinality(); ++s) {
          out << ' ' << tab.probability(cfg, s);
        }
      }
      out << '\n';
    }
  }
}

void write_structure(std::ostream& out, const bn::BayesianNetwork& net) {
  out << "edges " << net.dag().edge_count() << '\n';
  for (std::size_t v = 0; v < net.size(); ++v) {
    for (std::size_t p : net.dag().parents(v)) {
      out << "edge " << p << ' ' << v << '\n';
    }
  }
}

}  // namespace

void save_kert_continuous(std::ostream& out, const wf::Workflow& workflow,
                          const wf::ResourceSharing& sharing,
                          const bn::BayesianNetwork& net) {
  const std::size_t d_node = net.size() - 1;
  KERTBN_EXPECTS(net.is_complete());
  KERTBN_EXPECTS(net.cpd(d_node).kind() == bn::CpdKind::kDeterministic);
  const auto& det = static_cast<const bn::DeterministicCpd&>(net.cpd(d_node));

  out << std::setprecision(17);
  out << kMagic << ' ' << kVersion << '\n';
  out << workflow_to_text(workflow);
  write_sharing(out, sharing);
  out << "kind continuous\n";
  out << "nodes " << net.size() << '\n';
  write_structure(out, net);
  out << "leak " << det.leak_sigma() << '\n';
  write_learned_cpds(out, net, d_node);
  out << "end\n";
}

void save_kert_discrete(std::ostream& out, const wf::Workflow& workflow,
                        const wf::ResourceSharing& sharing,
                        const DatasetDiscretizer& discretizer, double leak_l,
                        const bn::BayesianNetwork& net) {
  const std::size_t d_node = net.size() - 1;
  KERTBN_EXPECTS(net.is_complete());
  KERTBN_EXPECTS(net.cpd(d_node).kind() == bn::CpdKind::kTabular);

  out << std::setprecision(17);
  out << kMagic << ' ' << kVersion << '\n';
  out << workflow_to_text(workflow);
  write_sharing(out, sharing);
  out << "kind discrete " << discretizer.bins() << '\n';
  out << "discretizer " << discretizer.columns() << '\n';
  for (std::size_t c = 0; c < discretizer.columns(); ++c) {
    const auto& col = discretizer.column(c);
    out << "column " << c << ' ' << col.data_min() << ' ' << col.data_max()
        << ' ' << col.edges().size();
    for (double e : col.edges()) out << ' ' << e;
    out << ' ' << col.bins();
    for (std::size_t b = 0; b < col.bins(); ++b) {
      out << ' ' << col.center_of(b);
    }
    out << '\n';
  }
  out << "nodes " << net.size() << '\n';
  write_structure(out, net);
  out << "leak " << leak_l << '\n';
  // The response CPT is stored verbatim (rebuilding it from knowledge is
  // possible but would tie files to the CPT-integration sampling scheme).
  {
    const auto& tab =
        static_cast<const bn::TabularCpd&>(net.cpd(d_node));
    out << "response_cpt " << tab.child_cardinality() << ' '
        << tab.parent_cardinalities().size();
    for (std::size_t c : tab.parent_cardinalities()) out << ' ' << c;
    out << ' ' << tab.config_count() * tab.child_cardinality();
    for (std::size_t cfg = 0; cfg < tab.config_count(); ++cfg) {
      for (std::size_t s = 0; s < tab.child_cardinality(); ++s) {
        out << ' ' << tab.probability(cfg, s);
      }
    }
    out << '\n';
  }
  write_learned_cpds(out, net, d_node);
  out << "end\n";
}

namespace {

/// Fallible reader for the kertbn-model format. Every method reports
/// malformed input by value; nothing in here aborts. The aborting
/// load_kert_model wrapper turns the error into a contract failure for
/// callers that prefer fail-fast.
class ModelReader {
 public:
  explicit ModelReader(std::istream& in) : in_(in) {}

  /// On failure returns nullopt with \p error filled.
  std::optional<SavedModel> read(std::string& error);

 private:
  bool fail(std::string what) {
    if (error_.empty()) error_ = std::move(what);
    return false;
  }
  bool word(std::string& out) {
    if (!(in_ >> out)) return fail("unexpected end of input");
    return true;
  }
  bool expect(const char* keyword) {
    std::string w;
    if (!word(w)) return false;
    if (w != keyword) {
      return fail(std::string("expected '") + keyword + "', got '" + w +
                  "'");
    }
    return true;
  }
  bool count(std::size_t& out, std::size_t cap = kMaxCount) {
    if (!(in_ >> out)) return fail("expected a count");
    if (out > cap) return fail("count exceeds sanity cap");
    return true;
  }
  bool real(double& out, bool finite = true) {
    if (!(in_ >> out)) return fail("expected a number");
    if (finite && !std::isfinite(out)) return fail("non-finite number");
    return true;
  }

  bool read_workflow(std::optional<wf::Workflow>& out);
  bool read_sharing(wf::ResourceSharing& out);
  bool read_discretizer(std::size_t bins,
                        std::optional<DatasetDiscretizer>& out);
  bool read_tabular(std::size_t bins, std::size_t expected_parents,
                    std::optional<bn::TabularCpd>& out);
  /// True when every activity index in the tree is < n_services.
  static bool tree_in_range(const wf::Node& node, std::size_t n_services);

  std::istream& in_;
  std::string error_;
};

bool ModelReader::tree_in_range(const wf::Node& node,
                                std::size_t n_services) {
  if (node.kind() == wf::NodeKind::kActivity) {
    return node.service_index() < n_services;
  }
  for (const auto& child : node.children()) {
    if (!tree_in_range(*child, n_services)) return false;
  }
  return true;
}

bool ModelReader::read_workflow(std::optional<wf::Workflow>& out) {
  std::size_t n_services = 0;
  if (!expect("workflow") || !count(n_services)) return false;
  if (n_services == 0) return fail("workflow has no services");
  std::vector<std::string> names(n_services);
  for (std::size_t i = 0; i < n_services; ++i) {
    std::size_t idx = 0;
    if (!expect("name") || !count(idx)) return false;
    if (idx >= n_services) return fail("service name index out of range");
    if (!word(names[idx])) return false;
  }
  if (!expect("tree")) return false;
  std::string tree_line;
  std::getline(in_, tree_line);
  std::string tree_error;
  wf::Node::Ptr root = wf::try_node_from_text(tree_line, &tree_error);
  if (root == nullptr) {
    return fail("workflow tree: " + tree_error);
  }
  if (!tree_in_range(*root, n_services)) {
    return fail("workflow tree references an unknown service");
  }
  out.emplace(std::move(names), std::move(root));
  return true;
}

bool ModelReader::read_sharing(wf::ResourceSharing& out) {
  std::size_t groups = 0;
  if (!expect("sharing") || !count(groups)) return false;
  for (std::size_t g = 0; g < groups; ++g) {
    wf::ResourceGroup group;
    std::size_t n = 0;
    if (!expect("group") || !word(group.name) || !count(n)) return false;
    group.services.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (!count(group.services[i])) return false;
    }
    out.groups.push_back(std::move(group));
  }
  return true;
}

bool ModelReader::read_discretizer(std::size_t bins,
                                   std::optional<DatasetDiscretizer>& out) {
  std::size_t cols = 0;
  if (!expect("discretizer") || !count(cols)) return false;
  if (cols == 0) return fail("discretizer has no columns");
  std::vector<ColumnDiscretizer> columns;
  columns.reserve(cols);
  for (std::size_t c = 0; c < cols; ++c) {
    std::size_t idx = 0;
    double lo = 0.0;
    double hi = 0.0;
    std::size_t n_edges = 0;
    if (!expect("column") || !count(idx) || !real(lo) || !real(hi) ||
        !count(n_edges)) {
      return false;
    }
    if (idx != c) return fail("discretizer column out of order");
    if (hi < lo) return fail("discretizer column range inverted");
    std::vector<double> edges(n_edges);
    for (double& e : edges) {
      if (!real(e)) return false;
    }
    for (std::size_t i = 1; i < edges.size(); ++i) {
      if (!(edges[i] > edges[i - 1])) {
        return fail("discretizer edges not increasing");
      }
    }
    std::size_t n_centers = 0;
    if (!count(n_centers)) return false;
    if (n_centers != n_edges + 1 || n_centers != bins) {
      return fail("discretizer bin/edge count mismatch");
    }
    std::vector<double> centers(n_centers);
    for (double& x : centers) {
      if (!real(x)) return false;
    }
    columns.push_back(ColumnDiscretizer::from_parts(
        std::move(edges), std::move(centers), lo, hi));
  }
  out = DatasetDiscretizer::from_columns(std::move(columns));
  return true;
}

bool ModelReader::read_tabular(std::size_t bins, std::size_t expected_parents,
                               std::optional<bn::TabularCpd>& out) {
  std::size_t card = 0;
  std::size_t np = 0;
  if (!count(card) || !count(np)) return false;
  if (card != bins) return fail("CPT cardinality does not match bins");
  if (np != expected_parents) {
    return fail("CPT parent count does not match structure");
  }
  std::vector<std::size_t> pcards(np);
  std::size_t configs = 1;
  for (auto& c : pcards) {
    if (!count(c)) return false;
    if (c != bins) return fail("CPT parent cardinality does not match bins");
    if (configs > kMaxTableValues / c) return fail("CPT too large");
    configs *= c;
  }
  std::size_t nvals = 0;
  if (!count(nvals, kMaxTableValues)) return false;
  if (nvals != configs * card) return fail("CPT value count mismatch");
  std::vector<double> values(nvals);
  for (double& v : values) {
    if (!real(v)) return false;
    if (v < 0.0) return fail("negative CPT probability");
  }
  for (std::size_t cfg = 0; cfg < configs; ++cfg) {
    double sum = 0.0;
    for (std::size_t s = 0; s < card; ++s) sum += values[cfg * card + s];
    if (!(sum > 0.0)) return fail("CPT row sums to zero");
  }
  out.emplace(
      bn::TabularCpd(card, std::move(pcards), std::move(values)));
  return true;
}

std::optional<SavedModel> ModelReader::read(std::string& error) {
  const auto failed = [&]() -> std::optional<SavedModel> {
    error = error_.empty() ? "malformed model" : error_;
    return std::nullopt;
  };

  std::string magic;
  int version = 0;
  if (!word(magic)) return failed();
  if (magic != kMagic) {
    fail("bad magic '" + magic + "'");
    return failed();
  }
  if (!(in_ >> version)) {
    fail("missing version");
    return failed();
  }
  if (version != kVersion) {
    fail("unsupported version " + std::to_string(version));
    return failed();
  }

  std::optional<wf::Workflow> workflow;
  if (!read_workflow(workflow)) return failed();
  const std::size_t n_services = workflow->service_count();

  wf::ResourceSharing sharing;
  if (!read_sharing(sharing)) return failed();

  std::string kind;
  if (!expect("kind") || !word(kind)) return failed();
  std::size_t bins = 0;
  std::optional<DatasetDiscretizer> discretizer;
  if (kind == "discrete") {
    if (!count(bins)) return failed();
    if (bins < 2) {
      fail("discrete model needs >= 2 bins");
      return failed();
    }
    if (!read_discretizer(bins, discretizer)) return failed();
  } else if (kind != "continuous") {
    fail("unknown model kind '" + kind + "'");
    return failed();
  }

  std::size_t n_nodes = 0;
  if (!expect("nodes") || !count(n_nodes)) return failed();
  if (n_nodes < n_services + 1) {
    fail("fewer nodes than services + response");
    return failed();
  }
  if (n_nodes - n_services - 1 > sharing.groups.size()) {
    fail("more resource nodes than sharing groups");
    return failed();
  }

  // Rebuild the node set: services, optional extras (resource nodes), D.
  bn::BayesianNetwork net;
  for (std::size_t v = 0; v < n_nodes; ++v) {
    std::string node_name;
    if (v < n_services) {
      node_name = workflow->service_names()[v];
    } else if (v + 1 == n_nodes) {
      node_name = "D";
    } else {
      node_name = sharing.groups[v - n_services].name;
    }
    net.add_node(bins == 0
                     ? bn::Variable::continuous(node_name)
                     : bn::Variable::discrete(node_name, bins));
  }

  std::size_t n_edges = 0;
  if (!expect("edges") || !count(n_edges)) return failed();
  for (std::size_t e = 0; e < n_edges; ++e) {
    std::size_t a = 0;
    std::size_t b = 0;
    if (!expect("edge") || !count(a) || !count(b)) return failed();
    if (a >= n_nodes || b >= n_nodes) {
      fail("edge endpoint out of range");
      return failed();
    }
    if (!net.add_edge(a, b)) {
      fail("edge rejected (duplicate, self-loop, or cycle)");
      return failed();
    }
  }

  double leak = 0.0;
  if (!expect("leak") || !real(leak)) return failed();

  const std::size_t d_node = n_nodes - 1;
  if (bins == 0) {
    if (!(leak > 0.0)) {
      fail("continuous leak sigma must be positive");
      return failed();
    }
    // Rebuild the deterministic response CPD from the workflow knowledge.
    net.set_cpd(d_node, std::make_unique<bn::DeterministicCpd>(
                            make_response_fn(*workflow), leak));
  } else {
    std::optional<bn::TabularCpd> cpt;
    if (!expect("response_cpt") ||
        !read_tabular(bins, net.dag().parents(d_node).size(), cpt)) {
      return failed();
    }
    net.set_cpd(d_node, std::make_unique<bn::TabularCpd>(std::move(*cpt)));
  }

  std::size_t n_cpds = 0;
  if (!expect("cpds") || !count(n_cpds)) return failed();
  for (std::size_t i = 0; i < n_cpds; ++i) {
    std::size_t node = 0;
    std::string cpd_kind;
    if (!expect("cpd") || !count(node) || !word(cpd_kind)) return failed();
    if (node >= n_nodes || node == d_node) {
      fail("CPD node index out of range");
      return failed();
    }
    const std::size_t parents = net.dag().parents(node).size();
    if (cpd_kind == "lingauss") {
      if (bins != 0) {
        fail("linear-Gaussian CPD in a discrete model");
        return failed();
      }
      double intercept = 0.0;
      std::size_t k = 0;
      if (!real(intercept) || !count(k)) return failed();
      if (k != parents) {
        fail("CPD weight count does not match structure");
        return failed();
      }
      std::vector<double> weights(k);
      for (double& w : weights) {
        if (!real(w)) return failed();
      }
      double sigma = 0.0;
      if (!real(sigma)) return failed();
      if (!(sigma > 0.0)) {
        fail("linear-Gaussian sigma must be positive");
        return failed();
      }
      net.set_cpd(node, std::make_unique<bn::LinearGaussianCpd>(
                            intercept, std::move(weights), sigma));
    } else if (cpd_kind == "tabular") {
      if (bins == 0) {
        fail("tabular CPD in a continuous model");
        return failed();
      }
      std::optional<bn::TabularCpd> cpd;
      if (!read_tabular(bins, parents, cpd)) return failed();
      net.set_cpd(node,
                  std::make_unique<bn::TabularCpd>(std::move(*cpd)));
    } else {
      fail("unknown CPD kind '" + cpd_kind + "'");
      return failed();
    }
  }
  if (!expect("end")) return failed();
  if (!net.is_complete()) {
    fail("model is missing CPDs");
    return failed();
  }

  return SavedModel{std::move(*workflow), std::move(sharing), bins,
                    std::move(discretizer), leak, std::move(net)};
}

}  // namespace

LoadResult try_load_kert_model(std::istream& in) {
  std::string error;
  std::optional<SavedModel> model = ModelReader(in).read(error);
  if (!model.has_value()) return LoadResult(LoadError{std::move(error)});
  return LoadResult(std::move(*model));
}

LoadResult try_load_from_string(const std::string& text) {
  std::istringstream in(text);
  return try_load_kert_model(in);
}

SavedModel load_kert_model(std::istream& in) {
  LoadResult result = try_load_kert_model(in);
  if (!result) {
    std::fprintf(stderr, "kertbn: load_kert_model: %s\n",
                 result.error().message.c_str());
  }
  KERTBN_EXPECTS(result.has_value() && "malformed model input");
  return std::move(*result);
}

std::string save_to_string(const wf::Workflow& workflow,
                           const wf::ResourceSharing& sharing,
                           const bn::BayesianNetwork& net) {
  std::ostringstream out;
  save_kert_continuous(out, workflow, sharing, net);
  return out.str();
}

SavedModel load_from_string(const std::string& text) {
  std::istringstream in(text);
  return load_kert_model(in);
}

namespace {

constexpr const char* kNetMagic = "kertbn-net";
constexpr int kNetVersion = 1;

/// Writes one learned CPD in the same line format write_learned_cpds uses.
void write_cpd_line(std::ostream& out, std::size_t v, const bn::Cpd& cpd) {
  if (cpd.kind() == bn::CpdKind::kLinearGaussian) {
    const auto& lg = static_cast<const bn::LinearGaussianCpd&>(cpd);
    out << "cpd " << v << " lingauss " << lg.intercept() << ' '
        << lg.weights().size();
    for (double w : lg.weights()) out << ' ' << w;
    out << ' ' << lg.sigma() << '\n';
    return;
  }
  KERTBN_EXPECTS(cpd.kind() == bn::CpdKind::kTabular);
  const auto& tab = static_cast<const bn::TabularCpd&>(cpd);
  out << "cpd " << v << " tabular " << tab.child_cardinality() << ' '
      << tab.parent_cardinalities().size();
  for (std::size_t c : tab.parent_cardinalities()) out << ' ' << c;
  out << ' ' << tab.config_count() * tab.child_cardinality();
  for (std::size_t cfg = 0; cfg < tab.config_count(); ++cfg) {
    for (std::size_t s = 0; s < tab.child_cardinality(); ++s) {
      out << ' ' << tab.probability(cfg, s);
    }
  }
  out << '\n';
}

/// Reads one "cpd <node> <kind> ..." line for load_network, which keeps
/// the historical fail-fast semantics (contract failure on bad input).
std::unique_ptr<bn::Cpd> read_one_cpd(std::istream& in, std::size_t& node) {
  std::string keyword;
  in >> keyword >> node;
  KERTBN_EXPECTS(keyword == "cpd");
  std::string kind;
  in >> kind;
  if (kind == "lingauss") {
    double intercept = 0.0;
    std::size_t k = 0;
    in >> intercept >> k;
    std::vector<double> weights(k);
    for (double& w : weights) in >> w;
    double sigma = 0.0;
    in >> sigma;
    return std::make_unique<bn::LinearGaussianCpd>(intercept,
                                                   std::move(weights), sigma);
  }
  KERTBN_EXPECTS(kind == "tabular");
  std::size_t card = 0;
  std::size_t np = 0;
  in >> card >> np;
  std::vector<std::size_t> pcards(np);
  for (auto& c : pcards) in >> c;
  std::size_t nvals = 0;
  in >> nvals;
  std::vector<double> values(nvals);
  for (double& v : values) in >> v;
  return std::make_unique<bn::TabularCpd>(
      bn::TabularCpd(card, std::move(pcards), std::move(values)));
}

}  // namespace

void save_network(std::ostream& out, const bn::BayesianNetwork& net) {
  KERTBN_EXPECTS(net.is_complete());
  out << std::setprecision(17);
  out << kNetMagic << ' ' << kNetVersion << '\n';
  out << "nodes " << net.size() << '\n';
  for (std::size_t v = 0; v < net.size(); ++v) {
    const bn::Variable& var = net.variable(v);
    // Names are whitespace-free throughout this library (service
    // identifiers); the line format relies on that.
    KERTBN_EXPECTS(var.name.find_first_of(" \t\n") == std::string::npos);
    if (var.is_discrete()) {
      out << "node " << v << " discrete " << var.cardinality << ' '
          << var.name << '\n';
    } else {
      out << "node " << v << " continuous " << var.name << '\n';
    }
  }
  write_structure(out, net);
  out << "cpds " << net.size() << '\n';
  for (std::size_t v = 0; v < net.size(); ++v) {
    write_cpd_line(out, v, net.cpd(v));
  }
  out << "end\n";
}

bn::BayesianNetwork load_network(std::istream& in) {
  std::string keyword;
  int version = 0;
  in >> keyword >> version;
  KERTBN_EXPECTS(keyword == kNetMagic);
  KERTBN_EXPECTS(version == kNetVersion);

  std::size_t n_nodes = 0;
  in >> keyword >> n_nodes;
  KERTBN_EXPECTS(keyword == "nodes");
  bn::BayesianNetwork net;
  for (std::size_t v = 0; v < n_nodes; ++v) {
    std::size_t idx = 0;
    std::string kind;
    in >> keyword >> idx >> kind;
    KERTBN_EXPECTS(keyword == "node" && idx == v);
    if (kind == "discrete") {
      std::size_t card = 0;
      std::string name;
      in >> card >> name;
      net.add_node(bn::Variable::discrete(std::move(name), card));
    } else {
      KERTBN_EXPECTS(kind == "continuous");
      std::string name;
      in >> name;
      net.add_node(bn::Variable::continuous(std::move(name)));
    }
  }

  std::size_t n_edges = 0;
  in >> keyword >> n_edges;
  KERTBN_EXPECTS(keyword == "edges");
  for (std::size_t e = 0; e < n_edges; ++e) {
    std::size_t a = 0;
    std::size_t b = 0;
    in >> keyword >> a >> b;
    KERTBN_EXPECTS(keyword == "edge");
    const bool ok = net.add_edge(a, b);
    KERTBN_EXPECTS(ok);
  }

  std::size_t n_cpds = 0;
  in >> keyword >> n_cpds;
  KERTBN_EXPECTS(keyword == "cpds");
  KERTBN_EXPECTS(n_cpds == n_nodes);
  for (std::size_t i = 0; i < n_cpds; ++i) {
    std::size_t node = 0;
    auto cpd = read_one_cpd(in, node);
    net.set_cpd(node, std::move(cpd));
  }
  in >> keyword;
  KERTBN_EXPECTS(keyword == "end");
  KERTBN_ENSURES(net.is_complete());
  return net;
}

std::string network_to_string(const bn::BayesianNetwork& net) {
  std::ostringstream out;
  save_network(out, net);
  return out.str();
}

bn::BayesianNetwork network_from_string(const std::string& text) {
  std::istringstream in(text);
  return load_network(in);
}

}  // namespace kertbn::core
