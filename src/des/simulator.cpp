#include "des/simulator.hpp"

namespace kertbn::des {

void Simulator::schedule_at(SimTime at, EventFn fn) {
  KERTBN_EXPECTS(at >= now_);
  KERTBN_EXPECTS(static_cast<bool>(fn));
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

void Simulator::schedule_in(SimTime delay, EventFn fn) {
  KERTBN_EXPECTS(delay >= 0.0);
  schedule_at(now_ + delay, std::move(fn));
}

std::size_t Simulator::run_until(SimTime until) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().at <= until) {
    // Moving out of a priority_queue requires const_cast; the element is
    // popped immediately after, so the mutation is safe.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.at;
    ev.fn(*this);
    ++executed;
  }
  // The horizon defines the new "now" even when later events remain
  // pending — callers reason in wall-clock intervals (T_DATA batching).
  if (now_ < until) now_ = until;
  return executed;
}

std::size_t Simulator::run() {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.at;
    ev.fn(*this);
    ++executed;
  }
  return executed;
}

}  // namespace kertbn::des
