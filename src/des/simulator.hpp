#pragma once
/// \file simulator.hpp
/// Discrete-event simulation core: a simulated clock and a time-ordered
/// event queue. The service-oriented system simulator (src/sosim) schedules
/// request arrivals, service completions and monitoring-agent reports on
/// top of this.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/contract.hpp"

namespace kertbn::des {

/// Simulated time in seconds.
using SimTime = double;

/// Event callback; receives the simulator so it can schedule more events.
class Simulator;
using EventFn = std::function<void(Simulator&)>;

/// Time-ordered event executor with FIFO tie-breaking.
class Simulator {
 public:
  Simulator() = default;

  SimTime now() const { return now_; }

  /// Schedules \p fn to run at absolute time \p at (>= now).
  void schedule_at(SimTime at, EventFn fn);

  /// Schedules \p fn to run \p delay seconds from now (>= 0).
  void schedule_in(SimTime delay, EventFn fn);

  /// Runs events until the queue empties or the clock passes \p until.
  /// Returns the number of events executed.
  std::size_t run_until(SimTime until);

  /// Runs the queue dry. Returns the number of events executed.
  std::size_t run();

  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;  // FIFO tie-break for simultaneous events
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace kertbn::des
