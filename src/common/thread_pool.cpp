#include "common/thread_pool.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace kertbn {

namespace pool_obs {
namespace {
obs::Gauge& queue_depth() {
  static obs::Gauge& g =
      obs::MetricsRegistry::instance().gauge("pool.queue_depth");
  return g;
}
obs::Counter& tasks() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("pool.tasks");
  return c;
}
obs::Histogram& wait_ns() {
  static obs::Histogram& h =
      obs::MetricsRegistry::instance().histogram("pool.task_wait_ns");
  return h;
}
obs::Histogram& run_ns() {
  static obs::Histogram& h =
      obs::MetricsRegistry::instance().histogram("pool.task_run_ns");
  return h;
}
}  // namespace

std::uint64_t on_enqueue() {
  if (!obs::enabled()) return 0;
  queue_depth().add(1.0);
  tasks().add(1);
  return obs::now_ns();
}

std::uint64_t on_dequeue(std::uint64_t enqueue_ns) {
  if (enqueue_ns == 0) return 0;
  queue_depth().add(-1.0);
  const std::uint64_t now = obs::now_ns();
  wait_ns().record(now - enqueue_ns);
  return now;
}

void on_complete(std::uint64_t run_start_ns) {
  if (run_start_ns == 0) return;
  run_ns().record(obs::now_ns() - run_start_ns);
}

void on_reject() {
  if (!obs::enabled()) return;
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("kert.pool.rejected_tasks");
  c.add(1);
}

}  // namespace pool_obs

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace kertbn
