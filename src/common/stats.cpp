#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <sstream>

#include "common/contract.hpp"

namespace kertbn {

void RunningStats::add(double x) {
  ++n_;
  if (n_ == 1) {
    mean_ = x;
    m2_ = 0.0;
    min_ = x;
    max_ = x;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double quantile(std::span<const double> xs, double q) {
  KERTBN_EXPECTS(!xs.empty());
  KERTBN_EXPECTS(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double correlation(std::span<const double> xs, std::span<const double> ys) {
  KERTBN_EXPECTS(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double exceedance_probability(std::span<const double> xs, double threshold) {
  if (xs.empty()) return 0.0;
  std::size_t over = 0;
  for (double x : xs) {
    if (x > threshold) ++over;
  }
  return static_cast<double>(over) / static_cast<double>(xs.size());
}

double gaussian_pdf(double x, double m, double sigma) {
  KERTBN_EXPECTS(sigma > 0.0);
  const double z = (x - m) / sigma;
  return std::exp(-0.5 * z * z) /
         (sigma * std::sqrt(2.0 * std::numbers::pi));
}

double gaussian_log_pdf(double x, double m, double sigma) {
  KERTBN_EXPECTS(sigma > 0.0);
  const double z = (x - m) / sigma;
  return -0.5 * z * z - std::log(sigma) -
         0.5 * std::log(2.0 * std::numbers::pi);
}

double gaussian_cdf(double x, double m, double sigma) {
  KERTBN_EXPECTS(sigma > 0.0);
  return 0.5 * std::erfc(-(x - m) / (sigma * std::numbers::sqrt2));
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  KERTBN_EXPECTS(hi > lo);
  KERTBN_EXPECTS(bins > 0);
  width_ = (hi - lo) / static_cast<double>(bins);
}

std::size_t Histogram::bin_of(double x) const {
  if (x <= lo_) return 0;
  if (x >= hi_) return counts_.size() - 1;
  auto b = static_cast<std::size_t>((x - lo_) / width_);
  return std::min(b, counts_.size() - 1);
}

void Histogram::add(double x) {
  ++counts_[bin_of(x)];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

double Histogram::bin_center(std::size_t b) const {
  KERTBN_EXPECTS(b < counts_.size());
  return lo_ + (static_cast<double>(b) + 0.5) * width_;
}

double Histogram::density(std::size_t b) const {
  KERTBN_EXPECTS(b < counts_.size());
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[b]) /
         (static_cast<double>(total_) * width_);
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar =
        static_cast<std::size_t>(static_cast<double>(counts_[b]) /
                                 static_cast<double>(peak) *
                                 static_cast<double>(width));
    out.setf(std::ios::fixed);
    out.precision(3);
    out << bin_center(b) << " | ";
    for (std::size_t i = 0; i < bar; ++i) out << '#';
    out << "  (" << counts_[b] << ")\n";
  }
  return out.str();
}

KernelDensity::KernelDensity(std::span<const double> samples,
                             double bandwidth)
    : samples_(samples.begin(), samples.end()), bandwidth_(bandwidth) {
  KERTBN_EXPECTS(!samples_.empty());
  if (bandwidth_ <= 0.0) {
    // Silverman's rule of thumb; floor keeps degenerate samples usable.
    const double sd = stddev(samples);
    const double n = static_cast<double>(samples_.size());
    bandwidth_ = std::max(1.06 * sd * std::pow(n, -0.2), 1e-6);
  }
}

double KernelDensity::operator()(double x) const {
  double acc = 0.0;
  for (double s : samples_) {
    acc += gaussian_pdf(x, s, bandwidth_);
  }
  return acc / static_cast<double>(samples_.size());
}

}  // namespace kertbn
