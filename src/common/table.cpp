#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/contract.hpp"

namespace kertbn {
namespace {

std::string format_cell(const TableCell& cell, int precision) {
  if (std::holds_alternative<std::string>(cell)) {
    return std::get<std::string>(cell);
  }
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision)
      << std::get<double>(cell);
  return out.str();
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  KERTBN_EXPECTS(!columns_.empty());
}

void Table::add_row(std::vector<TableCell> cells) {
  KERTBN_EXPECTS(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

double Table::number_at(std::size_t row, std::size_t col) const {
  KERTBN_EXPECTS(row < rows_.size());
  KERTBN_EXPECTS(col < columns_.size());
  KERTBN_EXPECTS(std::holds_alternative<double>(rows_[row][col]));
  return std::get<double>(rows_[row][col]);
}

std::string Table::to_string(int precision) const {
  std::vector<std::size_t> widths(columns_.size());
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(format_cell(row[c], precision));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c] + 2))
          << cells[c];
    }
    out << '\n';
  };
  emit_row(columns_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rendered) emit_row(row);
  return out.str();
}

std::string Table::to_csv(int precision) const {
  std::ostringstream out;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c > 0) out << ',';
    out << csv_escape(columns_[c]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      out << csv_escape(format_cell(row[c], precision));
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace kertbn
