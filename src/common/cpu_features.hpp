#pragma once
/// \file cpu_features.hpp
/// Runtime SIMD dispatch for the inference hot path.
///
/// The factor kernels ship three executions of every inner loop — scalar,
/// AVX2/FMA, and AVX-512 — selected once at startup by CPUID probe (the
/// same pattern as the SSE4.2 CRC32C dispatch in src/durable/crc32c.cpp),
/// so one binary runs everywhere and uses the widest units the host has.
///
/// The `KERTBN_SIMD` environment variable overrides the probe for testing
/// (`scalar` | `avx2` | `avx512`); a request the host cannot satisfy is
/// clamped down to the widest supported tier with a one-time warning, so a
/// CI matrix over KERTBN_SIMD is safe on any runner.
///
/// Equivalence contract (see DESIGN "Query serving"): the scalar tier is
/// bit-identical to the legacy Factor operations; SIMD tiers may
/// re-associate summations and are bounded by tolerance-based equivalence
/// tests (<= 1e-12 relative on posteriors). Products are single multiplies
/// per element and stay bit-exact on every tier.

namespace kertbn::simd {

/// Dispatch tiers, widest last. Numeric values are stable: they are
/// exported as the `kert.query.simd_tier` gauge.
enum class Tier {
  kScalar = 0,
  kAvx2 = 1,    ///< AVX2 + FMA, 4 doubles per op.
  kAvx512 = 2,  ///< AVX-512 F/DQ, 8 doubles per op.
};

const char* to_string(Tier tier);

/// Widest tier the host CPU supports (probed once).
Tier highest_supported();

/// The tier kernels dispatch on: min(highest_supported, KERTBN_SIMD
/// override). Resolved once on first call, then a relaxed atomic read.
Tier active_tier();

/// Overrides the active tier (clamped to highest_supported(); returns the
/// tier actually installed). Tests use this to run every tier in one
/// process; plans are tier-independent, so switching mid-run is safe.
Tier set_active_tier(Tier tier);

}  // namespace kertbn::simd
