#pragma once
/// \file rng.hpp
/// Deterministic, explicitly-seeded random number generation.
///
/// Every stochastic component in kertbn takes an Rng by reference so that
/// experiments are exactly reproducible from a single seed.  The generator is
/// xoshiro256** (Blackman & Vigna) seeded through splitmix64 — fast,
/// high-quality, and tiny enough to embed per-agent in the decentralized
/// learning fabric without false sharing concerns.

#include <array>
#include <cstdint>
#include <vector>

namespace kertbn {

/// xoshiro256** pseudo-random generator with convenience distributions.
///
/// Satisfies the essentials of UniformRandomBitGenerator so it can also be
/// handed to <random> distributions if desired.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes the state from \p seed; identical seeds replay identical
  /// streams.
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit draw.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal draw (Box-Muller with caching).
  double normal();

  /// Normal draw with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma);

  /// Exponential draw with the given rate (> 0).
  double exponential(double rate);

  /// Log-normal draw: exp(N(mu, sigma^2)).
  double lognormal(double mu, double sigma);

  /// Gamma draw with shape k > 0 and scale theta > 0
  /// (Marsaglia-Tsang for k >= 1, boosted for k < 1).
  double gamma(double shape, double scale);

  /// Pareto (type I) draw with scale xm > 0 and tail index alpha > 0.
  double pareto(double xm, double alpha);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Samples an index according to the (not necessarily normalized)
  /// non-negative weights. Precondition: at least one weight > 0.
  std::size_t categorical(const std::vector<double>& weights);

  /// Derives an independent child generator (for per-agent streams).
  Rng split();

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = uniform_index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// A uniformly random permutation of 0..n-1.
  std::vector<std::size_t> permutation(std::size_t n);

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace kertbn
