#pragma once
/// \file stats.hpp
/// Streaming and batch statistics used across the simulator, the BN engine
/// and the benchmark harness: running moments, quantiles, histograms,
/// Gaussian pdf/cdf helpers and a small kernel-density estimator (used to
/// render the dComp / pAccel posterior-vs-prior figures).

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace kertbn {

/// Numerically stable running mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  /// Folds one observation into the accumulator.
  void add(double x);

  /// Merges another accumulator (parallel reduction friendly).
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance (0 when fewer than two observations).
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return n_ > 0 ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sample mean of \p xs (0 for an empty span).
double mean(std::span<const double> xs);

/// Unbiased sample variance of \p xs (0 when fewer than two elements).
double variance(std::span<const double> xs);

/// Sample standard deviation.
double stddev(std::span<const double> xs);

/// Linear-interpolation quantile, q in [0, 1]. Copies and sorts internally.
double quantile(std::span<const double> xs, double q);

/// Pearson correlation coefficient; 0 when either side is constant.
double correlation(std::span<const double> xs, std::span<const double> ys);

/// Empirical exceedance probability P(X > threshold).
double exceedance_probability(std::span<const double> xs, double threshold);

/// Standard normal density.
double gaussian_pdf(double x, double mean, double sigma);

/// Log of the normal density (safe for tiny sigma via flooring upstream).
double gaussian_log_pdf(double x, double mean, double sigma);

/// Standard normal CDF via erfc.
double gaussian_cdf(double x, double mean, double sigma);

/// Fixed-width histogram over [lo, hi] with saturating edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(std::span<const double> xs);

  std::size_t bins() const { return counts_.size(); }
  std::size_t count() const { return total_; }
  std::size_t bin_count(std::size_t b) const { return counts_[b]; }
  /// Center of bin \p b.
  double bin_center(std::size_t b) const;
  double bin_width() const { return width_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  /// Bin index for \p x, clamped into range.
  std::size_t bin_of(double x) const;
  /// Normalized density value of bin \p b (integrates to ~1).
  double density(std::size_t b) const;

  /// Renders a textual bar chart (used by examples and figure benches).
  std::string ascii(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Gaussian kernel-density estimate evaluated on a regular grid.
/// Bandwidth defaults to Silverman's rule of thumb.
class KernelDensity {
 public:
  explicit KernelDensity(std::span<const double> samples,
                         double bandwidth = 0.0);

  double bandwidth() const { return bandwidth_; }
  /// Density estimate at \p x.
  double operator()(double x) const;

 private:
  std::vector<double> samples_;
  double bandwidth_;
};

}  // namespace kertbn
