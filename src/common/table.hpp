#pragma once
/// \file table.hpp
/// Small fixed-schema result table: collects experiment rows, renders them as
/// an aligned console table and/or CSV. Every figure bench emits its series
/// through this so the output can be diffed against the paper's plots.

#include <cstddef>
#include <string>
#include <variant>
#include <vector>

namespace kertbn {

/// A cell is either text or a number (numbers are formatted with fixed
/// precision when rendered).
using TableCell = std::variant<std::string, double>;

/// Row/column result table with aligned console and CSV rendering.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Appends a row; must match the column count.
  void add_row(std::vector<TableCell> cells);

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return columns_.size(); }
  const std::vector<std::string>& column_names() const { return columns_; }

  /// Numeric value at (row, col); throws via contract if the cell is text.
  double number_at(std::size_t row, std::size_t col) const;

  /// Aligned, human-readable rendering.
  std::string to_string(int precision = 4) const;

  /// RFC-4180-ish CSV rendering.
  std::string to_csv(int precision = 6) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<TableCell>> rows_;
};

}  // namespace kertbn
