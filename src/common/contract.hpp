#pragma once
/// \file contract.hpp
/// Lightweight contract checking (C++ Core Guidelines I.6/I.8 style).
///
/// KERTBN_EXPECTS / KERTBN_ENSURES abort with a diagnostic on violation.
/// They stay enabled in release builds: the library is the product of a
/// research reproduction and silent precondition violations would corrupt
/// measured results far more expensively than the branch costs.

#include <cstdio>
#include <cstdlib>

namespace kertbn::detail {

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  std::fprintf(stderr, "kertbn: %s violated: (%s) at %s:%d\n", kind, expr,
               file, line);
  std::abort();
}

}  // namespace kertbn::detail

#define KERTBN_EXPECTS(cond)                                               \
  ((cond) ? static_cast<void>(0)                                           \
          : ::kertbn::detail::contract_fail("precondition", #cond,         \
                                            __FILE__, __LINE__))

#define KERTBN_ENSURES(cond)                                               \
  ((cond) ? static_cast<void>(0)                                           \
          : ::kertbn::detail::contract_fail("postcondition", #cond,        \
                                            __FILE__, __LINE__))

#define KERTBN_ASSERT(cond)                                                \
  ((cond) ? static_cast<void>(0)                                           \
          : ::kertbn::detail::contract_fail("invariant", #cond, __FILE__,  \
                                            __LINE__))
