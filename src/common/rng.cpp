#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/contract.hpp"

namespace kertbn {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
  // xoshiro must not start from the all-zero state.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
  has_cached_normal_ = false;
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  KERTBN_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  KERTBN_EXPECTS(n > 0);
  // Lemire's nearly-divisionless bounded generation with rejection.
  std::uint64_t x = (*this)();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<unsigned __int128>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  KERTBN_EXPECTS(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 strictly positive to keep log() finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double sigma) {
  KERTBN_EXPECTS(sigma >= 0.0);
  return mean + sigma * normal();
}

double Rng::exponential(double rate) {
  KERTBN_EXPECTS(rate > 0.0);
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::gamma(double shape, double scale) {
  KERTBN_EXPECTS(shape > 0.0);
  KERTBN_EXPECTS(scale > 0.0);
  if (shape < 1.0) {
    // Boost: Gamma(k) = Gamma(k+1) * U^{1/k}.
    const double u = std::max(uniform(), 1e-300);
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia-Tsang squeeze method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

double Rng::pareto(double xm, double alpha) {
  KERTBN_EXPECTS(xm > 0.0);
  KERTBN_EXPECTS(alpha > 0.0);
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

bool Rng::bernoulli(double p) {
  KERTBN_EXPECTS(p >= 0.0 && p <= 1.0);
  return uniform() < p;
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    KERTBN_EXPECTS(w >= 0.0);
    total += w;
  }
  KERTBN_EXPECTS(total > 0.0);
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  // Floating-point slack: fall back to the last positive weight.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::split() { return Rng((*this)()); }

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  shuffle(p);
  return p;
}

}  // namespace kertbn
