#include "common/cpu_features.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace kertbn::simd {
namespace {

Tier probe_highest() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512dq")) {
    return Tier::kAvx512;
  }
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Tier::kAvx2;
  }
#endif
  return Tier::kScalar;
}

/// Parses KERTBN_SIMD; returns the probed tier when unset or malformed.
Tier initial_tier() {
  const Tier supported = probe_highest();
  const char* env = std::getenv("KERTBN_SIMD");
  if (env == nullptr || *env == '\0') return supported;
  Tier want = supported;
  if (std::strcmp(env, "scalar") == 0) {
    want = Tier::kScalar;
  } else if (std::strcmp(env, "avx2") == 0) {
    want = Tier::kAvx2;
  } else if (std::strcmp(env, "avx512") == 0) {
    want = Tier::kAvx512;
  } else {
    std::fprintf(stderr,
                 "kertbn: ignoring unknown KERTBN_SIMD='%s' "
                 "(expected scalar|avx2|avx512)\n",
                 env);
    return supported;
  }
  if (static_cast<int>(want) > static_cast<int>(supported)) {
    std::fprintf(stderr,
                 "kertbn: KERTBN_SIMD=%s not supported by this CPU; "
                 "falling back to %s\n",
                 env, to_string(supported));
    return supported;
  }
  return want;
}

std::atomic<int>& tier_cell() {
  static std::atomic<int> cell{static_cast<int>(initial_tier())};
  return cell;
}

}  // namespace

const char* to_string(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

Tier highest_supported() {
  static const Tier tier = probe_highest();
  return tier;
}

Tier active_tier() {
  return static_cast<Tier>(tier_cell().load(std::memory_order_relaxed));
}

Tier set_active_tier(Tier tier) {
  Tier t = tier;
  if (static_cast<int>(t) > static_cast<int>(highest_supported())) {
    t = highest_supported();
  }
  tier_cell().store(static_cast<int>(t), std::memory_order_relaxed);
  return t;
}

}  // namespace kertbn::simd
