#pragma once
/// \file thread_pool.hpp
/// Minimal task-based thread pool (C++ Core Guidelines CP.4: think in tasks).
///
/// Used by the decentralized learning fabric to actually run per-service CPD
/// computations concurrently, and by the benchmark harness to parallelize
/// independent experiment repetitions.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace kertbn {

/// Fixed-size pool executing submitted tasks FIFO. Destruction joins all
/// workers after draining the queue.
class ThreadPool {
 public:
  /// Spawns \p threads workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Schedules \p fn and returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace kertbn
