#pragma once
/// \file thread_pool.hpp
/// Minimal task-based thread pool (C++ Core Guidelines CP.4: think in tasks).
///
/// Used by the decentralized learning fabric to actually run per-service CPD
/// computations concurrently, and by the benchmark harness to parallelize
/// independent experiment repetitions.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/span.hpp"

namespace kertbn {

/// Telemetry hooks around task scheduling (pool.queue_depth gauge,
/// pool.tasks counter, pool.task_wait_ns / pool.task_run_ns histograms).
/// Split out of the template so the metric handles are resolved once.
namespace pool_obs {
/// Queue-depth up, task counted; returns the enqueue timestamp (0 when
/// obs is runtime-disabled, telling the dequeue side to skip the clock).
std::uint64_t on_enqueue();
/// Queue-depth down, wait-time recorded; returns the run-start timestamp.
std::uint64_t on_dequeue(std::uint64_t enqueue_ns);
/// Run-time recorded (no-op when \p run_start_ns is 0).
void on_complete(std::uint64_t run_start_ns);
/// Bounded-queue rejection counted (kert.pool.rejected_tasks).
void on_reject();
}  // namespace pool_obs

/// Fixed-size pool executing submitted tasks FIFO. Destruction joins all
/// workers after draining the queue.
class ThreadPool {
 public:
  /// Spawns \p threads workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Schedules \p fn and returns a future for its result. The submitting
  /// thread's span context travels with the task, so spans opened inside
  /// pooled work nest under the submitting span (see obs/span.hpp).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
#ifdef KERTBN_OBS_DISABLED
      queue_.emplace([task] { (*task)(); });
#else
      queue_.emplace([task, ctx = obs::current_context(),
                      enqueue_ns = pool_obs::on_enqueue()] {
        const std::uint64_t run_start = pool_obs::on_dequeue(enqueue_ns);
        obs::ContextGuard guard(ctx);
        (*task)();
        pool_obs::on_complete(run_start);
      });
#endif
    }
    cv_.notify_one();
    return result;
  }

  /// Bounded-admission variant of submit: refuses (returning nullopt and
  /// bumping kert.pool.rejected_tasks) when the queue already holds
  /// `queue_limit` tasks. With no limit set it never refuses. `submit`
  /// stays unbounded — existing callers rely on it always accepting.
  template <typename F>
  auto try_submit(F&& fn)
      -> std::optional<std::future<std::invoke_result_t<F>>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (queue_limit_ != 0 && queue_.size() >= queue_limit_) {
        pool_obs::on_reject();
        return std::nullopt;
      }
#ifdef KERTBN_OBS_DISABLED
      queue_.emplace([task] { (*task)(); });
#else
      queue_.emplace([task, ctx = obs::current_context(),
                      enqueue_ns = pool_obs::on_enqueue()] {
        const std::uint64_t run_start = pool_obs::on_dequeue(enqueue_ns);
        obs::ContextGuard guard(ctx);
        (*task)();
        pool_obs::on_complete(run_start);
      });
#endif
    }
    cv_.notify_one();
    return result;
  }

  /// Caps the pending-task queue consulted by try_submit (0 = unbounded,
  /// the default). Safe to call while workers run.
  void set_queue_limit(std::size_t limit) {
    std::lock_guard lock(mutex_);
    queue_limit_ = limit;
  }
  std::size_t queue_depth() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::size_t queue_limit_ = 0;
};

}  // namespace kertbn
