#pragma once
/// \file stopwatch.hpp
/// Monotonic wall-clock stopwatch used by the learning-time experiments
/// (Figures 3-5 report model construction times).

#include <chrono>

namespace kertbn {

/// Simple steady_clock stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = std::chrono::steady_clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
  }

  /// Milliseconds elapsed.
  double millis() const { return seconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace kertbn
