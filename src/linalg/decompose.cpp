#include "linalg/decompose.hpp"

#include <cmath>

namespace kertbn::la {

std::optional<Cholesky> Cholesky::factor(const Matrix& a) {
  if (a.rows() != a.cols()) return std::nullopt;
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) return std::nullopt;
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / ljj;
    }
  }
  return Cholesky(std::move(l));
}

Vector Cholesky::solve_lower(const Vector& b) const {
  const std::size_t n = l_.rows();
  KERTBN_EXPECTS(b.size() == n);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l_(i, k) * y[k];
    y[i] = s / l_(i, i);
  }
  return y;
}

Vector Cholesky::solve(const Vector& b) const {
  const std::size_t n = l_.rows();
  Vector y = solve_lower(b);
  // Back substitution with L^T.
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l_(k, ii) * x[k];
    x[ii] = s / l_(ii, ii);
  }
  return x;
}

Matrix Cholesky::solve(const Matrix& b) const {
  KERTBN_EXPECTS(b.rows() == l_.rows());
  Matrix x(b.rows(), b.cols());
  Vector col(b.rows());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < b.rows(); ++r) col[r] = b(r, c);
    const Vector sol = solve(col);
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = sol[r];
  }
  return x;
}

double Cholesky::log_det() const {
  double s = 0.0;
  for (std::size_t i = 0; i < l_.rows(); ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

std::optional<Lu> Lu::factor(const Matrix& a) {
  if (a.rows() != a.cols()) return std::nullopt;
  const std::size_t n = a.rows();
  Matrix lu = a;
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  int sign = 1;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    double best = std::abs(lu(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::abs(lu(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-13) return std::nullopt;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu(pivot, c), lu(col, c));
      std::swap(perm[pivot], perm[col]);
      sign = -sign;
    }
    const double d = lu(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = lu(r, col) / d;
      lu(r, col) = factor;
      for (std::size_t c = col + 1; c < n; ++c) {
        lu(r, c) -= factor * lu(col, c);
      }
    }
  }
  return Lu(std::move(lu), std::move(perm), sign);
}

Vector Lu::solve(const Vector& b) const {
  const std::size_t n = lu_.rows();
  KERTBN_EXPECTS(b.size() == n);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[perm_[i]];
    for (std::size_t k = 0; k < i; ++k) s -= lu_(i, k) * y[k];
    y[i] = s;
  }
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= lu_(ii, k) * x[k];
    x[ii] = s / lu_(ii, ii);
  }
  return x;
}

Matrix Lu::solve(const Matrix& b) const {
  KERTBN_EXPECTS(b.rows() == lu_.rows());
  Matrix x(b.rows(), b.cols());
  Vector col(b.rows());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < b.rows(); ++r) col[r] = b(r, c);
    const Vector sol = solve(col);
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = sol[r];
  }
  return x;
}

double Lu::determinant() const {
  double d = sign_;
  for (std::size_t i = 0; i < lu_.rows(); ++i) d *= lu_(i, i);
  return d;
}

Matrix inverse(const Matrix& a) {
  auto lu = Lu::factor(a);
  KERTBN_EXPECTS(lu.has_value());
  return lu->solve(Matrix::identity(a.rows()));
}

std::optional<Matrix> try_inverse(const Matrix& a) {
  auto lu = Lu::factor(a);
  if (!lu.has_value()) return std::nullopt;
  return lu->solve(Matrix::identity(a.rows()));
}

std::optional<Vector> try_solve_normal_equations(const Matrix& xtx,
                                                 const Vector& xty,
                                                 double ridge) {
  KERTBN_EXPECTS(xtx.rows() == xtx.cols());
  KERTBN_EXPECTS(xtx.rows() == xty.size());
  const std::size_t p = xtx.rows();
  Matrix a = xtx;
  for (std::size_t i = 0; i < p; ++i) a(i, i) += ridge;
  auto chol = Cholesky::factor(a);
  if (chol.has_value()) return chol->solve(xty);
  // Severely ill-conditioned design: escalate the ridge until SPD.
  for (double boost = 1e-6; boost <= 1e3; boost *= 10.0) {
    Matrix bumped = a;
    for (std::size_t i = 0; i < p; ++i) bumped(i, i) += boost;
    if (auto c2 = Cholesky::factor(bumped)) return c2->solve(xty);
  }
  return std::nullopt;
}

Vector solve_normal_equations(const Matrix& xtx, const Vector& xty,
                              double ridge) {
  auto beta = try_solve_normal_equations(xtx, xty, ridge);
  KERTBN_ASSERT(beta.has_value() &&
                "solve_normal_equations: design matrix unusable");
  if (!beta.has_value()) return Vector(xtx.rows());
  return std::move(*beta);
}

Vector least_squares(const Matrix& x, const Vector& y, double ridge) {
  KERTBN_EXPECTS(x.rows() == y.size());
  KERTBN_EXPECTS(x.rows() >= 1);
  const std::size_t p = x.cols();
  // Normal equations: (XᵀX + ridge·I) beta = Xᵀy.
  Matrix xtx(p, p);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.row(r);
    for (std::size_t i = 0; i < p; ++i) {
      const double xi = row[i];
      if (xi == 0.0) continue;
      for (std::size_t j = i; j < p; ++j) {
        xtx(i, j) += xi * row[j];
      }
    }
  }
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j < i; ++j) xtx(i, j) = xtx(j, i);
  }
  Vector xty(p);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.row(r);
    for (std::size_t i = 0; i < p; ++i) xty[i] += row[i] * y[r];
  }
  return solve_normal_equations(xtx, xty, ridge);
}

Vector column_means(const Matrix& data) {
  const std::size_t n = data.rows();
  const std::size_t p = data.cols();
  Vector mu(p);
  if (n == 0) return mu;
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = data.row(r);
    for (std::size_t c = 0; c < p; ++c) mu[c] += row[c];
  }
  for (std::size_t c = 0; c < p; ++c) mu[c] /= static_cast<double>(n);
  return mu;
}

Matrix sample_covariance(const Matrix& data) {
  const std::size_t n = data.rows();
  const std::size_t p = data.cols();
  KERTBN_EXPECTS(n >= 2);
  const Vector mu = column_means(data);
  Matrix cov(p, p);
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = data.row(r);
    for (std::size_t i = 0; i < p; ++i) {
      const double di = row[i] - mu[i];
      for (std::size_t j = i; j < p; ++j) {
        cov(i, j) += di * (row[j] - mu[j]);
      }
    }
  }
  const double denom = static_cast<double>(n - 1);
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = i; j < p; ++j) {
      cov(i, j) /= denom;
      cov(j, i) = cov(i, j);
    }
  }
  return cov;
}

}  // namespace kertbn::la
