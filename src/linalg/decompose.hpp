#pragma once
/// \file decompose.hpp
/// Factorizations and solvers the Bayesian-network engine needs: Cholesky for
/// covariance matrices (sampling, conditioning, log-determinants), a
/// partial-pivot LU for general systems, and ordinary least squares for
/// linear-Gaussian CPD fitting.

#include <optional>

#include "linalg/matrix.hpp"

namespace kertbn::la {

/// Cholesky factorization A = L·Lᵀ of a symmetric positive-definite matrix.
class Cholesky {
 public:
  /// Factors \p a; returns std::nullopt if \p a is not (numerically) SPD.
  static std::optional<Cholesky> factor(const Matrix& a);

  /// Lower-triangular factor L.
  const Matrix& lower() const { return l_; }

  /// Solves A x = b.
  Vector solve(const Vector& b) const;

  /// Solves A X = B column-by-column.
  Matrix solve(const Matrix& b) const;

  /// log(det A) = 2 Σ log L_ii — used for Gaussian log-likelihoods.
  double log_det() const;

  /// Solves L y = b (forward substitution).
  Vector solve_lower(const Vector& b) const;

 private:
  explicit Cholesky(Matrix l) : l_(std::move(l)) {}
  Matrix l_;
};

/// LU factorization with partial pivoting for general square systems.
class Lu {
 public:
  /// Factors \p a; returns std::nullopt when singular to working precision.
  static std::optional<Lu> factor(const Matrix& a);

  Vector solve(const Vector& b) const;
  Matrix solve(const Matrix& b) const;
  double determinant() const;

 private:
  Lu(Matrix lu, std::vector<std::size_t> perm, int sign)
      : lu_(std::move(lu)), perm_(std::move(perm)), sign_(sign) {}
  Matrix lu_;
  std::vector<std::size_t> perm_;
  int sign_;
};

/// Inverse via LU; contract-fails on singular input. Prefer solve() forms.
Matrix inverse(const Matrix& a);

/// Inverse via LU that reports failure instead of aborting: returns
/// std::nullopt when \p a is singular to working precision. The guard path
/// of the model manager uses this to demote a degenerate reconstruction to
/// a fallback instead of crashing the pipeline.
std::optional<Matrix> try_inverse(const Matrix& a);

/// Ordinary least squares fit of y ≈ X·beta using the normal equations with
/// Tikhonov ridge \p ridge on the diagonal (keeps collinear designs stable —
/// common when two services' elapsed times move in lockstep).
Vector least_squares(const Matrix& x, const Vector& y, double ridge = 1e-9);

/// Solves the ridge-stabilized normal equations (XᵀX + ridge·I) beta = Xᵀy
/// given the already-accumulated moments \p xtx (= XᵀX, without ridge) and
/// \p xty (= Xᵀy). This is the back half of least_squares(), exposed so
/// callers holding cached sufficient statistics (incremental window
/// reconstruction) solve through the exact same code path — including the
/// ridge-escalation fallback for ill-conditioned designs.
Vector solve_normal_equations(const Matrix& xtx, const Vector& xty,
                              double ridge = 1e-9);

/// Like solve_normal_equations(), but reports an unusable design (Gram
/// matrix not SPD even after the full ridge-escalation ladder — e.g. a
/// non-finite moment from corrupted inputs) as std::nullopt instead of
/// contract-failing. solve_normal_equations() delegates here and asserts.
std::optional<Vector> try_solve_normal_equations(const Matrix& xtx,
                                                 const Vector& xty,
                                                 double ridge = 1e-9);

/// Sample mean of each column of a data matrix (rows = observations).
Vector column_means(const Matrix& data);

/// Unbiased sample covariance of a data matrix (rows = observations).
/// Requires at least two rows.
Matrix sample_covariance(const Matrix& data);

}  // namespace kertbn::la
