#pragma once
/// \file matrix.hpp
/// Dense row-major matrix/vector types sized for Bayesian-network work:
/// covariance matrices of a few hundred variables at most. Storage is a
/// single contiguous buffer (Core Guidelines Per.16/Per.19: compact data,
/// predictable access).

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/contract.hpp"

namespace kertbn::la {

/// Dense column vector.
class Vector {
 public:
  Vector() = default;
  explicit Vector(std::size_t n, double fill = 0.0) : data_(n, fill) {}
  Vector(std::initializer_list<double> xs) : data_(xs) {}
  explicit Vector(std::vector<double> xs) : data_(std::move(xs)) {}

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator[](std::size_t i) {
    KERTBN_EXPECTS(i < data_.size());
    return data_[i];
  }
  double operator[](std::size_t i) const {
    KERTBN_EXPECTS(i < data_.size());
    return data_[i];
  }

  std::span<const double> span() const { return data_; }
  std::span<double> span() { return data_; }
  const std::vector<double>& values() const { return data_; }

  Vector& operator+=(const Vector& rhs);
  Vector& operator-=(const Vector& rhs);
  Vector& operator*=(double s);

  friend Vector operator+(Vector lhs, const Vector& rhs) { return lhs += rhs; }
  friend Vector operator-(Vector lhs, const Vector& rhs) { return lhs -= rhs; }
  friend Vector operator*(Vector lhs, double s) { return lhs *= s; }
  friend Vector operator*(double s, Vector rhs) { return rhs *= s; }

  /// Euclidean norm.
  double norm() const;

  std::string to_string(int precision = 4) const;

 private:
  std::vector<double> data_;
};

/// Inner product; sizes must match.
double dot(const Vector& a, const Vector& b);

/// Dense row-major matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer lists; rows must be equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);
  /// Diagonal matrix from a vector.
  static Matrix diagonal(const Vector& d);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    KERTBN_EXPECTS(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    KERTBN_EXPECTS(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Contiguous row view.
  std::span<const double> row(std::size_t r) const {
    KERTBN_EXPECTS(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<double> row(std::size_t r) {
    KERTBN_EXPECTS(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  Matrix transposed() const;

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);

  friend Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
  friend Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
  friend Matrix operator*(Matrix lhs, double s) { return lhs *= s; }
  friend Matrix operator*(double s, Matrix rhs) { return rhs *= s; }

  /// Matrix product (ikj loop order for cache-friendliness).
  friend Matrix operator*(const Matrix& a, const Matrix& b);
  /// Matrix-vector product.
  friend Vector operator*(const Matrix& a, const Vector& x);

  /// Extracts the sub-matrix with the given row and column index sets.
  Matrix submatrix(std::span<const std::size_t> row_idx,
                   std::span<const std::size_t> col_idx) const;

  /// Maximum absolute entry difference against \p other (shape must match).
  double max_abs_diff(const Matrix& other) const;

  /// True when the matrix is square and symmetric within \p tol.
  bool is_symmetric(double tol = 1e-9) const;

  std::string to_string(int precision = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace kertbn::la
