#include "linalg/matrix.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

namespace kertbn::la {

Vector& Vector::operator+=(const Vector& rhs) {
  KERTBN_EXPECTS(size() == rhs.size());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& rhs) {
  KERTBN_EXPECTS(size() == rhs.size());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Vector& Vector::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

double Vector::norm() const { return std::sqrt(dot(*this, *this)); }

std::string Vector::to_string(int precision) const {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << '[';
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (i > 0) out << ", ";
    out << data_[i];
  }
  out << ']';
  return out.str();
}

double dot(const Vector& a, const Vector& b) {
  KERTBN_EXPECTS(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ > 0 ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    KERTBN_EXPECTS(r.size() == cols_);
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(const Vector& d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  KERTBN_EXPECTS(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  KERTBN_EXPECTS(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  KERTBN_EXPECTS(a.cols_ == b.rows_);
  Matrix c(a.rows_, b.cols_);
  for (std::size_t i = 0; i < a.rows_; ++i) {
    for (std::size_t k = 0; k < a.cols_; ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const double* brow = b.data_.data() + k * b.cols_;
      double* crow = c.data_.data() + i * c.cols_;
      for (std::size_t j = 0; j < b.cols_; ++j) {
        crow[j] += aik * brow[j];
      }
    }
  }
  return c;
}

Vector operator*(const Matrix& a, const Vector& x) {
  KERTBN_EXPECTS(a.cols_ == x.size());
  Vector y(a.rows_);
  for (std::size_t i = 0; i < a.rows_; ++i) {
    double s = 0.0;
    const double* arow = a.data_.data() + i * a.cols_;
    for (std::size_t j = 0; j < a.cols_; ++j) s += arow[j] * x[j];
    y[i] = s;
  }
  return y;
}

Matrix Matrix::submatrix(std::span<const std::size_t> row_idx,
                         std::span<const std::size_t> col_idx) const {
  Matrix out(row_idx.size(), col_idx.size());
  for (std::size_t r = 0; r < row_idx.size(); ++r) {
    KERTBN_EXPECTS(row_idx[r] < rows_);
    for (std::size_t c = 0; c < col_idx.size(); ++c) {
      KERTBN_EXPECTS(col_idx[c] < cols_);
      out(r, c) = (*this)(row_idx[r], col_idx[c]);
    }
  }
  return out;
}

double Matrix::max_abs_diff(const Matrix& other) const {
  KERTBN_EXPECTS(rows_ == other.rows_ && cols_ == other.cols_);
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
  }
  return worst;
}

bool Matrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = r + 1; c < cols_; ++c) {
      if (std::abs((*this)(r, c) - (*this)(c, r)) > tol) return false;
    }
  }
  return true;
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision);
  for (std::size_t r = 0; r < rows_; ++r) {
    out << (r == 0 ? "[[" : " [");
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c > 0) out << ", ";
      out << (*this)(r, c);
    }
    out << (r + 1 == rows_ ? "]]" : "]\n");
  }
  return out.str();
}

}  // namespace kertbn::la
