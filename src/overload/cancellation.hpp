#pragma once
/// \file cancellation.hpp
/// Cooperative cancellation for long-running work (model reconstruction).
/// A CancellationSource owns the flag; CancellationTokens are cheap copies
/// that observers poll. The flag itself is a plain `std::atomic<bool>` so
/// lower layers (e.g. bn::learn_parameters) can consume a raw pointer to
/// it without depending on this library — cancellation crosses library
/// boundaries as `const std::atomic<bool>*`, nothing richer.
///
/// Cancellation here is *advisory*: setting it never interrupts anything;
/// workers notice at their next check point and unwind along ordinary
/// return paths (the ModelManager's last-known-good restore makes an
/// aborted rebuild indistinguishable from a failed one).

#include <atomic>
#include <memory>

namespace kertbn::ov {

class CancellationToken;

/// Owner side: request_cancel() flips the shared flag; reset() re-arms it
/// for the next unit of work (tokens handed out earlier keep observing the
/// same flag, so reset only between units of work, not mid-flight).
class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void request_cancel() { flag_->store(true, std::memory_order_relaxed); }
  void reset() { flag_->store(false, std::memory_order_relaxed); }
  bool cancel_requested() const {
    return flag_->load(std::memory_order_relaxed);
  }

  CancellationToken token() const;

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Observer side. Default-constructed tokens are never cancelled.
class CancellationToken {
 public:
  CancellationToken() = default;

  bool cancelled() const {
    return flag_ && flag_->load(std::memory_order_relaxed);
  }
  /// Raw flag for layers that must not depend on src/overload (nullptr for
  /// a default-constructed token). Lifetime follows the source.
  const std::atomic<bool>* flag() const { return flag_.get(); }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<std::atomic<bool>> flag_;
};

inline CancellationToken CancellationSource::token() const {
  return CancellationToken(flag_);
}

}  // namespace kertbn::ov
