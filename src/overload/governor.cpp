#include "overload/governor.hpp"

#include <algorithm>

namespace kertbn::ov {

namespace {

struct GovernorMetrics {
  obs::Gauge& level = obs::MetricsRegistry::instance().gauge(
      "kert.overload.level");
  obs::Gauge& score = obs::MetricsRegistry::instance().gauge(
      "kert.overload.score");
  obs::Counter& transitions = obs::MetricsRegistry::instance().counter(
      "kert.overload.transitions");
  obs::Counter* admitted[kWorkClassCount] = {
      &obs::MetricsRegistry::instance().counter(
          "kert.overload.admitted.ingest"),
      &obs::MetricsRegistry::instance().counter(
          "kert.overload.admitted.reconstruction"),
      &obs::MetricsRegistry::instance().counter(
          "kert.overload.admitted.query"),
  };
  obs::Counter* rejected[kWorkClassCount] = {
      &obs::MetricsRegistry::instance().counter(
          "kert.overload.rejected.ingest"),
      &obs::MetricsRegistry::instance().counter(
          "kert.overload.rejected.reconstruction"),
      &obs::MetricsRegistry::instance().counter(
          "kert.overload.rejected.query"),
  };

  static GovernorMetrics& get() {
    static GovernorMetrics m;
    return m;
  }
};

/// Token cost multiplier for one unit of \p cls work at \p level; a
/// negative multiplier means the class is refused outright at that level.
double cost_factor(PressureLevel level, WorkClass cls) {
  switch (level) {
    case PressureLevel::kNormal:
      return 1.0;
    case PressureLevel::kThrottled:
      return cls == WorkClass::kReconstruction ? 2.0 : 1.0;
    case PressureLevel::kShedding:
      return cls == WorkClass::kReconstruction ? -1.0 : 2.0;
    case PressureLevel::kEmergency:
      return cls == WorkClass::kReconstruction ? -1.0 : 4.0;
  }
  return 1.0;
}

}  // namespace

const char* to_string(WorkClass cls) {
  switch (cls) {
    case WorkClass::kIngest:
      return "ingest";
    case WorkClass::kReconstruction:
      return "reconstruction";
    case WorkClass::kQuery:
      return "query";
  }
  return "unknown";
}

const char* to_string(PressureLevel level) {
  switch (level) {
    case PressureLevel::kNormal:
      return "normal";
    case PressureLevel::kThrottled:
      return "throttled";
    case PressureLevel::kShedding:
      return "shedding";
    case PressureLevel::kEmergency:
      return "emergency";
  }
  return "unknown";
}

bool TokenBucket::try_take(double now_s, double cost) {
  if (rate_ <= 0.0 && burst_ <= 0.0) return true;  // unconfigured: open
  if (!primed_) {
    primed_ = true;
    last_refill_s_ = now_s;
  }
  const double elapsed = std::max(0.0, now_s - last_refill_s_);
  last_refill_s_ = now_s;
  tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
  if (tokens_ + 1e-12 < cost) return false;
  tokens_ -= cost;
  return true;
}

PressureGovernor::PressureGovernor() : PressureGovernor(Config{}) {}

PressureGovernor::PressureGovernor(Config config) : config_(config) {
  buckets_[static_cast<std::size_t>(WorkClass::kIngest)] =
      TokenBucket(config_.ingest_rate, config_.ingest_burst);
  buckets_[static_cast<std::size_t>(WorkClass::kReconstruction)] =
      TokenBucket(config_.reconstruction_rate, config_.reconstruction_burst);
  buckets_[static_cast<std::size_t>(WorkClass::kQuery)] =
      TokenBucket(config_.query_rate, config_.query_burst);
}

double PressureGovernor::raw_score(const LoadSignals& signals,
                                   const char** dominant) const {
  struct Term {
    const char* name;
    double value;
  };
  const Term terms[] = {
      {"pool_queue_depth",
       config_.pool_queue_limit > 0.0
           ? signals.pool_queue_depth / config_.pool_queue_limit
           : 0.0},
      {"ingest_backlog",
       config_.ingest_backlog_limit > 0.0
           ? signals.ingest_backlog / config_.ingest_backlog_limit
           : 0.0},
      {"offered_load",
       config_.offered_load_limit > 0.0
           ? signals.offered_load / config_.offered_load_limit
           : 0.0},
      {"query_p99",
       config_.query_p99_limit_ms > 0.0
           ? signals.query_p99_ms / config_.query_p99_limit_ms
           : 0.0},
      // cpu_pressure is already normalized to [0, 1]; scale so saturated
      // injected pressure alone reaches the shedding band.
      {"cpu_pressure", signals.cpu_pressure * 1.5},
  };
  double best = 0.0;
  const char* best_name = "none";
  for (const Term& t : terms) {
    if (t.value > best) {
      best = t.value;
      best_name = t.name;
    }
  }
  if (dominant != nullptr) *dominant = best_name;
  return best;
}

PressureLevel PressureGovernor::update(double now_s,
                                       const LoadSignals& signals) {
  const char* dominant = "none";
  const double raw = raw_score(signals, &dominant);
  if (!score_primed_) {
    score_primed_ = true;
    score_ = raw;
  } else {
    const double a = std::clamp(config_.ewma_alpha, 0.0, 1.0);
    score_ = a * raw + (1.0 - a) * score_;
  }

  // Escalation is immediate (pressure is now); de-escalation is one rung
  // at a time, gated on the exit threshold AND a minimum dwell so the
  // ladder cannot flap around a noisy threshold.
  PressureLevel level = this->level();
  PressureLevel next = level;
  if (score_ >= config_.emergency_enter) {
    next = PressureLevel::kEmergency;
  } else if (score_ >= config_.shed_enter &&
             level < PressureLevel::kShedding) {
    next = PressureLevel::kShedding;
  } else if (score_ >= config_.throttle_enter &&
             level < PressureLevel::kThrottled) {
    next = PressureLevel::kThrottled;
  } else if (now_s - level_since_s_ >= config_.min_dwell_s) {
    switch (level) {
      case PressureLevel::kEmergency:
        if (score_ <= config_.emergency_exit)
          next = PressureLevel::kShedding;
        break;
      case PressureLevel::kShedding:
        if (score_ <= config_.shed_exit) next = PressureLevel::kThrottled;
        break;
      case PressureLevel::kThrottled:
        if (score_ <= config_.throttle_exit) next = PressureLevel::kNormal;
        break;
      case PressureLevel::kNormal:
        break;
    }
  }

  if (next != level) {
    transitions_.push_back(
        {now_s, level, next, score_, std::string(dominant)});
    level_.store(static_cast<std::uint8_t>(next),
                 std::memory_order_relaxed);
    level_since_s_ = now_s;
    if (obs::enabled()) {
      GovernorMetrics& m = GovernorMetrics::get();
      m.transitions.add(1);
      m.level.set(static_cast<double>(next));
    }
    level = next;
  }
  if (obs::enabled()) {
    GovernorMetrics& m = GovernorMetrics::get();
    m.score.set(score_);
    m.level.set(static_cast<double>(level));
  }
  return level;
}

bool PressureGovernor::admit(WorkClass cls, double now_s, double cost) {
  const std::size_t idx = static_cast<std::size_t>(cls);
  const double factor = cost_factor(level(), cls);
  bool ok = factor >= 0.0 &&
            buckets_[idx].try_take(now_s, cost * factor);
  if (ok) {
    ++admitted_[idx];
  } else {
    ++rejected_[idx];
  }
  if (obs::enabled()) {
    GovernorMetrics& m = GovernorMetrics::get();
    (ok ? m.admitted[idx] : m.rejected[idx])->add(1);
  }
  return ok;
}

}  // namespace kertbn::ov
