#pragma once
/// \file governor.hpp
/// Process-wide overload control: a PressureGovernor fuses load signals
/// the pipeline already emits (pool queue depth, ingest backlog, offered
/// load vs. capacity, query tail latency, injected CPU pressure) into one
/// smoothed pressure score and walks a hysteresis-guarded degradation
/// ladder
///
///     normal -> throttled -> shedding -> emergency
///
/// Each work class (ingest, reconstruction, query) additionally draws from
/// its own token bucket; the ladder level scales the token cost (and cuts
/// reconstruction off entirely past `throttled`), so the governor degrades
/// the *cheapest-to-lose* work first: background rebuilds, then batch
/// queries, then ingest batches — interactive queries last.
///
/// Determinism contract: the governor owns no clock and reads no
/// wall-time. `update` and `admit` are pure functions of the caller-
/// provided timestamps and signals (plus prior calls), so the same
/// sequence of (now, signals) produces bit-identical transitions and
/// admission decisions on every rerun — the property the overload
/// acceptance tests pin down.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace kertbn::ov {

/// Work classes with separate admission budgets. Order matters: it is the
/// shedding order under pressure (reconstruction first, queries next,
/// ingest last).
enum class WorkClass : std::uint8_t {
  kIngest = 0,
  kReconstruction = 1,
  kQuery = 2,
};
inline constexpr std::size_t kWorkClassCount = 3;

const char* to_string(WorkClass cls);

/// Degradation ladder, least to most severe.
enum class PressureLevel : std::uint8_t {
  kNormal = 0,
  kThrottled = 1,
  kShedding = 2,
  kEmergency = 3,
};

const char* to_string(PressureLevel level);

/// Deterministic token bucket. Refill is computed from the caller's
/// timestamps (simulated seconds in the testbed), never from wall clock.
class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(double rate_per_s, double burst)
      : rate_(rate_per_s), burst_(burst), tokens_(burst) {}

  /// Refills for the elapsed time since the last call, then tries to take
  /// \p cost tokens. Time moving backwards is treated as zero elapsed.
  bool try_take(double now_s, double cost);
  double tokens() const { return tokens_; }

 private:
  double rate_ = 0.0;
  double burst_ = 0.0;
  double tokens_ = 0.0;
  double last_refill_s_ = 0.0;
  bool primed_ = false;
};

/// Instantaneous load signals, all deterministic by construction: queue
/// and backlog depths are exact counts, offered_load is a ratio of counts,
/// cpu_pressure comes from the fault injector's schedule. Fields the
/// caller cannot observe stay 0 and drop out of the score.
struct LoadSignals {
  /// ThreadPool queue depth (tasks waiting, not running).
  double pool_queue_depth = 0.0;
  /// Ingest intervals admitted but not yet drained (ManagementServer
  /// pending count).
  double ingest_backlog = 0.0;
  /// Offered / sustainable load ratio; 1.0 = at capacity.
  double offered_load = 0.0;
  /// Query p99 latency in milliseconds (0 when unobserved).
  double query_p99_ms = 0.0;
  /// Injected CPU pressure in [0, 1] from the fault plan (0 = none).
  double cpu_pressure = 0.0;
};

/// One ladder move, recorded for tests and the status surface.
struct GovernorTransition {
  double at = 0.0;  ///< caller timestamp (simulated seconds)
  PressureLevel from = PressureLevel::kNormal;
  PressureLevel to = PressureLevel::kNormal;
  double score = 0.0;  ///< smoothed pressure score at the move
  std::string reason;  ///< dominant signal, e.g. "offered_load"

  bool operator==(const GovernorTransition&) const = default;
};

/// The process-wide overload governor. Thread-compatible: `update` must be
/// externally serialized (one control loop owns it); `admit` and the
/// read-only accessors may race with it benignly via the atomic level.
class PressureGovernor {
 public:
  struct Config {
    /// Signal normalizers: each signal divided by its normalizer yields a
    /// unitless pressure in which 1.0 means "at the design limit". The
    /// score is the max over normalized signals (overload is whichever
    /// resource saturates first, not an average).
    double pool_queue_limit = 64.0;
    double ingest_backlog_limit = 8.0;
    double offered_load_limit = 1.0;
    double query_p99_limit_ms = 50.0;

    /// EWMA smoothing for the score (1.0 = unsmoothed).
    double ewma_alpha = 0.5;

    /// Hysteresis: enter a level when score >= enter, leave toward normal
    /// only when score <= exit AND the level has dwelt `min_dwell_s`.
    double throttle_enter = 0.75, throttle_exit = 0.50;
    double shed_enter = 1.25, shed_exit = 0.90;
    double emergency_enter = 2.00, emergency_exit = 1.50;
    double min_dwell_s = 2.0;

    /// Per-class token buckets (tokens per second, burst size). Defaults
    /// are generous: at normal level nothing is refused in practice.
    double ingest_rate = 64.0, ingest_burst = 64.0;
    double reconstruction_rate = 4.0, reconstruction_burst = 4.0;
    double query_rate = 200000.0, query_burst = 200000.0;
  };

  PressureGovernor();
  explicit PressureGovernor(Config config);

  /// Feeds one signal sample at caller time \p now_s (seconds, monotone
  /// non-decreasing). Returns the level after any ladder move.
  PressureLevel update(double now_s, const LoadSignals& signals);

  /// Admission check for one unit of \p cls work at caller time \p now_s.
  /// The current ladder level scales the token cost; past `throttled`,
  /// reconstruction is refused outright. Never blocks.
  bool admit(WorkClass cls, double now_s, double cost = 1.0);

  PressureLevel level() const {
    return static_cast<PressureLevel>(
        level_.load(std::memory_order_relaxed));
  }
  double score() const { return score_; }
  const std::vector<GovernorTransition>& transitions() const {
    return transitions_;
  }
  std::uint64_t admitted(WorkClass cls) const {
    return admitted_[static_cast<std::size_t>(cls)];
  }
  std::uint64_t rejected(WorkClass cls) const {
    return rejected_[static_cast<std::size_t>(cls)];
  }

  const Config& config() const { return config_; }

 private:
  double raw_score(const LoadSignals& signals, const char** dominant) const;

  Config config_;
  std::atomic<std::uint8_t> level_{0};
  double score_ = 0.0;
  bool score_primed_ = false;
  double level_since_s_ = 0.0;
  std::vector<GovernorTransition> transitions_;
  TokenBucket buckets_[kWorkClassCount];
  std::uint64_t admitted_[kWorkClassCount] = {0, 0, 0};
  std::uint64_t rejected_[kWorkClassCount] = {0, 0, 0};
};

}  // namespace kertbn::ov
