#include "workflow/serialize.hpp"

#include <cctype>
#include <sstream>

#include "common/contract.hpp"

namespace kertbn::wf {
namespace {

void write_node(const Node& node, std::ostringstream& out) {
  switch (node.kind()) {
    case NodeKind::kActivity:
      out << "(act " << node.service_index() << ")";
      return;
    case NodeKind::kSequence:
    case NodeKind::kParallel:
      out << (node.kind() == NodeKind::kSequence ? "(seq" : "(par");
      for (const auto& c : node.children()) {
        out << ' ';
        write_node(*c, out);
      }
      out << ')';
      return;
    case NodeKind::kChoice:
      out << "(choice";
      for (std::size_t i = 0; i < node.children().size(); ++i) {
        out << ' ' << node.choice_probs()[i] << ' ';
        write_node(*node.children()[i], out);
      }
      out << ')';
      return;
    case NodeKind::kLoop:
      out << "(loop " << node.repeat_prob() << ' ';
      write_node(*node.children().front(), out);
      out << ')';
      return;
  }
  KERTBN_ASSERT(false && "unreachable");
}

/// Minimal recursive-descent parser over a token cursor.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Node::Ptr parse() {
    Node::Ptr node = parse_node();
    skip_ws();
    KERTBN_EXPECTS(pos_ == text_.size() && "trailing input");
    return node;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  void expect(char c) {
    skip_ws();
    KERTBN_EXPECTS(pos_ < text_.size() && text_[pos_] == c);
    ++pos_;
  }

  bool peek(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  std::string word() {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '(' &&
           text_[pos_] != ')' &&
           !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    KERTBN_EXPECTS(pos_ > start && "expected token");
    return text_.substr(start, pos_ - start);
  }

  double number() {
    const std::string w = word();
    std::size_t consumed = 0;
    const double v = std::stod(w, &consumed);
    KERTBN_EXPECTS(consumed == w.size() && "expected number");
    return v;
  }

  Node::Ptr parse_node() {
    expect('(');
    const std::string head = word();
    if (head == "act") {
      const auto svc = static_cast<std::size_t>(number());
      expect(')');
      return Node::activity(svc);
    }
    if (head == "seq" || head == "par") {
      std::vector<Node::Ptr> children;
      while (!peek(')')) children.push_back(parse_node());
      expect(')');
      KERTBN_EXPECTS(!children.empty());
      return head == "seq" ? Node::sequence(std::move(children))
                           : Node::parallel(std::move(children));
    }
    if (head == "choice") {
      std::vector<Node::Ptr> children;
      std::vector<double> probs;
      while (!peek(')')) {
        probs.push_back(number());
        children.push_back(parse_node());
      }
      expect(')');
      return Node::choice(std::move(children), std::move(probs));
    }
    if (head == "loop") {
      const double repeat = number();
      Node::Ptr body = parse_node();
      expect(')');
      return Node::loop(std::move(body), repeat);
    }
    KERTBN_EXPECTS(false && "unknown construct");
    return nullptr;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string node_to_text(const Node& node) {
  std::ostringstream out;
  out.precision(17);
  write_node(node, out);
  return out.str();
}

Node::Ptr node_from_text(const std::string& text) {
  return Parser(text).parse();
}

std::string workflow_to_text(const Workflow& workflow) {
  std::ostringstream out;
  out.precision(17);
  out << "workflow " << workflow.service_count() << '\n';
  for (std::size_t s = 0; s < workflow.service_count(); ++s) {
    out << "name " << s << ' ' << workflow.service_names()[s] << '\n';
  }
  out << "tree " << node_to_text(*workflow.root()) << '\n';
  return out.str();
}

Workflow workflow_from_text(const std::string& text) {
  std::istringstream in(text);
  std::string keyword;
  std::size_t n = 0;
  in >> keyword >> n;
  KERTBN_EXPECTS(keyword == "workflow");
  std::vector<std::string> names(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t idx = 0;
    in >> keyword >> idx;
    KERTBN_EXPECTS(keyword == "name" && idx < n);
    in >> names[idx];
  }
  in >> keyword;
  KERTBN_EXPECTS(keyword == "tree");
  std::string rest;
  std::getline(in, rest, '\0');
  return Workflow(std::move(names), node_from_text(rest));
}

}  // namespace kertbn::wf
