#include "workflow/serialize.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/contract.hpp"

namespace kertbn::wf {
namespace {

void write_node(const Node& node, std::ostringstream& out) {
  switch (node.kind()) {
    case NodeKind::kActivity:
      out << "(act " << node.service_index() << ")";
      return;
    case NodeKind::kSequence:
    case NodeKind::kParallel:
      out << (node.kind() == NodeKind::kSequence ? "(seq" : "(par");
      for (const auto& c : node.children()) {
        out << ' ';
        write_node(*c, out);
      }
      out << ')';
      return;
    case NodeKind::kChoice:
      out << "(choice";
      for (std::size_t i = 0; i < node.children().size(); ++i) {
        out << ' ' << node.choice_probs()[i] << ' ';
        write_node(*node.children()[i], out);
      }
      out << ')';
      return;
    case NodeKind::kLoop:
      out << "(loop " << node.repeat_prob() << ' ';
      write_node(*node.children().front(), out);
      out << ')';
      return;
    case NodeKind::kMap:
      out << "(map " << node.map_k_min();
      for (double w : node.map_k_weights()) out << ' ' << w;
      out << ' ';
      write_node(*node.children().front(), out);
      out << ')';
      return;
    case NodeKind::kDataChoice: {
      out << "(dchoice " << node.class_probs().size() << ' '
          << node.children().size();
      for (double g : node.class_probs()) out << ' ' << g;
      for (const auto& row : node.branch_probs()) {
        for (double p : row) out << ' ' << p;
      }
      for (const auto& c : node.children()) {
        out << ' ';
        write_node(*c, out);
      }
      out << ')';
      return;
    }
  }
  KERTBN_ASSERT(false && "unreachable");
}

/// Minimal recursive-descent parser over a token cursor. Malformed input
/// is reported by value (nullptr + error message); the aborting
/// node_from_text wrapper turns that into a contract failure, while
/// try_node_from_text hands it to callers that must degrade gracefully.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Node::Ptr parse(std::string* error) {
    Node::Ptr node = parse_node();
    skip_ws();
    if (node != nullptr && pos_ != text_.size()) {
      fail("trailing input after tree");
      node = nullptr;
    }
    if (error != nullptr) *error = error_;
    return node;
  }

 private:
  /// Records the first error (nested failures keep the root cause).
  std::nullptr_t fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
    return nullptr;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
      return false;
    }
    ++pos_;
    return true;
  }

  bool peek(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  std::string word() {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '(' &&
           text_[pos_] != ')' &&
           !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) fail("expected token");
    return text_.substr(start, pos_ - start);
  }

  bool number(double& out) {
    const std::string w = word();
    if (w.empty()) return false;
    char* end = nullptr;
    out = std::strtod(w.c_str(), &end);
    if (end != w.c_str() + w.size()) {
      fail("expected number, got '" + w + "'");
      return false;
    }
    return true;
  }

  Node::Ptr parse_node() {
    if (!expect('(')) return nullptr;
    const std::string head = word();
    if (head == "act") {
      double svc = 0.0;
      if (!number(svc)) return nullptr;
      if (!(svc >= 0.0) || svc != std::floor(svc)) {
        return fail("activity index must be a non-negative integer");
      }
      if (!expect(')')) return nullptr;
      return Node::activity(static_cast<std::size_t>(svc));
    }
    if (head == "seq" || head == "par") {
      std::vector<Node::Ptr> children;
      while (!peek(')')) {
        if (at_end()) return fail("unterminated composite");
        Node::Ptr child = parse_node();
        if (child == nullptr) return nullptr;
        children.push_back(std::move(child));
      }
      expect(')');
      if (children.empty()) return fail("empty composite");
      return head == "seq" ? Node::sequence(std::move(children))
                           : Node::parallel(std::move(children));
    }
    if (head == "choice") {
      std::vector<Node::Ptr> children;
      std::vector<double> probs;
      double total = 0.0;
      while (!peek(')')) {
        if (at_end()) return fail("unterminated choice");
        double p = 0.0;
        if (!number(p)) return nullptr;
        if (!(p >= 0.0) || p > 1.0) {
          return fail("choice probability outside [0, 1]");
        }
        total += p;
        probs.push_back(p);
        Node::Ptr child = parse_node();
        if (child == nullptr) return nullptr;
        children.push_back(std::move(child));
      }
      expect(')');
      if (children.empty()) return fail("empty choice");
      if (std::abs(total - 1.0) >= 1e-9) {
        return fail("choice probabilities do not sum to 1");
      }
      return Node::choice(std::move(children), std::move(probs));
    }
    if (head == "loop") {
      double repeat = 0.0;
      if (!number(repeat)) return nullptr;
      if (!(repeat >= 0.0) || repeat >= 1.0) {
        return fail("loop probability outside [0, 1)");
      }
      Node::Ptr body = parse_node();
      if (body == nullptr) return nullptr;
      if (!expect(')')) return nullptr;
      return Node::loop(std::move(body), repeat);
    }
    if (head == "map") {
      double k_min = 0.0;
      if (!number(k_min)) return nullptr;
      if (!(k_min >= 1.0) || k_min != std::floor(k_min)) {
        return fail("map k_min must be a positive integer");
      }
      // Weights run until the body's opening paren.
      std::vector<double> weights;
      double total = 0.0;
      while (!peek('(')) {
        if (at_end()) return fail("unterminated map");
        double w = 0.0;
        if (!number(w)) return nullptr;
        if (!std::isfinite(w) || w < 0.0) {
          return fail("map k weight must be finite and non-negative");
        }
        total += w;
        weights.push_back(w);
      }
      if (weights.empty()) return fail("map needs at least one k weight");
      if (!(total > 0.0)) return fail("map k weights are all zero");
      Node::Ptr body = parse_node();
      if (body == nullptr) return nullptr;
      if (!expect(')')) return nullptr;
      return Node::map(std::move(body), static_cast<std::size_t>(k_min),
                       std::move(weights));
    }
    if (head == "dchoice") {
      double classes = 0.0;
      double branches = 0.0;
      if (!number(classes) || !number(branches)) return nullptr;
      if (!(classes >= 1.0) || classes != std::floor(classes) ||
          !(branches >= 1.0) || branches != std::floor(branches)) {
        return fail("dchoice class/branch counts must be positive integers");
      }
      const auto n_classes = static_cast<std::size_t>(classes);
      const auto n_branches = static_cast<std::size_t>(branches);
      std::vector<double> gammas(n_classes, 0.0);
      double gamma_total = 0.0;
      for (double& g : gammas) {
        if (!number(g)) return nullptr;
        if (!(g >= 0.0) || g > 1.0) {
          return fail("class probability outside [0, 1]");
        }
        gamma_total += g;
      }
      if (std::abs(gamma_total - 1.0) >= 1e-9) {
        return fail("class probabilities do not sum to 1");
      }
      std::vector<std::vector<double>> rows(
          n_classes, std::vector<double>(n_branches, 0.0));
      for (auto& row : rows) {
        double row_total = 0.0;
        for (double& p : row) {
          if (!number(p)) return nullptr;
          if (!(p >= 0.0) || p > 1.0) {
            return fail("branch probability outside [0, 1]");
          }
          row_total += p;
        }
        if (std::abs(row_total - 1.0) >= 1e-9) {
          return fail("branch row does not sum to 1");
        }
      }
      std::vector<Node::Ptr> children;
      children.reserve(n_branches);
      for (std::size_t b = 0; b < n_branches; ++b) {
        Node::Ptr child = parse_node();
        if (child == nullptr) return nullptr;
        children.push_back(std::move(child));
      }
      if (!expect(')')) return nullptr;
      return Node::data_choice(std::move(children), std::move(gammas),
                               std::move(rows));
    }
    fail("unknown construct '" + head + "'");
    return nullptr;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::string node_to_text(const Node& node) {
  std::ostringstream out;
  out.precision(17);
  write_node(node, out);
  return out.str();
}

Node::Ptr node_from_text(const std::string& text) {
  std::string error;
  Node::Ptr node = Parser(text).parse(&error);
  KERTBN_EXPECTS(node != nullptr && "malformed workflow tree");
  return node;
}

Node::Ptr try_node_from_text(const std::string& text, std::string* error) {
  return Parser(text).parse(error);
}

std::string workflow_to_text(const Workflow& workflow) {
  std::ostringstream out;
  out.precision(17);
  out << "workflow " << workflow.service_count() << '\n';
  for (std::size_t s = 0; s < workflow.service_count(); ++s) {
    out << "name " << s << ' ' << workflow.service_names()[s] << '\n';
  }
  out << "tree " << node_to_text(*workflow.root()) << '\n';
  return out.str();
}

Workflow workflow_from_text(const std::string& text) {
  std::istringstream in(text);
  std::string keyword;
  std::size_t n = 0;
  in >> keyword >> n;
  KERTBN_EXPECTS(keyword == "workflow");
  std::vector<std::string> names(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t idx = 0;
    in >> keyword >> idx;
    KERTBN_EXPECTS(keyword == "name" && idx < n);
    in >> names[idx];
  }
  in >> keyword;
  KERTBN_EXPECTS(keyword == "tree");
  std::string rest;
  std::getline(in, rest, '\0');
  return Workflow(std::move(names), node_from_text(rest));
}

}  // namespace kertbn::wf
