#pragma once
/// \file resource.hpp
/// Resource-sharing knowledge (Section 3.2, second bullet): services hosted
/// on the same machine / network segment share CPU, memory or bandwidth, so
/// their elapsed times co-vary. The knowledge is recorded as named groups of
/// service indices; the KERT-BN builder turns each group into dependency
/// structure.

#include <cstddef>
#include <string>
#include <vector>

namespace kertbn::wf {

/// One shared resource and the services contending for it.
struct ResourceGroup {
  std::string name;                   ///< e.g. "cpu_host_local"
  std::vector<std::size_t> services;  ///< Service indices sharing it.
};

/// The full resource-sharing map of an environment.
struct ResourceSharing {
  std::vector<ResourceGroup> groups;

  /// All unordered service pairs that share at least one resource.
  std::vector<std::pair<std::size_t, std::size_t>> sharing_pairs() const;
};

}  // namespace kertbn::wf
