#include "workflow/generator.hpp"

#include <algorithm>
#include <cmath>

#include "common/contract.hpp"

namespace kertbn::wf {

void GeneratorOptions::validate() const {
  const double weights[] = {sequence_weight, parallel_weight, choice_weight,
                            map_weight, data_choice_weight};
  double total = 0.0;
  for (double w : weights) {
    KERTBN_EXPECTS(std::isfinite(w) &&
                   "construct weights must be finite numbers");
    KERTBN_EXPECTS(w >= 0.0 && "construct weights must be non-negative");
    total += w;
  }
  KERTBN_EXPECTS(total > 0.0 &&
                 "construct weights must not all be zero (degenerate mix)");
  KERTBN_EXPECTS(std::isfinite(loop_probability) && loop_probability >= 0.0 &&
                 loop_probability <= 1.0 &&
                 "loop_probability must lie in [0, 1]");
  KERTBN_EXPECTS(std::isfinite(loop_repeat_prob) && loop_repeat_prob >= 0.0 &&
                 loop_repeat_prob < 1.0 &&
                 "loop_repeat_prob must lie in [0, 1)");
  KERTBN_EXPECTS(max_fanout >= 2 && "max_fanout must allow a binary split");
  KERTBN_EXPECTS(map_k_min >= 1 && "map_k_min must be at least 1");
  KERTBN_EXPECTS(map_k_max >= map_k_min &&
                 "map_k_max must be at least map_k_min");
  KERTBN_EXPECTS(data_classes >= 1 && "data_classes must be at least 1");
}

namespace {

/// Normalized Dirichlet-ish probability draw bounded away from zero.
std::vector<double> random_probs(std::size_t n, Rng& rng) {
  std::vector<double> probs(n);
  double total = 0.0;
  for (double& p : probs) {
    p = 0.05 + rng.uniform();
    total += p;
  }
  for (double& p : probs) p /= total;
  return probs;
}

/// Recursively composes the given (already shuffled) services into a tree.
/// \p allow_map is cleared for the immediate re-pick inside a freshly
/// created map so the wrapper recursion terminates; children re-enable it.
Node::Ptr compose(std::span<const std::size_t> services, Rng& rng,
                  const GeneratorOptions& opts, bool allow_map = true) {
  KERTBN_EXPECTS(!services.empty());
  if (services.size() == 1) return Node::activity(services.front());

  Node::Ptr node;
  const std::size_t pick = rng.categorical(
      {opts.sequence_weight, opts.parallel_weight, opts.choice_weight,
       allow_map ? opts.map_weight : 0.0, opts.data_choice_weight});

  if (pick == 3) {
    // Map fan-out: the whole block becomes the body, run as k parallel
    // instances over data partitions with a per-node k distribution.
    const std::size_t span =
        1 + rng.uniform_index(opts.map_k_max - opts.map_k_min + 1);
    Node::Ptr body = compose(services, rng, opts, /*allow_map=*/false);
    return Node::map(std::move(body), opts.map_k_min,
                     random_probs(span, rng));
  }

  // Split the services into 2..max_fanout contiguous groups.
  const std::size_t max_groups =
      std::min<std::size_t>(opts.max_fanout, services.size());
  const std::size_t groups =
      2 + (max_groups > 2 ? rng.uniform_index(max_groups - 1) : 0);
  std::vector<std::span<const std::size_t>> parts;
  std::size_t start = 0;
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t remaining_groups = groups - g;
    const std::size_t remaining = services.size() - start;
    std::size_t take = remaining - (remaining_groups - 1);
    if (remaining_groups > 1 && take > 1) {
      take = 1 + rng.uniform_index(take);
    }
    parts.push_back(services.subspan(start, take));
    start += take;
  }
  KERTBN_ASSERT(start == services.size());

  std::vector<Node::Ptr> children;
  children.reserve(parts.size());
  for (const auto& p : parts) children.push_back(compose(p, rng, opts));

  switch (pick) {
    case 0:
      node = Node::sequence(std::move(children));
      break;
    case 1:
      node = Node::parallel(std::move(children));
      break;
    case 2:
      node = Node::choice(std::move(children),
                          random_probs(parts.size(), rng));
      break;
    default: {
      // Data-dependent choice: per-class branch rows over the same split.
      std::vector<double> gammas = random_probs(opts.data_classes, rng);
      std::vector<std::vector<double>> rows;
      rows.reserve(opts.data_classes);
      for (std::size_t c = 0; c < opts.data_classes; ++c) {
        rows.push_back(random_probs(parts.size(), rng));
      }
      node = Node::data_choice(std::move(children), std::move(gammas),
                               std::move(rows));
      break;
    }
  }
  if (rng.bernoulli(opts.loop_probability)) {
    node = Node::loop(std::move(node), opts.loop_repeat_prob);
  }
  return node;
}

}  // namespace

Workflow make_random_workflow(std::size_t n_services, Rng& rng,
                              const GeneratorOptions& opts) {
  KERTBN_EXPECTS(n_services >= 1);
  opts.validate();
  std::vector<std::string> names;
  names.reserve(n_services);
  for (std::size_t i = 0; i < n_services; ++i) {
    names.push_back("svc_" + std::to_string(i));
  }
  std::vector<std::size_t> order(n_services);
  for (std::size_t i = 0; i < n_services; ++i) order[i] = i;
  rng.shuffle(order);
  Node::Ptr root = compose(order, rng, opts);
  return Workflow(std::move(names), std::move(root));
}

Node::Ptr perturb_choice_probs(const Node::Ptr& root, Rng& rng) {
  KERTBN_EXPECTS(root != nullptr);
  const Node& node = *root;
  std::vector<Node::Ptr> children;
  children.reserve(node.children().size());
  for (const auto& c : node.children()) {
    children.push_back(perturb_choice_probs(c, rng));
  }
  switch (node.kind()) {
    case NodeKind::kActivity:
      return root;
    case NodeKind::kSequence:
      return Node::sequence(std::move(children));
    case NodeKind::kParallel:
      return Node::parallel(std::move(children));
    case NodeKind::kChoice:
      return Node::choice(std::move(children),
                          random_probs(node.children().size(), rng));
    case NodeKind::kLoop:
      return Node::loop(std::move(children.front()), node.repeat_prob());
    case NodeKind::kMap:
      return Node::map(std::move(children.front()), node.map_k_min(),
                       node.map_k_weights());
    case NodeKind::kDataChoice: {
      std::vector<std::vector<double>> rows;
      rows.reserve(node.class_probs().size());
      for (std::size_t c = 0; c < node.class_probs().size(); ++c) {
        rows.push_back(random_probs(node.children().size(), rng));
      }
      return Node::data_choice(std::move(children), node.class_probs(),
                               std::move(rows));
    }
  }
  KERTBN_ASSERT(false && "unreachable");
  return nullptr;
}

namespace {

std::vector<double> lerp(const std::vector<double>& a,
                         const std::vector<double>& b, double w) {
  KERTBN_EXPECTS(a.size() == b.size());
  std::vector<double> out(a.size());
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = (1.0 - w) * a[i] + w * b[i];
    total += out[i];
  }
  // Both inputs sum to 1, so the blend does too up to rounding; renormalize
  // to keep the factories' 1e-9 tolerance safe after deep trees.
  for (double& v : out) v /= total;
  return out;
}

}  // namespace

Node::Ptr interpolate_choice_probs(const Node::Ptr& a, const Node::Ptr& b,
                                   double w) {
  KERTBN_EXPECTS(a != nullptr && b != nullptr);
  KERTBN_EXPECTS(w >= 0.0 && w <= 1.0);
  KERTBN_EXPECTS(a->kind() == b->kind() &&
                 "interpolation requires structurally identical trees");
  KERTBN_EXPECTS(a->children().size() == b->children().size());
  std::vector<Node::Ptr> children;
  children.reserve(a->children().size());
  for (std::size_t i = 0; i < a->children().size(); ++i) {
    children.push_back(
        interpolate_choice_probs(a->children()[i], b->children()[i], w));
  }
  switch (a->kind()) {
    case NodeKind::kActivity:
      KERTBN_EXPECTS(a->service_index() == b->service_index());
      return a;
    case NodeKind::kSequence:
      return Node::sequence(std::move(children));
    case NodeKind::kParallel:
      return Node::parallel(std::move(children));
    case NodeKind::kChoice:
      return Node::choice(std::move(children),
                          lerp(a->choice_probs(), b->choice_probs(), w));
    case NodeKind::kLoop:
      KERTBN_EXPECTS(a->repeat_prob() == b->repeat_prob());
      return Node::loop(std::move(children.front()), a->repeat_prob());
    case NodeKind::kMap:
      KERTBN_EXPECTS(a->map_k_min() == b->map_k_min());
      return Node::map(std::move(children.front()), a->map_k_min(),
                       lerp(a->map_k_weights(), b->map_k_weights(), w));
    case NodeKind::kDataChoice: {
      KERTBN_EXPECTS(a->class_probs().size() == b->class_probs().size());
      std::vector<std::vector<double>> rows;
      rows.reserve(a->branch_probs().size());
      for (std::size_t c = 0; c < a->branch_probs().size(); ++c) {
        rows.push_back(lerp(a->branch_probs()[c], b->branch_probs()[c], w));
      }
      return Node::data_choice(std::move(children),
                               lerp(a->class_probs(), b->class_probs(), w),
                               std::move(rows));
    }
  }
  KERTBN_ASSERT(false && "unreachable");
  return nullptr;
}

}  // namespace kertbn::wf
