#include "workflow/generator.hpp"

#include <algorithm>

#include "common/contract.hpp"

namespace kertbn::wf {
namespace {

/// Recursively composes the given (already shuffled) services into a tree.
Node::Ptr compose(std::span<const std::size_t> services, Rng& rng,
                  const GeneratorOptions& opts) {
  KERTBN_EXPECTS(!services.empty());
  if (services.size() == 1) return Node::activity(services.front());

  Node::Ptr node;
  const std::size_t pick = rng.categorical(
      {opts.sequence_weight, opts.parallel_weight, opts.choice_weight});

  // Split the services into 2..max_fanout contiguous groups.
  const std::size_t max_groups =
      std::min<std::size_t>(opts.max_fanout, services.size());
  const std::size_t groups =
      2 + (max_groups > 2 ? rng.uniform_index(max_groups - 1) : 0);
  std::vector<std::span<const std::size_t>> parts;
  std::size_t start = 0;
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t remaining_groups = groups - g;
    const std::size_t remaining = services.size() - start;
    std::size_t take = remaining - (remaining_groups - 1);
    if (remaining_groups > 1 && take > 1) {
      take = 1 + rng.uniform_index(take);
    }
    parts.push_back(services.subspan(start, take));
    start += take;
  }
  KERTBN_ASSERT(start == services.size());

  std::vector<Node::Ptr> children;
  children.reserve(parts.size());
  for (const auto& p : parts) children.push_back(compose(p, rng, opts));

  switch (pick) {
    case 0:
      node = Node::sequence(std::move(children));
      break;
    case 1:
      node = Node::parallel(std::move(children));
      break;
    default: {
      // Random branch probabilities (normalized Dirichlet-ish draw).
      std::vector<double> probs(children.size());
      double total = 0.0;
      for (double& p : probs) {
        p = 0.05 + rng.uniform();
        total += p;
      }
      for (double& p : probs) p /= total;
      node = Node::choice(std::move(children), std::move(probs));
      break;
    }
  }
  if (rng.bernoulli(opts.loop_probability)) {
    node = Node::loop(std::move(node), opts.loop_repeat_prob);
  }
  return node;
}

}  // namespace

Workflow make_random_workflow(std::size_t n_services, Rng& rng,
                              const GeneratorOptions& opts) {
  KERTBN_EXPECTS(n_services >= 1);
  std::vector<std::string> names;
  names.reserve(n_services);
  for (std::size_t i = 0; i < n_services; ++i) {
    names.push_back("svc_" + std::to_string(i));
  }
  std::vector<std::size_t> order(n_services);
  for (std::size_t i = 0; i < n_services; ++i) order[i] = i;
  rng.shuffle(order);
  Node::Ptr root = compose(order, rng, opts);
  return Workflow(std::move(names), std::move(root));
}

}  // namespace kertbn::wf
