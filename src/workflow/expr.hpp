#pragma once
/// \file expr.hpp
/// Aggregate expressions: the deterministic link function f(X) of Equation 4
/// mapping per-service elapsed times to an end-to-end metric. Produced by
/// reducing a workflow with the Cardoso et al. rules (sequence → sum,
/// parallel → max, choice → probability-weighted blend, loop → geometric
/// expected unrolling) and consumed by the response-time node's
/// deterministic CPD.

#include <memory>
#include <span>
#include <string>
#include <vector>

namespace kertbn::wf {

/// Expression node kinds.
enum class ExprKind { kService, kConstant, kSum, kMax, kBlend, kScale };

/// Immutable aggregate-expression tree. Service leaves reference services by
/// index; evaluate() maps a vector of per-service elapsed times to the
/// aggregate value.
class Expr {
 public:
  using Ptr = std::shared_ptr<const Expr>;

  /// Leaf: the elapsed time of service \p index.
  static Ptr service(std::size_t index);
  /// Constant (e.g. a fixed network delay term).
  static Ptr constant(double value);
  /// Σ children (sequence construct).
  static Ptr sum(std::vector<Ptr> children);
  /// max(children) (parallel construct).
  static Ptr max(std::vector<Ptr> children);
  /// Probability-weighted blend Σ pᵢ·childᵢ (choice construct, Cardoso's
  /// expected-value reduction). Probabilities must sum to 1.
  static Ptr blend(std::vector<Ptr> children, std::vector<double> probs);
  /// factor · child (loop construct: expected iterations 1/(1−p_repeat)).
  static Ptr scale(double factor, Ptr child);

  ExprKind kind() const { return kind_; }
  std::size_t service_index() const;
  double constant_value() const;
  double scale_factor() const;
  const std::vector<Ptr>& children() const { return children_; }
  const std::vector<double>& blend_probs() const { return probs_; }

  /// Evaluates f at the given per-service elapsed times (indexed by service
  /// id; the span must cover every referenced service).
  double evaluate(std::span<const double> service_times) const;

  /// Distinct service indices referenced, ascending.
  std::vector<std::size_t> referenced_services() const;

  /// True when the expression contains no max/blend (i.e. it is an affine
  /// function of the service times — exact Gaussian inference applies).
  bool is_linear() const;

  /// Printable form using \p names (falls back to "X{i}" when names are
  /// absent or too short).
  std::string to_string(std::span<const std::string> names = {}) const;

 private:
  explicit Expr(ExprKind kind) : kind_(kind) {}

  ExprKind kind_;
  std::size_t service_ = 0;
  double value_ = 0.0;  // constant or scale factor
  std::vector<Ptr> children_;
  std::vector<double> probs_;
};

}  // namespace kertbn::wf
