#include "workflow/expr.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/contract.hpp"

namespace kertbn::wf {

Expr::Ptr Expr::service(std::size_t index) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kService));
  e->service_ = index;
  return e;
}

Expr::Ptr Expr::constant(double value) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kConstant));
  e->value_ = value;
  return e;
}

Expr::Ptr Expr::sum(std::vector<Ptr> children) {
  KERTBN_EXPECTS(!children.empty());
  if (children.size() == 1) return children.front();
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kSum));
  e->children_ = std::move(children);
  return e;
}

Expr::Ptr Expr::max(std::vector<Ptr> children) {
  KERTBN_EXPECTS(!children.empty());
  if (children.size() == 1) return children.front();
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kMax));
  e->children_ = std::move(children);
  return e;
}

Expr::Ptr Expr::blend(std::vector<Ptr> children, std::vector<double> probs) {
  KERTBN_EXPECTS(!children.empty());
  KERTBN_EXPECTS(children.size() == probs.size());
  double total = 0.0;
  for (double p : probs) {
    KERTBN_EXPECTS(p >= 0.0);
    total += p;
  }
  KERTBN_EXPECTS(std::abs(total - 1.0) < 1e-9);
  if (children.size() == 1) return children.front();
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kBlend));
  e->children_ = std::move(children);
  e->probs_ = std::move(probs);
  return e;
}

Expr::Ptr Expr::scale(double factor, Ptr child) {
  KERTBN_EXPECTS(child != nullptr);
  KERTBN_EXPECTS(factor > 0.0);
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kScale));
  e->value_ = factor;
  e->children_.push_back(std::move(child));
  return e;
}

std::size_t Expr::service_index() const {
  KERTBN_EXPECTS(kind_ == ExprKind::kService);
  return service_;
}

double Expr::constant_value() const {
  KERTBN_EXPECTS(kind_ == ExprKind::kConstant);
  return value_;
}

double Expr::scale_factor() const {
  KERTBN_EXPECTS(kind_ == ExprKind::kScale);
  return value_;
}

double Expr::evaluate(std::span<const double> times) const {
  switch (kind_) {
    case ExprKind::kService:
      KERTBN_EXPECTS(service_ < times.size());
      return times[service_];
    case ExprKind::kConstant:
      return value_;
    case ExprKind::kSum: {
      double s = 0.0;
      for (const auto& c : children_) s += c->evaluate(times);
      return s;
    }
    case ExprKind::kMax: {
      double m = children_.front()->evaluate(times);
      for (std::size_t i = 1; i < children_.size(); ++i) {
        m = std::max(m, children_[i]->evaluate(times));
      }
      return m;
    }
    case ExprKind::kBlend: {
      double s = 0.0;
      for (std::size_t i = 0; i < children_.size(); ++i) {
        s += probs_[i] * children_[i]->evaluate(times);
      }
      return s;
    }
    case ExprKind::kScale:
      return value_ * children_.front()->evaluate(times);
  }
  KERTBN_ASSERT(false && "unreachable");
  return 0.0;
}

namespace {

void collect(const Expr& e, std::vector<std::size_t>& out) {
  if (e.kind() == ExprKind::kService) {
    out.push_back(e.service_index());
    return;
  }
  for (const auto& c : e.children()) collect(*c, out);
}

}  // namespace

std::vector<std::size_t> Expr::referenced_services() const {
  std::vector<std::size_t> out;
  collect(*this, out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool Expr::is_linear() const {
  switch (kind_) {
    case ExprKind::kService:
    case ExprKind::kConstant:
      return true;
    case ExprKind::kMax:
      return false;
    case ExprKind::kSum:
    case ExprKind::kBlend:
    case ExprKind::kScale:
      return std::all_of(children_.begin(), children_.end(),
                         [](const Ptr& c) { return c->is_linear(); });
  }
  return false;
}

std::string Expr::to_string(std::span<const std::string> names) const {
  auto name_of = [&](std::size_t i) {
    if (i < names.size() && !names[i].empty()) return names[i];
    return "X" + std::to_string(i);
  };
  std::ostringstream out;
  switch (kind_) {
    case ExprKind::kService:
      out << name_of(service_);
      break;
    case ExprKind::kConstant:
      out << value_;
      break;
    case ExprKind::kSum:
      for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out << " + ";
        const bool paren = children_[i]->kind() == ExprKind::kBlend;
        if (paren) out << '(';
        out << children_[i]->to_string(names);
        if (paren) out << ')';
      }
      break;
    case ExprKind::kMax:
      out << "max(";
      for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out << ", ";
        out << children_[i]->to_string(names);
      }
      out << ')';
      break;
    case ExprKind::kBlend:
      for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out << " + ";
        out << probs_[i] << "*(" << children_[i]->to_string(names) << ')';
      }
      break;
    case ExprKind::kScale:
      out << value_ << "*(" << children_.front()->to_string(names) << ')';
      break;
  }
  return out.str();
}

}  // namespace kertbn::wf
