#include "workflow/resource.hpp"

#include <set>

namespace kertbn::wf {

std::vector<std::pair<std::size_t, std::size_t>>
ResourceSharing::sharing_pairs() const {
  std::set<std::pair<std::size_t, std::size_t>> pairs;
  for (const auto& g : groups) {
    for (std::size_t i = 0; i < g.services.size(); ++i) {
      for (std::size_t j = i + 1; j < g.services.size(); ++j) {
        const std::size_t a = std::min(g.services[i], g.services[j]);
        const std::size_t b = std::max(g.services[i], g.services[j]);
        if (a != b) pairs.insert({a, b});
      }
    }
  }
  return {pairs.begin(), pairs.end()};
}

}  // namespace kertbn::wf
