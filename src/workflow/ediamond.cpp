#include "workflow/ediamond.hpp"

namespace kertbn::wf {

Workflow make_ediamond_workflow() {
  using S = EdiamondServices;
  std::vector<std::string> names(S::kCount);
  names[S::kImageList] = "image_list";
  names[S::kWorkList] = "work_list";
  names[S::kImageLocatorLocal] = "image_locator_local";
  names[S::kImageLocatorRemote] = "image_locator_remote";
  names[S::kOgsaDaiLocal] = "ogsa_dai_local";
  names[S::kOgsaDaiRemote] = "ogsa_dai_remote";

  auto local_branch = Node::sequence({
      Node::activity(S::kImageLocatorLocal),
      Node::activity(S::kOgsaDaiLocal),
  });
  auto remote_branch = Node::sequence({
      Node::activity(S::kImageLocatorRemote),
      Node::activity(S::kOgsaDaiRemote),
  });
  auto root = Node::sequence({
      Node::activity(S::kImageList),
      Node::activity(S::kWorkList),
      Node::parallel({local_branch, remote_branch}),
  });
  return Workflow(std::move(names), std::move(root));
}

}  // namespace kertbn::wf
