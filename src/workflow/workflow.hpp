#pragma once
/// \file workflow.hpp
/// Workflow model built from the paper's four constructs — sequence,
/// parallel, choice, loop — plus two scenario-algebra extensions: a
/// `map`/fan-out construct (k parallel instances of a body over equal data
/// partitions, k drawn per execution) and a data-dependent choice (branch
/// distribution conditioned on a per-request data class). A workflow yields:
///   * the deterministic response-time function f(X) (Cardoso reduction),
///   * the count-metric function Σ Xᵢ (timeout-count form of Section 3.3),
///   * the immediate-upstream service edges that define the KERT-BN
///     structure (Section 3.2),
///   * execution semantics used by the simulator's workflow engine.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "workflow/expr.hpp"

namespace kertbn::wf {

/// Node kinds of the workflow composition tree.
enum class NodeKind {
  kActivity,
  kSequence,
  kParallel,
  kChoice,
  kLoop,
  kMap,
  kDataChoice,
};

/// A node in the workflow tree.
class Node {
 public:
  using Ptr = std::shared_ptr<const Node>;

  /// Leaf activity executing service \p service_index.
  static Ptr activity(std::size_t service_index);
  static Ptr sequence(std::vector<Ptr> children);
  static Ptr parallel(std::vector<Ptr> children);
  /// Branch i is taken with probability probs[i] (must sum to 1).
  static Ptr choice(std::vector<Ptr> children, std::vector<double> probs);
  /// Body repeats while a biased coin (prob \p repeat_prob < 1) comes up
  /// heads; expected iterations 1/(1−p).
  static Ptr loop(Ptr body, double repeat_prob);
  /// Fan-out over data partitions: per execution, k = k_min + i is drawn
  /// with probability k_weights[i] (weights normalized here), the body runs
  /// as k parallel instances each over 1/k of the data, and the construct
  /// completes when the slowest instance does. k_min must be >= 1; a
  /// degenerate always-k-equals-1 map collapses to its body.
  static Ptr map(Ptr body, std::size_t k_min, std::vector<double> k_weights);
  /// Data-dependent choice: a per-request data class c is drawn from
  /// \p class_probs (summing to 1), then branch b from row c of
  /// \p branch_probs (one row per class, one column per child, each row
  /// summing to 1). A single-class node collapses to a plain choice over
  /// its only row.
  static Ptr data_choice(std::vector<Ptr> children,
                         std::vector<double> class_probs,
                         std::vector<std::vector<double>> branch_probs);

  NodeKind kind() const { return kind_; }
  std::size_t service_index() const;
  double repeat_prob() const;
  const std::vector<Ptr>& children() const { return children_; }
  const std::vector<double>& choice_probs() const { return probs_; }

  /// Smallest fan-out a map can draw (kMap only).
  std::size_t map_k_min() const;
  /// Normalized fan-out weights: P[k = map_k_min() + i] (kMap only).
  const std::vector<double>& map_k_weights() const;
  /// E[k] of the fan-out distribution (kMap only).
  double expected_instances() const;
  /// E[1/k] — the makespan shrink factor of the Cardoso-style map
  /// reduction f_map(X) = E[1/k] · f_body(X) (kMap only).
  double expected_inverse_instances() const;

  /// Data-class distribution γ (kDataChoice only).
  const std::vector<double>& class_probs() const;
  /// Per-class branch rows P[branch | class] (kDataChoice only).
  const std::vector<std::vector<double>>& branch_probs() const;
  /// Class-marginal branch distribution q_b = Σ_c γ_c · P[b | c]
  /// (kDataChoice only) — the blend weights of the time reduction.
  std::vector<double> marginal_branch_probs() const;

 private:
  explicit Node(NodeKind kind) : kind_(kind) {}

  NodeKind kind_;
  std::size_t service_ = 0;
  double repeat_prob_ = 0.0;
  std::size_t map_k_min_ = 1;
  std::vector<Ptr> children_;
  std::vector<double> probs_;  // choice probs / map k-weights / class probs
  std::vector<std::vector<double>> branch_probs_;
};

/// A service-oriented workflow: named services plus a composition tree.
class Workflow {
 public:
  Workflow(std::vector<std::string> service_names, Node::Ptr root);

  std::size_t service_count() const { return names_.size(); }
  const std::vector<std::string>& service_names() const { return names_; }
  const Node::Ptr& root() const { return root_; }

  /// Cardoso reduction of the tree to the deterministic response-time
  /// function f(X) of Equation 4.
  Expr::Ptr response_time_expr() const;

  /// Count-metric reduction (e.g. timeout request count): D = Σᵢ Xᵢ over
  /// the services the workflow touches.
  Expr::Ptr count_expr() const;

  /// Immediate-upstream edges (upstream service, downstream service):
  /// service i is the immediate upstream of j when i's completion feeds j's
  /// invocation. These are the knowledge-given KERT-BN X-edges.
  std::vector<std::pair<std::size_t, std::size_t>> upstream_edges() const;

  /// Services that can run first / last (used by edge derivation and by the
  /// simulator's engine).
  std::vector<std::size_t> entry_services() const;
  std::vector<std::size_t> exit_services() const;

  std::string describe() const;

 private:
  std::vector<std::string> names_;
  Node::Ptr root_;
};

}  // namespace kertbn::wf
