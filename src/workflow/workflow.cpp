#include "workflow/workflow.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "common/contract.hpp"

namespace kertbn::wf {

Node::Ptr Node::activity(std::size_t service_index) {
  auto n = std::shared_ptr<Node>(new Node(NodeKind::kActivity));
  n->service_ = service_index;
  return n;
}

Node::Ptr Node::sequence(std::vector<Ptr> children) {
  KERTBN_EXPECTS(!children.empty());
  if (children.size() == 1) return children.front();
  auto n = std::shared_ptr<Node>(new Node(NodeKind::kSequence));
  n->children_ = std::move(children);
  return n;
}

Node::Ptr Node::parallel(std::vector<Ptr> children) {
  KERTBN_EXPECTS(!children.empty());
  if (children.size() == 1) return children.front();
  auto n = std::shared_ptr<Node>(new Node(NodeKind::kParallel));
  n->children_ = std::move(children);
  return n;
}

Node::Ptr Node::choice(std::vector<Ptr> children, std::vector<double> probs) {
  KERTBN_EXPECTS(!children.empty());
  KERTBN_EXPECTS(children.size() == probs.size());
  double total = 0.0;
  for (double p : probs) {
    KERTBN_EXPECTS(p >= 0.0);
    total += p;
  }
  KERTBN_EXPECTS(std::abs(total - 1.0) < 1e-9);
  if (children.size() == 1) return children.front();
  auto n = std::shared_ptr<Node>(new Node(NodeKind::kChoice));
  n->children_ = std::move(children);
  n->probs_ = std::move(probs);
  return n;
}

Node::Ptr Node::loop(Ptr body, double repeat_prob) {
  KERTBN_EXPECTS(body != nullptr);
  KERTBN_EXPECTS(repeat_prob >= 0.0 && repeat_prob < 1.0);
  if (repeat_prob == 0.0) return body;
  auto n = std::shared_ptr<Node>(new Node(NodeKind::kLoop));
  n->children_.push_back(std::move(body));
  n->repeat_prob_ = repeat_prob;
  return n;
}

std::size_t Node::service_index() const {
  KERTBN_EXPECTS(kind_ == NodeKind::kActivity);
  return service_;
}

double Node::repeat_prob() const {
  KERTBN_EXPECTS(kind_ == NodeKind::kLoop);
  return repeat_prob_;
}

Workflow::Workflow(std::vector<std::string> service_names, Node::Ptr root)
    : names_(std::move(service_names)), root_(std::move(root)) {
  KERTBN_EXPECTS(root_ != nullptr);
  // Every referenced service must exist in the registry.
  const auto refs = response_time_expr()->referenced_services();
  for (std::size_t s : refs) {
    KERTBN_EXPECTS(s < names_.size());
  }
}

namespace {

Expr::Ptr reduce_time(const Node& node) {
  switch (node.kind()) {
    case NodeKind::kActivity:
      return Expr::service(node.service_index());
    case NodeKind::kSequence: {
      std::vector<Expr::Ptr> parts;
      parts.reserve(node.children().size());
      for (const auto& c : node.children()) parts.push_back(reduce_time(*c));
      return Expr::sum(std::move(parts));
    }
    case NodeKind::kParallel: {
      std::vector<Expr::Ptr> parts;
      parts.reserve(node.children().size());
      for (const auto& c : node.children()) parts.push_back(reduce_time(*c));
      return Expr::max(std::move(parts));
    }
    case NodeKind::kChoice: {
      std::vector<Expr::Ptr> parts;
      parts.reserve(node.children().size());
      for (const auto& c : node.children()) parts.push_back(reduce_time(*c));
      return Expr::blend(std::move(parts), node.choice_probs());
    }
    case NodeKind::kLoop: {
      // Geometric number of body executions with continue-probability p:
      // expected iterations 1/(1-p) (Cardoso's loop reduction).
      const double expected = 1.0 / (1.0 - node.repeat_prob());
      return Expr::scale(expected, reduce_time(*node.children().front()));
    }
  }
  KERTBN_ASSERT(false && "unreachable");
  return nullptr;
}

void entries_of(const Node& node, std::set<std::size_t>& out);
void exits_of(const Node& node, std::set<std::size_t>& out);

void entries_of(const Node& node, std::set<std::size_t>& out) {
  switch (node.kind()) {
    case NodeKind::kActivity:
      out.insert(node.service_index());
      return;
    case NodeKind::kSequence:
      entries_of(*node.children().front(), out);
      return;
    case NodeKind::kParallel:
    case NodeKind::kChoice:
      for (const auto& c : node.children()) entries_of(*c, out);
      return;
    case NodeKind::kLoop:
      entries_of(*node.children().front(), out);
      return;
  }
}

void exits_of(const Node& node, std::set<std::size_t>& out) {
  switch (node.kind()) {
    case NodeKind::kActivity:
      out.insert(node.service_index());
      return;
    case NodeKind::kSequence:
      exits_of(*node.children().back(), out);
      return;
    case NodeKind::kParallel:
    case NodeKind::kChoice:
      for (const auto& c : node.children()) exits_of(*c, out);
      return;
    case NodeKind::kLoop:
      exits_of(*node.children().front(), out);
      return;
  }
}

void collect_edges(const Node& node,
                   std::set<std::pair<std::size_t, std::size_t>>& edges) {
  if (node.kind() == NodeKind::kSequence) {
    const auto& children = node.children();
    for (std::size_t i = 0; i + 1 < children.size(); ++i) {
      std::set<std::size_t> ex;
      std::set<std::size_t> en;
      exits_of(*children[i], ex);
      entries_of(*children[i + 1], en);
      for (std::size_t a : ex) {
        for (std::size_t b : en) {
          if (a != b) edges.insert({a, b});
        }
      }
    }
  }
  for (const auto& c : node.children()) collect_edges(*c, edges);
}

void collect_services(const Node& node, std::set<std::size_t>& out) {
  if (node.kind() == NodeKind::kActivity) {
    out.insert(node.service_index());
    return;
  }
  for (const auto& c : node.children()) collect_services(*c, out);
}

}  // namespace

Expr::Ptr Workflow::response_time_expr() const { return reduce_time(*root_); }

Expr::Ptr Workflow::count_expr() const {
  std::set<std::size_t> services;
  collect_services(*root_, services);
  std::vector<Expr::Ptr> parts;
  parts.reserve(services.size());
  for (std::size_t s : services) parts.push_back(Expr::service(s));
  return Expr::sum(std::move(parts));
}

std::vector<std::pair<std::size_t, std::size_t>> Workflow::upstream_edges()
    const {
  std::set<std::pair<std::size_t, std::size_t>> edges;
  collect_edges(*root_, edges);
  return {edges.begin(), edges.end()};
}

std::vector<std::size_t> Workflow::entry_services() const {
  std::set<std::size_t> out;
  entries_of(*root_, out);
  return {out.begin(), out.end()};
}

std::vector<std::size_t> Workflow::exit_services() const {
  std::set<std::size_t> out;
  exits_of(*root_, out);
  return {out.begin(), out.end()};
}

std::string Workflow::describe() const {
  std::ostringstream out;
  out << "Workflow over " << names_.size() << " services\n";
  out << "  f(X) = " << response_time_expr()->to_string(names_) << '\n';
  out << "  upstream edges:";
  for (const auto& [a, b] : upstream_edges()) {
    out << ' ' << names_[a] << "->" << names_[b];
  }
  out << '\n';
  return out.str();
}

}  // namespace kertbn::wf
