#include "workflow/workflow.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "common/contract.hpp"

namespace kertbn::wf {

Node::Ptr Node::activity(std::size_t service_index) {
  auto n = std::shared_ptr<Node>(new Node(NodeKind::kActivity));
  n->service_ = service_index;
  return n;
}

Node::Ptr Node::sequence(std::vector<Ptr> children) {
  KERTBN_EXPECTS(!children.empty());
  if (children.size() == 1) return children.front();
  auto n = std::shared_ptr<Node>(new Node(NodeKind::kSequence));
  n->children_ = std::move(children);
  return n;
}

Node::Ptr Node::parallel(std::vector<Ptr> children) {
  KERTBN_EXPECTS(!children.empty());
  if (children.size() == 1) return children.front();
  auto n = std::shared_ptr<Node>(new Node(NodeKind::kParallel));
  n->children_ = std::move(children);
  return n;
}

Node::Ptr Node::choice(std::vector<Ptr> children, std::vector<double> probs) {
  KERTBN_EXPECTS(!children.empty());
  KERTBN_EXPECTS(children.size() == probs.size());
  double total = 0.0;
  for (double p : probs) {
    KERTBN_EXPECTS(p >= 0.0);
    total += p;
  }
  KERTBN_EXPECTS(std::abs(total - 1.0) < 1e-9);
  if (children.size() == 1) return children.front();
  auto n = std::shared_ptr<Node>(new Node(NodeKind::kChoice));
  n->children_ = std::move(children);
  n->probs_ = std::move(probs);
  return n;
}

Node::Ptr Node::loop(Ptr body, double repeat_prob) {
  KERTBN_EXPECTS(body != nullptr);
  KERTBN_EXPECTS(repeat_prob >= 0.0 && repeat_prob < 1.0);
  if (repeat_prob == 0.0) return body;
  auto n = std::shared_ptr<Node>(new Node(NodeKind::kLoop));
  n->children_.push_back(std::move(body));
  n->repeat_prob_ = repeat_prob;
  return n;
}

Node::Ptr Node::map(Ptr body, std::size_t k_min,
                    std::vector<double> k_weights) {
  KERTBN_EXPECTS(body != nullptr);
  KERTBN_EXPECTS(k_min >= 1 && "map fan-out must draw k >= 1");
  KERTBN_EXPECTS(!k_weights.empty() && "map needs at least one k weight");
  double total = 0.0;
  for (double w : k_weights) {
    KERTBN_EXPECTS(std::isfinite(w) && w >= 0.0 &&
                   "map k weights must be finite and non-negative");
    total += w;
  }
  KERTBN_EXPECTS(total > 0.0 && "map k weights must not all be zero");
  // Normalize, but keep already-normalized weights bit-identical so
  // serialize/deserialize is a fixed point.
  if (std::abs(total - 1.0) >= 1e-9) {
    for (double& w : k_weights) w /= total;
  }
  // A map that always draws k = 1 is just its body.
  if (k_min == 1 && k_weights.size() == 1) return body;
  auto n = std::shared_ptr<Node>(new Node(NodeKind::kMap));
  n->children_.push_back(std::move(body));
  n->map_k_min_ = k_min;
  n->probs_ = std::move(k_weights);
  return n;
}

Node::Ptr Node::data_choice(std::vector<Ptr> children,
                            std::vector<double> class_probs,
                            std::vector<std::vector<double>> branch_probs) {
  KERTBN_EXPECTS(!children.empty());
  KERTBN_EXPECTS(!class_probs.empty());
  KERTBN_EXPECTS(branch_probs.size() == class_probs.size() &&
                 "one branch row per data class");
  double gamma_total = 0.0;
  for (double g : class_probs) {
    KERTBN_EXPECTS(g >= 0.0);
    gamma_total += g;
  }
  KERTBN_EXPECTS(std::abs(gamma_total - 1.0) < 1e-9 &&
                 "class probabilities must sum to 1");
  for (const auto& row : branch_probs) {
    KERTBN_EXPECTS(row.size() == children.size() &&
                   "one branch probability per child in every row");
    double row_total = 0.0;
    for (double p : row) {
      KERTBN_EXPECTS(p >= 0.0);
      row_total += p;
    }
    KERTBN_EXPECTS(std::abs(row_total - 1.0) < 1e-9 &&
                   "each branch row must sum to 1");
  }
  if (children.size() == 1) return children.front();
  // One data class carries no data dependence: collapse to a plain choice.
  if (class_probs.size() == 1) {
    return choice(std::move(children), std::move(branch_probs.front()));
  }
  auto n = std::shared_ptr<Node>(new Node(NodeKind::kDataChoice));
  n->children_ = std::move(children);
  n->probs_ = std::move(class_probs);
  n->branch_probs_ = std::move(branch_probs);
  return n;
}

std::size_t Node::service_index() const {
  KERTBN_EXPECTS(kind_ == NodeKind::kActivity);
  return service_;
}

double Node::repeat_prob() const {
  KERTBN_EXPECTS(kind_ == NodeKind::kLoop);
  return repeat_prob_;
}

std::size_t Node::map_k_min() const {
  KERTBN_EXPECTS(kind_ == NodeKind::kMap);
  return map_k_min_;
}

const std::vector<double>& Node::map_k_weights() const {
  KERTBN_EXPECTS(kind_ == NodeKind::kMap);
  return probs_;
}

double Node::expected_instances() const {
  KERTBN_EXPECTS(kind_ == NodeKind::kMap);
  double e = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    e += probs_[i] * static_cast<double>(map_k_min_ + i);
  }
  return e;
}

double Node::expected_inverse_instances() const {
  KERTBN_EXPECTS(kind_ == NodeKind::kMap);
  double e = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    e += probs_[i] / static_cast<double>(map_k_min_ + i);
  }
  return e;
}

const std::vector<double>& Node::class_probs() const {
  KERTBN_EXPECTS(kind_ == NodeKind::kDataChoice);
  return probs_;
}

const std::vector<std::vector<double>>& Node::branch_probs() const {
  KERTBN_EXPECTS(kind_ == NodeKind::kDataChoice);
  return branch_probs_;
}

std::vector<double> Node::marginal_branch_probs() const {
  KERTBN_EXPECTS(kind_ == NodeKind::kDataChoice);
  std::vector<double> q(children_.size(), 0.0);
  for (std::size_t c = 0; c < probs_.size(); ++c) {
    for (std::size_t b = 0; b < q.size(); ++b) {
      q[b] += probs_[c] * branch_probs_[c][b];
    }
  }
  // Guard against accumulated rounding before Expr::blend's sum-to-1 check.
  double total = 0.0;
  for (double v : q) total += v;
  for (double& v : q) v /= total;
  return q;
}

Workflow::Workflow(std::vector<std::string> service_names, Node::Ptr root)
    : names_(std::move(service_names)), root_(std::move(root)) {
  KERTBN_EXPECTS(root_ != nullptr);
  // Every referenced service must exist in the registry.
  const auto refs = response_time_expr()->referenced_services();
  for (std::size_t s : refs) {
    KERTBN_EXPECTS(s < names_.size());
  }
}

namespace {

Expr::Ptr reduce_time(const Node& node) {
  switch (node.kind()) {
    case NodeKind::kActivity:
      return Expr::service(node.service_index());
    case NodeKind::kSequence: {
      std::vector<Expr::Ptr> parts;
      parts.reserve(node.children().size());
      for (const auto& c : node.children()) parts.push_back(reduce_time(*c));
      return Expr::sum(std::move(parts));
    }
    case NodeKind::kParallel: {
      std::vector<Expr::Ptr> parts;
      parts.reserve(node.children().size());
      for (const auto& c : node.children()) parts.push_back(reduce_time(*c));
      return Expr::max(std::move(parts));
    }
    case NodeKind::kChoice: {
      std::vector<Expr::Ptr> parts;
      parts.reserve(node.children().size());
      for (const auto& c : node.children()) parts.push_back(reduce_time(*c));
      return Expr::blend(std::move(parts), node.choice_probs());
    }
    case NodeKind::kLoop: {
      // Geometric number of body executions with continue-probability p:
      // expected iterations 1/(1-p) (Cardoso's loop reduction).
      const double expected = 1.0 / (1.0 - node.repeat_prob());
      return Expr::scale(expected, reduce_time(*node.children().front()));
    }
    case NodeKind::kMap: {
      // k instances each process 1/k of the data, so the makespan is the
      // body time shrunk by the fan-out; the knowledge-only reduction uses
      // E[1/k] (straggler spread is absorbed by the leak term).
      return Expr::scale(node.expected_inverse_instances(),
                         reduce_time(*node.children().front()));
    }
    case NodeKind::kDataChoice: {
      std::vector<Expr::Ptr> parts;
      parts.reserve(node.children().size());
      for (const auto& c : node.children()) parts.push_back(reduce_time(*c));
      // Blend over the class-marginal branch distribution.
      return Expr::blend(std::move(parts), node.marginal_branch_probs());
    }
  }
  KERTBN_ASSERT(false && "unreachable");
  return nullptr;
}

void entries_of(const Node& node, std::set<std::size_t>& out);
void exits_of(const Node& node, std::set<std::size_t>& out);

void entries_of(const Node& node, std::set<std::size_t>& out) {
  switch (node.kind()) {
    case NodeKind::kActivity:
      out.insert(node.service_index());
      return;
    case NodeKind::kSequence:
      entries_of(*node.children().front(), out);
      return;
    case NodeKind::kParallel:
    case NodeKind::kChoice:
    case NodeKind::kDataChoice:
      for (const auto& c : node.children()) entries_of(*c, out);
      return;
    case NodeKind::kLoop:
    case NodeKind::kMap:
      entries_of(*node.children().front(), out);
      return;
  }
}

void exits_of(const Node& node, std::set<std::size_t>& out) {
  switch (node.kind()) {
    case NodeKind::kActivity:
      out.insert(node.service_index());
      return;
    case NodeKind::kSequence:
      exits_of(*node.children().back(), out);
      return;
    case NodeKind::kParallel:
    case NodeKind::kChoice:
    case NodeKind::kDataChoice:
      for (const auto& c : node.children()) exits_of(*c, out);
      return;
    case NodeKind::kLoop:
    case NodeKind::kMap:
      exits_of(*node.children().front(), out);
      return;
  }
}

void collect_edges(const Node& node,
                   std::set<std::pair<std::size_t, std::size_t>>& edges) {
  if (node.kind() == NodeKind::kSequence) {
    const auto& children = node.children();
    for (std::size_t i = 0; i + 1 < children.size(); ++i) {
      std::set<std::size_t> ex;
      std::set<std::size_t> en;
      exits_of(*children[i], ex);
      entries_of(*children[i + 1], en);
      for (std::size_t a : ex) {
        for (std::size_t b : en) {
          if (a != b) edges.insert({a, b});
        }
      }
    }
  }
  for (const auto& c : node.children()) collect_edges(*c, edges);
}

void collect_services(const Node& node, std::set<std::size_t>& out) {
  if (node.kind() == NodeKind::kActivity) {
    out.insert(node.service_index());
    return;
  }
  for (const auto& c : node.children()) collect_services(*c, out);
}

}  // namespace

Expr::Ptr Workflow::response_time_expr() const { return reduce_time(*root_); }

Expr::Ptr Workflow::count_expr() const {
  std::set<std::size_t> services;
  collect_services(*root_, services);
  std::vector<Expr::Ptr> parts;
  parts.reserve(services.size());
  for (std::size_t s : services) parts.push_back(Expr::service(s));
  return Expr::sum(std::move(parts));
}

std::vector<std::pair<std::size_t, std::size_t>> Workflow::upstream_edges()
    const {
  std::set<std::pair<std::size_t, std::size_t>> edges;
  collect_edges(*root_, edges);
  return {edges.begin(), edges.end()};
}

std::vector<std::size_t> Workflow::entry_services() const {
  std::set<std::size_t> out;
  entries_of(*root_, out);
  return {out.begin(), out.end()};
}

std::vector<std::size_t> Workflow::exit_services() const {
  std::set<std::size_t> out;
  exits_of(*root_, out);
  return {out.begin(), out.end()};
}

std::string Workflow::describe() const {
  std::ostringstream out;
  out << "Workflow over " << names_.size() << " services\n";
  out << "  f(X) = " << response_time_expr()->to_string(names_) << '\n';
  out << "  upstream edges:";
  for (const auto& [a, b] : upstream_edges()) {
    out << ' ' << names_[a] << "->" << names_[b];
  }
  out << '\n';
  return out.str();
}

}  // namespace kertbn::wf
