#pragma once
/// \file ediamond.hpp
/// The paper's reference scenario (Figure 1): the eDiaMoND mammography Grid.
/// A radiologist's request flows through image_list and work_list, then
/// fans out in parallel to a local and a remote site, each running an
/// image_locator followed by an ogsa_dai database wrapper. The reduction of
/// this workflow is the paper's running example:
///   D = X1 + X2 + max(X3 + X5, X4 + X6).

#include "workflow/workflow.hpp"

namespace kertbn::wf {

/// Service indices in the eDiaMoND workflow (matching the paper's X1..X6).
struct EdiamondServices {
  static constexpr std::size_t kImageList = 0;           ///< X1
  static constexpr std::size_t kWorkList = 1;            ///< X2
  static constexpr std::size_t kImageLocatorLocal = 2;   ///< X3
  static constexpr std::size_t kImageLocatorRemote = 3;  ///< X4
  static constexpr std::size_t kOgsaDaiLocal = 4;        ///< X5
  static constexpr std::size_t kOgsaDaiRemote = 5;       ///< X6
  static constexpr std::size_t kCount = 6;
};

/// Builds the 6-service eDiaMoND workflow of Figure 1:
/// sequence(image_list, work_list,
///          parallel(sequence(image_locator_local, ogsa_dai_local),
///                   sequence(image_locator_remote, ogsa_dai_remote))).
Workflow make_ediamond_workflow();

}  // namespace kertbn::wf
