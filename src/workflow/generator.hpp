#pragma once
/// \file generator.hpp
/// Random workflow generation for the Section 4 simulations ("simulated
/// services ... are assembled together by different workflows to constitute
/// simulated applications"). Generates structured compositions over n
/// services with a configurable construct mix — the paper's four constructs
/// plus the scenario-algebra map / data-dependent-choice extensions — and
/// provides the choice-probability drift helpers the scenario families use.

#include "common/rng.hpp"
#include "workflow/workflow.hpp"

namespace kertbn::wf {

struct GeneratorOptions {
  /// Relative odds of composing a block as sequence / parallel / choice /
  /// map fan-out / data-dependent choice. Weights must be finite and
  /// non-negative and must not all be zero (validate() rejects degenerate
  /// mixes with a clear error instead of silently producing broken trees).
  double sequence_weight = 0.55;
  double parallel_weight = 0.30;
  double choice_weight = 0.15;
  double map_weight = 0.0;
  double data_choice_weight = 0.0;
  /// Probability that a generated block is wrapped in a loop.
  double loop_probability = 0.05;
  /// Loop repeat probability when a loop is created.
  double loop_repeat_prob = 0.3;
  /// Maximum branches of a parallel/choice/data-choice split.
  std::size_t max_fanout = 4;
  /// Fan-out range a generated map draws k from (weights drawn per node).
  std::size_t map_k_min = 2;
  std::size_t map_k_max = 6;
  /// Data classes of a generated data-dependent choice.
  std::size_t data_classes = 3;

  /// Contract-fails with a descriptive message on an invalid configuration:
  /// negative / non-finite / all-zero construct weights, probabilities
  /// outside their ranges, or inconsistent fan-out bounds.
  void validate() const;
};

/// Generates a random workflow that uses each of services 0..n-1 exactly
/// once. Deterministic given \p rng state. Validates \p opts.
Workflow make_random_workflow(std::size_t n_services, Rng& rng,
                              const GeneratorOptions& opts = {});

/// Returns a structurally identical tree in which every choice node's
/// branch probabilities and every data-choice node's branch rows are
/// replaced by a fresh random draw — the drift target of a scenario.
Node::Ptr perturb_choice_probs(const Node::Ptr& root, Rng& rng);

/// Structure-preserving interpolation of (data-)choice probabilities:
/// result probs = (1-w)·a + w·b with w in [0, 1]. The two trees must be
/// structurally identical (same shapes, services, loop and map parameters);
/// contract-fails otherwise.
Node::Ptr interpolate_choice_probs(const Node::Ptr& a, const Node::Ptr& b,
                                   double w);

}  // namespace kertbn::wf
