#pragma once
/// \file generator.hpp
/// Random workflow generation for the Section 4 simulations ("simulated
/// services ... are assembled together by different workflows to constitute
/// simulated applications"). Generates structured compositions over n
/// services from the four constructs, with configurable construct mix.

#include "common/rng.hpp"
#include "workflow/workflow.hpp"

namespace kertbn::wf {

struct GeneratorOptions {
  /// Relative odds of composing a block as sequence / parallel / choice.
  double sequence_weight = 0.55;
  double parallel_weight = 0.30;
  double choice_weight = 0.15;
  /// Probability that a generated block is wrapped in a loop.
  double loop_probability = 0.05;
  /// Loop repeat probability when a loop is created.
  double loop_repeat_prob = 0.3;
  /// Maximum branches of a parallel/choice split.
  std::size_t max_fanout = 4;
};

/// Generates a random workflow that uses each of services 0..n-1 exactly
/// once. Deterministic given \p rng state.
Workflow make_random_workflow(std::size_t n_services, Rng& rng,
                              const GeneratorOptions& opts = {});

}  // namespace kertbn::wf
