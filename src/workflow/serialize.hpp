#pragma once
/// \file serialize.hpp
/// Text serialization of workflow composition trees and workflows, using a
/// compact s-expression form:
///
///   (act 3)
///   (seq <child> <child> ...)
///   (par <child> <child> ...)
///   (choice <p1> <child1> <p2> <child2> ...)
///   (loop <repeat_prob> <child>)
///   (map <k_min> <w1> ... <wm> <body>)
///   (dchoice <C> <B> <g1..gC> <p11..p1B> ... <pC1..pCB> <child1..childB>)
///
/// map weights run until the body's '('; dchoice writes the class count C,
/// branch count B, the class distribution, then the C×B branch matrix in
/// row-major order before its B children.
///
/// Used by the model save/load layer (the workflow is part of the
/// knowledge a persisted KERT-BN must carry to rebuild its deterministic
/// response CPD).

#include <string>

#include "workflow/workflow.hpp"

namespace kertbn::wf {

/// Renders a composition tree as an s-expression.
std::string node_to_text(const Node& node);

/// Parses an s-expression produced by node_to_text. Contract-fails on
/// malformed input.
Node::Ptr node_from_text(const std::string& text);

/// Fallible variant for loaders that must degrade on corrupt input (the
/// durability layer's checkpoint loads): returns nullptr and fills
/// \p error instead of aborting. All Node-factory preconditions (non-empty
/// composites, choice probabilities summing to one, loop probability in
/// [0, 1)) are validated here first.
Node::Ptr try_node_from_text(const std::string& text, std::string* error);

/// Renders a whole workflow: first line "workflow <n>", then one
/// "name <i> <service-name>" line per service, then "tree <s-expr>".
std::string workflow_to_text(const Workflow& workflow);

/// Parses workflow_to_text output.
Workflow workflow_from_text(const std::string& text);

}  // namespace kertbn::wf
