#pragma once
/// \file service_model.hpp
/// Stochastic elapsed-time model of a single simulated service. A service's
/// per-request elapsed time is built from a base demand, a coupling term to
/// its immediate-upstream services' realized times (the "bottleneck shift"
/// channel of Section 3.2), a sensitivity to shared-resource load, and
/// measurement noise.

#include <cstddef>

#include "common/rng.hpp"

namespace kertbn::sim {

/// Shape of a service's own stochastic base demand. All three are
/// mean-preserving parameterizations around base_mean, so expected times —
/// and everything derived from them — are distribution-agnostic.
enum class DemandDistribution {
  kNormal,     ///< N(base_mean, noise_sigma²), floored at 1 ms.
  kLognormal,  ///< Lognormal with mean base_mean, sd noise_sigma.
  kPareto,     ///< Pareto with mean base_mean, tail index tail_alpha.
};

/// Per-service elapsed-time parameters (times in seconds).
struct ServiceModel {
  /// Mean base demand of the service in isolation.
  double base_mean = 0.1;
  /// Std-dev of the service's own stochastic demand (normal / lognormal).
  double noise_sigma = 0.02;
  /// Coupling of this service's elapsed time to each immediate-upstream
  /// service's deviation from its mean (dimensionless weight per upstream).
  double upstream_coupling = 0.3;
  /// Seconds of extra elapsed time per unit of shared-resource load.
  double resource_sensitivity = 0.02;
  /// Base-demand distribution family (heavy tails for scenario families).
  DemandDistribution demand = DemandDistribution::kNormal;
  /// Pareto tail index (kPareto only); must exceed 1 for a finite mean.
  double tail_alpha = 2.5;

  /// Draws the service's own base demand (positive).
  double sample_base(Rng& rng) const;

  /// Full elapsed time given the summed upstream deviation (Σ (x_u - mu_u))
  /// and the summed resource load over groups containing the service.
  /// Clamped to a small positive floor — elapsed times cannot be negative.
  double sample_elapsed(double upstream_deviation_sum, double resource_load,
                        Rng& rng) const;

  /// Steady-state mean elapsed time given the expected resource load
  /// (upstream deviations are zero-mean).
  double expected_elapsed(double expected_resource_load) const;
};

/// Shared-resource load model: per-request load drawn once per resource
/// group and felt by every member service (this is what makes co-hosted
/// services' elapsed times co-vary).
struct ResourceLoadModel {
  double shape = 2.0;  ///< Gamma shape of the per-request load.
  double scale = 0.5;  ///< Gamma scale.

  double sample(Rng& rng) const { return rng.gamma(shape, scale); }
  double mean() const { return shape * scale; }
};

}  // namespace kertbn::sim
