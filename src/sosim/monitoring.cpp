#include "sosim/monitoring.hpp"

#include <algorithm>

#include "obs/span.hpp"

namespace kertbn::sim {

namespace {

/// Telemetry for the ingest path. The MissingServicePolicy decisions were
/// previously invisible: a dropped interval or a carried-forward cell left
/// no trace outside the single dropped_intervals() total. These counters
/// surface them in every MetricsSnapshot.
struct MonitorMetrics {
  obs::Counter& intervals;
  obs::Counter& rows_ingested;
  obs::Counter& rows_dropped;
  obs::Counter& values_carried_forward;
  obs::Counter& reports;
  obs::Histogram& batch_size;

  static MonitorMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static MonitorMetrics m{reg.counter("monitor.intervals"),
                            reg.counter("monitor.rows_ingested"),
                            reg.counter("monitor.rows_dropped"),
                            reg.counter("monitor.values_carried_forward"),
                            reg.counter("monitor.reports"),
                            reg.histogram("monitor.agent_batch_size")};
    return m;
  }
};

}  // namespace

MonitoringAgent::MonitoringAgent(std::size_t id,
                                 std::vector<std::size_t> services)
    : id_(id), services_(std::move(services)) {
  KERTBN_EXPECTS(!services_.empty());
  points_.reserve(services_.size());
  for (std::size_t s : services_) points_.emplace_back(s);
}

void MonitoringAgent::record(std::size_t service, double elapsed) {
  auto it = std::find(services_.begin(), services_.end(), service);
  KERTBN_EXPECTS(it != services_.end());
  points_[static_cast<std::size_t>(it - services_.begin())].record(elapsed);
}

bool MonitoringAgent::has_complete_batch() const {
  return std::all_of(points_.begin(), points_.end(),
                     [](const MonitoringPoint& p) { return p.count() > 0; });
}

AgentReport MonitoringAgent::flush() {
  KERTBN_SPAN_VAR(span, "monitor.flush");
  AgentReport report;
  report.agent = id_;
  report.service_means.reserve(points_.size());
  std::size_t measurements = 0;
  for (auto& p : points_) {
    measurements += p.count();
    if (const std::optional<double> mean = p.maybe_mean()) {
      report.service_means.emplace_back(p.service(), *mean);
    }
    p.clear();
  }
  span.tag("agent", static_cast<std::uint64_t>(id_));
  span.tag("measurements", static_cast<std::uint64_t>(measurements));
  if (obs::enabled()) {
    MonitorMetrics& m = MonitorMetrics::get();
    m.reports.add(1);
    m.batch_size.record(measurements);
  }
  return report;
}

ManagementServer::ManagementServer(std::vector<std::string> service_names,
                                   ModelSchedule schedule,
                                   MissingServicePolicy policy)
    : n_services_(service_names.size()),
      schedule_(schedule),
      policy_(policy),
      window_([&] {
        auto cols = std::move(service_names);
        cols.push_back("D");
        return bn::Dataset(std::move(cols));
      }()),
      last_seen_(n_services_) {
  KERTBN_EXPECTS(n_services_ > 0);
}

bool ManagementServer::ingest_interval(
    const std::vector<AgentReport>& reports, double response_mean) {
  if (obs::enabled()) MonitorMetrics::get().intervals.add(1);
  std::size_t carried = 0;
  std::vector<double> row(n_services_ + 1, 0.0);
  std::vector<bool> seen(n_services_, false);
  for (const auto& report : reports) {
    for (const auto& [service, mean] : report.service_means) {
      KERTBN_EXPECTS(service < n_services_);
      KERTBN_EXPECTS(!seen[service]);
      seen[service] = true;
      row[service] = mean;
      last_seen_[service] = mean;
    }
  }
  for (std::size_t s = 0; s < n_services_; ++s) {
    if (seen[s]) continue;
    switch (policy_) {
      case MissingServicePolicy::kRequire:
        KERTBN_EXPECTS(seen[s]);
        break;
      case MissingServicePolicy::kCarryForward:
        if (!last_seen_[s]) {
          // Nothing to carry yet — the interval cannot form a usable row.
          ++dropped_intervals_;
          if (obs::enabled()) MonitorMetrics::get().rows_dropped.add(1);
          return false;
        }
        row[s] = *last_seen_[s];
        ++carried;
        break;
      case MissingServicePolicy::kDropRow:
        ++dropped_intervals_;
        if (obs::enabled()) MonitorMetrics::get().rows_dropped.add(1);
        return false;
    }
  }
  row[n_services_] = response_mean;
  window_.add_row(row);
  ++total_points_;
  window_.keep_last_rows(schedule_.points_per_window());
  if (obs::enabled()) {
    MonitorMetrics& m = MonitorMetrics::get();
    m.rows_ingested.add(1);
    if (carried > 0) m.values_carried_forward.add(carried);
  }
  if (observer_) observer_(row);
  return true;
}

}  // namespace kertbn::sim
