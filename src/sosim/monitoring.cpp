#include "sosim/monitoring.hpp"

#include <algorithm>

#include "obs/span.hpp"
#include "overload/governor.hpp"

namespace kertbn::sim {

namespace {

/// Telemetry for the ingest path. The MissingServicePolicy decisions were
/// previously invisible: a dropped interval or a carried-forward cell left
/// no trace outside the single dropped_intervals() total. These counters
/// surface them in every MetricsSnapshot.
struct MonitorMetrics {
  obs::Counter& intervals;
  obs::Counter& rows_ingested;
  obs::Counter& rows_dropped;
  obs::Counter& values_carried_forward;
  obs::Counter& values_quarantined;
  obs::Counter& duplicate_values;
  obs::Counter& reports;
  obs::Histogram& batch_size;
  obs::Gauge& window_staleness;
  obs::Counter& shed_intervals;
  obs::Gauge& pending_intervals;

  static MonitorMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static MonitorMetrics m{reg.counter("monitor.intervals"),
                            reg.counter("monitor.rows_ingested"),
                            reg.counter("monitor.rows_dropped"),
                            reg.counter("monitor.values_carried_forward"),
                            reg.counter("monitor.values_quarantined"),
                            reg.counter("monitor.duplicate_values"),
                            reg.counter("monitor.reports"),
                            reg.histogram("monitor.agent_batch_size"),
                            reg.gauge("monitor.window_staleness"),
                            reg.counter("kert.ingest.shed_intervals"),
                            reg.gauge("kert.ingest.pending_intervals")};
    return m;
  }
};

/// A reported mean the server can trust: finite and non-negative. Anything
/// else is quarantined rather than entering the window.
bool usable_mean(double mean) { return std::isfinite(mean) && mean >= 0.0; }

}  // namespace

namespace detail {

void note_rejected_measurement() {
  if (!obs::enabled()) return;
  static obs::Counter& rejected = obs::MetricsRegistry::instance().counter(
      "kert.monitoring.rejected_measurements");
  rejected.add(1);
}

}  // namespace detail

MonitoringAgent::MonitoringAgent(std::size_t id,
                                 std::vector<std::size_t> services)
    : id_(id), services_(std::move(services)) {
  KERTBN_EXPECTS(!services_.empty());
  points_.reserve(services_.size());
  for (std::size_t s : services_) points_.emplace_back(s);
}

bool MonitoringAgent::record(std::size_t service, double elapsed) {
  auto it = std::find(services_.begin(), services_.end(), service);
  KERTBN_EXPECTS(it != services_.end());
  return points_[static_cast<std::size_t>(it - services_.begin())]
      .record(elapsed);
}

bool MonitoringAgent::has_complete_batch() const {
  return std::all_of(points_.begin(), points_.end(),
                     [](const MonitoringPoint& p) { return p.count() > 0; });
}

std::size_t MonitoringAgent::rejected_measurements() const {
  std::size_t total = 0;
  for (const auto& p : points_) total += p.rejected();
  return total;
}

AgentReport MonitoringAgent::flush() {
  KERTBN_SPAN_VAR(span, "monitor.flush");
  AgentReport report;
  report.agent = id_;
  report.service_means.reserve(points_.size());
  std::size_t measurements = 0;
  for (auto& p : points_) {
    measurements += p.count();
    if (const std::optional<double> mean = p.maybe_mean()) {
      report.service_means.emplace_back(p.service(), *mean);
    }
    p.clear();
  }
  span.tag("agent", static_cast<std::uint64_t>(id_));
  span.tag("measurements", static_cast<std::uint64_t>(measurements));
  if (obs::enabled()) {
    MonitorMetrics& m = MonitorMetrics::get();
    m.reports.add(1);
    m.batch_size.record(measurements);
  }
  return report;
}

ManagementServer::ManagementServer(std::vector<std::string> service_names,
                                   ModelSchedule schedule,
                                   MissingServicePolicy policy,
                                   DuplicateCoveragePolicy duplicate_policy)
    : n_services_(service_names.size()),
      schedule_(schedule),
      policy_(policy),
      duplicate_policy_(duplicate_policy),
      window_([&] {
        auto cols = std::move(service_names);
        cols.push_back("D");
        return bn::Dataset(std::move(cols));
      }()),
      last_seen_(n_services_) {
  KERTBN_EXPECTS(n_services_ > 0);
}

bool ManagementServer::ingest_interval(
    const std::vector<AgentReport>& reports, double response_mean) {
  // Write-ahead: the raw event reaches the journal before any state
  // change, so a crash at any later point can replay it.
  if (ingest_log_) ingest_log_(reports, response_mean);
  if (obs::enabled()) MonitorMetrics::get().intervals.add(1);
  std::size_t carried = 0;
  std::size_t fresh = 0;
  std::vector<double> row(n_services_ + 1, 0.0);
  std::vector<bool> seen(n_services_, false);
  for (const auto& report : reports) {
    for (const auto& [service, mean] : report.service_means) {
      KERTBN_EXPECTS(service < n_services_);
      if (!usable_mean(mean)) {
        // A corrupted mean is quarantined: it neither fills the cell nor
        // updates the carry-forward state. The service falls through to
        // the MissingServicePolicy below.
        ++quarantined_values_;
        if (obs::enabled()) MonitorMetrics::get().values_quarantined.add(1);
        continue;
      }
      if (seen[service]) {
        ++duplicate_values_;
        if (obs::enabled()) MonitorMetrics::get().duplicate_values.add(1);
        switch (duplicate_policy_) {
          case DuplicateCoveragePolicy::kFail:
            KERTBN_EXPECTS(!seen[service] && "duplicate service coverage");
            break;
          case DuplicateCoveragePolicy::kFirstWins:
            continue;
          case DuplicateCoveragePolicy::kLastWins:
            break;  // fall through to overwrite
        }
      } else {
        ++fresh;
      }
      seen[service] = true;
      row[service] = mean;
      last_seen_[service] = mean;
    }
  }
  // The response mean is not optional — a corrupted D drops the interval
  // (fabricating an end-to-end response time would bias the very quantity
  // the model predicts).
  if (!usable_mean(response_mean)) {
    ++quarantined_values_;
    if (obs::enabled()) MonitorMetrics::get().values_quarantined.add(1);
    ++dropped_intervals_;
    if (obs::enabled()) MonitorMetrics::get().rows_dropped.add(1);
    interval_yielded_no_row();
    return false;
  }
  // An interval with no fresh service observation at all would be a row
  // made entirely of carried-forward history — fabricated data that also
  // masks staleness. Treat it as missed instead.
  if (fresh == 0) {
    ++dropped_intervals_;
    if (obs::enabled()) MonitorMetrics::get().rows_dropped.add(1);
    interval_yielded_no_row();
    return false;
  }
  for (std::size_t s = 0; s < n_services_; ++s) {
    if (seen[s]) continue;
    switch (policy_) {
      case MissingServicePolicy::kRequire:
        KERTBN_EXPECTS(seen[s]);
        break;
      case MissingServicePolicy::kCarryForward:
        if (!last_seen_[s]) {
          // Nothing to carry yet — the interval cannot form a usable row.
          ++dropped_intervals_;
          if (obs::enabled()) MonitorMetrics::get().rows_dropped.add(1);
          interval_yielded_no_row();
          return false;
        }
        row[s] = *last_seen_[s];
        ++carried;
        break;
      case MissingServicePolicy::kDropRow:
        ++dropped_intervals_;
        if (obs::enabled()) MonitorMetrics::get().rows_dropped.add(1);
        interval_yielded_no_row();
        return false;
    }
  }
  row[n_services_] = response_mean;
  window_.add_row(row);
  ++total_points_;
  window_.keep_last_rows(schedule_.points_per_window());
  consecutive_missed_intervals_ = 0;
  if (obs::enabled()) {
    MonitorMetrics& m = MonitorMetrics::get();
    m.rows_ingested.add(1);
    if (carried > 0) m.values_carried_forward.add(carried);
    m.window_staleness.set(0.0);
  }
  if (observer_) observer_(row);
  for (const RowObserver& extra : extra_observers_) extra(row);
  return true;
}

void ManagementServer::configure_admission(IngestAdmission admission) {
  if (admission.max_pending == 0) admission.max_pending = 1;
  admission_ = admission;
  admission_configured_ = true;
}

bool ManagementServer::offer_interval(
    const std::vector<AgentReport>& reports, double response_mean,
    double now_s) {
  if (!admission_configured_) {
    return ingest_interval(reports, response_mean);
  }
  pending_.emplace_back(reports, response_mean);
  bool any_row = false;
  // Drain while the governor grants ingest tokens (no governor = open).
  while (!pending_.empty()) {
    if (admission_.governor != nullptr &&
        !admission_.governor->admit(ov::WorkClass::kIngest, now_s)) {
      break;
    }
    auto [batch, response] = std::move(pending_.front());
    pending_.pop_front();
    any_row = ingest_interval(batch, response) || any_row;
  }
  // Enforce the bound. Under kBlock the offering thread drains the excess
  // itself — backpressure instead of loss; the other policies shed.
  while (pending_.size() > admission_.max_pending) {
    switch (admission_.policy) {
      case IngestOverflowPolicy::kBlock: {
        auto [batch, response] = std::move(pending_.front());
        pending_.pop_front();
        any_row = ingest_interval(batch, response) || any_row;
        break;
      }
      case IngestOverflowPolicy::kShedOldest:
        shed_one(/*oldest=*/true);
        break;
      case IngestOverflowPolicy::kRejectNew:
        shed_one(/*oldest=*/false);
        break;
    }
  }
  // An offer that moved nothing into the window leaves the window one
  // interval staler, exactly like a missed interval; a later drain resets
  // the staleness when its row lands.
  if (!any_row) interval_yielded_no_row();
  if (obs::enabled()) {
    MonitorMetrics::get().pending_intervals.set(
        static_cast<double>(pending_.size()));
  }
  return any_row;
}

void ManagementServer::shed_one(bool oldest) {
  if (pending_.empty()) return;
  if (oldest) {
    pending_.pop_front();
  } else {
    pending_.pop_back();
  }
  ++shed_intervals_;
  if (obs::enabled()) MonitorMetrics::get().shed_intervals.add(1);
}

void ManagementServer::note_missed_interval() {
  if (missed_log_) missed_log_();
  if (obs::enabled()) MonitorMetrics::get().intervals.add(1);
  ++dropped_intervals_;
  if (obs::enabled()) MonitorMetrics::get().rows_dropped.add(1);
  interval_yielded_no_row();
}

void ManagementServer::interval_yielded_no_row() {
  ++consecutive_missed_intervals_;
  if (obs::enabled()) {
    MonitorMetrics::get().window_staleness.set(
        static_cast<double>(consecutive_missed_intervals_));
  }
}

ServerState ManagementServer::export_state() const {
  ServerState state;
  state.rows = window_.rows();
  state.cols = n_services_ + 1;
  state.window.reserve(state.rows * state.cols);
  for (std::size_t r = 0; r < state.rows; ++r) {
    const auto row = window_.row(r);
    state.window.insert(state.window.end(), row.begin(), row.end());
  }
  state.last_seen = last_seen_;
  state.total_points = total_points_;
  state.dropped_intervals = dropped_intervals_;
  state.quarantined_values = quarantined_values_;
  state.duplicate_values = duplicate_values_;
  state.consecutive_missed_intervals = consecutive_missed_intervals_;
  return state;
}

bool ManagementServer::restore_state(const ServerState& state) {
  if (state.cols != n_services_ + 1 ||
      state.last_seen.size() != n_services_ ||
      state.window.size() != state.rows * state.cols) {
    return false;
  }
  bn::Dataset window(window_.column_names());
  for (std::size_t r = 0; r < state.rows; ++r) {
    window.add_row(std::span<const double>(
        state.window.data() + r * state.cols, state.cols));
  }
  window_ = std::move(window);
  last_seen_ = state.last_seen;
  total_points_ = state.total_points;
  dropped_intervals_ = state.dropped_intervals;
  quarantined_values_ = state.quarantined_values;
  duplicate_values_ = state.duplicate_values;
  consecutive_missed_intervals_ = state.consecutive_missed_intervals;
  if (obs::enabled()) {
    static obs::Counter& recovered =
        obs::MetricsRegistry::instance().counter(
            "kert.monitoring.recovered_reports");
    recovered.add(state.rows);
    // The staleness gauge resumes where the crashed server left it, not at
    // zero: an autonomic controller watching it must not be told the
    // window is fresh when the outage is still in progress.
    MonitorMetrics::get().window_staleness.set(
        static_cast<double>(consecutive_missed_intervals_));
  }
  return true;
}

}  // namespace kertbn::sim
