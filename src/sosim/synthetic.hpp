#pragma once
/// \file synthetic.hpp
/// The Section 4 simulator: "simulated services receive and send calls among
/// each other and randomly generate a processing delay upon receiving calls.
/// They are assembled together by different workflows to constitute
/// simulated applications. The simulated delays (and response times) are
/// used to form training and testing data sets."
///
/// SyntheticEnvironment draws one (X_1..X_n, D) trace per request:
/// per-request shared-resource loads induce correlation between co-hosted
/// services, upstream coupling propagates deviations down the workflow, and
/// D is either the structural f(X) + leak noise (Equation 4) or the actual
/// episodic path time.

#include <vector>

#include "bn/dataset.hpp"
#include "common/rng.hpp"
#include "sosim/service_model.hpp"
#include "workflow/resource.hpp"
#include "workflow/workflow.hpp"

namespace kertbn::sim {

/// How the environment realizes the end-to-end response time.
enum class ResponseMode {
  /// D = f(X) + N(0, leak_sigma²): Equation 4 with the Cardoso reduction.
  kStructural,
  /// D is the realized execution-path time: choices take one branch, loops
  /// actually iterate. Deviates from f(X) exactly where the paper's "leak"
  /// does — used by the leak-sensitivity ablation.
  kEpisodic,
};

/// One end-to-end request observation.
struct RequestTrace {
  std::vector<double> service_times;  ///< X_i per service (seconds).
  double response_time = 0.0;         ///< D (seconds).
  /// Per-resource-group load realized for this request (the contention
  /// level co-hosted services shared) — exposed for the resource-node
  /// KERT-BN variant.
  std::vector<double> resource_loads;
};

/// A simulated service-oriented application.
class SyntheticEnvironment {
 public:
  /// \p models must have one entry per workflow service.
  SyntheticEnvironment(wf::Workflow workflow, wf::ResourceSharing sharing,
                       std::vector<ServiceModel> models,
                       ResourceLoadModel load_model = {},
                       double leak_sigma = 0.005);

  const wf::Workflow& workflow() const { return workflow_; }
  const wf::ResourceSharing& sharing() const { return sharing_; }
  const std::vector<ServiceModel>& models() const { return models_; }
  std::size_t service_count() const { return models_.size(); }
  double leak_sigma() const { return leak_sigma_; }

  /// Simulates one request.
  RequestTrace execute_request(Rng& rng,
                               ResponseMode mode = ResponseMode::kStructural) const;

  /// Simulates \p n requests into a BN-ready dataset with columns
  /// X_0..X_{n-1} (service names) followed by "D". This is the layout the
  /// KERT/NRT builders expect: node i = service i, node n = D.
  bn::Dataset generate(std::size_t n, Rng& rng,
                       ResponseMode mode = ResponseMode::kStructural) const;

  /// Extended layout for the resource-node KERT-BN variant (Section 3.2's
  /// "services forming the parents to a KERT-BN node embodying the
  /// resource they share"): columns are services, then one utilization
  /// column per resource group (named after the group), then "D".
  bn::Dataset generate_with_resources(
      std::size_t n, Rng& rng,
      ResponseMode mode = ResponseMode::kStructural) const;

  /// Timeout-count metric windows (Section 3.3's count form of Equation 4:
  /// D = Σ X_i). Each dataset row aggregates \p requests_per_window
  /// requests: X_i counts how many exceeded service i's timeout
  /// \p timeout_s[i]; D counts all sub-transaction timeouts end-to-end,
  /// which the workflow reduction makes exactly the sum.
  bn::Dataset generate_timeout_counts(std::size_t windows,
                                      std::size_t requests_per_window,
                                      std::span<const double> timeout_s,
                                      Rng& rng) const;

  /// Expected elapsed time per service (for priors and scenario design).
  std::vector<double> expected_service_times() const;

  /// Rescales one service's base demand: factor < 1 accelerates (pAccel's
  /// "reduce X4 to 90% of what it was"), factor > 1 degrades (e.g. remote
  /// site contention). factor must be > 0.
  void accelerate_service(std::size_t service, double factor);

  /// Multiplies every resource group's sampled load (diurnal cycles and
  /// flash crowds). Expected service times stay at the nominal level — the
  /// extra contention is exactly the drift a model must track. scale > 0.
  void set_load_scale(double scale);
  double load_scale() const { return load_scale_; }

  /// Replaces the workflow composition tree over the same service set (the
  /// choice-probability drift hook); derived sampling state is rebuilt.
  void replace_workflow_root(wf::Node::Ptr root);

 private:
  /// Episodic walk of the workflow tree; returns path response time.
  double episodic_time(const wf::Node& node,
                       std::span<const double> service_times, Rng& rng) const;

  /// Recomputes the upstream lists, sampling order, response expression and
  /// expected-time cache from the current workflow.
  void rebuild_derived();

  wf::Workflow workflow_;
  wf::ResourceSharing sharing_;
  std::vector<ServiceModel> models_;
  ResourceLoadModel load_model_;
  double leak_sigma_;
  double load_scale_ = 1.0;

  // Derived: per-service upstream lists and a service sampling order.
  std::vector<std::vector<std::size_t>> upstream_;
  std::vector<std::size_t> sample_order_;
  // groups_of_[s] = indices into sharing_.groups containing service s.
  std::vector<std::vector<std::size_t>> groups_of_;
  wf::Expr::Ptr response_expr_;
  std::vector<double> expected_times_;  // cache of expected_service_times()
};

/// Randomly parameterized environment over \p n_services (random workflow,
/// random co-location groups, random service models) — the population the
/// Section 4 sweeps draw from.
SyntheticEnvironment make_random_environment(std::size_t n_services, Rng& rng);

/// The eDiaMoND test-bed stand-in (Section 5): the Figure 1 workflow, the
/// paper's host layout (four AIX machines + one dual-CPU Linux server,
/// local/remote sites), heavier remote latencies from request forwarding.
SyntheticEnvironment make_ediamond_environment();

}  // namespace kertbn::sim
