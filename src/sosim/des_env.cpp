#include "sosim/des_env.hpp"

#include <algorithm>
#include <memory>

#include "common/contract.hpp"
#include "workflow/ediamond.hpp"

namespace kertbn::sim {

DesEnvironment::DesEnvironment(wf::Workflow workflow, HostMap hosts,
                               std::vector<ServiceModel> models,
                               double arrival_rate, std::uint64_t seed)
    : workflow_(std::move(workflow)),
      hosts_(std::move(hosts)),
      models_(std::move(models)),
      arrival_rate_(arrival_rate),
      rng_(seed) {
  KERTBN_EXPECTS(models_.size() == workflow_.service_count());
  KERTBN_EXPECTS(hosts_.host_of.size() == models_.size());
  KERTBN_EXPECTS(arrival_rate_ > 0.0);
  for (std::size_t h : hosts_.host_of) {
    KERTBN_EXPECTS(h < hosts_.host_count);
  }
  machines_.resize(hosts_.host_count);
}

void DesEnvironment::schedule_next_arrival() {
  const double gap = rng_.exponential(arrival_rate_);
  sim_.schedule_in(gap, [this](des::Simulator&) {
    auto trace = std::make_shared<DesRequestTrace>();
    trace->service_times.assign(models_.size(), std::nullopt);
    const double start = sim_.now();
    execute_node(*workflow_.root(), start, 1.0, trace,
                 [this, trace, start](double finished) {
                   trace->response_time = finished - start;
                   trace->completed_at = finished;
                   traces_.push_back(*trace);
                 });
    schedule_next_arrival();
  });
}

void DesEnvironment::run_for(double duration) {
  KERTBN_EXPECTS(duration > 0.0);
  const double until = sim_.now() + duration;
  if (sim_.pending() == 0) schedule_next_arrival();
  sim_.run_until(until);
}

void DesEnvironment::accelerate_service(std::size_t service, double factor) {
  KERTBN_EXPECTS(service < models_.size());
  KERTBN_EXPECTS(factor > 0.0 && factor <= 1.0);
  models_[service].base_mean *= factor;
  models_[service].noise_sigma *= factor;
}

void DesEnvironment::set_arrival_rate(double rate) {
  KERTBN_EXPECTS(rate > 0.0);
  arrival_rate_ = rate;
}

void DesEnvironment::set_workflow_root(wf::Node::Ptr root) {
  KERTBN_EXPECTS(root != nullptr);
  retired_roots_.push_back(workflow_.root());
  workflow_ = wf::Workflow(workflow_.service_names(), std::move(root));
}

void DesEnvironment::execute_node(const wf::Node& node, double start,
                                  double work_scale,
                                  std::shared_ptr<DesRequestTrace> trace,
                                  std::function<void(double)> done) {
  switch (node.kind()) {
    case wf::NodeKind::kActivity: {
      const std::size_t svc = node.service_index();
      Machine& machine = machines_[hosts_.host_of[svc]];
      // FIFO processor: the job waits for the backlog, then occupies the
      // machine for its sampled demand (scaled to this data partition).
      const double demand = models_[svc].sample_base(rng_) * work_scale;
      const double begin = std::max(start, machine.busy_until);
      const double finish = begin + demand;
      machine.busy_until = finish;
      const double elapsed = finish - start;  // queue wait + demand
      sim_.schedule_at(finish, [trace, svc, elapsed, done,
                                this](des::Simulator&) {
        // A service invoked several times in one request (loops) reports
        // its accumulated elapsed time, like a monitoring point would.
        auto& slot = trace->service_times[svc];
        slot = slot.value_or(0.0) + elapsed;
        done(sim_.now());
      });
      return;
    }
    case wf::NodeKind::kSequence: {
      // Run children serially via a self-referential continuation. The
      // stored function holds only a weak self-reference — each scheduled
      // continuation carries the strong one — so the chain is freed when
      // its last event fires instead of leaking as a shared_ptr cycle.
      auto advance = std::make_shared<std::function<void(std::size_t, double)>>();
      std::weak_ptr<std::function<void(std::size_t, double)>> weak = advance;
      *advance = [this, &node, trace, done, weak, work_scale](std::size_t idx,
                                                              double at) {
        if (idx == node.children().size()) {
          done(at);
          return;
        }
        auto self = weak.lock();
        execute_node(*node.children()[idx], at, work_scale, trace,
                     [self, idx](double finished) {
                       (*self)(idx + 1, finished);
                     });
      };
      (*advance)(0, start);
      return;
    }
    case wf::NodeKind::kParallel: {
      auto remaining = std::make_shared<std::size_t>(node.children().size());
      auto latest = std::make_shared<double>(start);
      for (const auto& child : node.children()) {
        execute_node(*child, start, work_scale, trace,
                     [remaining, latest, done](double finished) {
                       *latest = std::max(*latest, finished);
                       if (--*remaining == 0) done(*latest);
                     });
      }
      return;
    }
    case wf::NodeKind::kChoice: {
      const std::size_t branch = rng_.categorical(node.choice_probs());
      execute_node(*node.children()[branch], start, work_scale, trace,
                   std::move(done));
      return;
    }
    case wf::NodeKind::kLoop: {
      // Same weak-self pattern as kSequence to avoid the cycle leak.
      const double repeat = node.repeat_prob();
      auto again = std::make_shared<std::function<void(double)>>();
      std::weak_ptr<std::function<void(double)>> weak = again;
      *again = [this, &node, trace, done, weak, repeat,
                work_scale](double at) {
        auto self = weak.lock();
        execute_node(*node.children().front(), at, work_scale, trace,
                     [this, done, self, repeat](double finished) {
                       if (rng_.bernoulli(repeat)) {
                         (*self)(finished);
                       } else {
                         done(finished);
                       }
                     });
      };
      (*again)(start);
      return;
    }
    case wf::NodeKind::kMap: {
      // Draw this execution's fan-out, then run k parallel instances of
      // the body, each over 1/k of the data; join like kParallel. Elapsed
      // times accumulate per service across instances, so the monitored
      // X_s still reflects the full data's work.
      const std::size_t k =
          node.map_k_min() + rng_.categorical(node.map_k_weights());
      auto remaining = std::make_shared<std::size_t>(k);
      auto latest = std::make_shared<double>(start);
      const double instance_scale = work_scale / static_cast<double>(k);
      for (std::size_t i = 0; i < k; ++i) {
        execute_node(*node.children().front(), start, instance_scale, trace,
                     [remaining, latest, done](double finished) {
                       *latest = std::max(*latest, finished);
                       if (--*remaining == 0) done(*latest);
                     });
      }
      return;
    }
    case wf::NodeKind::kDataChoice: {
      // Per-request data class conditions the branch distribution.
      const std::size_t cls = rng_.categorical(node.class_probs());
      const std::size_t branch = rng_.categorical(node.branch_probs()[cls]);
      execute_node(*node.children()[branch], start, work_scale, trace,
                   std::move(done));
      return;
    }
  }
  KERTBN_ASSERT(false && "unreachable");
}

bn::Dataset DesEnvironment::dataset_between(double from_time, double to_time,
                                            double report_interval) const {
  KERTBN_EXPECTS(report_interval > 0.0);
  KERTBN_EXPECTS(to_time > from_time);
  std::vector<std::string> columns = workflow_.service_names();
  columns.push_back("D");
  bn::Dataset data(std::move(columns));

  const std::size_t n = models_.size();
  const auto intervals = static_cast<std::size_t>(
      std::max(1.0, (to_time - from_time) / report_interval));
  std::vector<double> sums(n + 1, 0.0);
  std::vector<std::size_t> counts(n, 0);

  for (std::size_t k = 0; k < intervals; ++k) {
    const double lo = from_time + static_cast<double>(k) * report_interval;
    const double hi = lo + report_interval;
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    std::size_t request_count = 0;

    for (const auto& trace : traces_) {
      if (trace.completed_at <= lo || trace.completed_at > hi) continue;
      ++request_count;
      sums[n] += trace.response_time;
      for (std::size_t s = 0; s < n; ++s) {
        if (trace.service_times[s].has_value()) {
          sums[s] += *trace.service_times[s];
          ++counts[s];
        }
      }
    }
    if (request_count == 0) continue;
    bool complete = true;
    std::vector<double> row(n + 1);
    for (std::size_t s = 0; s < n; ++s) {
      if (counts[s] == 0) {
        complete = false;
        break;
      }
      row[s] = sums[s] / static_cast<double>(counts[s]);
    }
    if (!complete) continue;
    row[n] = sums[n] / static_cast<double>(request_count);
    data.add_row(row);
  }
  return data;
}

DesEnvironment make_ediamond_des_environment(double arrival_rate,
                                             std::uint64_t seed) {
  using S = wf::EdiamondServices;
  wf::Workflow workflow = wf::make_ediamond_workflow();

  HostMap hosts;
  hosts.host_count = 5;
  hosts.host_of.assign(S::kCount, 0);
  hosts.host_of[S::kImageList] = 0;   // shared Linux server
  hosts.host_of[S::kWorkList] = 0;
  hosts.host_of[S::kImageLocatorLocal] = 1;
  hosts.host_of[S::kOgsaDaiLocal] = 2;
  hosts.host_of[S::kImageLocatorRemote] = 3;
  hosts.host_of[S::kOgsaDaiRemote] = 4;

  std::vector<ServiceModel> models(S::kCount);
  models[S::kImageList] = {0.12, 0.020, 0.25, 0.015};
  models[S::kWorkList] = {0.10, 0.018, 0.30, 0.015};
  models[S::kImageLocatorLocal] = {0.15, 0.025, 0.30, 0.020};
  models[S::kImageLocatorRemote] = {0.28, 0.060, 0.35, 0.030};
  models[S::kOgsaDaiLocal] = {0.22, 0.035, 0.30, 0.025};
  models[S::kOgsaDaiRemote] = {0.34, 0.070, 0.35, 0.035};

  return DesEnvironment(std::move(workflow), std::move(hosts),
                        std::move(models), arrival_rate, seed);
}

}  // namespace kertbn::sim
