#include "sosim/synthetic.hpp"

#include <algorithm>

#include "common/contract.hpp"
#include "graph/dag.hpp"
#include "workflow/ediamond.hpp"
#include "workflow/generator.hpp"

namespace kertbn::sim {

SyntheticEnvironment::SyntheticEnvironment(wf::Workflow workflow,
                                           wf::ResourceSharing sharing,
                                           std::vector<ServiceModel> models,
                                           ResourceLoadModel load_model,
                                           double leak_sigma)
    : workflow_(std::move(workflow)),
      sharing_(std::move(sharing)),
      models_(std::move(models)),
      load_model_(load_model),
      leak_sigma_(leak_sigma) {
  KERTBN_EXPECTS(models_.size() == workflow_.service_count());
  KERTBN_EXPECTS(leak_sigma_ > 0.0);

  const std::size_t n = models_.size();
  groups_of_.resize(n);
  for (std::size_t g = 0; g < sharing_.groups.size(); ++g) {
    for (std::size_t s : sharing_.groups[g].services) {
      KERTBN_EXPECTS(s < n);
      groups_of_[s].push_back(g);
    }
  }
  rebuild_derived();
}

void SyntheticEnvironment::rebuild_derived() {
  const std::size_t n = models_.size();
  upstream_.assign(n, {});
  graph::Dag order_dag(n);
  for (const auto& [a, b] : workflow_.upstream_edges()) {
    upstream_[b].push_back(a);
    order_dag.add_edge(a, b);
  }
  sample_order_ = order_dag.topological_order();
  response_expr_ = workflow_.response_time_expr();
  expected_times_ = expected_service_times();
}

void SyntheticEnvironment::set_load_scale(double scale) {
  KERTBN_EXPECTS(scale > 0.0);
  load_scale_ = scale;
}

void SyntheticEnvironment::replace_workflow_root(wf::Node::Ptr root) {
  KERTBN_EXPECTS(root != nullptr);
  workflow_ = wf::Workflow(workflow_.service_names(), std::move(root));
  rebuild_derived();
}

RequestTrace SyntheticEnvironment::execute_request(Rng& rng,
                                                   ResponseMode mode) const {
  const std::size_t n = models_.size();
  RequestTrace trace;
  trace.service_times.assign(n, 0.0);

  // One shared load draw per resource group per request: co-hosted services
  // see the same contention level, which correlates their elapsed times.
  trace.resource_loads.assign(sharing_.groups.size(), 0.0);
  std::vector<double>& group_load = trace.resource_loads;
  for (double& l : group_load) l = load_model_.sample(rng) * load_scale_;

  for (std::size_t s : sample_order_) {
    double upstream_dev = 0.0;
    for (std::size_t u : upstream_[s]) {
      upstream_dev += trace.service_times[u] - expected_times_[u];
    }
    double load = 0.0;
    for (std::size_t g : groups_of_[s]) load += group_load[g];
    trace.service_times[s] =
        models_[s].sample_elapsed(upstream_dev, load, rng);
  }

  if (mode == ResponseMode::kStructural) {
    trace.response_time =
        std::max(response_expr_->evaluate(trace.service_times) +
                     rng.normal(0.0, leak_sigma_),
                 0.001);
  } else {
    trace.response_time =
        std::max(episodic_time(*workflow_.root(), trace.service_times, rng),
                 0.001);
  }
  return trace;
}

double SyntheticEnvironment::episodic_time(
    const wf::Node& node, std::span<const double> service_times,
    Rng& rng) const {
  switch (node.kind()) {
    case wf::NodeKind::kActivity:
      return service_times[node.service_index()];
    case wf::NodeKind::kSequence: {
      double t = 0.0;
      for (const auto& c : node.children()) {
        t += episodic_time(*c, service_times, rng);
      }
      return t;
    }
    case wf::NodeKind::kParallel: {
      double t = 0.0;
      for (const auto& c : node.children()) {
        t = std::max(t, episodic_time(*c, service_times, rng));
      }
      return t;
    }
    case wf::NodeKind::kChoice: {
      const std::size_t branch = rng.categorical(node.choice_probs());
      return episodic_time(*node.children()[branch], service_times, rng);
    }
    case wf::NodeKind::kLoop: {
      // Geometric iteration count with continue-probability p (>= 1 run).
      double t = episodic_time(*node.children().front(), service_times, rng);
      while (rng.bernoulli(node.repeat_prob())) {
        t += episodic_time(*node.children().front(), service_times, rng);
      }
      return t;
    }
    case wf::NodeKind::kMap: {
      // k parallel instances each over 1/k of the data: makespan is the
      // slowest instance. Instances differ wherever the body is stochastic
      // (choices, loops) — the straggler spread the leak term absorbs.
      const std::size_t k =
          node.map_k_min() + rng.categorical(node.map_k_weights());
      double t = 0.0;
      for (std::size_t i = 0; i < k; ++i) {
        t = std::max(t, episodic_time(*node.children().front(),
                                      service_times, rng) /
                            static_cast<double>(k));
      }
      return t;
    }
    case wf::NodeKind::kDataChoice: {
      const std::size_t cls = rng.categorical(node.class_probs());
      const std::size_t branch = rng.categorical(node.branch_probs()[cls]);
      return episodic_time(*node.children()[branch], service_times, rng);
    }
  }
  KERTBN_ASSERT(false && "unreachable");
  return 0.0;
}

bn::Dataset SyntheticEnvironment::generate(std::size_t n, Rng& rng,
                                           ResponseMode mode) const {
  std::vector<std::string> columns = workflow_.service_names();
  columns.push_back("D");
  bn::Dataset data(std::move(columns));
  std::vector<double> row(models_.size() + 1);
  for (std::size_t i = 0; i < n; ++i) {
    const RequestTrace trace = execute_request(rng, mode);
    std::copy(trace.service_times.begin(), trace.service_times.end(),
              row.begin());
    row.back() = trace.response_time;
    data.add_row(row);
  }
  return data;
}

bn::Dataset SyntheticEnvironment::generate_with_resources(
    std::size_t n, Rng& rng, ResponseMode mode) const {
  std::vector<std::string> columns = workflow_.service_names();
  for (const auto& group : sharing_.groups) columns.push_back(group.name);
  columns.push_back("D");
  bn::Dataset data(std::move(columns));
  std::vector<double> row(models_.size() + sharing_.groups.size() + 1);
  for (std::size_t i = 0; i < n; ++i) {
    const RequestTrace trace = execute_request(rng, mode);
    std::copy(trace.service_times.begin(), trace.service_times.end(),
              row.begin());
    std::copy(trace.resource_loads.begin(), trace.resource_loads.end(),
              row.begin() + static_cast<std::ptrdiff_t>(models_.size()));
    row.back() = trace.response_time;
    data.add_row(row);
  }
  return data;
}

bn::Dataset SyntheticEnvironment::generate_timeout_counts(
    std::size_t windows, std::size_t requests_per_window,
    std::span<const double> timeout_s, Rng& rng) const {
  KERTBN_EXPECTS(timeout_s.size() == models_.size());
  KERTBN_EXPECTS(requests_per_window >= 1);
  std::vector<std::string> columns = workflow_.service_names();
  columns.push_back("D");
  bn::Dataset data(std::move(columns));

  std::vector<double> row(models_.size() + 1);
  for (std::size_t w = 0; w < windows; ++w) {
    std::fill(row.begin(), row.end(), 0.0);
    for (std::size_t r = 0; r < requests_per_window; ++r) {
      const RequestTrace trace =
          execute_request(rng, ResponseMode::kEpisodic);
      for (std::size_t s = 0; s < models_.size(); ++s) {
        if (trace.service_times[s] > timeout_s[s]) {
          row[s] += 1.0;
          // Every sub-transaction timeout is one end-to-end timeout
          // event: the count form of Equation 4, D = Σ X_i exactly.
          row.back() += 1.0;
        }
      }
    }
    data.add_row(row);
  }
  return data;
}

std::vector<double> SyntheticEnvironment::expected_service_times() const {
  std::vector<double> out(models_.size());
  for (std::size_t s = 0; s < models_.size(); ++s) {
    double load = 0.0;
    for (std::size_t g : groups_of_[s]) {
      (void)g;
      load += load_model_.mean();
    }
    out[s] = models_[s].expected_elapsed(load);
  }
  return out;
}

void SyntheticEnvironment::accelerate_service(std::size_t service,
                                              double factor) {
  KERTBN_EXPECTS(service < models_.size());
  KERTBN_EXPECTS(factor > 0.0);
  models_[service].base_mean *= factor;
  models_[service].noise_sigma *= factor;
  expected_times_ = expected_service_times();
}

SyntheticEnvironment make_random_environment(std::size_t n_services,
                                             Rng& rng) {
  wf::Workflow workflow = wf::make_random_workflow(n_services, rng);

  // Co-locate services on "machines" of 2-6 services each.
  wf::ResourceSharing sharing;
  std::vector<std::size_t> pool = rng.permutation(n_services);
  std::size_t start = 0;
  std::size_t machine = 0;
  while (start < pool.size()) {
    const std::size_t take = std::min<std::size_t>(
        2 + rng.uniform_index(5), pool.size() - start);
    wf::ResourceGroup group;
    group.name = "cpu_host_" + std::to_string(machine++);
    group.services.assign(pool.begin() + static_cast<std::ptrdiff_t>(start),
                          pool.begin() +
                              static_cast<std::ptrdiff_t>(start + take));
    sharing.groups.push_back(std::move(group));
    start += take;
  }

  std::vector<ServiceModel> models(n_services);
  for (auto& m : models) {
    m.base_mean = rng.uniform(0.05, 0.5);
    m.noise_sigma = m.base_mean * rng.uniform(0.1, 0.3);
    m.upstream_coupling = rng.uniform(0.1, 0.5);
    m.resource_sensitivity = m.base_mean * rng.uniform(0.05, 0.2);
  }
  return SyntheticEnvironment(std::move(workflow), std::move(sharing),
                              std::move(models));
}

SyntheticEnvironment make_ediamond_environment() {
  using S = wf::EdiamondServices;
  wf::Workflow workflow = wf::make_ediamond_workflow();

  // Host layout of Section 5: image_list and work_list share the Linux
  // server; each locator/dai pair shares a site machine; the remote pair
  // additionally shares the forwarded network path.
  wf::ResourceSharing sharing;
  sharing.groups.push_back(
      {"linux_server_cpu", {S::kImageList, S::kWorkList}});
  sharing.groups.push_back(
      {"local_site_host", {S::kImageLocatorLocal, S::kOgsaDaiLocal}});
  sharing.groups.push_back(
      {"remote_site_host", {S::kImageLocatorRemote, S::kOgsaDaiRemote}});
  sharing.groups.push_back(
      {"remote_link", {S::kImageLocatorRemote, S::kOgsaDaiRemote}});

  std::vector<ServiceModel> models(S::kCount);
  models[S::kImageList] = {0.12, 0.020, 0.25, 0.015};
  models[S::kWorkList] = {0.10, 0.018, 0.30, 0.015};
  models[S::kImageLocatorLocal] = {0.15, 0.025, 0.30, 0.020};
  // The remote site sits behind imposed request forwarding: higher base
  // latency and more variance than its local twin.
  models[S::kImageLocatorRemote] = {0.28, 0.060, 0.35, 0.030};
  models[S::kOgsaDaiLocal] = {0.22, 0.035, 0.30, 0.025};
  models[S::kOgsaDaiRemote] = {0.34, 0.070, 0.35, 0.035};

  return SyntheticEnvironment(std::move(workflow), std::move(sharing),
                              std::move(models));
}

}  // namespace kertbn::sim
