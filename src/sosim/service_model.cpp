#include "sosim/service_model.hpp"

#include <algorithm>

namespace kertbn::sim {

double ServiceModel::sample_base(Rng& rng) const {
  return std::max(rng.normal(base_mean, noise_sigma), 0.001);
}

double ServiceModel::sample_elapsed(double upstream_deviation_sum,
                                    double resource_load, Rng& rng) const {
  const double t = sample_base(rng) +
                   upstream_coupling * upstream_deviation_sum +
                   resource_sensitivity * resource_load;
  return std::max(t, 0.001);
}

double ServiceModel::expected_elapsed(double expected_resource_load) const {
  return base_mean + resource_sensitivity * expected_resource_load;
}

}  // namespace kertbn::sim
