#include "sosim/service_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/contract.hpp"

namespace kertbn::sim {

double ServiceModel::sample_base(Rng& rng) const {
  switch (demand) {
    case DemandDistribution::kNormal:
      return std::max(rng.normal(base_mean, noise_sigma), 0.001);
    case DemandDistribution::kLognormal: {
      // Moment-matched: E = base_mean, SD = noise_sigma.
      const double cv2 =
          (noise_sigma / base_mean) * (noise_sigma / base_mean);
      const double sigma_ln2 = std::log1p(cv2);
      const double mu_ln = std::log(base_mean) - 0.5 * sigma_ln2;
      return std::max(rng.lognormal(mu_ln, std::sqrt(sigma_ln2)), 0.001);
    }
    case DemandDistribution::kPareto: {
      // Scale chosen so the mean xm·α/(α−1) equals base_mean.
      KERTBN_EXPECTS(tail_alpha > 1.0);
      const double xm = base_mean * (tail_alpha - 1.0) / tail_alpha;
      return std::max(rng.pareto(xm, tail_alpha), 0.001);
    }
  }
  KERTBN_ASSERT(false && "unreachable");
  return base_mean;
}

double ServiceModel::sample_elapsed(double upstream_deviation_sum,
                                    double resource_load, Rng& rng) const {
  const double t = sample_base(rng) +
                   upstream_coupling * upstream_deviation_sum +
                   resource_sensitivity * resource_load;
  return std::max(t, 0.001);
}

double ServiceModel::expected_elapsed(double expected_resource_load) const {
  return base_mean + resource_sensitivity * expected_resource_load;
}

}  // namespace kertbn::sim
