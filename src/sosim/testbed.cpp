#include "sosim/testbed.hpp"

#include <cmath>

#include "common/contract.hpp"
#include "fault/fault_injector.hpp"
#include "overload/governor.hpp"
#include "workflow/ediamond.hpp"

namespace kertbn::sim {
MonitoredTestbed::MonitoredTestbed(DesEnvironment environment, HostMap hosts,
                                   ModelSchedule schedule)
    : env_(std::move(environment)),
      hosts_(std::move(hosts)),
      server_(env_.workflow().service_names(), schedule) {
  KERTBN_EXPECTS(hosts_.host_of.size() == env_.workflow().service_count());
  std::vector<std::vector<std::size_t>> per_host(hosts_.host_count);
  for (std::size_t s = 0; s < hosts_.host_of.size(); ++s) {
    per_host[hosts_.host_of[s]].push_back(s);
  }
  agent_of_host_.assign(hosts_.host_count,
                        static_cast<std::size_t>(-1));
  for (std::size_t h = 0; h < per_host.size(); ++h) {
    if (per_host[h].empty()) continue;
    agent_of_host_[h] = agents_.size();
    agents_.emplace_back(h, per_host[h]);
  }
  measurement_seq_.assign(hosts_.host_of.size(), 0);
}

void MonitoredTestbed::restart_server() {
  const ModelSchedule schedule = server_.schedule();
  const MissingServicePolicy policy = server_.policy();
  const DuplicateCoveragePolicy duplicate_policy = server_.duplicate_policy();
  server_ = ManagementServer(env_.workflow().service_names(), schedule,
                             policy, duplicate_policy);
  // In-flight delayed reports lived in the dead process; they die with it.
  delayed_.clear();
}

bool MonitoredTestbed::advance_interval() {
  const double interval_start = env_.now();
  env_.run_for(server_.schedule().t_data);
  const double interval_end = env_.now();
  const std::size_t interval = interval_index_++;

  // Publish simulation time to the fault layer so channel partitions and
  // crash windows scheduled in sim seconds resolve correctly.
  const fault::FaultInjector* inj = fault::active();
  if (inj != nullptr) {
    fault::set_sim_now(interval_end);
    // Realize a scheduled CPU-pressure stall as real (timing-only) spin
    // work; the *deterministic* face of the same fault feeds the governor
    // below via LoadSignals::cpu_pressure.
    fault::maybe_cpu_stall();
  }

  // An agent is "down" this interval when its crash window covers either
  // endpoint: a crashed agent batches nothing and reports nothing (its
  // in-flight measurements die with it).
  auto agent_down = [&](std::size_t agent_id) {
    return inj != nullptr && (inj->agent_down(agent_id, interval_start) ||
                              inj->agent_down(agent_id, interval_end));
  };

  // Route the interval's completed traces through the monitoring points,
  // applying per-measurement corruption on the way (a corrupted NaN or
  // negative value is quarantined by the point; an outlier passes — it is
  // a legitimate-looking measurement and must be survived downstream).
  double response_sum = 0.0;
  std::size_t response_count = 0;
  const auto& traces = env_.traces();
  for (; next_trace_ < traces.size(); ++next_trace_) {
    const auto& trace = traces[next_trace_];
    response_sum += trace.response_time;
    ++response_count;
    for (std::size_t s = 0; s < trace.service_times.size(); ++s) {
      if (!trace.service_times[s].has_value()) continue;
      const std::size_t agent_id = hosts_.host_of[s];
      const std::size_t seq = measurement_seq_[s]++;
      if (agent_down(agent_id)) continue;
      double elapsed = *trace.service_times[s];
      if (inj != nullptr) {
        if (const auto corrupted = inj->corrupt_measurement(s, seq, elapsed)) {
          elapsed = *corrupted;
        }
      }
      agents_[agent_of_host_[agent_id]].record(s, elapsed);
    }
  }

  // A data point needs full coverage: every agent must have heard from
  // every hosted service this interval (the paper's dComp handles gaps;
  // the server itself only assembles complete rows). Under an installed
  // fault injector gaps are the expected case, so incomplete intervals
  // are handed to the server's MissingServicePolicy instead of skipped.
  const bool tolerate_gaps = ingest_incomplete_ || inj != nullptr;
  bool complete = response_count > 0;
  for (const auto& agent : agents_) {
    complete = complete && agent.has_complete_batch();
  }

  // Flush every agent (clears batches either way) and run each report
  // through the fault plan's report fabric: crash discards, loss drops,
  // partition drops everything, duplication re-sends, delay buffers the
  // report for the next interval.
  const bool partitioned = inj != nullptr && inj->partitioned(interval_end);
  std::vector<AgentReport> reports;
  reports.reserve(agents_.size() + delayed_.size());
  std::vector<AgentReport> delayed_next;
  for (auto& agent : agents_) {
    AgentReport report = agent.flush();
    if (report.service_means.empty()) continue;
    if (agent_down(report.agent) || partitioned) continue;
    if (inj != nullptr) {
      if (inj->drop_report(report.agent, interval)) continue;
      if (inj->delay_report(report.agent, interval)) {
        delayed_next.push_back(std::move(report));
        continue;
      }
      if (inj->duplicate_report(report.agent, interval)) {
        reports.push_back(report);
      }
    }
    reports.push_back(std::move(report));
  }
  // Last interval's delayed reports arrive now — after the fresh ones, so
  // kFirstWins keeps current data. A partition also swallows them.
  if (!partitioned) {
    for (auto& report : delayed_) reports.push_back(std::move(report));
  }
  delayed_ = std::move(delayed_next);

  // Feed the governor one deterministic signal sample per interval,
  // *before* ingestion: backlog is what last interval left pending,
  // offered load compares this interval's completion count to a slow EWMA
  // of past counts (alpha 0.05, so a flash crowd reads as >1 while the
  // baseline barely moves), CPU pressure comes straight off the fault
  // schedule. Same seed, same trace, same signals — bit-identical ladder.
  if (governor_ != nullptr) {
    const double completions = static_cast<double>(response_count);
    ov::LoadSignals signals;
    signals.ingest_backlog =
        static_cast<double>(server_.pending_intervals());
    if (!load_primed_) {
      load_primed_ = true;
      load_ewma_ = completions;
      signals.offered_load = completions > 0.0 ? 1.0 : 0.0;
    } else {
      signals.offered_load =
          load_ewma_ > 0.0 ? completions / load_ewma_ : 0.0;
      load_ewma_ = 0.05 * completions + 0.95 * load_ewma_;
    }
    signals.cpu_pressure =
        inj != nullptr ? inj->cpu_pressure(interval_end) : 0.0;
    governor_->update(interval_end, signals);
  }

  if (!tolerate_gaps && !complete) return false;
  if (response_count == 0 || reports.empty()) {
    if (tolerate_gaps) server_.note_missed_interval();
    return false;
  }
  const double response_mean = response_sum / double(response_count);

  // An ingest-burst fault multiplies the offered ingest work: the same
  // interval batch is offered `factor` times, deterministically. With
  // admission configured the extras land in the bounded pending queue
  // (and are shed or deferred per policy); without it the path below is
  // byte-for-byte the seed behavior.
  const double burst =
      inj != nullptr ? inj->ingest_burst_factor(interval_end) : 1.0;
  const std::size_t offers = static_cast<std::size_t>(
      std::max<long long>(1, std::llround(burst)));
  if (!server_.admission_configured() && offers == 1) {
    return server_.ingest_interval(reports, response_mean);
  }
  bool any = false;
  for (std::size_t o = 0; o < offers; ++o) {
    any = server_.offer_interval(reports, response_mean, interval_end) || any;
  }
  return any;
}

void MonitoredTestbed::advance_construction_intervals(
    std::size_t n, const std::function<void(double)>& on_construction_due) {
  for (std::size_t c = 0; c < n; ++c) {
    for (std::size_t i = 0; i < server_.schedule().alpha_model; ++i) {
      advance_interval();
    }
    if (on_construction_due) on_construction_due(env_.now());
  }
}

MonitoredTestbed make_monitored_ediamond(double arrival_rate,
                                         std::uint64_t seed,
                                         ModelSchedule schedule) {
  DesEnvironment env = make_ediamond_des_environment(arrival_rate, seed);
  // Mirror the host layout used by the DES factory.
  using S = wf::EdiamondServices;
  HostMap hosts;
  hosts.host_count = 5;
  hosts.host_of.assign(S::kCount, 0);
  hosts.host_of[S::kImageList] = 0;
  hosts.host_of[S::kWorkList] = 0;
  hosts.host_of[S::kImageLocatorLocal] = 1;
  hosts.host_of[S::kOgsaDaiLocal] = 2;
  hosts.host_of[S::kImageLocatorRemote] = 3;
  hosts.host_of[S::kOgsaDaiRemote] = 4;
  return MonitoredTestbed(std::move(env), std::move(hosts), schedule);
}

}  // namespace kertbn::sim
