#include "sosim/testbed.hpp"

#include "common/contract.hpp"
#include "workflow/ediamond.hpp"

namespace kertbn::sim {
MonitoredTestbed::MonitoredTestbed(DesEnvironment environment, HostMap hosts,
                                   ModelSchedule schedule)
    : env_(std::move(environment)),
      hosts_(std::move(hosts)),
      server_(env_.workflow().service_names(), schedule) {
  KERTBN_EXPECTS(hosts_.host_of.size() == env_.workflow().service_count());
  std::vector<std::vector<std::size_t>> per_host(hosts_.host_count);
  for (std::size_t s = 0; s < hosts_.host_of.size(); ++s) {
    per_host[hosts_.host_of[s]].push_back(s);
  }
  agent_of_host_.assign(hosts_.host_count,
                        static_cast<std::size_t>(-1));
  for (std::size_t h = 0; h < per_host.size(); ++h) {
    if (per_host[h].empty()) continue;
    agent_of_host_[h] = agents_.size();
    agents_.emplace_back(h, per_host[h]);
  }
}

bool MonitoredTestbed::advance_interval() {
  env_.run_for(server_.schedule().t_data);

  // Route the interval's completed traces through the monitoring points.
  double response_sum = 0.0;
  std::size_t response_count = 0;
  const auto& traces = env_.traces();
  for (; next_trace_ < traces.size(); ++next_trace_) {
    const auto& trace = traces[next_trace_];
    response_sum += trace.response_time;
    ++response_count;
    for (std::size_t s = 0; s < trace.service_times.size(); ++s) {
      if (!trace.service_times[s].has_value()) continue;
      agents_[agent_of_host_[hosts_.host_of[s]]].record(
          s, *trace.service_times[s]);
    }
  }

  // A data point needs full coverage: every agent must have heard from
  // every hosted service this interval (the paper's dComp handles gaps;
  // the server itself only assembles complete rows).
  bool complete = response_count > 0;
  for (const auto& agent : agents_) {
    complete = complete && agent.has_complete_batch();
  }
  std::vector<AgentReport> reports;
  reports.reserve(agents_.size());
  for (auto& agent : agents_) {
    reports.push_back(agent.flush());  // clears batches either way
  }
  if (!complete) return false;
  return server_.ingest_interval(reports,
                                 response_sum / double(response_count));
}

void MonitoredTestbed::advance_construction_intervals(
    std::size_t n, const std::function<void(double)>& on_construction_due) {
  for (std::size_t c = 0; c < n; ++c) {
    for (std::size_t i = 0; i < server_.schedule().alpha_model; ++i) {
      advance_interval();
    }
    if (on_construction_due) on_construction_due(env_.now());
  }
}

MonitoredTestbed make_monitored_ediamond(double arrival_rate,
                                         std::uint64_t seed,
                                         ModelSchedule schedule) {
  DesEnvironment env = make_ediamond_des_environment(arrival_rate, seed);
  // Mirror the host layout used by the DES factory.
  using S = wf::EdiamondServices;
  HostMap hosts;
  hosts.host_count = 5;
  hosts.host_of.assign(S::kCount, 0);
  hosts.host_of[S::kImageList] = 0;
  hosts.host_of[S::kWorkList] = 0;
  hosts.host_of[S::kImageLocatorLocal] = 1;
  hosts.host_of[S::kOgsaDaiLocal] = 2;
  hosts.host_of[S::kImageLocatorRemote] = 3;
  hosts.host_of[S::kOgsaDaiRemote] = 4;
  return MonitoredTestbed(std::move(env), std::move(hosts), schedule);
}

}  // namespace kertbn::sim
