#pragma once
/// \file testbed.hpp
/// The full Section 2 stack in one object: a discrete-event service
/// environment, per-machine monitoring agents batching measurements every
/// T_DATA, the management server maintaining the sliding window
/// W = K · T_CON, and hooks for a model manager to rebuild on the T_CON
/// grid. This is the "reference deployment" examples and integration tests
/// drive; the pieces remain usable separately.

#include <functional>

#include "sosim/des_env.hpp"
#include "sosim/monitoring.hpp"

namespace kertbn::sim {

/// A DES environment wired to the monitoring infrastructure.
class MonitoredTestbed {
 public:
  /// Takes ownership of \p environment; one MonitoringAgent is stood up
  /// per host machine of the environment's host map.
  MonitoredTestbed(DesEnvironment environment, HostMap hosts,
                   ModelSchedule schedule);

  const ModelSchedule& schedule() const { return server_.schedule(); }
  DesEnvironment& environment() { return env_; }
  const ManagementServer& server() const { return server_; }
  /// Mutable access for wiring durability hooks (journal, row observer).
  ManagementServer& server_mutable() { return server_; }

  /// Simulates a management-server process crash + restart: the server —
  /// window, carry-forward memory, accounting, attached hooks — is
  /// replaced by a freshly constructed one with the same configuration.
  /// The DES environment and the per-machine monitoring agents are other
  /// processes and keep running. Callers recover the new server's state
  /// via durable::RecoveryManager (or accept the cold start).
  void restart_server();

  /// Advances the test-bed by exactly one data-collection interval
  /// (T_DATA): runs the DES, routes each completed request's per-service
  /// elapsed times through the owning machine's monitoring agent, then
  /// flushes every agent's batch to the management server as one data
  /// point. Intervals with no complete coverage are skipped (no row)
  /// unless incomplete ingestion is enabled (see set_ingest_incomplete).
  /// Returns true when a data point was ingested.
  ///
  /// When a fault injector is installed (fault::install) the interval runs
  /// under it: corrupted measurements flow through the monitoring points'
  /// quarantine, a crashed agent's batch is discarded, reports are
  /// dropped / duplicated / delayed one interval per the plan, and a
  /// partitioned fabric delivers no reports at all. Delayed reports are
  /// re-delivered *after* the following interval's fresh reports, so the
  /// server's kFirstWins duplicate policy prefers current data.
  bool advance_interval();

  /// When true, intervals with incomplete coverage are still handed to the
  /// management server (its MissingServicePolicy fills or drops the row)
  /// instead of being skipped wholesale. Defaults to false — the strict
  /// seed behavior — but is treated as true while a fault injector is
  /// installed, since faults make gaps the expected case.
  void set_ingest_incomplete(bool v) { ingest_incomplete_ = v; }

  /// Data-collection intervals advanced so far.
  std::size_t interval_index() const { return interval_index_; }

  /// Attaches an overload governor (non-owning; may be nullptr to detach).
  /// Once attached, every advance_interval() feeds it one deterministic
  /// LoadSignals sample at the interval end — ingest backlog from the
  /// server's pending queue, offered load as this interval's completion
  /// count over a slow EWMA of past counts, CPU pressure from the fault
  /// plan — *before* the interval's reports are offered for ingestion.
  /// Pair with ManagementServer::configure_admission to make the same
  /// governor gate the ingest path.
  void set_governor(ov::PressureGovernor* governor) { governor_ = governor; }
  ov::PressureGovernor* governor() const { return governor_; }

  /// Advances \p n construction intervals (alpha data intervals each) and
  /// invokes \p on_construction_due(now) at every T_CON boundary.
  void advance_construction_intervals(
      std::size_t n, const std::function<void(double)>& on_construction_due);

  /// The current training window (at most K·alpha rows).
  const bn::Dataset& window() const { return server_.window(); }
  double now() const { return env_.now(); }

 private:
  DesEnvironment env_;
  HostMap hosts_;
  std::vector<MonitoringAgent> agents_;
  std::vector<std::size_t> agent_of_host_;  ///< host -> agents_ index.
  ManagementServer server_;
  std::size_t next_trace_ = 0;  ///< First trace not yet routed to agents.
  std::size_t interval_index_ = 0;
  bool ingest_incomplete_ = false;
  /// Reports delayed by the fault plan, re-delivered next interval.
  std::vector<AgentReport> delayed_;
  /// Per-service measurement sequence numbers — the deterministic
  /// coordinates corruption decisions are keyed on.
  std::vector<std::size_t> measurement_seq_;
  /// Overload governor fed one signal sample per interval (non-owning).
  ov::PressureGovernor* governor_ = nullptr;
  /// Slow EWMA of per-interval completion counts — the "sustainable load"
  /// denominator of the offered_load signal.
  double load_ewma_ = 0.0;
  bool load_primed_ = false;
};

/// The eDiaMoND test-bed with monitoring, at the Section 5 schedule.
MonitoredTestbed make_monitored_ediamond(double arrival_rate,
                                         std::uint64_t seed,
                                         ModelSchedule schedule);

}  // namespace kertbn::sim
