#pragma once
/// \file scenario.hpp
/// Seeded scenario families — generation v2 beyond the fixed eDiaMoND
/// test-bed. A ScenarioFamily deterministically expands (family seed,
/// index) into a complete stress scenario: a workflow over up to hundreds
/// of services drawn from the full algebra (sequence / parallel / choice /
/// loop / map fan-out / data-dependent choice), a heterogeneous
/// resource-sharing graph (host partitions plus cross-cutting network and
/// backend groups), heavy-tailed service-time models, a diurnal +
/// flash-crowd load curve, a drifted choice-probability target, and a
/// fault plan scaled by the family's fault intensity.
///
/// Determinism contract: a Scenario is a pure function of
/// (family_seed, options, index). Two ScenarioFamily instances with equal
/// seed and options produce bit-identical scenarios for every index — the
/// property/soak suites and the scaling bench rely on this to replay any
/// failing scenario from its coordinates alone.

#include <cstdint>
#include <vector>

#include "fault/fault_plan.hpp"
#include "sosim/des_env.hpp"
#include "sosim/synthetic.hpp"
#include "sosim/testbed.hpp"
#include "workflow/generator.hpp"

namespace kertbn::sim {

/// A transient load spike: the arrival-rate multiplier jumps by \p factor
/// for [at, at + duration).
struct FlashCrowd {
  double at = 0.0;
  double duration = 0.0;
  double factor = 1.0;
};

/// Deterministic request-load profile: a diurnal sinusoid with optional
/// flash-crowd spikes, evaluated as a multiplier on the nominal rate.
struct LoadCurve {
  double base = 1.0;
  double diurnal_amplitude = 0.0;  ///< In [0, 1).
  double diurnal_period = 600.0;   ///< Seconds per cycle.
  double diurnal_phase = 0.0;      ///< Radians.
  std::vector<FlashCrowd> flash_crowds;

  /// Load multiplier at simulated time \p t (floored at 0.05 so arrival
  /// rates stay positive).
  double at(double t) const;
};

/// Family-level generation knobs. Per-scenario parameters are drawn inside
/// these envelopes from the scenario's own seed.
struct ScenarioFamilyOptions {
  std::size_t min_services = 8;
  std::size_t max_services = 48;
  /// Construct mix for the workflow trees; the default family enables the
  /// full algebra including map fan-outs and data-dependent choices.
  wf::GeneratorOptions workflow{.sequence_weight = 0.42,
                                .parallel_weight = 0.24,
                                .choice_weight = 0.14,
                                .map_weight = 0.12,
                                .data_choice_weight = 0.08,
                                .loop_probability = 0.05};
  /// Fraction of services whose base demand is heavy-tailed (split evenly
  /// between lognormal and Pareto draws).
  double heavy_tail_fraction = 0.35;
  /// Lower bound of the Pareto tail-index draw (upper bound is 3.0). The
  /// default admits tail indices below 2 — infinite service-time variance,
  /// the hardest regime for the soak suites. Suites that need stationary
  /// in-control behavior certifiable from finite samples (the drift
  /// acceptance tests) raise this above 2.
  double pareto_alpha_min = 1.6;
  /// How far (0..1) choice probabilities drift toward the perturbed target
  /// over a scenario's lifetime (see Scenario::workflow_at).
  double choice_drift = 0.4;
  double diurnal_amplitude_max = 0.4;
  /// Probability a scenario carries flash crowds at all.
  double flash_crowd_prob = 0.5;
  double flash_crowd_factor_max = 3.0;
  /// 0 disables fault plans; 1 is the full canonical degraded environment
  /// (10% report loss, crashes, partitions). Scales every probability.
  double fault_intensity = 0.0;
  /// 0 disables overload faults; 1 schedules the full overload battery
  /// (ingest bursts, CPU-pressure stalls, query floods) and scales their
  /// severity. All draws for these happen *after* every other draw, so
  /// scenarios generated at intensity 0 are bit-identical to pre-overload
  /// families.
  double overload_intensity = 0.0;
  /// Nominal Poisson request rate before the load curve (req/s).
  double arrival_rate = 2.0;
  /// Rough scenario lifetime used to place load-curve and fault events.
  double horizon_hint = 720.0;
};

/// One fully expanded scenario (see file comment for the contract).
struct Scenario {
  std::uint64_t seed = 0;   ///< The per-scenario root seed.
  std::size_t index = 0;    ///< Index within the family.
  wf::Workflow workflow;    ///< Initial (undrifted) knowledge.
  /// Same structure as workflow with independently re-drawn (data-)choice
  /// probabilities — the endpoint the drift interpolates toward.
  wf::Node::Ptr drift_target;
  double choice_drift = 0.0;
  wf::ResourceSharing sharing;
  HostMap hosts;
  std::vector<ServiceModel> models;
  LoadCurve load;
  double arrival_rate = 2.0;
  fault::FaultPlan faults;

  /// Composition tree at drift phase \p phase in [0, 1]: probabilities
  /// moved phase·choice_drift of the way from the initial workflow to the
  /// drift target.
  wf::Node::Ptr root_at(double phase) const;
  /// Workflow wrapper around root_at.
  wf::Workflow workflow_at(double phase) const;

  /// Episodic/structural sampling environment over this scenario.
  SyntheticEnvironment make_environment() const;
  /// Queueing DES realization (run seed separates the stochastic run from
  /// the scenario's identity).
  DesEnvironment make_des_environment(std::uint64_t run_seed) const;
  /// Full monitored stack: DES + per-host agents + management server.
  MonitoredTestbed make_testbed(std::uint64_t run_seed,
                                ModelSchedule schedule) const;
};

/// Deterministic scenario generator (see file comment).
class ScenarioFamily {
 public:
  explicit ScenarioFamily(std::uint64_t family_seed,
                          ScenarioFamilyOptions opts = {});

  const ScenarioFamilyOptions& options() const { return opts_; }

  /// The per-scenario seed: a splitmix64 mix of family seed and index.
  std::uint64_t scenario_seed(std::size_t index) const;

  /// Expands scenario \p index. Pure: same (seed, options, index) — on any
  /// instance — yields the identical scenario.
  Scenario make(std::size_t index) const;

 private:
  std::uint64_t family_seed_;
  ScenarioFamilyOptions opts_;
};

}  // namespace kertbn::sim
