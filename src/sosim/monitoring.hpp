#pragma once
/// \file monitoring.hpp
/// The paper's monitoring infrastructure (Section 2): monitoring points
/// measure elapsed time at middleware components; a monitoring agent on each
/// machine batches measurements and reports them every T_DATA; the
/// management server assembles per-interval data points and maintains the
/// sliding window W = K · T_CON used for model (re)construction.

#include <cmath>
#include <cstddef>
#include <deque>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bn/dataset.hpp"
#include "common/contract.hpp"

namespace kertbn::ov {
class PressureGovernor;
}  // namespace kertbn::ov

namespace kertbn::sim {

namespace detail {
/// Bumps the kert.monitoring.rejected_measurements obs counter (no-op when
/// telemetry is disabled). Out-of-line so the header stays obs-free.
void note_rejected_measurement();
}  // namespace detail

/// The periodic (re)construction scheme of Equations 1-2.
struct ModelSchedule {
  double t_data = 10.0;       ///< Data collection interval T_DATA (seconds).
  std::size_t alpha_model = 12;  ///< Model construction coefficient α.
  std::size_t k = 3;             ///< Environmental correlation metric K.

  /// T_CON = α_model · T_DATA.
  double t_con() const { return static_cast<double>(alpha_model) * t_data; }
  /// W = K · T_CON.
  double window_seconds() const { return static_cast<double>(k) * t_con(); }
  /// K · α_model — the number of data points available per construction.
  std::size_t points_per_window() const { return k * alpha_model; }
};

/// A monitoring point: accumulates one service's raw elapsed-time
/// measurements for the current reporting interval.
///
/// Measurements are validated at the point of entry: an elapsed time that
/// is NaN, infinite, or negative (clock skew, a corrupted probe, a crashed
/// middleware timer) would silently poison the interval mean and every
/// downstream Gram update, so it is quarantined instead — counted, never
/// accumulated.
class MonitoringPoint {
 public:
  explicit MonitoringPoint(std::size_t service) : service_(service) {}

  std::size_t service() const { return service_; }
  /// Accumulates one measurement; rejects non-finite or negative values.
  /// Returns false (and counts the rejection) when the value is invalid.
  bool record(double elapsed) {
    if (!std::isfinite(elapsed) || elapsed < 0.0) {
      ++rejected_;
      detail::note_rejected_measurement();
      return false;
    }
    sum_ += elapsed;
    ++count_;
    return true;
  }
  std::size_t count() const { return count_; }
  /// Invalid measurements quarantined over the point's lifetime (clear()
  /// resets the interval batch, not this total).
  std::size_t rejected() const { return rejected_; }
  /// Interval mean; contract-fails when empty. Callers that cannot rule
  /// out an empty interval (a service no request hit this T_DATA) should
  /// use maybe_mean() instead.
  double mean() const {
    KERTBN_EXPECTS(count_ > 0);
    return sum_ / static_cast<double>(count_);
  }
  /// Interval mean, or nullopt when no measurement was recorded.
  std::optional<double> maybe_mean() const {
    if (count_ == 0) return std::nullopt;
    return sum_ / static_cast<double>(count_);
  }
  void clear() {
    sum_ = 0.0;
    count_ = 0;
  }

 private:
  std::size_t service_;
  double sum_ = 0.0;
  std::size_t count_ = 0;
  std::size_t rejected_ = 0;
};

/// One per-interval batched report from an agent.
struct AgentReport {
  std::size_t agent = 0;
  std::vector<std::pair<std::size_t, double>> service_means;
};

/// A monitoring agent: owns the monitoring points of the services hosted on
/// one machine, batches their data, and emits an AgentReport per interval.
class MonitoringAgent {
 public:
  MonitoringAgent(std::size_t id, std::vector<std::size_t> services);

  std::size_t id() const { return id_; }
  const std::vector<std::size_t>& services() const { return services_; }

  /// Records one measurement for \p service (must be hosted here). Invalid
  /// values are quarantined by the monitoring point; returns whether the
  /// measurement was accepted.
  bool record(std::size_t service, double elapsed);

  /// True when every hosted service has at least one measurement batched.
  bool has_complete_batch() const;

  /// Invalid measurements quarantined across all hosted services.
  std::size_t rejected_measurements() const;

  /// Emits the batched interval means and clears the batch.
  AgentReport flush();

 private:
  std::size_t id_;
  std::vector<std::size_t> services_;
  std::vector<MonitoringPoint> points_;
};

/// What the management server does with an interval whose reports do not
/// cover every service (a quiet service saw no request that T_DATA).
enum class MissingServicePolicy {
  /// Contract-fail — every interval must be complete (the strict seed
  /// behavior; appropriate when upstream already filters incompletes).
  kRequire,
  /// Fill the gap with the service's most recent interval mean — elapsed
  /// times drift slowly relative to T_DATA, so the last observation is
  /// the best available estimate and the window keeps its cadence. Rows
  /// are dropped only while a service has never reported at all.
  kCarryForward,
  /// Drop the whole interval (no window row, no observer callback).
  kDropRow,
};

/// What the management server does when an interval's reports cover the
/// same service more than once (a duplicated report on a lossy fabric, or
/// a restarted agent re-sending its last batch).
enum class DuplicateCoveragePolicy {
  /// Contract-fail — the strict seed behavior.
  kFail,
  /// Keep the first value seen, ignore later duplicates (the default:
  /// fresh reports are ingested before replayed/delayed ones, so first
  /// wins prefers current data).
  kFirstWins,
  /// Let later duplicates overwrite earlier values.
  kLastWins,
};

/// What bounded ingest admission does when the pending-interval queue is
/// already full and another interval is offered.
enum class IngestOverflowPolicy {
  /// Drain the oldest pending intervals synchronously (bypassing the
  /// governor's token budget) until the bound holds — backpressure: the
  /// offering thread pays, nothing is lost.
  kBlock,
  /// Shed the oldest pending interval (newest data wins, matching the
  /// sliding-window semantics) and count it.
  kShedOldest,
  /// Refuse the newly offered interval and count it.
  kRejectNew,
};

/// Bounded-admission configuration for offer_interval. With a governor
/// set, each pending interval must win an ingest token before it drains
/// into the window; the queue never exceeds max_pending (overflow handled
/// per policy), so ingest memory is bounded no matter the offered load.
struct IngestAdmission {
  ov::PressureGovernor* governor = nullptr;
  std::size_t max_pending = 8;
  IngestOverflowPolicy policy = IngestOverflowPolicy::kShedOldest;
};

/// Complete durable state of a ManagementServer: the sliding window, the
/// carry-forward memory, and the accounting counters. Captured into
/// checkpoints and restored after a crash so recovery resumes mid-window
/// instead of blind (see src/durable).
struct ServerState {
  std::size_t rows = 0;
  std::size_t cols = 0;  ///< services + 1 (the D column).
  std::vector<double> window;  ///< Row-major rows x cols.
  std::vector<std::optional<double>> last_seen;
  std::size_t total_points = 0;
  std::size_t dropped_intervals = 0;
  std::size_t quarantined_values = 0;
  std::size_t duplicate_values = 0;
  std::size_t consecutive_missed_intervals = 0;
};

/// The management server: assembles agent reports plus end-to-end response
/// times into data points (one per T_DATA interval) and maintains the
/// sliding window of Equation 1.
class ManagementServer {
 public:
  /// Called with each completed data-point row (services then D) right
  /// after it enters the sliding window — the hook incremental model
  /// layers use to maintain windowed statistics (ModelManager::observe_row).
  using RowObserver = std::function<void(std::span<const double>)>;

  /// Write-ahead hooks: invoked with the raw inputs of every
  /// ingest_interval / note_missed_interval *before* any state changes, so
  /// a journal (durable::ServerJournal) can make the event durable first.
  /// Replaying the logged events through a fresh server reproduces its
  /// state bit-for-bit — including carry-forward memory and staleness.
  using IngestLog =
      std::function<void(const std::vector<AgentReport>&, double)>;
  using MissedLog = std::function<void()>;

  /// \p service_names defines dataset columns (a final "D" is appended).
  ManagementServer(std::vector<std::string> service_names,
                   ModelSchedule schedule,
                   MissingServicePolicy policy =
                       MissingServicePolicy::kCarryForward,
                   DuplicateCoveragePolicy duplicate_policy =
                       DuplicateCoveragePolicy::kFirstWins);

  const ModelSchedule& schedule() const { return schedule_; }
  MissingServicePolicy policy() const { return policy_; }
  DuplicateCoveragePolicy duplicate_policy() const {
    return duplicate_policy_;
  }

  void set_row_observer(RowObserver observer) {
    observer_ = std::move(observer);
  }

  /// Registers an additional row observer (called after the primary one,
  /// in registration order). set_row_observer keeps its replace semantics
  /// for the model layer; extra observers are for passive listeners — the
  /// model-quality scorer taps the ingest path here.
  void add_row_observer(RowObserver observer) {
    extra_observers_.push_back(std::move(observer));
  }

  void set_ingest_log(IngestLog log) { ingest_log_ = std::move(log); }
  void set_missed_log(MissedLog log) { missed_log_ = std::move(log); }

  /// Ingests one interval's reports plus the interval-mean response time.
  /// Services missing from the reports are handled per the configured
  /// MissingServicePolicy; duplicate coverage per DuplicateCoveragePolicy.
  /// Non-finite or negative reported means (including the response mean)
  /// are quarantined — a bad service mean counts as a missing service, and
  /// a bad response mean drops the interval. A row must carry at least one
  /// fresh (non-carried) service value; an all-carried row is fabricated
  /// data and is dropped instead. Returns true when a row entered the
  /// window.
  bool ingest_interval(const std::vector<AgentReport>& reports,
                       double response_mean);

  /// Arms bounded admission: offer_interval stops being a synonym for
  /// ingest_interval and starts enforcing the pending bound / governor
  /// budget. Call with a default-constructed IngestAdmission (null
  /// governor, but still a finite max_pending) for a pure bound.
  void configure_admission(IngestAdmission admission);
  bool admission_configured() const { return admission_configured_; }

  /// The overload-aware front door for interval ingestion. Unconfigured,
  /// it forwards straight to ingest_interval (bit-identical to the seed
  /// path). Configured, the interval joins a bounded pending queue; the
  /// queue drains through ingest_interval while the governor grants
  /// ingest tokens at \p now_s, and overflow is shed per the policy —
  /// every shed interval is counted (kert.ingest.shed_intervals) and
  /// feeds the same staleness accounting as a missed interval. Returns
  /// true when at least one row entered the window during this call.
  bool offer_interval(const std::vector<AgentReport>& reports,
                      double response_mean, double now_s);

  /// Intervals shed by bounded admission (never reached the window).
  std::size_t shed_intervals() const { return shed_intervals_; }
  /// Intervals admitted but not yet drained into the window.
  std::size_t pending_intervals() const { return pending_.size(); }

  /// Records an interval that produced no ingestable reports at all (the
  /// caller never had anything to hand to ingest_interval — e.g. every
  /// agent was down). Feeds the same staleness accounting as a dropped
  /// interval.
  void note_missed_interval();

  /// Rows currently in the sliding window (at most K·α).
  std::size_t window_rows() const { return window_.rows(); }

  /// The current training window as a BN-ready dataset.
  const bn::Dataset& window() const { return window_; }

  /// Total data points ever ingested.
  std::size_t total_points() const { return total_points_; }

  /// Intervals dropped under kDropRow (or carry-forward with a
  /// never-seen service).
  std::size_t dropped_intervals() const { return dropped_intervals_; }

  /// Reported means quarantined as non-finite or negative.
  std::size_t quarantined_values() const { return quarantined_values_; }

  /// Duplicate service coverages tolerated under kFirstWins/kLastWins.
  std::size_t duplicate_values() const { return duplicate_values_; }

  /// Window staleness: consecutive intervals that ended with no new row
  /// (dropped, quarantined, or missed outright). Resets to 0 whenever a
  /// row enters the window.
  std::size_t consecutive_missed_intervals() const {
    return consecutive_missed_intervals_;
  }

  /// Snapshot of the durable state (window, carry-forward, accounting)
  /// for checkpointing.
  ServerState export_state() const;

  /// Restores a checkpointed state, replacing the current window and
  /// accounting wholesale. Staleness is restored, not reset — a server
  /// that crashed mid-outage must come back knowing it is stale. Bumps
  /// kert.monitoring.recovered_reports by the restored row count. Returns
  /// false (leaving the server untouched) when the state's shape does not
  /// match this server's column layout.
  bool restore_state(const ServerState& state);

 private:
  /// Shared bookkeeping for every way an interval can fail to yield a row.
  void interval_yielded_no_row();
  /// Sheds one pending interval (front when \p oldest, else back) and
  /// counts it; staleness is accounted per offered interval by
  /// offer_interval itself.
  void shed_one(bool oldest);

  std::size_t n_services_;
  ModelSchedule schedule_;
  MissingServicePolicy policy_;
  DuplicateCoveragePolicy duplicate_policy_;
  bn::Dataset window_;
  std::size_t total_points_ = 0;
  std::size_t dropped_intervals_ = 0;
  std::size_t quarantined_values_ = 0;
  std::size_t duplicate_values_ = 0;
  std::size_t consecutive_missed_intervals_ = 0;
  std::vector<std::optional<double>> last_seen_;
  IngestAdmission admission_;
  bool admission_configured_ = false;
  std::deque<std::pair<std::vector<AgentReport>, double>> pending_;
  std::size_t shed_intervals_ = 0;
  RowObserver observer_;
  std::vector<RowObserver> extra_observers_;
  IngestLog ingest_log_;
  MissedLog missed_log_;
};

}  // namespace kertbn::sim
