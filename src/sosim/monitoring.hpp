#pragma once
/// \file monitoring.hpp
/// The paper's monitoring infrastructure (Section 2): monitoring points
/// measure elapsed time at middleware components; a monitoring agent on each
/// machine batches measurements and reports them every T_DATA; the
/// management server assembles per-interval data points and maintains the
/// sliding window W = K · T_CON used for model (re)construction.

#include <cstddef>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bn/dataset.hpp"
#include "common/contract.hpp"

namespace kertbn::sim {

/// The periodic (re)construction scheme of Equations 1-2.
struct ModelSchedule {
  double t_data = 10.0;       ///< Data collection interval T_DATA (seconds).
  std::size_t alpha_model = 12;  ///< Model construction coefficient α.
  std::size_t k = 3;             ///< Environmental correlation metric K.

  /// T_CON = α_model · T_DATA.
  double t_con() const { return static_cast<double>(alpha_model) * t_data; }
  /// W = K · T_CON.
  double window_seconds() const { return static_cast<double>(k) * t_con(); }
  /// K · α_model — the number of data points available per construction.
  std::size_t points_per_window() const { return k * alpha_model; }
};

/// A monitoring point: accumulates one service's raw elapsed-time
/// measurements for the current reporting interval.
class MonitoringPoint {
 public:
  explicit MonitoringPoint(std::size_t service) : service_(service) {}

  std::size_t service() const { return service_; }
  void record(double elapsed) {
    sum_ += elapsed;
    ++count_;
  }
  std::size_t count() const { return count_; }
  /// Interval mean; contract-fails when empty. Callers that cannot rule
  /// out an empty interval (a service no request hit this T_DATA) should
  /// use maybe_mean() instead.
  double mean() const {
    KERTBN_EXPECTS(count_ > 0);
    return sum_ / static_cast<double>(count_);
  }
  /// Interval mean, or nullopt when no measurement was recorded.
  std::optional<double> maybe_mean() const {
    if (count_ == 0) return std::nullopt;
    return sum_ / static_cast<double>(count_);
  }
  void clear() {
    sum_ = 0.0;
    count_ = 0;
  }

 private:
  std::size_t service_;
  double sum_ = 0.0;
  std::size_t count_ = 0;
};

/// One per-interval batched report from an agent.
struct AgentReport {
  std::size_t agent = 0;
  std::vector<std::pair<std::size_t, double>> service_means;
};

/// A monitoring agent: owns the monitoring points of the services hosted on
/// one machine, batches their data, and emits an AgentReport per interval.
class MonitoringAgent {
 public:
  MonitoringAgent(std::size_t id, std::vector<std::size_t> services);

  std::size_t id() const { return id_; }
  const std::vector<std::size_t>& services() const { return services_; }

  /// Records one measurement for \p service (must be hosted here).
  void record(std::size_t service, double elapsed);

  /// True when every hosted service has at least one measurement batched.
  bool has_complete_batch() const;

  /// Emits the batched interval means and clears the batch.
  AgentReport flush();

 private:
  std::size_t id_;
  std::vector<std::size_t> services_;
  std::vector<MonitoringPoint> points_;
};

/// What the management server does with an interval whose reports do not
/// cover every service (a quiet service saw no request that T_DATA).
enum class MissingServicePolicy {
  /// Contract-fail — every interval must be complete (the strict seed
  /// behavior; appropriate when upstream already filters incompletes).
  kRequire,
  /// Fill the gap with the service's most recent interval mean — elapsed
  /// times drift slowly relative to T_DATA, so the last observation is
  /// the best available estimate and the window keeps its cadence. Rows
  /// are dropped only while a service has never reported at all.
  kCarryForward,
  /// Drop the whole interval (no window row, no observer callback).
  kDropRow,
};

/// The management server: assembles agent reports plus end-to-end response
/// times into data points (one per T_DATA interval) and maintains the
/// sliding window of Equation 1.
class ManagementServer {
 public:
  /// Called with each completed data-point row (services then D) right
  /// after it enters the sliding window — the hook incremental model
  /// layers use to maintain windowed statistics (ModelManager::observe_row).
  using RowObserver = std::function<void(std::span<const double>)>;

  /// \p service_names defines dataset columns (a final "D" is appended).
  ManagementServer(std::vector<std::string> service_names,
                   ModelSchedule schedule,
                   MissingServicePolicy policy =
                       MissingServicePolicy::kCarryForward);

  const ModelSchedule& schedule() const { return schedule_; }
  MissingServicePolicy policy() const { return policy_; }

  void set_row_observer(RowObserver observer) {
    observer_ = std::move(observer);
  }

  /// Ingests one interval's reports plus the interval-mean response time.
  /// Services missing from the reports are handled per the configured
  /// MissingServicePolicy; duplicate coverage always contract-fails.
  /// Returns true when a row entered the window.
  bool ingest_interval(const std::vector<AgentReport>& reports,
                       double response_mean);

  /// Rows currently in the sliding window (at most K·α).
  std::size_t window_rows() const { return window_.rows(); }

  /// The current training window as a BN-ready dataset.
  const bn::Dataset& window() const { return window_; }

  /// Total data points ever ingested.
  std::size_t total_points() const { return total_points_; }

  /// Intervals dropped under kDropRow (or carry-forward with a
  /// never-seen service).
  std::size_t dropped_intervals() const { return dropped_intervals_; }

 private:
  std::size_t n_services_;
  ModelSchedule schedule_;
  MissingServicePolicy policy_;
  bn::Dataset window_;
  std::size_t total_points_ = 0;
  std::size_t dropped_intervals_ = 0;
  std::vector<std::optional<double>> last_seen_;
  RowObserver observer_;
};

}  // namespace kertbn::sim
