#include "sosim/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <string>

#include "common/contract.hpp"

namespace kertbn::sim {

double LoadCurve::at(double t) const {
  double load =
      base * (1.0 + diurnal_amplitude *
                        std::sin(2.0 * std::numbers::pi * t / diurnal_period +
                                 diurnal_phase));
  for (const FlashCrowd& crowd : flash_crowds) {
    if (t >= crowd.at && t < crowd.at + crowd.duration) load *= crowd.factor;
  }
  return std::max(load, 0.05);
}

wf::Node::Ptr Scenario::root_at(double phase) const {
  const double w = std::clamp(phase, 0.0, 1.0) * choice_drift;
  if (w == 0.0) return workflow.root();
  return wf::interpolate_choice_probs(workflow.root(), drift_target, w);
}

wf::Workflow Scenario::workflow_at(double phase) const {
  return wf::Workflow(workflow.service_names(), root_at(phase));
}

SyntheticEnvironment Scenario::make_environment() const {
  return SyntheticEnvironment(workflow, sharing, models);
}

DesEnvironment Scenario::make_des_environment(std::uint64_t run_seed) const {
  return DesEnvironment(workflow, hosts, models, arrival_rate, run_seed);
}

MonitoredTestbed Scenario::make_testbed(std::uint64_t run_seed,
                                        ModelSchedule schedule) const {
  return MonitoredTestbed(make_des_environment(run_seed), hosts, schedule);
}

namespace {

/// splitmix64 finalizer over (family seed, index) — uncorrelated scenario
/// seeds from consecutive indices.
std::uint64_t mix_seed(std::uint64_t family_seed, std::uint64_t index) {
  std::uint64_t z = family_seed + 0x9E3779B97F4A7C15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

ScenarioFamily::ScenarioFamily(std::uint64_t family_seed,
                               ScenarioFamilyOptions opts)
    : family_seed_(family_seed), opts_(opts) {
  KERTBN_EXPECTS(opts_.min_services >= 1);
  KERTBN_EXPECTS(opts_.max_services >= opts_.min_services);
  opts_.workflow.validate();
  KERTBN_EXPECTS(opts_.heavy_tail_fraction >= 0.0 &&
                 opts_.heavy_tail_fraction <= 1.0);
  KERTBN_EXPECTS(opts_.pareto_alpha_min > 1.0 &&
                 opts_.pareto_alpha_min <= 3.0);
  KERTBN_EXPECTS(opts_.choice_drift >= 0.0 && opts_.choice_drift <= 1.0);
  KERTBN_EXPECTS(opts_.diurnal_amplitude_max >= 0.0 &&
                 opts_.diurnal_amplitude_max < 1.0);
  KERTBN_EXPECTS(opts_.flash_crowd_prob >= 0.0 &&
                 opts_.flash_crowd_prob <= 1.0);
  KERTBN_EXPECTS(opts_.flash_crowd_factor_max >= 1.0);
  KERTBN_EXPECTS(opts_.fault_intensity >= 0.0 &&
                 opts_.fault_intensity <= 1.0);
  KERTBN_EXPECTS(opts_.overload_intensity >= 0.0 &&
                 opts_.overload_intensity <= 1.0);
  KERTBN_EXPECTS(opts_.arrival_rate > 0.0);
  KERTBN_EXPECTS(opts_.horizon_hint > 0.0);
}

std::uint64_t ScenarioFamily::scenario_seed(std::size_t index) const {
  return mix_seed(family_seed_, index);
}

Scenario ScenarioFamily::make(std::size_t index) const {
  Rng rng(scenario_seed(index));

  const std::size_t n =
      opts_.min_services +
      rng.uniform_index(opts_.max_services - opts_.min_services + 1);
  wf::Workflow workflow = wf::make_random_workflow(n, rng, opts_.workflow);
  wf::Node::Ptr drift_target = wf::perturb_choice_probs(workflow.root(), rng);

  // Hosts: partition the services onto machines of 2..6 services, one CPU
  // resource group per machine.
  HostMap hosts;
  hosts.host_of.assign(n, 0);
  wf::ResourceSharing sharing;
  {
    std::vector<std::size_t> pool = rng.permutation(n);
    std::size_t start = 0;
    while (start < pool.size()) {
      const std::size_t take = std::min<std::size_t>(
          2 + rng.uniform_index(5), pool.size() - start);
      wf::ResourceGroup group;
      group.name = "cpu_host_" + std::to_string(hosts.host_count);
      for (std::size_t i = 0; i < take; ++i) {
        const std::size_t svc = pool[start + i];
        hosts.host_of[svc] = hosts.host_count;
        group.services.push_back(svc);
      }
      sharing.groups.push_back(std::move(group));
      ++hosts.host_count;
      start += take;
    }
  }
  // Cross-cutting groups (network segments, shared backends) overlap the
  // host partition, making the sharing graph heterogeneous rather than a
  // clean partition.
  const std::size_t extra_groups = 1 + n / 10;
  for (std::size_t g = 0; g < extra_groups; ++g) {
    const std::size_t members =
        std::min<std::size_t>(n, 2 + rng.uniform_index(4));
    std::vector<std::size_t> pick = rng.permutation(n);
    pick.resize(members);
    std::sort(pick.begin(), pick.end());
    wf::ResourceGroup group;
    group.name = (g % 2 == 0 ? "net_segment_" : "shared_backend_") +
                 std::to_string(g);
    group.services = std::move(pick);
    sharing.groups.push_back(std::move(group));
  }

  // Service-time models, a heavy-tailed slice among them.
  std::vector<ServiceModel> models(n);
  for (ServiceModel& m : models) {
    m.base_mean = rng.uniform(0.04, 0.40);
    m.noise_sigma = m.base_mean * rng.uniform(0.10, 0.30);
    m.upstream_coupling = rng.uniform(0.10, 0.50);
    m.resource_sensitivity = m.base_mean * rng.uniform(0.05, 0.20);
    if (rng.bernoulli(opts_.heavy_tail_fraction)) {
      if (rng.bernoulli(0.5)) {
        m.demand = DemandDistribution::kLognormal;
        m.noise_sigma *= rng.uniform(1.5, 3.0);  // fatter right tail
      } else {
        m.demand = DemandDistribution::kPareto;
        m.tail_alpha = rng.uniform(opts_.pareto_alpha_min, 3.0);
      }
    }
  }

  // Load curve: diurnal cycle sized to the scenario horizon, flash crowds
  // with probability flash_crowd_prob.
  LoadCurve load;
  load.diurnal_amplitude = rng.uniform(0.0, opts_.diurnal_amplitude_max);
  load.diurnal_period = rng.uniform(opts_.horizon_hint / 3.0,
                                    opts_.horizon_hint);
  load.diurnal_phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
  if (rng.bernoulli(opts_.flash_crowd_prob)) {
    const std::size_t crowds = 1 + rng.uniform_index(2);
    for (std::size_t c = 0; c < crowds; ++c) {
      FlashCrowd crowd;
      crowd.at = rng.uniform(0.10, 0.80) * opts_.horizon_hint;
      crowd.duration = rng.uniform(0.05, 0.15) * opts_.horizon_hint;
      crowd.factor = rng.uniform(1.5, opts_.flash_crowd_factor_max);
      load.flash_crowds.push_back(crowd);
    }
  }

  const double arrival_rate = opts_.arrival_rate * rng.uniform(0.7, 1.3);

  // Fault plan scaled by the family's intensity (canonical degraded
  // environment at intensity 1).
  fault::FaultPlan faults;
  faults.seed = mix_seed(scenario_seed(index), 0xFA01);
  if (opts_.fault_intensity > 0.0) {
    const double intensity = opts_.fault_intensity;
    faults.report_loss_prob = 0.10 * intensity;
    faults.report_duplicate_prob = 0.04 * intensity;
    faults.report_delay_prob = 0.05 * intensity;
    faults.measurement_corrupt_prob = 0.02 * intensity;
    if (rng.bernoulli(0.6)) {
      fault::AgentCrash crash;
      crash.agent = rng.uniform_index(hosts.host_count);
      crash.down.from = rng.uniform(0.20, 0.60) * opts_.horizon_hint;
      crash.down.until =
          crash.down.from + rng.uniform(0.03, 0.10) * opts_.horizon_hint;
      faults.crashes.push_back(crash);
    }
    if (rng.bernoulli(0.3)) {
      fault::TimeWindow partition;
      partition.from = rng.uniform(0.30, 0.70) * opts_.horizon_hint;
      partition.until =
          partition.from + rng.uniform(0.02, 0.06) * opts_.horizon_hint;
      faults.partitions.push_back(partition);
    }
  }

  // Overload faults — drawn strictly after everything above so existing
  // scenario coordinates replay bit-identically at intensity 0.
  if (opts_.overload_intensity > 0.0) {
    const double intensity = opts_.overload_intensity;
    if (rng.bernoulli(0.8)) {
      const std::size_t bursts = 1 + rng.uniform_index(2);
      for (std::size_t b = 0; b < bursts; ++b) {
        fault::TimeWindow w;
        w.from = rng.uniform(0.15, 0.75) * opts_.horizon_hint;
        w.until = w.from + rng.uniform(0.05, 0.15) * opts_.horizon_hint;
        faults.ingest_bursts.push_back(w);
      }
      faults.ingest_burst_factor = 1.0 + rng.uniform(1.0, 4.0) * intensity;
    }
    if (rng.bernoulli(0.5)) {
      fault::TimeWindow w;
      w.from = rng.uniform(0.20, 0.70) * opts_.horizon_hint;
      w.until = w.from + rng.uniform(0.04, 0.12) * opts_.horizon_hint;
      faults.cpu_stalls.push_back(w);
      faults.cpu_stall_severity = intensity * rng.uniform(0.5, 1.0);
    }
    if (rng.bernoulli(0.5)) {
      fault::TimeWindow w;
      w.from = rng.uniform(0.25, 0.80) * opts_.horizon_hint;
      w.until = w.from + rng.uniform(0.03, 0.10) * opts_.horizon_hint;
      faults.query_floods.push_back(w);
      faults.query_flood_factor = 1.0 + rng.uniform(2.0, 6.0) * intensity;
    }
  }

  Scenario scenario{scenario_seed(index), index,
                    std::move(workflow),   std::move(drift_target),
                    opts_.choice_drift,    std::move(sharing),
                    std::move(hosts),      std::move(models),
                    std::move(load),       arrival_rate,
                    std::move(faults)};
  return scenario;
}

}  // namespace kertbn::sim
