#pragma once
/// \file des_env.hpp
/// Queueing, discrete-event realization of a service-oriented environment —
/// the stand-in for the paper's real eDiaMoND test-bed (Section 5). Requests
/// arrive Poisson and walk the workflow tree; each activity's work occupies
/// its host machine (a FIFO processor shared by every co-hosted service), so
/// elapsed times include genuine queueing delay and co-hosted services'
/// times co-vary under load — the resource-sharing channel of Section 3.2,
/// produced by actual contention instead of a sampled load variable.

#include <functional>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "des/simulator.hpp"
#include "sosim/service_model.hpp"
#include "sosim/synthetic.hpp"
#include "workflow/workflow.hpp"

namespace kertbn::sim {

/// Maps each service to a host machine (FIFO processor).
struct HostMap {
  std::size_t host_count = 0;
  std::vector<std::size_t> host_of;  ///< host_of[service] = machine index.
};

/// A completed end-to-end request observed by the DES environment. Services
/// skipped by a choice branch carry no elapsed-time observation.
struct DesRequestTrace {
  std::vector<std::optional<double>> service_times;
  double response_time = 0.0;
  double completed_at = 0.0;  ///< Simulated completion timestamp.
};

/// Discrete-event service-oriented environment.
class DesEnvironment {
 public:
  /// \p models sized to the workflow's services; \p hosts maps each service
  /// to a machine; \p arrival_rate is the Poisson request rate (req/s).
  DesEnvironment(wf::Workflow workflow, HostMap hosts,
                 std::vector<ServiceModel> models, double arrival_rate,
                 std::uint64_t seed);

  const wf::Workflow& workflow() const { return workflow_; }

  /// Runs the environment for \p duration simulated seconds; completed
  /// request traces accumulate in traces().
  void run_for(double duration);

  const std::vector<DesRequestTrace>& traces() const { return traces_; }
  double now() const { return sim_.now(); }

  /// Applies a multiplicative speedup to one service (pAccel actions).
  void accelerate_service(std::size_t service, double factor);

  /// Changes the Poisson request rate; takes effect from the next arrival
  /// (load curves: diurnal cycles, flash crowds).
  void set_arrival_rate(double rate);
  double arrival_rate() const { return arrival_rate_; }

  /// Replaces the workflow composition tree over the same service set —
  /// the choice-probability drift hook. Requests already in flight keep
  /// walking the tree they started on.
  void set_workflow_root(wf::Node::Ptr root);

  /// Builds a BN-ready dataset (columns: services then "D") from traces
  /// completed in (from_time, to_time], averaging every
  /// \p report_interval seconds into one data point (the paper's T_DATA
  /// batching). Rows with any unobserved service are dropped.
  bn::Dataset dataset_between(double from_time, double to_time,
                              double report_interval) const;

 private:
  struct Machine {
    double busy_until = 0.0;  ///< FIFO backlog horizon.
  };

  /// Continuation-passing workflow walk; calls \p done with the node's
  /// completion time. \p work_scale shrinks activity demands — a map
  /// fan-out hands each of its k instances 1/k of the data.
  void execute_node(const wf::Node& node, double start, double work_scale,
                    std::shared_ptr<DesRequestTrace> trace,
                    std::function<void(double)> done);

  void schedule_next_arrival();

  wf::Workflow workflow_;
  HostMap hosts_;
  std::vector<ServiceModel> models_;
  double arrival_rate_;
  Rng rng_;
  des::Simulator sim_;
  std::vector<Machine> machines_;
  std::vector<DesRequestTrace> traces_;
  /// Old roots are kept alive until shutdown: in-flight continuations hold
  /// plain references into the tree they started walking.
  std::vector<wf::Node::Ptr> retired_roots_;
};

/// Builds the eDiaMoND DES test-bed: Figure 1 workflow, the Section 5 host
/// layout (4 site machines + 1 shared Linux server), Poisson arrivals.
DesEnvironment make_ediamond_des_environment(double arrival_rate,
                                             std::uint64_t seed);

}  // namespace kertbn::sim
