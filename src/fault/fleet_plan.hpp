#pragma once
/// \file fleet_plan.hpp
/// Fleet-scale fault schedules: what goes wrong, for which tenants and
/// shards, at which fleet ticks.
///
/// The fleet layer serves many tenants from one process on a simulated
/// tick clock (one tick = one T_DATA interval per tenant), so its faults
/// are declared in ticks and keyed by tenant or shard id rather than by
/// agent. Tenant-targeted probabilistic faults (poisoned measurement
/// streams) compile into an ordinary per-tenant FaultPlan realized through
/// the keyed injection contexts (fault_injector.hpp) — tenant A's hook
/// sites see A's plan while tenant B, processed by the same thread, runs
/// clean. Scheduled faults (crash/restart, journal-dir corruption, shard
/// CPU stalls) are deterministic events the fleet driver queries directly.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fault/fault_plan.hpp"

namespace kertbn::fault {

/// Half-open fleet-tick interval [from, until).
struct TickWindow {
  std::uint64_t from = 0;
  std::uint64_t until = 0;

  bool contains(std::uint64_t tick) const {
    return tick >= from && tick < until;
  }
};

/// One tenant process crash: at the given tick the tenant's in-memory
/// state is destroyed and rebuilt from its durable directory (checkpoint +
/// journal replay) — or from nothing, for an ephemeral tenant.
struct TenantCrash {
  std::uint64_t tenant = 0;
  std::uint64_t at_tick = 0;
};

/// A poisoned measurement stream: while inside the window, each of the
/// tenant's reported means (services and response) is corrupted with this
/// probability, drawn deterministically from the plan seed.
struct TenantPoison {
  std::uint64_t tenant = 0;
  TickWindow window;
  double corrupt_prob = 0.25;
};

/// Journal-directory corruption: at the given tick the tail of the
/// tenant's newest journal segment is truncated on disk — latent damage
/// that surfaces (as skipped/torn records) only when the tenant next
/// recovers.
struct JournalCorruption {
  std::uint64_t tenant = 0;
  std::uint64_t at_tick = 0;
  /// Bytes cut off the newest segment's tail.
  std::size_t truncate_bytes = 32;
};

/// A shard-wide CPU stall: while inside the window the shard burns
/// deterministic wasted CPU scaled by severity and reports the severity as
/// cpu_pressure to its governor. Severity above 1.0 is allowed — it drives
/// the governor's normalized score past the shedding/emergency thresholds.
struct ShardStall {
  std::size_t shard = 0;
  TickWindow window;
  double severity = 1.0;
};

/// The full fleet fault schedule. A plan plus one seed fully determines
/// every injected fault, so a degraded fleet run is bit-for-bit
/// reproducible — and tenants the plan never names execute the exact same
/// instruction stream as in a fault-free run (the isolation proof).
struct FleetFaultPlan {
  std::uint64_t seed = 0;

  std::vector<TenantCrash> crashes;
  std::vector<TenantPoison> poisons;
  std::vector<JournalCorruption> journal_corruptions;
  std::vector<ShardStall> stalls;

  /// True when the given tenant crashes at this tick.
  bool crash_at(std::uint64_t tenant, std::uint64_t tick) const;
  /// True while the tenant is inside any poison window.
  bool poison_active(std::uint64_t tenant, std::uint64_t tick) const;
  /// Journal truncation scheduled for (tenant, tick): bytes to cut, 0 when
  /// none.
  std::size_t journal_truncation_at(std::uint64_t tenant,
                                    std::uint64_t tick) const;
  /// Max stall severity covering (shard, tick); 0.0 outside every window.
  double stall_severity(std::size_t shard, std::uint64_t tick) const;

  /// True when any fault in the plan targets this tenant (the clean /
  /// faulted partition the isolation tests assert over).
  bool targets_tenant(std::uint64_t tenant) const;

  /// The keyed injection context for one tenant: a FaultPlan whose
  /// measurement-corruption probability is the max over the tenant's
  /// poison windows (window gating happens at the fleet's call site, which
  /// knows the tick), seeded per tenant off the fleet seed. Corruption
  /// draws only NaN / negative values — both are quarantined and counted
  /// by the management server, which is what the quarantine ladder
  /// watches; silent outliers would poison the model undetectably.
  FaultPlan tenant_plan(std::uint64_t tenant) const;

  /// Stable per-tenant injection key (install_keyed / InjectionKeyScope).
  std::uint64_t tenant_key(std::uint64_t tenant) const;

  bool trivial() const {
    return crashes.empty() && poisons.empty() &&
           journal_corruptions.empty() && stalls.empty();
  }
};

}  // namespace kertbn::fault
