#include "fault/fault_injector.hpp"

#include <cmath>
#include <cstring>
#include <limits>
#include <mutex>
#include <unordered_map>

namespace kertbn::fault {

namespace {

/// splitmix64 finalizer — the same mixer Rng uses for seeding; applied as a
/// keyed hash so every decision is an independent high-quality draw.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t FaultInjector::bits(Stream stream, std::uint64_t a,
                                  std::uint64_t b) const {
  std::uint64_t h = mix(plan_.seed ^ mix(static_cast<std::uint64_t>(stream)));
  h = mix(h ^ a);
  return mix(h ^ b);
}

double FaultInjector::u01(Stream stream, std::uint64_t a,
                          std::uint64_t b) const {
  return static_cast<double>(bits(stream, a, b) >> 11) * 0x1.0p-53;
}

bool FaultInjector::agent_down(std::size_t agent, double now) const {
  for (const AgentCrash& crash : plan_.crashes) {
    if (crash.agent == agent && crash.down.contains(now)) return true;
  }
  return false;
}

bool FaultInjector::drop_report(std::size_t agent,
                                std::uint64_t interval) const {
  return plan_.report_loss_prob > 0.0 &&
         u01(Stream::kLoss, agent, interval) < plan_.report_loss_prob;
}

bool FaultInjector::duplicate_report(std::size_t agent,
                                     std::uint64_t interval) const {
  return plan_.report_duplicate_prob > 0.0 &&
         u01(Stream::kDuplicate, agent, interval) <
             plan_.report_duplicate_prob;
}

bool FaultInjector::delay_report(std::size_t agent,
                                 std::uint64_t interval) const {
  return plan_.report_delay_prob > 0.0 &&
         u01(Stream::kDelay, agent, interval) < plan_.report_delay_prob;
}

std::optional<double> FaultInjector::corrupt_measurement(std::size_t service,
                                                         std::uint64_t seq,
                                                         double value) const {
  if (plan_.measurement_corrupt_prob <= 0.0) return std::nullopt;
  if (u01(Stream::kCorrupt, service, seq) >= plan_.measurement_corrupt_prob) {
    return std::nullopt;
  }
  const double wn = std::max(plan_.corrupt_nan_weight, 0.0);
  const double wneg = std::max(plan_.corrupt_negative_weight, 0.0);
  const double wout = std::max(plan_.corrupt_outlier_weight, 0.0);
  const double total = wn + wneg + wout;
  if (total <= 0.0) return std::nullopt;
  const double pick = u01(Stream::kCorruptKind, service, seq) * total;
  if (pick < wn) return std::numeric_limits<double>::quiet_NaN();
  if (pick < wn + wneg) return -std::abs(value) - 1.0;
  return value * plan_.outlier_factor;
}

bool FaultInjector::partitioned(double now) const {
  for (const TimeWindow& w : plan_.partitions) {
    if (w.contains(now)) return true;
  }
  return false;
}

double FaultInjector::ingest_burst_factor(double now) const {
  for (const TimeWindow& w : plan_.ingest_bursts) {
    if (w.contains(now)) return std::max(1.0, plan_.ingest_burst_factor);
  }
  return 1.0;
}

double FaultInjector::cpu_pressure(double now) const {
  for (const TimeWindow& w : plan_.cpu_stalls) {
    if (w.contains(now)) {
      return std::min(1.0, std::max(0.0, plan_.cpu_stall_severity));
    }
  }
  return 0.0;
}

double FaultInjector::query_flood_factor(double now) const {
  for (const TimeWindow& w : plan_.query_floods) {
    if (w.contains(now)) return std::max(1.0, plan_.query_flood_factor);
  }
  return 1.0;
}

namespace {

std::mutex g_install_mutex;
std::shared_ptr<const FaultInjector> g_installed;
std::atomic<const FaultInjector*> g_active{nullptr};
std::atomic<bool> g_enabled{true};
std::atomic<std::uint64_t> g_sim_now_bits{0};

/// Keyed contexts. The count gates the hot path: with no keyed contexts
/// installed (the common case, and every pre-fleet caller), active() never
/// touches the map or the lock. Bumped on every install/uninstall, the
/// generation invalidates the per-thread lookup cache below.
std::mutex g_keyed_mutex;
std::unordered_map<std::uint64_t, std::shared_ptr<const FaultInjector>>
    g_keyed;
std::atomic<std::size_t> g_keyed_count{0};
std::atomic<std::uint64_t> g_keyed_generation{0};

/// Thread-local injection key (see InjectionKeyScope).
thread_local std::uint64_t t_key = 0;
thread_local bool t_has_key = false;

/// Per-thread memo of the last keyed lookup, so a tenant's whole interval
/// (many hook calls under one scope) pays the registry lock once.
thread_local std::uint64_t t_cache_generation = ~0ULL;
thread_local std::uint64_t t_cache_key = 0;
thread_local const FaultInjector* t_cache_injector = nullptr;
thread_local bool t_cache_found = false;

/// Registry lookup with the per-thread memo. Returns whether \p key has an
/// installed injector (which may be null only if found is false).
const FaultInjector* keyed_lookup(std::uint64_t key, bool* found) {
  const std::uint64_t gen =
      g_keyed_generation.load(std::memory_order_acquire);
  if (t_cache_generation != gen || t_cache_key != key) {
    std::lock_guard lock(g_keyed_mutex);
    const auto it = g_keyed.find(key);
    t_cache_found = it != g_keyed.end();
    t_cache_injector = t_cache_found ? it->second.get() : nullptr;
    t_cache_key = key;
    t_cache_generation = gen;
  }
  *found = t_cache_found;
  return t_cache_injector;
}

}  // namespace

void install(std::shared_ptr<const FaultInjector> injector) {
  std::lock_guard lock(g_install_mutex);
  g_active.store(injector.get(), std::memory_order_release);
  g_installed = std::move(injector);
}

void uninstall() { install(nullptr); }

void install_keyed(std::uint64_t key,
                   std::shared_ptr<const FaultInjector> injector) {
  std::lock_guard lock(g_keyed_mutex);
  if (injector == nullptr) {
    g_keyed.erase(key);
  } else {
    g_keyed[key] = std::move(injector);
  }
  g_keyed_count.store(g_keyed.size(), std::memory_order_relaxed);
  g_keyed_generation.fetch_add(1, std::memory_order_release);
}

void uninstall_keyed(std::uint64_t key) { install_keyed(key, nullptr); }

std::size_t keyed_context_count() {
  return g_keyed_count.load(std::memory_order_relaxed);
}

InjectionKeyScope::InjectionKeyScope(std::uint64_t key)
    : prev_key_(t_key), prev_has_key_(t_has_key) {
  t_key = key;
  t_has_key = true;
}

InjectionKeyScope::~InjectionKeyScope() {
  t_key = prev_key_;
  t_has_key = prev_has_key_;
}

const FaultInjector* active() {
  if (!g_enabled.load(std::memory_order_relaxed)) return nullptr;
  if (t_has_key && g_keyed_count.load(std::memory_order_relaxed) > 0) {
    bool found = false;
    const FaultInjector* keyed = keyed_lookup(t_key, &found);
    if (found) return keyed;
  }
  return g_active.load(std::memory_order_acquire);
}

const FaultInjector* active_for(std::uint64_t key) {
  if (!g_enabled.load(std::memory_order_relaxed)) return nullptr;
  if (g_keyed_count.load(std::memory_order_relaxed) > 0) {
    bool found = false;
    const FaultInjector* keyed = keyed_lookup(key, &found);
    if (found) return keyed;
  }
  return g_active.load(std::memory_order_acquire);
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

void set_sim_now(double t) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(t));
  std::memcpy(&bits, &t, sizeof(bits));
  g_sim_now_bits.store(bits, std::memory_order_relaxed);
}

double sim_now() {
  const std::uint64_t bits = g_sim_now_bits.load(std::memory_order_relaxed);
  double t;
  std::memcpy(&t, &bits, sizeof(t));
  return t;
}

void maybe_cpu_stall() {
  const FaultInjector* inj = active();
  if (inj == nullptr) return;
  const double pressure = inj->cpu_pressure(sim_now());
  if (pressure <= 0.0) return;
  // ~2M mixes per unit severity: milliseconds of pure wasted CPU, enough
  // for the governor's cpu_pressure signal to be corroborated by real
  // work-time inflation without distorting any modeled value.
  const std::uint64_t spins =
      static_cast<std::uint64_t>(pressure * 2'000'000.0);
  std::uint64_t sink = inj->plan().seed;
  for (std::uint64_t i = 0; i < spins; ++i) sink = mix(sink ^ i);
  // Defeat dead-code elimination without observable side effects.
  volatile std::uint64_t keep = sink;
  (void)keep;
}

}  // namespace kertbn::fault
