#pragma once
/// \file fault_injector.hpp
/// Deterministic, seeded realization of a FaultPlan.
///
/// Every probabilistic decision is a pure function of
/// (plan seed, decision stream, coordinates) — there is no internal RNG
/// state, so the injector is thread-safe by construction and the fault
/// schedule is independent of call order and thread interleaving: the same
/// plan produces bit-identical decisions whether the pipeline runs serial,
/// pooled, or in a different phase order.
///
/// Installation mirrors the obs layer: a process-global injector pointer
/// that hot paths read with one relaxed atomic load. With no plan installed
/// (the default) every hook site reduces to that single load — the
/// abl_fault_overhead bench guards this at < 1% of the steady-state
/// reconstruction loop.

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>

#include "fault/fault_plan.hpp"

namespace kertbn::fault {

/// Realizes one FaultPlan. All methods are const and thread-safe.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  const FaultPlan& plan() const { return plan_; }

  /// True while \p agent is inside one of its scheduled crash windows.
  bool agent_down(std::size_t agent, double now) const;

  /// Per-(agent, interval) report fates — each an independent seeded draw.
  bool drop_report(std::size_t agent, std::uint64_t interval) const;
  bool duplicate_report(std::size_t agent, std::uint64_t interval) const;
  bool delay_report(std::size_t agent, std::uint64_t interval) const;

  /// Possibly corrupts measurement number \p seq of \p service. Returns the
  /// corrupted value (NaN, negated, or an outlier per the plan's mix), or
  /// nullopt when this measurement passes through untouched.
  std::optional<double> corrupt_measurement(std::size_t service,
                                            std::uint64_t seq,
                                            double value) const;

  /// True while the decentral fabric is inside a partition window.
  bool partitioned(double now) const;

  /// Overload faults (scheduled windows, deterministic):
  /// Ingest-burst multiplier at \p now (1.0 outside every burst window).
  double ingest_burst_factor(double now) const;
  /// Injected CPU pressure in [0, 1] at \p now (0.0 outside every stall
  /// window).
  double cpu_pressure(double now) const;
  /// Query-flood multiplier at \p now (1.0 outside every flood window).
  double query_flood_factor(double now) const;

  /// Cumulative journal byte offset past which writes are lost (process
  /// crash simulation for the durability layer), or nullopt when disabled.
  std::optional<std::uint64_t> journal_write_cutoff() const {
    if (plan_.journal_write_cutoff < 0) return std::nullopt;
    return static_cast<std::uint64_t>(plan_.journal_write_cutoff);
  }

 private:
  /// Independent decision streams (salt so e.g. loss and delay draws for
  /// the same (agent, interval) are uncorrelated).
  enum class Stream : std::uint64_t {
    kLoss = 1,
    kDuplicate,
    kDelay,
    kCorrupt,
    kCorruptKind,
  };

  std::uint64_t bits(Stream stream, std::uint64_t a, std::uint64_t b) const;
  /// Uniform double in [0, 1) for the decision at (stream, a, b).
  double u01(Stream stream, std::uint64_t a, std::uint64_t b) const;

  FaultPlan plan_;
};

/// Installs \p injector process-wide (pass nullptr to uninstall). Intended
/// for run setup, tests, and benches — not for concurrent flipping while
/// the pipeline is mid-interval.
void install(std::shared_ptr<const FaultInjector> injector);
void uninstall();

/// Keyed injection contexts (multi-tenant processes): a plan installed
/// under a key applies only to code running inside an InjectionKeyScope
/// for that key — tenant A's hook sites realize A's plan while tenant B,
/// processed in the same process (even on the same thread), runs clean.
/// Keys with no installed injector fall back to the process-global one,
/// so ScopedFaultPlan keeps its everyone-sees-it semantics. Like
/// install(), not for concurrent flipping while a keyed pipeline is
/// mid-interval.
void install_keyed(std::uint64_t key,
                   std::shared_ptr<const FaultInjector> injector);
void uninstall_keyed(std::uint64_t key);
/// Installed keyed contexts (0 keeps active() on its one-load fast path).
std::size_t keyed_context_count();

/// The injection key the current thread is processing under, if any.
/// RAII, nestable; restores the previous key on destruction.
class InjectionKeyScope {
 public:
  explicit InjectionKeyScope(std::uint64_t key);
  ~InjectionKeyScope();

  InjectionKeyScope(const InjectionKeyScope&) = delete;
  InjectionKeyScope& operator=(const InjectionKeyScope&) = delete;

 private:
  std::uint64_t prev_key_;
  bool prev_has_key_;
};

/// The installed injector for hook sites: nullptr when no plan applies or
/// the kill switch is off. With no keyed contexts installed this is one
/// relaxed atomic load plus the global pointer load (the seed fast path);
/// inside an InjectionKeyScope with keyed contexts present, the key's
/// injector wins over the global one.
const FaultInjector* active();
/// Keyed lookup without entering a scope (fleet drivers that already know
/// the tenant): the key's injector, else the global one.
const FaultInjector* active_for(std::uint64_t key);

/// Runtime kill switch (mirrors obs::set_enabled): when off, active()
/// returns nullptr even with an injector installed.
bool enabled();
void set_enabled(bool on);

/// Simulated-time bridge for hook sites that have no clock of their own
/// (the decentral channels): the test-bed publishes its DES time here.
void set_sim_now(double t);
double sim_now();

/// CPU-pressure stall hook for the reconstruction path: when the installed
/// plan has a stall window covering sim_now(), burns a deterministic
/// amount of wasted CPU (a fixed spin count scaled by the severity).
/// Timing-only — no modeled value changes; with no plan installed this is
/// the usual single relaxed load.
void maybe_cpu_stall();

/// RAII plan installation for tests and benches.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(FaultPlan plan)
      : injector_(std::make_shared<const FaultInjector>(std::move(plan))) {
    install(injector_);
  }
  ~ScopedFaultPlan() { uninstall(); }

  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;

  const FaultInjector& injector() const { return *injector_; }

 private:
  std::shared_ptr<const FaultInjector> injector_;
};

/// RAII keyed plan installation: the plan applies only inside
/// InjectionKeyScope(key) (see install_keyed).
class ScopedKeyedFaultPlan {
 public:
  ScopedKeyedFaultPlan(std::uint64_t key, FaultPlan plan)
      : key_(key),
        injector_(std::make_shared<const FaultInjector>(std::move(plan))) {
    install_keyed(key_, injector_);
  }
  ~ScopedKeyedFaultPlan() { uninstall_keyed(key_); }

  ScopedKeyedFaultPlan(const ScopedKeyedFaultPlan&) = delete;
  ScopedKeyedFaultPlan& operator=(const ScopedKeyedFaultPlan&) = delete;

  std::uint64_t key() const { return key_; }
  const FaultInjector& injector() const { return *injector_; }

 private:
  std::uint64_t key_;
  std::shared_ptr<const FaultInjector> injector_;
};

}  // namespace kertbn::fault
