#include "fault/fleet_plan.hpp"

#include <algorithm>

namespace kertbn::fault {

namespace {

/// splitmix64 finalizer (same mixer the injector uses) for key derivation.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

bool FleetFaultPlan::crash_at(std::uint64_t tenant,
                              std::uint64_t tick) const {
  for (const TenantCrash& c : crashes) {
    if (c.tenant == tenant && c.at_tick == tick) return true;
  }
  return false;
}

bool FleetFaultPlan::poison_active(std::uint64_t tenant,
                                   std::uint64_t tick) const {
  for (const TenantPoison& p : poisons) {
    if (p.tenant == tenant && p.window.contains(tick)) return true;
  }
  return false;
}

std::size_t FleetFaultPlan::journal_truncation_at(std::uint64_t tenant,
                                                  std::uint64_t tick) const {
  for (const JournalCorruption& j : journal_corruptions) {
    if (j.tenant == tenant && j.at_tick == tick) return j.truncate_bytes;
  }
  return 0;
}

double FleetFaultPlan::stall_severity(std::size_t shard,
                                      std::uint64_t tick) const {
  double severity = 0.0;
  for (const ShardStall& s : stalls) {
    if (s.shard == shard && s.window.contains(tick)) {
      severity = std::max(severity, s.severity);
    }
  }
  return severity;
}

bool FleetFaultPlan::targets_tenant(std::uint64_t tenant) const {
  for (const TenantCrash& c : crashes) {
    if (c.tenant == tenant) return true;
  }
  for (const TenantPoison& p : poisons) {
    if (p.tenant == tenant) return true;
  }
  for (const JournalCorruption& j : journal_corruptions) {
    if (j.tenant == tenant) return true;
  }
  return false;
}

FaultPlan FleetFaultPlan::tenant_plan(std::uint64_t tenant) const {
  FaultPlan plan;
  plan.seed = mix(seed ^ mix(tenant));
  for (const TenantPoison& p : poisons) {
    if (p.tenant == tenant) {
      plan.measurement_corrupt_prob =
          std::max(plan.measurement_corrupt_prob, p.corrupt_prob);
    }
  }
  plan.corrupt_nan_weight = 1.0;
  plan.corrupt_negative_weight = 1.0;
  plan.corrupt_outlier_weight = 0.0;
  return plan;
}

std::uint64_t FleetFaultPlan::tenant_key(std::uint64_t tenant) const {
  return mix(mix(seed) ^ tenant);
}

}  // namespace kertbn::fault
