#include "fault/file_damage.hpp"

#include <filesystem>
#include <fstream>
#include <system_error>

namespace kertbn::fault {

std::size_t file_size(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<std::size_t>(size);
}

bool truncate_file(const std::string& path, std::size_t new_size) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) return false;
  if (file_size(path) <= new_size) return true;
  std::filesystem::resize_file(path, new_size, ec);
  return !ec;
}

bool truncate_tail(const std::string& path, std::size_t n) {
  const std::size_t size = file_size(path);
  return truncate_file(path, size >= n ? size - n : 0);
}

bool flip_byte(const std::string& path, std::size_t offset,
               unsigned char mask) {
  if (offset >= file_size(path)) return false;
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  if (!f) return false;
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  if (!f.get(byte)) return false;
  f.seekp(static_cast<std::streamoff>(offset));
  f.put(static_cast<char>(static_cast<unsigned char>(byte) ^ mask));
  return static_cast<bool>(f);
}

}  // namespace kertbn::fault
