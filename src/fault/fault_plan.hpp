#pragma once
/// \file fault_plan.hpp
/// Declarative fault schedules for the monitoring / learning pipeline.
///
/// The paper assumes an autonomic Grid in which monitoring agents crash,
/// reports get lost or arrive late, and measurements occasionally come back
/// garbage. A FaultPlan captures exactly that environment as data: per-agent
/// crash/restart windows, per-report loss/duplication/delay probabilities,
/// a measurement-corruption mix (NaN / negative / outlier), and decentral
/// channel partition windows. A plan plus one seed fully determines every
/// injected fault (see FaultInjector), so any degraded run is bit-for-bit
/// reproducible.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace kertbn::fault {

/// Half-open simulated-time interval [from, until).
struct TimeWindow {
  double from = 0.0;
  double until = 0.0;

  bool contains(double t) const { return t >= from && t < until; }
};

/// One agent crash: the agent is dead (no measurements recorded, no report
/// flushed, batched state lost) for the whole window, then restarts clean.
struct AgentCrash {
  std::size_t agent = 0;
  TimeWindow down;
};

/// Everything that can go wrong, as data. Probabilities are per decision:
/// loss/duplication/delay per (agent, interval) report, corruption per raw
/// measurement. All default to "nothing ever fails".
struct FaultPlan {
  /// Root of every probabilistic decision; identical seeds replay identical
  /// fault schedules regardless of thread interleaving.
  std::uint64_t seed = 0;

  /// Scheduled agent crash/restart windows (deterministic, not sampled).
  std::vector<AgentCrash> crashes;

  /// P(an agent's interval report is lost entirely).
  double report_loss_prob = 0.0;
  /// P(an agent's interval report is delivered twice).
  double report_duplicate_prob = 0.0;
  /// P(an agent's interval report is delayed into the next interval,
  /// arriving out of order behind fresher data).
  double report_delay_prob = 0.0;

  /// P(a raw elapsed-time measurement is corrupted before recording).
  double measurement_corrupt_prob = 0.0;
  /// Relative weights of the corruption kinds (need not sum to 1).
  double corrupt_nan_weight = 1.0;
  double corrupt_negative_weight = 1.0;
  double corrupt_outlier_weight = 1.0;
  /// Multiplier applied by outlier corruption.
  double outlier_factor = 100.0;

  /// Windows during which the decentral channel fabric is partitioned:
  /// every Channel::send is dropped, and the monitoring test-bed treats
  /// agent reports (which ride the same fabric) as undeliverable.
  std::vector<TimeWindow> partitions;

  /// Deterministic overload faults. Windows are scheduled (not sampled),
  /// like crashes, so the pressure the ladder sees replays bit-for-bit.
  ///
  /// Ingest bursts: while inside a window the test-bed offers each
  /// interval's report batch `ingest_burst_factor` times over, piling
  /// pressure on the admission queue (a flash crowd of agents).
  std::vector<TimeWindow> ingest_bursts;
  double ingest_burst_factor = 5.0;
  /// CPU-pressure stalls: while inside a window, cpu_pressure(now)
  /// reports `cpu_stall_severity` (in [0, 1]) and maybe_cpu_stall spins a
  /// deterministic amount of wasted work inside the reconstruction path —
  /// timing-only; no modeled value changes.
  std::vector<TimeWindow> cpu_stalls;
  double cpu_stall_severity = 1.0;
  /// Query floods: while inside a window the serving layer is offered
  /// `query_flood_factor` times its normal batch size.
  std::vector<TimeWindow> query_floods;
  double query_flood_factor = 5.0;

  /// Management-server process-crash simulation for the durability layer:
  /// every journal byte at or past this cumulative write offset is silently
  /// dropped (a kill -9 loses buffered and in-flight bytes, so the record
  /// straddling the cutoff lands torn on disk, and nothing after it lands
  /// at all). Negative = disabled. Cutting mid-record exercises exactly the
  /// torn-tail tolerance recovery must have.
  long long journal_write_cutoff = -1;

  /// True when the plan can never inject anything.
  bool trivial() const {
    return crashes.empty() && partitions.empty() && report_loss_prob <= 0.0 &&
           report_duplicate_prob <= 0.0 && report_delay_prob <= 0.0 &&
           measurement_corrupt_prob <= 0.0 && journal_write_cutoff < 0 &&
           ingest_bursts.empty() && cpu_stalls.empty() &&
           query_floods.empty();
  }
};

}  // namespace kertbn::fault
