#pragma once
/// \file file_damage.hpp
/// Surgical on-disk damage for durability testing: the patterns a real
/// crash or a failing disk leaves behind. A kill -9 mid-write truncates the
/// file inside a record (torn tail); a power cut through a firmware cache
/// can leave a page of garbage (bit flips) in data that was "written". The
/// recovery path must survive both, so tests use these helpers to inflict
/// them deterministically on journal segments and checkpoints.

#include <cstddef>
#include <cstdint>
#include <string>

namespace kertbn::fault {

/// Current size of \p path in bytes; 0 when the file does not exist.
std::size_t file_size(const std::string& path);

/// Truncates \p path to \p new_size bytes (no-op when already smaller).
/// Returns false when the file cannot be opened.
bool truncate_file(const std::string& path, std::size_t new_size);

/// Removes the final \p n bytes of \p path (clamped to the file size) —
/// the torn-tail shape a crash mid-append leaves.
bool truncate_tail(const std::string& path, std::size_t n);

/// XORs \p mask into the byte at \p offset (mask 0 is a no-op; the default
/// flips the low bit). Returns false when the offset is out of range or
/// the file cannot be opened.
bool flip_byte(const std::string& path, std::size_t offset,
               unsigned char mask = 0x01);

}  // namespace kertbn::fault
