#pragma once
/// \file sequential_update.hpp
/// Sequential Bayesian parameter updating (Spiegelhalter & Lauritzen 1990
/// style), the alternative to periodic reconstruction that Section 2 of the
/// paper argues against: sufficient statistics accumulate forever, so "out
/// of date information lingers in the updated model and adversely impacts
/// its accuracy". We implement it faithfully — per-node conjugate updates
/// with no forgetting (plus an optional exponential-decay variant) — so the
/// reconstruction-vs-update trade-off can be measured rather than asserted
/// (bench/abl_update_vs_rebuild).

#include <vector>

#include "bn/network.hpp"

namespace kertbn::bn {

struct SequentialUpdateOptions {
  /// Dirichlet pseudo-count seeding each CPT cell.
  double dirichlet_alpha = 1.0;
  /// Floor on Gaussian standard deviations.
  double min_sigma = 1e-6;
  /// Ridge on the Gaussian sufficient statistics.
  double ridge = 1e-9;
  /// Per-batch exponential forgetting factor in (0, 1]; 1 = the classic
  /// no-forgetting update the paper critiques. Values < 1 decay old
  /// sufficient statistics before absorbing each batch.
  double forgetting = 1.0;
};

/// Maintains conjugate sufficient statistics for every *learnable* node of
/// a network (nodes whose CPD the updater owns; knowledge-given CPDs such
/// as KERT-BN's deterministic D node are left untouched) and refreshes the
/// CPDs incrementally as data batches arrive.
class SequentialUpdater {
 public:
  /// Binds to \p net. Nodes that already carry a CPD at construction are
  /// treated as knowledge-given and never updated; all others get their
  /// statistics initialized empty (call update() before first use).
  SequentialUpdater(BayesianNetwork& net,
                    const SequentialUpdateOptions& opts = {});

  /// Absorbs a batch of observations (columns in node order) and refreshes
  /// the learnable CPDs in place.
  void update(const Dataset& batch);

  /// Total observations absorbed.
  std::size_t observations() const { return observations_; }

  /// Nodes this updater maintains.
  const std::vector<std::size_t>& learnable_nodes() const {
    return learnable_;
  }

 private:
  struct DiscreteStats {
    std::vector<double> counts;  // configs x child_card
  };
  struct GaussianStats {
    // Sufficient statistics of the regression of the node on (1, parents):
    // xtx is (p+1)x(p+1) row-major, xty is (p+1), plus Σy² and n.
    std::vector<double> xtx;
    std::vector<double> xty;
    double yy = 0.0;
    double n = 0.0;
  };

  void refresh_node(std::size_t v);

  BayesianNetwork& net_;
  SequentialUpdateOptions opts_;
  std::vector<std::size_t> learnable_;
  std::vector<DiscreteStats> discrete_;   // indexed per learnable slot
  std::vector<GaussianStats> gaussian_;   // indexed per learnable slot
  std::vector<std::size_t> slot_of_;      // node -> slot (or npos)
  std::size_t observations_ = 0;
};

}  // namespace kertbn::bn
