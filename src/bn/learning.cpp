#include "bn/learning.hpp"

#include <cmath>

#include "common/contract.hpp"
#include "common/stopwatch.hpp"
#include "linalg/decompose.hpp"

namespace kertbn::bn {

TabularCpd fit_tabular_cpd(const Dataset& data, std::size_t child_col,
                           std::span<const std::size_t> parent_cols,
                           std::size_t child_card,
                           std::span<const std::size_t> parent_cards,
                           double dirichlet_alpha) {
  KERTBN_EXPECTS(parent_cols.size() == parent_cards.size());
  KERTBN_EXPECTS(dirichlet_alpha >= 0.0);
  std::size_t configs = 1;
  for (std::size_t c : parent_cards) configs *= c;
  std::vector<double> counts(configs * child_card, dirichlet_alpha);

  for (std::size_t r = 0; r < data.rows(); ++r) {
    std::size_t cfg = 0;
    for (std::size_t i = 0; i < parent_cols.size(); ++i) {
      const auto state =
          static_cast<std::size_t>(data.value(r, parent_cols[i]));
      KERTBN_EXPECTS(state < parent_cards[i]);
      cfg = cfg * parent_cards[i] + state;
    }
    const auto child_state =
        static_cast<std::size_t>(data.value(r, child_col));
    KERTBN_EXPECTS(child_state < child_card);
    counts[cfg * child_card + child_state] += 1.0;
  }
  // TabularCpd normalizes rows; all-zero rows (alpha=0, unseen config)
  // become uniform, the standard fallback.
  return TabularCpd(child_card,
                    std::vector<std::size_t>(parent_cards.begin(),
                                             parent_cards.end()),
                    std::move(counts));
}

LinearGaussianCpd fit_linear_gaussian_cpd(
    const Dataset& data, std::size_t child_col,
    std::span<const std::size_t> parent_cols, double min_sigma,
    double ridge) {
  const std::size_t n = data.rows();
  const std::size_t p = parent_cols.size();
  KERTBN_EXPECTS(n >= 1);

  // Design matrix with a leading intercept column.
  la::Matrix x(n, p + 1);
  la::Vector y(n);
  for (std::size_t r = 0; r < n; ++r) {
    x(r, 0) = 1.0;
    for (std::size_t i = 0; i < p; ++i) {
      x(r, i + 1) = data.value(r, parent_cols[i]);
    }
    y[r] = data.value(r, child_col);
  }
  const la::Vector beta = la::least_squares(x, y, ridge);

  // Residual standard deviation (ML estimate, floored).
  double rss = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    double pred = beta[0];
    for (std::size_t i = 0; i < p; ++i) pred += beta[i + 1] * x(r, i + 1);
    const double e = y[r] - pred;
    rss += e * e;
  }
  const double sigma =
      std::max(std::sqrt(rss / static_cast<double>(n)), min_sigma);

  std::vector<double> weights(p);
  for (std::size_t i = 0; i < p; ++i) weights[i] = beta[i + 1];
  return LinearGaussianCpd(beta[0], std::move(weights), sigma);
}

double ParameterLearnReport::max_node_seconds() const {
  double m = 0.0;
  for (std::size_t v : learned_nodes) {
    m = std::max(m, per_node_seconds[v]);
  }
  return m;
}

double ParameterLearnReport::sum_node_seconds() const {
  double s = 0.0;
  for (std::size_t v : learned_nodes) s += per_node_seconds[v];
  return s;
}

double learn_node_parameters(BayesianNetwork& net, std::size_t v,
                             const Dataset& data,
                             const ParameterLearnOptions& opts) {
  KERTBN_EXPECTS(data.cols() == net.size());
  const auto pars = net.dag().parents(v);
  const std::vector<std::size_t> parent_cols(pars.begin(), pars.end());

  Stopwatch timer;
  if (net.variable(v).is_discrete()) {
    std::vector<std::size_t> parent_cards;
    parent_cards.reserve(parent_cols.size());
    for (std::size_t p : parent_cols) {
      KERTBN_EXPECTS(net.variable(p).is_discrete());
      parent_cards.push_back(net.variable(p).cardinality);
    }
    auto cpd = fit_tabular_cpd(data, v, parent_cols,
                               net.variable(v).cardinality, parent_cards,
                               opts.dirichlet_alpha);
    const double secs = timer.seconds();
    net.set_cpd(v, std::make_unique<TabularCpd>(std::move(cpd)));
    return secs;
  }
  auto cpd = fit_linear_gaussian_cpd(data, v, parent_cols, opts.min_sigma,
                                     opts.ridge);
  const double secs = timer.seconds();
  net.set_cpd(v, std::make_unique<LinearGaussianCpd>(std::move(cpd)));
  return secs;
}

ParameterLearnReport learn_parameters(BayesianNetwork& net,
                                      const Dataset& data,
                                      const ParameterLearnOptions& opts) {
  ParameterLearnReport report;
  report.per_node_seconds.assign(net.size(), 0.0);
  Stopwatch total;
  for (std::size_t v = 0; v < net.size(); ++v) {
    if (net.has_cpd(v) && !opts.refit_existing) continue;
    report.per_node_seconds[v] = learn_node_parameters(net, v, data, opts);
    report.learned_nodes.push_back(v);
  }
  report.total_seconds = total.seconds();
  return report;
}

}  // namespace kertbn::bn
