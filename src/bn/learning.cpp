#include "bn/learning.hpp"

#include <cmath>

#include "common/contract.hpp"
#include "common/stopwatch.hpp"
#include "linalg/decompose.hpp"

namespace kertbn::bn {

TabularCpd fit_tabular_cpd(const Dataset& data, std::size_t child_col,
                           std::span<const std::size_t> parent_cols,
                           std::size_t child_card,
                           std::span<const std::size_t> parent_cards,
                           double dirichlet_alpha) {
  KERTBN_EXPECTS(parent_cols.size() == parent_cards.size());
  KERTBN_EXPECTS(dirichlet_alpha >= 0.0);
  std::size_t configs = 1;
  for (std::size_t c : parent_cards) configs *= c;
  std::vector<double> counts(configs * child_card, dirichlet_alpha);

  for (std::size_t r = 0; r < data.rows(); ++r) {
    std::size_t cfg = 0;
    for (std::size_t i = 0; i < parent_cols.size(); ++i) {
      const auto state =
          static_cast<std::size_t>(data.value(r, parent_cols[i]));
      KERTBN_EXPECTS(state < parent_cards[i]);
      cfg = cfg * parent_cards[i] + state;
    }
    const auto child_state =
        static_cast<std::size_t>(data.value(r, child_col));
    KERTBN_EXPECTS(child_state < child_card);
    counts[cfg * child_card + child_state] += 1.0;
  }
  // TabularCpd normalizes rows; all-zero rows (alpha=0, unseen config)
  // become uniform, the standard fallback.
  return TabularCpd(child_card,
                    std::vector<std::size_t>(parent_cards.begin(),
                                             parent_cards.end()),
                    std::move(counts));
}

TabularCpd fit_tabular_cpd_from_counts(
    std::span<const double> counts, std::size_t child_card,
    std::span<const std::size_t> parent_cards, double dirichlet_alpha) {
  KERTBN_EXPECTS(dirichlet_alpha >= 0.0);
  std::size_t configs = 1;
  for (std::size_t c : parent_cards) configs *= c;
  KERTBN_EXPECTS(counts.size() == configs * child_card);
  std::vector<double> table(counts.begin(), counts.end());
  for (double& cell : table) cell += dirichlet_alpha;
  return TabularCpd(child_card,
                    std::vector<std::size_t>(parent_cards.begin(),
                                             parent_cards.end()),
                    std::move(table));
}

LinearGaussianCpd fit_linear_gaussian_from_moments(
    const la::Matrix& gram, std::size_t rows, std::size_t child_col,
    std::span<const std::size_t> parent_cols, double min_sigma,
    double ridge) {
  KERTBN_EXPECTS(rows >= 1);
  KERTBN_EXPECTS(gram.rows() == gram.cols());
  KERTBN_EXPECTS(child_col + 1 < gram.rows());
  const std::size_t p = parent_cols.size();

  // Augmented-index map: design column 0 is the intercept (gram row 0),
  // design column i+1 is parent i (gram row parent+1).
  std::vector<std::size_t> idx(p + 1);
  idx[0] = 0;
  for (std::size_t i = 0; i < p; ++i) {
    KERTBN_EXPECTS(parent_cols[i] + 1 < gram.rows());
    idx[i + 1] = parent_cols[i] + 1;
  }

  la::Matrix xtx(p + 1, p + 1);
  la::Vector xty(p + 1);
  for (std::size_t i = 0; i <= p; ++i) {
    for (std::size_t j = 0; j <= p; ++j) xtx(i, j) = gram(idx[i], idx[j]);
    xty[i] = gram(idx[i], child_col + 1);
  }
  const la::Vector beta = la::solve_normal_equations(xtx, xty, ridge);

  // rss = yᵀy - 2·betaᵀXᵀy + betaᵀXᵀX·beta, clamped: cancellation can
  // push a near-perfect fit fractionally below zero.
  const double yty = gram(child_col + 1, child_col + 1);
  double quad = 0.0;
  for (std::size_t i = 0; i <= p; ++i) {
    double row_dot = 0.0;
    for (std::size_t j = 0; j <= p; ++j) row_dot += xtx(i, j) * beta[j];
    quad += beta[i] * row_dot;
  }
  const double rss = std::max(yty - 2.0 * la::dot(beta, xty) + quad, 0.0);
  const double sigma =
      std::max(std::sqrt(rss / static_cast<double>(rows)), min_sigma);

  std::vector<double> weights(p);
  for (std::size_t i = 0; i < p; ++i) weights[i] = beta[i + 1];
  return LinearGaussianCpd(beta[0], std::move(weights), sigma);
}

LinearGaussianCpd fit_linear_gaussian_cpd(
    const Dataset& data, std::size_t child_col,
    std::span<const std::size_t> parent_cols, double min_sigma,
    double ridge) {
  const std::size_t n = data.rows();
  const std::size_t p = parent_cols.size();
  KERTBN_EXPECTS(n >= 1);

  // Design matrix with a leading intercept column.
  la::Matrix x(n, p + 1);
  la::Vector y(n);
  for (std::size_t r = 0; r < n; ++r) {
    x(r, 0) = 1.0;
    for (std::size_t i = 0; i < p; ++i) {
      x(r, i + 1) = data.value(r, parent_cols[i]);
    }
    y[r] = data.value(r, child_col);
  }
  const la::Vector beta = la::least_squares(x, y, ridge);

  // Residual standard deviation (ML estimate, floored).
  double rss = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    double pred = beta[0];
    for (std::size_t i = 0; i < p; ++i) pred += beta[i + 1] * x(r, i + 1);
    const double e = y[r] - pred;
    rss += e * e;
  }
  const double sigma =
      std::max(std::sqrt(rss / static_cast<double>(n)), min_sigma);

  std::vector<double> weights(p);
  for (std::size_t i = 0; i < p; ++i) weights[i] = beta[i + 1];
  return LinearGaussianCpd(beta[0], std::move(weights), sigma);
}

double ParameterLearnReport::max_node_seconds() const {
  double m = 0.0;
  for (std::size_t v : learned_nodes) {
    m = std::max(m, per_node_seconds[v]);
  }
  return m;
}

double ParameterLearnReport::sum_node_seconds() const {
  double s = 0.0;
  for (std::size_t v : learned_nodes) s += per_node_seconds[v];
  return s;
}

namespace {

/// One staged per-node fit: the CPD and the wall-clock seconds it took.
/// Fitting reads only const network state (structure, variable metadata)
/// and the shared dataset, so independent nodes can fit concurrently;
/// installation into the network happens serially afterwards.
struct NodeFit {
  std::unique_ptr<Cpd> cpd;
  double seconds = 0.0;
};

NodeFit fit_node_cpd(const BayesianNetwork& net, std::size_t v,
                     const Dataset& data,
                     const ParameterLearnOptions& opts) {
  const auto pars = net.dag().parents(v);
  const std::vector<std::size_t> parent_cols(pars.begin(), pars.end());

  NodeFit fit;
  Stopwatch timer;
  if (net.variable(v).is_discrete()) {
    std::vector<std::size_t> parent_cards;
    parent_cards.reserve(parent_cols.size());
    for (std::size_t p : parent_cols) {
      KERTBN_EXPECTS(net.variable(p).is_discrete());
      parent_cards.push_back(net.variable(p).cardinality);
    }
    auto cpd = fit_tabular_cpd(data, v, parent_cols,
                               net.variable(v).cardinality, parent_cards,
                               opts.dirichlet_alpha);
    fit.seconds = timer.seconds();
    fit.cpd = std::make_unique<TabularCpd>(std::move(cpd));
    return fit;
  }
  auto cpd = fit_linear_gaussian_cpd(data, v, parent_cols, opts.min_sigma,
                                     opts.ridge);
  fit.seconds = timer.seconds();
  fit.cpd = std::make_unique<LinearGaussianCpd>(std::move(cpd));
  return fit;
}

}  // namespace

double learn_node_parameters(BayesianNetwork& net, std::size_t v,
                             const Dataset& data,
                             const ParameterLearnOptions& opts) {
  KERTBN_EXPECTS(data.cols() == net.size());
  NodeFit fit = fit_node_cpd(net, v, data, opts);
  net.set_cpd(v, std::move(fit.cpd));
  return fit.seconds;
}

ParameterLearnReport learn_parameters(BayesianNetwork& net,
                                      const Dataset& data,
                                      const ParameterLearnOptions& opts,
                                      ThreadPool* pool) {
  KERTBN_EXPECTS(data.cols() == net.size());
  ParameterLearnReport report;
  report.per_node_seconds.assign(net.size(), 0.0);
  Stopwatch total;

  for (std::size_t v = 0; v < net.size(); ++v) {
    if (net.has_cpd(v) && !opts.refit_existing) continue;
    report.learned_nodes.push_back(v);
  }

  const auto cancelled = [&opts] {
    return opts.cancel != nullptr &&
           opts.cancel->load(std::memory_order_relaxed);
  };

  if (pool == nullptr || report.learned_nodes.size() < 2) {
    for (std::size_t v : report.learned_nodes) {
      if (cancelled()) {
        report.cancelled = true;
        break;
      }
      NodeFit fit = fit_node_cpd(net, v, data, opts);
      report.per_node_seconds[v] = fit.seconds;
      net.set_cpd(v, std::move(fit.cpd));
    }
    report.total_seconds = total.seconds();
    return report;
  }

  // Concurrent fits against the const network/dataset, staged per node;
  // futures propagate any task exception on get(). Each task re-checks the
  // cancellation flag at start so queued-but-unstarted fits become no-ops
  // once cancellation fires.
  std::vector<std::future<NodeFit>> futures;
  futures.reserve(report.learned_nodes.size());
  const BayesianNetwork& cnet = net;
  for (std::size_t v : report.learned_nodes) {
    futures.push_back(pool->submit([&cnet, &data, &opts, v] {
      if (opts.cancel != nullptr &&
          opts.cancel->load(std::memory_order_relaxed)) {
        return NodeFit{};
      }
      return fit_node_cpd(cnet, v, data, opts);
    }));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    NodeFit fit = futures[i].get();
    const std::size_t v = report.learned_nodes[i];
    if (fit.cpd == nullptr) {
      report.cancelled = true;
      continue;  // skipped by cancellation — node keeps its old CPD (if any)
    }
    report.per_node_seconds[v] = fit.seconds;
    net.set_cpd(v, std::move(fit.cpd));
  }
  report.total_seconds = total.seconds();
  return report;
}

}  // namespace kertbn::bn
