#pragma once
/// \file junction_tree.hpp
/// Junction-tree (clique-tree) inference for all-discrete networks.
///
/// Variable elimination answers one query per run; the Section 5
/// applications fire many queries against the same freshly-reconstructed
/// model (dComp over every unobservable service, pAccel over every
/// candidate action, six thresholds each). A calibrated junction tree
/// amortizes that: one moralization + min-fill triangulation + two-pass
/// message schedule, then every node's posterior is a cheap clique
/// marginalization.
///
/// Pipeline: moral graph -> min-fill elimination order -> cliques ->
/// maximum-weight spanning tree over separator sizes -> CPT assignment ->
/// evidence reduction -> upward/downward sum-product calibration.
///
/// Serving-path design (see DESIGN "Query serving"): all message and
/// belief computation runs on the flat kernels in factor_kernels.hpp
/// through a per-tree FactorWorkspace, so the steady state reuses cached
/// alignment plans and scratch buffers. Calibration is *lazy and
/// incremental*: calibrate() only records the evidence and marks the
/// cliques whose potentials changed (evidence attaches at a variable's
/// family clique, and evidence enters as slice-zeroing, so factor shapes
/// — and therefore every cached plan — are evidence-independent). A
/// posterior read then pulls exactly the messages directed toward the
/// target clique; any message whose source side contains no dirty clique
/// is reused verbatim from the cached no-evidence calibration. Message
/// fixed points are schedule-independent, so every answer stays
/// bit-identical to the eager legacy schedule.
///
/// Clique→sepset messages execute through the runtime-dispatched SIMD
/// kernels (common/cpu_features): on the scalar tier answers are
/// bit-identical to the legacy engines; on AVX tiers messages run as one
/// fused product+reduce pass (no clique-sized intermediate) whose
/// re-associated sums are tolerance-bounded (<= 1e-12 relative on
/// posteriors). Clean and evidence paths always share one kernel path, so
/// incremental-vs-full bit-identity holds on every tier.

#include <map>
#include <vector>

#include "bn/factor.hpp"
#include "bn/factor_kernels.hpp"
#include "bn/network.hpp"

namespace kertbn::bn {

class JunctionTree {
 public:
  /// Incremental-recalibration bookkeeping, cumulative over the tree's
  /// lifetime. `messages_reused` counts pulls satisfied by the cached
  /// no-evidence calibration (the incremental win); `messages_recomputed`
  /// counts actual kernel executions.
  struct CalibrationStats {
    std::size_t calibrations = 0;
    std::size_t full_calibrations = 0;  ///< calibrations with every clique dirty
    std::size_t messages_recomputed = 0;
    std::size_t messages_reused = 0;
    std::size_t beliefs_computed = 0;
  };

  /// Builds the tree structure for a complete all-discrete network. The
  /// no-evidence calibration is *not* run here: it is computed lazily on
  /// first use and kept as the baseline the incremental path reuses. The
  /// network must outlive the tree.
  explicit JunctionTree(const BayesianNetwork& net);

  /// Re-calibrates with the given evidence (node -> state). Only
  /// bookkeeping happens here (dirty-clique marking); message work is
  /// deferred to the next posterior / evidence_probability read.
  void calibrate(const std::map<std::size_t, std::size_t>& evidence);

  /// Hot-path variant: evidence as sorted (node, state) pairs, no
  /// per-node allocation. (Named, not overloaded: a braced initializer
  /// list would be ambiguous against the map overload.)
  void calibrate_sorted(const SortedEvidence& evidence);

  /// Incremental recalibration reuses the cached no-evidence messages for
  /// every subtree without dirty cliques (default). When off, every
  /// calibrate() recomputes the full schedule — the legacy cost model,
  /// kept for benchmarking and as a bit-identical cross-check.
  void set_incremental(bool on) { incremental_ = on; }
  bool incremental() const { return incremental_; }

  /// Precomputes the no-evidence calibration, all clique beliefs, and the
  /// per-node posterior reduction plans. After warm(), no-evidence reads
  /// (posterior / evidence_probability) on a const tree are mutation-free
  /// and safe to share across threads; evidence calibration still requires
  /// an exclusive (per-worker) copy.
  void warm();

  /// Posterior P(v | current evidence). v must not be an evidence node.
  std::vector<double> posterior(std::size_t v) const;

  /// Probability of the current evidence, P(e) (1 when none set).
  double evidence_probability() const;

  std::size_t clique_count() const { return cliques_.size(); }
  /// Size (number of variables) of the largest clique — the treewidth+1
  /// proxy that governs inference cost.
  std::size_t max_clique_size() const;

  const CalibrationStats& stats() const { return stats_; }
  /// Plan-cache hit rate of the underlying workspace (diagnostics).
  std::size_t plan_hits() const { return ws_.plan_hits(); }
  std::size_t plan_misses() const { return ws_.plan_misses(); }

 private:
  struct Edge {
    std::size_t a;
    std::size_t b;
    std::vector<std::size_t> separator;
  };

  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  void build_structure();
  Factor clique_base_factor(std::size_t c) const;

  /// Computes the cached no-evidence calibration once: clean clique
  /// potentials and the full fixed point of directed messages.
  void ensure_clean() const;

  /// Directed message id for x -> y (x, y adjacent): 2*edge + side.
  std::size_t message_id(std::size_t x, std::size_t y) const;
  /// True when message x -> y must be recomputed under the current dirty
  /// set (a dirty clique lies on x's side of the edge).
  bool message_affected(std::size_t x, std::size_t y) const;

  /// Message x -> y for the current evidence (pull-based; recursive).
  const FlatFactor& message(std::size_t x, std::size_t y) const;
  /// Clique potential under current evidence (clean base + zeroed slices).
  const FlatFactor& potential(std::size_t c) const;
  /// Calibrated belief of clique c under current evidence.
  const FlatFactor& belief(std::size_t c) const;
  const FlatFactor& clean_belief(std::size_t c) const;

  const BayesianNetwork& net_;
  std::vector<std::vector<std::size_t>> cliques_;  // sorted variable ids
  std::vector<Edge> edges_;                         // tree edges
  std::vector<std::vector<std::size_t>> neighbors_;  // clique adjacency
  std::vector<std::size_t> family_clique_;  // node -> clique holding family
  // Rooted-forest view (root = smallest clique index of each component,
  // matching the legacy component discovery order).
  std::vector<std::size_t> parent_clique_;   // kNone at roots
  std::vector<std::size_t> parent_edge_;     // edge index to parent
  std::vector<std::size_t> component_of_;    // clique -> component id
  std::vector<std::size_t> roots_;           // ascending clique index
  std::vector<std::size_t> postorder_;       // children before parents

  bool incremental_ = true;

  // ---- cached no-evidence calibration (computed once, then immutable) --
  mutable bool clean_ready_ = false;
  mutable std::vector<FlatFactor> clean_base_;      // per clique
  mutable std::vector<FlatFactor> clean_msgs_;      // per directed id
  mutable std::vector<FlatFactor> clean_beliefs_;   // per clique (lazy)
  mutable std::vector<char> clean_belief_ready_;
  mutable std::vector<double> clean_root_total_;    // per component

  // ---- current-evidence state (epoch-tagged lazy caches) ---------------
  SortedEvidence evidence_;
  mutable std::size_t epoch_ = 0;
  std::vector<char> dirty_;                 // clique potential != clean
  std::vector<std::size_t> subtree_dirty_;  // dirty cliques under c
  std::vector<std::size_t> comp_dirty_;     // dirty cliques per component
  mutable std::vector<FlatFactor> cur_msgs_;
  mutable std::vector<std::size_t> cur_msg_epoch_;
  mutable std::vector<FlatFactor> cur_pots_;
  mutable std::vector<std::size_t> cur_pot_epoch_;
  mutable std::vector<FlatFactor> cur_beliefs_;
  mutable std::vector<std::size_t> cur_belief_epoch_;
  mutable double evidence_probability_ = 1.0;
  mutable std::size_t ep_epoch_ = 0;
  mutable bool ep_ready_ = false;

  // Per-node posterior reduction plans (belief scope -> {v}), filled by
  // warm() or on first use.
  mutable std::vector<ReducePlan> posterior_plans_;
  mutable std::vector<char> posterior_plan_ready_;

  mutable FactorWorkspace ws_;
  // Depth-indexed operand lists for the recursive message pull: slot d
  // serves recursion depth d, so the hot path never allocates. Indexed
  // fresh on every use (never held by reference) because deeper recursion
  // may grow the pool.
  mutable std::vector<std::vector<const FlatFactor*>> msg_in_pool_;
  mutable std::size_t msg_depth_ = 0;
  mutable CalibrationStats stats_;
};

}  // namespace kertbn::bn
