#pragma once
/// \file junction_tree.hpp
/// Junction-tree (clique-tree) inference for all-discrete networks.
///
/// Variable elimination answers one query per run; the Section 5
/// applications fire many queries against the same freshly-reconstructed
/// model (dComp over every unobservable service, pAccel over every
/// candidate action, six thresholds each). A calibrated junction tree
/// amortizes that: one moralization + min-fill triangulation + two-pass
/// message schedule, then every node's posterior is a cheap clique
/// marginalization.
///
/// Pipeline: moral graph -> min-fill elimination order -> cliques ->
/// maximum-weight spanning tree over separator sizes -> CPT assignment ->
/// evidence reduction -> upward/downward sum-product calibration.

#include <map>
#include <vector>

#include "bn/factor.hpp"
#include "bn/network.hpp"

namespace kertbn::bn {

class JunctionTree {
 public:
  /// Builds the tree structure for a complete all-discrete network and
  /// calibrates it with no evidence. The network must outlive the tree.
  explicit JunctionTree(const BayesianNetwork& net);

  /// Re-calibrates with the given evidence (node -> state). Cheap relative
  /// to construction; replaces any previous evidence.
  void calibrate(const std::map<std::size_t, std::size_t>& evidence);

  /// Posterior P(v | current evidence). v must not be an evidence node.
  std::vector<double> posterior(std::size_t v) const;

  /// Probability of the current evidence, P(e) (1 when none set).
  double evidence_probability() const { return evidence_probability_; }

  std::size_t clique_count() const { return cliques_.size(); }
  /// Size (number of variables) of the largest clique — the treewidth+1
  /// proxy that governs inference cost.
  std::size_t max_clique_size() const;

 private:
  struct Edge {
    std::size_t a;
    std::size_t b;
    std::vector<std::size_t> separator;
  };

  void build_structure();
  Factor clique_base_factor(std::size_t c,
                            const std::map<std::size_t, std::size_t>&
                                evidence) const;

  const BayesianNetwork& net_;
  std::vector<std::vector<std::size_t>> cliques_;  // sorted variable ids
  std::vector<Edge> edges_;                         // tree edges
  std::vector<std::vector<std::size_t>> neighbors_;  // clique adjacency
  std::vector<std::size_t> family_clique_;  // node -> clique holding family
  // Calibrated clique beliefs (unnormalized joints with evidence folded).
  std::vector<Factor> beliefs_;
  std::map<std::size_t, std::size_t> evidence_;
  double evidence_probability_ = 1.0;
};

}  // namespace kertbn::bn
