#pragma once
/// \file intervention.hpp
/// Pearl's do-operator: graph surgery for causal queries. pAccel's question
/// — "what happens to D if we *make* service Z faster?" — is interventional,
/// but Section 5.2 answers it by conditioning, p(D | Z = E(z)). On models
/// with shared-resource confounders the two differ: conditioning on a fast
/// Z also selects the light-load regimes that make everything fast,
/// overstating the benefit. do(Z = z) instead severs Z from its causes and
/// keeps the rest of the joint intact.

#include "bn/network.hpp"

namespace kertbn::bn {

/// Returns the mutilated network for do(node = value): all edges into
/// \p node are removed and its CPD is replaced by the point distribution
/// at \p value (discrete nodes: \p value is the state index; the point
/// mass is realized as a CPT with all mass on that state). Other CPDs are
/// cloned unchanged.
BayesianNetwork do_intervention(const BayesianNetwork& net, std::size_t node,
                                double value);

}  // namespace kertbn::bn
