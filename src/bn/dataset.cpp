#include "bn/dataset.hpp"

#include <iomanip>
#include <sstream>

namespace kertbn::bn {

std::size_t Dataset::column_index(const std::string& name) const {
  for (std::size_t c = 0; c < names_.size(); ++c) {
    if (names_[c] == name) return c;
  }
  KERTBN_EXPECTS(false && "dataset column not found");
  return 0;
}

void Dataset::add_row(std::span<const double> row) {
  KERTBN_EXPECTS(row.size() == names_.size());
  data_.insert(data_.end(), row.begin(), row.end());
}

std::vector<double> Dataset::column(std::size_t c) const {
  KERTBN_EXPECTS(c < cols());
  std::vector<double> out;
  out.reserve(rows());
  for (std::size_t r = 0; r < rows(); ++r) out.push_back(value(r, c));
  return out;
}

Dataset Dataset::slice_rows(std::size_t first, std::size_t last) const {
  KERTBN_EXPECTS(first <= last && last <= rows());
  Dataset out(names_);
  for (std::size_t r = first; r < last; ++r) out.add_row(row(r));
  return out;
}

Dataset Dataset::select_columns(std::span<const std::size_t> cols_idx) const {
  std::vector<std::string> names;
  names.reserve(cols_idx.size());
  for (std::size_t c : cols_idx) {
    KERTBN_EXPECTS(c < cols());
    names.push_back(names_[c]);
  }
  Dataset out(std::move(names));
  std::vector<double> buf(cols_idx.size());
  for (std::size_t r = 0; r < rows(); ++r) {
    for (std::size_t i = 0; i < cols_idx.size(); ++i) {
      buf[i] = value(r, cols_idx[i]);
    }
    out.add_row(buf);
  }
  return out;
}

void Dataset::keep_last_rows(std::size_t n) {
  const std::size_t total = rows();
  if (n >= total) return;
  const std::size_t drop = (total - n) * names_.size();
  data_.erase(data_.begin(), data_.begin() + static_cast<std::ptrdiff_t>(drop));
}

std::string Dataset::to_csv(int precision) const {
  std::ostringstream out;
  out << std::setprecision(precision);
  for (std::size_t c = 0; c < names_.size(); ++c) {
    if (c > 0) out << ',';
    out << names_[c];
  }
  out << '\n';
  for (std::size_t r = 0; r < rows(); ++r) {
    for (std::size_t c = 0; c < cols(); ++c) {
      if (c > 0) out << ',';
      out << value(r, c);
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace kertbn::bn
