#include "bn/divergence.hpp"

#include <cmath>

#include "common/contract.hpp"

namespace kertbn::bn {

double joint_log_probability(const BayesianNetwork& net,
                             std::span<const double> row) {
  KERTBN_EXPECTS(net.is_complete());
  KERTBN_EXPECTS(row.size() == net.size());
  double lp = 0.0;
  std::vector<double> parent_buf;
  for (std::size_t v = 0; v < net.size(); ++v) {
    const auto pars = net.dag().parents(v);
    parent_buf.resize(pars.size());
    for (std::size_t i = 0; i < pars.size(); ++i) {
      parent_buf[i] = row[pars[i]];
    }
    lp += net.cpd(v).log_prob(row[v], parent_buf);
  }
  return lp;
}

double kl_divergence_exact(const BayesianNetwork& p,
                           const BayesianNetwork& q,
                           std::size_t max_configurations) {
  KERTBN_EXPECTS(p.size() == q.size());
  const std::size_t n = p.size();
  std::size_t configurations = 1;
  for (std::size_t v = 0; v < n; ++v) {
    KERTBN_EXPECTS(p.variable(v).is_discrete());
    KERTBN_EXPECTS(q.variable(v).is_discrete());
    KERTBN_EXPECTS(p.variable(v).cardinality == q.variable(v).cardinality);
    configurations *= p.variable(v).cardinality;
    KERTBN_EXPECTS(configurations <= max_configurations);
  }

  std::vector<double> row(n, 0.0);
  std::vector<std::size_t> states(n, 0);
  double kl = 0.0;
  for (std::size_t c = 0; c < configurations; ++c) {
    for (std::size_t v = 0; v < n; ++v) {
      row[v] = static_cast<double>(states[v]);
    }
    const double lp = joint_log_probability(p, row);
    const double pp = std::exp(lp);
    if (pp > 0.0) {
      kl += pp * (lp - joint_log_probability(q, row));
    }
    for (std::size_t v = n; v-- > 0;) {
      if (++states[v] < p.variable(v).cardinality) break;
      states[v] = 0;
    }
  }
  return kl;
}

double kl_divergence_sampled(const BayesianNetwork& p,
                             const BayesianNetwork& q, std::size_t samples,
                             Rng& rng) {
  KERTBN_EXPECTS(p.size() == q.size());
  KERTBN_EXPECTS(samples >= 1);
  double acc = 0.0;
  for (std::size_t s = 0; s < samples; ++s) {
    const auto row = p.sample_row(rng);
    acc += joint_log_probability(p, row) - joint_log_probability(q, row);
  }
  return acc / static_cast<double>(samples);
}

}  // namespace kertbn::bn
