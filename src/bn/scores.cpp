#include "bn/scores.hpp"

#include <cmath>
#include <numbers>

#include "bn/learning.hpp"
#include "common/contract.hpp"

#if defined(__GLIBC__)
// std::lgamma writes the global signgam, which races when K2 restarts are
// scored concurrently; the re-entrant form returns the sign by pointer.
// Declared directly because strict -std=c++20 hides it behind feature
// macros even though glibc always exports it.
extern "C" double lgamma_r(double, int*);
#endif

namespace kertbn::bn {

namespace {

/// Thread-safe log-gamma (all call sites here pass arguments >= 1, so the
/// sign output is always +1 and is discarded).
inline double lgamma_safe(double x) {
#if defined(__GLIBC__)
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

}  // namespace

double k2_family_score(const Dataset& data, std::size_t child,
                       std::span<const std::size_t> parents,
                       std::span<const Variable> vars) {
  KERTBN_EXPECTS(child < vars.size());
  KERTBN_EXPECTS(vars[child].is_discrete());
  const std::size_t r = vars[child].cardinality;

  std::size_t configs = 1;
  std::vector<std::size_t> parent_cards;
  parent_cards.reserve(parents.size());
  for (std::size_t p : parents) {
    KERTBN_EXPECTS(vars[p].is_discrete());
    parent_cards.push_back(vars[p].cardinality);
    configs *= vars[p].cardinality;
  }

  // N_jk counts: child state k under parent configuration j.
  std::vector<double> counts(configs * r, 0.0);
  for (std::size_t row = 0; row < data.rows(); ++row) {
    std::size_t cfg = 0;
    for (std::size_t i = 0; i < parents.size(); ++i) {
      cfg = cfg * parent_cards[i] +
            static_cast<std::size_t>(data.value(row, parents[i]));
    }
    counts[cfg * r + static_cast<std::size_t>(data.value(row, child))] += 1.0;
  }

  // log[(r-1)! / (N_j + r - 1)!] + Σ_k log(N_jk!)  via lgamma.
  const double log_r_minus_1_fact = lgamma_safe(static_cast<double>(r));
  double score = 0.0;
  for (std::size_t j = 0; j < configs; ++j) {
    double nj = 0.0;
    for (std::size_t k = 0; k < r; ++k) {
      const double njk = counts[j * r + k];
      nj += njk;
      score += lgamma_safe(njk + 1.0);
    }
    score += log_r_minus_1_fact - lgamma_safe(nj + static_cast<double>(r));
  }
  return score;
}

double gaussian_bic_family_score(const Dataset& data, std::size_t child,
                                 std::span<const std::size_t> parents) {
  const auto n = static_cast<double>(data.rows());
  KERTBN_EXPECTS(n >= 1.0);
  const LinearGaussianCpd cpd =
      fit_linear_gaussian_cpd(data, child, parents);
  // Maximized Gaussian log-likelihood given ML variance:
  // -n/2 (log(2π σ²) + 1).
  const double sigma2 = cpd.sigma() * cpd.sigma();
  const double loglik =
      -0.5 * n * (std::log(2.0 * std::numbers::pi * sigma2) + 1.0);
  const auto params = static_cast<double>(parents.size() + 2);
  return loglik - 0.5 * params * std::log(n);
}

FamilyScoreFn make_family_score(std::span<const Variable> vars) {
  bool all_discrete = true;
  for (const auto& v : vars) {
    if (!v.is_discrete()) {
      all_discrete = false;
      break;
    }
  }
  std::vector<Variable> owned(vars.begin(), vars.end());
  if (all_discrete) {
    return [owned = std::move(owned)](const Dataset& data, std::size_t child,
                                      std::span<const std::size_t> parents) {
      return k2_family_score(data, child, parents, owned);
    };
  }
  return [](const Dataset& data, std::size_t child,
            std::span<const std::size_t> parents) {
    return gaussian_bic_family_score(data, child, parents);
  };
}

double structure_score(const Dataset& data,
                       const std::vector<std::vector<std::size_t>>& parents,
                       const FamilyScoreFn& score) {
  double total = 0.0;
  for (std::size_t v = 0; v < parents.size(); ++v) {
    total += score(data, v, parents[v]);
  }
  return total;
}

}  // namespace kertbn::bn
