#include "bn/intervention.hpp"

#include "bn/deterministic_cpd.hpp"
#include "bn/tabular_cpd.hpp"
#include "common/contract.hpp"

namespace kertbn::bn {

BayesianNetwork do_intervention(const BayesianNetwork& net, std::size_t node,
                                double value) {
  KERTBN_EXPECTS(net.is_complete());
  KERTBN_EXPECTS(node < net.size());

  BayesianNetwork out;
  for (std::size_t v = 0; v < net.size(); ++v) {
    out.add_node(net.variable(v));
  }
  for (std::size_t v = 0; v < net.size(); ++v) {
    if (v == node) continue;  // graph surgery: drop edges into the target
    for (std::size_t p : net.dag().parents(v)) {
      const bool ok = out.add_edge(p, v);
      KERTBN_ASSERT(ok);
    }
  }
  for (std::size_t v = 0; v < net.size(); ++v) {
    if (v != node) {
      out.set_cpd(v, net.cpd(v).clone());
      continue;
    }
    if (net.variable(v).is_discrete()) {
      const auto state = static_cast<std::size_t>(value);
      const std::size_t card = net.variable(v).cardinality;
      KERTBN_EXPECTS(state < card);
      std::vector<double> point(card, 0.0);
      point[state] = 1.0;
      out.set_cpd(v, std::make_unique<TabularCpd>(
                         TabularCpd(card, {}, std::move(point))));
    } else {
      DeterministicFn fn;
      fn.arity = 0;
      fn.expression = "do(" + net.variable(v).name + " = " +
                      std::to_string(value) + ")";
      fn.fn = [value](std::span<const double>) { return value; };
      // Tiny jitter keeps downstream density evaluations finite.
      out.set_cpd(v, std::make_unique<DeterministicCpd>(std::move(fn),
                                                        1e-9));
    }
  }
  KERTBN_ENSURES(out.is_complete());
  return out;
}

}  // namespace kertbn::bn
