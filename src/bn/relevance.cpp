#include "bn/relevance.hpp"

#include <algorithm>

#include "bn/discrete_inference.hpp"
#include "common/contract.hpp"

namespace kertbn::bn {

RelevantSubnetwork relevant_subnetwork(
    const BayesianNetwork& net, std::size_t query,
    std::span<const std::size_t> evidence_nodes) {
  KERTBN_EXPECTS(net.is_complete());
  KERTBN_EXPECTS(query < net.size());

  // Keep = ancestral closure of {query} ∪ evidence.
  std::vector<bool> keep(net.size(), false);
  std::vector<std::size_t> stack;
  auto push = [&](std::size_t v) {
    if (!keep[v]) {
      keep[v] = true;
      stack.push_back(v);
    }
  };
  push(query);
  for (std::size_t e : evidence_nodes) {
    KERTBN_EXPECTS(e < net.size());
    push(e);
  }
  while (!stack.empty()) {
    const std::size_t v = stack.back();
    stack.pop_back();
    for (std::size_t p : net.dag().parents(v)) push(p);
  }

  RelevantSubnetwork out;
  out.pruned_of.assign(net.size(), RelevantSubnetwork::npos());
  for (std::size_t v = 0; v < net.size(); ++v) {
    if (!keep[v]) continue;
    const std::size_t idx = out.net.add_node(net.variable(v));
    out.pruned_of[v] = idx;
    out.original_of.push_back(v);
  }
  for (std::size_t v = 0; v < net.size(); ++v) {
    if (!keep[v]) continue;
    for (std::size_t p : net.dag().parents(v)) {
      // Parents of kept nodes are ancestors, hence kept.
      KERTBN_ASSERT(keep[p]);
      const bool ok =
          out.net.add_edge(out.pruned_of[p], out.pruned_of[v]);
      KERTBN_ASSERT(ok);
    }
    out.net.set_cpd(out.pruned_of[v], net.cpd(v).clone());
  }
  KERTBN_ENSURES(out.net.is_complete());
  return out;
}

std::vector<double> pruned_posterior(
    const BayesianNetwork& net, std::size_t query,
    const std::map<std::size_t, std::size_t>& evidence) {
  return pruned_posterior_sorted(
      net, query, SortedEvidence(evidence.begin(), evidence.end()));
}

std::vector<double> pruned_posterior_sorted(const BayesianNetwork& net,
                                            std::size_t query,
                                            const SortedEvidence& evidence) {
  std::vector<std::size_t> evidence_nodes;
  evidence_nodes.reserve(evidence.size());
  for (const auto& [v, _] : evidence) evidence_nodes.push_back(v);

  const RelevantSubnetwork sub =
      relevant_subnetwork(net, query, evidence_nodes);
  DiscreteEvidence remapped;
  for (const auto& [v, state] : evidence) {
    remapped[sub.pruned_of[v]] = state;
  }
  const VariableElimination ve(sub.net);
  return ve.posterior(sub.pruned_of[query], remapped);
}

std::size_t relevant_node_count(const BayesianNetwork& net, std::size_t query,
                                std::span<const std::size_t> evidence_nodes) {
  KERTBN_EXPECTS(query < net.size());
  std::vector<bool> keep(net.size(), false);
  std::vector<std::size_t> stack;
  auto push = [&](std::size_t v) {
    if (!keep[v]) {
      keep[v] = true;
      stack.push_back(v);
    }
  };
  push(query);
  for (std::size_t e : evidence_nodes) {
    KERTBN_EXPECTS(e < net.size());
    push(e);
  }
  std::size_t count = 0;
  while (!stack.empty()) {
    const std::size_t v = stack.back();
    stack.pop_back();
    ++count;
    for (std::size_t p : net.dag().parents(v)) push(p);
  }
  return count;
}

}  // namespace kertbn::bn
