#pragma once
/// \file relevance.hpp
/// Query-relevant subnetwork extraction — the Section 7 future-work item
/// ("reduce the cost of probability assessment after the model is
/// constructed"). For a posterior query P(Q | E) only the ancestors of
/// Q ∪ E matter: every other node is barren (it marginalizes to 1 in the
/// sum-product), so inference can run on a pruned copy of the network with
/// identical results at a fraction of the cost. On a KERT-BN this exploits
/// the workflow knowledge directly: services downstream of the query and
/// off its evidence paths drop out.

#include <map>
#include <vector>

#include "bn/factor_kernels.hpp"
#include "bn/network.hpp"

namespace kertbn::bn {

/// A pruned network plus the mapping back to original node indices.
struct RelevantSubnetwork {
  BayesianNetwork net;
  /// original_of[pruned index] = original node index.
  std::vector<std::size_t> original_of;
  /// pruned_of[original index] = pruned index, or npos() when dropped.
  std::vector<std::size_t> pruned_of;

  static constexpr std::size_t npos() {
    return static_cast<std::size_t>(-1);
  }

  bool contains(std::size_t original_node) const {
    return pruned_of[original_node] != npos();
  }
};

/// Extracts the ancestral closure of {query} ∪ evidence_nodes from a
/// complete network (CPDs are cloned). Posteriors computed on the result
/// (with indices remapped via pruned_of) are exactly those of the full
/// network.
RelevantSubnetwork relevant_subnetwork(
    const BayesianNetwork& net, std::size_t query,
    std::span<const std::size_t> evidence_nodes);

/// Convenience: exact discrete posterior of \p query given \p evidence,
/// computed on the pruned subnetwork. Equivalent to
/// VariableElimination(net).posterior(query, evidence), usually much
/// cheaper on large models.
std::vector<double> pruned_posterior(const BayesianNetwork& net,
                                     std::size_t query,
                                     const std::map<std::size_t,
                                                    std::size_t>& evidence);

/// Hot-path variant taking sorted (node, state) evidence; same result as
/// the map overload. (Named, not overloaded: a braced initializer list
/// would be ambiguous against it.)
std::vector<double> pruned_posterior_sorted(const BayesianNetwork& net,
                                            std::size_t query,
                                            const SortedEvidence& evidence);

/// Size of the ancestral closure of {query} ∪ evidence_nodes — the node
/// count relevant_subnetwork would keep, without cloning anything. The
/// QueryEngine uses this to decide per query whether pruned elimination
/// beats the calibrated tree.
std::size_t relevant_node_count(const BayesianNetwork& net, std::size_t query,
                                std::span<const std::size_t> evidence_nodes);

}  // namespace kertbn::bn
