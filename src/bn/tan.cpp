#include "bn/tan.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/contract.hpp"

namespace kertbn::bn {

double conditional_mutual_information(const Dataset& data, std::size_t a,
                                      std::size_t b, std::size_t class_col,
                                      std::span<const Variable> vars) {
  KERTBN_EXPECTS(a != b && a != class_col && b != class_col);
  KERTBN_EXPECTS(vars[a].is_discrete() && vars[b].is_discrete() &&
                 vars[class_col].is_discrete());
  const std::size_t ca = vars[a].cardinality;
  const std::size_t cb = vars[b].cardinality;
  const std::size_t cc = vars[class_col].cardinality;
  const std::size_t n = data.rows();
  KERTBN_EXPECTS(n > 0);

  // Joint counts over (a, b, c).
  std::vector<double> joint(ca * cb * cc, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const auto sa = static_cast<std::size_t>(data.value(r, a));
    const auto sb = static_cast<std::size_t>(data.value(r, b));
    const auto sc = static_cast<std::size_t>(data.value(r, class_col));
    joint[(sa * cb + sb) * cc + sc] += 1.0;
  }

  // Marginals.
  std::vector<double> p_ac(ca * cc, 0.0);
  std::vector<double> p_bc(cb * cc, 0.0);
  std::vector<double> p_c(cc, 0.0);
  for (std::size_t sa = 0; sa < ca; ++sa) {
    for (std::size_t sb = 0; sb < cb; ++sb) {
      for (std::size_t sc = 0; sc < cc; ++sc) {
        const double cnt = joint[(sa * cb + sb) * cc + sc];
        p_ac[sa * cc + sc] += cnt;
        p_bc[sb * cc + sc] += cnt;
        p_c[sc] += cnt;
      }
    }
  }

  const auto dn = static_cast<double>(n);
  double mi = 0.0;
  for (std::size_t sa = 0; sa < ca; ++sa) {
    for (std::size_t sb = 0; sb < cb; ++sb) {
      for (std::size_t sc = 0; sc < cc; ++sc) {
        const double pabc = joint[(sa * cb + sb) * cc + sc] / dn;
        if (pabc <= 0.0) continue;
        const double pac = p_ac[sa * cc + sc] / dn;
        const double pbc = p_bc[sb * cc + sc] / dn;
        const double pc = p_c[sc] / dn;
        mi += pabc * std::log(pabc * pc / (pac * pbc));
      }
    }
  }
  return mi;
}

StructureResult tan_structure(const Dataset& data,
                              std::span<const Variable> vars,
                              std::size_t class_node) {
  const std::size_t n = vars.size();
  KERTBN_EXPECTS(class_node < n);
  KERTBN_EXPECTS(n >= 2);

  std::vector<std::size_t> features;
  for (std::size_t v = 0; v < n; ++v) {
    if (v != class_node) features.push_back(v);
  }

  // Pairwise CMI weights.
  struct WeightedEdge {
    std::size_t a;
    std::size_t b;
    double weight;
  };
  std::vector<WeightedEdge> edges;
  for (std::size_t i = 0; i < features.size(); ++i) {
    for (std::size_t j = i + 1; j < features.size(); ++j) {
      edges.push_back({features[i], features[j],
                       conditional_mutual_information(
                           data, features[i], features[j], class_node,
                           vars)});
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const WeightedEdge& x, const WeightedEdge& y) {
              return x.weight > y.weight;
            });

  // Maximum-weight spanning tree (Kruskal).
  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  std::vector<std::vector<std::size_t>> tree(n);
  double total_weight = 0.0;
  for (const auto& e : edges) {
    const std::size_t ra = find(e.a);
    const std::size_t rb = find(e.b);
    if (ra == rb) continue;
    parent[ra] = rb;
    tree[e.a].push_back(e.b);
    tree[e.b].push_back(e.a);
    total_weight += e.weight;
  }

  // Orient the tree away from the first feature, then add the class as a
  // parent of every feature.
  StructureResult result;
  result.parents.assign(n, {});
  result.score = total_weight;
  std::vector<bool> visited(n, false);
  std::vector<std::size_t> stack{features.front()};
  visited[features.front()] = true;
  while (!stack.empty()) {
    const std::size_t v = stack.back();
    stack.pop_back();
    for (std::size_t nb : tree[v]) {
      if (visited[nb]) continue;
      visited[nb] = true;
      result.parents[nb].push_back(v);
      stack.push_back(nb);
    }
  }
  for (std::size_t f : features) {
    result.parents[f].push_back(class_node);
  }
  return result;
}

}  // namespace kertbn::bn
