#pragma once
/// \file learning.hpp
/// Parameter learning: maximum-likelihood / Bayesian (Dirichlet-smoothed)
/// fitting of tabular CPDs and OLS fitting of linear-Gaussian CPDs, plus a
/// whole-network driver that reports per-node learning times (the quantity
/// behind the decentralized-vs-centralized comparison of Figure 5).

#include <atomic>
#include <span>
#include <vector>

#include "bn/linear_gaussian_cpd.hpp"
#include "bn/network.hpp"
#include "bn/tabular_cpd.hpp"
#include "common/thread_pool.hpp"
#include "linalg/matrix.hpp"

namespace kertbn::bn {

struct ParameterLearnOptions {
  /// Dirichlet smoothing pseudo-count per CPT cell (0 = pure ML counts).
  double dirichlet_alpha = 1.0;
  /// Floor on fitted Gaussian standard deviations.
  double min_sigma = 1e-6;
  /// Ridge stabilizer for the OLS normal equations.
  double ridge = 1e-9;
  /// When true, refit nodes that already carry a CPD; when false (the
  /// KERT-BN case) knowledge-given CPDs are left untouched.
  bool refit_existing = false;
  /// Cooperative cancellation: when non-null and the pointee becomes true,
  /// learn_parameters stops fitting further nodes and returns early with
  /// ParameterLearnReport::cancelled set. Nodes already fitted keep their
  /// new CPDs; the caller owns restoring a consistent model (the
  /// ModelManager's last-known-good restore). A raw atomic pointer so
  /// this layer needs no dependency on the overload library.
  const std::atomic<bool>* cancel = nullptr;
};

/// Fits a CPT for data column \p child_col with parents \p parent_cols by
/// (smoothed) normalized counts. Cardinalities describe the child and each
/// parent in order.
TabularCpd fit_tabular_cpd(const Dataset& data, std::size_t child_col,
                           std::span<const std::size_t> parent_cols,
                           std::size_t child_card,
                           std::span<const std::size_t> parent_cards,
                           double dirichlet_alpha = 1.0);

/// Fits X_child ≈ N(b0 + w·parents, sigma²) by ordinary least squares.
LinearGaussianCpd fit_linear_gaussian_cpd(
    const Dataset& data, std::size_t child_col,
    std::span<const std::size_t> parent_cols, double min_sigma = 1e-6,
    double ridge = 1e-9);

/// Fits a CPT from pre-accumulated raw counts instead of a data pass.
/// \p counts is laid out exactly like fit_tabular_cpd's internal table
/// (config-major, child-state minor) and holds the *unsmoothed* counts;
/// \p dirichlet_alpha is added per cell here. Because counts are exact
/// integers (stored in doubles), a CPT built from summed per-segment count
/// partials is bit-identical to one recounted from the full window.
TabularCpd fit_tabular_cpd_from_counts(std::span<const double> counts,
                                       std::size_t child_card,
                                       std::span<const std::size_t> parent_cards,
                                       double dirichlet_alpha = 1.0);

/// Fits X_child ≈ N(b0 + w·parents, sigma²) from an augmented second-moment
/// (Gram) matrix instead of a data pass. \p gram is (cols+1)×(cols+1) over
/// the augmented row [1, x_0, ..., x_{cols-1}]: gram(0,0) = N,
/// gram(0, c+1) = Σ x_c, gram(i+1, j+1) = Σ x_i·x_j. The normal equations
/// are solved through la::solve_normal_equations — the same solver (and
/// ridge escalation) the full-recount path uses — so results agree with
/// fit_linear_gaussian_cpd to floating-point reassociation error.
LinearGaussianCpd fit_linear_gaussian_from_moments(
    const la::Matrix& gram, std::size_t rows, std::size_t child_col,
    std::span<const std::size_t> parent_cols, double min_sigma = 1e-6,
    double ridge = 1e-9);

/// Per-run learning report; per_node_seconds[v] is 0 for nodes not learned.
struct ParameterLearnReport {
  double total_seconds = 0.0;
  std::vector<double> per_node_seconds;
  std::vector<std::size_t> learned_nodes;
  /// True when ParameterLearnOptions::cancel fired mid-learn: the network
  /// is partially refit and must not be served.
  bool cancelled = false;

  /// max over learned nodes — the decentralized completion time of
  /// Section 3.4 (all per-node computations run concurrently).
  double max_node_seconds() const;
  /// sum over learned nodes — the centralized completion time.
  double sum_node_seconds() const;
};

/// Learns CPDs for every node of \p net lacking one (or all nodes when
/// opts.refit_existing). Dataset columns must be the network variables in
/// node-index order. Discrete nodes get smoothed-count CPTs; continuous
/// nodes get OLS linear-Gaussian CPDs.
///
/// When \p pool is non-null the per-node fits run concurrently on it (each
/// node's sufficient statistics are independent — the Figure 5
/// "decentralized" observation applied to a single multi-core host); fitted
/// CPDs are staged and installed serially afterwards, so the result is
/// bit-identical to the serial path. per_node_seconds then reports the
/// concurrent per-fit times while total_seconds reports elapsed wall clock.
ParameterLearnReport learn_parameters(BayesianNetwork& net,
                                      const Dataset& data,
                                      const ParameterLearnOptions& opts = {},
                                      ThreadPool* pool = nullptr);

/// Learns the single CPD of node \p v from \p data and installs it.
/// Returns the wall-clock seconds the fit took.
double learn_node_parameters(BayesianNetwork& net, std::size_t v,
                             const Dataset& data,
                             const ParameterLearnOptions& opts = {});

}  // namespace kertbn::bn
