#pragma once
/// \file learning.hpp
/// Parameter learning: maximum-likelihood / Bayesian (Dirichlet-smoothed)
/// fitting of tabular CPDs and OLS fitting of linear-Gaussian CPDs, plus a
/// whole-network driver that reports per-node learning times (the quantity
/// behind the decentralized-vs-centralized comparison of Figure 5).

#include <span>
#include <vector>

#include "bn/linear_gaussian_cpd.hpp"
#include "bn/network.hpp"
#include "bn/tabular_cpd.hpp"

namespace kertbn::bn {

struct ParameterLearnOptions {
  /// Dirichlet smoothing pseudo-count per CPT cell (0 = pure ML counts).
  double dirichlet_alpha = 1.0;
  /// Floor on fitted Gaussian standard deviations.
  double min_sigma = 1e-6;
  /// Ridge stabilizer for the OLS normal equations.
  double ridge = 1e-9;
  /// When true, refit nodes that already carry a CPD; when false (the
  /// KERT-BN case) knowledge-given CPDs are left untouched.
  bool refit_existing = false;
};

/// Fits a CPT for data column \p child_col with parents \p parent_cols by
/// (smoothed) normalized counts. Cardinalities describe the child and each
/// parent in order.
TabularCpd fit_tabular_cpd(const Dataset& data, std::size_t child_col,
                           std::span<const std::size_t> parent_cols,
                           std::size_t child_card,
                           std::span<const std::size_t> parent_cards,
                           double dirichlet_alpha = 1.0);

/// Fits X_child ≈ N(b0 + w·parents, sigma²) by ordinary least squares.
LinearGaussianCpd fit_linear_gaussian_cpd(
    const Dataset& data, std::size_t child_col,
    std::span<const std::size_t> parent_cols, double min_sigma = 1e-6,
    double ridge = 1e-9);

/// Per-run learning report; per_node_seconds[v] is 0 for nodes not learned.
struct ParameterLearnReport {
  double total_seconds = 0.0;
  std::vector<double> per_node_seconds;
  std::vector<std::size_t> learned_nodes;

  /// max over learned nodes — the decentralized completion time of
  /// Section 3.4 (all per-node computations run concurrently).
  double max_node_seconds() const;
  /// sum over learned nodes — the centralized completion time.
  double sum_node_seconds() const;
};

/// Learns CPDs for every node of \p net lacking one (or all nodes when
/// opts.refit_existing). Dataset columns must be the network variables in
/// node-index order. Discrete nodes get smoothed-count CPTs; continuous
/// nodes get OLS linear-Gaussian CPDs.
ParameterLearnReport learn_parameters(BayesianNetwork& net,
                                      const Dataset& data,
                                      const ParameterLearnOptions& opts = {});

/// Learns the single CPD of node \p v from \p data and installs it.
/// Returns the wall-clock seconds the fit took.
double learn_node_parameters(BayesianNetwork& net, std::size_t v,
                             const Dataset& data,
                             const ParameterLearnOptions& opts = {});

}  // namespace kertbn::bn
