#include "bn/deterministic_cpd.hpp"

#include <sstream>

#include "common/contract.hpp"
#include "common/stats.hpp"

namespace kertbn::bn {

DeterministicCpd::DeterministicCpd(DeterministicFn fn, double leak_sigma)
    : fn_(std::move(fn)), leak_sigma_(leak_sigma) {
  KERTBN_EXPECTS(static_cast<bool>(fn_.fn));
  KERTBN_EXPECTS(leak_sigma_ > 0.0);
}

double DeterministicCpd::evaluate(std::span<const double> parents) const {
  KERTBN_EXPECTS(parents.size() == fn_.arity);
  return fn_.fn(parents);
}

double DeterministicCpd::log_prob(double value,
                                  std::span<const double> parents) const {
  return gaussian_log_pdf(value, evaluate(parents), leak_sigma_);
}

double DeterministicCpd::sample(std::span<const double> parents,
                                Rng& rng) const {
  return rng.normal(evaluate(parents), leak_sigma_);
}

std::unique_ptr<Cpd> DeterministicCpd::clone() const {
  return std::make_unique<DeterministicCpd>(*this);
}

std::string DeterministicCpd::describe() const {
  std::ostringstream out;
  out << "Deterministic(f = " << fn_.expression
      << ", leak_sigma = " << leak_sigma_ << ")";
  return out.str();
}

}  // namespace kertbn::bn
