#include "bn/structure_learning.hpp"

#include <algorithm>
#include <limits>

#include "common/contract.hpp"
#include "obs/span.hpp"

namespace kertbn::bn {

graph::Dag StructureResult::to_dag(std::span<const Variable> vars) const {
  graph::Dag dag(parents.size());
  for (std::size_t v = 0; v < parents.size(); ++v) {
    if (v < vars.size()) dag.set_label(v, vars[v].name);
  }
  for (std::size_t v = 0; v < parents.size(); ++v) {
    for (std::size_t p : parents[v]) {
      const bool ok = dag.add_edge(p, v);
      KERTBN_ASSERT(ok);
    }
  }
  return dag;
}

StructureResult k2_search(const Dataset& data, std::span<const Variable> vars,
                          std::span<const std::size_t> order,
                          const FamilyScoreFn& score, const K2Options& opts) {
  const std::size_t n = vars.size();
  KERTBN_EXPECTS(order.size() == n);
  KERTBN_EXPECTS(data.cols() == n);

  StructureResult result;
  result.parents.assign(n, {});
  result.score = 0.0;

  for (std::size_t pos = 0; pos < n; ++pos) {
    const std::size_t child = order[pos];
    std::vector<std::size_t>& pa = result.parents[child];
    double best = score(data, child, pa);

    bool improved = true;
    while (improved && pa.size() < opts.max_parents) {
      improved = false;
      std::size_t best_candidate = n;
      double best_gain_score = best;
      // Candidates are the ordering predecessors not already parents.
      for (std::size_t prev = 0; prev < pos; ++prev) {
        const std::size_t cand = order[prev];
        if (std::find(pa.begin(), pa.end(), cand) != pa.end()) continue;
        pa.push_back(cand);
        const double s = score(data, child, pa);
        pa.pop_back();
        if (s > best_gain_score) {
          best_gain_score = s;
          best_candidate = cand;
        }
      }
      if (best_candidate != n) {
        pa.push_back(best_candidate);
        best = best_gain_score;
        improved = true;
      }
    }
    result.score += best;
  }
  return result;
}

StructureResult k2_search(const Dataset& data, std::span<const Variable> vars,
                          const FamilyScoreFn& score, const K2Options& opts) {
  std::vector<std::size_t> order(vars.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  return k2_search(data, vars, order, score, opts);
}

StructureResult k2_random_restarts(const Dataset& data,
                                   std::span<const Variable> vars,
                                   std::size_t restarts, Rng& rng,
                                   const FamilyScoreFn& score,
                                   const K2Options& opts, ThreadPool* pool) {
  KERTBN_EXPECTS(restarts >= 1);
  if (pool == nullptr || restarts < 2) {
    StructureResult best;
    best.score = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < restarts; ++i) {
      const auto order = rng.permutation(vars.size());
      KERTBN_SPAN_VAR(span, "k2.restart");
      span.tag("restart", static_cast<std::uint64_t>(i));
      StructureResult r = k2_search(data, vars, order, score, opts);
      span.tag("score", r.score);
      if (r.score > best.score) best = std::move(r);
    }
    return best;
  }

  // Orderings are drawn serially (same rng stream as the serial loop),
  // restarts score concurrently, and the strictly-greater selection in
  // restart order reproduces the serial winner exactly.
  std::vector<std::vector<std::size_t>> orders;
  orders.reserve(restarts);
  for (std::size_t i = 0; i < restarts; ++i) {
    orders.push_back(rng.permutation(vars.size()));
  }
  std::vector<StructureResult> results(restarts);
  pool->parallel_for(restarts, [&](std::size_t i) {
    // Parented under the submitting span via the pool's context capture.
    KERTBN_SPAN_VAR(span, "k2.restart");
    span.tag("restart", static_cast<std::uint64_t>(i));
    results[i] = k2_search(data, vars, orders[i], score, opts);
    span.tag("score", results[i].score);
  });
  std::size_t winner = 0;
  for (std::size_t i = 1; i < restarts; ++i) {
    if (results[i].score > results[winner].score) winner = i;
  }
  return std::move(results[winner]);
}

namespace {

/// Checks acyclicity of a parent-set assignment via Kahn's algorithm.
bool acyclic(const std::vector<std::vector<std::size_t>>& parents) {
  const std::size_t n = parents.size();
  std::vector<std::size_t> indeg(n, 0);
  std::vector<std::vector<std::size_t>> children(n);
  for (std::size_t v = 0; v < n; ++v) {
    indeg[v] = parents[v].size();
    for (std::size_t p : parents[v]) children[p].push_back(v);
  }
  std::vector<std::size_t> stack;
  for (std::size_t v = 0; v < n; ++v) {
    if (indeg[v] == 0) stack.push_back(v);
  }
  std::size_t seen = 0;
  while (!stack.empty()) {
    const std::size_t v = stack.back();
    stack.pop_back();
    ++seen;
    for (std::size_t c : children[v]) {
      if (--indeg[c] == 0) stack.push_back(c);
    }
  }
  return seen == n;
}

}  // namespace

StructureResult exhaustive_search(const Dataset& data,
                                  std::span<const Variable> vars,
                                  const FamilyScoreFn& score) {
  const std::size_t n = vars.size();
  KERTBN_EXPECTS(n >= 1 && n <= 5);
  // Enumerate each node's parent set as a bitmask not containing itself,
  // then keep acyclic combinations. Family scores are cached per
  // (child, mask) so the enumeration cost is dominated by the cycle check.
  const std::size_t masks = std::size_t{1} << n;
  std::vector<std::vector<double>> family(n,
                                          std::vector<double>(masks, 0.0));
  std::vector<std::size_t> buf;
  for (std::size_t child = 0; child < n; ++child) {
    for (std::size_t mask = 0; mask < masks; ++mask) {
      if (mask & (std::size_t{1} << child)) continue;
      buf.clear();
      for (std::size_t p = 0; p < n; ++p) {
        if (mask & (std::size_t{1} << p)) buf.push_back(p);
      }
      family[child][mask] = score(data, child, buf);
    }
  }

  StructureResult best;
  best.score = -std::numeric_limits<double>::infinity();
  std::vector<std::size_t> assignment(n, 0);
  std::vector<std::vector<std::size_t>> parents(n);

  // Odometer over per-node parent masks.
  for (;;) {
    bool valid = true;
    for (std::size_t v = 0; v < n; ++v) {
      if (assignment[v] & (std::size_t{1} << v)) {
        valid = false;
        break;
      }
    }
    if (valid) {
      double total = 0.0;
      for (std::size_t v = 0; v < n; ++v) total += family[v][assignment[v]];
      if (total > best.score) {
        for (std::size_t v = 0; v < n; ++v) {
          parents[v].clear();
          for (std::size_t p = 0; p < n; ++p) {
            if (assignment[v] & (std::size_t{1} << p)) parents[v].push_back(p);
          }
        }
        if (acyclic(parents)) {
          best.score = total;
          best.parents = parents;
        }
      }
    }
    // Advance odometer.
    std::size_t v = 0;
    while (v < n) {
      if (++assignment[v] < masks) break;
      assignment[v] = 0;
      ++v;
    }
    if (v == n) break;
  }
  KERTBN_ENSURES(!best.parents.empty() || n == 0);
  return best;
}

}  // namespace kertbn::bn
