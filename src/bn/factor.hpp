#pragma once
/// \file factor.hpp
/// Discrete factors (potentials) over sets of variables, the workhorse of
/// variable-elimination inference. Scope variables are global node indices;
/// values are stored row-major in scope order (first variable most
/// significant).

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace kertbn::bn {

class Factor {
 public:
  Factor() = default;

  /// \p scope: distinct variable ids; \p cards: matching cardinalities;
  /// \p values: prod(cards) entries (non-negative).
  Factor(std::vector<std::size_t> scope, std::vector<std::size_t> cards,
         std::vector<double> values);

  /// Factor of 1 over the empty scope.
  static Factor unit();

  const std::vector<std::size_t>& scope() const { return scope_; }
  const std::vector<std::size_t>& cardinalities() const { return cards_; }
  const std::vector<double>& values() const { return values_; }
  std::size_t size() const { return values_.size(); }
  bool has_variable(std::size_t var) const;

  /// Value at a full assignment to the scope (states in scope order).
  double at(std::span<const std::size_t> states) const;

  /// Pointwise product; scopes are merged (union).
  Factor product(const Factor& other) const;

  /// Sums out \p var; contract-fails if absent.
  Factor marginalize(std::size_t var) const;

  /// Maxes out \p var (max-product elimination); contract-fails if absent.
  Factor max_marginalize(std::size_t var) const;

  /// For a single-variable factor: the state with the largest value.
  std::size_t argmax_state() const;

  /// Restricts \p var to \p state and drops it from the scope.
  Factor reduce(std::size_t var, std::size_t state) const;

  /// Scales so values sum to 1 (no-op on an all-zero factor).
  Factor normalized() const;

  /// Sum of all entries.
  double total() const;

  std::string to_string() const;

 private:
  std::size_t linear_index(std::span<const std::size_t> states) const;

  enum class ReduceOp { kSum, kMax };
  /// Shared reduction core for marginalize/max_marginalize: drops \p var,
  /// combining its states with the given operation. The flat kernels in
  /// factor_kernels.hpp replace exactly this code path on the hot path.
  Factor reduce_out(std::size_t var, ReduceOp op) const;

  std::vector<std::size_t> scope_;
  std::vector<std::size_t> cards_;
  std::vector<double> values_;
};

}  // namespace kertbn::bn
