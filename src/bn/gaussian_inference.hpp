#pragma once
/// \file gaussian_inference.hpp
/// Exact inference for pure linear-Gaussian networks: assemble the joint
/// multivariate Gaussian implied by the CPDs, then condition on evidence via
/// the Schur complement. Used for continuous KERT-BN/NRT-BN queries when the
/// response-time CPD is linear (no max), and as a ground-truth oracle for
/// the sampling engine in tests.

#include <map>
#include <optional>
#include <vector>

#include "bn/network.hpp"
#include "linalg/decompose.hpp"
#include "linalg/matrix.hpp"

namespace kertbn::bn {

/// Evidence: node index -> observed real value.
using ContinuousEvidence = std::map<std::size_t, double>;

/// A multivariate Gaussian over a subset of network nodes.
struct GaussianDistribution {
  std::vector<std::size_t> nodes;  ///< Network node ids, in order.
  la::Vector mean;
  la::Matrix covariance;

  /// Marginal mean of node \p v (must be present in nodes).
  double mean_of(std::size_t v) const;
  /// Marginal variance of node \p v.
  double variance_of(std::size_t v) const;
  /// P(node > threshold) under the marginal Gaussian of \p v.
  double exceedance(std::size_t v, double threshold) const;
};

/// Builds the joint N(mu, Sigma) implied by a complete network whose CPDs
/// are all LinearGaussian (DeterministicCpds with linear expressions are not
/// auto-detected; convert them upstream). Contract-fails otherwise.
GaussianDistribution joint_gaussian(const BayesianNetwork& net);

/// Conditions \p joint on the evidence, returning the posterior Gaussian
/// over the remaining nodes. Evidence nodes must exist in the joint.
GaussianDistribution condition(const GaussianDistribution& joint,
                               const ContinuousEvidence& evidence);

/// Convenience: posterior mean/variance of one query node given evidence.
struct ScalarPosterior {
  double mean = 0.0;
  double variance = 0.0;
};
ScalarPosterior gaussian_posterior(const BayesianNetwork& net,
                                   std::size_t query,
                                   const ContinuousEvidence& evidence);

}  // namespace kertbn::bn
