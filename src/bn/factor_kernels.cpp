#include "bn/factor_kernels.hpp"

#include <algorithm>

#include "common/contract.hpp"

namespace kertbn::bn {
namespace {

std::size_t find_in(std::span<const std::size_t> scope, std::size_t var) {
  for (std::size_t i = 0; i < scope.size(); ++i) {
    if (scope[i] == var) return i;
  }
  return static_cast<std::size_t>(-1);
}

/// Row-major stride of dimension \p dim in a factor with \p cards.
std::size_t stride_of(std::span<const std::size_t> cards, std::size_t dim) {
  std::size_t s = 1;
  for (std::size_t i = cards.size(); i-- > dim + 1;) s *= cards[i];
  return s;
}

}  // namespace

double FlatFactor::total() const {
  double t = 0.0;
  for (double v : values) t += v;
  return t;
}

ProductPlan make_product_plan(std::span<const std::size_t> scope_a,
                              std::span<const std::size_t> cards_a,
                              std::span<const std::size_t> scope_b,
                              std::span<const std::size_t> cards_b) {
  KERTBN_EXPECTS(scope_a.size() == cards_a.size());
  KERTBN_EXPECTS(scope_b.size() == cards_b.size());
  ProductPlan plan;
  plan.out_scope.assign(scope_a.begin(), scope_a.end());
  plan.out_cards.assign(cards_a.begin(), cards_a.end());
  for (std::size_t i = 0; i < scope_b.size(); ++i) {
    if (find_in(scope_a, scope_b[i]) == static_cast<std::size_t>(-1)) {
      plan.out_scope.push_back(scope_b[i]);
      plan.out_cards.push_back(cards_b[i]);
    }
  }
  plan.out_size = 1;
  for (std::size_t c : plan.out_cards) plan.out_size *= c;

  const std::size_t nd = plan.out_scope.size();
  plan.stride_a.assign(nd, 0);
  plan.stride_b.assign(nd, 0);
  for (std::size_t i = 0; i < nd; ++i) {
    const std::size_t pa = find_in(scope_a, plan.out_scope[i]);
    if (pa != static_cast<std::size_t>(-1)) {
      plan.stride_a[i] = stride_of(cards_a, pa);
    }
    const std::size_t pb = find_in(scope_b, plan.out_scope[i]);
    if (pb != static_cast<std::size_t>(-1)) {
      plan.stride_b[i] = stride_of(cards_b, pb);
    }
  }
  return plan;
}

void product_into(const ProductPlan& plan, std::span<const double> a,
                  std::span<const double> b,
                  std::vector<std::size_t>& odometer,
                  std::vector<double>& out) {
  out.resize(plan.out_size);
  const std::size_t nd = plan.out_cards.size();
  if (nd == 0) {
    out[0] = a[0] * b[0];
    return;
  }
  const std::size_t last = nd - 1;
  const std::size_t last_card = plan.out_cards[last];
  const std::size_t sa_last = plan.stride_a[last];
  const std::size_t sb_last = plan.stride_b[last];

  odometer.assign(nd, 0);
  std::size_t off_a = 0;
  std::size_t off_b = 0;
  std::size_t o = 0;
  for (;;) {
    // Contiguous inner run over the least-significant merged variable.
    std::size_t ia = off_a;
    std::size_t ib = off_b;
    for (std::size_t j = 0; j < last_card; ++j, ia += sa_last, ib += sb_last) {
      out[o++] = a[ia] * b[ib];
    }
    // Advance the outer mixed-radix counter (dimension last-1 fastest).
    std::size_t d = last;
    bool done = true;
    while (d-- > 0) {
      ++odometer[d];
      off_a += plan.stride_a[d];
      off_b += plan.stride_b[d];
      if (odometer[d] < plan.out_cards[d]) {
        done = false;
        break;
      }
      odometer[d] = 0;
      off_a -= plan.stride_a[d] * plan.out_cards[d];
      off_b -= plan.stride_b[d] * plan.out_cards[d];
    }
    if (done) break;
  }
  KERTBN_ASSERT(o == plan.out_size);
}

ReducePlan make_reduce_plan(std::span<const std::size_t> scope,
                            std::span<const std::size_t> cards,
                            std::span<const std::size_t> target) {
  KERTBN_EXPECTS(scope.size() == cards.size());
  ReducePlan plan;
  std::vector<std::size_t> cur_scope(scope.begin(), scope.end());
  std::vector<std::size_t> cur_cards(cards.begin(), cards.end());
  auto size_of = [](const std::vector<std::size_t>& cs) {
    std::size_t s = 1;
    for (std::size_t c : cs) s *= c;
    return s;
  };
  // Eliminate the first scope variable outside the target, repeatedly —
  // the same fixed point the legacy marginalize_to loop reaches, one
  // allocation-free step per variable.
  for (;;) {
    std::size_t drop = static_cast<std::size_t>(-1);
    for (std::size_t i = 0; i < cur_scope.size(); ++i) {
      if (find_in(target, cur_scope[i]) == static_cast<std::size_t>(-1)) {
        drop = i;
        break;
      }
    }
    if (drop == static_cast<std::size_t>(-1)) break;
    ReducePlan::Step step;
    step.stride = stride_of(cur_cards, drop);
    step.card = cur_cards[drop];
    step.in_size = size_of(cur_cards);
    step.out_size = step.in_size / step.card;
    plan.steps.push_back(step);
    cur_scope.erase(cur_scope.begin() + static_cast<std::ptrdiff_t>(drop));
    cur_cards.erase(cur_cards.begin() + static_cast<std::ptrdiff_t>(drop));
  }
  plan.out_scope = std::move(cur_scope);
  plan.out_cards = std::move(cur_cards);
  plan.out_size = size_of(plan.out_cards);
  return plan;
}

namespace {

/// One single-variable summation pass; loop structure and summation order
/// match Factor::marginalize exactly.
void reduce_step(const ReducePlan::Step& s, const double* in, double* out) {
  const std::size_t block = s.stride * s.card;
  std::size_t o = 0;
  for (std::size_t base = 0; base < s.in_size; base += block) {
    for (std::size_t inner = 0; inner < s.stride; ++inner, ++o) {
      double acc = 0.0;
      for (std::size_t k = 0; k < s.card; ++k) {
        acc += in[base + k * s.stride + inner];
      }
      out[o] = acc;
    }
  }
}

}  // namespace

void reduce_into(const ReducePlan& plan, std::span<const double> in,
                 std::vector<double>& scratch, std::vector<double>& out) {
  if (plan.steps.empty()) {
    out.assign(in.begin(), in.end());
    return;
  }
  if (plan.steps.size() == 1) {
    out.resize(plan.steps[0].out_size);
    reduce_step(plan.steps[0], in.data(), out.data());
    return;
  }
  // Ping-pong between the two halves of one scratch buffer; sizes shrink
  // monotonically, so the first step's output bounds everything.
  const std::size_t half = plan.steps[0].out_size;
  scratch.resize(half * 2);
  double* bufs[2] = {scratch.data(), scratch.data() + half};
  reduce_step(plan.steps[0], in.data(), bufs[0]);
  std::size_t cur = 0;
  for (std::size_t i = 1; i + 1 < plan.steps.size(); ++i) {
    reduce_step(plan.steps[i], bufs[cur], bufs[1 - cur]);
    cur = 1 - cur;
  }
  out.resize(plan.steps.back().out_size);
  reduce_step(plan.steps.back(), bufs[cur], out.data());
}

void apply_evidence(FlatFactor& f, std::size_t var, std::size_t state) {
  const std::size_t dim = find_in(f.scope, var);
  KERTBN_EXPECTS(dim != static_cast<std::size_t>(-1));
  KERTBN_EXPECTS(state < f.cards[dim]);
  const std::size_t stride = stride_of(f.cards, dim);
  const std::size_t card = f.cards[dim];
  const std::size_t block = stride * card;
  for (std::size_t base = 0; base < f.values.size(); base += block) {
    for (std::size_t k = 0; k < card; ++k) {
      if (k == state) continue;
      const std::size_t at = base + k * stride;
      std::fill(f.values.begin() + static_cast<std::ptrdiff_t>(at),
                f.values.begin() + static_cast<std::ptrdiff_t>(at + stride),
                0.0);
    }
  }
}

const ProductPlan& FactorWorkspace::product_plan(const FlatFactor& a,
                                                 const FlatFactor& b) {
  Key key{a.scope, b.scope};
  auto it = product_plans_.find(key);
  if (it != product_plans_.end()) {
    ++plan_hits_;
    return it->second;
  }
  ++plan_misses_;
  return product_plans_
      .emplace(std::move(key),
               make_product_plan(a.scope, a.cards, b.scope, b.cards))
      .first->second;
}

const ReducePlan& FactorWorkspace::reduce_plan(
    const FlatFactor& f, std::span<const std::size_t> target) {
  Key key{f.scope, {target.begin(), target.end()}};
  auto it = reduce_plans_.find(key);
  if (it != reduce_plans_.end()) {
    ++plan_hits_;
    return it->second;
  }
  ++plan_misses_;
  return reduce_plans_
      .emplace(std::move(key), make_reduce_plan(f.scope, f.cards, target))
      .first->second;
}

void FactorWorkspace::product(const FlatFactor& a, const FlatFactor& b,
                              FlatFactor& out) {
  const ProductPlan& plan = product_plan(a, b);
  out.scope = plan.out_scope;
  out.cards = plan.out_cards;
  product_into(plan, a.values, b.values, odometer_, out.values);
}

void FactorWorkspace::product_chain(const FlatFactor& base,
                                    std::span<const FlatFactor* const> factors,
                                    FlatFactor& out) {
  if (factors.empty()) {
    out.scope = base.scope;
    out.cards = base.cards;
    out.values = base.values;
    return;
  }
  const FlatFactor* cur = &base;
  for (std::size_t i = 0; i < factors.size(); ++i) {
    FlatFactor& dst = (i + 1 == factors.size()) ? out : chain_tmp_[i % 2];
    product(*cur, *factors[i], dst);
    cur = &dst;
  }
}

void FactorWorkspace::reduce(const FlatFactor& f,
                             std::span<const std::size_t> target,
                             FlatFactor& out) {
  const ReducePlan& plan = reduce_plan(f, target);
  out.scope = plan.out_scope;
  out.cards = plan.out_cards;
  reduce_into(plan, f.values, scratch_, out.values);
}

}  // namespace kertbn::bn
