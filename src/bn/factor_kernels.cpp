#include "bn/factor_kernels.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "bn/factor_simd.hpp"
#include "common/contract.hpp"
#include "common/cpu_features.hpp"

namespace kertbn::bn {
namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/// Below these widths a dispatched kernel call is pure overhead; the
/// inline scalar loops used instead perform the identical operation order,
/// so the thresholds never change results on the scalar tier and on SIMD
/// tiers only trade vector width against call overhead.
constexpr std::size_t kMinColsWidth = 4;
constexpr std::size_t kMinHsumWidth = 16;

std::size_t find_in(std::span<const std::size_t> scope, std::size_t var) {
  for (std::size_t i = 0; i < scope.size(); ++i) {
    if (scope[i] == var) return i;
  }
  return kNone;
}

/// Row-major stride of dimension \p dim in a factor with \p cards.
std::size_t stride_of(std::span<const std::size_t> cards, std::size_t dim) {
  std::size_t s = 1;
  for (std::size_t i = cards.size(); i-- > dim + 1;) s *= cards[i];
  return s;
}

std::size_t product_of(std::span<const std::size_t> cards) {
  std::size_t n = 1;
  for (std::size_t c : cards) n *= c;
  return n;
}

/// Finds the longest trailing run of dimensions over which every stride
/// row is uniformly constant (0 throughout) or exactly contiguous (the
/// row's offset advances by 1 per element across the whole run) — the
/// restructured odometer walk that makes the innermost loop unit-stride
/// and therefore gather-free. Card-1 dimensions never advance and are
/// included unconditionally. On success fills \p steps with each row's
/// per-element step (0 = broadcast, 1 = stream); if even the innermost
/// advancing dimension disqualifies some row, falls back to a
/// one-dimension run with the rows' general strides in \p steps.
struct TrailingRun {
  std::size_t len = 1;
  std::size_t dims = 0;
  bool vector_run = false;
};

TrailingRun find_trailing_run(std::span<const std::size_t> cards,
                              std::span<const std::size_t* const> rows,
                              std::vector<std::size_t>& steps) {
  TrailingRun r;
  const std::size_t nd = cards.size();
  steps.assign(rows.size(), 0);
  if (nd == 0) return r;

  enum : std::uint8_t { kUnset = 0, kConst = 1, kContig = 2 };
  std::vector<std::uint8_t> modes(rows.size(), kUnset);
  std::vector<std::uint8_t> trial(rows.size());
  r.vector_run = true;
  while (r.dims < nd) {
    const std::size_t d = nd - 1 - r.dims;
    const std::size_t c = cards[d];
    if (c > 1) {
      trial = modes;
      bool ok = true;
      for (std::size_t k = 0; k < rows.size() && ok; ++k) {
        const std::size_t s = rows[k][d];
        switch (trial[k]) {
          case kUnset:
            if (s == 0) {
              trial[k] = kConst;
            } else if (s == r.len) {
              trial[k] = kContig;
            } else {
              ok = false;
            }
            break;
          case kConst:
            ok = (s == 0);
            break;
          default:  // kContig
            ok = (s == r.len);
            break;
        }
      }
      if (!ok) break;
      modes = trial;
      r.len *= c;
    }
    r.dims += 1;
  }

  if (r.dims == 0) {
    r.vector_run = false;
    r.dims = 1;
    r.len = cards[nd - 1];
    for (std::size_t k = 0; k < rows.size(); ++k) steps[k] = rows[k][nd - 1];
    return r;
  }
  for (std::size_t k = 0; k < rows.size(); ++k) {
    steps[k] = (modes[k] == kContig) ? 1 : 0;
  }
  return r;
}

/// Advances the outer odometer (dims [0, outer_nd), last fastest),
/// carrying every offset along its stride row. Returns false when the
/// walk completes.
bool advance_outer(std::span<const std::size_t> cards, std::size_t outer_nd,
                   std::vector<std::size_t>& odometer,
                   std::span<const std::size_t* const> rows,
                   std::size_t* offs) {
  std::size_t d = outer_nd;
  while (d-- > 0) {
    for (std::size_t k = 0; k < rows.size(); ++k) offs[k] += rows[k][d];
    if (++odometer[d] < cards[d]) return true;
    odometer[d] = 0;
    for (std::size_t k = 0; k < rows.size(); ++k) {
      offs[k] -= rows[k][d] * cards[d];
    }
  }
  return false;
}

/// Merged product scope: fold operand scopes left to right, each operand
/// appending its new variables — the exact scope (and value layout) the
/// pairwise Factor::product chain yields.
void merge_scopes(std::span<const FlatFactor* const> ops,
                  std::vector<std::size_t>& scope,
                  std::vector<std::size_t>& cards) {
  scope.clear();
  cards.clear();
  for (const FlatFactor* op : ops) {
    KERTBN_EXPECTS(op->scope.size() == op->cards.size());
    for (std::size_t i = 0; i < op->scope.size(); ++i) {
      if (find_in(scope, op->scope[i]) == kNone) {
        scope.push_back(op->scope[i]);
        cards.push_back(op->cards[i]);
      }
    }
  }
}

void fill_stride_row(std::span<const std::size_t> out_scope,
                     const FlatFactor& op, std::size_t* row) {
  for (std::size_t d = 0; d < out_scope.size(); ++d) {
    const std::size_t idx = find_in(op.scope, out_scope[d]);
    row[d] = (idx == kNone) ? 0 : stride_of(op.cards, idx);
  }
}

/// Stack-or-heap operand state for the multi-operand walks: per-operand
/// offsets, stride-row pointers and inner-run descriptors. Messages have a
/// handful of operands, so the stack arrays are the steady state.
struct OperandState {
  static constexpr std::size_t kStack = 16;
  std::array<std::size_t, kStack + 1> offs_stack;
  std::array<const std::size_t*, kStack + 1> rows_stack;
  std::array<simd_kernels::ChainOp, kStack> cops_stack;
  std::vector<std::size_t> offs_heap;
  std::vector<const std::size_t*> rows_heap;
  std::vector<simd_kernels::ChainOp> cops_heap;
  std::size_t* offs = nullptr;
  const std::size_t** rows = nullptr;
  simd_kernels::ChainOp* cops = nullptr;

  /// \p rows_needed may exceed the chain-op count by one (the output row
  /// of the fused walk).
  OperandState(std::size_t nops, std::size_t rows_needed,
               const std::size_t* strides, std::size_t nd) {
    if (rows_needed > kStack + 1 || nops > kStack) {
      offs_heap.assign(rows_needed, 0);
      rows_heap.resize(rows_needed);
      cops_heap.resize(nops);
      offs = offs_heap.data();
      rows = rows_heap.data();
      cops = cops_heap.data();
    } else {
      offs = offs_stack.data();
      rows = rows_stack.data();
      cops = cops_stack.data();
    }
    for (std::size_t k = 0; k < rows_needed; ++k) {
      offs[k] = 0;
      rows[k] = strides + k * nd;
    }
  }
};

}  // namespace

double FlatFactor::total() const {
  double t = 0.0;
  for (double v : values) t += v;
  return t;
}

ProductPlan make_product_plan(std::span<const std::size_t> scope_a,
                              std::span<const std::size_t> cards_a,
                              std::span<const std::size_t> scope_b,
                              std::span<const std::size_t> cards_b) {
  KERTBN_EXPECTS(scope_a.size() == cards_a.size());
  KERTBN_EXPECTS(scope_b.size() == cards_b.size());
  ProductPlan plan;
  plan.out_scope.assign(scope_a.begin(), scope_a.end());
  plan.out_cards.assign(cards_a.begin(), cards_a.end());
  for (std::size_t i = 0; i < scope_b.size(); ++i) {
    if (find_in(scope_a, scope_b[i]) == kNone) {
      plan.out_scope.push_back(scope_b[i]);
      plan.out_cards.push_back(cards_b[i]);
    }
  }
  plan.out_size = product_of(plan.out_cards);

  const std::size_t nd = plan.out_scope.size();
  plan.stride_a.assign(nd, 0);
  plan.stride_b.assign(nd, 0);
  for (std::size_t i = 0; i < nd; ++i) {
    const std::size_t pa = find_in(scope_a, plan.out_scope[i]);
    if (pa != kNone) plan.stride_a[i] = stride_of(cards_a, pa);
    const std::size_t pb = find_in(scope_b, plan.out_scope[i]);
    if (pb != kNone) plan.stride_b[i] = stride_of(cards_b, pb);
  }

  const std::size_t* rows[2] = {plan.stride_a.data(), plan.stride_b.data()};
  std::vector<std::size_t> steps;
  const TrailingRun run = find_trailing_run(plan.out_cards, rows, steps);
  plan.run_len = run.len;
  plan.run_dims = run.dims;
  plan.vector_run = run.vector_run;
  if (nd > 0) {
    plan.run_step_a = steps[0];
    plan.run_step_b = steps[1];
  }
  return plan;
}

void product_into(const ProductPlan& plan, std::span<const double> a,
                  std::span<const double> b,
                  std::vector<std::size_t>& odometer,
                  std::vector<double>& out) {
  out.resize(plan.out_size);
  const std::size_t nd = plan.out_cards.size();
  if (nd == 0) {
    out[0] = a[0] * b[0];
    return;
  }
  const std::size_t outer_nd = nd - plan.run_dims;
  odometer.assign(outer_nd, 0);
  const std::size_t* rows[2] = {plan.stride_a.data(), plan.stride_b.data()};
  std::size_t offs[2] = {0, 0};
  const simd_kernels::KernelOps& kops = simd_kernels::active_ops();
  std::size_t o = 0;
  do {
    if (plan.vector_run) {
      const simd_kernels::ChainOp cops[2] = {
          {a.data() + offs[0], plan.run_step_a},
          {b.data() + offs[1], plan.run_step_b}};
      kops.chain_mul(out.data() + o, cops, 2, plan.run_len);
      o += plan.run_len;
    } else {
      const double* pa = a.data() + offs[0];
      const double* pb = b.data() + offs[1];
      for (std::size_t i = 0; i < plan.run_len; ++i) {
        out[o++] = pa[i * plan.run_step_a] * pb[i * plan.run_step_b];
      }
    }
  } while (advance_outer(plan.out_cards, outer_nd, odometer, rows, offs));
  KERTBN_ASSERT(o == plan.out_size);
}

ReducePlan make_reduce_plan(std::span<const std::size_t> scope,
                            std::span<const std::size_t> cards,
                            std::span<const std::size_t> target) {
  KERTBN_EXPECTS(scope.size() == cards.size());
  ReducePlan plan;
  std::vector<std::size_t> cur_scope(scope.begin(), scope.end());
  std::vector<std::size_t> cur_cards(cards.begin(), cards.end());
  // Eliminate the first scope variable outside the target, repeatedly —
  // the same fixed point the legacy marginalize_to loop reaches, one
  // allocation-free step per variable.
  for (;;) {
    std::size_t drop = kNone;
    for (std::size_t i = 0; i < cur_scope.size(); ++i) {
      if (find_in(target, cur_scope[i]) == kNone) {
        drop = i;
        break;
      }
    }
    if (drop == kNone) break;
    ReducePlan::Step step;
    step.stride = stride_of(cur_cards, drop);
    step.card = cur_cards[drop];
    step.in_size = product_of(cur_cards);
    step.out_size = step.in_size / step.card;
    plan.steps.push_back(step);
    cur_scope.erase(cur_scope.begin() + static_cast<std::ptrdiff_t>(drop));
    cur_cards.erase(cur_cards.begin() + static_cast<std::ptrdiff_t>(drop));
  }
  plan.out_scope = std::move(cur_scope);
  plan.out_cards = std::move(cur_cards);
  plan.out_size = product_of(plan.out_cards);
  return plan;
}

namespace {

/// One single-variable summation pass. Every branch accumulates k
/// ascending per output element in output order — the Factor::marginalize
/// contract. stride > 1 vectorizes ACROSS output elements (column sums:
/// per-element order unchanged, bit-exact on every tier); the wide
/// stride == 1 branch is a horizontal sum WITHIN an element, which SIMD
/// tiers may re-associate (tolerance-bounded).
void reduce_step(const ReducePlan::Step& s, const double* in, double* out) {
  const std::size_t block = s.stride * s.card;
  // The scalar kernels perform these exact loops; skipping the per-block
  // indirect call on the scalar tier changes nothing but the call count
  // (blocks here are a handful of elements, so the calls are measurable).
  const bool vec = simd::active_tier() != simd::Tier::kScalar;
  if (s.stride == 1) {
    if (vec && s.card >= kMinHsumWidth) {
      const simd_kernels::KernelOps& kops = simd_kernels::active_ops();
      std::size_t o = 0;
      for (std::size_t base = 0; base < s.in_size; base += s.card) {
        out[o++] = kops.hsum(in + base, s.card);
      }
    } else {
      std::size_t o = 0;
      for (std::size_t base = 0; base < s.in_size; base += s.card) {
        double acc = 0.0;
        for (std::size_t k = 0; k < s.card; ++k) acc += in[base + k];
        out[o++] = acc;
      }
    }
    return;
  }
  if (vec && s.stride >= kMinColsWidth) {
    const simd_kernels::KernelOps& kops = simd_kernels::active_ops();
    std::size_t o = 0;
    for (std::size_t base = 0; base < s.in_size; base += block) {
      kops.reduce_cols(out + o, in + base, s.stride, s.card);
      o += s.stride;
    }
    return;
  }
  std::size_t o = 0;
  for (std::size_t base = 0; base < s.in_size; base += block) {
    for (std::size_t inner = 0; inner < s.stride; ++inner, ++o) {
      double acc = 0.0;
      for (std::size_t k = 0; k < s.card; ++k) {
        acc += in[base + k * s.stride + inner];
      }
      out[o] = acc;
    }
  }
}

}  // namespace

void reduce_into(const ReducePlan& plan, std::span<const double> in,
                 std::vector<double>& scratch, std::vector<double>& out) {
  if (plan.steps.empty()) {
    out.assign(in.begin(), in.end());
    return;
  }
  if (plan.steps.size() == 1) {
    out.resize(plan.steps[0].out_size);
    reduce_step(plan.steps[0], in.data(), out.data());
    return;
  }
  // Ping-pong between the two halves of one scratch buffer; sizes shrink
  // monotonically, so the first step's output bounds everything.
  const std::size_t half = plan.steps[0].out_size;
  scratch.resize(half * 2);
  double* bufs[2] = {scratch.data(), scratch.data() + half};
  reduce_step(plan.steps[0], in.data(), bufs[0]);
  std::size_t cur = 0;
  for (std::size_t i = 1; i + 1 < plan.steps.size(); ++i) {
    reduce_step(plan.steps[i], bufs[cur], bufs[1 - cur]);
    cur = 1 - cur;
  }
  out.resize(plan.steps.back().out_size);
  reduce_step(plan.steps.back(), bufs[cur], out.data());
}

ChainPlan make_chain_plan(std::span<const FlatFactor* const> ops) {
  KERTBN_EXPECTS(!ops.empty());
  ChainPlan plan;
  plan.nops = ops.size();
  merge_scopes(ops, plan.out_scope, plan.out_cards);
  plan.out_size = product_of(plan.out_cards);
  const std::size_t nd = plan.out_scope.size();
  plan.strides.assign(plan.nops * nd, 0);
  std::vector<const std::size_t*> rows(plan.nops);
  for (std::size_t k = 0; k < plan.nops; ++k) {
    fill_stride_row(plan.out_scope, *ops[k], plan.strides.data() + k * nd);
    rows[k] = plan.strides.data() + k * nd;
  }
  const TrailingRun run =
      find_trailing_run(plan.out_cards, rows, plan.run_steps);
  plan.run_len = run.len;
  plan.run_dims = run.dims;
  plan.vector_run = run.vector_run;
  return plan;
}

void chain_product_into(const ChainPlan& plan,
                        std::span<const FlatFactor* const> ops,
                        std::vector<std::size_t>& odometer,
                        std::vector<double>& out) {
  KERTBN_EXPECTS(ops.size() == plan.nops);
  out.resize(plan.out_size);
  const std::size_t nops = plan.nops;
  const std::size_t nd = plan.out_cards.size();
  if (nd == 0) {
    double acc = ops[0]->values[0];
    for (std::size_t k = 1; k < nops; ++k) acc *= ops[k]->values[0];
    out[0] = acc;
    return;
  }
  OperandState st(nops, nops, plan.strides.data(), nd);
  const std::size_t outer_nd = nd - plan.run_dims;
  odometer.assign(outer_nd, 0);
  const simd_kernels::KernelOps& kops = simd_kernels::active_ops();
  const std::span<const std::size_t* const> row_span(st.rows, nops);
  std::size_t o = 0;
  do {
    if (plan.vector_run) {
      for (std::size_t k = 0; k < nops; ++k) {
        st.cops[k] = {ops[k]->values.data() + st.offs[k], plan.run_steps[k]};
      }
      kops.chain_mul(out.data() + o, st.cops, nops, plan.run_len);
      o += plan.run_len;
    } else {
      for (std::size_t i = 0; i < plan.run_len; ++i) {
        double acc = ops[0]->values[st.offs[0] + i * plan.run_steps[0]];
        for (std::size_t k = 1; k < nops; ++k) {
          acc *= ops[k]->values[st.offs[k] + i * plan.run_steps[k]];
        }
        out[o++] = acc;
      }
    }
  } while (
      advance_outer(plan.out_cards, outer_nd, odometer, row_span, st.offs));
  KERTBN_ASSERT(o == plan.out_size);
}

double chain_product_log_into(const ChainPlan& plan,
                              std::span<const FlatFactor* const> ops,
                              std::vector<std::size_t>& odometer,
                              std::vector<double>& out) {
  KERTBN_EXPECTS(ops.size() == plan.nops);
  out.resize(plan.out_size);
  const std::size_t nops = plan.nops;
  const std::size_t nd = plan.out_cards.size();
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  double max_log = kNegInf;
  if (nd == 0) {
    double lacc = std::log(ops[0]->values[0]);
    for (std::size_t k = 1; k < nops; ++k) lacc += std::log(ops[k]->values[0]);
    max_log = lacc;
    out[0] = lacc;
  } else {
    OperandState st(nops, nops, plan.strides.data(), nd);
    const std::size_t outer_nd = nd - plan.run_dims;
    odometer.assign(outer_nd, 0);
    const std::span<const std::size_t* const> row_span(st.rows, nops);
    std::size_t o = 0;
    do {
      // The run steps hold per-element strides whether or not the plan
      // qualified for a vector run (0/1 then, general strides otherwise),
      // so one scalar walk covers both; log has no vector execution.
      for (std::size_t i = 0; i < plan.run_len; ++i) {
        double lacc =
            std::log(ops[0]->values[st.offs[0] + i * plan.run_steps[0]]);
        for (std::size_t k = 1; k < nops; ++k) {
          lacc +=
              std::log(ops[k]->values[st.offs[k] + i * plan.run_steps[k]]);
        }
        if (lacc > max_log) max_log = lacc;
        out[o++] = lacc;
      }
    } while (
        advance_outer(plan.out_cards, outer_nd, odometer, row_span, st.offs));
    KERTBN_ASSERT(o == plan.out_size);
  }
  if (max_log == kNegInf) {
    // Every chain product is an exact zero: the rescaled table is all
    // zeros and the scale is immaterial.
    std::fill(out.begin(), out.end(), 0.0);
    return 0.0;
  }
  for (double& v : out) v = std::exp(v - max_log);  // exp(-inf) == +0.0
  return max_log;
}

ChainReducePlan make_chain_reduce_plan(std::span<const FlatFactor* const> ops,
                                       std::span<const std::size_t> target) {
  KERTBN_EXPECTS(!ops.empty());
  ChainReducePlan plan;
  plan.nops = ops.size();
  std::vector<std::size_t> mid_scope;
  merge_scopes(ops, mid_scope, plan.mid_cards);
  plan.mid_size = product_of(plan.mid_cards);
  const std::size_t nd = mid_scope.size();

  for (std::size_t d = 0; d < nd; ++d) {
    if (find_in(target, mid_scope[d]) != kNone) {
      plan.out_scope.push_back(mid_scope[d]);
      plan.out_cards.push_back(plan.mid_cards[d]);
    }
  }
  plan.out_size = product_of(plan.out_cards);

  plan.strides.assign((plan.nops + 1) * nd, 0);
  std::vector<const std::size_t*> rows(plan.nops + 1);
  for (std::size_t k = 0; k < plan.nops; ++k) {
    fill_stride_row(mid_scope, *ops[k], plan.strides.data() + k * nd);
    rows[k] = plan.strides.data() + k * nd;
  }
  // Output stride row: row-major strides of the surviving dims, 0 on
  // eliminated ones — the accumulation target of the fused walk.
  std::size_t* out_row = plan.strides.data() + plan.nops * nd;
  std::size_t s = 1;
  for (std::size_t d = nd; d-- > 0;) {
    if (find_in(target, mid_scope[d]) != kNone) {
      out_row[d] = s;
      s *= plan.mid_cards[d];
    }
  }
  rows[plan.nops] = out_row;

  const TrailingRun run =
      find_trailing_run(plan.mid_cards, rows, plan.run_steps);
  plan.run_len = run.len;
  plan.run_dims = run.dims;
  plan.vector_run = run.vector_run;
  plan.run_eliminated = (nd == 0) || (plan.run_steps[plan.nops] == 0);
  return plan;
}

void chain_reduce_into(const ChainReducePlan& plan,
                       std::span<const FlatFactor* const> ops,
                       std::vector<std::size_t>& odometer,
                       std::vector<double>& out) {
  KERTBN_EXPECTS(ops.size() == plan.nops);
  out.assign(plan.out_size, 0.0);
  const std::size_t nops = plan.nops;
  const std::size_t nd = plan.mid_cards.size();
  if (nd == 0) {
    double acc = ops[0]->values[0];
    for (std::size_t k = 1; k < nops; ++k) acc *= ops[k]->values[0];
    out[0] = acc;
    return;
  }
  OperandState st(nops, nops + 1, plan.strides.data(), nd);
  const std::size_t outer_nd = nd - plan.run_dims;
  odometer.assign(outer_nd, 0);
  const simd_kernels::KernelOps& kops = simd_kernels::active_ops();
  const std::span<const std::size_t* const> row_span(st.rows, nops + 1);
  do {
    if (plan.vector_run) {
      for (std::size_t k = 0; k < nops; ++k) {
        st.cops[k] = {ops[k]->values.data() + st.offs[k], plan.run_steps[k]};
      }
      if (plan.run_eliminated) {
        out[st.offs[nops]] += kops.chain_dot(st.cops, nops, plan.run_len);
      } else {
        kops.chain_fma(out.data() + st.offs[nops], st.cops, nops,
                       plan.run_len);
      }
    } else {
      const std::size_t sout = plan.run_steps[nops];
      for (std::size_t i = 0; i < plan.run_len; ++i) {
        double acc = ops[0]->values[st.offs[0] + i * plan.run_steps[0]];
        for (std::size_t k = 1; k < nops; ++k) {
          acc *= ops[k]->values[st.offs[k] + i * plan.run_steps[k]];
        }
        out[st.offs[nops] + i * sout] += acc;
      }
    }
  } while (
      advance_outer(plan.mid_cards, outer_nd, odometer, row_span, st.offs));
}

void apply_evidence(FlatFactor& f, std::size_t var, std::size_t state) {
  const std::size_t dim = find_in(f.scope, var);
  KERTBN_EXPECTS(dim != kNone);
  KERTBN_EXPECTS(state < f.cards[dim]);
  const std::size_t stride = stride_of(f.cards, dim);
  const std::size_t card = f.cards[dim];
  const std::size_t block = stride * card;
  for (std::size_t base = 0; base < f.values.size(); base += block) {
    for (std::size_t k = 0; k < card; ++k) {
      if (k == state) continue;
      const std::size_t at = base + k * stride;
      std::fill(f.values.begin() + static_cast<std::ptrdiff_t>(at),
                f.values.begin() + static_cast<std::ptrdiff_t>(at + stride),
                0.0);
    }
  }
}

void reduce_evidence(FlatFactor& f, std::size_t var, std::size_t state) {
  const std::size_t dim = find_in(f.scope, var);
  KERTBN_EXPECTS(dim != kNone);
  KERTBN_EXPECTS(state < f.cards[dim]);
  const std::size_t stride = stride_of(f.cards, dim);
  const std::size_t card = f.cards[dim];
  const std::size_t block = stride * card;
  std::size_t o = 0;
  for (std::size_t base = state * stride; base < f.values.size();
       base += block) {
    std::copy(f.values.begin() + static_cast<std::ptrdiff_t>(base),
              f.values.begin() + static_cast<std::ptrdiff_t>(base + stride),
              f.values.begin() + static_cast<std::ptrdiff_t>(o));
    o += stride;
  }
  f.values.resize(o);
  f.scope.erase(f.scope.begin() + static_cast<std::ptrdiff_t>(dim));
  f.cards.erase(f.cards.begin() + static_cast<std::ptrdiff_t>(dim));
}

void FactorWorkspace::build_key(std::span<const FlatFactor* const> ops,
                                std::span<const std::size_t> target) {
  key_.clear();
  key_.push_back(ops.size());
  for (const FlatFactor* op : ops) {
    key_.push_back(op->scope.size());
    key_.insert(key_.end(), op->scope.begin(), op->scope.end());
  }
  key_.push_back(target.size());
  key_.insert(key_.end(), target.begin(), target.end());
}

const ProductPlan& FactorWorkspace::product_plan(const FlatFactor& a,
                                                 const FlatFactor& b) {
  const FlatFactor* ab[2] = {&a, &b};
  build_key(ab, {});
  if (ProductPlan* p = product_plans_.find(key_)) {
    ++plan_hits_;
    return *p;
  }
  ++plan_misses_;
  return product_plans_.insert(
      key_, make_product_plan(a.scope, a.cards, b.scope, b.cards));
}

const ReducePlan& FactorWorkspace::reduce_plan(
    const FlatFactor& f, std::span<const std::size_t> target) {
  const FlatFactor* fs[1] = {&f};
  build_key(fs, target);
  if (ReducePlan* p = reduce_plans_.find(key_)) {
    ++plan_hits_;
    return *p;
  }
  ++plan_misses_;
  return reduce_plans_.insert(key_, make_reduce_plan(f.scope, f.cards, target));
}

const ChainPlan& FactorWorkspace::chain_plan(
    std::span<const FlatFactor* const> ops) {
  build_key(ops, {});
  if (ChainPlan* p = chain_plans_.find(key_)) {
    ++plan_hits_;
    return *p;
  }
  ++plan_misses_;
  return chain_plans_.insert(key_, make_chain_plan(ops));
}

const ChainReducePlan& FactorWorkspace::chain_reduce_plan(
    std::span<const FlatFactor* const> ops,
    std::span<const std::size_t> target) {
  build_key(ops, target);
  if (ChainReducePlan* p = chain_reduce_plans_.find(key_)) {
    ++plan_hits_;
    return *p;
  }
  ++plan_misses_;
  return chain_reduce_plans_.insert(key_, make_chain_reduce_plan(ops, target));
}

void FactorWorkspace::product(const FlatFactor& a, const FlatFactor& b,
                              FlatFactor& out) {
  const ProductPlan& plan = product_plan(a, b);
  out.scope = plan.out_scope;
  out.cards = plan.out_cards;
  product_into(plan, a.values, b.values, odometer_, out.values);
}

void FactorWorkspace::product_chain(const FlatFactor& base,
                                    std::span<const FlatFactor* const> factors,
                                    FlatFactor& out) {
  if (factors.empty()) {
    out.scope = base.scope;
    out.cards = base.cards;
    out.values = base.values;
    return;
  }
  if (factors.size() == 1) {
    product(base, *factors[0], out);
    return;
  }
  // Plan-time blocked selection: two or more factors execute as ONE
  // multi-operand pass. Each output element is a left fold of its aligned
  // operand entries — bit-identical to the pairwise chain — but the output
  // is written once and no pairwise intermediate is materialized, so large
  // products tile through cache instead of streaming the table per pass.
  ops_.clear();
  ops_.push_back(&base);
  ops_.insert(ops_.end(), factors.begin(), factors.end());
  const ChainPlan& plan = chain_plan(ops_);
  out.scope = plan.out_scope;
  out.cards = plan.out_cards;
  chain_product_into(plan, ops_, odometer_, out.values);
}

double FactorWorkspace::product_chain_log(
    const FlatFactor& base, std::span<const FlatFactor* const> factors,
    FlatFactor& out) {
  ops_.clear();
  ops_.push_back(&base);
  ops_.insert(ops_.end(), factors.begin(), factors.end());
  const ChainPlan& plan = chain_plan(ops_);  // same cached plans as flat
  out.scope = plan.out_scope;
  out.cards = plan.out_cards;
  return chain_product_log_into(plan, ops_, odometer_, out.values);
}

void FactorWorkspace::product_chain_reduce(
    const FlatFactor& base, std::span<const FlatFactor* const> factors,
    std::span<const std::size_t> target, FlatFactor& out) {
  if (factors.empty()) {
    reduce(base, target, out);
    return;
  }
  if (simd::active_tier() == simd::Tier::kScalar) {
    // The fused pass accumulates in a different order than the stepwise
    // pipeline; the scalar tier promises bit-identity to the legacy path,
    // so it keeps the exact two-step execution.
    product_chain(base, factors, fused_tmp_);
    reduce(fused_tmp_, target, out);
    return;
  }
  ops_.clear();
  ops_.push_back(&base);
  ops_.insert(ops_.end(), factors.begin(), factors.end());
  const ChainReducePlan& plan = chain_reduce_plan(ops_, target);
  out.scope = plan.out_scope;
  out.cards = plan.out_cards;
  chain_reduce_into(plan, ops_, odometer_, out.values);
}

void FactorWorkspace::reduce(const FlatFactor& f,
                             std::span<const std::size_t> target,
                             FlatFactor& out) {
  const ReducePlan& plan = reduce_plan(f, target);
  out.scope = plan.out_scope;
  out.cards = plan.out_cards;
  reduce_into(plan, f.values, scratch_, out.values);
}

}  // namespace kertbn::bn
