#pragma once
/// \file scores.hpp
/// Decomposable family scores for structure learning. K2 greedily maximizes
/// Σ_v score(v, parents(v)); we provide the classic Cooper-Herskovits K2
/// score for discrete data and a Gaussian BIC score for continuous data
/// (the Section 4 simulations use continuous models).

#include <functional>
#include <span>
#include <vector>

#include "bn/dataset.hpp"
#include "bn/variable.hpp"

namespace kertbn::bn {

/// A decomposable family score: higher is better.
using FamilyScoreFn = std::function<double(
    const Dataset& data, std::size_t child,
    std::span<const std::size_t> parents)>;

/// Cooper-Herskovits K2 score (log of the marginal likelihood with uniform
/// Dirichlet priors): Σ_j [ log (r-1)!/(N_j+r-1)! + Σ_k log N_jk! ].
/// All involved variables must be discrete; cardinalities come from \p vars.
double k2_family_score(const Dataset& data, std::size_t child,
                       std::span<const std::size_t> parents,
                       std::span<const Variable> vars);

/// Gaussian BIC family score: maximized log-likelihood of the OLS
/// linear-Gaussian fit minus (params/2)·log n.
double gaussian_bic_family_score(const Dataset& data, std::size_t child,
                                 std::span<const std::size_t> parents);

/// Builds a FamilyScoreFn appropriate for the variable kinds in \p vars
/// (all-discrete → K2 score, otherwise Gaussian BIC). The returned closure
/// copies \p vars.
FamilyScoreFn make_family_score(std::span<const Variable> vars);

/// Total decomposable score of a full parent-set assignment.
double structure_score(const Dataset& data,
                       const std::vector<std::vector<std::size_t>>& parents,
                       const FamilyScoreFn& score);

}  // namespace kertbn::bn
