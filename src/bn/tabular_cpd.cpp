#include "bn/tabular_cpd.hpp"

#include <cmath>
#include <sstream>

#include "common/contract.hpp"

namespace kertbn::bn {
namespace {

// Probability floor keeping log-likelihoods finite on unseen configurations.
constexpr double kProbFloor = 1e-12;

std::size_t product(const std::vector<std::size_t>& xs) {
  std::size_t p = 1;
  for (std::size_t x : xs) p *= x;
  return p;
}

}  // namespace

TabularCpd::TabularCpd(std::size_t child_cardinality,
                       std::vector<std::size_t> parent_cardinalities,
                       std::vector<double> table)
    : child_card_(child_cardinality),
      parent_cards_(std::move(parent_cardinalities)),
      configs_(product(parent_cards_)),
      table_(std::move(table)) {
  KERTBN_EXPECTS(child_card_ >= 2);
  for (std::size_t c : parent_cards_) KERTBN_EXPECTS(c >= 2);
  KERTBN_EXPECTS(table_.size() == configs_ * child_card_);
  normalize_rows();
}

TabularCpd TabularCpd::uniform(std::size_t child_cardinality,
                               std::vector<std::size_t> parent_cardinalities) {
  const std::size_t configs = product(parent_cardinalities);
  std::vector<double> table(configs * child_cardinality,
                            1.0 / static_cast<double>(child_cardinality));
  return TabularCpd(child_cardinality, std::move(parent_cardinalities),
                    std::move(table));
}

std::size_t TabularCpd::config_index(std::span<const double> parents) const {
  KERTBN_EXPECTS(parents.size() == parent_cards_.size());
  std::size_t idx = 0;
  for (std::size_t i = 0; i < parents.size(); ++i) {
    const auto state = static_cast<std::size_t>(parents[i]);
    KERTBN_EXPECTS(state < parent_cards_[i]);
    idx = idx * parent_cards_[i] + state;
  }
  return idx;
}

double TabularCpd::probability(std::size_t config, std::size_t state) const {
  KERTBN_EXPECTS(config < configs_ && state < child_card_);
  return table_[config * child_card_ + state];
}

double& TabularCpd::probability_ref(std::size_t config, std::size_t state) {
  KERTBN_EXPECTS(config < configs_ && state < child_card_);
  return table_[config * child_card_ + state];
}

void TabularCpd::normalize_rows() {
  for (std::size_t cfg = 0; cfg < configs_; ++cfg) {
    double* row = table_.data() + cfg * child_card_;
    double sum = 0.0;
    for (std::size_t s = 0; s < child_card_; ++s) {
      KERTBN_EXPECTS(row[s] >= 0.0);
      sum += row[s];
    }
    if (sum <= 0.0) {
      for (std::size_t s = 0; s < child_card_; ++s) {
        row[s] = 1.0 / static_cast<double>(child_card_);
      }
    } else {
      for (std::size_t s = 0; s < child_card_; ++s) row[s] /= sum;
    }
  }
}

double TabularCpd::log_prob(double value,
                            std::span<const double> parents) const {
  const auto state = static_cast<std::size_t>(value);
  KERTBN_EXPECTS(state < child_card_);
  const double p = probability(config_index(parents), state);
  return std::log(std::max(p, kProbFloor));
}

double TabularCpd::sample(std::span<const double> parents, Rng& rng) const {
  const std::size_t cfg = config_index(parents);
  double target = rng.uniform();
  const double* row = table_.data() + cfg * child_card_;
  for (std::size_t s = 0; s < child_card_; ++s) {
    target -= row[s];
    if (target < 0.0) return static_cast<double>(s);
  }
  return static_cast<double>(child_card_ - 1);
}

double TabularCpd::mean(std::span<const double> parents) const {
  const std::size_t cfg = config_index(parents);
  const double* row = table_.data() + cfg * child_card_;
  double m = 0.0;
  for (std::size_t s = 0; s < child_card_; ++s) {
    m += static_cast<double>(s) * row[s];
  }
  return m;
}

std::unique_ptr<Cpd> TabularCpd::clone() const {
  return std::make_unique<TabularCpd>(*this);
}

std::string TabularCpd::describe() const {
  std::ostringstream out;
  out << "Tabular(card=" << child_card_ << ", configs=" << configs_ << ")";
  return out.str();
}

}  // namespace kertbn::bn
