#pragma once
/// \file discrete_inference.hpp
/// Exact inference for all-discrete networks via variable elimination.
/// This powers the Section 5 applications: dComp posterior queries and
/// pAccel response-time projections on the discrete eDiaMoND models.

#include <map>
#include <vector>

#include "bn/factor.hpp"
#include "bn/network.hpp"

namespace kertbn::bn {

/// Evidence: node index -> observed state.
using DiscreteEvidence = std::map<std::size_t, std::size_t>;

/// Variable-elimination engine bound to one (all-discrete, complete)
/// network. The network must outlive the engine.
class VariableElimination {
 public:
  explicit VariableElimination(const BayesianNetwork& net);

  /// Posterior P(query | evidence) as a normalized state vector.
  std::vector<double> posterior(std::size_t query,
                                const DiscreteEvidence& evidence) const;

  /// Joint posterior over a small set of query variables; the returned
  /// factor's scope preserves \p queries' variable ids.
  Factor joint_posterior(std::span<const std::size_t> queries,
                         const DiscreteEvidence& evidence) const;

  /// Probability of the evidence, P(e).
  double evidence_probability(const DiscreteEvidence& evidence) const;

 private:
  /// CPT of node \p v as a factor over {v} ∪ parents(v).
  Factor node_factor(std::size_t v) const;

  /// Eliminates all variables outside keep ∪ evidence scope.
  Factor run(std::span<const std::size_t> keep,
             const DiscreteEvidence& evidence) const;

  const BayesianNetwork& net_;
};

/// Expected value of a discrete node's *state index* under a posterior
/// distribution (useful when states are quantile bins).
double posterior_mean_state(const std::vector<double>& dist);

/// Most probable explanation: the jointly most likely assignment of every
/// non-evidence variable given the evidence (max-product variable
/// elimination with traceback). The autonomic use case is performance
/// problem localization: "given the violated response time we observed,
/// which joint service state best explains it?"
struct MpeResult {
  /// states[v]: assigned state for every node (evidence nodes keep their
  /// observed state).
  std::vector<std::size_t> states;
  /// log P(states) — the joint log-probability of the full assignment.
  double log_probability = 0.0;
};

MpeResult most_probable_explanation(const BayesianNetwork& net,
                                    const DiscreteEvidence& evidence);

}  // namespace kertbn::bn
