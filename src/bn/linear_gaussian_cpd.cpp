#include "bn/linear_gaussian_cpd.hpp"

#include <sstream>

#include "common/contract.hpp"
#include "common/stats.hpp"

namespace kertbn::bn {

LinearGaussianCpd::LinearGaussianCpd(double intercept,
                                     std::vector<double> weights,
                                     double sigma)
    : intercept_(intercept), weights_(std::move(weights)), sigma_(sigma) {
  KERTBN_EXPECTS(sigma_ > 0.0);
}

double LinearGaussianCpd::mean(std::span<const double> parents) const {
  KERTBN_EXPECTS(parents.size() == weights_.size());
  double m = intercept_;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    m += weights_[i] * parents[i];
  }
  return m;
}

double LinearGaussianCpd::log_prob(double value,
                                   std::span<const double> parents) const {
  return gaussian_log_pdf(value, mean(parents), sigma_);
}

double LinearGaussianCpd::sample(std::span<const double> parents,
                                 Rng& rng) const {
  return rng.normal(mean(parents), sigma_);
}

std::unique_ptr<Cpd> LinearGaussianCpd::clone() const {
  return std::make_unique<LinearGaussianCpd>(*this);
}

std::string LinearGaussianCpd::describe() const {
  std::ostringstream out;
  out << "LinearGaussian(b0=" << intercept_ << ", w=[";
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    if (i > 0) out << ", ";
    out << weights_[i];
  }
  out << "], sigma=" << sigma_ << ")";
  return out.str();
}

}  // namespace kertbn::bn
