#pragma once
/// \file network.hpp
/// The Bayesian network: a DAG of Variables, each with a Cpd. Provides
/// ancestral sampling, dataset log-likelihood (the paper's data-fitting
/// accuracy metric, log10 p(TestData | BN)), and structural summaries.

#include <memory>
#include <optional>
#include <vector>

#include "bn/cpd.hpp"
#include "bn/dataset.hpp"
#include "bn/variable.hpp"
#include "graph/dag.hpp"

namespace kertbn::bn {

class BayesianNetwork {
 public:
  BayesianNetwork() = default;

  // Deep-copying value semantics (CPDs are cloned).
  BayesianNetwork(const BayesianNetwork& other);
  BayesianNetwork& operator=(const BayesianNetwork& other);
  BayesianNetwork(BayesianNetwork&&) noexcept = default;
  BayesianNetwork& operator=(BayesianNetwork&&) noexcept = default;

  /// Adds a node; returns its index.
  std::size_t add_node(Variable var);

  /// Adds a dependency edge parent -> child; false if it would cycle.
  bool add_edge(std::size_t parent, std::size_t child);

  std::size_t size() const { return vars_.size(); }
  const graph::Dag& dag() const { return dag_; }
  const Variable& variable(std::size_t v) const;
  std::optional<std::size_t> find_node(const std::string& name) const {
    return dag_.find_label(name);
  }

  /// Installs the CPD for node \p v. The CPD's parent_count must match the
  /// node's current in-degree.
  void set_cpd(std::size_t v, std::unique_ptr<Cpd> cpd);
  bool has_cpd(std::size_t v) const;
  const Cpd& cpd(std::size_t v) const;

  /// True when every node has a CPD consistent with its parents.
  bool is_complete() const;

  /// Samples one joint configuration in node-index order (ancestral
  /// sampling). Requires is_complete().
  std::vector<double> sample_row(Rng& rng) const;

  /// Samples \p n rows into a Dataset whose columns are the variable names
  /// in node-index order.
  Dataset sample(std::size_t n, Rng& rng) const;

  /// Natural-log likelihood of the dataset under the model. Dataset columns
  /// must be the network variables in node-index order.
  double log_likelihood(const Dataset& data) const;

  /// Contribution of a single node's family to log_likelihood().
  double node_log_likelihood(std::size_t v, const Dataset& data) const;

  /// log10 p(data | BN) — the unit the paper plots.
  double log10_likelihood(const Dataset& data) const;

  /// Total free parameters across CPDs.
  std::size_t parameter_count() const;

  /// One line per node: name, parents, CPD summary.
  std::string describe() const;

 private:
  void gather_parent_values(std::size_t v, std::span<const double> row,
                            std::vector<double>& buf) const;

  graph::Dag dag_;
  std::vector<Variable> vars_;
  std::vector<std::unique_ptr<Cpd>> cpds_;
};

}  // namespace kertbn::bn
