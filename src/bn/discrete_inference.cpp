#include "bn/discrete_inference.hpp"

#include <algorithm>
#include <cmath>

#include "bn/factor_kernels.hpp"
#include "bn/tabular_cpd.hpp"
#include "common/contract.hpp"

namespace kertbn::bn {

VariableElimination::VariableElimination(const BayesianNetwork& net)
    : net_(net) {
  KERTBN_EXPECTS(net.is_complete());
  for (std::size_t v = 0; v < net.size(); ++v) {
    KERTBN_EXPECTS(net.variable(v).is_discrete());
    KERTBN_EXPECTS(net.cpd(v).kind() == CpdKind::kTabular);
  }
}

namespace {

/// Family factor of node \p v: scope = parents (most significant) then the
/// child, matching the CPT's (config, state) layout.
Factor make_node_factor(const BayesianNetwork& net, std::size_t v) {
  const auto& cpt = static_cast<const TabularCpd&>(net.cpd(v));
  const auto pars = net.dag().parents(v);

  std::vector<std::size_t> scope(pars.begin(), pars.end());
  scope.push_back(v);
  std::vector<std::size_t> cards = cpt.parent_cardinalities();
  cards.push_back(cpt.child_cardinality());

  std::vector<double> values;
  values.reserve(cpt.config_count() * cpt.child_cardinality());
  for (std::size_t cfg = 0; cfg < cpt.config_count(); ++cfg) {
    for (std::size_t s = 0; s < cpt.child_cardinality(); ++s) {
      values.push_back(cpt.probability(cfg, s));
    }
  }
  return Factor(std::move(scope), std::move(cards), std::move(values));
}

}  // namespace

Factor VariableElimination::node_factor(std::size_t v) const {
  return make_node_factor(net_, v);
}

Factor VariableElimination::run(std::span<const std::size_t> keep,
                                const DiscreteEvidence& evidence) const {
  // Runs on the flat factor kernels shared with the junction tree (same
  // fold order and summation order as the legacy Factor chain, so the
  // scalar dispatch tier is bit-identical to it). VE instances are built
  // per query by the pruned-query router, so the plan cache is run-local —
  // it still pays off because elimination re-hits the same scope shapes.
  FactorWorkspace ws;
  auto has_var = [](const FlatFactor& f, std::size_t var) {
    return std::find(f.scope.begin(), f.scope.end(), var) != f.scope.end();
  };

  // Build all node factors, applying evidence reductions eagerly.
  std::vector<FlatFactor> factors;
  factors.reserve(net_.size());
  for (std::size_t v = 0; v < net_.size(); ++v) {
    FlatFactor f = FlatFactor::from(node_factor(v));
    for (const auto& [var, state] : evidence) {
      if (has_var(f, var)) reduce_evidence(f, var, state);
    }
    factors.push_back(std::move(f));
  }

  std::vector<bool> is_kept(net_.size(), false);
  for (std::size_t q : keep) is_kept[q] = true;
  for (const auto& [var, _] : evidence) is_kept[var] = true;

  // Eliminate hidden variables smallest-intermediate-factor first
  // (greedy min-weight heuristic).
  std::vector<std::size_t> hidden;
  for (std::size_t v = 0; v < net_.size(); ++v) {
    if (!is_kept[v]) hidden.push_back(v);
  }

  FlatFactor tmp;
  while (!hidden.empty()) {
    // Pick the hidden variable whose elimination builds the smallest factor.
    std::size_t best_pos = 0;
    double best_cost = -1.0;
    for (std::size_t i = 0; i < hidden.size(); ++i) {
      const std::size_t var = hidden[i];
      double cost = 1.0;
      std::vector<std::size_t> seen;
      for (const FlatFactor& f : factors) {
        if (!has_var(f, var)) continue;
        for (std::size_t k = 0; k < f.scope.size(); ++k) {
          const std::size_t sv = f.scope[k];
          if (std::find(seen.begin(), seen.end(), sv) == seen.end()) {
            seen.push_back(sv);
            cost *= static_cast<double>(f.cards[k]);
          }
        }
      }
      if (best_cost < 0.0 || cost < best_cost) {
        best_cost = cost;
        best_pos = i;
      }
    }
    const std::size_t var = hidden[best_pos];
    hidden.erase(hidden.begin() + static_cast<std::ptrdiff_t>(best_pos));

    // Multiply all factors mentioning var, then sum it out.
    FlatFactor combined = FlatFactor::unit();
    std::vector<FlatFactor> rest;
    rest.reserve(factors.size());
    for (FlatFactor& f : factors) {
      if (has_var(f, var)) {
        ws.product(combined, f, tmp);
        std::swap(combined, tmp);
      } else {
        rest.push_back(std::move(f));
      }
    }
    std::vector<std::size_t> target;
    target.reserve(combined.scope.size());
    for (std::size_t sv : combined.scope) {
      if (sv != var) target.push_back(sv);
    }
    FlatFactor reduced;
    ws.reduce(combined, target, reduced);
    rest.push_back(std::move(reduced));
    factors = std::move(rest);
  }

  FlatFactor result = FlatFactor::unit();
  for (const FlatFactor& f : factors) {
    ws.product(result, f, tmp);
    std::swap(result, tmp);
  }
  return result.to_factor();
}

std::vector<double> VariableElimination::posterior(
    std::size_t query, const DiscreteEvidence& evidence) const {
  KERTBN_EXPECTS(query < net_.size());
  KERTBN_EXPECTS(!evidence.contains(query));
  const std::size_t keep[] = {query};
  const Factor joint = run(keep, evidence).normalized();
  // The result's scope is exactly {query}.
  KERTBN_ASSERT(joint.scope().size() == 1 && joint.scope()[0] == query);
  return joint.values();
}

Factor VariableElimination::joint_posterior(
    std::span<const std::size_t> queries,
    const DiscreteEvidence& evidence) const {
  return run(queries, evidence).normalized();
}

double VariableElimination::evidence_probability(
    const DiscreteEvidence& evidence) const {
  KERTBN_EXPECTS(!evidence.empty());
  const Factor f = run({}, evidence);
  return f.total();
}

MpeResult most_probable_explanation(const BayesianNetwork& net,
                                    const DiscreteEvidence& evidence) {
  KERTBN_EXPECTS(net.is_complete());
  // Build evidence-reduced node factors (same layout as VE).
  std::vector<Factor> factors;
  factors.reserve(net.size());
  for (std::size_t v = 0; v < net.size(); ++v) {
    Factor f = make_node_factor(net, v);
    for (const auto& [var, state] : evidence) {
      if (f.has_variable(var)) f = f.reduce(var, state);
    }
    factors.push_back(std::move(f));
  }

  // Max-product elimination of every hidden variable, in index order,
  // recording the combined factor before each elimination for traceback.
  std::vector<std::size_t> hidden;
  for (std::size_t v = 0; v < net.size(); ++v) {
    if (!evidence.contains(v)) hidden.push_back(v);
  }
  struct Step {
    std::size_t var;
    Factor combined;  // factor over var + not-yet-eliminated scope
  };
  std::vector<Step> trace;
  trace.reserve(hidden.size());

  for (std::size_t var : hidden) {
    Factor combined = Factor::unit();
    std::vector<Factor> rest;
    rest.reserve(factors.size());
    for (Factor& f : factors) {
      if (f.has_variable(var)) {
        combined = combined.product(f);
      } else {
        rest.push_back(std::move(f));
      }
    }
    rest.push_back(combined.max_marginalize(var));
    factors = std::move(rest);
    trace.push_back({var, std::move(combined)});
  }

  // Remaining factors are scalars; their product is max_x P(x, e).
  double best = 1.0;
  for (const Factor& f : factors) best *= f.total();

  MpeResult result;
  result.states.assign(net.size(), 0);
  for (const auto& [var, state] : evidence) result.states[var] = state;
  result.log_probability = std::log(std::max(best, 1e-300));

  // Traceback in reverse elimination order: each step's factor depends
  // only on its own variable and variables eliminated *later* (already
  // assigned by now).
  for (std::size_t i = trace.size(); i-- > 0;) {
    Factor f = trace[i].combined;
    for (std::size_t v : std::vector<std::size_t>(f.scope())) {
      if (v == trace[i].var) continue;
      f = f.reduce(v, result.states[v]);
    }
    result.states[trace[i].var] = f.argmax_state();
  }
  return result;
}

double posterior_mean_state(const std::vector<double>& dist) {
  double m = 0.0;
  for (std::size_t s = 0; s < dist.size(); ++s) {
    m += static_cast<double>(s) * dist[s];
  }
  return m;
}

}  // namespace kertbn::bn
