#include "bn/sequential_update.hpp"

#include <cmath>

#include "bn/linear_gaussian_cpd.hpp"
#include "bn/tabular_cpd.hpp"
#include "common/contract.hpp"
#include "linalg/decompose.hpp"

namespace kertbn::bn {
namespace {

constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

}  // namespace

SequentialUpdater::SequentialUpdater(BayesianNetwork& net,
                                     const SequentialUpdateOptions& opts)
    : net_(net), opts_(opts), slot_of_(net.size(), kNoSlot) {
  KERTBN_EXPECTS(opts_.forgetting > 0.0 && opts_.forgetting <= 1.0);
  for (std::size_t v = 0; v < net_.size(); ++v) {
    if (net_.has_cpd(v)) continue;  // knowledge-given: hands off
    slot_of_[v] = learnable_.size();
    learnable_.push_back(v);
    const auto pars = net_.dag().parents(v);
    if (net_.variable(v).is_discrete()) {
      std::size_t configs = 1;
      for (std::size_t p : pars) {
        KERTBN_EXPECTS(net_.variable(p).is_discrete());
        configs *= net_.variable(p).cardinality;
      }
      DiscreteStats stats;
      stats.counts.assign(configs * net_.variable(v).cardinality,
                          opts_.dirichlet_alpha);
      discrete_.push_back(std::move(stats));
      gaussian_.emplace_back();
    } else {
      GaussianStats stats;
      const std::size_t d = pars.size() + 1;
      stats.xtx.assign(d * d, 0.0);
      stats.xty.assign(d, 0.0);
      gaussian_.push_back(std::move(stats));
      discrete_.emplace_back();
    }
  }
}

void SequentialUpdater::update(const Dataset& batch) {
  KERTBN_EXPECTS(batch.cols() == net_.size());
  // Optional forgetting: decay every sufficient statistic before the batch.
  if (opts_.forgetting < 1.0) {
    for (std::size_t slot = 0; slot < learnable_.size(); ++slot) {
      const std::size_t v = learnable_[slot];
      if (net_.variable(v).is_discrete()) {
        for (double& c : discrete_[slot].counts) c *= opts_.forgetting;
      } else {
        auto& g = gaussian_[slot];
        for (double& x : g.xtx) x *= opts_.forgetting;
        for (double& x : g.xty) x *= opts_.forgetting;
        g.yy *= opts_.forgetting;
        g.n *= opts_.forgetting;
      }
    }
  }

  std::vector<double> design;
  for (std::size_t r = 0; r < batch.rows(); ++r) {
    const auto row = batch.row(r);
    for (std::size_t slot = 0; slot < learnable_.size(); ++slot) {
      const std::size_t v = learnable_[slot];
      const auto pars = net_.dag().parents(v);
      if (net_.variable(v).is_discrete()) {
        std::size_t cfg = 0;
        for (std::size_t p : pars) {
          cfg = cfg * net_.variable(p).cardinality +
                static_cast<std::size_t>(row[p]);
        }
        const std::size_t card = net_.variable(v).cardinality;
        const auto state = static_cast<std::size_t>(row[v]);
        KERTBN_EXPECTS(state < card);
        discrete_[slot].counts[cfg * card + state] += 1.0;
      } else {
        auto& g = gaussian_[slot];
        const std::size_t d = pars.size() + 1;
        design.assign(d, 1.0);
        for (std::size_t i = 0; i < pars.size(); ++i) {
          design[i + 1] = row[pars[i]];
        }
        const double y = row[v];
        for (std::size_t i = 0; i < d; ++i) {
          g.xty[i] += design[i] * y;
          for (std::size_t j = 0; j < d; ++j) {
            g.xtx[i * d + j] += design[i] * design[j];
          }
        }
        g.yy += y * y;
        g.n += 1.0;
      }
    }
  }
  observations_ += batch.rows();
  for (std::size_t v : learnable_) refresh_node(v);
}

void SequentialUpdater::refresh_node(std::size_t v) {
  const std::size_t slot = slot_of_[v];
  KERTBN_ASSERT(slot != kNoSlot);
  const auto pars = net_.dag().parents(v);

  if (net_.variable(v).is_discrete()) {
    std::vector<std::size_t> parent_cards;
    parent_cards.reserve(pars.size());
    for (std::size_t p : pars) {
      parent_cards.push_back(net_.variable(p).cardinality);
    }
    net_.set_cpd(v, std::make_unique<TabularCpd>(TabularCpd(
                        net_.variable(v).cardinality, parent_cards,
                        discrete_[slot].counts)));
    return;
  }

  const auto& g = gaussian_[slot];
  const std::size_t d = pars.size() + 1;
  if (g.n < 1.0) return;  // nothing absorbed yet
  la::Matrix xtx(d, d);
  la::Vector xty(d);
  for (std::size_t i = 0; i < d; ++i) {
    xty[i] = g.xty[i];
    for (std::size_t j = 0; j < d; ++j) xtx(i, j) = g.xtx[i * d + j];
    xtx(i, i) += opts_.ridge;
  }
  auto chol = la::Cholesky::factor(xtx);
  for (double boost = 1e-6; !chol.has_value() && boost <= 1e3;
       boost *= 10.0) {
    la::Matrix bumped = xtx;
    for (std::size_t i = 0; i < d; ++i) bumped(i, i) += boost;
    chol = la::Cholesky::factor(bumped);
  }
  KERTBN_ASSERT(chol.has_value());
  const la::Vector beta = chol->solve(xty);

  // Residual variance from the sufficient statistics:
  // RSS = Σy² − betaᵀ Xᵀy (the quadratic identity at the OLS optimum,
  // ridge-perturbed but numerically safe with the clamp below).
  double rss = g.yy;
  for (std::size_t i = 0; i < d; ++i) rss -= beta[i] * g.xty[i];
  const double sigma =
      std::max(std::sqrt(std::max(rss, 0.0) / g.n), opts_.min_sigma);

  std::vector<double> weights(pars.size());
  for (std::size_t i = 0; i < pars.size(); ++i) weights[i] = beta[i + 1];
  net_.set_cpd(v, std::make_unique<LinearGaussianCpd>(
                      beta[0], std::move(weights), sigma));
}

}  // namespace kertbn::bn
