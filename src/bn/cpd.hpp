#pragma once
/// \file cpd.hpp
/// Conditional probability distribution interface. A CPD describes
/// P(X | parents) for one node; concrete forms are tabular (discrete),
/// linear-Gaussian (continuous) and deterministic-with-leak (Equation 4 of
/// the paper — the workflow-derived CPD of the response-time node D).

#include <memory>
#include <span>
#include <string>

#include "common/rng.hpp"

namespace kertbn::bn {

/// Discriminator for concrete CPD types (cheap alternative to dynamic_cast
/// in hot learning/inference loops).
enum class CpdKind { kTabular, kLinearGaussian, kDeterministic };

/// Abstract conditional distribution of one node given its parents.
///
/// Parent values are passed as a span ordered exactly like the node's parent
/// list in the owning network. Discrete values are state indices stored in
/// doubles.
class Cpd {
 public:
  virtual ~Cpd() = default;

  virtual CpdKind kind() const = 0;

  /// Number of parent values expected by log_prob/sample.
  virtual std::size_t parent_count() const = 0;

  /// log P(x | parents) — density for continuous nodes, mass for discrete.
  virtual double log_prob(double value,
                          std::span<const double> parents) const = 0;

  /// Draws X | parents.
  virtual double sample(std::span<const double> parents, Rng& rng) const = 0;

  /// Mean of X | parents (used by mean-propagation utilities).
  virtual double mean(std::span<const double> parents) const = 0;

  virtual std::unique_ptr<Cpd> clone() const = 0;

  /// Human-readable one-line summary.
  virtual std::string describe() const = 0;

  /// Number of free parameters (used by BIC scoring and model summaries).
  virtual std::size_t parameter_count() const = 0;
};

}  // namespace kertbn::bn
