#pragma once
/// \file gibbs.hpp
/// Gibbs sampling for all-discrete networks: the fallback engine when exact
/// inference is too expensive (a discrete KERT-BN's response CPT grows as
/// bins^n, so VE and junction trees hit a wall near a dozen services; Gibbs
/// only ever evaluates single-row CPT lookups).

#include <map>
#include <vector>

#include "bn/network.hpp"

namespace kertbn::bn {

struct GibbsOptions {
  std::size_t burn_in = 1000;   ///< Sweeps discarded before recording.
  std::size_t samples = 10000;  ///< Recorded sweeps.
  std::size_t thin = 1;         ///< Keep every thin-th sweep.
};

/// Gibbs sampler over a complete all-discrete network.
class GibbsSampler {
 public:
  explicit GibbsSampler(const BayesianNetwork& net);

  /// Runs a chain with the given evidence clamped and returns the
  /// posterior marginal estimate of \p query.
  std::vector<double> posterior(std::size_t query,
                                const std::map<std::size_t, std::size_t>&
                                    evidence,
                                Rng& rng, const GibbsOptions& opts = {});

  /// Runs a chain and returns per-node marginal estimates for every
  /// non-evidence node (one pass, all posteriors).
  std::vector<std::vector<double>> all_posteriors(
      const std::map<std::size_t, std::size_t>& evidence, Rng& rng,
      const GibbsOptions& opts = {});

 private:
  /// One full systematic-scan sweep over the non-evidence nodes.
  void sweep(std::vector<double>& state,
             const std::vector<std::size_t>& free_nodes, Rng& rng) const;

  /// Samples node \p v from its full conditional given the rest.
  double sample_full_conditional(std::size_t v,
                                 std::vector<double>& state,
                                 Rng& rng) const;

  const BayesianNetwork& net_;
  std::vector<std::vector<std::size_t>> children_;
};

}  // namespace kertbn::bn
