#pragma once
/// \file structure_learning.hpp
/// Structure search. The NRT-BN baseline learns its DAG with K2 (Cooper &
/// Herskovits 1992): given a total node ordering, each node greedily adopts
/// the predecessor whose addition most improves a decomposable family score,
/// until no improvement or the parent cap is hit — O(n²) candidate-family
/// evaluations, the super-linear construction-time term of Figure 4.
/// Exhaustive search over all DAGs is provided for tiny networks (test
/// oracle), and random-restart K2 reproduces the Section 5.3 optimization.

#include <cstddef>
#include <vector>

#include "bn/scores.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "graph/dag.hpp"

namespace kertbn::bn {

struct K2Options {
  /// Parent-set cap (K2's classic "u" parameter).
  std::size_t max_parents = 4;
};

/// Result of a structure search: parent sets, DAG form, and total score.
struct StructureResult {
  std::vector<std::vector<std::size_t>> parents;
  double score = 0.0;

  /// Materializes the parent sets as a Dag labeled with \p vars' names.
  graph::Dag to_dag(std::span<const Variable> vars) const;
};

/// K2 with the given total ordering (order[i] may only draw parents from
/// order[0..i-1]).
StructureResult k2_search(const Dataset& data, std::span<const Variable> vars,
                          std::span<const std::size_t> order,
                          const FamilyScoreFn& score,
                          const K2Options& opts = {});

/// K2 with the natural ordering 0..n-1.
StructureResult k2_search(const Dataset& data, std::span<const Variable> vars,
                          const FamilyScoreFn& score,
                          const K2Options& opts = {});

/// Repeats K2 with \p restarts random orderings (Section 5.3: "repeatedly
/// run K2 with different random orderings until the next model construction
/// is due") and returns the best-scoring result.
///
/// When \p pool is non-null the restarts run concurrently: all orderings
/// are drawn from \p rng up front (the same permutation sequence the serial
/// loop would draw), every restart is scored on the pool, and the winner is
/// selected in restart order with the serial tie-break — so the result is
/// identical to the serial path for the same rng state.
StructureResult k2_random_restarts(const Dataset& data,
                                   std::span<const Variable> vars,
                                   std::size_t restarts, Rng& rng,
                                   const FamilyScoreFn& score,
                                   const K2Options& opts = {},
                                   ThreadPool* pool = nullptr);

/// Exact search by enumerating every DAG on n nodes (feasible for n <= 4;
/// contract-fails above 5). Test oracle for K2.
StructureResult exhaustive_search(const Dataset& data,
                                  std::span<const Variable> vars,
                                  const FamilyScoreFn& score);

}  // namespace kertbn::bn
