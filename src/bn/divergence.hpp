#pragma once
/// \file divergence.hpp
/// Model-comparison utilities: KL divergence between Bayesian networks over
/// the same variable set. Used to quantify how far a stale or baseline
/// model sits from a reference (e.g. freshly reconstructed) model —
/// a sharper lens than held-out likelihood when both models are available.

#include "bn/network.hpp"

namespace kertbn::bn {

/// Exact KL(p || q) for small all-discrete networks by enumerating every
/// joint configuration. Cost is the product of all cardinalities;
/// contract-fails above \p max_configurations.
double kl_divergence_exact(const BayesianNetwork& p,
                           const BayesianNetwork& q,
                           std::size_t max_configurations = 1u << 20);

/// Monte-Carlo KL(p || q) ≈ (1/n) Σ [log p(x) − log q(x)], x ~ p. Works
/// for any CPD mix (continuous included); nonnegative in expectation.
double kl_divergence_sampled(const BayesianNetwork& p,
                             const BayesianNetwork& q, std::size_t samples,
                             Rng& rng);

/// Joint log-probability of one full configuration under a network.
double joint_log_probability(const BayesianNetwork& net,
                             std::span<const double> row);

}  // namespace kertbn::bn
