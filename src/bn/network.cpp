#include "bn/network.hpp"

#include <cmath>
#include <numbers>
#include <sstream>

#include "bn/tabular_cpd.hpp"
#include "common/contract.hpp"

namespace kertbn::bn {

BayesianNetwork::BayesianNetwork(const BayesianNetwork& other)
    : dag_(other.dag_), vars_(other.vars_) {
  cpds_.reserve(other.cpds_.size());
  for (const auto& c : other.cpds_) {
    cpds_.push_back(c ? c->clone() : nullptr);
  }
}

BayesianNetwork& BayesianNetwork::operator=(const BayesianNetwork& other) {
  if (this == &other) return *this;
  BayesianNetwork tmp(other);
  *this = std::move(tmp);
  return *this;
}

std::size_t BayesianNetwork::add_node(Variable var) {
  const std::size_t v = dag_.add_node(var.name);
  vars_.push_back(std::move(var));
  cpds_.emplace_back();
  KERTBN_ENSURES(v == vars_.size() - 1);
  return v;
}

bool BayesianNetwork::add_edge(std::size_t parent, std::size_t child) {
  return dag_.add_edge(parent, child);
}

const Variable& BayesianNetwork::variable(std::size_t v) const {
  KERTBN_EXPECTS(v < vars_.size());
  return vars_[v];
}

void BayesianNetwork::set_cpd(std::size_t v, std::unique_ptr<Cpd> cpd) {
  KERTBN_EXPECTS(v < vars_.size());
  KERTBN_EXPECTS(cpd != nullptr);
  KERTBN_EXPECTS(cpd->parent_count() == dag_.in_degree(v));
  if (cpd->kind() == CpdKind::kTabular) {
    KERTBN_EXPECTS(vars_[v].is_discrete());
    const auto& tab = static_cast<const TabularCpd&>(*cpd);
    KERTBN_EXPECTS(tab.child_cardinality() == vars_[v].cardinality);
    const auto& pcards = tab.parent_cardinalities();
    const auto pars = dag_.parents(v);
    for (std::size_t i = 0; i < pars.size(); ++i) {
      KERTBN_EXPECTS(vars_[pars[i]].is_discrete());
      KERTBN_EXPECTS(pcards[i] == vars_[pars[i]].cardinality);
    }
  }
  cpds_[v] = std::move(cpd);
}

bool BayesianNetwork::has_cpd(std::size_t v) const {
  KERTBN_EXPECTS(v < cpds_.size());
  return cpds_[v] != nullptr;
}

const Cpd& BayesianNetwork::cpd(std::size_t v) const {
  KERTBN_EXPECTS(v < cpds_.size());
  KERTBN_EXPECTS(cpds_[v] != nullptr);
  return *cpds_[v];
}

bool BayesianNetwork::is_complete() const {
  for (std::size_t v = 0; v < size(); ++v) {
    if (!cpds_[v]) return false;
    if (cpds_[v]->parent_count() != dag_.in_degree(v)) return false;
  }
  return true;
}

void BayesianNetwork::gather_parent_values(std::size_t v,
                                           std::span<const double> row,
                                           std::vector<double>& buf) const {
  const auto pars = dag_.parents(v);
  buf.resize(pars.size());
  for (std::size_t i = 0; i < pars.size(); ++i) buf[i] = row[pars[i]];
}

std::vector<double> BayesianNetwork::sample_row(Rng& rng) const {
  KERTBN_EXPECTS(is_complete());
  std::vector<double> row(size(), 0.0);
  std::vector<double> parent_buf;
  for (std::size_t v : dag_.topological_order()) {
    gather_parent_values(v, row, parent_buf);
    row[v] = cpds_[v]->sample(parent_buf, rng);
  }
  return row;
}

Dataset BayesianNetwork::sample(std::size_t n, Rng& rng) const {
  std::vector<std::string> names;
  names.reserve(size());
  for (const auto& var : vars_) names.push_back(var.name);
  Dataset out(std::move(names));
  for (std::size_t i = 0; i < n; ++i) {
    out.add_row(sample_row(rng));
  }
  return out;
}

double BayesianNetwork::log_likelihood(const Dataset& data) const {
  double total = 0.0;
  for (std::size_t v = 0; v < size(); ++v) {
    total += node_log_likelihood(v, data);
  }
  return total;
}

double BayesianNetwork::node_log_likelihood(std::size_t v,
                                            const Dataset& data) const {
  KERTBN_EXPECTS(v < size());
  KERTBN_EXPECTS(cpds_[v] != nullptr);
  KERTBN_EXPECTS(data.cols() == size());
  std::vector<double> parent_buf;
  double total = 0.0;
  for (std::size_t r = 0; r < data.rows(); ++r) {
    const auto row = data.row(r);
    gather_parent_values(v, row, parent_buf);
    total += cpds_[v]->log_prob(row[v], parent_buf);
  }
  return total;
}

double BayesianNetwork::log10_likelihood(const Dataset& data) const {
  return log_likelihood(data) / std::numbers::ln10;
}

std::size_t BayesianNetwork::parameter_count() const {
  std::size_t total = 0;
  for (const auto& c : cpds_) {
    if (c) total += c->parameter_count();
  }
  return total;
}

std::string BayesianNetwork::describe() const {
  std::ostringstream out;
  for (std::size_t v = 0; v < size(); ++v) {
    out << vars_[v].name;
    const auto pars = dag_.parents(v);
    if (!pars.empty()) {
      out << " | ";
      for (std::size_t i = 0; i < pars.size(); ++i) {
        if (i > 0) out << ", ";
        out << vars_[pars[i]].name;
      }
    }
    out << " ~ " << (cpds_[v] ? cpds_[v]->describe() : "<unset>") << '\n';
  }
  return out.str();
}

}  // namespace kertbn::bn
