#include "bn/factor.hpp"

#include <algorithm>
#include <sstream>

#include "common/contract.hpp"

namespace kertbn::bn {
namespace {

std::size_t product_of(const std::vector<std::size_t>& xs) {
  std::size_t p = 1;
  for (std::size_t x : xs) p *= x;
  return p;
}

}  // namespace

Factor::Factor(std::vector<std::size_t> scope, std::vector<std::size_t> cards,
               std::vector<double> values)
    : scope_(std::move(scope)),
      cards_(std::move(cards)),
      values_(std::move(values)) {
  KERTBN_EXPECTS(scope_.size() == cards_.size());
  KERTBN_EXPECTS(values_.size() == product_of(cards_));
  for (std::size_t i = 0; i < scope_.size(); ++i) {
    KERTBN_EXPECTS(cards_[i] >= 1);
    for (std::size_t j = i + 1; j < scope_.size(); ++j) {
      KERTBN_EXPECTS(scope_[i] != scope_[j]);
    }
  }
}

Factor Factor::unit() { return Factor({}, {}, {1.0}); }

bool Factor::has_variable(std::size_t var) const {
  return std::find(scope_.begin(), scope_.end(), var) != scope_.end();
}

std::size_t Factor::linear_index(std::span<const std::size_t> states) const {
  KERTBN_EXPECTS(states.size() == scope_.size());
  std::size_t idx = 0;
  for (std::size_t i = 0; i < scope_.size(); ++i) {
    KERTBN_EXPECTS(states[i] < cards_[i]);
    idx = idx * cards_[i] + states[i];
  }
  return idx;
}

double Factor::at(std::span<const std::size_t> states) const {
  return values_[linear_index(states)];
}

Factor Factor::product(const Factor& other) const {
  // Merged scope: this factor's variables, then other's new ones.
  std::vector<std::size_t> scope = scope_;
  std::vector<std::size_t> cards = cards_;
  for (std::size_t i = 0; i < other.scope_.size(); ++i) {
    if (!has_variable(other.scope_[i])) {
      scope.push_back(other.scope_[i]);
      cards.push_back(other.cards_[i]);
    }
  }
  const std::size_t out_size = product_of(cards);

  // Position of each merged-scope variable inside each operand (or npos).
  constexpr std::size_t npos = static_cast<std::size_t>(-1);
  auto position_map = [&](const Factor& f) {
    std::vector<std::size_t> pos(scope.size(), npos);
    for (std::size_t i = 0; i < scope.size(); ++i) {
      auto it = std::find(f.scope_.begin(), f.scope_.end(), scope[i]);
      if (it != f.scope_.end()) {
        pos[i] = static_cast<std::size_t>(it - f.scope_.begin());
      }
    }
    return pos;
  };
  const auto pos_a = position_map(*this);
  const auto pos_b = position_map(other);

  std::vector<double> values(out_size);
  std::vector<std::size_t> states(scope.size(), 0);
  std::vector<std::size_t> sa(scope_.size());
  std::vector<std::size_t> sb(other.scope_.size());
  for (std::size_t idx = 0; idx < out_size; ++idx) {
    for (std::size_t i = 0; i < scope.size(); ++i) {
      if (pos_a[i] != npos) sa[pos_a[i]] = states[i];
      if (pos_b[i] != npos) sb[pos_b[i]] = states[i];
    }
    values[idx] = at(sa) * other.at(sb);
    // Advance mixed-radix counter (last variable fastest, matching
    // linear_index()).
    for (std::size_t i = scope.size(); i-- > 0;) {
      if (++states[i] < cards[i]) break;
      states[i] = 0;
    }
  }
  return Factor(std::move(scope), std::move(cards), std::move(values));
}

Factor Factor::reduce_out(std::size_t var, ReduceOp op) const {
  auto it = std::find(scope_.begin(), scope_.end(), var);
  KERTBN_EXPECTS(it != scope_.end());
  const auto drop = static_cast<std::size_t>(it - scope_.begin());

  std::vector<std::size_t> scope;
  std::vector<std::size_t> cards;
  for (std::size_t i = 0; i < scope_.size(); ++i) {
    if (i == drop) continue;
    scope.push_back(scope_[i]);
    cards.push_back(cards_[i]);
  }
  std::vector<double> values(product_of(cards), 0.0);

  // Strides in the source layout.
  std::size_t stride = 1;
  for (std::size_t i = scope_.size(); i-- > drop + 1;) stride *= cards_[i];
  const std::size_t var_card = cards_[drop];
  const std::size_t block = stride * var_card;

  std::size_t out = 0;
  for (std::size_t base = 0; base < values_.size(); base += block) {
    for (std::size_t inner = 0; inner < stride; ++inner, ++out) {
      if (op == ReduceOp::kSum) {
        double s = 0.0;
        for (std::size_t k = 0; k < var_card; ++k) {
          s += values_[base + k * stride + inner];
        }
        values[out] = s;
      } else {
        double best = values_[base + inner];
        for (std::size_t k = 1; k < var_card; ++k) {
          best = std::max(best, values_[base + k * stride + inner]);
        }
        values[out] = best;
      }
    }
  }
  return Factor(std::move(scope), std::move(cards), std::move(values));
}

Factor Factor::marginalize(std::size_t var) const {
  return reduce_out(var, ReduceOp::kSum);
}

Factor Factor::max_marginalize(std::size_t var) const {
  return reduce_out(var, ReduceOp::kMax);
}

std::size_t Factor::argmax_state() const {
  KERTBN_EXPECTS(scope_.size() == 1);
  std::size_t best = 0;
  for (std::size_t s = 1; s < values_.size(); ++s) {
    if (values_[s] > values_[best]) best = s;
  }
  return best;
}

Factor Factor::reduce(std::size_t var, std::size_t state) const {
  auto it = std::find(scope_.begin(), scope_.end(), var);
  KERTBN_EXPECTS(it != scope_.end());
  const auto drop = static_cast<std::size_t>(it - scope_.begin());
  KERTBN_EXPECTS(state < cards_[drop]);

  std::vector<std::size_t> scope;
  std::vector<std::size_t> cards;
  for (std::size_t i = 0; i < scope_.size(); ++i) {
    if (i == drop) continue;
    scope.push_back(scope_[i]);
    cards.push_back(cards_[i]);
  }
  std::vector<double> values;
  values.reserve(product_of(cards));

  std::size_t stride = 1;
  for (std::size_t i = scope_.size(); i-- > drop + 1;) stride *= cards_[i];
  const std::size_t block = stride * cards_[drop];

  for (std::size_t base = 0; base < values_.size(); base += block) {
    const std::size_t offset = base + state * stride;
    for (std::size_t inner = 0; inner < stride; ++inner) {
      values.push_back(values_[offset + inner]);
    }
  }
  return Factor(std::move(scope), std::move(cards), std::move(values));
}

Factor Factor::normalized() const {
  const double t = total();
  if (t <= 0.0) return *this;
  Factor out = *this;
  for (double& v : out.values_) v /= t;
  return out;
}

double Factor::total() const {
  double t = 0.0;
  for (double v : values_) t += v;
  return t;
}

std::string Factor::to_string() const {
  std::ostringstream out;
  out << "Factor(scope=[";
  for (std::size_t i = 0; i < scope_.size(); ++i) {
    if (i > 0) out << ", ";
    out << scope_[i];
  }
  out << "], size=" << values_.size() << ")";
  return out.str();
}

}  // namespace kertbn::bn
