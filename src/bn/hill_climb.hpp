#pragma once
/// \file hill_climb.hpp
/// Greedy hill-climbing structure search over the full DAG space: the
/// standard alternative to order-based K2. Moves are single-edge additions,
/// deletions and reversals; each step takes the best score-improving move
/// until a local optimum. Complements K2 as a second pure-data baseline
/// (K2's weakness is its dependence on the variable ordering; hill
/// climbing's is local optima — both motivate the paper's knowledge-given
/// structure).

#include "bn/scores.hpp"
#include "bn/structure_learning.hpp"

namespace kertbn::bn {

struct HillClimbOptions {
  std::size_t max_parents = 4;
  /// Safety cap on move iterations.
  std::size_t max_iterations = 1000;
  /// Minimum score gain to accept a move (guards float noise loops).
  double min_gain = 1e-9;
};

/// Hill climbs from the empty graph. Decomposability is exploited: each
/// move re-scores only the affected families.
StructureResult hill_climb_search(const Dataset& data,
                                  std::span<const Variable> vars,
                                  const FamilyScoreFn& score,
                                  const HillClimbOptions& opts = {});

}  // namespace kertbn::bn
