#include "bn/sampling_inference.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/contract.hpp"

namespace kertbn::bn {

double WeightedSamples::weight_total() const {
  double s = 0.0;
  for (double w : weights) s += w;
  return s;
}

double WeightedSamples::mean() const {
  const double wt = weight_total();
  if (wt <= 0.0) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    s += weights[i] * values[i];
  }
  return s / wt;
}

double WeightedSamples::variance() const {
  const double wt = weight_total();
  if (wt <= 0.0) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double d = values[i] - m;
    s += weights[i] * d * d;
  }
  return s / wt;
}

double WeightedSamples::exceedance(double threshold) const {
  const double wt = weight_total();
  if (wt <= 0.0) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] > threshold) s += weights[i];
  }
  return s / wt;
}

double WeightedSamples::effective_sample_size() const {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double w : weights) {
    sum += w;
    sum_sq += w * w;
  }
  if (sum_sq <= 0.0) return 0.0;
  return sum * sum / sum_sq;
}

std::vector<double> WeightedSamples::resample(std::size_t n, Rng& rng) const {
  KERTBN_EXPECTS(!values.empty());
  std::vector<double> out;
  out.reserve(n);
  // Systematic resampling keeps variance low for plotting.
  const double wt = weight_total();
  KERTBN_EXPECTS(wt > 0.0);
  const double step = wt / static_cast<double>(n);
  double target = rng.uniform() * step;
  double cumulative = 0.0;
  std::size_t i = 0;
  for (std::size_t k = 0; k < n; ++k) {
    while (cumulative + weights[i] < target && i + 1 < values.size()) {
      cumulative += weights[i];
      ++i;
    }
    out.push_back(values[i]);
    target += step;
  }
  return out;
}

WeightedSamples likelihood_weighted_posterior(
    const BayesianNetwork& net, std::size_t query,
    const ContinuousEvidenceMap& evidence, Rng& rng,
    const LikelihoodWeightingOptions& opts) {
  KERTBN_EXPECTS(net.is_complete());
  KERTBN_EXPECTS(query < net.size());
  KERTBN_EXPECTS(!evidence.contains(query));

  const auto order = net.dag().topological_order();
  WeightedSamples out;
  out.values.reserve(opts.samples);
  out.weights.reserve(opts.samples);

  // Weights are accumulated in log space and shifted by the max before
  // exponentiation: with near-deterministic CPDs (tiny leak sigma) raw
  // exp(log_w) would underflow every particle to zero.
  std::vector<double> log_weights;
  log_weights.reserve(opts.samples);
  double max_log_w = -std::numeric_limits<double>::infinity();

  std::vector<double> row(net.size(), 0.0);
  std::vector<double> parent_buf;
  for (std::size_t s = 0; s < opts.samples; ++s) {
    double log_w = 0.0;
    for (std::size_t v : order) {
      const auto pars = net.dag().parents(v);
      parent_buf.resize(pars.size());
      for (std::size_t i = 0; i < pars.size(); ++i) {
        parent_buf[i] = row[pars[i]];
      }
      auto it = evidence.find(v);
      if (it != evidence.end()) {
        row[v] = it->second;
        log_w += net.cpd(v).log_prob(row[v], parent_buf);
      } else {
        row[v] = net.cpd(v).sample(parent_buf, rng);
      }
    }
    out.values.push_back(row[query]);
    log_weights.push_back(log_w);
    max_log_w = std::max(max_log_w, log_w);
  }
  for (double lw : log_weights) {
    out.weights.push_back(std::exp(lw - max_log_w));
  }
  return out;
}

std::vector<double> forward_marginal(const BayesianNetwork& net,
                                     std::size_t query, std::size_t n,
                                     Rng& rng) {
  KERTBN_EXPECTS(query < net.size());
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(net.sample_row(rng)[query]);
  }
  return out;
}

}  // namespace kertbn::bn
