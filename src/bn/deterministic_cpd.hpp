#pragma once
/// \file deterministic_cpd.hpp
/// Deterministic-with-leak CPD (Equation 4 of the paper).
///
/// The response-time node D is a deterministic function f of its parents —
/// derived from the workflow (sequence → sum, parallel → max, …) — except
/// for a "leak" probability l accounting for measurement imprecision around
/// restricted monitoring-point placement. For continuous networks the leak
/// is realized as additive Gaussian noise whose scale is configured from l;
/// the discrete realization (a CPT with mass 1−l on bin(f(x))) is built by
/// kert::make_deterministic_cpt.

#include <functional>
#include <string>

#include "bn/cpd.hpp"

namespace kertbn::bn {

/// Deterministic link function with a printable form, e.g.
/// "X1 + X2 + max(X3 + X5, X4 + X6)".
struct DeterministicFn {
  std::function<double(std::span<const double>)> fn;
  std::string expression;
  std::size_t arity = 0;
};

/// Continuous deterministic CPD with leak noise:
/// X | parents ~ N(f(parents), sigma_leak²).
class DeterministicCpd final : public Cpd {
 public:
  /// \p leak_sigma > 0 keeps log-densities finite; the paper's simulations
  /// set l = 0, which we map to a small floor (default 1e-3 of a second).
  DeterministicCpd(DeterministicFn fn, double leak_sigma = 1e-3);

  const DeterministicFn& function() const { return fn_; }
  double leak_sigma() const { return leak_sigma_; }

  /// Evaluates the noiseless f(parents).
  double evaluate(std::span<const double> parents) const;

  // Cpd interface.
  CpdKind kind() const override { return CpdKind::kDeterministic; }
  std::size_t parent_count() const override { return fn_.arity; }
  double log_prob(double value, std::span<const double> parents) const override;
  double sample(std::span<const double> parents, Rng& rng) const override;
  double mean(std::span<const double> parents) const override {
    return evaluate(parents);
  }
  std::unique_ptr<Cpd> clone() const override;
  std::string describe() const override;
  /// The function comes from knowledge, not data: no free parameters.
  std::size_t parameter_count() const override { return 0; }

 private:
  DeterministicFn fn_;
  double leak_sigma_;
};

}  // namespace kertbn::bn
