#include "bn/gibbs.hpp"

#include <cmath>

#include "common/contract.hpp"
#include "obs/span.hpp"

namespace kertbn::bn {

GibbsSampler::GibbsSampler(const BayesianNetwork& net) : net_(net) {
  KERTBN_EXPECTS(net.is_complete());
  children_.resize(net.size());
  for (std::size_t v = 0; v < net.size(); ++v) {
    KERTBN_EXPECTS(net.variable(v).is_discrete());
    for (std::size_t c : net.dag().children(v)) {
      children_[v].push_back(c);
    }
  }
}

double GibbsSampler::sample_full_conditional(std::size_t v,
                                             std::vector<double>& state,
                                             Rng& rng) const {
  const std::size_t card = net_.variable(v).cardinality;
  std::vector<double> log_weights(card, 0.0);
  std::vector<double> parent_buf;

  auto parent_values = [&](std::size_t node) {
    const auto pars = net_.dag().parents(node);
    parent_buf.resize(pars.size());
    for (std::size_t i = 0; i < pars.size(); ++i) {
      parent_buf[i] = state[pars[i]];
    }
  };

  const double original = state[v];
  for (std::size_t s = 0; s < card; ++s) {
    state[v] = static_cast<double>(s);
    parent_values(v);
    double lw = net_.cpd(v).log_prob(state[v], parent_buf);
    // Markov blanket: each child's likelihood given its parents.
    for (std::size_t c : children_[v]) {
      parent_values(c);
      lw += net_.cpd(c).log_prob(state[c], parent_buf);
    }
    log_weights[s] = lw;
  }
  state[v] = original;

  // Normalize in log space and draw.
  double max_lw = log_weights[0];
  for (double lw : log_weights) max_lw = std::max(max_lw, lw);
  std::vector<double> weights(card);
  for (std::size_t s = 0; s < card; ++s) {
    weights[s] = std::exp(log_weights[s] - max_lw);
  }
  return static_cast<double>(rng.categorical(weights));
}

void GibbsSampler::sweep(std::vector<double>& state,
                         const std::vector<std::size_t>& free_nodes,
                         Rng& rng) const {
  for (std::size_t v : free_nodes) {
    state[v] = sample_full_conditional(v, state, rng);
  }
}

std::vector<std::vector<double>> GibbsSampler::all_posteriors(
    const std::map<std::size_t, std::size_t>& evidence, Rng& rng,
    const GibbsOptions& opts) {
  KERTBN_EXPECTS(opts.samples >= 1);
  KERTBN_EXPECTS(opts.thin >= 1);
  KERTBN_SPAN_VAR(span, "gibbs.run");
  const std::uint64_t total_sweeps = opts.burn_in + opts.samples * opts.thin;
  span.tag("sweeps", total_sweeps);
  span.tag("evidence", static_cast<std::uint64_t>(evidence.size()));

  // Initialize from a forward sample, then clamp evidence.
  std::vector<double> state = net_.sample_row(rng);
  std::vector<std::size_t> free_nodes;
  for (std::size_t v = 0; v < net_.size(); ++v) {
    auto it = evidence.find(v);
    if (it != evidence.end()) {
      KERTBN_EXPECTS(it->second < net_.variable(v).cardinality);
      state[v] = static_cast<double>(it->second);
    } else {
      free_nodes.push_back(v);
    }
  }

  for (std::size_t i = 0; i < opts.burn_in; ++i) {
    sweep(state, free_nodes, rng);
  }

  std::vector<std::vector<double>> counts(net_.size());
  for (std::size_t v = 0; v < net_.size(); ++v) {
    counts[v].assign(net_.variable(v).cardinality, 0.0);
  }
  for (std::size_t i = 0; i < opts.samples; ++i) {
    for (std::size_t t = 0; t < opts.thin; ++t) {
      sweep(state, free_nodes, rng);
    }
    for (std::size_t v : free_nodes) {
      counts[v][static_cast<std::size_t>(state[v])] += 1.0;
    }
  }
  for (std::size_t v : free_nodes) {
    for (double& c : counts[v]) c /= static_cast<double>(opts.samples);
  }
  for (const auto& [v, s] : evidence) {
    counts[v][s] = 1.0;
  }
  if (obs::enabled()) {
    static obs::Counter& sweeps =
        obs::MetricsRegistry::instance().counter("gibbs.sweeps");
    sweeps.add(total_sweeps);
  }
  return counts;
}

std::vector<double> GibbsSampler::posterior(
    std::size_t query, const std::map<std::size_t, std::size_t>& evidence,
    Rng& rng, const GibbsOptions& opts) {
  KERTBN_EXPECTS(query < net_.size());
  KERTBN_EXPECTS(!evidence.contains(query));
  return all_posteriors(evidence, rng, opts)[query];
}

}  // namespace kertbn::bn
