#include "bn/factor_simd.hpp"

#include "common/cpu_features.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define KERTBN_X86_SIMD 1
#include <immintrin.h>
#endif

namespace kertbn::bn::simd_kernels {
namespace {

// ---------------------------------------------------------------------------
// Scalar tier — the reference semantics. Each loop performs the same
// floating-point operations in the same order as the legacy Factor code,
// so the scalar tier is bit-identical to it.
// ---------------------------------------------------------------------------

double chain_at(const ChainOp* ops, std::size_t nops, std::size_t i) {
  double acc = ops[0].p[i * ops[0].step];
  for (std::size_t k = 1; k < nops; ++k) acc *= ops[k].p[i * ops[k].step];
  return acc;
}

/// Per-operand passes instead of a per-element operand loop: each pass is
/// a tight stream/broadcast loop the compiler vectorizes, and every out[i]
/// still accumulates its product in the same left-to-right operand order,
/// so the result is bit-identical to the per-element fold.
void chain_mul_scalar(double* out, const ChainOp* ops, std::size_t nops,
                      std::size_t n) {
  if (ops[0].step) {
    for (std::size_t i = 0; i < n; ++i) out[i] = ops[0].p[i];
  } else {
    const double c = *ops[0].p;
    for (std::size_t i = 0; i < n; ++i) out[i] = c;
  }
  for (std::size_t k = 1; k < nops; ++k) {
    if (ops[k].step) {
      const double* p = ops[k].p;
      for (std::size_t i = 0; i < n; ++i) out[i] *= p[i];
    } else {
      const double c = *ops[k].p;
      for (std::size_t i = 0; i < n; ++i) out[i] *= c;
    }
  }
}

/// Accumulating variants build the chain product pass-wise in a chunk
/// buffer and then fold the chunk into the destination, preserving both
/// the per-element operand order and the i-ascending accumulation order.
constexpr std::size_t kChunk = 128;

/// Short runs (coarse-binned models produce 2-9 element runs) skip the
/// chunk machinery; the fold performs the identical operation order.
constexpr std::size_t kMinChunkLen = 16;

void chain_fma_scalar(double* out, const ChainOp* ops, std::size_t nops,
                      std::size_t n) {
  if (n < kMinChunkLen) {
    for (std::size_t i = 0; i < n; ++i) out[i] += chain_at(ops, nops, i);
    return;
  }
  double buf[kChunk];
  std::size_t at = 0;
  while (at < n) {
    const std::size_t len = (n - at < kChunk) ? (n - at) : kChunk;
    if (nops <= 16) {
      ChainOp shifted[16];
      for (std::size_t k = 0; k < nops; ++k) {
        shifted[k] = {ops[k].p + (ops[k].step ? at : 0), ops[k].step};
      }
      chain_mul_scalar(buf, shifted, nops, len);
      for (std::size_t i = 0; i < len; ++i) out[at + i] += buf[i];
    } else {
      for (std::size_t i = 0; i < len; ++i) {
        out[at + i] += chain_at(ops, nops, at + i);
      }
    }
    at += len;
  }
}

double chain_dot_scalar(const ChainOp* ops, std::size_t nops, std::size_t n) {
  double acc = 0.0;
  if (n < kMinChunkLen) {
    for (std::size_t i = 0; i < n; ++i) acc += chain_at(ops, nops, i);
    return acc;
  }
  double buf[kChunk];
  std::size_t at = 0;
  while (at < n) {
    const std::size_t len = (n - at < kChunk) ? (n - at) : kChunk;
    if (nops <= 16) {
      ChainOp shifted[16];
      for (std::size_t k = 0; k < nops; ++k) {
        shifted[k] = {ops[k].p + (ops[k].step ? at : 0), ops[k].step};
      }
      chain_mul_scalar(buf, shifted, nops, len);
      for (std::size_t i = 0; i < len; ++i) acc += buf[i];
    } else {
      for (std::size_t i = 0; i < len; ++i) acc += chain_at(ops, nops, at + i);
    }
    at += len;
  }
  return acc;
}

void reduce_cols_scalar(double* out, const double* in, std::size_t stride,
                        std::size_t card) {
  for (std::size_t i = 0; i < stride; ++i) {
    double acc = 0.0;
    for (std::size_t k = 0; k < card; ++k) acc += in[k * stride + i];
    out[i] = acc;
  }
}

double hsum_scalar(const double* p, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += p[i];
  return acc;
}

constexpr KernelOps kScalarOps = {chain_mul_scalar, chain_fma_scalar,
                                  chain_dot_scalar, reduce_cols_scalar,
                                  hsum_scalar};

#if KERTBN_X86_SIMD

// ---------------------------------------------------------------------------
// AVX2 + FMA tier — 4 doubles per op. Broadcast operands use vbroadcastsd
// (a plain load uop), so re-broadcasting inside the loop costs the same as
// a contiguous load and no per-operand state needs hoisting. Horizontal
// reductions use a FIXED lane order (((l0+l1)+l2)+l3) so results are
// deterministic run to run — re-associated relative to scalar, never
// relative to themselves.
// ---------------------------------------------------------------------------

__attribute__((target("avx2,fma"))) inline __m256d
chain_at4(const ChainOp* ops, std::size_t nops, std::size_t i) {
  __m256d acc = ops[0].step ? _mm256_loadu_pd(ops[0].p + i)
                            : _mm256_set1_pd(*ops[0].p);
  for (std::size_t k = 1; k < nops; ++k) {
    const __m256d v = ops[k].step ? _mm256_loadu_pd(ops[k].p + i)
                                  : _mm256_set1_pd(*ops[k].p);
    acc = _mm256_mul_pd(acc, v);
  }
  return acc;
}

__attribute__((target("avx2"))) inline double hadd4(__m256d v) {
  alignas(32) double lane[4];
  _mm256_store_pd(lane, v);
  return ((lane[0] + lane[1]) + lane[2]) + lane[3];
}

__attribute__((target("avx2,fma"))) void chain_mul_avx2(double* out,
                                                        const ChainOp* ops,
                                                        std::size_t nops,
                                                        std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) _mm256_storeu_pd(out + i, chain_at4(ops, nops, i));
  for (; i < n; ++i) out[i] = chain_at(ops, nops, i);
}

__attribute__((target("avx2,fma"))) void chain_fma_avx2(double* out,
                                                        const ChainOp* ops,
                                                        std::size_t nops,
                                                        std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d sum = _mm256_add_pd(_mm256_loadu_pd(out + i),
                                      chain_at4(ops, nops, i));
    _mm256_storeu_pd(out + i, sum);
  }
  for (; i < n; ++i) out[i] += chain_at(ops, nops, i);
}

__attribute__((target("avx2,fma"))) double chain_dot_avx2(const ChainOp* ops,
                                                          std::size_t nops,
                                                          std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) acc = _mm256_add_pd(acc, chain_at4(ops, nops, i));
  double total = hadd4(acc);
  for (; i < n; ++i) total += chain_at(ops, nops, i);
  return total;
}

__attribute__((target("avx2"))) void reduce_cols_avx2(double* out,
                                                      const double* in,
                                                      std::size_t stride,
                                                      std::size_t card) {
  std::size_t i = 0;
  for (; i + 4 <= stride; i += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t k = 0; k < card; ++k) {
      acc = _mm256_add_pd(acc, _mm256_loadu_pd(in + k * stride + i));
    }
    _mm256_storeu_pd(out + i, acc);
  }
  for (; i < stride; ++i) {
    double acc = 0.0;
    for (std::size_t k = 0; k < card; ++k) acc += in[k * stride + i];
    out[i] = acc;
  }
}

__attribute__((target("avx2"))) double hsum_avx2(const double* p,
                                                 std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) acc = _mm256_add_pd(acc, _mm256_loadu_pd(p + i));
  double total = hadd4(acc);
  for (; i < n; ++i) total += p[i];
  return total;
}

constexpr KernelOps kAvx2Ops = {chain_mul_avx2, chain_fma_avx2,
                                chain_dot_avx2, reduce_cols_avx2, hsum_avx2};

// ---------------------------------------------------------------------------
// AVX-512 F/DQ tier — 8 doubles per op, masked tails where profitable.
// ---------------------------------------------------------------------------

__attribute__((target("avx512f,avx512dq"))) inline __m512d
chain_at8(const ChainOp* ops, std::size_t nops, std::size_t i) {
  __m512d acc = ops[0].step ? _mm512_loadu_pd(ops[0].p + i)
                            : _mm512_set1_pd(*ops[0].p);
  for (std::size_t k = 1; k < nops; ++k) {
    const __m512d v = ops[k].step ? _mm512_loadu_pd(ops[k].p + i)
                                  : _mm512_set1_pd(*ops[k].p);
    acc = _mm512_mul_pd(acc, v);
  }
  return acc;
}

__attribute__((target("avx512f,avx512dq"))) inline double hadd8(__m512d v) {
  alignas(64) double lane[8];
  _mm512_store_pd(lane, v);
  double total = lane[0];
  for (int k = 1; k < 8; ++k) total += lane[k];
  return total;
}

__attribute__((target("avx512f,avx512dq"))) void chain_mul_avx512(
    double* out, const ChainOp* ops, std::size_t nops, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) _mm512_storeu_pd(out + i, chain_at8(ops, nops, i));
  for (; i < n; ++i) out[i] = chain_at(ops, nops, i);
}

__attribute__((target("avx512f,avx512dq"))) void chain_fma_avx512(
    double* out, const ChainOp* ops, std::size_t nops, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d sum = _mm512_add_pd(_mm512_loadu_pd(out + i),
                                      chain_at8(ops, nops, i));
    _mm512_storeu_pd(out + i, sum);
  }
  for (; i < n; ++i) out[i] += chain_at(ops, nops, i);
}

__attribute__((target("avx512f,avx512dq"))) double chain_dot_avx512(
    const ChainOp* ops, std::size_t nops, std::size_t n) {
  __m512d acc = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) acc = _mm512_add_pd(acc, chain_at8(ops, nops, i));
  double total = hadd8(acc);
  for (; i < n; ++i) total += chain_at(ops, nops, i);
  return total;
}

__attribute__((target("avx512f,avx512dq"))) void reduce_cols_avx512(
    double* out, const double* in, std::size_t stride, std::size_t card) {
  std::size_t i = 0;
  for (; i + 8 <= stride; i += 8) {
    __m512d acc = _mm512_setzero_pd();
    for (std::size_t k = 0; k < card; ++k) {
      acc = _mm512_add_pd(acc, _mm512_loadu_pd(in + k * stride + i));
    }
    _mm512_storeu_pd(out + i, acc);
  }
  for (; i < stride; ++i) {
    double acc = 0.0;
    for (std::size_t k = 0; k < card; ++k) acc += in[k * stride + i];
    out[i] = acc;
  }
}

__attribute__((target("avx512f,avx512dq"))) double hsum_avx512(const double* p,
                                                               std::size_t n) {
  __m512d acc = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) acc = _mm512_add_pd(acc, _mm512_loadu_pd(p + i));
  double total = hadd8(acc);
  for (; i < n; ++i) total += p[i];
  return total;
}

constexpr KernelOps kAvx512Ops = {chain_mul_avx512, chain_fma_avx512,
                                  chain_dot_avx512, reduce_cols_avx512,
                                  hsum_avx512};

#endif  // KERTBN_X86_SIMD

}  // namespace

const KernelOps& active_ops() {
#if KERTBN_X86_SIMD
  switch (kertbn::simd::active_tier()) {
    case kertbn::simd::Tier::kAvx512:
      return kAvx512Ops;
    case kertbn::simd::Tier::kAvx2:
      return kAvx2Ops;
    case kertbn::simd::Tier::kScalar:
      break;
  }
#endif
  return kScalarOps;
}

}  // namespace kertbn::bn::simd_kernels
