#include "bn/gaussian_inference.hpp"

#include <algorithm>
#include <cmath>

#include "bn/linear_gaussian_cpd.hpp"
#include "common/contract.hpp"
#include "common/stats.hpp"

namespace kertbn::bn {

double GaussianDistribution::mean_of(std::size_t v) const {
  auto it = std::find(nodes.begin(), nodes.end(), v);
  KERTBN_EXPECTS(it != nodes.end());
  return mean[static_cast<std::size_t>(it - nodes.begin())];
}

double GaussianDistribution::variance_of(std::size_t v) const {
  auto it = std::find(nodes.begin(), nodes.end(), v);
  KERTBN_EXPECTS(it != nodes.end());
  const auto i = static_cast<std::size_t>(it - nodes.begin());
  return covariance(i, i);
}

double GaussianDistribution::exceedance(std::size_t v,
                                        double threshold) const {
  const double m = mean_of(v);
  const double var = std::max(variance_of(v), 1e-18);
  return 1.0 - gaussian_cdf(threshold, m, std::sqrt(var));
}

GaussianDistribution joint_gaussian(const BayesianNetwork& net) {
  KERTBN_EXPECTS(net.is_complete());
  const std::size_t n = net.size();
  GaussianDistribution joint;
  joint.nodes.resize(n);
  for (std::size_t v = 0; v < n; ++v) joint.nodes[v] = v;
  joint.mean = la::Vector(n);
  joint.covariance = la::Matrix(n, n);

  // Standard incremental construction: in topological order,
  //   mu_v        = b0 + w · mu_pa
  //   Cov(v, u)   = Σ_p w_p Cov(p, u)            for previously placed u
  //   Var(v)      = σ² + Σ_p Σ_q w_p w_q Cov(p, q)
  for (std::size_t v : net.dag().topological_order()) {
    KERTBN_EXPECTS(net.cpd(v).kind() == CpdKind::kLinearGaussian);
    const auto& cpd = static_cast<const LinearGaussianCpd&>(net.cpd(v));
    const auto pars = net.dag().parents(v);
    const auto& w = cpd.weights();

    double mu = cpd.intercept();
    for (std::size_t i = 0; i < pars.size(); ++i) {
      mu += w[i] * joint.mean[pars[i]];
    }
    joint.mean[v] = mu;

    for (std::size_t u = 0; u < n; ++u) {
      if (u == v) continue;
      double cov = 0.0;
      for (std::size_t i = 0; i < pars.size(); ++i) {
        cov += w[i] * joint.covariance(pars[i], u);
      }
      joint.covariance(v, u) = cov;
      joint.covariance(u, v) = cov;
    }
    double var = cpd.sigma() * cpd.sigma();
    for (std::size_t i = 0; i < pars.size(); ++i) {
      for (std::size_t j = 0; j < pars.size(); ++j) {
        var += w[i] * w[j] * joint.covariance(pars[i], pars[j]);
      }
    }
    joint.covariance(v, v) = var;
  }
  return joint;
}

GaussianDistribution condition(const GaussianDistribution& joint,
                               const ContinuousEvidence& evidence) {
  KERTBN_EXPECTS(!evidence.empty());
  std::vector<std::size_t> obs_pos;
  std::vector<std::size_t> query_pos;
  la::Vector delta(evidence.size());

  std::size_t oi = 0;
  for (std::size_t i = 0; i < joint.nodes.size(); ++i) {
    auto it = evidence.find(joint.nodes[i]);
    if (it != evidence.end()) {
      obs_pos.push_back(i);
      delta[oi++] = it->second - joint.mean[i];
    } else {
      query_pos.push_back(i);
    }
  }
  KERTBN_EXPECTS(obs_pos.size() == evidence.size());
  KERTBN_EXPECTS(!query_pos.empty());

  const la::Matrix s_oo = joint.covariance.submatrix(obs_pos, obs_pos);
  const la::Matrix s_qo = joint.covariance.submatrix(query_pos, obs_pos);
  const la::Matrix s_qq = joint.covariance.submatrix(query_pos, query_pos);

  // Regularize lightly in case evidence covariance is near-singular
  // (deterministic leak sigma can make it so).
  la::Matrix s_oo_reg = s_oo;
  for (std::size_t i = 0; i < s_oo_reg.rows(); ++i) {
    s_oo_reg(i, i) += 1e-12;
  }
  auto chol = la::Cholesky::factor(s_oo_reg);
  for (double boost = 1e-9; !chol.has_value() && boost <= 1.0;
       boost *= 10.0) {
    la::Matrix bumped = s_oo;
    for (std::size_t i = 0; i < bumped.rows(); ++i) bumped(i, i) += boost;
    chol = la::Cholesky::factor(bumped);
  }
  KERTBN_EXPECTS(chol.has_value());

  // Posterior mean: mu_q + S_qo S_oo^{-1} (x_o - mu_o).
  const la::Vector gain = chol->solve(delta);
  GaussianDistribution post;
  post.nodes.reserve(query_pos.size());
  post.mean = la::Vector(query_pos.size());
  for (std::size_t i = 0; i < query_pos.size(); ++i) {
    post.nodes.push_back(joint.nodes[query_pos[i]]);
    double m = joint.mean[query_pos[i]];
    for (std::size_t j = 0; j < obs_pos.size(); ++j) {
      m += s_qo(i, j) * gain[j];
    }
    post.mean[i] = m;
  }

  // Posterior covariance: S_qq - S_qo S_oo^{-1} S_oq.
  const la::Matrix s_oq = s_qo.transposed();
  const la::Matrix solved = chol->solve(s_oq);  // S_oo^{-1} S_oq
  post.covariance = s_qq - s_qo * solved;
  // Clamp tiny negative diagonal from round-off.
  for (std::size_t i = 0; i < post.covariance.rows(); ++i) {
    if (post.covariance(i, i) < 0.0) post.covariance(i, i) = 0.0;
  }
  return post;
}

ScalarPosterior gaussian_posterior(const BayesianNetwork& net,
                                   std::size_t query,
                                   const ContinuousEvidence& evidence) {
  KERTBN_EXPECTS(!evidence.contains(query));
  const GaussianDistribution joint = joint_gaussian(net);
  const GaussianDistribution post = condition(joint, evidence);
  return ScalarPosterior{post.mean_of(query), post.variance_of(query)};
}

}  // namespace kertbn::bn
