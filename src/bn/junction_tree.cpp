#include "bn/junction_tree.hpp"

#include <algorithm>
#include <functional>
#include <numeric>

#include "bn/tabular_cpd.hpp"
#include "common/contract.hpp"
#include "obs/span.hpp"

namespace kertbn::bn {
namespace {

/// Sums out every scope variable of \p f not in \p target.
Factor marginalize_to(Factor f, std::span<const std::size_t> target) {
  // Iterate until fixed point: scope shrinks each step.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t v : f.scope()) {
      if (std::find(target.begin(), target.end(), v) == target.end()) {
        f = f.marginalize(v);
        changed = true;
        break;
      }
    }
  }
  return f;
}

bool is_subset(const std::vector<std::size_t>& a,
               const std::vector<std::size_t>& b) {
  // Both sorted.
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

}  // namespace

JunctionTree::JunctionTree(const BayesianNetwork& net) : net_(net) {
  KERTBN_EXPECTS(net.is_complete());
  for (std::size_t v = 0; v < net.size(); ++v) {
    KERTBN_EXPECTS(net.variable(v).is_discrete());
    KERTBN_EXPECTS(net.cpd(v).kind() == CpdKind::kTabular);
  }
  KERTBN_SPAN_VAR(span, "jt.build");
  build_structure();
  calibrate({});
  span.tag("cliques", static_cast<std::uint64_t>(cliques_.size()));
  span.tag("max_clique", static_cast<std::uint64_t>(max_clique_size()));
}

void JunctionTree::build_structure() {
  const std::size_t n = net_.size();

  // Moral graph adjacency.
  std::vector<std::vector<bool>> adj(n, std::vector<bool>(n, false));
  auto connect = [&](std::size_t a, std::size_t b) {
    if (a != b) {
      adj[a][b] = true;
      adj[b][a] = true;
    }
  };
  for (std::size_t v = 0; v < n; ++v) {
    const auto pars = net_.dag().parents(v);
    for (std::size_t p : pars) connect(p, v);
    for (std::size_t i = 0; i < pars.size(); ++i) {
      for (std::size_t j = i + 1; j < pars.size(); ++j) {
        connect(pars[i], pars[j]);
      }
    }
  }

  // Min-fill elimination producing candidate cliques.
  std::vector<bool> eliminated(n, false);
  std::vector<std::vector<std::size_t>> candidates;
  for (std::size_t round = 0; round < n; ++round) {
    // Pick the remaining node whose elimination adds fewest fill edges.
    std::size_t best = n;
    std::size_t best_fill = static_cast<std::size_t>(-1);
    for (std::size_t v = 0; v < n; ++v) {
      if (eliminated[v]) continue;
      std::vector<std::size_t> nbrs;
      for (std::size_t u = 0; u < n; ++u) {
        if (!eliminated[u] && adj[v][u]) nbrs.push_back(u);
      }
      std::size_t fill = 0;
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
          if (!adj[nbrs[i]][nbrs[j]]) ++fill;
        }
      }
      if (fill < best_fill) {
        best_fill = fill;
        best = v;
      }
    }
    KERTBN_ASSERT(best < n);

    std::vector<std::size_t> clique{best};
    for (std::size_t u = 0; u < n; ++u) {
      if (!eliminated[u] && adj[best][u]) clique.push_back(u);
    }
    std::sort(clique.begin(), clique.end());
    candidates.push_back(std::move(clique));

    // Fill in, then eliminate.
    const auto& cl = candidates.back();
    for (std::size_t i = 0; i < cl.size(); ++i) {
      for (std::size_t j = i + 1; j < cl.size(); ++j) {
        connect(cl[i], cl[j]);
      }
    }
    eliminated[best] = true;
  }

  // Keep only maximal cliques.
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    bool maximal = true;
    for (std::size_t j = 0; j < candidates.size(); ++j) {
      if (i == j) continue;
      if (candidates[i].size() < candidates[j].size() &&
          is_subset(candidates[i], candidates[j])) {
        maximal = false;
        break;
      }
      if (i > j && candidates[i] == candidates[j]) {
        maximal = false;  // duplicate: keep the first copy only
        break;
      }
    }
    if (maximal) cliques_.push_back(candidates[i]);
  }

  // Maximum-weight spanning forest over separator sizes (Kruskal).
  struct Candidate {
    std::size_t a;
    std::size_t b;
    std::vector<std::size_t> sep;
  };
  std::vector<Candidate> all_edges;
  for (std::size_t a = 0; a < cliques_.size(); ++a) {
    for (std::size_t b = a + 1; b < cliques_.size(); ++b) {
      std::vector<std::size_t> sep;
      std::set_intersection(cliques_[a].begin(), cliques_[a].end(),
                            cliques_[b].begin(), cliques_[b].end(),
                            std::back_inserter(sep));
      if (!sep.empty()) {
        all_edges.push_back({a, b, std::move(sep)});
      }
    }
  }
  std::sort(all_edges.begin(), all_edges.end(),
            [](const Candidate& x, const Candidate& y) {
              return x.sep.size() > y.sep.size();
            });
  std::vector<std::size_t> parent(cliques_.size());
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  neighbors_.assign(cliques_.size(), {});
  for (auto& e : all_edges) {
    const std::size_t ra = find(e.a);
    const std::size_t rb = find(e.b);
    if (ra == rb) continue;
    parent[ra] = rb;
    neighbors_[e.a].push_back(e.b);
    neighbors_[e.b].push_back(e.a);
    edges_.push_back({e.a, e.b, std::move(e.sep)});
  }

  // Assign each node's family to a containing clique.
  family_clique_.assign(net_.size(), 0);
  for (std::size_t v = 0; v < net_.size(); ++v) {
    std::vector<std::size_t> family(net_.dag().parents(v).begin(),
                                    net_.dag().parents(v).end());
    family.push_back(v);
    std::sort(family.begin(), family.end());
    bool found = false;
    for (std::size_t c = 0; c < cliques_.size(); ++c) {
      if (is_subset(family, cliques_[c])) {
        family_clique_[v] = c;
        found = true;
        break;
      }
    }
    KERTBN_ASSERT(found && "family must fit a clique (triangulation bug)");
  }
}

Factor JunctionTree::clique_base_factor(
    std::size_t c,
    const std::map<std::size_t, std::size_t>& evidence) const {
  Factor base = Factor::unit();
  for (std::size_t v = 0; v < net_.size(); ++v) {
    if (family_clique_[v] != c) continue;
    // Family factor: parents (most significant) then child, matching the
    // CPT layout (same construction as VariableElimination::node_factor).
    const auto& cpt = static_cast<const TabularCpd&>(net_.cpd(v));
    const auto pars = net_.dag().parents(v);
    std::vector<std::size_t> scope(pars.begin(), pars.end());
    scope.push_back(v);
    std::vector<std::size_t> cards = cpt.parent_cardinalities();
    cards.push_back(cpt.child_cardinality());
    std::vector<double> values;
    values.reserve(cpt.config_count() * cpt.child_cardinality());
    for (std::size_t cfg = 0; cfg < cpt.config_count(); ++cfg) {
      for (std::size_t s = 0; s < cpt.child_cardinality(); ++s) {
        values.push_back(cpt.probability(cfg, s));
      }
    }
    base = base.product(
        Factor(std::move(scope), std::move(cards), std::move(values)));
  }
  // Fold evidence indicators for variables of this clique whose indicator
  // has not been attached elsewhere (attach at the variable's family
  // clique to apply each exactly once).
  for (const auto& [v, state] : evidence) {
    if (family_clique_[v] != c) continue;
    const std::size_t card = net_.variable(v).cardinality;
    KERTBN_EXPECTS(state < card);
    std::vector<double> indicator(card, 0.0);
    indicator[state] = 1.0;
    base = base.product(Factor({v}, {card}, std::move(indicator)));
  }
  return base;
}

void JunctionTree::calibrate(
    const std::map<std::size_t, std::size_t>& evidence) {
  KERTBN_SPAN_VAR(span, "jt.calibrate");
  span.tag("evidence", static_cast<std::uint64_t>(evidence.size()));
  evidence_ = evidence;
  const std::size_t m = cliques_.size();
  std::vector<Factor> base(m);
  for (std::size_t c = 0; c < m; ++c) {
    base[c] = clique_base_factor(c, evidence);
  }

  // Messages between adjacent cliques, keyed by (from, to).
  std::map<std::pair<std::size_t, std::size_t>, Factor> messages;
  auto separator_of = [&](std::size_t a, std::size_t b)
      -> const std::vector<std::size_t>& {
    for (const Edge& e : edges_) {
      if ((e.a == a && e.b == b) || (e.a == b && e.b == a)) {
        return e.separator;
      }
    }
    KERTBN_ASSERT(false && "no such tree edge");
    static const std::vector<std::size_t> kEmpty;
    return kEmpty;
  };

  auto product_with_messages = [&](std::size_t c, std::size_t except) {
    Factor f = base[c];
    for (std::size_t nb : neighbors_[c]) {
      if (nb == except) continue;
      auto it = messages.find({nb, c});
      if (it != messages.end()) f = f.product(it->second);
    }
    return f;
  };

  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  // Upward pass (collect) then downward pass (distribute), per component.
  std::function<void(std::size_t, std::size_t)> collect =
      [&](std::size_t c, std::size_t from) {
        for (std::size_t nb : neighbors_[c]) {
          if (nb == from) continue;
          collect(nb, c);
          messages[{nb, c}] = marginalize_to(product_with_messages(nb, c),
                                             separator_of(nb, c));
        }
      };
  std::function<void(std::size_t, std::size_t)> distribute =
      [&](std::size_t c, std::size_t from) {
        for (std::size_t nb : neighbors_[c]) {
          if (nb == from) continue;
          messages[{c, nb}] = marginalize_to(product_with_messages(c, nb),
                                             separator_of(c, nb));
          distribute(nb, c);
        }
      };

  std::vector<bool> visited(m, false);
  evidence_probability_ = 1.0;
  std::vector<std::size_t> roots;
  for (std::size_t c = 0; c < m; ++c) {
    if (visited[c]) continue;
    // Mark this component.
    std::vector<std::size_t> stack{c};
    visited[c] = true;
    while (!stack.empty()) {
      const std::size_t x = stack.back();
      stack.pop_back();
      for (std::size_t nb : neighbors_[x]) {
        if (!visited[nb]) {
          visited[nb] = true;
          stack.push_back(nb);
        }
      }
    }
    collect(c, kNone);
    distribute(c, kNone);
    roots.push_back(c);
  }

  beliefs_.assign(m, Factor::unit());
  for (std::size_t c = 0; c < m; ++c) {
    beliefs_[c] = product_with_messages(c, kNone);
  }
  for (std::size_t r : roots) {
    evidence_probability_ *= beliefs_[r].total();
  }
}

std::vector<double> JunctionTree::posterior(std::size_t v) const {
  KERTBN_EXPECTS(v < net_.size());
  KERTBN_EXPECTS(!evidence_.contains(v));
  const Factor marginal = marginalize_to(beliefs_[family_clique_[v]],
                                         std::vector<std::size_t>{v});
  const Factor normalized = marginal.normalized();
  KERTBN_ASSERT(normalized.scope().size() == 1 &&
                normalized.scope()[0] == v);
  return normalized.values();
}

std::size_t JunctionTree::max_clique_size() const {
  std::size_t m = 0;
  for (const auto& c : cliques_) m = std::max(m, c.size());
  return m;
}

}  // namespace kertbn::bn
