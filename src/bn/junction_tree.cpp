#include "bn/junction_tree.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <numeric>

#include "bn/tabular_cpd.hpp"
#include "common/contract.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace kertbn::bn {
namespace {

bool is_subset(const std::vector<std::size_t>& a,
               const std::vector<std::size_t>& b) {
  // Both sorted.
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

void note_messages(std::size_t recomputed, std::size_t reused) {
  if (!obs::enabled()) return;
  static obs::Counter& rec = obs::MetricsRegistry::instance().counter(
      "kert.query.messages_recomputed");
  static obs::Counter& reu = obs::MetricsRegistry::instance().counter(
      "kert.query.messages_reused");
  if (recomputed) rec.add(recomputed);
  if (reused) reu.add(reused);
}

}  // namespace

JunctionTree::JunctionTree(const BayesianNetwork& net) : net_(net) {
  KERTBN_EXPECTS(net.is_complete());
  for (std::size_t v = 0; v < net.size(); ++v) {
    KERTBN_EXPECTS(net.variable(v).is_discrete());
    KERTBN_EXPECTS(net.cpd(v).kind() == CpdKind::kTabular);
  }
  KERTBN_SPAN_VAR(span, "jt.build");
  build_structure();
  span.tag("cliques", static_cast<std::uint64_t>(cliques_.size()));
  span.tag("max_clique", static_cast<std::uint64_t>(max_clique_size()));
}

void JunctionTree::build_structure() {
  const std::size_t n = net_.size();

  // Moral graph adjacency.
  std::vector<std::vector<bool>> adj(n, std::vector<bool>(n, false));
  auto connect = [&](std::size_t a, std::size_t b) {
    if (a != b) {
      adj[a][b] = true;
      adj[b][a] = true;
    }
  };
  for (std::size_t v = 0; v < n; ++v) {
    const auto pars = net_.dag().parents(v);
    for (std::size_t p : pars) connect(p, v);
    for (std::size_t i = 0; i < pars.size(); ++i) {
      for (std::size_t j = i + 1; j < pars.size(); ++j) {
        connect(pars[i], pars[j]);
      }
    }
  }

  // Min-fill elimination producing candidate cliques.
  std::vector<bool> eliminated(n, false);
  std::vector<std::vector<std::size_t>> candidates;
  for (std::size_t round = 0; round < n; ++round) {
    // Pick the remaining node whose elimination adds fewest fill edges.
    std::size_t best = n;
    std::size_t best_fill = static_cast<std::size_t>(-1);
    for (std::size_t v = 0; v < n; ++v) {
      if (eliminated[v]) continue;
      std::vector<std::size_t> nbrs;
      for (std::size_t u = 0; u < n; ++u) {
        if (!eliminated[u] && adj[v][u]) nbrs.push_back(u);
      }
      std::size_t fill = 0;
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
          if (!adj[nbrs[i]][nbrs[j]]) ++fill;
        }
      }
      if (fill < best_fill) {
        best_fill = fill;
        best = v;
      }
    }
    KERTBN_ASSERT(best < n);

    std::vector<std::size_t> clique{best};
    for (std::size_t u = 0; u < n; ++u) {
      if (!eliminated[u] && adj[best][u]) clique.push_back(u);
    }
    std::sort(clique.begin(), clique.end());
    candidates.push_back(std::move(clique));

    // Fill in, then eliminate.
    const auto& cl = candidates.back();
    for (std::size_t i = 0; i < cl.size(); ++i) {
      for (std::size_t j = i + 1; j < cl.size(); ++j) {
        connect(cl[i], cl[j]);
      }
    }
    eliminated[best] = true;
  }

  // Keep only maximal cliques.
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    bool maximal = true;
    for (std::size_t j = 0; j < candidates.size(); ++j) {
      if (i == j) continue;
      if (candidates[i].size() < candidates[j].size() &&
          is_subset(candidates[i], candidates[j])) {
        maximal = false;
        break;
      }
      if (i > j && candidates[i] == candidates[j]) {
        maximal = false;  // duplicate: keep the first copy only
        break;
      }
    }
    if (maximal) cliques_.push_back(candidates[i]);
  }

  // Maximum-weight spanning forest over separator sizes (Kruskal).
  struct Candidate {
    std::size_t a;
    std::size_t b;
    std::vector<std::size_t> sep;
  };
  std::vector<Candidate> all_edges;
  for (std::size_t a = 0; a < cliques_.size(); ++a) {
    for (std::size_t b = a + 1; b < cliques_.size(); ++b) {
      std::vector<std::size_t> sep;
      std::set_intersection(cliques_[a].begin(), cliques_[a].end(),
                            cliques_[b].begin(), cliques_[b].end(),
                            std::back_inserter(sep));
      if (!sep.empty()) {
        all_edges.push_back({a, b, std::move(sep)});
      }
    }
  }
  std::sort(all_edges.begin(), all_edges.end(),
            [](const Candidate& x, const Candidate& y) {
              return x.sep.size() > y.sep.size();
            });
  std::vector<std::size_t> parent(cliques_.size());
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  neighbors_.assign(cliques_.size(), {});
  for (auto& e : all_edges) {
    const std::size_t ra = find(e.a);
    const std::size_t rb = find(e.b);
    if (ra == rb) continue;
    parent[ra] = rb;
    neighbors_[e.a].push_back(e.b);
    neighbors_[e.b].push_back(e.a);
    edges_.push_back({e.a, e.b, std::move(e.sep)});
  }

  // Assign each node's family to a containing clique.
  family_clique_.assign(net_.size(), 0);
  for (std::size_t v = 0; v < net_.size(); ++v) {
    std::vector<std::size_t> family(net_.dag().parents(v).begin(),
                                    net_.dag().parents(v).end());
    family.push_back(v);
    std::sort(family.begin(), family.end());
    bool found = false;
    for (std::size_t c = 0; c < cliques_.size(); ++c) {
      if (is_subset(family, cliques_[c])) {
        family_clique_[v] = c;
        found = true;
        break;
      }
    }
    KERTBN_ASSERT(found && "family must fit a clique (triangulation bug)");
  }

  // Rooted-forest view for incremental recalibration. Roots are the
  // smallest clique index of each component — the same roots the legacy
  // ascending component discovery picked, which evidence_probability()
  // depends on.
  const std::size_t m = cliques_.size();
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> edge_index;
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    edge_index[{std::min(edges_[e].a, edges_[e].b),
                std::max(edges_[e].a, edges_[e].b)}] = e;
  }
  parent_clique_.assign(m, kNone);
  parent_edge_.assign(m, kNone);
  component_of_.assign(m, kNone);
  for (std::size_t c = 0; c < m; ++c) {
    if (component_of_[c] != kNone) continue;
    const std::size_t comp = roots_.size();
    roots_.push_back(c);
    std::vector<std::size_t> bfs{c};
    component_of_[c] = comp;
    for (std::size_t i = 0; i < bfs.size(); ++i) {
      const std::size_t x = bfs[i];
      for (std::size_t nb : neighbors_[x]) {
        if (component_of_[nb] != kNone) continue;
        component_of_[nb] = comp;
        parent_clique_[nb] = x;
        parent_edge_[nb] = edge_index.at({std::min(x, nb), std::max(x, nb)});
        bfs.push_back(nb);
      }
    }
    // Reversed BFS order puts every clique before its parent: a valid
    // postorder for bottom-up (collect) accumulation.
    postorder_.insert(postorder_.end(), bfs.rbegin(), bfs.rend());
  }

  // Size every cache so later phases never reallocate (message() hands out
  // stable references into these vectors).
  const std::size_t dm = 2 * edges_.size();
  clean_base_.resize(m);
  clean_msgs_.resize(dm);
  clean_beliefs_.resize(m);
  clean_belief_ready_.assign(m, 0);
  clean_root_total_.assign(roots_.size(), 1.0);
  dirty_.assign(m, 0);
  subtree_dirty_.assign(m, 0);
  comp_dirty_.assign(roots_.size(), 0);
  cur_msgs_.resize(dm);
  cur_msg_epoch_.assign(dm, kNone);
  cur_pots_.resize(m);
  cur_pot_epoch_.assign(m, kNone);
  cur_beliefs_.resize(m);
  cur_belief_epoch_.assign(m, kNone);
  posterior_plans_.resize(n);
  posterior_plan_ready_.assign(n, 0);
}

Factor JunctionTree::clique_base_factor(std::size_t c) const {
  Factor base = Factor::unit();
  for (std::size_t v = 0; v < net_.size(); ++v) {
    if (family_clique_[v] != c) continue;
    // Family factor: parents (most significant) then child, matching the
    // CPT layout (same construction as VariableElimination::node_factor).
    const auto& cpt = static_cast<const TabularCpd&>(net_.cpd(v));
    const auto pars = net_.dag().parents(v);
    std::vector<std::size_t> scope(pars.begin(), pars.end());
    scope.push_back(v);
    std::vector<std::size_t> cards = cpt.parent_cardinalities();
    cards.push_back(cpt.child_cardinality());
    std::vector<double> values;
    values.reserve(cpt.config_count() * cpt.child_cardinality());
    for (std::size_t cfg = 0; cfg < cpt.config_count(); ++cfg) {
      for (std::size_t s = 0; s < cpt.child_cardinality(); ++s) {
        values.push_back(cpt.probability(cfg, s));
      }
    }
    base = base.product(
        Factor(std::move(scope), std::move(cards), std::move(values)));
  }
  return base;
}

std::size_t JunctionTree::message_id(std::size_t x, std::size_t y) const {
  const std::size_t e =
      (parent_clique_[x] == y) ? parent_edge_[x] : parent_edge_[y];
  KERTBN_ASSERT(e != kNone);
  KERTBN_ASSERT((edges_[e].a == x && edges_[e].b == y) ||
                (edges_[e].a == y && edges_[e].b == x));
  return 2 * e + (edges_[e].a == x ? 0 : 1);
}

bool JunctionTree::message_affected(std::size_t x, std::size_t y) const {
  if (parent_clique_[x] == y) {
    // Upward message: dirt anywhere in x's subtree invalidates it.
    return subtree_dirty_[x] > 0;
  }
  // Downward message x -> y (y is x's child): dirt anywhere outside y's
  // subtree — i.e. on x's side of the edge — invalidates it.
  return comp_dirty_[component_of_[x]] - subtree_dirty_[y] > 0;
}

void JunctionTree::ensure_clean() const {
  if (clean_ready_) return;
  KERTBN_SPAN_VAR(span, "jt.calibrate");
  span.tag("evidence", std::uint64_t{0});
  for (std::size_t c = 0; c < cliques_.size(); ++c) {
    clean_base_[c] = FlatFactor::from(clique_base_factor(c));
  }
  auto compute_msg = [&](std::size_t x, std::size_t y) {
    std::vector<const FlatFactor*> in;
    for (std::size_t nb : neighbors_[x]) {
      if (nb == y) continue;
      in.push_back(&clean_msgs_[message_id(nb, x)]);
    }
    const std::size_t id = message_id(x, y);
    // Same fused kernel path as message(): clean and evidence executions
    // must stay bit-identical on every dispatch tier.
    ws_.product_chain_reduce(clean_base_[x], in, edges_[id / 2].separator,
                             clean_msgs_[id]);
    ++stats_.messages_recomputed;
  };
  // Collect (children before parents), then distribute (parents before
  // children). Message fixed points are schedule-independent, so these
  // values are bit-identical to the legacy recursive schedule.
  for (std::size_t c : postorder_) {
    if (parent_clique_[c] != kNone) compute_msg(c, parent_clique_[c]);
  }
  for (auto it = postorder_.rbegin(); it != postorder_.rend(); ++it) {
    for (std::size_t nb : neighbors_[*it]) {
      if (parent_clique_[nb] == *it) compute_msg(*it, nb);
    }
  }
  clean_ready_ = true;
  for (std::size_t r : roots_) {
    clean_root_total_[component_of_[r]] = clean_belief(r).total();
  }
  note_messages(stats_.messages_recomputed, 0);
}

const FlatFactor& JunctionTree::clean_belief(std::size_t c) const {
  KERTBN_ASSERT(clean_ready_);
  if (clean_belief_ready_[c]) return clean_beliefs_[c];
  std::vector<const FlatFactor*> in;
  for (std::size_t nb : neighbors_[c]) {
    in.push_back(&clean_msgs_[message_id(nb, c)]);
  }
  ws_.product_chain(clean_base_[c], in, clean_beliefs_[c]);
  clean_belief_ready_[c] = 1;
  ++stats_.beliefs_computed;
  return clean_beliefs_[c];
}

const FlatFactor& JunctionTree::potential(std::size_t c) const {
  if (!dirty_[c]) return clean_base_[c];
  if (cur_pot_epoch_[c] == epoch_) return cur_pots_[c];
  cur_pots_[c] = clean_base_[c];
  for (const auto& [v, state] : evidence_) {
    if (family_clique_[v] == c) apply_evidence(cur_pots_[c], v, state);
  }
  cur_pot_epoch_[c] = epoch_;
  return cur_pots_[c];
}

const FlatFactor& JunctionTree::message(std::size_t x, std::size_t y) const {
  const std::size_t id = message_id(x, y);
  if (!message_affected(x, y)) {
    ++stats_.messages_reused;
    note_messages(0, 1);
    return clean_msgs_[id];
  }
  if (cur_msg_epoch_[id] == epoch_) return cur_msgs_[id];
  // Pull dependencies first; the recursion completes before the workspace
  // scratch is touched for this level. Operand lists come from a
  // depth-indexed pool (the recursion may grow the pool, so slots are
  // re-indexed on every access, never held by reference).
  const std::size_t depth = msg_depth_++;
  if (msg_in_pool_.size() <= depth) msg_in_pool_.resize(depth + 1);
  msg_in_pool_[depth].clear();
  for (std::size_t nb : neighbors_[x]) {
    if (nb == y) continue;
    const FlatFactor& m = message(nb, x);
    msg_in_pool_[depth].push_back(&m);
  }
  ws_.product_chain_reduce(potential(x), msg_in_pool_[depth],
                           edges_[id / 2].separator, cur_msgs_[id]);
  --msg_depth_;
  cur_msg_epoch_[id] = epoch_;
  ++stats_.messages_recomputed;
  note_messages(1, 0);
  return cur_msgs_[id];
}

const FlatFactor& JunctionTree::belief(std::size_t c) const {
  if (comp_dirty_[component_of_[c]] == 0) return clean_belief(c);
  if (cur_belief_epoch_[c] == epoch_) return cur_beliefs_[c];
  const std::size_t depth = msg_depth_++;
  if (msg_in_pool_.size() <= depth) msg_in_pool_.resize(depth + 1);
  msg_in_pool_[depth].clear();
  for (std::size_t nb : neighbors_[c]) {
    const FlatFactor& m = message(nb, c);
    msg_in_pool_[depth].push_back(&m);
  }
  ws_.product_chain(potential(c), msg_in_pool_[depth], cur_beliefs_[c]);
  --msg_depth_;
  cur_belief_epoch_[c] = epoch_;
  ++stats_.beliefs_computed;
  return cur_beliefs_[c];
}

void JunctionTree::calibrate(
    const std::map<std::size_t, std::size_t>& evidence) {
  calibrate_sorted(SortedEvidence(evidence.begin(), evidence.end()));
}

void JunctionTree::calibrate_sorted(const SortedEvidence& evidence) {
  KERTBN_SPAN_VAR(span, "jt.calibrate");
  span.tag("evidence", static_cast<std::uint64_t>(evidence.size()));
  for (std::size_t i = 0; i < evidence.size(); ++i) {
    KERTBN_EXPECTS(evidence[i].first < net_.size());
    KERTBN_EXPECTS(evidence[i].second <
                   net_.variable(evidence[i].first).cardinality);
    KERTBN_EXPECTS(i == 0 || evidence[i - 1].first < evidence[i].first);
  }
  ensure_clean();
  evidence_ = evidence;
  ++epoch_;

  const std::size_t m = cliques_.size();
  std::fill(dirty_.begin(), dirty_.end(), char{0});
  if (incremental_) {
    for (const auto& [v, state] : evidence_) {
      (void)state;
      dirty_[family_clique_[v]] = 1;
    }
  } else {
    std::fill(dirty_.begin(), dirty_.end(), char{1});
  }
  std::fill(subtree_dirty_.begin(), subtree_dirty_.end(), std::size_t{0});
  for (std::size_t c : postorder_) {
    subtree_dirty_[c] += static_cast<std::size_t>(dirty_[c]);
    if (parent_clique_[c] != kNone) {
      subtree_dirty_[parent_clique_[c]] += subtree_dirty_[c];
    }
  }
  for (std::size_t r : roots_) {
    comp_dirty_[component_of_[r]] = subtree_dirty_[r];
  }

  std::size_t dirty_count = 0;
  for (char d : dirty_) dirty_count += static_cast<std::size_t>(d);
  ++stats_.calibrations;
  if (dirty_count == m) ++stats_.full_calibrations;
  span.tag("dirty", static_cast<std::uint64_t>(dirty_count));
  if (obs::enabled()) {
    static obs::Counter& calibrations =
        obs::MetricsRegistry::instance().counter("kert.query.calibrations");
    static obs::Counter& dirty_cliques =
        obs::MetricsRegistry::instance().counter("kert.query.dirty_cliques");
    calibrations.add(1);
    dirty_cliques.add(dirty_count);
  }
}

double JunctionTree::evidence_probability() const {
  ensure_clean();
  if (!ep_ready_ || ep_epoch_ != epoch_) {
    // Same accumulation order as the legacy pass: roots ascending. Clean
    // components contribute their cached totals (bit-identical values).
    double p = 1.0;
    for (std::size_t r : roots_) {
      const std::size_t comp = component_of_[r];
      p *= (comp_dirty_[comp] == 0) ? clean_root_total_[comp]
                                    : belief(r).total();
    }
    evidence_probability_ = p;
    ep_epoch_ = epoch_;
    ep_ready_ = true;
  }
  return evidence_probability_;
}

std::vector<double> JunctionTree::posterior(std::size_t v) const {
  KERTBN_EXPECTS(v < net_.size());
  KERTBN_EXPECTS(!std::binary_search(
      evidence_.begin(), evidence_.end(),
      std::pair<std::size_t, std::size_t>{v, 0},
      [](const auto& a, const auto& b) { return a.first < b.first; }));
  ensure_clean();
  const FlatFactor& b = belief(family_clique_[v]);
  if (!posterior_plan_ready_[v]) {
    const std::size_t target[1] = {v};
    posterior_plans_[v] = make_reduce_plan(b.scope, b.cards, target);
    posterior_plan_ready_[v] = 1;
  }
  const ReducePlan& plan = posterior_plans_[v];
  KERTBN_ASSERT(plan.out_scope.size() == 1 && plan.out_scope[0] == v);
  // Local buffers keep warm no-evidence reads mutation-free (sharable
  // across threads after warm()).
  std::vector<double> out;
  std::vector<double> scratch;
  reduce_into(plan, b.values, scratch, out);
  // Normalize exactly like Factor::normalized (no-op on an all-zero
  // marginal).
  double t = 0.0;
  for (double x : out) t += x;
  if (t > 0.0) {
    for (double& x : out) x /= t;
  }
  return out;
}

void JunctionTree::warm() {
  ensure_clean();
  for (std::size_t c = 0; c < cliques_.size(); ++c) clean_belief(c);
  for (std::size_t v = 0; v < net_.size(); ++v) {
    if (posterior_plan_ready_[v]) continue;
    const FlatFactor& b = clean_beliefs_[family_clique_[v]];
    const std::size_t target[1] = {v};
    posterior_plans_[v] = make_reduce_plan(b.scope, b.cards, target);
    posterior_plan_ready_[v] = 1;
  }
  evidence_probability();
}

std::size_t JunctionTree::max_clique_size() const {
  std::size_t m = 0;
  for (const auto& c : cliques_) m = std::max(m, c.size());
  return m;
}

}  // namespace kertbn::bn
