#pragma once
/// \file linear_gaussian_cpd.hpp
/// Linear-Gaussian CPD: X | parents ~ N(intercept + wᵀ·parents, sigma²).
/// The continuous KERT-BN/NRT-BN variants of Section 4 use these for the
/// service elapsed-time nodes (few parameters → quick convergence on the
/// small training windows of fast-changing environments).

#include <vector>

#include "bn/cpd.hpp"

namespace kertbn::bn {

class LinearGaussianCpd final : public Cpd {
 public:
  /// sigma must be > 0; weights.size() is the parent count.
  LinearGaussianCpd(double intercept, std::vector<double> weights,
                    double sigma);

  /// Root node N(mean, sigma²).
  static LinearGaussianCpd root(double mean, double sigma) {
    return LinearGaussianCpd(mean, {}, sigma);
  }

  double intercept() const { return intercept_; }
  const std::vector<double>& weights() const { return weights_; }
  double sigma() const { return sigma_; }

  // Cpd interface.
  CpdKind kind() const override { return CpdKind::kLinearGaussian; }
  std::size_t parent_count() const override { return weights_.size(); }
  double log_prob(double value, std::span<const double> parents) const override;
  double sample(std::span<const double> parents, Rng& rng) const override;
  double mean(std::span<const double> parents) const override;
  std::unique_ptr<Cpd> clone() const override;
  std::string describe() const override;
  std::size_t parameter_count() const override { return weights_.size() + 2; }

 private:
  double intercept_;
  std::vector<double> weights_;
  double sigma_;
};

}  // namespace kertbn::bn
