#pragma once
/// \file variable.hpp
/// Random-variable metadata for Bayesian-network nodes.

#include <cstddef>
#include <string>

#include "common/contract.hpp"

namespace kertbn::bn {

/// Whether a node carries a discrete (tabular) or continuous value.
enum class VarKind { kDiscrete, kContinuous };

/// A named random variable. Discrete variables take values 0..cardinality-1
/// (stored as doubles inside datasets for uniformity); continuous variables
/// take any real value.
struct Variable {
  std::string name;
  VarKind kind = VarKind::kContinuous;
  std::size_t cardinality = 0;  ///< Number of states; 0 for continuous.

  /// Continuous variable.
  static Variable continuous(std::string name) {
    return Variable{std::move(name), VarKind::kContinuous, 0};
  }

  /// Discrete variable with \p states states (>= 2).
  static Variable discrete(std::string name, std::size_t states) {
    KERTBN_EXPECTS(states >= 2);
    return Variable{std::move(name), VarKind::kDiscrete, states};
  }

  bool is_discrete() const { return kind == VarKind::kDiscrete; }
};

}  // namespace kertbn::bn
