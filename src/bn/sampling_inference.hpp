#pragma once
/// \file sampling_inference.hpp
/// Monte-Carlo inference: forward sampling and likelihood weighting.
/// Works for any CPD mix — in particular continuous networks whose
/// response-time node carries a nonlinear deterministic CPD (max of sums),
/// which exact Gaussian conditioning cannot express (and which the paper's
/// MATLAB BNT could not handle at all, forcing its Section 5 models to be
/// discrete).

#include <map>
#include <vector>

#include "bn/network.hpp"

namespace kertbn::bn {

using ContinuousEvidenceMap = std::map<std::size_t, double>;

/// Weighted posterior sample set for one query node.
struct WeightedSamples {
  std::vector<double> values;
  std::vector<double> weights;  ///< Unnormalized, non-negative.

  double weight_total() const;
  double mean() const;
  double variance() const;
  /// P(X > threshold) under the weighted empirical distribution.
  double exceedance(double threshold) const;
  /// Effective sample size, (Σw)² / Σw² — a degeneracy diagnostic.
  double effective_sample_size() const;
  /// Resamples into an unweighted set of \p n draws (for KDE/histograms).
  std::vector<double> resample(std::size_t n, Rng& rng) const;
};

struct LikelihoodWeightingOptions {
  std::size_t samples = 20000;
};

/// Likelihood weighting: evidence nodes are clamped to their observed
/// values; non-evidence nodes are forward-sampled; each particle is
/// weighted by Π p(evidence_v | sampled parents).
WeightedSamples likelihood_weighted_posterior(
    const BayesianNetwork& net, std::size_t query,
    const ContinuousEvidenceMap& evidence, Rng& rng,
    const LikelihoodWeightingOptions& opts = {});

/// Forward-samples the network and returns the marginal draws of \p query
/// (no evidence; uniform weights).
std::vector<double> forward_marginal(const BayesianNetwork& net,
                                     std::size_t query, std::size_t n,
                                     Rng& rng);

}  // namespace kertbn::bn
