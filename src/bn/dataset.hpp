#pragma once
/// \file dataset.hpp
/// A dataset is a dense rows-by-variables table of observations. Discrete
/// variables store their state index as a double; continuous variables store
/// real measurements (elapsed times in seconds throughout this library).

#include <span>
#include <string>
#include <vector>

#include "common/contract.hpp"

namespace kertbn::bn {

/// Row-major observation table with named columns.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<std::string> column_names)
      : names_(std::move(column_names)) {}

  std::size_t rows() const {
    return names_.empty() ? 0 : data_.size() / names_.size();
  }
  std::size_t cols() const { return names_.size(); }
  bool empty() const { return data_.empty(); }

  const std::vector<std::string>& column_names() const { return names_; }
  const std::string& column_name(std::size_t c) const {
    KERTBN_EXPECTS(c < names_.size());
    return names_[c];
  }

  /// Index of the column named \p name; contract-fails if missing.
  std::size_t column_index(const std::string& name) const;

  /// Appends one observation row (must match the column count).
  void add_row(std::span<const double> row);

  double value(std::size_t r, std::size_t c) const {
    KERTBN_EXPECTS(r < rows() && c < cols());
    return data_[r * names_.size() + c];
  }
  double& value(std::size_t r, std::size_t c) {
    KERTBN_EXPECTS(r < rows() && c < cols());
    return data_[r * names_.size() + c];
  }

  /// Contiguous view of row \p r.
  std::span<const double> row(std::size_t r) const {
    KERTBN_EXPECTS(r < rows());
    return {data_.data() + r * names_.size(), names_.size()};
  }

  /// Copy of column \p c.
  std::vector<double> column(std::size_t c) const;

  /// New dataset containing rows [first, last).
  Dataset slice_rows(std::size_t first, std::size_t last) const;

  /// New dataset containing only the given columns, in the given order.
  Dataset select_columns(std::span<const std::size_t> cols) const;

  /// Keeps at most the final \p n rows (the sliding window W of Section 2).
  void keep_last_rows(std::size_t n);

  /// CSV rendering (header + rows).
  std::string to_csv(int precision = 6) const;

 private:
  std::vector<std::string> names_;
  std::vector<double> data_;  // row-major, rows() x cols()
};

}  // namespace kertbn::bn
