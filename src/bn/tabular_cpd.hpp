#pragma once
/// \file tabular_cpd.hpp
/// Tabular CPD (conditional probability table) for discrete nodes.

#include <vector>

#include "bn/cpd.hpp"

namespace kertbn::bn {

/// CPT over a discrete child with discrete parents.
///
/// Rows are parent configurations (mixed-radix over parent cardinalities,
/// first parent most significant); columns are child states. Each row is a
/// normalized distribution.
class TabularCpd final : public Cpd {
 public:
  /// Builds a CPT with the given child cardinality and parent cardinalities.
  /// \p table must contain rows() * child_cardinality probabilities, each
  /// row summing to 1 (within tolerance; rows are renormalized).
  TabularCpd(std::size_t child_cardinality,
             std::vector<std::size_t> parent_cardinalities,
             std::vector<double> table);

  /// Uniform CPT (every row uniform over child states).
  static TabularCpd uniform(std::size_t child_cardinality,
                            std::vector<std::size_t> parent_cardinalities);

  std::size_t child_cardinality() const { return child_card_; }
  const std::vector<std::size_t>& parent_cardinalities() const {
    return parent_cards_;
  }
  /// Number of parent configurations.
  std::size_t config_count() const { return configs_; }

  /// Mixed-radix index of a parent configuration.
  std::size_t config_index(std::span<const double> parents) const;

  /// P(child = state | parent configuration row).
  double probability(std::size_t config, std::size_t state) const;
  /// Mutable access used by learners; call normalize_rows() afterwards.
  double& probability_ref(std::size_t config, std::size_t state);
  /// Renormalizes every row to sum to 1 (rows of all zeros become uniform).
  void normalize_rows();

  // Cpd interface.
  CpdKind kind() const override { return CpdKind::kTabular; }
  std::size_t parent_count() const override { return parent_cards_.size(); }
  double log_prob(double value, std::span<const double> parents) const override;
  double sample(std::span<const double> parents, Rng& rng) const override;
  double mean(std::span<const double> parents) const override;
  std::unique_ptr<Cpd> clone() const override;
  std::string describe() const override;
  std::size_t parameter_count() const override {
    return configs_ * (child_card_ - 1);
  }

 private:
  std::size_t child_card_;
  std::vector<std::size_t> parent_cards_;
  std::size_t configs_;
  std::vector<double> table_;  // configs_ x child_card_, row-major
};

}  // namespace kertbn::bn
