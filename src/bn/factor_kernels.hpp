#pragma once
/// \file factor_kernels.hpp
/// Flat factor kernels for the query-serving hot path.
///
/// Factor::product / marginalize are correct but allocate a fresh Factor
/// and re-derive stride maps on every call — fine for one-shot variable
/// elimination, ruinous for a junction tree that re-runs the same message
/// schedule on every evidence change. These kernels split each operation
/// into a *plan* (alignment and stride tables, a pure function of the two
/// scopes) and an *execution* (contiguous inner loops over raw value
/// arrays). A FactorWorkspace caches plans keyed by the scope tuple and
/// reuses scratch buffers, so a calibrated tree's steady state performs no
/// allocation and no scope searching at all.
///
/// Three execution layers sit on top of the plans (see DESIGN "Query
/// serving" for the full contract):
///
///   * SIMD dispatch — every inner loop runs through the runtime-dispatched
///     kernels in factor_simd.hpp (scalar / AVX2+FMA / AVX-512, probed once
///     by common/cpu_features and overridable with KERTBN_SIMD). Plans
///     precompute the longest unit-stride innermost run so the vector
///     kernels never gather: each operand either streams contiguously or
///     broadcasts a constant across the run.
///   * Blocked chain products — product_chain with two or more factors
///     executes as ONE multi-operand pass selected at plan time: every
///     output element is a left-fold of its aligned operand entries,
///     bit-identical to the pairwise fold but written once, so large CPT
///     products stream through cache instead of materializing (and
///     re-reading) each pairwise intermediate.
///   * Fused product+reduce — the clique→sepset message (product chain
///     followed by a sum-out to the separator) runs as a single
///     accumulation pass on SIMD tiers: the clique-sized intermediate is
///     never materialized at all.
///
/// Equivalence contract: with the scalar tier active every kernel performs
/// the same floating-point operations in the same order as the legacy
/// Factor code it replaces, so scalar inference is bit-identical to the
/// legacy engines (asserted exactly by the equivalence suites). Products
/// are single multiplies per element and stay bit-exact on EVERY tier; the
/// SIMD tiers may re-associate summations (stride-1 eliminations, fused
/// accumulation), which the suites bound at <= 1e-12 relative error on
/// posteriors.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "bn/factor.hpp"

namespace kertbn::bn {

/// Evidence as sorted (node, state) pairs — the hot-path replacement for
/// std::map on calibration and query interfaces (contiguous, no per-node
/// allocation, binary-searchable).
using SortedEvidence = std::vector<std::pair<std::size_t, std::size_t>>;

/// Lightweight factor for kernel pipelines: the same layout contract as
/// Factor (values row-major in scope order, first variable most
/// significant) without per-construction invariant checks, so instances
/// can be recycled across calibrations.
struct FlatFactor {
  std::vector<std::size_t> scope;
  std::vector<std::size_t> cards;
  std::vector<double> values;

  static FlatFactor unit() { return FlatFactor{{}, {}, {1.0}}; }
  static FlatFactor from(const Factor& f) {
    return FlatFactor{f.scope(), f.cardinalities(), f.values()};
  }
  Factor to_factor() const { return Factor(scope, cards, values); }

  std::size_t size() const { return values.size(); }
  /// Sum of all entries, in storage order (same order as Factor::total).
  double total() const;
};

/// Precomputed alignment for product(a, b) -> out. The merged scope is a's
/// variables followed by b's new ones — the exact order Factor::product
/// uses — so executions are bit-identical to the legacy path.
///
/// The trailing `run_dims` output dimensions execute as one inner loop of
/// `run_len` elements. When `vector_run`, each operand advances by
/// `run_step_*` ∈ {0, 1} per element over the whole run (broadcast or
/// contiguous stream) and the loop dispatches to the SIMD chain kernels;
/// otherwise the run covers the last dimension only with the general
/// per-element strides in `run_step_*`.
struct ProductPlan {
  std::vector<std::size_t> out_scope;
  std::vector<std::size_t> out_cards;
  std::size_t out_size = 1;
  /// Per out-dimension stride into each operand (0 when absent from it).
  std::vector<std::size_t> stride_a;
  std::vector<std::size_t> stride_b;
  std::size_t run_len = 1;
  std::size_t run_dims = 0;
  bool vector_run = false;
  std::size_t run_step_a = 0;
  std::size_t run_step_b = 0;
};

ProductPlan make_product_plan(std::span<const std::size_t> scope_a,
                              std::span<const std::size_t> cards_a,
                              std::span<const std::size_t> scope_b,
                              std::span<const std::size_t> cards_b);

/// out[i] = a[align_a(i)] * b[align_b(i)] for every merged-scope index.
/// Bit-exact on every dispatch tier (single multiplies, no reassociation).
/// \p odometer is caller-provided scratch (resized internally).
void product_into(const ProductPlan& plan, std::span<const double> a,
                  std::span<const double> b,
                  std::vector<std::size_t>& odometer,
                  std::vector<double>& out);

/// Precomputed pipeline for "sum out every scope variable not in target".
/// Variables are eliminated one at a time in scope order — the exact
/// elimination order (and therefore the exact floating-point sums) of the
/// legacy marginalize_to loop in junction_tree.cpp.
struct ReducePlan {
  struct Step {
    std::size_t stride = 1;    ///< Source stride of the eliminated variable.
    std::size_t card = 1;      ///< Its cardinality.
    std::size_t in_size = 1;   ///< Source value count.
    std::size_t out_size = 1;  ///< Result value count.
  };
  std::vector<Step> steps;
  /// Surviving variables in surviving order (target as a subsequence of
  /// the input scope).
  std::vector<std::size_t> out_scope;
  std::vector<std::size_t> out_cards;
  std::size_t out_size = 1;
};

ReducePlan make_reduce_plan(std::span<const std::size_t> scope,
                            std::span<const std::size_t> cards,
                            std::span<const std::size_t> target);

/// Runs the elimination pipeline into \p out; \p scratch provides
/// ping-pong storage between steps (resized internally, capacity kept).
/// Scalar tier: bit-exact vs. the legacy loops. SIMD tiers: summations
/// whose eliminated variable has stride > 1 stay bit-exact (per-element
/// accumulation order unchanged); stride-1 eliminations of wide runs use
/// re-associating horizontal sums (tolerance-bounded).
void reduce_into(const ReducePlan& plan, std::span<const double> in,
                 std::vector<double>& scratch, std::vector<double>& out);

/// Multi-operand product plan: out[i] = ops[0][..] * ops[1][..] * ... as a
/// left fold per element — the "blocked" execution of a product chain.
/// The merged scope is built by folding operand scopes left to right
/// (each operand appends its new variables), exactly the scope the
/// pairwise chain produces, and the per-element left fold performs the
/// same multiplies in the same order, so results are bit-identical to the
/// pairwise path on every tier — while the output is written exactly once
/// and no pairwise intermediate is ever materialized.
struct ChainPlan {
  std::vector<std::size_t> out_scope;
  std::vector<std::size_t> out_cards;
  std::size_t out_size = 1;
  std::size_t nops = 0;
  /// Row-major [op][dim] stride table (0 when the dim is absent from op).
  std::vector<std::size_t> strides;
  std::size_t run_len = 1;
  std::size_t run_dims = 0;
  bool vector_run = false;
  /// Per-operand per-element step over the run (∈ {0,1} when vector_run,
  /// general strides of the last dim otherwise).
  std::vector<std::size_t> run_steps;
};

ChainPlan make_chain_plan(std::span<const FlatFactor* const> ops);

void chain_product_into(const ChainPlan& plan,
                        std::span<const FlatFactor* const> ops,
                        std::vector<std::size_t>& odometer,
                        std::vector<double>& out);

/// Log-space execution of the chain product for deep chains: each output
/// element accumulates std::log of its aligned operand entries, then the
/// table is rescaled by its maximum log before exponentiation. Returns
/// log_scale such that the true product is out[i] * exp(log_scale) —
/// chains deep enough to underflow the flat fold keep their relative
/// magnitudes here. Scalar accumulation on every tier (a vectorized log
/// would need a math library the project does not carry); exact zeros
/// stay exact zeros.
double chain_product_log_into(const ChainPlan& plan,
                              std::span<const FlatFactor* const> ops,
                              std::vector<std::size_t>& odometer,
                              std::vector<double>& out);

/// Fused product+reduce plan: the merged index space of a product chain
/// walked once, accumulating each chain product directly into the reduced
/// output (out strides are 0 on eliminated dimensions). The clique-sized
/// intermediate is never materialized. Accumulation order differs from the
/// stepwise ReducePlan pipeline, so this path is used on SIMD tiers only
/// (tolerance-bounded); the scalar tier keeps the exact two-step pipeline.
struct ChainReducePlan {
  std::vector<std::size_t> mid_cards;  ///< Merged (product) cardinalities.
  std::size_t mid_size = 1;
  std::vector<std::size_t> out_scope;  ///< Survivors in merged-scope order.
  std::vector<std::size_t> out_cards;
  std::size_t out_size = 1;
  std::size_t nops = 0;
  /// Row-major [op][dim]; the row at op == nops holds the OUTPUT strides
  /// (0 on eliminated dims).
  std::vector<std::size_t> strides;
  std::size_t run_len = 1;
  std::size_t run_dims = 0;
  bool vector_run = false;
  std::vector<std::size_t> run_steps;  ///< Per op; last entry = out step.
  /// Whether the inner run accumulates into one output element (the run is
  /// fully eliminated: a fused dot product) or streams elementwise into a
  /// contiguous output span.
  bool run_eliminated = true;
};

ChainReducePlan make_chain_reduce_plan(std::span<const FlatFactor* const> ops,
                                       std::span<const std::size_t> target);

void chain_reduce_into(const ChainReducePlan& plan,
                       std::span<const FlatFactor* const> ops,
                       std::vector<std::size_t>& odometer,
                       std::vector<double>& out);

/// Zeroes every entry of \p f whose state of \p var differs from
/// \p state. Arithmetic-equivalent to multiplying by an indicator factor
/// (bit-identical for the non-negative values factors hold: x*1.0 == x and
/// x*0.0 == +0.0), without allocating or growing the scope — which is what
/// keeps every downstream plan evidence-independent.
void apply_evidence(FlatFactor& f, std::size_t var, std::size_t state);

/// In-place equivalent of Factor::reduce(var, state): keeps the slice
/// where var == state and drops var from the scope. Pure data movement
/// (bit-exact on every tier). The eager-evidence path of variable
/// elimination runs on this.
void reduce_evidence(FlatFactor& f, std::size_t var, std::size_t state);

/// Open-addressing plan cache with stable plan addresses. Keys are
/// flattened scope tuples (length-prefixed components); lookups hash the
/// key in one contiguous pass instead of the lexicographic vector
/// comparisons a std::map key pays on every message of the steady state.
template <typename Plan>
class PlanCache {
 public:
  PlanCache() = default;
  // Deep copy (plan addresses are per-instance): QueryEngine clones warmed
  // junction trees — workspace included — into its workers.
  PlanCache(const PlanCache& other) { *this = other; }
  PlanCache& operator=(const PlanCache& other) {
    if (this == &other) return *this;
    entries_.clear();
    entries_.reserve(other.entries_.size());
    for (const auto& e : other.entries_) {
      entries_.push_back(std::make_unique<Entry>(*e));
    }
    slots_ = other.slots_;
    mask_ = other.mask_;
    return *this;
  }
  PlanCache(PlanCache&&) noexcept = default;
  PlanCache& operator=(PlanCache&&) noexcept = default;

  static std::uint64_t hash_key(std::span<const std::size_t> key) {
    // One multiply-xor round per element (FNV-1a over word-sized values)
    // with a single splitmix64 finalizer: the lookup sits on the
    // per-message steady state, so the per-element cost dominates and a
    // full avalanche per element is measurably too expensive there.
    std::uint64_t h = 0x9e3779b97f4a7c15ull ^ key.size();
    for (std::size_t v : key) {
      h = (h ^ static_cast<std::uint64_t>(v)) * 0x00000100000001b3ull;
    }
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 31;
    return h;
  }

  Plan* find(std::span<const std::size_t> key) {
    if (entries_.empty()) return nullptr;
    const std::uint64_t h = hash_key(key);
    std::size_t i = static_cast<std::size_t>(h) & mask_;
    while (slots_[i] != 0) {
      Entry& e = *entries_[slots_[i] - 1];
      if (e.hash == h && e.key.size() == key.size() &&
          std::equal(e.key.begin(), e.key.end(), key.begin())) {
        return &e.plan;
      }
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  Plan& insert(std::span<const std::size_t> key, Plan plan) {
    if ((entries_.size() + 1) * 2 > slots_.size()) grow();
    auto e = std::make_unique<Entry>();
    e->hash = hash_key(key);
    e->key.assign(key.begin(), key.end());
    e->plan = std::move(plan);
    entries_.push_back(std::move(e));
    place(entries_.size());
    return entries_.back()->plan;
  }

  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::uint64_t hash = 0;
    std::vector<std::size_t> key;
    Plan plan;
  };

  void place(std::size_t entry_index) {  // 1-based slot value
    const std::uint64_t h = entries_[entry_index - 1]->hash;
    std::size_t i = static_cast<std::size_t>(h) & mask_;
    while (slots_[i] != 0) i = (i + 1) & mask_;
    slots_[i] = static_cast<std::uint32_t>(entry_index);
  }

  void grow() {
    const std::size_t cap = slots_.empty() ? 16 : slots_.size() * 2;
    slots_.assign(cap, 0);
    mask_ = cap - 1;
    for (std::size_t n = 1; n <= entries_.size(); ++n) place(n);
  }

  std::vector<std::unique_ptr<Entry>> entries_;
  std::vector<std::uint32_t> slots_;
  std::size_t mask_ = 0;
};

/// Per-tree cache of alignment plans and scratch buffers. Not thread-safe:
/// one workspace per worker (QueryEngine hands each pool worker its own).
class FactorWorkspace {
 public:
  /// out = a × b (merged scope, legacy order). out must not alias a or b.
  void product(const FlatFactor& a, const FlatFactor& b, FlatFactor& out);

  /// out = base × factors[0] × factors[1] × ... (left fold, the order
  /// product_with_messages uses). out must not alias any input. Two or
  /// more factors execute through the blocked multi-operand ChainPlan
  /// (bit-identical per element, output written once); a single factor
  /// keeps the pairwise flat path.
  void product_chain(const FlatFactor& base,
                     std::span<const FlatFactor* const> factors,
                     FlatFactor& out);

  /// Opt-in deep-chain guard: out = (base × factors...) computed in log
  /// space and rescaled by its maximum element; returns log_scale such
  /// that the true product is out * exp(log_scale). Nothing in the
  /// serving path routes here by default — posteriors normalize away the
  /// scale and the flat fold is exact — but a caller folding hundreds of
  /// sub-unit tables (repeated-normalization territory) can switch to
  /// this path to keep relative magnitudes at ~1 ulp-per-term cost.
  double product_chain_log(const FlatFactor& base,
                           std::span<const FlatFactor* const> factors,
                           FlatFactor& out);

  /// out = (base × factors...) with every variable outside \p target
  /// summed out — the clique→sepset message. On SIMD tiers this fuses into
  /// one accumulation pass with no intermediate factor; on the scalar tier
  /// it runs the exact two-step pipeline (bit-identical to legacy).
  void product_chain_reduce(const FlatFactor& base,
                            std::span<const FlatFactor* const> factors,
                            std::span<const std::size_t> target,
                            FlatFactor& out);

  /// out = f with every variable outside \p target summed out.
  void reduce(const FlatFactor& f, std::span<const std::size_t> target,
              FlatFactor& out);

  std::size_t plan_hits() const { return plan_hits_; }
  std::size_t plan_misses() const { return plan_misses_; }

 private:
  const ProductPlan& product_plan(const FlatFactor& a, const FlatFactor& b);
  const ReducePlan& reduce_plan(const FlatFactor& f,
                                std::span<const std::size_t> target);
  const ChainPlan& chain_plan(std::span<const FlatFactor* const> ops);
  const ChainReducePlan& chain_reduce_plan(
      std::span<const FlatFactor* const> ops,
      std::span<const std::size_t> target);

  /// Fills key_ with the length-prefixed scope tuple of \p ops (+ target).
  void build_key(std::span<const FlatFactor* const> ops,
                 std::span<const std::size_t> target);

  PlanCache<ProductPlan> product_plans_;
  PlanCache<ReducePlan> reduce_plans_;
  PlanCache<ChainPlan> chain_plans_;
  PlanCache<ChainReducePlan> chain_reduce_plans_;
  std::vector<std::size_t> key_;              // lookup-key scratch
  std::vector<const FlatFactor*> ops_;        // operand-list scratch
  std::vector<std::size_t> odometer_;
  std::vector<double> scratch_;
  FlatFactor chain_tmp_[2];
  FlatFactor fused_tmp_;  // scalar-tier staging for product_chain_reduce
  std::size_t plan_hits_ = 0;
  std::size_t plan_misses_ = 0;
};

}  // namespace kertbn::bn
