#pragma once
/// \file factor_kernels.hpp
/// Flat factor kernels for the query-serving hot path.
///
/// Factor::product / marginalize are correct but allocate a fresh Factor
/// and re-derive stride maps on every call — fine for one-shot variable
/// elimination, ruinous for a junction tree that re-runs the same message
/// schedule on every evidence change. These kernels split each operation
/// into a *plan* (alignment and stride tables, a pure function of the two
/// scopes) and an *execution* (contiguous inner loops over raw value
/// arrays). A FactorWorkspace caches plans keyed by the scope pair and
/// reuses scratch buffers, so a calibrated tree's steady state performs no
/// allocation and no scope searching at all.
///
/// Bit-exactness contract: every kernel performs the same floating-point
/// operations in the same order as the legacy Factor code it replaces
/// (product entries are single multiplies of the same operands; reductions
/// eliminate one variable at a time, innermost sum ascending over the
/// eliminated states). Inference built on these kernels is therefore
/// bit-identical to the legacy engines, which the equivalence suite
/// asserts with exact comparisons.

#include <cstddef>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "bn/factor.hpp"

namespace kertbn::bn {

/// Evidence as sorted (node, state) pairs — the hot-path replacement for
/// std::map on calibration and query interfaces (contiguous, no per-node
/// allocation, binary-searchable).
using SortedEvidence = std::vector<std::pair<std::size_t, std::size_t>>;

/// Lightweight factor for kernel pipelines: the same layout contract as
/// Factor (values row-major in scope order, first variable most
/// significant) without per-construction invariant checks, so instances
/// can be recycled across calibrations.
struct FlatFactor {
  std::vector<std::size_t> scope;
  std::vector<std::size_t> cards;
  std::vector<double> values;

  static FlatFactor unit() { return FlatFactor{{}, {}, {1.0}}; }
  static FlatFactor from(const Factor& f) {
    return FlatFactor{f.scope(), f.cardinalities(), f.values()};
  }
  Factor to_factor() const { return Factor(scope, cards, values); }

  std::size_t size() const { return values.size(); }
  /// Sum of all entries, in storage order (same order as Factor::total).
  double total() const;
};

/// Precomputed alignment for product(a, b) -> out. The merged scope is a's
/// variables followed by b's new ones — the exact order Factor::product
/// uses — so executions are bit-identical to the legacy path.
struct ProductPlan {
  std::vector<std::size_t> out_scope;
  std::vector<std::size_t> out_cards;
  std::size_t out_size = 1;
  /// Per out-dimension stride into each operand (0 when absent from it).
  std::vector<std::size_t> stride_a;
  std::vector<std::size_t> stride_b;
};

ProductPlan make_product_plan(std::span<const std::size_t> scope_a,
                              std::span<const std::size_t> cards_a,
                              std::span<const std::size_t> scope_b,
                              std::span<const std::size_t> cards_b);

/// out[i] = a[align_a(i)] * b[align_b(i)] for every merged-scope index.
/// \p odometer is caller-provided scratch (resized internally).
void product_into(const ProductPlan& plan, std::span<const double> a,
                  std::span<const double> b,
                  std::vector<std::size_t>& odometer,
                  std::vector<double>& out);

/// Precomputed pipeline for "sum out every scope variable not in target".
/// Variables are eliminated one at a time in scope order — the exact
/// elimination order (and therefore the exact floating-point sums) of the
/// legacy marginalize_to loop in junction_tree.cpp.
struct ReducePlan {
  struct Step {
    std::size_t stride = 1;    ///< Source stride of the eliminated variable.
    std::size_t card = 1;      ///< Its cardinality.
    std::size_t in_size = 1;   ///< Source value count.
    std::size_t out_size = 1;  ///< Result value count.
  };
  std::vector<Step> steps;
  /// Surviving variables in surviving order (target as a subsequence of
  /// the input scope).
  std::vector<std::size_t> out_scope;
  std::vector<std::size_t> out_cards;
  std::size_t out_size = 1;
};

ReducePlan make_reduce_plan(std::span<const std::size_t> scope,
                            std::span<const std::size_t> cards,
                            std::span<const std::size_t> target);

/// Runs the elimination pipeline into \p out; \p scratch provides
/// ping-pong storage between steps (resized internally, capacity kept).
void reduce_into(const ReducePlan& plan, std::span<const double> in,
                 std::vector<double>& scratch, std::vector<double>& out);

/// Zeroes every entry of \p f whose state of \p var differs from
/// \p state. Arithmetic-equivalent to multiplying by an indicator factor
/// (bit-identical for the non-negative values factors hold: x*1.0 == x and
/// x*0.0 == +0.0), without allocating or growing the scope — which is what
/// keeps every downstream plan evidence-independent.
void apply_evidence(FlatFactor& f, std::size_t var, std::size_t state);

/// Per-tree cache of alignment plans and scratch buffers. Not thread-safe:
/// one workspace per worker (QueryEngine hands each pool worker its own).
class FactorWorkspace {
 public:
  /// out = a × b (merged scope, legacy order). out must not alias a or b.
  void product(const FlatFactor& a, const FlatFactor& b, FlatFactor& out);

  /// out = base × factors[0] × factors[1] × ... (left fold, the order
  /// product_with_messages uses). out must not alias any input.
  void product_chain(const FlatFactor& base,
                     std::span<const FlatFactor* const> factors,
                     FlatFactor& out);

  /// out = f with every variable outside \p target summed out.
  void reduce(const FlatFactor& f, std::span<const std::size_t> target,
              FlatFactor& out);

  std::size_t plan_hits() const { return plan_hits_; }
  std::size_t plan_misses() const { return plan_misses_; }

 private:
  using Key = std::pair<std::vector<std::size_t>, std::vector<std::size_t>>;

  const ProductPlan& product_plan(const FlatFactor& a, const FlatFactor& b);
  const ReducePlan& reduce_plan(const FlatFactor& f,
                                std::span<const std::size_t> target);

  std::map<Key, ProductPlan> product_plans_;
  std::map<Key, ReducePlan> reduce_plans_;
  std::vector<std::size_t> odometer_;
  std::vector<double> scratch_;
  FlatFactor chain_tmp_[2];
  std::size_t plan_hits_ = 0;
  std::size_t plan_misses_ = 0;
};

}  // namespace kertbn::bn
