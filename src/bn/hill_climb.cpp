#include "bn/hill_climb.hpp"

#include <algorithm>

#include "common/contract.hpp"
#include "graph/dag.hpp"

namespace kertbn::bn {
namespace {

bool contains(const std::vector<std::size_t>& xs, std::size_t x) {
  return std::find(xs.begin(), xs.end(), x) != xs.end();
}

}  // namespace

StructureResult hill_climb_search(const Dataset& data,
                                  std::span<const Variable> vars,
                                  const FamilyScoreFn& score,
                                  const HillClimbOptions& opts) {
  const std::size_t n = vars.size();
  KERTBN_EXPECTS(data.cols() == n);

  // Current state: parent sets mirrored in a Dag for cycle checking, plus
  // cached family scores.
  graph::Dag dag(n);
  StructureResult current;
  current.parents.assign(n, {});
  std::vector<double> family(n);
  for (std::size_t v = 0; v < n; ++v) {
    family[v] = score(data, v, current.parents[v]);
  }

  auto family_with = [&](std::size_t child,
                         const std::vector<std::size_t>& parents) {
    return score(data, child, parents);
  };

  for (std::size_t iter = 0; iter < opts.max_iterations; ++iter) {
    // Best single move: (type, a, b, gain). type 0 add a->b, 1 delete
    // a->b, 2 reverse a->b.
    int best_type = -1;
    std::size_t best_a = 0;
    std::size_t best_b = 0;
    double best_gain = opts.min_gain;
    std::vector<std::size_t> scratch;

    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = 0; b < n; ++b) {
        if (a == b) continue;
        const bool edge_ab = dag.has_edge(a, b);
        if (!edge_ab) {
          // Add a->b: acyclic iff a is not reachable from b.
          if (current.parents[b].size() >= opts.max_parents) continue;
          if (dag.reachable(b, a)) continue;
          scratch = current.parents[b];
          scratch.push_back(a);
          const double gain = family_with(b, scratch) - family[b];
          if (gain > best_gain) {
            best_gain = gain;
            best_type = 0;
            best_a = a;
            best_b = b;
          }
        } else {
          // Delete a->b.
          scratch = current.parents[b];
          scratch.erase(std::find(scratch.begin(), scratch.end(), a));
          const double del_gain = family_with(b, scratch) - family[b];
          if (del_gain > best_gain) {
            best_gain = del_gain;
            best_type = 1;
            best_a = a;
            best_b = b;
          }
          // Reverse a->b to b->a: remove then check b->a stays acyclic.
          if (current.parents[a].size() >= opts.max_parents) continue;
          dag.remove_edge(a, b);
          const bool ok = !dag.reachable(a, b);
          if (ok) {
            std::vector<std::size_t> pa = current.parents[a];
            pa.push_back(b);
            const double gain = del_gain +
                                (family_with(a, pa) - family[a]);
            if (gain > best_gain) {
              best_gain = gain;
              best_type = 2;
              best_a = a;
              best_b = b;
            }
          }
          dag.add_edge(a, b);  // restore
        }
      }
    }

    if (best_type < 0) break;  // local optimum

    if (best_type == 0) {
      const bool ok = dag.add_edge(best_a, best_b);
      KERTBN_ASSERT(ok);
      current.parents[best_b].push_back(best_a);
      family[best_b] = family_with(best_b, current.parents[best_b]);
    } else if (best_type == 1) {
      dag.remove_edge(best_a, best_b);
      auto& pb = current.parents[best_b];
      pb.erase(std::find(pb.begin(), pb.end(), best_a));
      family[best_b] = family_with(best_b, pb);
    } else {
      dag.remove_edge(best_a, best_b);
      const bool ok = dag.add_edge(best_b, best_a);
      KERTBN_ASSERT(ok);
      auto& pb = current.parents[best_b];
      pb.erase(std::find(pb.begin(), pb.end(), best_a));
      current.parents[best_a].push_back(best_b);
      family[best_b] = family_with(best_b, pb);
      family[best_a] = family_with(best_a, current.parents[best_a]);
    }
    KERTBN_ASSERT(!contains(current.parents[best_b], best_b));
  }

  current.score = 0.0;
  for (std::size_t v = 0; v < n; ++v) current.score += family[v];
  return current;
}

}  // namespace kertbn::bn
