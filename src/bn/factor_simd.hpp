#pragma once
/// \file factor_simd.hpp
/// Runtime-dispatched inner-loop primitives for the factor kernels.
///
/// Every hot loop in factor_kernels.cpp bottoms out in one of these five
/// primitives, resolved per call against kertbn::simd::active_tier() (a
/// relaxed atomic read — tests flip tiers mid-process). Three executions
/// exist: scalar (bit-identical to the legacy Factor loops), AVX2+FMA
/// (4 doubles/op) and AVX-512 F/DQ (8 doubles/op), compiled with
/// per-function target attributes in factor_simd.cpp so the binary runs on
/// any x86-64 and only dispatches into code the host supports — the same
/// structure as the SSE4.2 CRC32C dispatch in src/durable/crc32c.cpp.
///
/// All primitives are gather-free by contract: an operand either streams
/// contiguously (step == 1) or broadcasts one value (step == 0) across the
/// run. The plans in factor_kernels restructure the odometer walk so the
/// innermost dimension satisfies this before a vector primitive is chosen.
///
/// Exactness per primitive:
///   * chain_mul       — products only: bit-exact on EVERY tier.
///   * reduce_cols     — per-output accumulation order unchanged by
///                       vectorization (lane i sums column i in the same
///                       ascending order): bit-exact on EVERY tier.
///   * hsum, chain_dot, chain_fma — SIMD tiers re-associate sums; bounded
///                       by the tolerance equivalence suites. Their scalar
///                       executions are exact sequential folds.

#include <cstddef>

namespace kertbn::bn::simd_kernels {

/// One operand of a chain primitive over an inner run: base pointer plus
/// per-element step. Vector paths require step ∈ {0 (broadcast),
/// 1 (contiguous)}.
struct ChainOp {
  const double* p = nullptr;
  std::size_t step = 0;
};

struct KernelOps {
  /// out[i] = fold_left(ops, *): ops[0][i*s0] * ops[1][i*s1] * ...
  void (*chain_mul)(double* out, const ChainOp* ops, std::size_t nops,
                    std::size_t n);
  /// out[i] += chain product at i (fused message, surviving run).
  void (*chain_fma)(double* out, const ChainOp* ops, std::size_t nops,
                    std::size_t n);
  /// Returns sum_i of the chain product at i (fused message, eliminated
  /// run).
  double (*chain_dot)(const ChainOp* ops, std::size_t nops, std::size_t n);
  /// out[i] = sum_{k < card} in[k*stride + i] for i < stride, k ascending
  /// per output element.
  void (*reduce_cols)(double* out, const double* in, std::size_t stride,
                      std::size_t card);
  /// Sum of a contiguous run.
  double (*hsum)(const double* p, std::size_t n);
};

/// Primitive table for the currently active dispatch tier.
const KernelOps& active_ops();

}  // namespace kertbn::bn::simd_kernels
