#pragma once
/// \file tan.hpp
/// Tree-Augmented Naive Bayes structure learning. The paper's Section 3.3
/// cites TAN as the classic compromise that "reduces the complexity of
/// parameter learning by focusing only on important parent-children
/// dependencies"; related work [9] learns TANs over resource metrics. We
/// provide it as an additional pure-data baseline between the naive Bayes
/// star and the full K2 search.
///
/// Algorithm (Friedman, Geiger & Goldszmidt 1997): compute the conditional
/// mutual information I(X_i; X_j | C) for every feature pair, build the
/// maximum-weight spanning tree, root it arbitrarily, and add the class C
/// as a parent of every feature.

#include "bn/dataset.hpp"
#include "bn/structure_learning.hpp"
#include "bn/variable.hpp"

namespace kertbn::bn {

/// Empirical conditional mutual information I(X_a; X_b | C) over discrete
/// columns of \p data (natural log; >= 0 up to sampling noise).
double conditional_mutual_information(const Dataset& data, std::size_t a,
                                      std::size_t b, std::size_t class_col,
                                      std::span<const Variable> vars);

/// Learns the TAN parent sets: every feature gets the class plus at most
/// one feature parent (its tree neighbor toward the root). All variables
/// must be discrete. The returned StructureResult's score is the total
/// spanning-tree weight (sum of selected CMI values).
StructureResult tan_structure(const Dataset& data,
                              std::span<const Variable> vars,
                              std::size_t class_node);

}  // namespace kertbn::bn
