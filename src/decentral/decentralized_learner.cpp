#include "decentral/decentralized_learner.hpp"

#include "obs/sink.hpp"
#include "obs/span.hpp"

#include <algorithm>

#include "common/contract.hpp"
#include "common/stopwatch.hpp"

namespace kertbn::dec {
namespace {

/// Per-service agent state: the locally collected column, an inbox, and the
/// fitted CPD produced by the compute phase.
struct AgentState {
  std::size_t node = 0;
  std::vector<double> local_column;
  Channel inbox;
  std::unique_ptr<bn::Cpd> fitted;
  double fit_seconds = 0.0;
  std::size_t missing_parents = 0;
};

/// Fits one agent's CPD from its own column plus the parent columns that
/// arrived in its inbox. This function sees *only* agent-local state — the
/// locality that lets the computation run on the service's machine. Parent
/// batches lost in transit are tolerated: the agent retries with backoff,
/// then zero-fills the missing column and fits anyway (the missing
/// parent's influence is simply unlearnable this round).
void agent_compute(AgentState& agent, const bn::BayesianNetwork& net,
                   const bn::ParameterLearnOptions& opts,
                   const DecentralizedOptions& degraded) {
  const auto pars = net.dag().parents(agent.node);
  const std::size_t p = pars.size();

  // Drain up to the expected parent batches, giving up per message after
  // the retry budget. A closed inbox returns immediately, so the common
  // lost-message case (sender dropped by a partition, then the exchange
  // phase closed the channel) costs no wall-clock wait at all.
  std::vector<DataMessage> received;
  received.reserve(p);
  for (std::size_t i = 0; i < p; ++i) {
    std::optional<DataMessage> msg;
    std::chrono::nanoseconds wait = degraded.receive_timeout;
    for (std::size_t attempt = 0; attempt <= degraded.receive_retries;
         ++attempt) {
      msg = agent.inbox.receive_for(wait);
      if (msg.has_value() || agent.inbox.closed()) break;
      wait *= 2;  // exponential backoff
    }
    if (!msg.has_value()) {
      // Once one expected batch timed out against a closed, drained inbox
      // the rest can't be in flight either.
      if (agent.inbox.closed() && agent.inbox.pending() == 0) break;
      continue;
    }
    received.push_back(std::move(*msg));
  }

  // Assemble the local mini-dataset: parent columns in parent order, then
  // the agent's own column. nullptr source = lost batch, zero-filled.
  std::vector<std::string> columns;
  columns.reserve(p + 1);
  std::vector<const std::vector<double>*> source(p + 1, nullptr);
  for (std::size_t i = 0; i < p; ++i) {
    columns.push_back("parent_" + std::to_string(pars[i]));
    for (const auto& msg : received) {
      if (msg.from_service == pars[i]) {
        source[i] = &msg.column;
        break;
      }
    }
    if (source[i] == nullptr) ++agent.missing_parents;
  }
  columns.push_back("self");
  source[p] = &agent.local_column;

  const std::size_t rows = agent.local_column.size();
  bn::Dataset local(std::move(columns));
  std::vector<double> row(p + 1);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c <= p; ++c) {
      if (source[c] == nullptr) {
        row[c] = 0.0;
        continue;
      }
      KERTBN_ASSERT(source[c]->size() == rows);
      row[c] = (*source[c])[r];
    }
    local.add_row(row);
  }

  std::vector<std::size_t> parent_cols(p);
  for (std::size_t i = 0; i < p; ++i) parent_cols[i] = i;

  Stopwatch timer;
  if (net.variable(agent.node).is_discrete()) {
    std::vector<std::size_t> parent_cards;
    parent_cards.reserve(p);
    for (std::size_t par : pars) {
      parent_cards.push_back(net.variable(par).cardinality);
    }
    auto cpd = bn::fit_tabular_cpd(local, p, parent_cols,
                                   net.variable(agent.node).cardinality,
                                   parent_cards, opts.dirichlet_alpha);
    agent.fit_seconds = timer.seconds();
    agent.fitted = std::make_unique<bn::TabularCpd>(std::move(cpd));
  } else {
    auto cpd = bn::fit_linear_gaussian_cpd(local, p, parent_cols,
                                           opts.min_sigma, opts.ridge);
    agent.fit_seconds = timer.seconds();
    agent.fitted = std::make_unique<bn::LinearGaussianCpd>(std::move(cpd));
  }
}

}  // namespace

DecentralizedReport learn_parameters_decentralized(
    bn::BayesianNetwork& net, const bn::Dataset& data,
    const bn::ParameterLearnOptions& opts, ThreadPool* pool,
    const DecentralizedOptions& degraded) {
  KERTBN_EXPECTS(data.cols() == net.size());
  KERTBN_SPAN_VAR(span, "decentral.round");
  span.tag("nodes", static_cast<std::uint64_t>(net.size()));
  DecentralizedReport report;
  report.per_agent_seconds.assign(net.size(), 0.0);

  // Stand up one agent per learnable node, holding only its own column.
  std::vector<std::unique_ptr<AgentState>> agents;
  std::vector<AgentState*> agent_of(net.size(), nullptr);
  for (std::size_t v = 0; v < net.size(); ++v) {
    if (net.has_cpd(v)) continue;
    auto agent = std::make_unique<AgentState>();
    agent->node = v;
    agent->local_column = data.column(v);
    agent_of[v] = agent.get();
    agents.push_back(std::move(agent));
  }

  // Exchange phase: each learnable node's parents ship it their batched
  // columns (in deployment this rides the application's own request
  // messages as an extra SOAP segment). A partitioned fabric drops sends.
  for (const auto& agent : agents) {
    for (std::size_t p : net.dag().parents(agent->node)) {
      DataMessage msg;
      msg.from_service = p;
      msg.column = data.column(p);
      ++report.messages_sent;
      if (agent->inbox.send(std::move(msg))) {
        report.values_shipped += data.rows();
      }
    }
  }
  // Every message is either enqueued or lost at this point; close the
  // inboxes so agents never wait on batches that cannot arrive. (Clean
  // shutdown: a receiver blocked in receive() wakes with nullopt.)
  for (const auto& agent : agents) agent->inbox.close();

  // Compute phase: every agent fits its own CPD, concurrently when a pool
  // is supplied.
  if (pool != nullptr) {
    std::vector<std::future<void>> futures;
    futures.reserve(agents.size());
    for (auto& agent : agents) {
      AgentState* a = agent.get();
      futures.push_back(pool->submit(
          [a, &net, &opts, &degraded] { agent_compute(*a, net, opts, degraded); }));
    }
    for (auto& f : futures) f.get();
  } else {
    for (auto& agent : agents) agent_compute(*agent, net, opts, degraded);
  }

  // The central server only assembles the fitted CPDs into the model.
  for (auto& agent : agents) {
    report.per_agent_seconds[agent->node] = agent->fit_seconds;
    report.decentralized_seconds =
        std::max(report.decentralized_seconds, agent->fit_seconds);
    report.centralized_seconds += agent->fit_seconds;
    report.messages_lost += agent->missing_parents;
    if (agent->missing_parents > 0) ++report.degraded_agents;
    net.set_cpd(agent->node, std::move(agent->fitted));
  }
  span.tag("messages", static_cast<std::uint64_t>(report.messages_sent));
  span.tag("values", static_cast<std::uint64_t>(report.values_shipped));
  span.tag("lost", static_cast<std::uint64_t>(report.messages_lost));
  if (obs::enabled()) {
    auto& reg = obs::MetricsRegistry::instance();
    static obs::Counter& rounds = reg.counter("decentral.rounds");
    static obs::Counter& lost = reg.counter("decentral.messages_lost");
    static obs::Counter& degraded_fits =
        reg.counter("decentral.degraded_agents");
    static obs::Histogram& fit_ns = reg.histogram("decentral.agent_fit_ns");
    rounds.add(1);
    if (report.messages_lost > 0) lost.add(report.messages_lost);
    if (report.degraded_agents > 0) degraded_fits.add(report.degraded_agents);
    for (const auto& agent : agents) {
      fit_ns.record(static_cast<std::uint64_t>(agent->fit_seconds * 1e9));
    }
  }
  // A degraded round is a model-quality signal: CPDs fit with zero-filled
  // parent columns predict worse, which the quality layer's scorer will
  // see. Surface it on the same structured-event feed.
  if (report.degraded_agents > 0 && obs::has_sink()) {
    obs::LogEvent ev;
    ev.name = "kert.decentral.degraded_round";
    ev.t_ns = obs::now_ns();
    ev.tags.push_back(
        {"messages_lost", static_cast<std::uint64_t>(report.messages_lost)});
    ev.tags.push_back(
        {"degraded_agents",
         static_cast<std::uint64_t>(report.degraded_agents)});
    obs::emit_event(ev);
  }
  return report;
}

}  // namespace kertbn::dec
