#pragma once
/// \file channel.hpp
/// Thread-safe message channel used as each learning agent's inbox. The
/// decentralized parameter-learning protocol of Section 3.4 exchanges
/// batched elapsed-time columns between monitoring agents; this in-process
/// fabric stands in for the SOAP-segment piggybacking the paper describes.
///
/// The channel is failure-aware: receive() blocks until a message arrives
/// *or the channel is closed* (never forever), receive_for() bounds the
/// wait, and send() consults the installed fault plan — during a partition
/// window the message is dropped on the floor, exactly what a real
/// partitioned fabric does.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace kertbn::dec {

/// A batched data message: the sender's service id and its locally
/// collected elapsed-time column for the current window.
struct DataMessage {
  std::size_t from_service = 0;
  std::vector<double> column;
};

/// Bounded MPSC channel with blocking-until-closed receive. The mailbox
/// holds at most `capacity` messages (default kDefaultCapacity); when a
/// send would exceed it, the *oldest* pending message is dropped
/// (drop-oldest — newest data wins, matching the sliding-window semantics
/// downstream) and counted under kert.channel.dropped_messages. A
/// partitioned peer can therefore no longer grow a dead inbox without
/// limit.
class Channel {
 public:
  static constexpr std::size_t kDefaultCapacity = 1024;

  explicit Channel(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}
  /// Enqueues a message (any thread). Returns false — dropping the
  /// message — when the channel is closed or the fault fabric is inside a
  /// partition window.
  bool send(DataMessage msg);

  /// Blocks until a message is available (dequeues it) or the channel is
  /// closed and drained (returns nullopt). Pending messages are still
  /// delivered after close().
  std::optional<DataMessage> receive();

  /// Like receive(), but gives up after \p timeout (nullopt on timeout).
  std::optional<DataMessage> receive_for(std::chrono::nanoseconds timeout);

  /// Non-blocking receive.
  std::optional<DataMessage> try_receive();

  /// Marks the channel closed and wakes every blocked receiver. Further
  /// sends are rejected; pending messages remain receivable. Idempotent.
  void close();

  bool closed() const;

  std::size_t pending() const;

  std::size_t capacity() const { return capacity_; }
  /// Messages evicted by the drop-oldest bound since construction.
  std::size_t dropped_oldest() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<DataMessage> queue_;
  bool closed_ = false;
  std::size_t capacity_ = kDefaultCapacity;
  std::size_t dropped_oldest_ = 0;
};

}  // namespace kertbn::dec
