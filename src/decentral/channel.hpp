#pragma once
/// \file channel.hpp
/// Thread-safe message channel used as each learning agent's inbox. The
/// decentralized parameter-learning protocol of Section 3.4 exchanges
/// batched elapsed-time columns between monitoring agents; this in-process
/// fabric stands in for the SOAP-segment piggybacking the paper describes.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace kertbn::dec {

/// A batched data message: the sender's service id and its locally
/// collected elapsed-time column for the current window.
struct DataMessage {
  std::size_t from_service = 0;
  std::vector<double> column;
};

/// Unbounded MPSC channel with blocking receive.
class Channel {
 public:
  /// Enqueues a message (any thread).
  void send(DataMessage msg);

  /// Blocks until a message is available and dequeues it.
  DataMessage receive();

  /// Non-blocking receive.
  std::optional<DataMessage> try_receive();

  std::size_t pending() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<DataMessage> queue_;
};

}  // namespace kertbn::dec
