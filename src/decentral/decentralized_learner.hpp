#pragma once
/// \file decentralized_learner.hpp
/// Decentralized parameter learning (Section 3.4). Each service's monitoring
/// agent holds only its locally collected elapsed-time column; agents whose
/// node has parents receive the parents' batched columns over channels, then
/// every agent fits its own CPD P(X_i | Φ(X_i)) concurrently. The central
/// server keeps only the structure and the assembled CPDs.
///
/// The decentralized completion time is max over per-agent compute times
/// (they run in parallel on distinct machines); the centralized comparison
/// is the sequential sum — exactly the quantities plotted in Figure 5.
///
/// Degraded operation: a real fabric loses messages (crashed peers,
/// partitions). Agents therefore wait with a bounded retry-with-backoff
/// schedule instead of blocking forever; a parent column that never arrives
/// is zero-filled so the fit still yields a full-arity CPD (the missing
/// parent's weight is ridge-driven to ~0 — the agent simply learns without
/// that signal this round). Every inbox is closed once the exchange phase
/// ends, so missing messages fail fast instead of timing out.

#include <chrono>
#include <memory>
#include <vector>

#include "bn/learning.hpp"
#include "bn/network.hpp"
#include "common/thread_pool.hpp"
#include "decentral/channel.hpp"

namespace kertbn::dec {

/// Degraded-mode knobs for the receive side of the protocol.
struct DecentralizedOptions {
  /// First receive wait; each retry doubles it (exponential backoff).
  std::chrono::milliseconds receive_timeout{2};
  /// Additional attempts after the first before declaring the message lost.
  std::size_t receive_retries = 3;
};

/// Outcome of one decentralized learning round.
struct DecentralizedReport {
  /// Wall-clock seconds each agent spent fitting its CPD.
  std::vector<double> per_agent_seconds;
  /// Completion time of the concurrent protocol: max over agents.
  double decentralized_seconds = 0.0;
  /// What a central server doing the same fits sequentially would take.
  double centralized_seconds = 0.0;
  /// Parent->child column transfers attempted.
  std::size_t messages_sent = 0;
  /// Total doubles shipped across channels.
  std::size_t values_shipped = 0;
  /// Expected parent batches that never arrived (lost to partitions or
  /// crashed peers); each cost its agent a zero-filled column.
  std::size_t messages_lost = 0;
  /// Agents that fit with at least one missing parent column.
  std::size_t degraded_agents = 0;
};

/// Runs the decentralized protocol for every node of \p net lacking a CPD
/// (knowledge-given CPDs such as the response-time node's are never
/// relearned). \p data holds the full window, columns in node order — each
/// agent is only ever handed its own column plus what arrives on its
/// channel, preserving the locality the paper exploits.
///
/// When \p pool is non-null the per-agent fits genuinely run concurrently on
/// it; otherwise they run serially (timings are measured per fit either
/// way, and results are identical — the protocol is deterministic). The
/// round always terminates, even when peers never send: see
/// DecentralizedOptions.
DecentralizedReport learn_parameters_decentralized(
    bn::BayesianNetwork& net, const bn::Dataset& data,
    const bn::ParameterLearnOptions& opts = {}, ThreadPool* pool = nullptr,
    const DecentralizedOptions& degraded = {});

}  // namespace kertbn::dec
