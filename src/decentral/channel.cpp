#include "decentral/channel.hpp"

#include "fault/fault_injector.hpp"
#include "obs/metrics.hpp"

namespace kertbn::dec {

namespace {

/// Fabric-wide traffic counters (all channels aggregate into one view —
/// the in-process analogue of the paper's per-interval message budget).
struct ChannelMetrics {
  obs::Counter& messages;
  obs::Counter& values;
  obs::Counter& bytes;
  obs::Counter& dropped;
  obs::Counter& dropped_oldest;
  obs::Gauge& pending;

  static ChannelMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static ChannelMetrics m{reg.counter("channel.messages"),
                            reg.counter("channel.values"),
                            reg.counter("channel.bytes"),
                            reg.counter("channel.dropped"),
                            reg.counter("kert.channel.dropped_messages"),
                            reg.gauge("channel.pending")};
    return m;
  }
};

}  // namespace

bool Channel::send(DataMessage msg) {
  // Partitioned fabric: the message never reaches the inbox. The receiver
  // survives via receive_for timeouts / close, not by us pretending.
  if (const fault::FaultInjector* inj = fault::active();
      inj != nullptr && inj->partitioned(fault::sim_now())) {
    if (obs::enabled()) ChannelMetrics::get().dropped.add(1);
    return false;
  }
  const std::size_t values = msg.column.size();
  std::size_t evicted = 0;
  {
    std::lock_guard lock(mutex_);
    if (closed_) {
      if (obs::enabled()) ChannelMetrics::get().dropped.add(1);
      return false;
    }
    while (queue_.size() >= capacity_) {
      queue_.pop_front();
      ++dropped_oldest_;
      ++evicted;
    }
    queue_.push_back(std::move(msg));
  }
  if (obs::enabled()) {
    ChannelMetrics& m = ChannelMetrics::get();
    m.messages.add(1);
    m.values.add(values);
    m.bytes.add(values * sizeof(double));
    if (evicted > 0) {
      m.dropped_oldest.add(evicted);
      m.pending.add(1.0 - static_cast<double>(evicted));
    } else {
      m.pending.add(1.0);
    }
  }
  cv_.notify_one();
  return true;
}

std::optional<DataMessage> Channel::receive() {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [this] { return !queue_.empty() || closed_; });
  if (queue_.empty()) return std::nullopt;
  DataMessage msg = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  if (obs::enabled()) ChannelMetrics::get().pending.add(-1.0);
  return msg;
}

std::optional<DataMessage> Channel::receive_for(
    std::chrono::nanoseconds timeout) {
  std::unique_lock lock(mutex_);
  if (!cv_.wait_for(lock, timeout,
                    [this] { return !queue_.empty() || closed_; })) {
    return std::nullopt;
  }
  if (queue_.empty()) return std::nullopt;
  DataMessage msg = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  if (obs::enabled()) ChannelMetrics::get().pending.add(-1.0);
  return msg;
}

std::optional<DataMessage> Channel::try_receive() {
  std::optional<DataMessage> msg;
  {
    std::lock_guard lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    msg = std::move(queue_.front());
    queue_.pop_front();
  }
  if (obs::enabled()) ChannelMetrics::get().pending.add(-1.0);
  return msg;
}

void Channel::close() {
  {
    std::lock_guard lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool Channel::closed() const {
  std::lock_guard lock(mutex_);
  return closed_;
}

std::size_t Channel::pending() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

std::size_t Channel::dropped_oldest() const {
  std::lock_guard lock(mutex_);
  return dropped_oldest_;
}

}  // namespace kertbn::dec
