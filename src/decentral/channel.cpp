#include "decentral/channel.hpp"

#include "obs/metrics.hpp"

namespace kertbn::dec {

namespace {

/// Fabric-wide traffic counters (all channels aggregate into one view —
/// the in-process analogue of the paper's per-interval message budget).
struct ChannelMetrics {
  obs::Counter& messages;
  obs::Counter& values;
  obs::Counter& bytes;
  obs::Gauge& pending;

  static ChannelMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static ChannelMetrics m{reg.counter("channel.messages"),
                            reg.counter("channel.values"),
                            reg.counter("channel.bytes"),
                            reg.gauge("channel.pending")};
    return m;
  }
};

}  // namespace

void Channel::send(DataMessage msg) {
  if (obs::enabled()) {
    ChannelMetrics& m = ChannelMetrics::get();
    m.messages.add(1);
    m.values.add(msg.column.size());
    m.bytes.add(msg.column.size() * sizeof(double));
    m.pending.add(1.0);
  }
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_one();
}

DataMessage Channel::receive() {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [this] { return !queue_.empty(); });
  DataMessage msg = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  if (obs::enabled()) ChannelMetrics::get().pending.add(-1.0);
  return msg;
}

std::optional<DataMessage> Channel::try_receive() {
  std::optional<DataMessage> msg;
  {
    std::lock_guard lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    msg = std::move(queue_.front());
    queue_.pop_front();
  }
  if (obs::enabled()) ChannelMetrics::get().pending.add(-1.0);
  return msg;
}

std::size_t Channel::pending() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

}  // namespace kertbn::dec
