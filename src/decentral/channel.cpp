#include "decentral/channel.hpp"

namespace kertbn::dec {

void Channel::send(DataMessage msg) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_one();
}

DataMessage Channel::receive() {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [this] { return !queue_.empty(); });
  DataMessage msg = std::move(queue_.front());
  queue_.pop_front();
  return msg;
}

std::optional<DataMessage> Channel::try_receive() {
  std::lock_guard lock(mutex_);
  if (queue_.empty()) return std::nullopt;
  DataMessage msg = std::move(queue_.front());
  queue_.pop_front();
  return msg;
}

std::size_t Channel::pending() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

}  // namespace kertbn::dec
