#pragma once
/// \file piggyback.hpp
/// Transport planning for the decentralized learning data exchange
/// (Section 3.4). Parent services must ship their batched elapsed-time
/// columns to their KERT-BN children once per reporting interval. Two
/// transports exist:
///
///   * dedicated  — the monitoring agent sends a separate report message
///     per (parent -> child) link per interval;
///   * piggyback  — the paper's closing idea: "attaching the data in an
///     extra SOAP segment at the end of the application request messages".
///     Piggybacking works only where application messages actually flow —
///     the workflow's upstream edges. Dependency edges injected from
///     resource-sharing knowledge have no application traffic and must
///     fall back to dedicated messages.
///
/// The planner classifies every data-bearing edge of a KERT-BN against the
/// workflow, then costs a reporting interval under both transports,
/// including whether observed request traffic suffices to carry a batch
/// per interval.

#include <cstddef>
#include <vector>

#include "graph/dag.hpp"
#include "workflow/workflow.hpp"

namespace kertbn::dec {

/// Cost model for one reporting interval (defaults are plain-SOAP-ish).
struct TransportCostModel {
  double bytes_per_value = 8.0;        ///< Encoded measurement size.
  double message_overhead_bytes = 400.0;  ///< Envelope/headers per message.
  /// Extra segment overhead when piggybacking on an existing message.
  double piggyback_overhead_bytes = 48.0;
  /// Per-delivery-attempt loss probability on the reporting fabric. With
  /// loss > 0 the planner costs a retry-with-backoff delivery discipline:
  /// each lost attempt is retransmitted up to max_retries times, so the
  /// expected per-message attempt count is Σ_{k=0..R} p^k and the
  /// per-message delivery probability is 1 - p^(R+1).
  double report_loss_prob = 0.0;
  /// Retransmissions attempted per message after the first send.
  std::size_t max_retries = 3;
};

/// A data-bearing edge (parent service -> child service) and how it ships.
struct PlannedEdge {
  std::size_t parent = 0;
  std::size_t child = 0;
  bool piggybacked = false;  ///< Rides application messages.
};

/// Interval transport plan and costs.
struct TransportPlan {
  std::vector<PlannedEdge> edges;
  /// Dedicated transport: one message per edge per interval.
  std::size_t dedicated_messages = 0;
  double dedicated_bytes = 0.0;
  /// Piggyback transport: extra bytes on existing app messages plus
  /// dedicated fallbacks for non-workflow edges.
  std::size_t piggyback_fallback_messages = 0;
  double piggyback_bytes = 0.0;
  /// Fraction of data-bearing edges that can piggyback.
  double piggyback_coverage = 0.0;
  /// Probability one message survives its retry budget (1 when the cost
  /// model assumes a lossless fabric).
  double delivery_probability = 1.0;
  /// Expected delivery attempts per message under retry-with-backoff.
  double expected_attempts_per_message = 1.0;
  /// Expected batches per interval lost even after every retry
  /// (dedicated transport; piggybacked segments ride the application's own
  /// retry discipline and are counted the same way).
  double expected_undelivered_batches = 0.0;
  /// Bytes saved per interval by piggybacking (>= 0 in sane configs).
  double bytes_saved() const { return dedicated_bytes - piggyback_bytes; }
};

/// Plans one reporting interval. \p structure is the KERT-BN DAG over
/// n services (+ the response node, which carries no agent traffic);
/// \p points_per_interval is the batch size each parent ships;
/// \p requests_per_interval is the application traffic available to carry
/// piggybacked segments on workflow edges (piggybacking splits a batch
/// across that many messages).
TransportPlan plan_transport(const graph::Dag& structure,
                             const wf::Workflow& workflow,
                             std::size_t points_per_interval,
                             double requests_per_interval,
                             const TransportCostModel& cost = {});

}  // namespace kertbn::dec
