#include "decentral/piggyback.hpp"

#include "obs/metrics.hpp"

#include <algorithm>
#include <set>

#include "common/contract.hpp"

namespace kertbn::dec {

TransportPlan plan_transport(const graph::Dag& structure,
                             const wf::Workflow& workflow,
                             std::size_t points_per_interval,
                             double requests_per_interval,
                             const TransportCostModel& cost) {
  const std::size_t n = workflow.service_count();
  KERTBN_EXPECTS(structure.size() >= n);
  KERTBN_EXPECTS(points_per_interval >= 1);
  KERTBN_EXPECTS(requests_per_interval >= 0.0);

  std::set<std::pair<std::size_t, std::size_t>> app_edges;
  for (const auto& e : workflow.upstream_edges()) app_edges.insert(e);

  KERTBN_EXPECTS(cost.report_loss_prob >= 0.0 &&
                 cost.report_loss_prob < 1.0);

  TransportPlan plan;
  const double batch_bytes =
      cost.bytes_per_value * static_cast<double>(points_per_interval);

  // Retry-with-backoff delivery discipline: a message lost with
  // probability q is retransmitted up to R more times, so attempts follow
  // a truncated geometric — E[attempts] = (1 - q^(R+1)) / (1 - q) and the
  // message is delivered unless all R+1 attempts are lost.
  const double q = cost.report_loss_prob;
  double residual_loss = 1.0;  // q^(R+1)
  for (std::size_t k = 0; k <= cost.max_retries; ++k) residual_loss *= q;
  plan.delivery_probability = 1.0 - residual_loss;
  plan.expected_attempts_per_message =
      q > 0.0 ? (1.0 - residual_loss) / (1.0 - q) : 1.0;

  // Data-bearing edges: every service-to-service dependency. (Edges into
  // the response node carry no data — D's CPD is knowledge-given.)
  for (std::size_t child = 0; child < n; ++child) {
    for (std::size_t parent : structure.parents(child)) {
      if (parent >= n) continue;
      PlannedEdge edge;
      edge.parent = parent;
      edge.child = child;
      // Piggybacking needs application messages on this edge, and at least
      // one request per interval to carry the batch.
      edge.piggybacked = app_edges.contains({parent, child}) &&
                         requests_per_interval >= 1.0;
      plan.edges.push_back(edge);

      // Dedicated costing: one report message per edge per interval, each
      // attempt (original + retransmissions) paying the full message cost.
      ++plan.dedicated_messages;
      plan.dedicated_bytes += plan.expected_attempts_per_message *
                              (cost.message_overhead_bytes + batch_bytes);
      plan.expected_undelivered_batches += residual_loss;

      if (edge.piggybacked) {
        // The whole batch rides one application request per interval as a
        // single extra segment ("possibly batching them before reporting").
        // Retransmissions must wait for further app requests, so the retry
        // budget is additionally capped by the available traffic.
        const double attempts =
            std::min(plan.expected_attempts_per_message,
                     std::max(1.0, requests_per_interval));
        plan.piggyback_bytes +=
            attempts * (batch_bytes + cost.piggyback_overhead_bytes);
      } else {
        ++plan.piggyback_fallback_messages;
        plan.piggyback_bytes += plan.expected_attempts_per_message *
                                (cost.message_overhead_bytes + batch_bytes);
      }
    }
  }
  if (!plan.edges.empty()) {
    const auto piggybacked = std::count_if(
        plan.edges.begin(), plan.edges.end(),
        [](const PlannedEdge& e) { return e.piggybacked; });
    plan.piggyback_coverage =
        static_cast<double>(piggybacked) /
        static_cast<double>(plan.edges.size());
  }
  if (obs::enabled()) {
    auto& reg = obs::MetricsRegistry::instance();
    static obs::Counter& piggybacked =
        reg.counter("piggyback.edges_piggybacked");
    static obs::Counter& fallback = reg.counter("piggyback.edges_fallback");
    static obs::Counter& saved = reg.counter("piggyback.bytes_saved");
    static obs::Gauge& coverage = reg.gauge("piggyback.coverage");
    std::size_t hits = 0;
    for (const PlannedEdge& e : plan.edges) hits += e.piggybacked ? 1 : 0;
    piggybacked.add(hits);
    fallback.add(plan.edges.size() - hits);
    if (plan.bytes_saved() > 0.0) {
      saved.add(static_cast<std::uint64_t>(plan.bytes_saved()));
    }
    coverage.set(plan.piggyback_coverage);
  }
  return plan;
}

}  // namespace kertbn::dec
