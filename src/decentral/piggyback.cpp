#include "decentral/piggyback.hpp"

#include <algorithm>
#include <set>

#include "common/contract.hpp"

namespace kertbn::dec {

TransportPlan plan_transport(const graph::Dag& structure,
                             const wf::Workflow& workflow,
                             std::size_t points_per_interval,
                             double requests_per_interval,
                             const TransportCostModel& cost) {
  const std::size_t n = workflow.service_count();
  KERTBN_EXPECTS(structure.size() >= n);
  KERTBN_EXPECTS(points_per_interval >= 1);
  KERTBN_EXPECTS(requests_per_interval >= 0.0);

  std::set<std::pair<std::size_t, std::size_t>> app_edges;
  for (const auto& e : workflow.upstream_edges()) app_edges.insert(e);

  TransportPlan plan;
  const double batch_bytes =
      cost.bytes_per_value * static_cast<double>(points_per_interval);

  // Data-bearing edges: every service-to-service dependency. (Edges into
  // the response node carry no data — D's CPD is knowledge-given.)
  for (std::size_t child = 0; child < n; ++child) {
    for (std::size_t parent : structure.parents(child)) {
      if (parent >= n) continue;
      PlannedEdge edge;
      edge.parent = parent;
      edge.child = child;
      // Piggybacking needs application messages on this edge, and at least
      // one request per interval to carry the batch.
      edge.piggybacked = app_edges.contains({parent, child}) &&
                         requests_per_interval >= 1.0;
      plan.edges.push_back(edge);

      // Dedicated costing: one report message per edge per interval.
      ++plan.dedicated_messages;
      plan.dedicated_bytes += cost.message_overhead_bytes + batch_bytes;

      if (edge.piggybacked) {
        // The whole batch rides one application request per interval as a
        // single extra segment ("possibly batching them before reporting").
        plan.piggyback_bytes +=
            batch_bytes + cost.piggyback_overhead_bytes;
      } else {
        ++plan.piggyback_fallback_messages;
        plan.piggyback_bytes += cost.message_overhead_bytes + batch_bytes;
      }
    }
  }
  if (!plan.edges.empty()) {
    const auto piggybacked = std::count_if(
        plan.edges.begin(), plan.edges.end(),
        [](const PlannedEdge& e) { return e.piggybacked; });
    plan.piggyback_coverage =
        static_cast<double>(piggybacked) /
        static_cast<double>(plan.edges.size());
  }
  return plan;
}

}  // namespace kertbn::dec
