#pragma once
/// \file span.hpp
/// Scoped RAII tracing spans with parent/child nesting that survives
/// thread-pool boundaries. A span measures one named unit of work:
///
///   KERTBN_SPAN("jt.build");                       // anonymous scope
///   KERTBN_SPAN_VAR(span, "kert.reconstruct");     // tag it later
///   span.tag("rows_touched", rows);
///
/// Every span closing records its duration into the registry histogram
/// "span.<name>" (so latency distributions exist even with the null sink)
/// and, when a sink is installed, emits a SpanEvent. Parentage comes from
/// a thread-local context: spans opened inside another span's scope become
/// its children. To cross a thread-pool boundary, capture
/// current_context() at submit time and open a ContextGuard inside the
/// task — ThreadPool::submit does this automatically, so child spans in
/// pooled work are stitched into the submitting span's trace.
///
/// Cost model: with obs disabled (obs::set_enabled(false)) a span is one
/// relaxed atomic load; enabled but sink-less it is two steady_clock reads
/// plus one histogram add — tag() calls are dropped without collecting
/// (tags exist only for the sink), so the event and tag allocations happen
/// only with a sink installed. Spans must be closed on the thread that opened them (RAII
/// does this for you) and nest LIFO per thread.
///
/// Building with -DKERTBN_OBS=OFF defines KERTBN_OBS_DISABLED and turns
/// the macros into no-op objects, removing the instrumentation entirely.

#include <cstdint>
#include <string_view>

#include "obs/sink.hpp"

namespace kertbn::obs {

/// Position in the trace tree: which trace, and which span within it.
/// span_id == 0 means "no enclosing span" (new spans start fresh traces).
struct SpanContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
};

/// The calling thread's innermost open span (zeroes when none).
SpanContext current_context();

/// Scoped override of the thread-local context — the cross-thread glue.
/// Opened at the top of a pooled task with the submitter's context, it
/// makes spans inside the task children of the submitting span.
class ContextGuard {
 public:
  explicit ContextGuard(SpanContext ctx);
  ~ContextGuard();

  ContextGuard(const ContextGuard&) = delete;
  ContextGuard& operator=(const ContextGuard&) = delete;

 private:
  SpanContext prev_;
};

/// A scoped measurement. \p name must outlive the span (string literals).
class Span {
 public:
  explicit Span(const char* name);
  /// Child of \p parent instead of the thread-current span (explicit
  /// cross-thread stitching; prefer ContextGuard where possible).
  Span(const char* name, SpanContext parent);
  ~Span() { close(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void tag(std::string_view key, std::uint64_t value);
  void tag(std::string_view key, double value);
  void tag(std::string_view key, bool value);
  void tag(std::string_view key, std::string value);

  /// This span's context, for hand-stitching children across threads.
  SpanContext context() const { return ctx_; }

  /// Ends the measurement early (idempotent; the destructor is a no-op
  /// afterwards).
  void close();

 private:
  void open(const char* name, SpanContext parent);

  const char* name_ = nullptr;
  bool active_ = false;
  SpanContext ctx_;
  std::uint64_t parent_id_ = 0;
  SpanContext prev_;
  std::uint64_t start_ns_ = 0;
  std::vector<SpanTag> tags_;
};

/// Drop-in inert stand-in used when instrumentation is compiled out.
class NoopSpan {
 public:
  explicit NoopSpan(const char*) {}
  NoopSpan(const char*, SpanContext) {}
  template <typename K, typename V>
  void tag(K&&, V&&) {}
  SpanContext context() const { return {}; }
  void close() {}
};

}  // namespace kertbn::obs

#define KERTBN_OBS_CONCAT_INNER(a, b) a##b
#define KERTBN_OBS_CONCAT(a, b) KERTBN_OBS_CONCAT_INNER(a, b)

#ifdef KERTBN_OBS_DISABLED
#define KERTBN_SPAN(name) \
  ::kertbn::obs::NoopSpan KERTBN_OBS_CONCAT(kertbn_span_, __COUNTER__)(name)
#define KERTBN_SPAN_VAR(var, name) ::kertbn::obs::NoopSpan var(name)
#else
/// Anonymous scoped span.
#define KERTBN_SPAN(name) \
  ::kertbn::obs::Span KERTBN_OBS_CONCAT(kertbn_span_, __COUNTER__)(name)
/// Named scoped span for call sites that attach tags.
#define KERTBN_SPAN_VAR(var, name) ::kertbn::obs::Span var(name)
#endif
