#pragma once
/// \file metrics.hpp
/// Self-telemetry metrics for the modeling pipeline ("the monitor monitors
/// itself"). The paper's autonomic manager watches a service-oriented
/// system through monitoring agents; this registry gives the modeling
/// machinery the same treatment: counters, gauges, and fixed-bucket
/// histograms that hot paths can update for the cost of one relaxed
/// atomic add, aggregated only when somebody asks for a snapshot.
///
/// Design: push-on-hot-path, aggregate-on-read. Every metric is sharded
/// across cache-line-aligned atomic slots; writers pick a shard from a
/// thread-local index (no contention between pool workers), readers sum
/// the shards. Metrics are created on first use and live until process
/// exit, so call sites may cache references in function-local statics:
///
///   static obs::Counter& c =
///       obs::MetricsRegistry::instance().counter("kert.rows_touched");
///   c.add(rows);

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace kertbn::obs {

/// Shards per metric: enough to keep a typical pool's workers on distinct
/// cache lines without bloating the registry.
inline constexpr std::size_t kMetricShards = 16;

/// Stable per-thread shard index (threads are striped round-robin).
std::size_t shard_index();

/// Monotonic event counter.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void add(std::uint64_t v = 1) {
    shards_[shard_index()].v.fetch_add(v, std::memory_order_relaxed);
  }
  /// Sum over shards (racy-but-consistent under concurrent adds).
  std::uint64_t value() const;
  void reset();

  const std::string& name() const { return name_; }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kMetricShards> shards_;
  std::string name_;
};

/// Last-write-wins level with add/sub support (e.g. queue depth).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void set(double v) { bits_.store(encode(v), std::memory_order_relaxed); }
  /// Signed delta for depth-style gauges; returns the new value.
  double add(double delta);
  double value() const { return decode(bits_.load(std::memory_order_relaxed)); }
  void reset() { set(0.0); }

  const std::string& name() const { return name_; }

 private:
  static std::uint64_t encode(double v);
  static double decode(std::uint64_t bits);
  std::atomic<std::uint64_t> bits_{0x0};  // encode(0.0) == 0 (IEEE754 +0)
  std::string name_;
};

/// Aggregated view of one histogram (see Histogram for bucket semantics).
struct HistogramStats {
  static constexpr std::size_t kBuckets = 32;
  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Upper-bound estimate of the q-quantile (q in [0,1]) from the bucket
  /// counts: the inclusive upper edge of the bucket holding that rank.
  std::uint64_t quantile(double q) const;
  /// Inclusive upper edge of bucket \p i (0 for the zero bucket).
  static std::uint64_t bucket_upper_edge(std::size_t i);
};

/// Fixed power-of-two-bucket histogram for latencies (nanoseconds) and
/// sizes (rows, bytes, ...). Bucket 0 counts zeros; bucket i >= 1 counts
/// values v with bit_width(v) == i, i.e. v in [2^(i-1), 2^i); the last
/// bucket absorbs everything with bit_width >= kBuckets - 1. Each bucket,
/// plus count/sum/max, is sharded like Counter.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = HistogramStats::kBuckets;

  explicit Histogram(std::string name) : name_(std::move(name)) {}

  void record(std::uint64_t value);
  static std::size_t bucket_index(std::uint64_t value);

  HistogramStats stats() const;
  void reset();

  const std::string& name() const { return name_; }

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> max{0};
  };
  std::array<Shard, kMetricShards> shards_;
  std::string name_;
};

/// Point-in-time aggregate of every registered metric. Plain data: safe to
/// copy, diff, merge, and serialize long after the registry moved on.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t, std::less<>> counters;
  std::map<std::string, double, std::less<>> gauges;
  std::map<std::string, HistogramStats, std::less<>> histograms;

  /// Counter value (0 when the counter never fired).
  std::uint64_t counter(std::string_view name) const;
  std::optional<double> gauge(std::string_view name) const;
  /// nullptr when absent.
  const HistogramStats* histogram(std::string_view name) const;

  /// Sums counters and histogram buckets; gauges take \p other's value
  /// (last writer wins, matching Gauge semantics).
  void merge(const MetricsSnapshot& other);
  /// Counters/histograms as deltas against \p earlier (taken from the same
  /// registry, earlier in time); gauges keep this snapshot's levels.
  MetricsSnapshot delta_since(const MetricsSnapshot& earlier) const;

  /// Human-readable dump (sorted, one metric per line) for examples and
  /// debugging.
  std::string to_text() const;
};

/// Process-wide metric namespace. Lookup is mutex-protected (do it once,
/// cache the reference); updates through the returned handles are
/// lock-free.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  MetricsSnapshot snapshot() const;

  /// Zeroes every metric (handles stay valid). Intended for tests and
  /// benchmark phase boundaries; prefer MetricsSnapshot::delta_since in
  /// production code.
  void reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Master runtime switch consulted by the span layer and instrumentation
/// helpers (single relaxed load). Metrics handles still work when
/// disabled; the macros in span.hpp and the wired call sites skip their
/// work entirely.
bool enabled();
void set_enabled(bool on);

}  // namespace kertbn::obs
