#pragma once
/// \file prometheus.hpp
/// Prometheus text exposition (version 0.0.4) of a MetricsSnapshot — the
/// pull-style operational surface next to the push-style JSONL sink. Dot
/// metric names become underscore-separated and gain a `kertbn_` prefix
/// (`kert.query.count` -> `kertbn_kert_query_count`); histograms are
/// exposed as summaries whose quantiles come from
/// HistogramStats::quantile, i.e. the inclusive upper edge of the
/// power-of-two bucket holding the rank (an upper-bound estimate that is
/// exact only at bucket boundaries — see metrics.hpp).

#include <string>

#include "obs/metrics.hpp"

namespace kertbn::obs {

/// Renders \p snapshot in the Prometheus text format: counters and gauges
/// as single samples, histograms as summaries with p50/p95/p99 quantile
/// samples plus _sum/_count/_max.
std::string to_prometheus_text(const MetricsSnapshot& snapshot);

/// `kertbn_` + \p name with every character outside [a-zA-Z0-9_] replaced
/// by '_' (the Prometheus metric-name alphabet, minus the unused colon).
std::string prometheus_name(std::string_view name);

}  // namespace kertbn::obs
