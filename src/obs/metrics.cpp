#include "obs/metrics.hpp"

#include <bit>
#include <cstdio>
#include <cstring>

namespace kertbn::obs {

namespace {
std::atomic<bool> g_enabled{true};
std::atomic<std::size_t> g_next_thread_stripe{0};
}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

std::size_t shard_index() {
  thread_local const std::size_t idx =
      g_next_thread_stripe.fetch_add(1, std::memory_order_relaxed) %
      kMetricShards;
  return idx;
}

// ---------------------------------------------------------------- Counter

std::uint64_t Counter::value() const {
  std::uint64_t sum = 0;
  for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
  return sum;
}

void Counter::reset() {
  for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

// ------------------------------------------------------------------ Gauge

std::uint64_t Gauge::encode(double v) { return std::bit_cast<std::uint64_t>(v); }
double Gauge::decode(std::uint64_t bits) { return std::bit_cast<double>(bits); }

double Gauge::add(double delta) {
  std::uint64_t expected = bits_.load(std::memory_order_relaxed);
  for (;;) {
    const double next = decode(expected) + delta;
    if (bits_.compare_exchange_weak(expected, encode(next),
                                    std::memory_order_relaxed)) {
      return next;
    }
  }
}

// -------------------------------------------------------------- Histogram

std::size_t Histogram::bucket_index(std::uint64_t value) {
  if (value == 0) return 0;
  const std::size_t width = static_cast<std::size_t>(std::bit_width(value));
  return width < kBuckets ? width : kBuckets - 1;
}

std::uint64_t HistogramStats::bucket_upper_edge(std::size_t i) {
  if (i == 0) return 0;
  if (i >= kBuckets - 1) return ~std::uint64_t{0};
  return (std::uint64_t{1} << i) - 1;
}

std::uint64_t HistogramStats::quantile(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-quantile, 1-based, clamped to [1, count].
  std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(count));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      const std::uint64_t edge = bucket_upper_edge(i);
      return edge < max ? edge : max;
    }
  }
  return max;
}

void Histogram::record(std::uint64_t value) {
  Shard& s = shards_[shard_index()];
  s.buckets[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t prev = s.max.load(std::memory_order_relaxed);
  while (prev < value &&
         !s.max.compare_exchange_weak(prev, value,
                                      std::memory_order_relaxed)) {
  }
}

HistogramStats Histogram::stats() const {
  HistogramStats out;
  for (const Shard& s : shards_) {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      out.buckets[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
    const std::uint64_t m = s.max.load(std::memory_order_relaxed);
    if (m > out.max) out.max = m;
  }
  return out;
}

void Histogram::reset() {
  for (Shard& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
  }
}

// --------------------------------------------------------- MetricsSnapshot

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

std::optional<double> MetricsSnapshot::gauge(std::string_view name) const {
  const auto it = gauges.find(name);
  if (it == gauges.end()) return std::nullopt;
  return it->second;
}

const HistogramStats* MetricsSnapshot::histogram(std::string_view name) const {
  const auto it = histograms.find(name);
  return it == histograms.end() ? nullptr : &it->second;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges[name] = v;
  for (const auto& [name, h] : other.histograms) {
    HistogramStats& mine = histograms[name];
    for (std::size_t i = 0; i < HistogramStats::kBuckets; ++i) {
      mine.buckets[i] += h.buckets[i];
    }
    mine.count += h.count;
    mine.sum += h.sum;
    if (h.max > mine.max) mine.max = h.max;
  }
}

MetricsSnapshot MetricsSnapshot::delta_since(
    const MetricsSnapshot& earlier) const {
  MetricsSnapshot out = *this;
  for (auto& [name, v] : out.counters) v -= earlier.counter(name);
  for (auto& [name, h] : out.histograms) {
    if (const HistogramStats* prev = earlier.histogram(name)) {
      for (std::size_t i = 0; i < HistogramStats::kBuckets; ++i) {
        h.buckets[i] -= prev->buckets[i];
      }
      h.count -= prev->count;
      h.sum -= prev->sum;
      // max is a high-water mark, not a rate; keep the later value.
    }
  }
  return out;
}

std::string MetricsSnapshot::to_text() const {
  std::string out;
  char line[256];
  for (const auto& [name, v] : counters) {
    std::snprintf(line, sizeof(line), "counter   %-40s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(v));
    out += line;
  }
  for (const auto& [name, v] : gauges) {
    std::snprintf(line, sizeof(line), "gauge     %-40s %.6g\n", name.c_str(),
                  v);
    out += line;
  }
  for (const auto& [name, h] : histograms) {
    std::snprintf(line, sizeof(line),
                  "histogram %-40s count=%llu mean=%.1f p50<=%llu p99<=%llu "
                  "max=%llu\n",
                  name.c_str(), static_cast<unsigned long long>(h.count),
                  h.mean(),
                  static_cast<unsigned long long>(h.quantile(0.50)),
                  static_cast<unsigned long long>(h.quantile(0.99)),
                  static_cast<unsigned long long>(h.max));
    out += line;
  }
  return out;
}

// --------------------------------------------------------- MetricsRegistry

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never freed
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name),
                           std::make_unique<Counter>(std::string(name)))
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name),
                         std::make_unique<Gauge>(std::string(name)))
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name),
                             std::make_unique<Histogram>(std::string(name)))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot out;
  for (const auto& [name, c] : counters_) out.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) out.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) out.histograms[name] = h->stats();
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace kertbn::obs
