#pragma once
/// \file sink.hpp
/// Pluggable event pipeline for the self-telemetry layer. Spans (span.hpp)
/// and metrics snapshots (metrics.hpp) are pushed as structured events into
/// a process-wide sink. The default sink is null — instrumented code pays
/// only an atomic flag check — and a JSONL file sink can be installed
/// (programmatically or via the KERTBN_OBS_JSONL environment variable) so
/// runs produce machine-readable traces:
///
///   {"type":"span","name":"kert.reconstruct","trace":3,"span":3,
///    "parent":0,"thread":0,"t_ns":81234,"dur_ns":1523011,
///    "tags":{"version":2,"incremental":true,"rows_touched":12}}
///   {"type":"metrics","t_ns":99123,"counters":{...},"gauges":{...},
///    "histograms":{"pool.task_run_ns":{"count":40,"sum":...,"max":...}}}

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <variant>
#include <vector>

#include "obs/metrics.hpp"

namespace kertbn::obs {

/// One key/value annotation on a span.
struct SpanTag {
  std::string key;
  std::variant<std::uint64_t, double, bool, std::string> value;
};

/// A completed span, as delivered to the sink.
struct SpanEvent {
  std::string name;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = root of its trace.
  std::uint64_t thread_id = 0;  ///< Dense per-process thread ordinal.
  std::uint64_t start_ns = 0;   ///< Steady nanoseconds since process start.
  std::uint64_t duration_ns = 0;
  std::vector<SpanTag> tags;
};

/// A discrete structured occurrence (drift confirmed, early-reconstruction
/// advisory, periodic status dump, ...) — something that happened at one
/// instant, as opposed to a span's measured duration. Serialized by the
/// FileSink as {"type":"event","name":...,"t_ns":...,"tags":{...}}.
struct LogEvent {
  std::string name;
  std::uint64_t t_ns = 0;  ///< now_ns() timebase.
  std::vector<SpanTag> tags;
};

/// Receiver for telemetry events. Implementations must be thread-safe:
/// spans close concurrently on pool workers.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_span(const SpanEvent& event) = 0;
  virtual void on_metrics(const MetricsSnapshot& snapshot,
                          std::uint64_t t_ns) = 0;
  /// Structured instant events; default ignores them so sinks that predate
  /// LogEvent keep compiling.
  virtual void on_event(const LogEvent& event) { (void)event; }
  virtual void flush() {}
};

/// JSONL file sink: one event object per line, append-mode, mutex-guarded.
///
/// The sink can be bounded: with max_bytes > 0 a write that would push the
/// current file past the cap first rotates it to `<path>.1` (replacing any
/// previous `<path>.1`) and starts a fresh file, so a long soak holds at
/// most ~2·max_bytes of telemetry on disk. When rotation or reopening
/// fails (permissions changed, directory vanished) the event is dropped
/// and counted in the `kert.obs.sink_dropped_events` counter — telemetry
/// must never take the serving process down with it.
class FileSink : public EventSink {
 public:
  struct Options {
    /// 0 = unbounded (the default). Otherwise the rotation cap in bytes.
    std::size_t max_bytes = 0;
  };

  /// Opens \p path for writing (truncates). Throws std::runtime_error on
  /// failure so misconfigured telemetry is loud, not silent.
  explicit FileSink(const std::string& path);
  FileSink(const std::string& path, Options options);
  ~FileSink() override;

  void on_span(const SpanEvent& event) override;
  void on_metrics(const MetricsSnapshot& snapshot,
                  std::uint64_t t_ns) override;
  void on_event(const LogEvent& event) override;
  void flush() override;

  const std::string& path() const { return path_; }
  /// Completed rotations (current file reached max_bytes and moved aside).
  std::size_t rotations() const;
  /// Events dropped because rotation/reopen failed (also counted in the
  /// kert.obs.sink_dropped_events metric).
  std::size_t dropped_events() const;

 private:
  /// Appends one serialized line, rotating first when it would overflow
  /// the cap. Drops (and counts) the line when no file can be written.
  void write_line(const std::string& line);

  std::string path_;
  Options options_;
  mutable std::mutex mutex_;
  std::FILE* file_ = nullptr;
  std::size_t bytes_written_ = 0;  // current file, guarded by mutex_
  std::size_t rotations_ = 0;
  std::size_t dropped_events_ = 0;
};

/// Steady-clock nanoseconds since process start (the timebase of every
/// event timestamp — monotonic and comparable within one run).
std::uint64_t now_ns();

/// Dense ordinal of the calling thread (0 = first thread to ask).
std::uint64_t thread_ordinal();

/// Installs \p sink as the process-wide event receiver (nullptr restores
/// the null sink). Must not race with in-flight spans: install sinks at
/// phase boundaries, not while pool work is running.
void set_sink(std::shared_ptr<EventSink> sink);

/// The current sink (nullptr = null sink).
std::shared_ptr<EventSink> sink();

/// Fast check instrumentation uses before building an event.
bool has_sink();

/// Pushes the given span event to the sink, if any.
void emit_span(const SpanEvent& event);

/// Pushes the given structured event to the sink, if any.
void emit_event(const LogEvent& event);

/// Snapshots the global registry and pushes it to the sink, if any.
void publish_metrics();

/// Flushes the sink, if any.
void flush_sink();

/// Installs a FileSink at $KERTBN_OBS_JSONL when the variable is set and
/// non-empty; $KERTBN_OBS_JSONL_MAX_BYTES (when set and positive) bounds
/// it with size-capped rotation. Returns true when a sink was installed.
bool init_from_env();

/// Escapes \p s for embedding in a JSON string literal (quotes excluded).
std::string json_escape(std::string_view s);

}  // namespace kertbn::obs
