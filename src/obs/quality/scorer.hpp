#pragma once
/// \file scorer.hpp
/// Streaming predict-vs-measure scoring of the served model (DBSeer-style
/// validation under live load; DESIGN §11). Each monitoring interval the
/// scorer compares the currently-published ModelSnapshot's predicted
/// marginal distributions — per service and for the end-to-end response D —
/// against the interval's measured means:
///
///   * absolute error |x - E[X]| (seconds),
///   * standardized residual z = (x - E[X]) / sd[X] — the drift detector's
///     input stream,
///   * log-score: log of the predicted mass of the measured value's bin
///     (discrete snapshots) or the predicted Gaussian log-density
///     (continuous linear-Gaussian snapshots),
///   * empirical coverage of the predicted [band_lo, band_hi] quantile
///     band — calibrated models cover ~(band_hi - band_lo) of
///     measurements; drifted ones fall out of band.
///
/// Supported snapshots: discrete models with a warm prior tree (the
/// production serving path — marginals are mutation-free reads), and
/// continuous all-linear-Gaussian models via the exact joint. Anything
/// else (e.g. a deterministic-max response CPD) is reported unsupported
/// and left unscored rather than approximated.
///
/// Determinism: scoring is a pure function of (snapshot, rows) — seedless,
/// clockless, independent of telemetry configuration. Registry metrics are
/// emitted as a side channel and never feed back into scores.

#include <cstddef>
#include <span>
#include <vector>

#include "kert/query_engine.hpp"

namespace kertbn::quality {

struct ScoreOptions {
  /// Predicted quantile band for coverage accounting (defaults: 90% band).
  double band_lo = 0.05;
  double band_hi = 0.95;
  /// Floor on predicted bin mass before taking the log (discrete).
  double min_prob = 1e-12;
  /// Floor on the predicted stddev when standardizing residuals.
  double min_stddev = 1e-9;
};

/// Deterministic accumulators for one scored stream (a service column or
/// the end-to-end response).
struct StreamScore {
  std::size_t count = 0;
  double abs_err_sum = 0.0;
  double z_sum = 0.0;
  double z_sq_sum = 0.0;
  double log_score_sum = 0.0;
  std::size_t covered = 0;  ///< Measurements inside the predicted band.

  double mean_abs_err() const {
    return count == 0 ? 0.0 : abs_err_sum / static_cast<double>(count);
  }
  double mean_z() const {
    return count == 0 ? 0.0 : z_sum / static_cast<double>(count);
  }
  double rms_z() const;
  double mean_log_score() const {
    return count == 0 ? 0.0 : log_score_sum / static_cast<double>(count);
  }
  double coverage() const {
    return count == 0 ? 0.0
                      : static_cast<double>(covered) /
                            static_cast<double>(count);
  }
};

/// What the model predicts for one column, reduced to the pieces scoring
/// needs (cached at snapshot adoption; the snapshot itself is not retained).
struct ColumnPrediction {
  double mean = 0.0;
  double stddev = 0.0;
  double band_lo_value = 0.0;  ///< Lower edge of the predicted band.
  double band_hi_value = 0.0;  ///< Upper edge of the predicted band.
};

/// Standard normal quantile (Acklam's rational approximation, |err| <
/// 1.2e-9) — deterministic, used for continuous coverage bands.
double normal_quantile(double p);

/// See file comment. One scorer per managed model; columns are the
/// n_services service streams plus the response stream at index
/// n_services.
class PredictiveScorer {
 public:
  explicit PredictiveScorer(std::size_t n_services, ScoreOptions opts = {});

  const ScoreOptions& options() const { return opts_; }

  /// Caches per-column predictions from \p snapshot. Returns false (and
  /// leaves the scorer not ready) when the snapshot's shape is
  /// unsupported or its column count does not match n_services + 1.
  bool adopt(const core::ModelSnapshot& snapshot);

  bool ready() const { return ready_; }
  std::size_t snapshot_version() const { return version_; }
  std::size_t streams() const { return n_ + 1; }

  /// Scores one monitoring row (n_services service means, then D) against
  /// the adopted snapshot, accumulating every stream's score and writing
  /// each stream's standardized residual to \p z_out (size streams()).
  /// Returns false without touching anything when not ready.
  bool score_row(std::span<const double> row, std::span<double> z_out);

  /// Accumulated scores of stream \p column (response = n_services).
  const StreamScore& stream(std::size_t column) const;
  /// Adopted prediction of stream \p column (valid while ready()).
  const ColumnPrediction& prediction(std::size_t column) const;

  /// Rows scored since the last reset (== every stream's count).
  std::size_t rows_scored() const { return rows_scored_; }

  /// Clears accumulated scores but keeps the adopted predictions.
  void reset_scores();

 private:
  /// Full per-column scoring state (prediction + discrete bin structure).
  struct Column {
    ColumnPrediction pred;
    bool discrete = false;
    /// Hot-path constants fixed at adopt: 1/max(stddev, min_stddev) (the
    /// ingest path scores every row, so the standardized residual is a
    /// multiply, not a divide) and the continuous log-score constant
    /// -log(sqrt(2 pi)) - log(safe_sd).
    double inv_sd = 1.0;
    double log_norm = 0.0;
    /// Discrete: predicted log-mass per bin (floored at log(min_prob))
    /// and the bin edges used to locate a measured value.
    std::vector<double> bin_log_mass;
    std::vector<double> bin_edges;  ///< Interior edges, ascending.
  };

  std::size_t bin_of(const Column& c, double x) const;

  std::size_t n_;
  ScoreOptions opts_;
  bool ready_ = false;
  std::size_t version_ = 0;
  std::vector<Column> columns_;
  std::vector<StreamScore> scores_;
  std::size_t rows_scored_ = 0;
};

}  // namespace kertbn::quality
