#include "obs/quality/status.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace kertbn::quality {

namespace {

// ------------------------------------------------------------- writing --

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void field_str(std::string& out, const char* key, std::string_view v) {
  append_escaped(out, key);
  out += ':';
  append_escaped(out, v);
  out += ',';
}

void field_u64(std::string& out, const char* key, std::uint64_t v) {
  append_escaped(out, key);
  out += ':';
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
  out += ',';
}

void field_double(std::string& out, const char* key, double v) {
  append_escaped(out, key);
  out += ':';
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
  out += ',';
}

void field_bool(std::string& out, const char* key, bool v) {
  append_escaped(out, key);
  out += ':';
  out += v ? "true" : "false";
  out += ',';
}

/// Replaces the trailing ',' with the closer.
void close(std::string& out, char closer) {
  if (!out.empty() && out.back() == ',') out.back() = closer;
  else out += closer;
}

// ------------------------------------------------------------- parsing --
// Minimal recursive-descent parser over exactly the subset to_json()
// emits. Failure is signaled by setting ok_ = false; every accessor
// degrades to a default so parsing never aborts.

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  const Value* find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  std::string str(std::string_view key) const {
    const Value* v = find(key);
    return v != nullptr && v->kind == Kind::kString ? v->string : "";
  }
  double num(std::string_view key) const {
    const Value* v = find(key);
    return v != nullptr && v->kind == Kind::kNumber ? v->number : 0.0;
  }
  std::uint64_t u64(std::string_view key) const {
    return static_cast<std::uint64_t>(num(key));
  }
  bool boolean_at(std::string_view key) const {
    const Value* v = find(key);
    return v != nullptr && v->kind == Kind::kBool && v->boolean;
  }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> parse() {
    Value v = parse_value();
    skip_ws();
    if (!ok_ || pos_ != text_.size()) return std::nullopt;
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      ok_ = false;
      return '\0';
    }
    return text_[pos_];
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) ok_ = false;
  }

  bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Value parse_value() {
    skip_ws();
    if (!ok_) return {};
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      Value v;
      v.kind = Value::Kind::kString;
      v.string = parse_string();
      return v;
    }
    if (consume_word("true")) {
      Value v;
      v.kind = Value::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_word("false")) {
      Value v;
      v.kind = Value::Kind::kBool;
      return v;
    }
    if (consume_word("null")) return {};
    return parse_number();
  }

  Value parse_object() {
    Value v;
    v.kind = Value::Kind::kObject;
    expect('{');
    skip_ws();
    if (consume('}')) return v;
    while (ok_) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (consume(',')) continue;
      expect('}');
      break;
    }
    return v;
  }

  Value parse_array() {
    Value v;
    v.kind = Value::Kind::kArray;
    expect('[');
    skip_ws();
    if (consume(']')) return v;
    while (ok_) {
      v.array.push_back(parse_value());
      skip_ws();
      if (consume(',')) continue;
      expect(']');
      break;
    }
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (ok_) {
      if (pos_ >= text_.size()) {
        ok_ = false;
        break;
      }
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        ok_ = false;
        break;
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            ok_ = false;
            break;
          }
          // to_json only emits \u00XX control escapes.
          const unsigned code = static_cast<unsigned>(
              std::strtoul(std::string(text_.substr(pos_, 4)).c_str(),
                           nullptr, 16));
          pos_ += 4;
          out += static_cast<char>(code);
          break;
        }
        default: ok_ = false;
      }
    }
    return out;
  }

  Value parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      ok_ = false;
      return {};
    }
    Value v;
    v.kind = Value::Kind::kNumber;
    v.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                           nullptr);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

std::string StatusReport::to_json() const {
  std::string out = "{";
  field_str(out, "type", "status_report");
  field_double(out, "generated_at", generated_at);

  field_u64(out, "model_version", model_version);
  field_str(out, "model_health", model_health);
  field_u64(out, "health_transitions", health_transitions);
  append_escaped(out, "recent_transitions");
  out += ":[";
  for (const TransitionStatus& t : recent_transitions) {
    out += '{';
    field_double(out, "at", t.at);
    field_str(out, "from", t.from);
    field_str(out, "to", t.to);
    field_str(out, "reason", t.reason);
    close(out, '}');
    out += ',';
  }
  close(out, ']');
  out += ',';
  field_u64(out, "failed_reconstructions", failed_reconstructions);
  field_u64(out, "stale_skips", stale_skips);
  field_str(out, "last_failure_reason", last_failure_reason);
  field_u64(out, "drift_notices", drift_notices);
  field_str(out, "last_drift_reason", last_drift_reason);

  field_str(out, "overall_drift", overall_drift);
  field_bool(out, "scorer_ready", scorer_ready);
  field_u64(out, "scored_snapshot_version", scored_snapshot_version);
  field_u64(out, "rows_scored", rows_scored);
  field_u64(out, "rows_unscored", rows_unscored);
  append_escaped(out, "streams");
  out += ":[";
  for (const StreamStatus& s : streams) {
    out += '{';
    field_str(out, "name", s.name);
    field_u64(out, "count", s.count);
    field_double(out, "mean_abs_err", s.mean_abs_err);
    field_double(out, "mean_z", s.mean_z);
    field_double(out, "rms_z", s.rms_z);
    field_double(out, "mean_log_score", s.mean_log_score);
    field_double(out, "coverage", s.coverage);
    field_str(out, "drift", s.drift);
    field_double(out, "cusum", s.cusum);
    field_double(out, "page_hinkley", s.page_hinkley);
    field_double(out, "predicted_mean", s.predicted_mean);
    field_double(out, "predicted_stddev", s.predicted_stddev);
    field_double(out, "band_lo", s.band_lo);
    field_double(out, "band_hi", s.band_hi);
    close(out, '}');
    out += ',';
  }
  close(out, ']');
  out += ',';

  if (recovery.has_value()) {
    append_escaped(out, "recovery");
    out += ":{";
    field_bool(out, "checkpoint_loaded", recovery->checkpoint_loaded);
    field_bool(out, "server_restored", recovery->server_restored);
    field_bool(out, "model_restored", recovery->model_restored);
    field_u64(out, "checkpoint_seq", recovery->checkpoint_seq);
    field_u64(out, "replayed_records", recovery->replayed_records);
    field_u64(out, "skipped_crc", recovery->skipped_crc);
    field_u64(out, "torn_tails", recovery->torn_tails);
    field_u64(out, "replayed_ingests", recovery->replayed_ingests);
    field_u64(out, "replayed_misses", recovery->replayed_misses);
    field_u64(out, "malformed_payloads", recovery->malformed_payloads);
    close(out, '}');
    out += ',';
  }

  if (overload.has_value()) {
    append_escaped(out, "overload");
    out += ":{";
    field_str(out, "level", overload->level);
    field_u64(out, "transitions", overload->transitions);
    field_u64(out, "shed_intervals", overload->shed_intervals);
    field_u64(out, "rejected_ingest", overload->rejected_ingest);
    field_u64(out, "shed_queries", overload->shed_queries);
    field_u64(out, "deadline_exceeded", overload->deadline_exceeded);
    field_u64(out, "deferred_reconstructions",
              overload->deferred_reconstructions);
    field_u64(out, "aborted_reconstructions",
              overload->aborted_reconstructions);
    close(out, '}');
    out += ',';
  }

  field_u64(out, "query_count", query_count);
  field_u64(out, "query_latency_p50_ns", query_latency_p50_ns);
  field_u64(out, "query_latency_p95_ns", query_latency_p95_ns);
  field_u64(out, "query_latency_p99_ns", query_latency_p99_ns);
  field_str(out, "simd_tier", simd_tier);
  field_u64(out, "plan_cache_hits", plan_cache_hits);
  field_u64(out, "plan_cache_misses", plan_cache_misses);
  close(out, '}');
  return out;
}

std::optional<StatusReport> status_report_from_json(const std::string& text) {
  const std::optional<Value> parsed = Parser(text).parse();
  if (!parsed.has_value() || parsed->kind != Value::Kind::kObject ||
      parsed->str("type") != "status_report") {
    return std::nullopt;
  }
  const Value& v = *parsed;

  StatusReport r;
  r.generated_at = v.num("generated_at");
  r.model_version = v.u64("model_version");
  r.model_health = v.str("model_health");
  r.health_transitions = v.u64("health_transitions");
  if (const Value* ts = v.find("recent_transitions");
      ts != nullptr && ts->kind == Value::Kind::kArray) {
    for (const Value& t : ts->array) {
      if (t.kind != Value::Kind::kObject) return std::nullopt;
      r.recent_transitions.push_back(TransitionStatus{
          t.num("at"), t.str("from"), t.str("to"), t.str("reason")});
    }
  }
  r.failed_reconstructions = v.u64("failed_reconstructions");
  r.stale_skips = v.u64("stale_skips");
  r.last_failure_reason = v.str("last_failure_reason");
  r.drift_notices = v.u64("drift_notices");
  r.last_drift_reason = v.str("last_drift_reason");

  r.overall_drift = v.str("overall_drift");
  r.scorer_ready = v.boolean_at("scorer_ready");
  r.scored_snapshot_version = v.u64("scored_snapshot_version");
  r.rows_scored = v.u64("rows_scored");
  r.rows_unscored = v.u64("rows_unscored");
  if (const Value* ss = v.find("streams");
      ss != nullptr && ss->kind == Value::Kind::kArray) {
    for (const Value& s : ss->array) {
      if (s.kind != Value::Kind::kObject) return std::nullopt;
      StreamStatus out;
      out.name = s.str("name");
      out.count = s.u64("count");
      out.mean_abs_err = s.num("mean_abs_err");
      out.mean_z = s.num("mean_z");
      out.rms_z = s.num("rms_z");
      out.mean_log_score = s.num("mean_log_score");
      out.coverage = s.num("coverage");
      out.drift = s.str("drift");
      out.cusum = s.num("cusum");
      out.page_hinkley = s.num("page_hinkley");
      out.predicted_mean = s.num("predicted_mean");
      out.predicted_stddev = s.num("predicted_stddev");
      out.band_lo = s.num("band_lo");
      out.band_hi = s.num("band_hi");
      r.streams.push_back(std::move(out));
    }
  }

  if (const Value* rec = v.find("recovery");
      rec != nullptr && rec->kind == Value::Kind::kObject) {
    RecoveryStatus out;
    out.checkpoint_loaded = rec->boolean_at("checkpoint_loaded");
    out.server_restored = rec->boolean_at("server_restored");
    out.model_restored = rec->boolean_at("model_restored");
    out.checkpoint_seq = rec->u64("checkpoint_seq");
    out.replayed_records = rec->u64("replayed_records");
    out.skipped_crc = rec->u64("skipped_crc");
    out.torn_tails = rec->u64("torn_tails");
    out.replayed_ingests = rec->u64("replayed_ingests");
    out.replayed_misses = rec->u64("replayed_misses");
    out.malformed_payloads = rec->u64("malformed_payloads");
    r.recovery = out;
  }

  if (const Value* ov = v.find("overload");
      ov != nullptr && ov->kind == Value::Kind::kObject) {
    OverloadStatus out;
    out.level = ov->str("level");
    out.transitions = ov->u64("transitions");
    out.shed_intervals = ov->u64("shed_intervals");
    out.rejected_ingest = ov->u64("rejected_ingest");
    out.shed_queries = ov->u64("shed_queries");
    out.deadline_exceeded = ov->u64("deadline_exceeded");
    out.deferred_reconstructions = ov->u64("deferred_reconstructions");
    out.aborted_reconstructions = ov->u64("aborted_reconstructions");
    r.overload = out;
  }

  r.query_count = v.u64("query_count");
  r.query_latency_p50_ns = v.u64("query_latency_p50_ns");
  r.query_latency_p95_ns = v.u64("query_latency_p95_ns");
  r.query_latency_p99_ns = v.u64("query_latency_p99_ns");
  r.simd_tier = v.str("simd_tier");
  r.plan_cache_hits = v.u64("plan_cache_hits");
  r.plan_cache_misses = v.u64("plan_cache_misses");
  return r;
}

}  // namespace kertbn::quality
