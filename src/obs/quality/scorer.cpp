#include "obs/quality/scorer.hpp"

#include <algorithm>
#include <cmath>

#include "bn/gaussian_inference.hpp"
#include "common/contract.hpp"
#include "obs/metrics.hpp"

namespace kertbn::quality {

namespace {

constexpr double kHalfLog2Pi = 0.9189385332046727;  // 0.5 * ln(2*pi)

struct ScorerMetrics {
  obs::Counter& rows_scored;
  obs::Counter& coverage_hits;
  obs::Counter& coverage_total;
  obs::Histogram& abs_err_us;
  obs::Histogram& abs_z_milli;
  obs::Histogram& nll_milli;

  static ScorerMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static ScorerMetrics m{
        reg.counter("kert.quality.rows_scored"),
        reg.counter("kert.quality.coverage_hits"),
        reg.counter("kert.quality.coverage_total"),
        reg.histogram("kert.quality.abs_err_us"),
        reg.histogram("kert.quality.abs_z_milli"),
        reg.histogram("kert.quality.nll_milli"),
    };
    return m;
  }
};

/// Value v with P(X <= v) == p under a discrete distribution whose mass is
/// spread uniformly across each bin's interval (matches
/// ColumnDiscretizer::exceedance's smoothing).
double discrete_quantile(const std::vector<double>& probs,
                         const core::ColumnDiscretizer& column, double p) {
  double cum = 0.0;
  for (std::size_t b = 0; b < probs.size(); ++b) {
    const double mass = probs[b];
    if (cum + mass >= p) {
      const auto [lo, hi] = column.interval_of(b);
      if (mass <= 0.0) return lo;
      const double frac = std::clamp((p - cum) / mass, 0.0, 1.0);
      return lo + frac * (hi - lo);
    }
    cum += mass;
  }
  return column.interval_of(probs.empty() ? 0 : probs.size() - 1).second;
}

}  // namespace

double StreamScore::rms_z() const {
  return count == 0 ? 0.0
                    : std::sqrt(z_sq_sum / static_cast<double>(count));
}

double normal_quantile(double p) {
  KERTBN_EXPECTS(p > 0.0 && p < 1.0);
  // Acklam's rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - p_low) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

PredictiveScorer::PredictiveScorer(std::size_t n_services, ScoreOptions opts)
    : n_(n_services), opts_(opts), scores_(n_services + 1) {
  KERTBN_EXPECTS(n_services >= 1);
  KERTBN_EXPECTS(opts_.band_lo > 0.0 && opts_.band_hi < 1.0 &&
                     opts_.band_lo < opts_.band_hi);
}

bool PredictiveScorer::adopt(const core::ModelSnapshot& snapshot) {
  ready_ = false;
  columns_.clear();
  if (snapshot.net.size() != n_ + 1) return false;

  std::vector<Column> columns;
  columns.reserve(n_ + 1);

  if (snapshot.has_tree() && snapshot.discretizer.has_value()) {
    // Discrete serving path: no-evidence marginals off the warm prior
    // tree are mutation-free reads.
    for (std::size_t c = 0; c <= n_; ++c) {
      const std::vector<double> probs = snapshot.prior_tree->posterior(c);
      const core::ColumnDiscretizer& col = snapshot.discretizer->column(c);
      if (probs.size() != col.bins()) return false;
      const core::DistributionSummary summary =
          core::summarize_discrete_posterior(probs, &col);
      Column out;
      out.discrete = true;
      out.pred.mean = summary.mean;
      out.pred.stddev = summary.stddev;
      out.pred.band_lo_value = discrete_quantile(probs, col, opts_.band_lo);
      out.pred.band_hi_value = discrete_quantile(probs, col, opts_.band_hi);
      out.bin_log_mass.reserve(probs.size());
      for (const double p : probs) {
        out.bin_log_mass.push_back(std::log(std::max(p, opts_.min_prob)));
      }
      out.bin_edges = col.edges();
      columns.push_back(std::move(out));
    }
  } else if (core::all_linear_gaussian(snapshot.net)) {
    const bn::GaussianDistribution joint = bn::joint_gaussian(snapshot.net);
    for (std::size_t c = 0; c <= n_; ++c) {
      Column out;
      out.discrete = false;
      out.pred.mean = joint.mean_of(c);
      const double sd =
          std::sqrt(std::max(joint.variance_of(c), 0.0));
      out.pred.stddev = sd;
      const double safe_sd = std::max(sd, opts_.min_stddev);
      out.pred.band_lo_value =
          out.pred.mean + normal_quantile(opts_.band_lo) * safe_sd;
      out.pred.band_hi_value =
          out.pred.mean + normal_quantile(opts_.band_hi) * safe_sd;
      columns.push_back(std::move(out));
    }
  } else {
    return false;  // e.g. deterministic-max response CPD: left unscored
  }

  for (Column& col : columns) {
    const double safe_sd = std::max(col.pred.stddev, opts_.min_stddev);
    col.inv_sd = 1.0 / safe_sd;
    col.log_norm = -kHalfLog2Pi - std::log(safe_sd);
  }
  columns_ = std::move(columns);
  version_ = snapshot.version;
  ready_ = true;
  return true;
}

std::size_t PredictiveScorer::bin_of(const Column& c, double x) const {
  // Same rule as ColumnDiscretizer::bin_of: first bin whose upper interior
  // edge exceeds x; last bin when none does.
  const auto it = std::upper_bound(c.bin_edges.begin(), c.bin_edges.end(), x);
  return static_cast<std::size_t>(it - c.bin_edges.begin());
}

bool PredictiveScorer::score_row(std::span<const double> row,
                                 std::span<double> z_out) {
  if (!ready_) return false;
  KERTBN_EXPECTS(row.size() == n_ + 1);
  KERTBN_EXPECTS(z_out.size() == n_ + 1);

  const bool telemetry = obs::enabled();
  std::uint64_t covered_streams = 0;
  for (std::size_t c = 0; c <= n_; ++c) {
    const Column& col = columns_[c];
    const double x = row[c];
    const double dx = x - col.pred.mean;
    const double abs_err = std::abs(dx);
    const double z = dx * col.inv_sd;
    double log_score;
    if (col.discrete) {
      log_score = col.bin_log_mass[bin_of(col, x)];
    } else {
      log_score = col.log_norm - 0.5 * z * z;
    }
    const bool covered =
        x >= col.pred.band_lo_value && x <= col.pred.band_hi_value;

    StreamScore& s = scores_[c];
    s.count += 1;
    s.abs_err_sum += abs_err;
    s.z_sum += z;
    s.z_sq_sum += z * z;
    s.log_score_sum += log_score;
    s.covered += covered ? 1 : 0;
    z_out[c] = z;
    covered_streams += covered ? 1 : 0;

    // Registry histograms track the end-to-end response stream only: the
    // ingest path runs per row and per-column records (3 histogram
    // records x every service) dominated its obs cost, while per-service
    // error detail is already served by StreamScore via StatusReport.
    if (telemetry && c == n_) {
      auto& m = ScorerMetrics::get();
      m.abs_err_us.record(static_cast<std::uint64_t>(abs_err * 1e6));
      m.abs_z_milli.record(static_cast<std::uint64_t>(std::abs(z) * 1e3));
      m.nll_milli.record(static_cast<std::uint64_t>(
          std::max(-log_score, 0.0) * 1e3));
    }
  }
  rows_scored_ += 1;
  if (telemetry) {
    auto& m = ScorerMetrics::get();
    // Coverage counters batched per row (one add each, not one per
    // column) — same totals, fixed cost.
    m.coverage_total.add(n_ + 1);
    m.coverage_hits.add(covered_streams);
    m.rows_scored.add(1);
  }
  return true;
}

const StreamScore& PredictiveScorer::stream(std::size_t column) const {
  KERTBN_EXPECTS(column < scores_.size());
  return scores_[column];
}

const ColumnPrediction& PredictiveScorer::prediction(
    std::size_t column) const {
  KERTBN_EXPECTS(ready_ && column < columns_.size());
  return columns_[column].pred;
}

void PredictiveScorer::reset_scores() {
  for (StreamScore& s : scores_) s = StreamScore{};
  rows_scored_ = 0;
}

}  // namespace kertbn::quality
