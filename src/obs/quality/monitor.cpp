#include "obs/quality/monitor.hpp"

#include <algorithm>

#include "common/contract.hpp"
#include "common/cpu_features.hpp"
#include "obs/sink.hpp"
#include "overload/governor.hpp"

namespace kertbn::quality {

namespace {

struct DriftMetrics {
  obs::Gauge& overall;
  obs::Counter& suspected;
  obs::Counter& confirmed;
  obs::Counter& advisories;
  obs::Gauge& rows_unscored;

  static DriftMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static DriftMetrics m{
        reg.gauge("kert.drift.overall"),
        reg.counter("kert.drift.suspected_total"),
        reg.counter("kert.drift.confirmed_total"),
        reg.counter("kert.drift.advisories"),
        reg.gauge("kert.quality.rows_unscored"),
    };
    return m;
  }
};

}  // namespace

RecoveryStatus recovery_status_from(const durable::RecoveryReport& report) {
  RecoveryStatus out;
  out.checkpoint_loaded = report.checkpoint_loaded;
  out.server_restored = report.server_restored;
  out.model_restored = report.model_restored;
  out.checkpoint_seq = report.checkpoint_seq;
  out.replayed_records = report.replay.records;
  out.skipped_crc = report.replay.skipped_crc;
  out.torn_tails = report.replay.torn_tails;
  out.replayed_ingests = report.replayed_ingests;
  out.replayed_misses = report.replayed_misses;
  out.malformed_payloads = report.malformed_payloads;
  return out;
}

ModelQualityMonitor::ModelQualityMonitor(core::ModelManager& manager,
                                         Config config)
    : manager_(manager),
      config_(std::move(config)),
      n_(manager.workflow().service_count()),
      scorer_(n_, config_.score),
      detectors_(n_ + 1, DriftDetector(config_.drift)),
      baselines_(n_ + 1),
      recent_cap_(manager.config().schedule.points_per_window()),
      z_buf_(n_ + 1, 0.0) {
  KERTBN_EXPECTS(manager.config().publish_snapshots &&
                 "the monitor scores published snapshots; enable "
                 "Config::publish_snapshots on the manager");
}

std::string ModelQualityMonitor::stream_name(std::size_t stream) const {
  if (stream == n_) return "response";
  return "s" + std::to_string(stream);
}

void ModelQualityMonitor::remember_row(std::span<const double> row) {
  if (row.size() != n_ + 1 || recent_cap_ == 0) return;
  if (recent_rows_.size() < recent_cap_) {
    recent_rows_.emplace_back(row.begin(), row.end());
    return;
  }
  recent_rows_[recent_pos_].assign(row.begin(), row.end());
  recent_pos_ = (recent_pos_ + 1) % recent_cap_;
}

void ModelQualityMonitor::calibrate_baselines() {
  baseline_window_full_ = recent_rows_.size() == recent_cap_;
  const double min_sd = config_.score.min_stddev;
  for (std::size_t s = 0; s <= n_; ++s) {
    // Raw standardized residual of every buffered window row against the
    // adopted prediction — the same z the live scoring path computes.
    const ColumnPrediction& pred = scorer_.prediction(s);
    const double sd = std::max(pred.stddev, min_sd);
    double mean = 0.0;
    double m2 = 0.0;
    std::size_t count = 0;
    for (const std::vector<double>& row : recent_rows_) {
      const double z = (row[s] - pred.mean) / sd;
      const double delta = z - mean;
      mean += delta / static_cast<double>(++count);
      m2 += delta * (z - mean);
    }
    std::size_t duplicates = 0;
    for (std::size_t r = 1; r < recent_rows_.size(); ++r) {
      if (recent_rows_[r][s] == recent_rows_[r - 1][s]) ++duplicates;
    }
    Baseline& base = baselines_[s];
    base.mean = mean;
    base.stddev =
        count > 0 ? std::sqrt(m2 / static_cast<double>(count)) : 0.0;
    base.count = count;
    base.carry_fraction =
        count > 1 ? static_cast<double>(duplicates) /
                        static_cast<double>(count - 1)
                  : 1.0;
    base.armed = baseline_window_full_ &&
                 base.count >= config_.baseline_min_obs &&
                 base.carry_fraction <= config_.max_carry_fraction;
  }
}

void ModelQualityMonitor::sync_snapshot() {
  const std::size_t published = manager_.snapshot_slot().published_count();
  if (published == last_published_count_) return;
  last_published_count_ = published;
  const std::shared_ptr<const core::ModelSnapshot> snap =
      manager_.snapshot_slot().acquire();
  if (snap == nullptr) return;
  if (scorer_.ready() && scorer_.snapshot_version() == snap->version) return;
  if (has_unsupported_version_ && unsupported_version_ == snap->version) {
    return;
  }
  // After a confirmed regime change the new model describes the new
  // world and the latched confirmation is obsolete. Across routine
  // rebuilds (the window merely slid) the detector folds persist —
  // baselines are recalibrated per version, which keeps calibrated
  // residuals comparable, and persistence is what gives the detectors
  // enough history to act within one T_CON.
  const bool regime_change = overall_drift() == DriftState::kConfirmed;
  if (scorer_.adopt(*snap)) {
    scorer_.reset_scores();
    calibrate_baselines();
    if (regime_change) {
      for (DriftDetector& d : detectors_) d.reset();
    } else {
      for (DriftDetector& d : detectors_) d.decay(config_.adoption_decay);
    }
    overall_cached_ = overall_drift();
    advisory_sent_for_version_ = false;
    advisory_version_ = snap->version;
    has_unsupported_version_ = false;
  } else {
    has_unsupported_version_ = true;
    unsupported_version_ = snap->version;
  }
}

DriftState ModelQualityMonitor::overall_drift() const {
  DriftState worst = DriftState::kNone;
  for (const DriftDetector& d : detectors_) {
    worst = std::max(worst, d.state());
  }
  return worst;
}

const DriftDetector& ModelQualityMonitor::detector(std::size_t stream) const {
  KERTBN_EXPECTS(stream < detectors_.size());
  return detectors_[stream];
}

void ModelQualityMonitor::observe_row(std::span<const double> row) {
  sync_snapshot();
  const bool telemetry = obs::enabled();
  if (!scorer_.ready() || row.size() != n_ + 1) {
    ++rows_unscored_;
    remember_row(row);
    if (telemetry) {
      DriftMetrics::get().rows_unscored.set(
          static_cast<double>(rows_unscored_));
    }
    return;
  }

  scorer_.score_row(row, z_buf_);

  std::size_t first_confirmed = detectors_.size();
  bool any_transition = false;
  for (std::size_t s = 0; s < detectors_.size(); ++s) {
    const Baseline& base = baselines_[s];
    if (!base.armed) continue;
    const DriftState before = detectors_[s].state();
    const double sd = std::max(base.stddev, config_.baseline_min_stddev);
    const double calibrated =
        std::clamp((z_buf_[s] - base.mean) / sd, -config_.residual_clamp,
                   config_.residual_clamp);
    const DriftState after = detectors_[s].add(calibrated);
    if (after == DriftState::kConfirmed && first_confirmed == detectors_.size()) {
      first_confirmed = s;
    }
    if (after == before) continue;
    any_transition = true;
    if (telemetry) {
      auto& m = DriftMetrics::get();
      if (after == DriftState::kSuspected) m.suspected.add(1);
      if (after == DriftState::kConfirmed) m.confirmed.add(1);
    }
    if (obs::has_sink()) {
      obs::LogEvent ev;
      ev.name = "kert.drift.state_change";
      ev.t_ns = obs::now_ns();
      ev.tags.push_back({"stream", std::string(stream_name(s))});
      ev.tags.push_back({"from", std::string(to_string(before))});
      ev.tags.push_back({"to", std::string(to_string(after))});
      ev.tags.push_back({"cusum", detectors_[s].cusum_statistic()});
      ev.tags.push_back({"page_hinkley", detectors_[s].ph_statistic()});
      ev.tags.push_back(
          {"model_version",
           static_cast<std::uint64_t>(scorer_.snapshot_version())});
      obs::emit_event(ev);
    }
  }

  if (any_transition) {
    overall_cached_ = overall_drift();
    if (telemetry) {
      DriftMetrics::get().overall.set(
          static_cast<double>(static_cast<int>(overall_cached_)));
    }
  }

  if (overall_cached_ == DriftState::kConfirmed &&
      !advisory_sent_for_version_) {
    advisory_sent_for_version_ = true;
    ++advisories_sent_;
    const double now = config_.clock ? config_.clock() : 0.0;
    const std::string stream =
        stream_name(std::min(first_confirmed, detectors_.size() - 1));
    const std::string reason = "confirmed drift on stream " + stream;
    manager_.note_drift(now, reason);
    if (telemetry) DriftMetrics::get().advisories.add(1);
    if (obs::has_sink()) {
      obs::LogEvent ev;
      ev.name = "kert.drift.advisory";
      ev.t_ns = obs::now_ns();
      ev.tags.push_back({"stream", stream});
      ev.tags.push_back({"reason", reason});
      ev.tags.push_back(
          {"model_version",
           static_cast<std::uint64_t>(scorer_.snapshot_version())});
      ev.tags.push_back({"sim_time", now});
      obs::emit_event(ev);
    }
  }

  // The row joins the window mirror only after scoring: at the next
  // adoption the buffer then holds exactly the rows the new model was
  // built from.
  remember_row(row);

  if (config_.status_every_rows > 0 &&
      scorer_.rows_scored() % config_.status_every_rows == 0) {
    emit_status();
  }
}

StatusReport ModelQualityMonitor::report() const {
  StatusReport r;
  r.generated_at = config_.clock ? config_.clock() : 0.0;

  r.model_version = manager_.version();
  r.model_health = core::to_string(manager_.health());
  const auto& history = manager_.health_history();
  r.health_transitions = history.size();
  const std::size_t keep = std::min(config_.recent_transitions, history.size());
  for (std::size_t i = history.size() - keep; i < history.size(); ++i) {
    r.recent_transitions.push_back(
        TransitionStatus{history[i].at, core::to_string(history[i].from),
                         core::to_string(history[i].to), history[i].reason});
  }
  r.failed_reconstructions = manager_.failed_reconstructions();
  r.stale_skips = manager_.stale_skips();
  r.last_failure_reason = manager_.last_failure_reason();
  r.drift_notices = manager_.drift_notices();
  r.last_drift_reason = manager_.last_drift_reason();

  r.overall_drift = to_string(overall_drift());
  r.scorer_ready = scorer_.ready();
  r.scored_snapshot_version = scorer_.snapshot_version();
  r.rows_scored = scorer_.rows_scored();
  r.rows_unscored = rows_unscored_;
  for (std::size_t s = 0; s < detectors_.size(); ++s) {
    StreamStatus out;
    out.name = stream_name(s);
    const StreamScore& score = scorer_.stream(s);
    out.count = score.count;
    out.mean_abs_err = score.mean_abs_err();
    out.mean_z = score.mean_z();
    out.rms_z = score.rms_z();
    out.mean_log_score = score.mean_log_score();
    out.coverage = score.coverage();
    out.drift = to_string(detectors_[s].state());
    out.cusum = detectors_[s].cusum_statistic();
    out.page_hinkley = detectors_[s].ph_statistic();
    if (scorer_.ready()) {
      const ColumnPrediction& pred = scorer_.prediction(s);
      out.predicted_mean = pred.mean;
      out.predicted_stddev = pred.stddev;
      out.band_lo = pred.band_lo_value;
      out.band_hi = pred.band_hi_value;
    }
    r.streams.push_back(std::move(out));
  }

  r.recovery = recovery_;

  const obs::MetricsSnapshot metrics =
      obs::MetricsRegistry::instance().snapshot();
  // The governor publishes its ladder level as a gauge; its presence is
  // the signal that overload control runs in this process.
  if (const std::optional<double> level = metrics.gauge("kert.overload.level");
      level.has_value()) {
    OverloadStatus o;
    o.level = ov::to_string(static_cast<ov::PressureLevel>(
        static_cast<std::uint8_t>(*level)));
    o.transitions = metrics.counter("kert.overload.transitions");
    o.shed_intervals = metrics.counter("kert.ingest.shed_intervals");
    o.rejected_ingest = metrics.counter("kert.overload.rejected.ingest");
    o.shed_queries = metrics.counter("kert.query.shed");
    o.deadline_exceeded = metrics.counter("kert.query.deadline_exceeded");
    o.deferred_reconstructions = metrics.counter("kert.reconstruct.deferred");
    o.aborted_reconstructions = metrics.counter("kert.reconstruct.aborted");
    r.overload = o;
  }
  r.query_count = metrics.counter("kert.query.count");
  if (const obs::HistogramStats* lat =
          metrics.histogram("kert.query.latency_ns");
      lat != nullptr) {
    r.query_latency_p50_ns = lat->quantile(0.5);
    r.query_latency_p95_ns = lat->quantile(0.95);
    r.query_latency_p99_ns = lat->quantile(0.99);
  }
  r.simd_tier = kertbn::simd::to_string(kertbn::simd::active_tier());
  r.plan_cache_hits = metrics.counter("kert.query.plan_hits");
  r.plan_cache_misses = metrics.counter("kert.query.plan_misses");
  return r;
}

void ModelQualityMonitor::emit_status() const {
  if (!obs::has_sink()) return;
  obs::LogEvent ev;
  ev.name = "kert.quality.status";
  ev.t_ns = obs::now_ns();
  ev.tags.push_back({"report", report().to_json()});
  obs::emit_event(ev);
}

}  // namespace kertbn::quality
