#pragma once
/// \file status.hpp
/// The operational status surface of the model-quality layer: one
/// StatusReport snapshots everything an operator (or an autonomic
/// controller, later) needs to judge the served model — health history and
/// staleness, per-stream predict-vs-measure scores, drift classification,
/// crash-recovery provenance, and query-serving latency percentiles.
///
/// The report is a plain struct with a lossless JSON round trip:
/// to_json() emits doubles at %.17g, and status_report_from_json() parses
/// that text back to an equal report (the tests assert equality). The
/// periodic JSONL feed and the on-demand dump share this one format.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace kertbn::quality {

/// One scored stream (a service column or the end-to-end response) in the
/// report: accumulated scores, drift classification, and what the model
/// predicts for it.
struct StreamStatus {
  std::string name;  ///< "s0".."s{n-1}" or "response".
  // Scores (see scorer.hpp).
  std::uint64_t count = 0;
  double mean_abs_err = 0.0;
  double mean_z = 0.0;
  double rms_z = 0.0;
  double mean_log_score = 0.0;
  double coverage = 0.0;
  // Drift (see drift.hpp).
  std::string drift;  ///< none / suspected / confirmed.
  double cusum = 0.0;
  double page_hinkley = 0.0;
  // The adopted prediction being scored against.
  double predicted_mean = 0.0;
  double predicted_stddev = 0.0;
  double band_lo = 0.0;
  double band_hi = 0.0;

  bool operator==(const StreamStatus&) const = default;
};

/// One ModelHealth transition, mirrored from kert's HealthTransition.
struct TransitionStatus {
  double at = 0.0;
  std::string from;
  std::string to;
  std::string reason;

  bool operator==(const TransitionStatus&) const = default;
};

/// Crash-recovery provenance, mirrored from durable's RecoveryReport.
struct RecoveryStatus {
  bool checkpoint_loaded = false;
  bool server_restored = false;
  bool model_restored = false;
  std::uint64_t checkpoint_seq = 0;
  std::uint64_t replayed_records = 0;
  std::uint64_t skipped_crc = 0;
  std::uint64_t torn_tails = 0;
  std::uint64_t replayed_ingests = 0;
  std::uint64_t replayed_misses = 0;
  std::uint64_t malformed_payloads = 0;

  bool operator==(const RecoveryStatus&) const = default;
};

/// Overload-control posture, mirrored from the PressureGovernor's metrics
/// (absent when no governor runs in the process).
struct OverloadStatus {
  std::string level;  ///< normal / throttled / shedding / emergency.
  std::uint64_t transitions = 0;        ///< Ladder moves so far.
  std::uint64_t shed_intervals = 0;     ///< Ingest intervals shed.
  std::uint64_t rejected_ingest = 0;    ///< Ingest admissions refused.
  std::uint64_t shed_queries = 0;       ///< Queries refused pre-work.
  std::uint64_t deadline_exceeded = 0;  ///< Queries expired pre-work.
  std::uint64_t deferred_reconstructions = 0;
  std::uint64_t aborted_reconstructions = 0;

  bool operator==(const OverloadStatus&) const = default;
};

/// See file comment.
struct StatusReport {
  double generated_at = 0.0;  ///< Simulated time of the snapshot.

  // Model lifecycle (from ModelManager).
  std::uint64_t model_version = 0;
  std::string model_health;  ///< to_string(ModelHealth).
  std::uint64_t health_transitions = 0;  ///< Total so far.
  std::vector<TransitionStatus> recent_transitions;  ///< Newest last.
  std::uint64_t failed_reconstructions = 0;
  std::uint64_t stale_skips = 0;
  std::string last_failure_reason;
  std::uint64_t drift_notices = 0;
  std::string last_drift_reason;

  // Model-quality rollup.
  std::string overall_drift;  ///< Worst per-stream classification.
  bool scorer_ready = false;
  std::uint64_t scored_snapshot_version = 0;
  std::uint64_t rows_scored = 0;
  std::uint64_t rows_unscored = 0;  ///< Rows seen with no scorable model.
  std::vector<StreamStatus> streams;

  // Durability provenance (absent when the process never recovered).
  std::optional<RecoveryStatus> recovery;

  // Overload posture (absent when no governor runs in the process).
  std::optional<OverloadStatus> overload;

  // Query serving (from the metrics registry).
  std::uint64_t query_count = 0;
  std::uint64_t query_latency_p50_ns = 0;
  std::uint64_t query_latency_p95_ns = 0;
  std::uint64_t query_latency_p99_ns = 0;

  // Inference-kernel posture: active SIMD dispatch tier
  // (scalar|avx2|avx512, empty when unreported) and cumulative
  // plan-cache traffic of the serving workers.
  std::string simd_tier;
  std::uint64_t plan_cache_hits = 0;
  std::uint64_t plan_cache_misses = 0;

  bool operator==(const StatusReport&) const = default;

  /// Single-line JSON (safe to append to a JSONL feed).
  std::string to_json() const;
};

/// Parses to_json() output back to an equal report; nullopt on malformed
/// input (never aborts — status feeds may be torn by a crash).
std::optional<StatusReport> status_report_from_json(const std::string& text);

}  // namespace kertbn::quality
