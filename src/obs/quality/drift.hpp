#pragma once
/// \file drift.hpp
/// Deterministic online drift detection over standardized residuals — the
/// change-point sensor of the model-quality layer (ALPINE-style continuous
/// diagnosis; see DESIGN §11). Two classic detectors run side by side on
/// each scored stream:
///
///   * two-sided CUSUM: s+ = max(0, s+ + z - k), s- = max(0, s- - z - k).
///     The workhorse for persistent mean shifts; the slack k absorbs
///     in-control noise so the statistic stays pinned at 0 until the
///     residual stream picks up a bias.
///   * two-sided Page–Hinkley: cumulative deviation of z from its running
///     mean (±delta), alarmed on the gap to its running extremum. Catches
///     slow ramps whose per-interval bias stays under the CUSUM slack.
///
/// Classification is none -> suspected -> confirmed: suspected when either
/// statistic crosses its warn threshold, confirmed when either holds above
/// its confirm threshold for `confirm_intervals` consecutive observations.
/// Suspicion decays back to none when both statistics drop under warn
/// (CUSUM self-drains in control); confirmation latches until reset().
///
/// Determinism contract: the detector is seedless and clockless — state is
/// a pure fold of the input sequence with fixed-order IEEE-754 double
/// arithmetic, independent of telemetry configuration (KERTBN_OBS on/off,
/// sink or not). Equal inputs produce bit-identical State on any run; the
/// scenario property suite asserts exactly that.

#include <cstddef>

namespace kertbn::quality {

/// Drift severity for one monitored stream (or the rollup over streams).
enum class DriftState { kNone = 0, kSuspected = 1, kConfirmed = 2 };

const char* to_string(DriftState state);
/// Inverse of to_string (returns kNone for unknown text).
DriftState drift_state_from_string(const char* text);

struct DriftOptions {
  /// CUSUM slack k (standardized-residual units): per-observation bias
  /// smaller than this is treated as in-control noise. Queueing residuals
  /// are autocorrelated — congestion episodes show up as sustained mild
  /// (|bias| < ~1) one-signed runs even in control — so the slack sits
  /// well above the i.i.d.-textbook 0.25; a genuine model/environment
  /// mismatch pushes calibrated residuals to the clamp (~3) and still
  /// accumulates ~2.5 per observation.
  double cusum_slack = 0.5;
  /// CUSUM warn / confirm thresholds on max(s+, s-). The confirm level
  /// sits far above warn on purpose: in-control congestion episodes in
  /// queueing workloads run the statistic into the low teens for a few
  /// rows before draining, while a genuine model/environment mismatch
  /// accumulates ~2.5 per row (clamped residual minus slack) and blows
  /// straight through. Confirmation is the trigger for an operator-
  /// visible advisory, so it is priced for a near-zero false-positive
  /// rate rather than minimum latency — warn remains the early signal.
  double cusum_warn = 3.0;
  double cusum_confirm = 18.0;
  /// Page–Hinkley magnitude tolerance delta (same autocorrelation
  /// reasoning as the slack: deviation from the running mean must exceed
  /// benign congestion wander before it counts).
  double ph_delta = 0.5;
  /// Page–Hinkley warn / confirm thresholds (same two-tier reasoning as
  /// the CUSUM pair).
  double ph_warn = 6.0;
  double ph_confirm = 24.0;
  /// Consecutive observations at/above a confirm threshold required to
  /// report kConfirmed. Four rides out not just single-interval flukes
  /// but short congestion bursts (a heavy-tail job's busy period) that
  /// spike the statistic for a couple of rows and then drain; a real
  /// model/environment mismatch holds the statistic up for as long as
  /// the mismatch lasts.
  std::size_t confirm_intervals = 4;
  /// Observations before any alarm may fire (residual basis warm-up).
  std::size_t min_observations = 4;
};

/// One stream's detector (see file comment). Feed add() once per
/// monitoring interval with that interval's standardized residual.
class DriftDetector {
 public:
  /// Complete detector state — plain data so tests can require
  /// bit-identical (==) state across reruns.
  struct State {
    std::size_t n = 0;
    double cusum_pos = 0.0;
    double cusum_neg = 0.0;
    double ph_mean = 0.0;
    double ph_cum_pos = 0.0;  ///< Sum of (z - mean - delta).
    double ph_cum_neg = 0.0;  ///< Sum of (z - mean + delta).
    double ph_min_pos = 0.0;  ///< Running min of ph_cum_pos.
    double ph_max_neg = 0.0;  ///< Running max of ph_cum_neg.
    std::size_t above_confirm = 0;
    DriftState state = DriftState::kNone;

    bool operator==(const State&) const = default;
  };

  DriftDetector() = default;
  explicit DriftDetector(DriftOptions opts) : opts_(opts) {}

  const DriftOptions& options() const { return opts_; }

  /// Feeds one standardized residual; returns the stream's classification
  /// after this observation.
  DriftState add(double z);

  DriftState state() const { return s_.state; }
  std::size_t observations() const { return s_.n; }
  /// max(s+, s-) — the CUSUM alarm statistic.
  double cusum_statistic() const;
  /// Larger of the upward/downward Page–Hinkley gap statistics.
  double ph_statistic() const;

  /// The raw fold state (for bit-identity assertions and StatusReport).
  const State& internal_state() const { return s_; }

  /// Clears everything (call when the model the residuals are scored
  /// against is replaced).
  void reset() { s_ = State{}; }

  /// Scales the accumulated alarm statistics by \p factor in [0, 1] and
  /// restarts the consecutive-confirmation count (unconfirmed detectors
  /// only; a latched confirmation is untouched). Called by the monitor at
  /// each routine recalibration so confirmation must be backed by
  /// evidence concentrated within ~one window — a residue left by an old
  /// congestion burst cannot slow-ride into a later confirmation. A real
  /// mismatch re-accumulates at (clamp - slack) per observation and
  /// confirms well before the next recalibration.
  void decay(double factor);

 private:
  DriftOptions opts_{};
  State s_{};
};

}  // namespace kertbn::quality
