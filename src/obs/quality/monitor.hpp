#pragma once
/// \file monitor.hpp
/// ModelQualityMonitor — the wiring that turns the scorer + drift
/// detectors + status report into a live tap on the monitoring ingest
/// path:
///
///   ManagementServer::add_row_observer(row -> monitor.observe_row(row))
///
/// Per ingested interval row the monitor (1) re-syncs with the manager's
/// published ModelSnapshot (adopting a new version resets the per-version
/// scores; detector folds and residual baselines persist across routine
/// rebuilds and reset only after a confirmed-drift regime change),
/// (2) scores the row against the snapshot's predicted marginals,
/// (3) calibrates each stream's standardized residual against that
/// stream's long-run in-control baseline and feeds the clamped calibrated
/// residual to the stream's DriftDetector, and (4) on a confirmed rollup
/// sends the manager one early-reconstruction advisory per model version
/// (ModelManager::note_drift) plus a `kert.drift.advisory` sink event.
/// Advisory only — the reconstruction schedule stays in charge; no
/// controller action is taken here.
///
/// Why calibrate: the raw standardized residual z = (x - mean)/sd against
/// discrete bin-summary predictions is *not* N(0, 1) in control — heavy-
/// tailed interval means give it a version-dependent bias and inflated
/// spread (each rebuild refits the discretizer, moving the bin edges the
/// prediction summarizes), which a raw CUSUM misreads as drift. The
/// monitor rides the same row feed the management server's window is
/// built from, so it keeps the last points_per_window rows in a ring
/// buffer; at adoption that buffer IS the new model's training window,
/// and each stream's baseline (mean/sd of z over those rows) defines
/// what "in control" looks like for THIS version. The detectors see
/// clamp((z - baseline_mean)/baseline_sd) — change relative to the
/// version's own training data, not misfit relative to an ideal model —
/// which is why detector folds can meaningfully persist across routine
/// rebuilds.
///
/// Drift classification changes emit `kert.drift.state_change` events and
/// kert.drift.* metrics; report() snapshots the full StatusReport, and
/// status_every_rows makes the monitor push it to the JSONL sink
/// periodically.

#include <functional>
#include <span>
#include <vector>

#include "durable/recovery.hpp"
#include "kert/model_manager.hpp"
#include "obs/quality/drift.hpp"
#include "obs/quality/scorer.hpp"
#include "obs/quality/status.hpp"

namespace kertbn::quality {

/// Mirrors a durable recovery report into the status-surface shape.
RecoveryStatus recovery_status_from(const durable::RecoveryReport& report);

/// See file comment.
class ModelQualityMonitor {
 public:
  struct Config {
    ScoreOptions score{};
    DriftOptions drift{};
    /// Simulated-time source stamping advisories and reports (e.g. the
    /// testbed clock). Defaults to 0.0 when unset.
    std::function<double()> clock;
    /// Push a StatusReport to the event sink every this many scored rows
    /// (0 = only on demand via emit_status()).
    std::size_t status_every_rows = 0;
    /// Transitions included in StatusReport::recent_transitions.
    std::size_t recent_transitions = 8;
    /// Buffered window rows a version's baseline must be computed from
    /// before the detectors receive calibrated residuals. Detection also
    /// waits for the window mirror to fill once (cold start: a part-full
    /// window still contains the system's warm-up transient, and a model
    /// built from it systematically underpredicts the steady state —
    /// which a change-point detector would misread as drift).
    std::size_t baseline_min_obs = 8;
    /// Floor on the baseline stddev used for calibration — keeps a
    /// near-constant in-control stream (e.g. mostly carried-forward
    /// values) from turning tiny wiggles into huge calibrated residuals.
    double baseline_min_stddev = 0.5;
    /// Calibrated residuals are clamped to +/- this before the detectors,
    /// so one heavy-tail spike cannot fake a sustained shift.
    double residual_clamp = 3.0;
    /// Factor applied to every unconfirmed detector's accumulated alarm
    /// statistics at each routine adoption (DriftDetector::decay): old
    /// burst residue fades across recalibrations instead of slow-riding
    /// into a later confirmation.
    double adoption_decay = 0.5;
    /// Streams whose window rows are mostly carried-forward values (a
    /// rarely-taken choice branch leaves its service unobserved most
    /// intervals, and the server repeats the last mean to keep the row
    /// cadence) are disarmed for drift detection: their predictions are
    /// fit to a near-constant column, so the occasional real invocation
    /// lands tens of "sigmas" out and fakes a shift. Detected as the
    /// fraction of consecutive exact-duplicate values in the window.
    double max_carry_fraction = 0.5;
  };

  /// \p manager must outlive the monitor; its workflow's service count
  /// fixes the row shape.
  ModelQualityMonitor(core::ModelManager& manager, Config config);

  const Config& config() const { return config_; }

  /// The ingest tap — wire to ManagementServer::add_row_observer. The row
  /// is the server's data-point layout: service means then D.
  void observe_row(std::span<const double> row);

  /// Worst per-stream drift classification.
  DriftState overall_drift() const;
  /// Stream detector (response stream = n_services).
  const DriftDetector& detector(std::size_t stream) const;
  const PredictiveScorer& scorer() const { return scorer_; }

  /// Rows observed while no scorable snapshot was published.
  std::size_t rows_unscored() const { return rows_unscored_; }
  /// Early-reconstruction advisories sent to the manager.
  std::size_t advisories_sent() const { return advisories_sent_; }

  /// Attaches crash-recovery provenance to subsequent reports.
  void set_recovery(const durable::RecoveryReport& report) {
    recovery_ = recovery_status_from(report);
  }

  /// Snapshots the full operational status (see status.hpp).
  StatusReport report() const;

  /// Pushes report() to the event sink as a `kert.quality.status` event
  /// whose "report" tag holds the JSON text.
  void emit_status() const;

  /// In-control reference for one stream under the adopted version: the
  /// mean/stddev of the raw standardized residual over the version's own
  /// training window (see file comment).
  struct Baseline {
    double mean = 0.0;
    double stddev = 0.0;
    std::size_t count = 0;  ///< Window rows it was computed from.
    /// Fraction of consecutive exact-duplicate window values (the
    /// carry-forward signature; see Config::max_carry_fraction).
    double carry_fraction = 0.0;
    /// Whether this stream's detector receives residuals this version.
    bool armed = false;
  };

  const Baseline& baseline(std::size_t stream) const {
    return baselines_[stream];
  }

 private:
  /// Adopts the manager's newest published snapshot when its version
  /// differs from the scored one; recalibrates the baselines from the
  /// buffered window, resets the per-version scores, and — only after a
  /// confirmed-drift regime change — the detectors too.
  void sync_snapshot();
  /// Recomputes every stream's Baseline from the ring-buffered rows
  /// against the freshly adopted predictions.
  void calibrate_baselines();
  /// Appends a row to the sliding window mirror.
  void remember_row(std::span<const double> row);
  std::string stream_name(std::size_t stream) const;

  core::ModelManager& manager_;
  Config config_;
  std::size_t n_;  ///< Service count (streams() == n_ + 1).
  PredictiveScorer scorer_;
  std::vector<DriftDetector> detectors_;
  std::vector<Baseline> baselines_;
  /// Ring buffer mirroring the management server's sliding window (the
  /// monitor rides the same row feed): the last points_per_window rows.
  std::vector<std::vector<double>> recent_rows_;
  std::size_t recent_cap_ = 0;
  std::size_t recent_pos_ = 0;
  /// Whether the adopted version's baselines were computed from a full
  /// window mirror — detection stays disarmed until then (see Config).
  bool baseline_window_full_ = false;
  /// Cached overall_drift() rollup, refreshed only when a detector
  /// transitions or the detectors are reset/decayed at adoption — the
  /// per-row path reads this instead of rescanning every stream.
  DriftState overall_cached_ = DriftState::kNone;
  std::vector<double> z_buf_;
  std::size_t rows_unscored_ = 0;
  std::size_t advisories_sent_ = 0;
  /// Model version the last advisory was sent for (one per version).
  std::size_t advisory_version_ = 0;
  bool advisory_sent_for_version_ = false;
  std::size_t unsupported_version_ = 0;  ///< Last version adopt() rejected.
  bool has_unsupported_version_ = false;
  /// SnapshotSlot::published_count() at the last sync_snapshot that did
  /// real work — the ingest-path fast gate: when nothing new has been
  /// published, observe_row skips the slot's pin/copy entirely (one
  /// relaxed load instead of two seq_cst RMWs plus a shared_ptr copy per
  /// row).
  std::size_t last_published_count_ = static_cast<std::size_t>(-1);
  std::optional<RecoveryStatus> recovery_;
};

}  // namespace kertbn::quality
