#include "obs/quality/drift.hpp"

#include <algorithm>
#include <cstring>

namespace kertbn::quality {

const char* to_string(DriftState state) {
  switch (state) {
    case DriftState::kNone:
      return "none";
    case DriftState::kSuspected:
      return "suspected";
    case DriftState::kConfirmed:
      return "confirmed";
  }
  return "unknown";
}

DriftState drift_state_from_string(const char* text) {
  if (std::strcmp(text, "suspected") == 0) return DriftState::kSuspected;
  if (std::strcmp(text, "confirmed") == 0) return DriftState::kConfirmed;
  return DriftState::kNone;
}

double DriftDetector::cusum_statistic() const {
  return std::max(s_.cusum_pos, s_.cusum_neg);
}

double DriftDetector::ph_statistic() const {
  return std::max(s_.ph_cum_pos - s_.ph_min_pos,
                  s_.ph_max_neg - s_.ph_cum_neg);
}

void DriftDetector::decay(double factor) {
  if (s_.state == DriftState::kConfirmed) return;  // latched
  s_.cusum_pos *= factor;
  s_.cusum_neg *= factor;
  s_.ph_cum_pos *= factor;
  s_.ph_cum_neg *= factor;
  s_.ph_min_pos *= factor;
  s_.ph_max_neg *= factor;
  s_.above_confirm = 0;
}

DriftState DriftDetector::add(double z) {
  ++s_.n;

  // CUSUM (two-sided, slack k): drains toward 0 in control.
  s_.cusum_pos = std::max(0.0, s_.cusum_pos + z - opts_.cusum_slack);
  s_.cusum_neg = std::max(0.0, s_.cusum_neg - z - opts_.cusum_slack);

  // Page–Hinkley: running mean first, then the two cumulative deviation
  // tracks and their extrema. Fixed evaluation order keeps the fold
  // bit-reproducible.
  s_.ph_mean += (z - s_.ph_mean) / static_cast<double>(s_.n);
  s_.ph_cum_pos += z - s_.ph_mean - opts_.ph_delta;
  s_.ph_cum_neg += z - s_.ph_mean + opts_.ph_delta;
  s_.ph_min_pos = std::min(s_.ph_min_pos, s_.ph_cum_pos);
  s_.ph_max_neg = std::max(s_.ph_max_neg, s_.ph_cum_neg);

  if (s_.state == DriftState::kConfirmed) return s_.state;  // latched

  if (s_.n < opts_.min_observations) return s_.state;

  const double cusum = cusum_statistic();
  const double ph = ph_statistic();
  const bool confirm_level =
      cusum >= opts_.cusum_confirm || ph >= opts_.ph_confirm;
  const bool warn_level = cusum >= opts_.cusum_warn || ph >= opts_.ph_warn;

  // An interval counts toward confirmation only while the observation
  // itself keeps pushing the CUSUM up ("fresh evidence"): the statistic
  // drains at just the slack rate, so after a short burst it can sit
  // above the confirm line for many quiet intervals — quiet intervals
  // must not confirm drift.
  const bool fresh_evidence = std::abs(z) > opts_.cusum_slack;
  s_.above_confirm =
      confirm_level && fresh_evidence ? s_.above_confirm + 1 : 0;
  if (s_.above_confirm >= opts_.confirm_intervals) {
    s_.state = DriftState::kConfirmed;
  } else if (warn_level) {
    s_.state = DriftState::kSuspected;
  } else {
    s_.state = DriftState::kNone;
  }
  return s_.state;
}

}  // namespace kertbn::quality
