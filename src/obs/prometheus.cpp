#include "obs/prometheus.hpp"

#include <cctype>
#include <cstdio>

namespace kertbn::obs {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_sample(std::string& out, const std::string& name,
                   std::uint64_t v) {
  out += name;
  out += ' ';
  append_u64(out, v);
  out += '\n';
}

void append_quantile(std::string& out, const std::string& name, double q,
                     std::uint64_t v) {
  out += name;
  out += "{quantile=\"";
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%g", q);
  out += buf;
  out += "\"} ";
  append_u64(out, v);
  out += '\n';
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out = "kertbn_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string to_prometheus_text(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, v] : snapshot.counters) {
    const std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " counter\n";
    append_sample(out, pname, v);
  }
  for (const auto& [name, v] : snapshot.gauges) {
    const std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " gauge\n";
    out += pname;
    out += ' ';
    append_double(out, v);
    out += '\n';
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " summary\n";
    append_quantile(out, pname, 0.5, h.quantile(0.5));
    append_quantile(out, pname, 0.95, h.quantile(0.95));
    append_quantile(out, pname, 0.99, h.quantile(0.99));
    append_sample(out, pname + "_sum", h.sum);
    append_sample(out, pname + "_count", h.count);
    append_sample(out, pname + "_max", h.max);
  }
  return out;
}

}  // namespace kertbn::obs
