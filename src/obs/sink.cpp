#include "obs/sink.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>

namespace kertbn::obs {

namespace {

std::mutex g_sink_mutex;
std::shared_ptr<EventSink> g_sink;           // guarded by g_sink_mutex
std::atomic<bool> g_has_sink{false};         // fast-path mirror

std::chrono::steady_clock::time_point process_start() {
  static const auto start = std::chrono::steady_clock::now();
  return start;
}

// Touch the anchor at static-init time so t=0 predates all events.
const auto g_anchor = process_start();

std::atomic<std::uint64_t> g_next_thread_ordinal{0};

void append_number(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_number(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_tag_value(std::string& out, const SpanTag& tag) {
  if (const auto* u = std::get_if<std::uint64_t>(&tag.value)) {
    append_number(out, *u);
  } else if (const auto* d = std::get_if<double>(&tag.value)) {
    append_number(out, *d);
  } else if (const auto* b = std::get_if<bool>(&tag.value)) {
    out += *b ? "true" : "false";
  } else {
    out += '"';
    out += json_escape(std::get<std::string>(tag.value));
    out += '"';
  }
}

}  // namespace

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - process_start())
          .count());
}

std::uint64_t thread_ordinal() {
  thread_local const std::uint64_t ordinal =
      g_next_thread_ordinal.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

void set_sink(std::shared_ptr<EventSink> sink) {
  std::lock_guard lock(g_sink_mutex);
  g_sink = std::move(sink);
  g_has_sink.store(g_sink != nullptr, std::memory_order_release);
}

std::shared_ptr<EventSink> sink() {
  std::lock_guard lock(g_sink_mutex);
  return g_sink;
}

bool has_sink() { return g_has_sink.load(std::memory_order_acquire); }

void emit_span(const SpanEvent& event) {
  if (const auto s = sink()) s->on_span(event);
}

void emit_event(const LogEvent& event) {
  if (const auto s = sink()) s->on_event(event);
}

void publish_metrics() {
  if (const auto s = sink()) {
    s->on_metrics(MetricsRegistry::instance().snapshot(), now_ns());
  }
}

void flush_sink() {
  if (const auto s = sink()) s->flush();
}

bool init_from_env() {
  const char* path = std::getenv("KERTBN_OBS_JSONL");
  if (path == nullptr || *path == '\0') return false;
  FileSink::Options options;
  if (const char* cap = std::getenv("KERTBN_OBS_JSONL_MAX_BYTES")) {
    const long long v = std::atoll(cap);
    if (v > 0) options.max_bytes = static_cast<std::size_t>(v);
  }
  set_sink(std::make_shared<FileSink>(path, options));
  return true;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// --------------------------------------------------------------- FileSink

FileSink::FileSink(const std::string& path) : FileSink(path, Options{}) {}

FileSink::FileSink(const std::string& path, Options options)
    : path_(path), options_(options) {
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) {
    throw std::runtime_error("obs::FileSink: cannot open " + path);
  }
}

FileSink::~FileSink() {
  if (file_ != nullptr) std::fclose(file_);
}

std::size_t FileSink::rotations() const {
  std::lock_guard lock(mutex_);
  return rotations_;
}

std::size_t FileSink::dropped_events() const {
  std::lock_guard lock(mutex_);
  return dropped_events_;
}

void FileSink::write_line(const std::string& line) {
  std::lock_guard lock(mutex_);
  if (options_.max_bytes > 0 &&
      bytes_written_ + line.size() > options_.max_bytes) {
    // Rotate: the current file moves to <path>.1 (replacing any older one)
    // and a fresh file takes its place. On failure the sink stays closed
    // and retries on the next write — the cap is hard, so the event is
    // dropped rather than letting a soak fill the disk.
    if (file_ != nullptr) {
      std::fclose(file_);
      file_ = nullptr;
    }
    const std::string rotated = path_ + ".1";
    std::remove(rotated.c_str());
    if (std::rename(path_.c_str(), rotated.c_str()) == 0) {
      file_ = std::fopen(path_.c_str(), "w");
    }
    if (file_ != nullptr) {
      bytes_written_ = 0;
      ++rotations_;
    }
  }
  const bool over_cap =
      options_.max_bytes > 0 &&
      bytes_written_ + line.size() > options_.max_bytes;
  if (file_ == nullptr || over_cap) {
    ++dropped_events_;
    static Counter& dropped =
        MetricsRegistry::instance().counter("kert.obs.sink_dropped_events");
    dropped.add(1);
    return;
  }
  std::fwrite(line.data(), 1, line.size(), file_);
  bytes_written_ += line.size();
}

void FileSink::on_span(const SpanEvent& event) {
  std::string line = "{\"type\":\"span\",\"name\":\"";
  line += json_escape(event.name);
  line += "\",\"trace\":";
  append_number(line, event.trace_id);
  line += ",\"span\":";
  append_number(line, event.span_id);
  line += ",\"parent\":";
  append_number(line, event.parent_id);
  line += ",\"thread\":";
  append_number(line, event.thread_id);
  line += ",\"t_ns\":";
  append_number(line, event.start_ns);
  line += ",\"dur_ns\":";
  append_number(line, event.duration_ns);
  if (!event.tags.empty()) {
    line += ",\"tags\":{";
    bool first = true;
    for (const SpanTag& tag : event.tags) {
      if (!first) line += ',';
      first = false;
      line += '"';
      line += json_escape(tag.key);
      line += "\":";
      append_tag_value(line, tag);
    }
    line += '}';
  }
  line += "}\n";
  write_line(line);
}

void FileSink::on_event(const LogEvent& event) {
  std::string line = "{\"type\":\"event\",\"name\":\"";
  line += json_escape(event.name);
  line += "\",\"t_ns\":";
  append_number(line, event.t_ns);
  if (!event.tags.empty()) {
    line += ",\"tags\":{";
    bool first = true;
    for (const SpanTag& tag : event.tags) {
      if (!first) line += ',';
      first = false;
      line += '"';
      line += json_escape(tag.key);
      line += "\":";
      append_tag_value(line, tag);
    }
    line += '}';
  }
  line += "}\n";
  write_line(line);
}

void FileSink::on_metrics(const MetricsSnapshot& snapshot,
                          std::uint64_t t_ns) {
  std::string line = "{\"type\":\"metrics\",\"t_ns\":";
  append_number(line, t_ns);
  line += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : snapshot.counters) {
    if (!first) line += ',';
    first = false;
    line += '"';
    line += json_escape(name);
    line += "\":";
    append_number(line, v);
  }
  line += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : snapshot.gauges) {
    if (!first) line += ',';
    first = false;
    line += '"';
    line += json_escape(name);
    line += "\":";
    append_number(line, v);
  }
  line += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    if (!first) line += ',';
    first = false;
    line += '"';
    line += json_escape(name);
    line += "\":{\"count\":";
    append_number(line, h.count);
    line += ",\"sum\":";
    append_number(line, h.sum);
    line += ",\"max\":";
    append_number(line, h.max);
    line += ",\"buckets\":[";
    // Trailing zero buckets are elided to keep lines short; consumers
    // treat missing entries as zero.
    std::size_t last = HistogramStats::kBuckets;
    while (last > 0 && h.buckets[last - 1] == 0) --last;
    for (std::size_t i = 0; i < last; ++i) {
      if (i > 0) line += ',';
      append_number(line, h.buckets[i]);
    }
    line += "]}";
  }
  line += "}}\n";
  write_line(line);
}

void FileSink::flush() {
  std::lock_guard lock(mutex_);
  if (file_ != nullptr) std::fflush(file_);
}

}  // namespace kertbn::obs
