#include "obs/span.hpp"

#include <atomic>
#include <unordered_map>

namespace kertbn::obs {

namespace {

std::atomic<std::uint64_t> g_next_span_id{1};

thread_local SpanContext t_current{};

/// Duration histogram for a span name, cached per thread keyed on the name
/// literal's address so closing a span does not take the registry mutex
/// after first use. Distinct literal addresses with equal content resolve
/// to the same registry histogram, so duplicate cache entries are benign.
Histogram& span_histogram(const char* name) {
  thread_local std::unordered_map<const void*, Histogram*> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    std::string metric = "span.";
    metric += name;
    Histogram& h = MetricsRegistry::instance().histogram(metric);
    it = cache.emplace(name, &h).first;
  }
  return *it->second;
}

}  // namespace

SpanContext current_context() { return t_current; }

ContextGuard::ContextGuard(SpanContext ctx) : prev_(t_current) {
  t_current = ctx;
}

ContextGuard::~ContextGuard() { t_current = prev_; }

Span::Span(const char* name) {
  if (enabled()) open(name, t_current);
}

Span::Span(const char* name, SpanContext parent) {
  if (enabled()) open(name, parent);
}

void Span::open(const char* name, SpanContext parent) {
  name_ = name;
  active_ = true;
  parent_id_ = parent.span_id;
  ctx_.span_id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  ctx_.trace_id = parent.span_id == 0 ? ctx_.span_id : parent.trace_id;
  prev_ = t_current;
  t_current = ctx_;
  start_ns_ = now_ns();
}

void Span::close() {
  if (!active_) return;
  active_ = false;
  const std::uint64_t end_ns = now_ns();
  t_current = prev_;
  const std::uint64_t duration = end_ns - start_ns_;
  span_histogram(name_).record(duration);
  if (has_sink()) {
    SpanEvent event;
    event.name = name_;
    event.trace_id = ctx_.trace_id;
    event.span_id = ctx_.span_id;
    event.parent_id = parent_id_;
    event.thread_id = thread_ordinal();
    event.start_ns = start_ns_;
    event.duration_ns = duration;
    event.tags = std::move(tags_);
    emit_span(event);
  }
  tags_.clear();
}

// Tags exist only for the event sink, so without one installed they are
// not even collected — this keeps the null-sink hot path free of the
// per-tag string allocations. (A sink installed mid-span sees only the
// tags recorded after installation; sinks are installed at startup.)

void Span::tag(std::string_view key, std::uint64_t value) {
  if (active_ && has_sink()) tags_.push_back({std::string(key), value});
}

void Span::tag(std::string_view key, double value) {
  if (active_ && has_sink()) tags_.push_back({std::string(key), value});
}

void Span::tag(std::string_view key, bool value) {
  if (active_ && has_sink()) tags_.push_back({std::string(key), value});
}

void Span::tag(std::string_view key, std::string value) {
  if (active_ && has_sink()) {
    tags_.push_back({std::string(key), std::move(value)});
  }
}

}  // namespace kertbn::obs
