#include "fleet/scheduler.hpp"

#include <algorithm>

namespace kertbn::fleet {

double ReconstructionScheduler::priority(
    const RebuildCandidate& candidate) const {
  double p = static_cast<double>(candidate.staleness_ticks);
  switch (candidate.health) {
    case core::ModelHealth::kNone:
    case core::ModelHealth::kFallback:
    case core::ModelHealth::kDegraded:
      p += config_.unhealthy_boost;
      break;
    case core::ModelHealth::kFresh:
    case core::ModelHealth::kStale:
      break;
  }
  if (candidate.probation) p += config_.probation_boost;
  return p;
}

std::vector<std::uint64_t> ReconstructionScheduler::select(
    const std::vector<RebuildCandidate>& candidates) {
  std::vector<std::size_t> order(candidates.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double pa = priority(candidates[a]);
    const double pb = priority(candidates[b]);
    if (pa != pb) return pa > pb;
    return candidates[a].tenant < candidates[b].tenant;
  });

  const std::size_t slots =
      std::min(config_.max_rebuilds_per_tick, order.size());
  std::vector<std::uint64_t> grants;
  grants.reserve(slots);
  for (std::size_t i = 0; i < slots; ++i) {
    grants.push_back(candidates[order[i]].tenant);
  }
  granted_ += slots;
  deferred_ += order.size() - slots;
  std::sort(grants.begin(), grants.end());
  return grants;
}

}  // namespace kertbn::fleet
