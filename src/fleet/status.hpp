#pragma once
/// \file status.hpp
/// Fleet-wide operational rollups: per-shard and fleet-level counts an
/// operator (or autonomic controller) needs to judge the fleet — tenant
/// counts by ladder condition and model health, staleness percentiles,
/// quarantine / recovery / scheduler activity, and per-shard bulkhead
/// posture (governor level, rebuild deferrals, ingest shedding).
///
/// FleetStatus::to_json() emits one JSON line (JSONL-appendable, same
/// convention as the quality layer's StatusReport);
/// publish_fleet_metrics() mirrors the rollup into the obs registry as
/// kert.fleet.* gauges so the existing Prometheus exposition
/// (obs/prometheus.hpp) serves it with no extra wiring.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace kertbn::fleet {

/// One shard's bulkhead posture.
struct ShardStatus {
  std::size_t shard = 0;
  std::size_t tenants = 0;
  std::string governor_level;  ///< normal / throttled / shedding / emergency.
  std::uint64_t rebuilds = 0;
  /// Rebuilds the shard governor refused (bulkhead pressure), summed over
  /// the shard's tenants.
  std::uint64_t governor_deferred = 0;
  std::uint64_t aborted_rebuilds = 0;
  std::uint64_t shed_intervals = 0;
  std::uint64_t restarts = 0;

  bool operator==(const ShardStatus&) const = default;
};

/// See file comment.
struct FleetStatus {
  std::uint64_t ticks = 0;  ///< Fleet ticks completed.
  std::size_t tenants = 0;
  std::size_t shards = 0;

  // Ladder conditions.
  std::size_t healthy = 0;
  std::size_t probation = 0;
  std::size_t quarantined = 0;

  // Model health counts (to_string(ModelHealth) order).
  std::size_t health_none = 0;
  std::size_t health_fresh = 0;
  std::size_t health_stale = 0;
  std::size_t health_fallback = 0;
  std::size_t health_degraded = 0;

  // Cumulative fleet activity.
  std::uint64_t quarantine_events = 0;
  std::uint64_t readmissions = 0;
  std::uint64_t crash_recoveries = 0;
  std::uint64_t rebuilds = 0;
  std::uint64_t scheduler_granted = 0;
  std::uint64_t scheduler_deferred = 0;
  std::uint64_t governor_deferred = 0;
  std::uint64_t aborted_rebuilds = 0;

  // Model staleness across tenants, in ticks.
  double staleness_p50_ticks = 0.0;
  double staleness_p99_ticks = 0.0;
  double staleness_max_ticks = 0.0;

  std::vector<ShardStatus> shard_status;

  bool operator==(const FleetStatus&) const = default;

  /// Single-line JSON (safe to append to a JSONL feed).
  std::string to_json() const;
};

/// Mirrors \p status into the obs metrics registry as kert.fleet.*
/// gauges (idempotent set — safe to call every tick). No-op when
/// telemetry is runtime-disabled.
void publish_fleet_metrics(const FleetStatus& status);

}  // namespace kertbn::fleet
