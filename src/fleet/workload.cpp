#include "fleet/workload.hpp"

#include <string>

#include "common/contract.hpp"

namespace kertbn::fleet {

namespace {

/// splitmix64 finalizer — the fleet's decisions use the same keyed-hash
/// construction as the fault injector, for the same reason: every draw is
/// an independent pure function of its coordinates.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

TenantWorkload::TenantWorkload(Config config) : config_(config) {
  KERTBN_EXPECTS(config_.services >= 1);
  KERTBN_EXPECTS(config_.base_max >= config_.base_min);
  bases_.reserve(config_.services);
  for (std::size_t s = 0; s < config_.services; ++s) {
    const double u = u01(/*stream=*/0, s, 0);
    bases_.push_back(config_.base_min +
                     u * (config_.base_max - config_.base_min));
  }
}

double TenantWorkload::u01(std::uint64_t stream, std::uint64_t a,
                           std::uint64_t b) const {
  std::uint64_t h = mix(config_.seed ^ mix(stream));
  h = mix(h ^ a);
  return static_cast<double>(mix(h ^ b) >> 11) * 0x1.0p-53;
}

double TenantWorkload::service_mean(std::size_t service,
                                    std::uint64_t tick) const {
  const double wobble =
      config_.wobble * (2.0 * u01(/*stream=*/1, service, tick) - 1.0);
  return bases_[service] * (1.0 + wobble);
}

std::vector<sim::AgentReport> TenantWorkload::reports(
    std::uint64_t tick) const {
  sim::AgentReport report;
  report.agent = 0;
  report.service_means.reserve(config_.services);
  for (std::size_t s = 0; s < config_.services; ++s) {
    report.service_means.emplace_back(s, service_mean(s, tick));
  }
  return {std::move(report)};
}

double TenantWorkload::response_mean(std::uint64_t tick) const {
  double sum = 0.0;
  for (std::size_t s = 0; s < config_.services; ++s) {
    sum += service_mean(s, tick);
  }
  const double leak = config_.leak * true_response_mean() *
                      (2.0 * u01(/*stream=*/2, 0, tick) - 1.0);
  return sum + leak;
}

double TenantWorkload::true_response_mean() const {
  double sum = 0.0;
  for (const double b : bases_) sum += b;
  return sum;
}

wf::Workflow TenantWorkload::make_workflow() const {
  std::vector<std::string> names;
  std::vector<wf::Node::Ptr> steps;
  names.reserve(config_.services);
  steps.reserve(config_.services);
  for (std::size_t s = 0; s < config_.services; ++s) {
    names.push_back("s" + std::to_string(s));
    steps.push_back(wf::Node::activity(s));
  }
  return wf::Workflow(std::move(names), wf::Node::sequence(std::move(steps)));
}

wf::ResourceSharing TenantWorkload::make_sharing() const {
  wf::ResourceGroup host;
  host.name = "tenant_host";
  for (std::size_t s = 0; s < config_.services; ++s) {
    host.services.push_back(s);
  }
  return wf::ResourceSharing{{std::move(host)}};
}

}  // namespace kertbn::fleet
