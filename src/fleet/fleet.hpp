#pragma once
/// \file fleet.hpp
/// Multi-tenant fleet serving with fault isolation (DESIGN §13).
///
/// The fleet shards its tenants across a fixed set of worker shards
/// (tenant id mod shard count). Each shard is a bulkhead: it owns its
/// tenants exclusively, processes them sequentially in ascending-id order,
/// and carries its own PressureGovernor (rebuild admission / thread
/// budget), cancellation source (in-flight rebuild aborts at emergency
/// level), and stall accounting — so overload or faults inside one shard
/// cannot consume another shard's resources. Shards share no mutable
/// state; with `parallel` they run as one thread-pool task per tick each,
/// and the result is bit-identical to the serial order because every
/// tenant's evolution is a pure function of (fleet seed, tenant id, tick,
/// fault plan).
///
/// Per tick the fleet (serially) realizes the fault plan's keyed
/// injection contexts and asks the ReconstructionScheduler which due
/// tenants win a rebuild slot under the global budget, then (in parallel)
/// each shard ingests its tenants' workload intervals, runs granted
/// rebuilds, and advances each tenant's health ladder:
///
///   healthy ──strikes──▶ quarantined ──cooldown──▶ probation ──clean──▶
///   healthy (a strike during probation re-quarantines)
///
/// A quarantined tenant is isolated — no ingest, no rebuild slots — but
/// its last-known-good model snapshot keeps serving (ModelManager's LKG
/// semantics). Strikes come from the counters the pipeline already keeps:
/// quarantined measurement values (poison streams), failed guarded
/// rebuilds, and corruption evidence in a crash recovery's replay.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "durable/journal.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fleet_plan.hpp"
#include "fleet/scheduler.hpp"
#include "fleet/status.hpp"
#include "fleet/tenant.hpp"
#include "overload/cancellation.hpp"
#include "overload/governor.hpp"

namespace kertbn::fleet {

/// Tenant ladder condition (the fleet-level state around ModelHealth).
enum class TenantCondition : std::uint8_t {
  kHealthy = 0,
  kProbation = 1,
  kQuarantined = 2,
};

const char* to_string(TenantCondition condition);

/// See file comment.
class Fleet {
 public:
  struct LadderConfig {
    /// Consecutive strike ticks that trigger quarantine.
    std::size_t strike_threshold = 3;
    /// Ticks a quarantined tenant sits out before probation.
    std::size_t quarantine_ticks = 24;
    /// Clean probation ticks before re-admission to healthy.
    std::size_t probation_ticks = 12;
  };

  struct Config {
    std::size_t tenants = 16;
    std::size_t shards = 4;
    std::uint64_t seed = 1;
    sim::ModelSchedule schedule{};
    std::size_t services = 4;
    /// Root of the per-tenant durable directories (data_root/tenant-<id>);
    /// empty = every tenant is ephemeral.
    std::string data_root;
    std::size_t checkpoint_every = 0;
    durable::FsyncPolicy fsync = durable::FsyncPolicy::kNone;
    std::size_t max_pending = 4;
    /// Attach a per-tenant ModelQualityMonitor.
    bool quality = false;
    /// One thread-pool task per shard per tick (false = serial, same
    /// result).
    bool parallel = true;
    ReconstructionScheduler::Config scheduler{};
    LadderConfig ladder{};
    /// Per-shard governor template. The fleet raises the reconstruction
    /// bucket to at least the shard's tenant count (a deferred rebuild
    /// waits a full T_CON, so a smaller bucket would starve the members
    /// past the token cut every cycle); under pressure the bulkhead binds
    /// through the ladder, which refuses reconstruction past throttled.
    ov::PressureGovernor::Config governor = default_governor_config();
    /// Fault schedule (non-owning; nullptr = clean run). Keyed injection
    /// contexts for poisoned tenants are installed/uninstalled as their
    /// windows open and close.
    const fault::FleetFaultPlan* faults = nullptr;
  };

  static ov::PressureGovernor::Config default_governor_config();

  explicit Fleet(Config config);
  ~Fleet();

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  const Config& config() const { return config_; }

  /// Runs one fleet tick (every tenant's next T_DATA interval).
  void run_tick();
  void run_ticks(std::size_t n);

  /// Fleet ticks completed so far.
  std::uint64_t ticks() const { return tick_; }

  const Tenant& tenant(std::uint64_t id) const { return *slots_[id].tenant; }
  TenantCondition condition(std::uint64_t id) const {
    return slots_[id].ladder.condition;
  }
  std::uint64_t quarantine_events(std::uint64_t id) const {
    return slots_[id].ladder.quarantine_events;
  }
  std::uint64_t readmissions(std::uint64_t id) const {
    return slots_[id].ladder.readmissions;
  }
  std::size_t shard_of(std::uint64_t id) const {
    return static_cast<std::size_t>(id) % config_.shards;
  }
  const ov::PressureGovernor& shard_governor(std::size_t shard) const {
    return shards_[shard]->governor;
  }
  const ReconstructionScheduler& scheduler() const { return scheduler_; }

  /// Rollup snapshot (see status.hpp).
  FleetStatus status() const;
  /// status() mirrored into the kert.fleet.* gauges.
  void publish_metrics() const { publish_fleet_metrics(status()); }

  /// The Tenant::Config the fleet would build tenant \p id with —
  /// exposed so tests can drive the identical tenant solo (the recovery
  /// bit-identity proof). Shard hooks (governor/cancel) are left null;
  /// \p dir overrides the derived durable directory.
  static Tenant::Config make_tenant_config(const Config& config,
                                           std::uint64_t id,
                                           std::string dir);

 private:
  struct Ladder {
    TenantCondition condition = TenantCondition::kHealthy;
    std::size_t strikes = 0;  ///< Consecutive strike ticks.
    std::size_t ticks_in_state = 0;
    /// Counter baselines for per-tick strike deltas (re-synced after a
    /// restart replaces the underlying objects).
    std::size_t base_quarantined = 0;
    std::size_t base_failed = 0;
    std::uint64_t quarantine_events = 0;
    std::uint64_t readmissions = 0;
  };

  struct Slot {
    std::unique_ptr<Tenant> tenant;
    Ladder ladder;
  };

  /// Heap-held: the governor's atomics pin its address while the fleet's
  /// shard list stays a plain vector.
  struct Shard {
    Shard(std::size_t shard_id, const ov::PressureGovernor::Config& cfg)
        : id(shard_id), governor(cfg) {}

    std::size_t id = 0;
    ov::PressureGovernor governor;
    ov::CancellationSource cancel;
    std::vector<std::uint64_t> members;  ///< Tenant ids, ascending.
    std::uint64_t rebuilds = 0;
    std::uint64_t crash_recoveries = 0;
    std::uint64_t restarts = 0;
  };

  void run_shard_tick(Shard& shard, std::uint64_t tick,
                      const std::vector<std::uint64_t>& grants);
  void process_tenant(Shard& shard, Slot& slot, std::uint64_t tick,
                      bool granted);
  void sync_injection_contexts(std::uint64_t tick);
  void quarantine(Slot& slot);
  void resync_strike_baselines(Slot& slot);

  Config config_;
  std::vector<Slot> slots_;
  std::vector<std::unique_ptr<Shard>> shards_;
  ReconstructionScheduler scheduler_;
  std::unique_ptr<ThreadPool> pool_;
  std::uint64_t tick_ = 0;
  /// Tenants whose keyed injection context is currently installed.
  std::vector<std::uint64_t> installed_keys_;
};

}  // namespace kertbn::fleet
