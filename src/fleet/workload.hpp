#pragma once
/// \file workload.hpp
/// Deterministic synthetic per-tenant workloads for fleet serving.
///
/// Fleet scale (1k+ tenants on one box) rules out running a DES per
/// tenant. Instead each tenant gets a small sequence workflow over a
/// handful of services and a measurement stream that is a pure function of
/// (workload seed, tick): per-service interval means wobble around
/// seed-derived bases, and the response mean is their sum plus seeded leak
/// noise — exactly the structural D = f(X) relation a sequence workflow's
/// Cardoso reduction predicts, so the per-tenant KERT-BN has something
/// real to learn. Pure-function generation is what makes per-tenant
/// recovery bit-identity provable: a replayed tick regenerates the same
/// reports no matter which process, shard, or thread asks.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sosim/monitoring.hpp"
#include "workflow/resource.hpp"
#include "workflow/workflow.hpp"

namespace kertbn::fleet {

/// See file comment. All methods are const and thread-safe.
class TenantWorkload {
 public:
  struct Config {
    std::uint64_t seed = 0;
    std::size_t services = 4;
    /// Per-service base means are drawn uniformly from this range (s).
    double base_min = 0.5;
    double base_max = 2.5;
    /// Relative wobble of each per-tick service mean around its base.
    double wobble = 0.10;
    /// Additive leak noise on the response mean, relative to its base sum.
    double leak = 0.02;
  };

  explicit TenantWorkload(Config config);

  const Config& config() const { return config_; }

  /// One agent (id 0) covering every service, with the tick's means.
  std::vector<sim::AgentReport> reports(std::uint64_t tick) const;

  /// End-to-end response mean for the tick: sum of the tick's service
  /// means plus seeded leak noise.
  double response_mean(std::uint64_t tick) const;

  /// Service \p service's mean for the tick.
  double service_mean(std::size_t service, std::uint64_t tick) const;

  /// The noise-free response mean (sum of the base means).
  double true_response_mean() const;

  /// Sequence workflow over the configured services (f(X) = Σ Xᵢ).
  wf::Workflow make_workflow() const;
  /// All services share one host resource (they live in one process).
  wf::ResourceSharing make_sharing() const;

 private:
  double u01(std::uint64_t stream, std::uint64_t a, std::uint64_t b) const;

  Config config_;
  std::vector<double> bases_;
};

}  // namespace kertbn::fleet
