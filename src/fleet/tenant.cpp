#include "fleet/tenant.hpp"

#include <utility>

#include "durable/journal.hpp"
#include "fault/fault_injector.hpp"

namespace kertbn::fleet {

Tenant::Tenant(Config config)
    : config_(std::move(config)), workload_(config_.workload) {
  build_pipeline(/*recover_now=*/0.0);
}

Tenant::~Tenant() {
  if (journal_ != nullptr && server_ != nullptr) {
    durable::ServerJournal::detach(*server_);
  }
}

void Tenant::build_pipeline(double recover_now) {
  wf::Workflow workflow = workload_.make_workflow();
  wf::ResourceSharing sharing = workload_.make_sharing();

  server_ = std::make_unique<sim::ManagementServer>(workflow.service_names(),
                                                    config_.schedule);

  core::ModelManager::Config mconfig;
  mconfig.schedule = config_.schedule;
  mconfig.incremental = true;
  mconfig.guard = true;
  mconfig.publish_snapshots = true;
  mconfig.governor = config_.governor;
  mconfig.cancel = config_.cancel;
  manager_ = std::make_unique<core::ModelManager>(
      std::move(workflow), std::move(sharing), mconfig);

  // Wire the incremental-statistics tap before any row can land, so the
  // replayed and live paths feed the manager identically.
  server_->set_row_observer(
      [manager = manager_.get()](std::span<const double> row) {
        manager->observe_row(row);
      });

  if (config_.quality) {
    quality::ModelQualityMonitor::Config qconfig;
    qconfig.clock = [this] { return sim_now_; };
    monitor_ =
        std::make_unique<quality::ModelQualityMonitor>(*manager_, qconfig);
    server_->add_row_observer(
        [monitor = monitor_.get()](std::span<const double> row) {
          monitor->observe_row(row);
        });
  } else {
    monitor_.reset();
  }

  server_->configure_admission(sim::IngestAdmission{
      nullptr, config_.max_pending, sim::IngestOverflowPolicy::kShedOldest});

  if (durable()) {
    // Recover before attaching the journal: replay must not re-journal.
    const durable::RecoveryManager recovery(config_.dir);
    last_recovery_ = recovery.recover(*server_, manager_.get(), recover_now);
    if (monitor_ != nullptr) monitor_->set_recovery(*last_recovery_);

    durable::JournalConfig jconfig;
    jconfig.dir = config_.dir;
    jconfig.fsync = config_.fsync;
    journal_ = std::make_unique<durable::ServerJournal>(std::move(jconfig));
    journal_->attach(*server_);

    if (store_ == nullptr) {
      store_ = std::make_unique<durable::CheckpointStore>(
          durable::CheckpointStore::Config{config_.dir});
    }
  }
}

void Tenant::ingest_tick(std::uint64_t tick) {
  sim_now_ = now(tick);
  std::vector<sim::AgentReport> reports = workload_.reports(tick);
  double response = workload_.response_mean(tick);

  // The shard has entered this tenant's InjectionKeyScope: active()
  // resolves the tenant's keyed plan (or the process-global one), so a
  // poisoned tenant's faults realize here while its neighbors — same
  // thread, different key — run clean.
  if (const fault::FaultInjector* inj = fault::active(); inj != nullptr) {
    if (inj->drop_report(/*agent=*/0, tick)) {
      server_->note_missed_interval();
      return;
    }
    for (auto& [service, mean] : reports[0].service_means) {
      if (const auto c = inj->corrupt_measurement(service, tick, mean)) {
        mean = *c;
      }
    }
    if (const auto c = inj->corrupt_measurement(config_.workload.services,
                                                tick, response)) {
      response = *c;
    }
  }
  server_->offer_interval(reports, response, sim_now_);

  if (durable() && config_.checkpoint_every > 0 &&
      (tick + 1) % config_.checkpoint_every == 0) {
    checkpoint(tick);
  }
}

bool Tenant::try_rebuild(std::uint64_t tick) {
  sim_now_ = now(tick);
  const auto rebuilt = manager_->maybe_reconstruct(sim_now_, server_->window());
  if (rebuilt.has_value()) {
    fresh_since_tick_ = static_cast<std::int64_t>(tick);
    return true;
  }
  return false;
}

bool Tenant::due(std::uint64_t tick) const {
  return manager_->next_due() <= now(tick) &&
         server_->window_rows() >= config_.schedule.k;
}

std::uint64_t Tenant::staleness_ticks(std::uint64_t tick) const {
  return static_cast<std::uint64_t>(static_cast<std::int64_t>(tick) -
                                    fresh_since_tick_);
}

durable::RecoveryReport Tenant::restart(std::uint64_t tick) {
  if (journal_ != nullptr) {
    durable::ServerJournal::detach(*server_);
    journal_.reset();  // Close the segment before the replayer scans.
  }
  monitor_.reset();
  manager_.reset();
  server_.reset();
  build_pipeline(now(tick));
  ++restarts_;
  return last_recovery_.value_or(durable::RecoveryReport{});
}

void Tenant::checkpoint(std::uint64_t tick) {
  if (!durable()) return;
  const durable::Checkpoint ckpt = durable::capture_checkpoint(
      *server_, *manager_, now(tick), journal_->last_seq());
  store_->write(ckpt);
  durable::prune_journal(config_.dir, ckpt.journal_seq);
}

}  // namespace kertbn::fleet
