#include "fleet/status.hpp"

#include <cstdio>

#include "obs/metrics.hpp"

namespace kertbn::fleet {

namespace {

void field_u64(std::string& out, const char* key, std::uint64_t v) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\":%llu,", key,
                static_cast<unsigned long long>(v));
  out += buf;
}

void field_f64(std::string& out, const char* key, double v) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.17g,", key, v);
  out += buf;
}

void field_str(std::string& out, const char* key, const std::string& v) {
  // Fleet strings are enum names — no escaping needed.
  out += '"';
  out += key;
  out += "\":\"";
  out += v;
  out += "\",";
}

void close_object(std::string& out) {
  if (out.back() == ',') out.back() = '}';
  else out += '}';
}

}  // namespace

std::string FleetStatus::to_json() const {
  std::string out = "{";
  field_u64(out, "ticks", ticks);
  field_u64(out, "tenants", tenants);
  field_u64(out, "shards", shards);
  field_u64(out, "healthy", healthy);
  field_u64(out, "probation", probation);
  field_u64(out, "quarantined", quarantined);
  field_u64(out, "health_none", health_none);
  field_u64(out, "health_fresh", health_fresh);
  field_u64(out, "health_stale", health_stale);
  field_u64(out, "health_fallback", health_fallback);
  field_u64(out, "health_degraded", health_degraded);
  field_u64(out, "quarantine_events", quarantine_events);
  field_u64(out, "readmissions", readmissions);
  field_u64(out, "crash_recoveries", crash_recoveries);
  field_u64(out, "rebuilds", rebuilds);
  field_u64(out, "scheduler_granted", scheduler_granted);
  field_u64(out, "scheduler_deferred", scheduler_deferred);
  field_u64(out, "governor_deferred", governor_deferred);
  field_u64(out, "aborted_rebuilds", aborted_rebuilds);
  field_f64(out, "staleness_p50_ticks", staleness_p50_ticks);
  field_f64(out, "staleness_p99_ticks", staleness_p99_ticks);
  field_f64(out, "staleness_max_ticks", staleness_max_ticks);
  out += "\"shards_detail\":[";
  for (const ShardStatus& s : shard_status) {
    out += '{';
    field_u64(out, "shard", s.shard);
    field_u64(out, "tenants", s.tenants);
    field_str(out, "governor_level", s.governor_level);
    field_u64(out, "rebuilds", s.rebuilds);
    field_u64(out, "governor_deferred", s.governor_deferred);
    field_u64(out, "aborted_rebuilds", s.aborted_rebuilds);
    field_u64(out, "shed_intervals", s.shed_intervals);
    field_u64(out, "restarts", s.restarts);
    close_object(out);
    out += ',';
  }
  if (out.back() == ',') out.back() = ']';
  else out += ']';
  out += '}';
  return out;
}

void publish_fleet_metrics(const FleetStatus& status) {
  if (!obs::enabled()) return;
  auto& reg = obs::MetricsRegistry::instance();
  const auto set = [&reg](const char* name, double v) {
    reg.gauge(name).set(v);
  };
  set("kert.fleet.ticks", static_cast<double>(status.ticks));
  set("kert.fleet.tenants", static_cast<double>(status.tenants));
  set("kert.fleet.shards", static_cast<double>(status.shards));
  set("kert.fleet.healthy", static_cast<double>(status.healthy));
  set("kert.fleet.probation", static_cast<double>(status.probation));
  set("kert.fleet.quarantined", static_cast<double>(status.quarantined));
  set("kert.fleet.quarantine_events",
      static_cast<double>(status.quarantine_events));
  set("kert.fleet.readmissions", static_cast<double>(status.readmissions));
  set("kert.fleet.crash_recoveries",
      static_cast<double>(status.crash_recoveries));
  set("kert.fleet.rebuilds", static_cast<double>(status.rebuilds));
  set("kert.fleet.scheduler_deferred",
      static_cast<double>(status.scheduler_deferred));
  set("kert.fleet.governor_deferred",
      static_cast<double>(status.governor_deferred));
  set("kert.fleet.aborted_rebuilds",
      static_cast<double>(status.aborted_rebuilds));
  set("kert.fleet.staleness_p50_ticks", status.staleness_p50_ticks);
  set("kert.fleet.staleness_p99_ticks", status.staleness_p99_ticks);
  set("kert.fleet.staleness_max_ticks", status.staleness_max_ticks);
}

}  // namespace kertbn::fleet
