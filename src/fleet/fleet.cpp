#include "fleet/fleet.hpp"

#include <algorithm>
#include <thread>

#include "durable/recovery.hpp"
#include "fault/file_damage.hpp"

namespace kertbn::fleet {

namespace {

std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Deterministic CPU burn standing in for a shard stall: the work itself
/// is wasted cycles, but its *presence* is what the bulkhead test
/// observes — only the stalled shard's wall time grows.
void stall_spin(double severity) {
  const double s = std::clamp(severity, 0.0, 4.0);
  const std::uint64_t iters = static_cast<std::uint64_t>(s * 400000.0);
  volatile std::uint64_t sink = 0;
  std::uint64_t acc = 0x243f6a8885a308d3ULL;
  for (std::uint64_t i = 0; i < iters; ++i) acc = mix(acc ^ i);
  sink = acc;
  (void)sink;
}

}  // namespace

const char* to_string(TenantCondition condition) {
  switch (condition) {
    case TenantCondition::kHealthy: return "healthy";
    case TenantCondition::kProbation: return "probation";
    case TenantCondition::kQuarantined: return "quarantined";
  }
  return "unknown";
}

ov::PressureGovernor::Config Fleet::default_governor_config() {
  ov::PressureGovernor::Config cfg;
  cfg.reconstruction_rate = 16.0;
  cfg.reconstruction_burst = 16.0;
  return cfg;
}

Tenant::Config Fleet::make_tenant_config(const Config& config,
                                         std::uint64_t id, std::string dir) {
  Tenant::Config tcfg;
  tcfg.id = id;
  if (config.faults != nullptr) {
    tcfg.injection_key = config.faults->tenant_key(id);
  } else {
    fault::FleetFaultPlan keyspace;
    keyspace.seed = config.seed;
    tcfg.injection_key = keyspace.tenant_key(id);
  }
  tcfg.schedule = config.schedule;
  // Workload seed depends on (fleet seed, tenant id) only — never on the
  // fault plan — so a faulted run and its fault-free twin drive every
  // tenant with identical inputs (the isolation proof's precondition).
  tcfg.workload.seed = mix(config.seed ^ mix(id));
  tcfg.workload.services = config.services;
  tcfg.dir = std::move(dir);
  tcfg.checkpoint_every = config.checkpoint_every;
  tcfg.fsync = config.fsync;
  tcfg.max_pending = config.max_pending;
  tcfg.quality = config.quality;
  return tcfg;
}

Fleet::Fleet(Config config)
    : config_(std::move(config)), scheduler_(config_.scheduler) {
  if (config_.shards == 0) config_.shards = 1;
  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    // Scale the reconstruction bucket to the shard's population: a
    // governor-deferred rebuild waits a full T_CON (the manager pushes
    // the deadline, LKG keeps serving), so a bucket smaller than a
    // whole-shard rebuild cohort would deterministically starve the
    // members past the token cut every cycle. At normal level the token
    // bucket must never ration; the bulkhead binds through the ladder
    // (reconstruction refused outright past throttled).
    const std::size_t members =
        config_.tenants / config_.shards +
        (s < config_.tenants % config_.shards ? 1 : 0);
    ov::PressureGovernor::Config gcfg = config_.governor;
    gcfg.reconstruction_rate =
        std::max(gcfg.reconstruction_rate, static_cast<double>(members));
    gcfg.reconstruction_burst =
        std::max(gcfg.reconstruction_burst, static_cast<double>(members));
    shards_.push_back(std::make_unique<Shard>(s, gcfg));
  }
  slots_.resize(config_.tenants);
  for (std::uint64_t id = 0; id < config_.tenants; ++id) {
    std::string dir;
    if (!config_.data_root.empty()) {
      dir = config_.data_root + "/tenant-" + std::to_string(id);
    }
    Tenant::Config tcfg = make_tenant_config(config_, id, std::move(dir));
    Shard& shard = *shards_[shard_of(id)];
    tcfg.governor = &shard.governor;
    tcfg.cancel = shard.cancel.token().flag();
    slots_[id].tenant = std::make_unique<Tenant>(std::move(tcfg));
    resync_strike_baselines(slots_[id]);
    shard.members.push_back(id);
  }
  if (config_.parallel && config_.shards > 1) {
    const std::size_t hw = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
    pool_ = std::make_unique<ThreadPool>(std::min(config_.shards, hw));
  }
}

Fleet::~Fleet() {
  if (config_.faults != nullptr) {
    for (const std::uint64_t t : installed_keys_) {
      fault::uninstall_keyed(config_.faults->tenant_key(t));
    }
  }
}

void Fleet::sync_injection_contexts(std::uint64_t tick) {
  const fault::FleetFaultPlan* plan = config_.faults;
  if (plan == nullptr || plan->poisons.empty()) return;

  std::vector<std::uint64_t> want;
  for (const fault::TenantPoison& p : plan->poisons) {
    if (p.window.contains(tick)) want.push_back(p.tenant);
  }
  std::sort(want.begin(), want.end());
  want.erase(std::unique(want.begin(), want.end()), want.end());

  for (const std::uint64_t t : want) {
    if (!std::binary_search(installed_keys_.begin(), installed_keys_.end(),
                            t)) {
      fault::install_keyed(
          plan->tenant_key(t),
          std::make_shared<fault::FaultInjector>(plan->tenant_plan(t)));
    }
  }
  for (const std::uint64_t t : installed_keys_) {
    if (!std::binary_search(want.begin(), want.end(), t)) {
      fault::uninstall_keyed(plan->tenant_key(t));
    }
  }
  installed_keys_ = std::move(want);
}

void Fleet::run_tick() {
  const std::uint64_t tick = tick_;

  // Serial section: keyed-registry mutation and global scheduling both
  // happen before any shard work starts.
  sync_injection_contexts(tick);

  std::vector<RebuildCandidate> candidates;
  for (const Slot& slot : slots_) {
    if (slot.ladder.condition == TenantCondition::kQuarantined) continue;
    const Tenant& t = *slot.tenant;
    if (!t.due(tick)) continue;
    candidates.push_back({t.id(), t.staleness_ticks(tick), t.health(),
                          slot.ladder.condition == TenantCondition::kProbation});
  }
  const std::vector<std::uint64_t> grants = scheduler_.select(candidates);

  // Bulkhead section: shards share no mutable state, so one pool task per
  // shard is bit-identical to the serial loop. parallel_for's join is the
  // inter-tick happens-before edge.
  if (pool_ != nullptr) {
    pool_->parallel_for(shards_.size(), [&](std::size_t s) {
      run_shard_tick(*shards_[s], tick, grants);
    });
  } else {
    for (const auto& shard : shards_) run_shard_tick(*shard, tick, grants);
  }
  ++tick_;
}

void Fleet::run_ticks(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) run_tick();
}

void Fleet::run_shard_tick(Shard& shard, std::uint64_t tick,
                           const std::vector<std::uint64_t>& grants) {
  const double now =
      static_cast<double>(tick + 1) * config_.schedule.t_data;

  double severity = 0.0;
  if (config_.faults != nullptr) {
    severity = config_.faults->stall_severity(shard.id, tick);
  }
  if (severity > 0.0) stall_spin(severity);

  ov::LoadSignals signals;
  for (const std::uint64_t id : shard.members) {
    signals.ingest_backlog += static_cast<double>(
        slots_[id].tenant->server().pending_intervals());
  }
  signals.cpu_pressure = severity;
  const ov::PressureLevel level = shard.governor.update(now, signals);
  if (level == ov::PressureLevel::kEmergency) {
    shard.cancel.request_cancel();
  } else {
    shard.cancel.reset();
  }

  for (const std::uint64_t id : shard.members) {
    const bool granted =
        std::binary_search(grants.begin(), grants.end(), id);
    process_tenant(shard, slots_[id], tick, granted);
  }
}

void Fleet::process_tenant(Shard& shard, Slot& slot, std::uint64_t tick,
                           bool granted) {
  Tenant& t = *slot.tenant;
  const fault::FleetFaultPlan* plan = config_.faults;

  if (plan != nullptr) {
    const std::size_t cut = plan->journal_truncation_at(t.id(), tick);
    if (cut > 0 && t.durable()) {
      const auto segments = durable::journal_segments(t.config().dir);
      if (!segments.empty()) fault::truncate_tail(segments.back(), cut);
    }
    if (plan->crash_at(t.id(), tick)) {
      const durable::RecoveryReport report = t.restart(tick);
      ++shard.crash_recoveries;
      ++shard.restarts;
      resync_strike_baselines(slot);
      if (report.replay.skipped_crc > 0 || report.replay.torn_tails > 0 ||
          report.malformed_payloads > 0) {
        // Recovery found damaged journal records: the window may be
        // missing intervals, so the rebuilt model is suspect.
        quarantine(slot);
      }
    }
  }

  if (slot.ladder.condition == TenantCondition::kQuarantined) {
    // Fully isolated: no ingest, no rebuild slot. The manager's LKG
    // snapshot keeps serving queries.
    ++slot.ladder.ticks_in_state;
    if (slot.ladder.ticks_in_state >= config_.ladder.quarantine_ticks) {
      slot.ladder.condition = TenantCondition::kProbation;
      slot.ladder.ticks_in_state = 0;
      slot.ladder.strikes = 0;
      resync_strike_baselines(slot);
    }
    return;
  }

  {
    fault::InjectionKeyScope scope(t.injection_key());
    t.ingest_tick(tick);
    if (granted && t.try_rebuild(tick)) ++shard.rebuilds;
  }

  // Strike = this tick surfaced new quarantined measurement values or a
  // new failed (guarded) reconstruction.
  const std::size_t quarantined = t.server().quarantined_values();
  const std::size_t failed = t.manager().failed_reconstructions();
  const bool strike = quarantined > slot.ladder.base_quarantined ||
                      failed > slot.ladder.base_failed;
  slot.ladder.base_quarantined = quarantined;
  slot.ladder.base_failed = failed;
  if (strike) {
    ++slot.ladder.strikes;
  } else {
    slot.ladder.strikes = 0;
  }

  if (slot.ladder.condition == TenantCondition::kProbation) {
    if (strike) {
      quarantine(slot);
      return;
    }
    ++slot.ladder.ticks_in_state;
    if (slot.ladder.ticks_in_state >= config_.ladder.probation_ticks) {
      slot.ladder.condition = TenantCondition::kHealthy;
      slot.ladder.ticks_in_state = 0;
      ++slot.ladder.readmissions;
    }
  } else if (slot.ladder.strikes >= config_.ladder.strike_threshold) {
    quarantine(slot);
  }
}

void Fleet::quarantine(Slot& slot) {
  slot.ladder.condition = TenantCondition::kQuarantined;
  slot.ladder.ticks_in_state = 0;
  slot.ladder.strikes = 0;
  ++slot.ladder.quarantine_events;
}

void Fleet::resync_strike_baselines(Slot& slot) {
  slot.ladder.base_quarantined = slot.tenant->server().quarantined_values();
  slot.ladder.base_failed = slot.tenant->manager().failed_reconstructions();
}

FleetStatus Fleet::status() const {
  FleetStatus out;
  out.ticks = tick_;
  out.tenants = slots_.size();
  out.shards = shards_.size();
  out.scheduler_granted = scheduler_.granted();
  out.scheduler_deferred = scheduler_.deferred();

  const std::uint64_t last_tick = tick_ == 0 ? 0 : tick_ - 1;
  std::vector<double> staleness;
  staleness.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    switch (slot.ladder.condition) {
      case TenantCondition::kHealthy: ++out.healthy; break;
      case TenantCondition::kProbation: ++out.probation; break;
      case TenantCondition::kQuarantined: ++out.quarantined; break;
    }
    switch (slot.tenant->health()) {
      case core::ModelHealth::kNone: ++out.health_none; break;
      case core::ModelHealth::kFresh: ++out.health_fresh; break;
      case core::ModelHealth::kStale: ++out.health_stale; break;
      case core::ModelHealth::kFallback: ++out.health_fallback; break;
      case core::ModelHealth::kDegraded: ++out.health_degraded; break;
    }
    out.quarantine_events += slot.ladder.quarantine_events;
    out.readmissions += slot.ladder.readmissions;
    out.governor_deferred +=
        slot.tenant->manager().deferred_reconstructions();
    out.aborted_rebuilds += slot.tenant->manager().aborted_reconstructions();
    if (tick_ > 0) {
      staleness.push_back(
          static_cast<double>(slot.tenant->staleness_ticks(last_tick)));
    }
  }
  if (!staleness.empty()) {
    std::sort(staleness.begin(), staleness.end());
    const std::size_t n = staleness.size();
    out.staleness_p50_ticks = staleness[(n - 1) / 2];
    out.staleness_p99_ticks = staleness[std::min(n - 1, (n * 99) / 100)];
    out.staleness_max_ticks = staleness.back();
  }

  for (const auto& shard : shards_) {
    ShardStatus ss;
    ss.shard = shard->id;
    ss.tenants = shard->members.size();
    ss.governor_level = ov::to_string(shard->governor.level());
    ss.rebuilds = shard->rebuilds;
    ss.restarts = shard->restarts;
    for (const std::uint64_t id : shard->members) {
      const Tenant& t = *slots_[id].tenant;
      ss.governor_deferred += t.manager().deferred_reconstructions();
      ss.aborted_rebuilds += t.manager().aborted_reconstructions();
      ss.shed_intervals += t.server().shed_intervals();
    }
    out.crash_recoveries += shard->crash_recoveries;
    out.rebuilds += shard->rebuilds;
    out.shard_status.push_back(std::move(ss));
  }
  return out;
}

}  // namespace kertbn::fleet
