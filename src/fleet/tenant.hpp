#pragma once
/// \file tenant.hpp
/// One tenant of the fleet: the paper's whole single-application pipeline
/// — management server (sliding window), model manager (periodic KERT-BN
/// reconstruction, snapshot slot, health ladder), write-ahead journal +
/// checkpoint store, and an optional model-quality monitor — packaged as
/// one shard-movable object with a private durable directory.
///
/// A Tenant owns no thread and no clock: the shard drives it tick by tick
/// (one tick = one T_DATA interval) and every mutation is a deterministic
/// function of (workload seed, tick, installed fault plan), which is what
/// makes per-tenant recovery bit-identity provable. Construction over a
/// non-empty durable directory recovers from it (checkpoint + journal
/// replay — a no-op on a fresh directory); restart() simulates a tenant
/// process crash by discarding all in-memory state and recovering in
/// place.

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "durable/checkpoint.hpp"
#include "durable/recovery.hpp"
#include "fleet/workload.hpp"
#include "kert/model_manager.hpp"
#include "obs/quality/monitor.hpp"
#include "overload/governor.hpp"
#include "sosim/monitoring.hpp"

namespace kertbn::fleet {

/// See file comment.
class Tenant {
 public:
  struct Config {
    std::uint64_t id = 0;
    /// Keyed fault-injection context this tenant runs under (see
    /// fault/fault_injector.hpp); the shard enters the scope, the tenant
    /// just reads fault::active() inside it.
    std::uint64_t injection_key = 0;
    sim::ModelSchedule schedule{};
    TenantWorkload::Config workload{};
    /// Durable directory (journal segments + checkpoints). Empty =
    /// ephemeral: no journal, no checkpoints, a crash loses the window.
    std::string dir;
    /// Checkpoint every this many ticks (0 = never). Each checkpoint
    /// prunes journal segments it covers.
    std::size_t checkpoint_every = 0;
    durable::FsyncPolicy fsync = durable::FsyncPolicy::kNone;
    /// Shard bulkhead hooks (non-owning): the governor defers rebuilds
    /// under shard pressure, the cancel flag aborts in-flight rebuilds at
    /// emergency level.
    ov::PressureGovernor* governor = nullptr;
    const std::atomic<bool>* cancel = nullptr;
    /// Bounded ingest admission queue (bulkhead memory bound).
    std::size_t max_pending = 4;
    /// Attach a ModelQualityMonitor (predict-vs-measure scoring + drift).
    bool quality = false;
  };

  explicit Tenant(Config config);
  ~Tenant();

  Tenant(const Tenant&) = delete;
  Tenant& operator=(const Tenant&) = delete;

  const Config& config() const { return config_; }
  std::uint64_t id() const { return config_.id; }
  std::uint64_t injection_key() const { return config_.injection_key; }

  /// Simulated time at the end of tick \p tick.
  double now(std::uint64_t tick) const {
    return static_cast<double>(tick + 1) * config_.schedule.t_data;
  }

  /// Ingests tick \p tick's workload interval. The caller must already be
  /// inside this tenant's InjectionKeyScope: any applicable fault plan's
  /// report-loss and measurement-corruption draws are realized here (a
  /// poisoned stream shows up as quarantined values in the server's
  /// accounting — the ladder's strike signal). Also writes the periodic
  /// checkpoint when one is due.
  void ingest_tick(std::uint64_t tick);

  /// Scheduler-granted reconstruction attempt at \p tick. Runs the
  /// manager's guarded maybe_reconstruct (governor deferral, cancellation,
  /// LKG fallback all apply). Returns true when a rebuild completed.
  bool try_rebuild(std::uint64_t tick);

  /// True when the reconstruction deadline has passed and the window has
  /// data to rebuild from.
  bool due(std::uint64_t tick) const;

  /// Ticks since the last successful reconstruction (or since creation /
  /// recovery when none succeeded yet) — the fleet's staleness metric.
  std::uint64_t staleness_ticks(std::uint64_t tick) const;

  /// Tenant process crash + recovery in place: all in-memory state is
  /// discarded and rebuilt from the durable directory (ephemeral tenants
  /// restart blank). Returns what recovery found.
  durable::RecoveryReport restart(std::uint64_t tick);

  /// Forces a checkpoint now (the periodic path calls this on cadence).
  void checkpoint(std::uint64_t tick);

  core::ModelHealth health() const { return manager_->health(); }
  const sim::ManagementServer& server() const { return *server_; }
  const core::ModelManager& manager() const { return *manager_; }
  /// Quality monitor, when configured (nullptr otherwise).
  const quality::ModelQualityMonitor* quality() const {
    return monitor_.get();
  }
  /// Most recent recovery report (from construction or restart), if any.
  const std::optional<durable::RecoveryReport>& last_recovery() const {
    return last_recovery_;
  }
  std::size_t restarts() const { return restarts_; }
  bool durable() const { return !config_.dir.empty(); }

  /// Reference state for bit-identity assertions.
  sim::ServerState server_state() const { return server_->export_state(); }
  std::string model_text() const { return manager_->export_model_text(); }

 private:
  /// (Re)creates server, manager, monitor, and journal; recovers from the
  /// durable directory first when one is configured.
  void build_pipeline(double recover_now);

  Config config_;
  TenantWorkload workload_;
  std::unique_ptr<sim::ManagementServer> server_;
  std::unique_ptr<core::ModelManager> manager_;
  std::unique_ptr<quality::ModelQualityMonitor> monitor_;
  std::unique_ptr<durable::ServerJournal> journal_;
  std::unique_ptr<durable::CheckpointStore> store_;
  std::optional<durable::RecoveryReport> last_recovery_;
  std::size_t restarts_ = 0;
  /// Tick of the last successful rebuild, or the tick the pipeline was
  /// (re)created at minus one when none succeeded yet.
  std::int64_t fresh_since_tick_ = -1;
  double sim_now_ = 0.0;  ///< Clock source for the quality monitor.
};

}  // namespace kertbn::fleet
