#pragma once
/// \file scheduler.hpp
/// Fleet-level reconstruction scheduling: which due tenants get one of
/// this tick's rebuild slots.
///
/// Rebuilds are the fleet's dominant CPU cost, so they draw from a global
/// per-tick budget instead of every tenant rebuilding the moment its
/// T_CON deadline passes. The scheduler is a pure priority selection —
/// stalest first, with a boost for tenants whose model health is degraded
/// (kFallback / kDegraded / kNone need a successful build to climb out)
/// and a smaller one for probation tenants (a fresh model is how they
/// prove themselves) — with tenant id as the deterministic tie-break.
/// Tenants that lose a slot are simply not asked to rebuild this tick:
/// their next_due stays in the past, so they remain due (and their
/// priority keeps rising) until a slot frees up — natural deferral, no
/// extra state. The scheduler counts those deferrals per tick.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "kert/model_manager.hpp"

namespace kertbn::fleet {

/// One rebuild candidate (a due, non-quarantined tenant).
struct RebuildCandidate {
  std::uint64_t tenant = 0;
  std::uint64_t staleness_ticks = 0;
  core::ModelHealth health = core::ModelHealth::kNone;
  bool probation = false;
};

/// See file comment.
class ReconstructionScheduler {
 public:
  struct Config {
    /// Global rebuild slots per tick (the fleet's CPU budget).
    std::size_t max_rebuilds_per_tick = 8;
    /// Staleness-tick-equivalent boost for unhealthy models.
    double unhealthy_boost = 1000.0;
    /// Boost for probation tenants proving themselves.
    double probation_boost = 100.0;
  };

  ReconstructionScheduler() = default;
  explicit ReconstructionScheduler(Config config) : config_(config) {}

  const Config& config() const { return config_; }

  /// Selects up to the budget from \p candidates, highest priority first.
  /// Returns the granted tenant ids (sorted ascending, for deterministic
  /// lookup); the rest are counted as deferred.
  std::vector<std::uint64_t> select(
      const std::vector<RebuildCandidate>& candidates);

  double priority(const RebuildCandidate& candidate) const;

  /// Due candidates that lost a slot, cumulative across select() calls.
  std::uint64_t deferred() const { return deferred_; }
  /// Rebuild slots granted, cumulative.
  std::uint64_t granted() const { return granted_; }

 private:
  Config config_;
  std::uint64_t deferred_ = 0;
  std::uint64_t granted_ = 0;
};

}  // namespace kertbn::fleet
