#include "durable/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/contract.hpp"
#include "durable/crc32c.hpp"
#include "obs/span.hpp"

namespace kertbn::durable {
namespace {

namespace fs = std::filesystem;

constexpr const char* kMagic = "kertbn-checkpoint";
constexpr int kVersion = 1;
/// A corrupt length field must not turn into a giant allocation.
constexpr std::size_t kMaxModelBytes = 1u << 26;
constexpr std::size_t kMaxWindowValues = 10'000'000;

struct CheckpointMetrics {
  obs::Counter& written;
  obs::Counter& rejected;
  obs::Counter& bytes;

  static CheckpointMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static CheckpointMetrics m{
        reg.counter("kert.durable.checkpoints_written"),
        reg.counter("kert.durable.checkpoints_rejected"),
        reg.counter("kert.durable.checkpoint_bytes")};
    return m;
  }
};

std::string checkpoint_name(std::uint64_t journal_seq) {
  std::ostringstream out;
  out << "ckpt-" << std::hex;
  out.width(16);
  out.fill('0');
  out << journal_seq << ".ck";
  return out.str();
}

/// The CRC footer covers every byte of the body (through "end\n").
std::string footer_for(const std::string& body) {
  std::ostringstream out;
  out << "crc " << std::hex;
  out.width(8);
  out.fill('0');
  out << mask_crc(crc32c(body)) << '\n';
  return out.str();
}

std::string serialize(const Checkpoint& ckpt) {
  std::ostringstream out;
  out << std::setprecision(17);
  out << kMagic << ' ' << kVersion << '\n';
  out << "seq " << ckpt.journal_seq << '\n';
  out << "now " << ckpt.sim_now << '\n';
  const sim::ServerState& s = ckpt.server;
  out << "server " << s.rows << ' ' << s.cols << '\n';
  for (std::size_t r = 0; r < s.rows; ++r) {
    out << "row";
    for (std::size_t c = 0; c < s.cols; ++c) {
      out << ' ' << s.window[r * s.cols + c];
    }
    out << '\n';
  }
  out << "seen " << s.last_seen.size();
  for (const auto& v : s.last_seen) {
    if (v.has_value()) {
      out << ' ' << *v;
    } else {
      out << " -";
    }
  }
  out << '\n';
  out << "counters " << s.total_points << ' ' << s.dropped_intervals << ' '
      << s.quarantined_values << ' ' << s.duplicate_values << ' '
      << s.consecutive_missed_intervals << '\n';
  out << "manager " << ckpt.manager.next_due << ' ' << ckpt.manager.version
      << '\n';
  // The serialized model is framed by byte count — it is multi-line text.
  out << "model " << ckpt.manager.model_text.size() << '\n';
  out << ckpt.manager.model_text;
  out << "end\n";
  return out.str();
}

/// Fallible parser mirroring serialize(). Any mismatch → nullopt.
std::optional<Checkpoint> parse(const std::string& text, std::string* error) {
  const auto fail = [&](const char* what) -> std::optional<Checkpoint> {
    if (error != nullptr) *error = what;
    return std::nullopt;
  };

  std::istringstream in(text);
  std::string keyword;
  int version = 0;
  if (!(in >> keyword >> version) || keyword != kMagic ||
      version != kVersion) {
    return fail("bad checkpoint header");
  }

  Checkpoint ckpt;
  if (!(in >> keyword >> ckpt.journal_seq) || keyword != "seq") {
    return fail("bad seq line");
  }
  if (!(in >> keyword >> ckpt.sim_now) || keyword != "now") {
    return fail("bad now line");
  }

  sim::ServerState& s = ckpt.server;
  if (!(in >> keyword >> s.rows >> s.cols) || keyword != "server") {
    return fail("bad server line");
  }
  if (s.cols == 0 || s.rows > kMaxWindowValues ||
      s.cols > kMaxWindowValues || s.rows * s.cols > kMaxWindowValues) {
    return fail("window shape exceeds sanity cap");
  }
  s.window.resize(s.rows * s.cols);
  for (std::size_t r = 0; r < s.rows; ++r) {
    if (!(in >> keyword) || keyword != "row") return fail("bad row line");
    for (std::size_t c = 0; c < s.cols; ++c) {
      if (!(in >> s.window[r * s.cols + c])) return fail("bad row value");
    }
  }

  std::size_t n_seen = 0;
  if (!(in >> keyword >> n_seen) || keyword != "seen" ||
      n_seen > kMaxWindowValues) {
    return fail("bad seen line");
  }
  s.last_seen.resize(n_seen);
  for (std::size_t i = 0; i < n_seen; ++i) {
    std::string token;
    if (!(in >> token)) return fail("bad seen value");
    if (token == "-") {
      s.last_seen[i] = std::nullopt;
    } else {
      std::istringstream num(token);
      double v = 0.0;
      if (!(num >> v)) return fail("bad seen value");
      s.last_seen[i] = v;
    }
  }

  if (!(in >> keyword >> s.total_points >> s.dropped_intervals >>
        s.quarantined_values >> s.duplicate_values >>
        s.consecutive_missed_intervals) ||
      keyword != "counters") {
    return fail("bad counters line");
  }
  if (!(in >> keyword >> ckpt.manager.next_due >> ckpt.manager.version) ||
      keyword != "manager") {
    return fail("bad manager line");
  }

  std::size_t model_bytes = 0;
  if (!(in >> keyword >> model_bytes) || keyword != "model" ||
      model_bytes > kMaxModelBytes) {
    return fail("bad model frame");
  }
  in.get();  // Consume the newline ending the "model <n>" line.
  ckpt.manager.model_text.resize(model_bytes);
  if (model_bytes > 0 &&
      !in.read(ckpt.manager.model_text.data(),
               static_cast<std::streamsize>(model_bytes))) {
    return fail("model text cut short");
  }
  if (!(in >> keyword) || keyword != "end") return fail("missing end");
  return ckpt;
}

}  // namespace

std::optional<Checkpoint> load_checkpoint_file(const std::string& path,
                                               std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open checkpoint file";
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string data = buf.str();

  // Split the CRC footer off the body: the last line is "crc <8 hex>".
  const std::size_t footer_at = data.rfind("crc ");
  if (footer_at == std::string::npos ||
      (footer_at != 0 && data[footer_at - 1] != '\n')) {
    if (error != nullptr) *error = "missing crc footer";
    return std::nullopt;
  }
  std::uint32_t stored = 0;
  {
    std::istringstream footer(data.substr(footer_at + 4));
    if (!(footer >> std::hex >> stored)) {
      if (error != nullptr) *error = "unparsable crc footer";
      return std::nullopt;
    }
  }
  const std::string body = data.substr(0, footer_at);
  if (mask_crc(crc32c(body)) != stored) {
    if (error != nullptr) *error = "checkpoint crc mismatch";
    return std::nullopt;
  }
  return parse(body, error);
}

CheckpointStore::CheckpointStore(Config config) : config_(std::move(config)) {
  KERTBN_EXPECTS(!config_.dir.empty());
  KERTBN_EXPECTS(config_.keep >= 1);
  std::error_code ec;
  fs::create_directories(config_.dir, ec);
}

std::vector<std::string> CheckpointStore::files() const {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(config_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("ckpt-", 0) == 0 && name.size() > 8 &&
        name.substr(name.size() - 3) == ".ck") {
      out.push_back(entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void CheckpointStore::write(const Checkpoint& ckpt) {
  KERTBN_SPAN_VAR(span, "durable.checkpoint");
  const std::string body = serialize(ckpt);
  const std::string payload = body + footer_for(body);

  const fs::path final_path =
      fs::path(config_.dir) / checkpoint_name(ckpt.journal_seq);
  const fs::path tmp_path = final_path.string() + ".tmp";

  // Write-to-temp + fsync + rename + directory fsync: a crash at any point
  // leaves either the old set of checkpoints or the complete new file —
  // never a half-written file under the final name.
  {
    const int fd = ::open(tmp_path.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC, 0644);
    KERTBN_ASSERT(fd >= 0 && "cannot open checkpoint temp file");
    std::size_t written = 0;
    while (written < payload.size()) {
      const ssize_t n =
          ::write(fd, payload.data() + written, payload.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        KERTBN_ASSERT(false && "checkpoint write failed");
      }
      written += static_cast<std::size_t>(n);
    }
    ::fsync(fd);
    ::close(fd);
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  KERTBN_ASSERT(!ec && "checkpoint rename failed");
  {
    const int dfd = ::open(config_.dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
      ::fsync(dfd);
      ::close(dfd);
    }
  }

  // Retire the oldest files beyond the retention count — but never the
  // newest *valid* checkpoint. Names sort by journal seq, and a recovery
  // that replayed from an old checkpoint can legitimately write a lower
  // seq than a damaged file already on disk; pruning by name alone would
  // then delete the only loadable checkpoint and leave just the torn one
  // (torn-newest + keep-1). The file this call just wrote is valid by
  // construction, so only files sorting after it ever need parsing here.
  std::vector<std::string> all = files();
  std::string newest_valid;
  for (auto it = all.rbegin(); it != all.rend(); ++it) {
    if (*it == final_path.string() || load_checkpoint_file(*it, nullptr)) {
      newest_valid = *it;
      break;
    }
  }
  std::size_t retained = all.size();
  for (const std::string& path : all) {
    if (retained <= config_.keep) break;
    if (path == newest_valid) continue;
    fs::remove(path, ec);
    --retained;
  }

  span.tag("journal_seq", ckpt.journal_seq);
  span.tag("bytes", static_cast<std::uint64_t>(payload.size()));
  if (obs::enabled()) {
    CheckpointMetrics& m = CheckpointMetrics::get();
    m.written.add(1);
    m.bytes.add(payload.size());
  }
}

std::optional<Checkpoint> CheckpointStore::load_newest(
    std::string* error) const {
  std::vector<std::string> all = files();
  std::string first_error;
  // Newest first; a damaged file falls through to its predecessor.
  for (auto it = all.rbegin(); it != all.rend(); ++it) {
    std::string file_error;
    if (auto ckpt = load_checkpoint_file(*it, &file_error)) {
      if (error != nullptr) *error = "";
      return ckpt;
    }
    if (first_error.empty()) first_error = *it + ": " + file_error;
    if (obs::enabled()) CheckpointMetrics::get().rejected.add(1);
  }
  if (error != nullptr) {
    *error = first_error.empty() ? "no checkpoint files" : first_error;
  }
  return std::nullopt;
}

Checkpoint capture_checkpoint(const sim::ManagementServer& server,
                              const core::ModelManager& manager,
                              double sim_now, std::uint64_t journal_seq) {
  Checkpoint ckpt;
  ckpt.journal_seq = journal_seq;
  ckpt.sim_now = sim_now;
  ckpt.server = server.export_state();
  ckpt.manager = manager.export_checkpoint();
  return ckpt;
}

}  // namespace kertbn::durable
