#include "durable/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/contract.hpp"
#include "durable/crc32c.hpp"
#include "fault/fault_injector.hpp"
#include "obs/span.hpp"

namespace kertbn::durable {
namespace {

namespace fs = std::filesystem;

/// Telemetry for the durability layer's write and replay paths.
struct DurableMetrics {
  obs::Counter& appends;
  obs::Counter& fsyncs;
  obs::Counter& rotations;
  obs::Counter& dropped_writes;
  obs::Counter& replayed_records;
  obs::Counter& skipped_crc;
  obs::Counter& torn_tails;
  obs::Counter& bad_segments;

  static DurableMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static DurableMetrics m{reg.counter("kert.durable.appends"),
                            reg.counter("kert.durable.fsyncs"),
                            reg.counter("kert.durable.rotations"),
                            reg.counter("kert.durable.dropped_writes"),
                            reg.counter("kert.durable.replayed_records"),
                            reg.counter("kert.durable.skipped_crc_records"),
                            reg.counter("kert.durable.torn_tails"),
                            reg.counter("kert.durable.bad_segments")};
    return m;
  }
};

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(char((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(char((v >> (8 * i)) & 0xff));
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

std::string segment_name(std::uint64_t first_seq) {
  std::ostringstream out;
  out << "journal-" << std::hex;
  out.width(16);
  out.fill('0');
  out << first_seq << ".seg";
  return out.str();
}

/// CRC input is seq ‖ payload so a record copied to the wrong position
/// (or a stale sector resurfacing) fails verification.
std::uint32_t record_crc(std::uint64_t seq, std::string_view payload) {
  std::string head;
  head.reserve(8);
  put_u64(head, seq);
  return mask_crc(crc32c(payload.data(), payload.size(),
                         crc32c(head.data(), head.size())));
}

/// fsyncs the directory itself so renames/creations are durable too.
void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

/// Parses one segment file, delivering intact records past after_seq.
/// Damage never throws out of here: a bad header voids the segment, a bad
/// frame voids the tail, a bad CRC voids just that record.
void replay_segment(
    const std::string& path, std::uint64_t after_seq, ReplayStats& stats,
    const std::function<void(std::uint64_t, std::string_view)>& fn) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ++stats.bad_segments;
    return;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string data = buf.str();

  if (data.size() < kSegmentHeaderBytes ||
      std::memcmp(data.data(), kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
    ++stats.bad_segments;
    return;
  }
  ++stats.segments;

  std::size_t pos = kSegmentHeaderBytes;
  while (pos < data.size()) {
    if (data.size() - pos < kRecordHeaderBytes) {
      ++stats.torn_tails;
      return;
    }
    const std::uint32_t len = get_u32(data.data() + pos);
    const std::uint32_t stored_crc = get_u32(data.data() + pos + 4);
    const std::uint64_t seq = get_u64(data.data() + pos + 8);
    if (len > kMaxRecordBytes ||
        data.size() - pos - kRecordHeaderBytes < len) {
      // Either the length prefix itself is corrupt or the payload was cut
      // short by a crash; both look like a tail we cannot walk past.
      ++stats.torn_tails;
      return;
    }
    const std::string_view payload(data.data() + pos + kRecordHeaderBytes,
                                   len);
    pos += kRecordHeaderBytes + len;
    if (record_crc(seq, payload) != stored_crc) {
      ++stats.skipped_crc;
      continue;
    }
    stats.last_seq = std::max(stats.last_seq, seq);
    if (seq <= after_seq) continue;
    ++stats.records;
    if (fn) fn(seq, payload);
  }
}

}  // namespace

std::vector<std::string> journal_segments(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("journal-", 0) == 0 &&
        name.size() > 12 && name.substr(name.size() - 4) == ".seg") {
      out.push_back(entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

JournalWriter::JournalWriter(JournalConfig config)
    : config_(std::move(config)) {
  KERTBN_EXPECTS(!config_.dir.empty());
  std::error_code ec;
  fs::create_directories(config_.dir, ec);
  // Continue numbering after the last durable record — even if the tail of
  // the previous process's segment is torn, intact records keep their seqs.
  ReplayStats scan;
  for (const auto& path : journal_segments(config_.dir)) {
    replay_segment(path, ~std::uint64_t{0}, scan, nullptr);
  }
  next_seq_ = scan.last_seq + 1;
}

JournalWriter::~JournalWriter() {
  close_segment(config_.fsync != FsyncPolicy::kNone);
}

std::size_t JournalWriter::write_raw(const char* data, std::size_t size) {
  std::size_t keep = size;
  if (const fault::FaultInjector* inj = fault::active()) {
    if (const auto cutoff = inj->journal_write_cutoff()) {
      if (bytes_appended_ >= *cutoff) {
        keep = 0;
      } else {
        keep = std::min<std::uint64_t>(size, *cutoff - bytes_appended_);
      }
      if (keep < size && obs::enabled()) {
        DurableMetrics::get().dropped_writes.add(1);
      }
    }
  }
  bytes_appended_ += size;
  std::size_t written = 0;
  while (written < keep) {
    const ssize_t n = ::write(fd_, data + written, keep - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      KERTBN_ASSERT(false && "journal write failed");
    }
    written += static_cast<std::size_t>(n);
  }
  return keep;
}

void JournalWriter::open_segment() {
  const std::string path =
      (fs::path(config_.dir) / segment_name(next_seq_)).string();
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  KERTBN_ASSERT(fd_ >= 0 && "cannot open journal segment");
  segment_bytes_ = 0;
  ++segments_opened_;
  std::string header(kSegmentMagic, sizeof(kSegmentMagic));
  put_u64(header, next_seq_);
  segment_bytes_ += write_raw(header.data(), header.size());
  fsync_dir(config_.dir);
}

void JournalWriter::close_segment(bool fsync_segment) {
  if (fd_ < 0) return;
  // A simulated crash (active write cutoff) never reaches fsync: the dying
  // process loses whatever the kernel had not flushed.
  bool crashed = false;
  if (const fault::FaultInjector* inj = fault::active()) {
    const auto cutoff = inj->journal_write_cutoff();
    crashed = cutoff.has_value() && bytes_appended_ >= *cutoff;
  }
  if (fsync_segment && !crashed) {
    ::fsync(fd_);
    if (obs::enabled()) DurableMetrics::get().fsyncs.add(1);
  }
  ::close(fd_);
  fd_ = -1;
}

std::uint64_t JournalWriter::append(std::string_view payload) {
  KERTBN_EXPECTS(payload.size() <= kMaxRecordBytes);
  if (fd_ < 0) open_segment();
  const std::uint64_t seq = next_seq_++;

  frame_.clear();
  frame_.reserve(kRecordHeaderBytes + payload.size());
  put_u32(frame_, static_cast<std::uint32_t>(payload.size()));
  put_u32(frame_, record_crc(seq, payload));
  put_u64(frame_, seq);
  frame_.append(payload);
  segment_bytes_ += write_raw(frame_.data(), frame_.size());

  if (config_.fsync == FsyncPolicy::kPerRecord) sync();
  if (obs::enabled()) DurableMetrics::get().appends.add(1);

  if (segment_bytes_ >= config_.max_segment_bytes) {
    close_segment(config_.fsync != FsyncPolicy::kNone);
    if (obs::enabled()) DurableMetrics::get().rotations.add(1);
    // The next append opens the successor segment named by its first seq.
  }
  return seq;
}

void JournalWriter::sync() {
  if (fd_ < 0) return;
  bool crashed = false;
  if (const fault::FaultInjector* inj = fault::active()) {
    const auto cutoff = inj->journal_write_cutoff();
    crashed = cutoff.has_value() && bytes_appended_ >= *cutoff;
  }
  if (config_.fsync != FsyncPolicy::kNone && !crashed) {
    ::fsync(fd_);
    if (obs::enabled()) DurableMetrics::get().fsyncs.add(1);
  }
}

ReplayStats replay_journal(
    const std::string& dir, std::uint64_t after_seq,
    const std::function<void(std::uint64_t, std::string_view)>& fn) {
  KERTBN_SPAN_VAR(span, "durable.replay");
  ReplayStats stats;
  for (const auto& path : journal_segments(dir)) {
    replay_segment(path, after_seq, stats, fn);
  }
  span.tag("records", stats.records);
  span.tag("skipped_crc", stats.skipped_crc);
  span.tag("torn_tails", stats.torn_tails);
  span.tag("segments", stats.segments);
  if (obs::enabled()) {
    DurableMetrics& m = DurableMetrics::get();
    m.replayed_records.add(stats.records);
    m.skipped_crc.add(stats.skipped_crc);
    m.torn_tails.add(stats.torn_tails);
    m.bad_segments.add(stats.bad_segments);
  }
  return stats;
}

std::size_t prune_journal(const std::string& dir, std::uint64_t upto_seq) {
  const std::vector<std::string> segments = journal_segments(dir);
  if (segments.size() < 2) return 0;
  std::size_t removed = 0;
  // A segment is removable when the next segment starts at or below
  // upto_seq + 1: every record it holds is then <= upto_seq. The newest
  // segment always stays.
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    std::ifstream next(segments[i + 1], std::ios::binary);
    char header[kSegmentHeaderBytes] = {};
    if (!next.read(header, sizeof(header)) ||
        std::memcmp(header, kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
      break;
    }
    const std::uint64_t next_first = get_u64(header + 8);
    if (next_first > upto_seq + 1) break;
    std::error_code ec;
    if (fs::remove(segments[i], ec) && !ec) ++removed;
  }
  if (removed > 0) fsync_dir(dir);
  return removed;
}

}  // namespace kertbn::durable
