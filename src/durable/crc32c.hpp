#pragma once
/// \file crc32c.hpp
/// CRC32C (Castagnoli) checksums for the durability layer's on-disk
/// framing. The Castagnoli polynomial is the storage-industry standard
/// (iSCSI, ext4, LevelDB logs) because its error-detection properties for
/// short records beat CRC32; we use a table-driven software implementation
/// — journal records are small and the checksum is a vanishing fraction of
/// the fsync-dominated write cost.

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace kertbn::durable {

/// CRC32C of \p data, continuing from \p seed (pass the previous return
/// value to checksum a record in pieces; the default starts fresh).
std::uint32_t crc32c(const void* data, std::size_t size,
                     std::uint32_t seed = 0);

inline std::uint32_t crc32c(std::string_view data, std::uint32_t seed = 0) {
  return crc32c(data.data(), data.size(), seed);
}

/// Masked CRC in the spirit of LevelDB: storing a CRC of data that itself
/// contains CRCs makes accidental collisions likelier, so stored checksums
/// are rotated and offset. Verify by comparing against mask(crc32c(...)).
inline std::uint32_t mask_crc(std::uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

}  // namespace kertbn::durable
