#pragma once
/// \file checkpoint.hpp
/// Periodic checkpoints for the management server's durable state.
///
/// A checkpoint bounds journal replay: it captures the compacted window
/// (plus carry-forward memory and accounting), the reconstruction
/// schedule, and the serialized last-known-good model, all stamped with
/// the last journal sequence number it covers. Recovery loads the newest
/// valid checkpoint and replays only the journal records past it.
///
/// Files are written crash-safely — serialize to a temp file, fsync,
/// rename into place, fsync the directory — and carry a masked CRC32C
/// footer so a torn or bit-flipped checkpoint is detected and skipped
/// (newest-valid-wins), never trusted.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "kert/model_manager.hpp"
#include "sosim/monitoring.hpp"

namespace kertbn::durable {

/// Everything recovery needs to resume the monitoring/model pipeline.
struct Checkpoint {
  /// Last journal sequence number whose effects this checkpoint includes.
  std::uint64_t journal_seq = 0;
  /// Simulated time the checkpoint was captured at.
  double sim_now = 0.0;
  sim::ServerState server;
  core::ManagerCheckpoint manager;
};

/// Atomic write + newest-valid-wins load of checkpoint files in a
/// directory (they share the journal's directory; extensions differ).
class CheckpointStore {
 public:
  struct Config {
    std::string dir;
    /// Checkpoint files retained after each write (newest kept first).
    /// Retention never removes the newest file that passes validation:
    /// when the most recent write on disk is torn, keep-1 pruning keeps
    /// both the torn file's valid predecessor and drops the torn file
    /// itself, so load_newest always has something loadable.
    std::size_t keep = 2;
  };

  explicit CheckpointStore(Config config);

  /// Serializes \p ckpt crash-safely and prunes old files down to keep.
  void write(const Checkpoint& ckpt);

  /// Newest checkpoint that passes CRC and parse validation; corrupt files
  /// are skipped (and counted in kert.durable.checkpoints_rejected), so a
  /// damaged newest file degrades to its predecessor, not to a crash.
  std::optional<Checkpoint> load_newest(std::string* error = nullptr) const;

  /// Sorted checkpoint file paths (oldest first).
  std::vector<std::string> files() const;

  const Config& config() const { return config_; }

 private:
  Config config_;
};

/// Parses one checkpoint file; nullopt + \p error on any damage.
std::optional<Checkpoint> load_checkpoint_file(const std::string& path,
                                               std::string* error);

/// Captures the pipeline's durable state into a Checkpoint value.
/// \p journal_seq is the writer's last appended sequence number — every
/// journaled event up to it must already be applied to \p server.
Checkpoint capture_checkpoint(const sim::ManagementServer& server,
                              const core::ModelManager& manager,
                              double sim_now, std::uint64_t journal_seq);

}  // namespace kertbn::durable
