#pragma once
/// \file journal.hpp
/// Append-only write-ahead report journal for the management server.
///
/// The paper's sliding window W = K · T_CON lives in memory; a management
/// server crash would silently discard it and blind the autonomic loop for
/// a full warm-up. The journal makes every ingest durable before it is
/// applied: records are framed with a length prefix and a masked CRC32C,
/// written to numbered segment files that rotate at a size threshold, and
/// flushed under a configurable fsync policy.
///
/// On-disk layout (all integers little-endian):
///
///   segment file  journal-<first_seq, 16 hex>.seg
///     header      "KERTBNJ1" (8 bytes) + u64 first_seq
///     record*     u32 payload_len | u32 mask_crc(crc32c(seq ‖ payload))
///                 | u64 seq | payload bytes
///
/// A crash can only damage the tail of the newest segment: replay verifies
/// every frame, skips CRC-failed records, stops a segment at a torn tail,
/// and reports both — it never aborts on damaged input. Each writer starts
/// a fresh segment, so a pre-crash torn tail can never sit in front of
/// post-restart records.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace kertbn::durable {

/// Record framing constants shared by writer, replayer, and tests.
inline constexpr char kSegmentMagic[8] = {'K', 'E', 'R', 'T', 'B', 'N',
                                          'J', '1'};
inline constexpr std::size_t kSegmentHeaderBytes = 16;
inline constexpr std::size_t kRecordHeaderBytes = 16;
/// Sanity bound a reader trusts a length prefix up to; anything larger is
/// treated as tail corruption.
inline constexpr std::uint32_t kMaxRecordBytes = 1u << 24;

/// When the journal pays the fsync.
enum class FsyncPolicy {
  kNone,        ///< Never fsync (page cache only; fastest, weakest).
  kPerSegment,  ///< fsync when a segment closes (rotation and shutdown).
  kPerRecord,   ///< fsync after every append (strongest, slowest).
};

struct JournalConfig {
  std::string dir;  ///< Directory holding the segment files.
  /// Rotate to a new segment once the current one reaches this size.
  std::size_t max_segment_bytes = 1u << 20;
  FsyncPolicy fsync = FsyncPolicy::kPerSegment;
};

/// Appends framed records. Construction scans the directory and continues
/// the sequence numbering after the last durable record.
///
/// When a FaultPlan with a journal_write_cutoff is installed (process-crash
/// simulation), bytes at or past the cutoff are silently dropped and fsync
/// is suppressed — exactly the torn state a kill -9 leaves behind.
class JournalWriter {
 public:
  explicit JournalWriter(JournalConfig config);
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Appends one record; returns its sequence number. The record is on
  /// disk (modulo fsync policy) before this returns — callers apply the
  /// state change only afterwards (write-ahead discipline).
  std::uint64_t append(std::string_view payload);

  /// Flushes and (policy permitting) fsyncs the open segment.
  void sync();

  /// Sequence number the next append will get.
  std::uint64_t next_seq() const { return next_seq_; }
  /// Sequence number of the last appended record (0 when none ever).
  std::uint64_t last_seq() const { return next_seq_ - 1; }
  /// Segments opened by this writer (>= 1 once a record was appended).
  std::size_t segments_opened() const { return segments_opened_; }
  /// Logical bytes appended by this writer (pre-cutoff accounting).
  std::uint64_t bytes_appended() const { return bytes_appended_; }

  const JournalConfig& config() const { return config_; }

 private:
  void open_segment();
  void close_segment(bool fsync_segment);
  /// Writes respecting the installed crash cutoff; returns bytes kept.
  std::size_t write_raw(const char* data, std::size_t size);

  JournalConfig config_;
  int fd_ = -1;
  std::uint64_t next_seq_ = 1;
  std::size_t segment_bytes_ = 0;
  std::size_t segments_opened_ = 0;
  std::uint64_t bytes_appended_ = 0;
  std::string frame_;  ///< Reused per-append frame buffer (hot path).
};

/// Replay statistics — also exported as kert.durable.* metrics.
struct ReplayStats {
  std::uint64_t segments = 0;          ///< Segment files visited.
  std::uint64_t records = 0;           ///< Records delivered to the callback.
  std::uint64_t skipped_crc = 0;       ///< CRC-failed records skipped.
  std::uint64_t torn_tails = 0;        ///< Segments cut short by a torn tail.
  std::uint64_t bad_segments = 0;      ///< Files with no usable header.
  std::uint64_t last_seq = 0;          ///< Highest sequence number seen.
};

/// Replays every intact record with seq > \p after_seq, in on-disk order,
/// through \p fn(seq, payload). Damaged framing is skipped and counted,
/// never fatal. Returns the statistics (metrics are bumped as a side
/// effect when telemetry is enabled).
ReplayStats replay_journal(
    const std::string& dir, std::uint64_t after_seq,
    const std::function<void(std::uint64_t, std::string_view)>& fn);

/// Deletes segment files whose records are all <= \p upto_seq (covered by
/// a checkpoint). The newest segment is always kept so the writer's
/// numbering anchor survives. Returns the number of files removed.
std::size_t prune_journal(const std::string& dir, std::uint64_t upto_seq);

/// Sorted list of segment file paths in \p dir (oldest first).
std::vector<std::string> journal_segments(const std::string& dir);

}  // namespace kertbn::durable
