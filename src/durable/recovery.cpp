#include "durable/recovery.hpp"

#include <charconv>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "obs/span.hpp"

namespace kertbn::durable {
namespace {

/// Shortest round-trip representation: parses back to the identical
/// double, and is much cheaper to produce than iostream formatting — the
/// encoder sits on the ingest hot path.
void append_double(std::string& out, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

void append_count(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

/// Sanity caps for payload decoding: a corrupted-but-CRC-valid count (or a
/// hostile journal file) must not drive a giant allocation.
constexpr std::size_t kMaxReports = 4096;
constexpr std::size_t kMaxServicesPerReport = 65536;

struct RecoveryMetrics {
  obs::Counter& recoveries;
  obs::Counter& replayed_ingests;
  obs::Counter& replayed_misses;
  obs::Counter& malformed_payloads;

  static RecoveryMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static RecoveryMetrics m{
        reg.counter("kert.durable.recoveries"),
        reg.counter("kert.durable.replayed_ingests"),
        reg.counter("kert.durable.replayed_misses"),
        reg.counter("kert.durable.malformed_payloads")};
    return m;
  }
};

}  // namespace

std::string encode_ingest(const std::vector<sim::AgentReport>& reports,
                          double response_mean) {
  std::string out;
  encode_ingest_into(out, reports, response_mean);
  return out;
}

void encode_ingest_into(std::string& out,
                        const std::vector<sim::AgentReport>& reports,
                        double response_mean) {
  out.clear();
  std::size_t means = 0;
  for (const auto& report : reports) means += report.service_means.size();
  out.reserve(32 + reports.size() * 24 + means * 40);
  out += "ingest ";
  append_double(out, response_mean);
  out += ' ';
  append_count(out, reports.size());
  for (const auto& report : reports) {
    out += " agent ";
    append_count(out, report.agent);
    out += ' ';
    append_count(out, report.service_means.size());
    for (const auto& [service, mean] : report.service_means) {
      out += ' ';
      append_count(out, service);
      out += ' ';
      append_double(out, mean);
    }
  }
}

std::string encode_missed() { return "miss"; }

bool decode_event(std::string_view payload, IngestEvent& out) {
  std::istringstream in{std::string(payload)};
  std::string keyword;
  if (!(in >> keyword)) return false;
  if (keyword == "miss") {
    out.missed = true;
    out.reports.clear();
    out.response_mean = 0.0;
    return true;
  }
  if (keyword != "ingest") return false;
  out.missed = false;
  std::size_t n_reports = 0;
  if (!(in >> out.response_mean >> n_reports)) return false;
  if (n_reports > kMaxReports) return false;
  out.reports.clear();
  out.reports.reserve(n_reports);
  for (std::size_t r = 0; r < n_reports; ++r) {
    sim::AgentReport report;
    std::size_t n_services = 0;
    if (!(in >> keyword >> report.agent >> n_services) ||
        keyword != "agent" || n_services > kMaxServicesPerReport) {
      return false;
    }
    report.service_means.resize(n_services);
    for (auto& [service, mean] : report.service_means) {
      if (!(in >> service >> mean)) return false;
    }
    out.reports.push_back(std::move(report));
  }
  // Trailing garbage means the payload is not what we encoded.
  if (in >> keyword) return false;
  return true;
}

void ServerJournal::attach(sim::ManagementServer& server) {
  server.set_ingest_log(
      [this](const std::vector<sim::AgentReport>& reports,
             double response_mean) {
        encode_ingest_into(scratch_, reports, response_mean);
        writer_.append(scratch_);
      });
  server.set_missed_log([this] { writer_.append(encode_missed()); });
}

void ServerJournal::detach(sim::ManagementServer& server) {
  server.set_ingest_log(nullptr);
  server.set_missed_log(nullptr);
}

RecoveryReport RecoveryManager::recover(sim::ManagementServer& server,
                                        core::ModelManager* manager,
                                        double now) const {
  KERTBN_SPAN_VAR(span, "durable.recover");
  RecoveryReport report;

  // 1. Newest valid checkpoint, if any. A rejected checkpoint leaves
  // checkpoint_seq at 0, so the journal is replayed from the beginning.
  CheckpointStore store(CheckpointStore::Config{dir_});
  std::string ckpt_error;
  if (auto ckpt = store.load_newest(&ckpt_error)) {
    report.checkpoint_loaded = true;
    report.checkpoint_seq = ckpt->journal_seq;
    report.server_restored = server.restore_state(ckpt->server);
    if (!report.server_restored) {
      // Shape mismatch (e.g. a checkpoint from a different deployment):
      // ignore it entirely and rebuild the state from the journal alone.
      report.checkpoint_seq = 0;
    } else if (manager != nullptr) {
      report.model_restored =
          manager->restore_from_checkpoint(ckpt->manager, now);
    }
  }

  // 2. Replay everything past the checkpoint through the server. The
  // journal hooks must not be attached yet — replayed events are already
  // durable and must not be re-journaled with fresh sequence numbers.
  report.replay = replay_journal(
      dir_, report.checkpoint_seq,
      [&](std::uint64_t, std::string_view payload) {
        IngestEvent event;
        if (!decode_event(payload, event)) {
          ++report.malformed_payloads;
          return;
        }
        if (event.missed) {
          server.note_missed_interval();
          ++report.replayed_misses;
        } else {
          server.ingest_interval(event.reports, event.response_mean);
          ++report.replayed_ingests;
        }
      });

  span.tag("checkpoint_seq", report.checkpoint_seq);
  span.tag("replayed_ingests",
           static_cast<std::uint64_t>(report.replayed_ingests));
  span.tag("replayed_misses",
           static_cast<std::uint64_t>(report.replayed_misses));
  span.tag("model_restored", report.model_restored);
  if (obs::enabled()) {
    RecoveryMetrics& m = RecoveryMetrics::get();
    m.recoveries.add(1);
    m.replayed_ingests.add(report.replayed_ingests);
    m.replayed_misses.add(report.replayed_misses);
    m.malformed_payloads.add(report.malformed_payloads);
  }
  return report;
}

}  // namespace kertbn::durable
