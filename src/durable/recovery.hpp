#pragma once
/// \file recovery.hpp
/// Crash recovery for the management server: write-ahead journaling of
/// ingest events, and checkpoint + replay restoration after a restart.
///
/// The durability unit is the *ingest event* — the raw agent reports plus
/// the interval response mean (or an outright missed interval). Replaying
/// the logged events through ManagementServer::ingest_interval reproduces
/// the server's state bit-for-bit: the sliding window, the carry-forward
/// memory, and every accounting counter, because ingest is a deterministic
/// function of its inputs. Journaling completed rows instead would lose
/// the carry-forward and staleness state.
///
/// Recovery order matters:
///   1. load the newest valid checkpoint (server window + schedule +
///      serialized last-known-good model, health restored to *stale*),
///   2. replay journal records past the checkpoint's sequence number
///      through a server whose journal hooks are NOT yet attached
///      (replay must not re-journal),
///   3. attach a fresh ServerJournal for new ingests.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "durable/checkpoint.hpp"
#include "durable/journal.hpp"
#include "kert/model_manager.hpp"
#include "sosim/monitoring.hpp"

namespace kertbn::durable {

/// Journal payload codec for the two ingest events. Text-encoded with
/// 17-significant-digit doubles so a decode-and-reingest round-trip is
/// exact.
std::string encode_ingest(const std::vector<sim::AgentReport>& reports,
                          double response_mean);
/// Hot-path variant: encodes into \p out (cleared first), reusing its
/// capacity across calls.
void encode_ingest_into(std::string& out,
                        const std::vector<sim::AgentReport>& reports,
                        double response_mean);
std::string encode_missed();

/// Decoded form of a journal payload.
struct IngestEvent {
  bool missed = false;  ///< True: note_missed_interval; false: ingest.
  double response_mean = 0.0;
  std::vector<sim::AgentReport> reports;
};

/// Parses a payload; false on malformed input (never aborts — a CRC-valid
/// record with an unknown payload is a version-skew case to skip).
bool decode_event(std::string_view payload, IngestEvent& out);

/// Owns a JournalWriter and wires it into a ManagementServer's write-ahead
/// hooks: every ingest_interval / note_missed_interval is journaled before
/// the server mutates any state.
class ServerJournal {
 public:
  explicit ServerJournal(JournalConfig config) : writer_(std::move(config)) {}

  /// Installs the write-ahead hooks on \p server. The server must outlive
  /// this object or have its hooks cleared first.
  void attach(sim::ManagementServer& server);

  /// Clears the hooks installed by attach.
  static void detach(sim::ManagementServer& server);

  JournalWriter& writer() { return writer_; }
  std::uint64_t last_seq() const { return writer_.last_seq(); }

 private:
  JournalWriter writer_;
  std::string scratch_;  ///< Reused encode buffer for the ingest hook.
};

/// What recovery found and did.
struct RecoveryReport {
  bool checkpoint_loaded = false;
  bool server_restored = false;
  bool model_restored = false;
  std::uint64_t checkpoint_seq = 0;
  ReplayStats replay;
  std::size_t replayed_ingests = 0;
  std::size_t replayed_misses = 0;
  /// CRC-valid records whose payload failed to decode (skipped).
  std::size_t malformed_payloads = 0;
};

/// Restores a freshly constructed server (and optionally its model
/// manager) from the durable state in one directory: newest valid
/// checkpoint first, then journal replay past it. Degrades monotonically —
/// a missing or corrupt checkpoint means replaying the whole journal; a
/// damaged journal tail means losing only the torn records. Never aborts
/// on damaged input.
class RecoveryManager {
 public:
  explicit RecoveryManager(std::string dir) : dir_(std::move(dir)) {}

  /// \p server must not have journal hooks attached yet (attach after).
  /// \p manager may be nullptr when only the monitoring state matters.
  /// \p now stamps the restored health transition.
  RecoveryReport recover(sim::ManagementServer& server,
                         core::ModelManager* manager, double now) const;

  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
};

}  // namespace kertbn::durable
