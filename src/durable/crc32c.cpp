#include "durable/crc32c.hpp"

#include <array>
#include <cstring>

namespace kertbn::durable {
namespace {

/// Reflected Castagnoli polynomial.
constexpr std::uint32_t kPoly = 0x82f63b78u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

std::uint32_t crc32c_sw(const unsigned char* p, std::size_t size,
                        std::uint32_t crc) {
  for (std::size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc;
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define KERTBN_CRC32C_HW 1

/// The SSE4.2 crc32 instruction computes exactly the reflected-Castagnoli
/// step the table loop does, 8 bytes per instruction. Runtime-dispatched so
/// the binary stays runnable on CPUs without SSE4.2.
__attribute__((target("sse4.2"))) std::uint32_t crc32c_hw(
    const unsigned char* p, std::size_t size, std::uint32_t crc) {
  std::uint64_t crc64 = crc;
  while (size >= 8) {
    std::uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    crc64 = __builtin_ia32_crc32di(crc64, chunk);
    p += 8;
    size -= 8;
  }
  crc = static_cast<std::uint32_t>(crc64);
  while (size > 0) {
    crc = __builtin_ia32_crc32qi(crc, *p);
    ++p;
    --size;
  }
  return crc;
}

bool have_sse42() {
  static const bool ok = __builtin_cpu_supports("sse4.2");
  return ok;
}
#endif

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t size, std::uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  const std::uint32_t crc = ~seed;
#ifdef KERTBN_CRC32C_HW
  if (have_sse42()) return ~crc32c_hw(p, size, crc);
#endif
  return ~crc32c_sw(p, size, crc);
}

}  // namespace kertbn::durable
